# Empty dependencies file for run_trace.
# This may be replaced when dependencies are built.

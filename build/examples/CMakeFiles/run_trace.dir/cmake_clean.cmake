file(REMOVE_RECURSE
  "CMakeFiles/run_trace.dir/run_trace.cpp.o"
  "CMakeFiles/run_trace.dir/run_trace.cpp.o.d"
  "run_trace"
  "run_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mixed_workload.
# This may be replaced when dependencies are built.

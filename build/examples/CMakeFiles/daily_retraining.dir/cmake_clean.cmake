file(REMOVE_RECURSE
  "CMakeFiles/daily_retraining.dir/daily_retraining.cpp.o"
  "CMakeFiles/daily_retraining.dir/daily_retraining.cpp.o.d"
  "daily_retraining"
  "daily_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

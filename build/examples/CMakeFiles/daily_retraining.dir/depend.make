# Empty dependencies file for daily_retraining.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_behaviors.dir/test_scheduler_behaviors.cc.o"
  "CMakeFiles/test_scheduler_behaviors.dir/test_scheduler_behaviors.cc.o.d"
  "test_scheduler_behaviors"
  "test_scheduler_behaviors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_scheduler_behaviors.
# This may be replaced when dependencies are built.

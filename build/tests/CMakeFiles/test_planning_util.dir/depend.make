# Empty dependencies file for test_planning_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_planning_util.dir/test_planning_util.cc.o"
  "CMakeFiles/test_planning_util.dir/test_planning_util.cc.o.d"
  "test_planning_util"
  "test_planning_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planning_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

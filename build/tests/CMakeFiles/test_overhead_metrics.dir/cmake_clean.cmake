file(REMOVE_RECURSE
  "CMakeFiles/test_overhead_metrics.dir/test_overhead_metrics.cc.o"
  "CMakeFiles/test_overhead_metrics.dir/test_overhead_metrics.cc.o.d"
  "test_overhead_metrics"
  "test_overhead_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overhead_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_perf_model_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_perf_model_sweep.dir/test_perf_model_sweep.cc.o"
  "CMakeFiles/test_perf_model_sweep.dir/test_perf_model_sweep.cc.o.d"
  "test_perf_model_sweep"
  "test_perf_model_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_model_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_logging_check.dir/test_logging_check.cc.o"
  "CMakeFiles/test_logging_check.dir/test_logging_check.cc.o.d"
  "test_logging_check"
  "test_logging_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logging_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_allocation_plan.
# This may be replaced when dependencies are built.

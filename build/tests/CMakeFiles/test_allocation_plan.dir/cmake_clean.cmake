file(REMOVE_RECURSE
  "CMakeFiles/test_allocation_plan.dir/test_allocation_plan.cc.o"
  "CMakeFiles/test_allocation_plan.dir/test_allocation_plan.cc.o.d"
  "test_allocation_plan"
  "test_allocation_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allocation_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

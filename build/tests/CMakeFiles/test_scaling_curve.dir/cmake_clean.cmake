file(REMOVE_RECURSE
  "CMakeFiles/test_scaling_curve.dir/test_scaling_curve.cc.o"
  "CMakeFiles/test_scaling_curve.dir/test_scaling_curve.cc.o.d"
  "test_scaling_curve"
  "test_scaling_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

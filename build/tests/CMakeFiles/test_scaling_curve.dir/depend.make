# Empty dependencies file for test_scaling_curve.
# This may be replaced when dependencies are built.

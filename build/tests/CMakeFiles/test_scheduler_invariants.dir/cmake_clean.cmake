file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_invariants.dir/test_scheduler_invariants.cc.o"
  "CMakeFiles/test_scheduler_invariants.dir/test_scheduler_invariants.cc.o.d"
  "test_scheduler_invariants"
  "test_scheduler_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_elastic_flow.dir/test_elastic_flow.cc.o"
  "CMakeFiles/test_elastic_flow.dir/test_elastic_flow.cc.o.d"
  "test_elastic_flow"
  "test_elastic_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elastic_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_admission_policy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_admission_policy.dir/test_admission_policy.cc.o"
  "CMakeFiles/test_admission_policy.dir/test_admission_policy.cc.o.d"
  "test_admission_policy"
  "test_admission_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admission_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_soft_deadlines.dir/test_soft_deadlines.cc.o"
  "CMakeFiles/test_soft_deadlines.dir/test_soft_deadlines.cc.o.d"
  "test_soft_deadlines"
  "test_soft_deadlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soft_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_soft_deadlines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06_testbed_e2e.dir/fig06_testbed_e2e.cc.o"
  "CMakeFiles/fig06_testbed_e2e.dir/fig06_testbed_e2e.cc.o.d"
  "fig06_testbed_e2e"
  "fig06_testbed_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_testbed_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig06_testbed_e2e.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig02_characterization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig02_characterization.dir/fig02_characterization.cc.o"
  "CMakeFiles/fig02_characterization.dir/fig02_characterization.cc.o.d"
  "fig02_characterization"
  "fig02_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig07_timeline.dir/fig07_timeline.cc.o"
  "CMakeFiles/fig07_timeline.dir/fig07_timeline.cc.o.d"
  "fig07_timeline"
  "fig07_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tab01_model_zoo.dir/tab01_model_zoo.cc.o"
  "CMakeFiles/tab01_model_zoo.dir/tab01_model_zoo.cc.o.d"
  "tab01_model_zoo"
  "tab01_model_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tab01_model_zoo.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig12_overheads.
# This may be replaced when dependencies are built.

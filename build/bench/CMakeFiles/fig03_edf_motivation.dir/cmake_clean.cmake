file(REMOVE_RECURSE
  "CMakeFiles/fig03_edf_motivation.dir/fig03_edf_motivation.cc.o"
  "CMakeFiles/fig03_edf_motivation.dir/fig03_edf_motivation.cc.o.d"
  "fig03_edf_motivation"
  "fig03_edf_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_edf_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

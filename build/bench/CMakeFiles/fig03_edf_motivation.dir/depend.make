# Empty dependencies file for fig03_edf_motivation.
# This may be replaced when dependencies are built.

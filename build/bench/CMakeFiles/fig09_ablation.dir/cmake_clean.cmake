file(REMOVE_RECURSE
  "CMakeFiles/fig09_ablation.dir/fig09_ablation.cc.o"
  "CMakeFiles/fig09_ablation.dir/fig09_ablation.cc.o.d"
  "fig09_ablation"
  "fig09_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig11_best_effort.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_best_effort.dir/fig11_best_effort.cc.o"
  "CMakeFiles/fig11_best_effort.dir/fig11_best_effort.cc.o.d"
  "fig11_best_effort"
  "fig11_best_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_best_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig10_cluster_efficiency.dir/fig10_cluster_efficiency.cc.o"
  "CMakeFiles/fig10_cluster_efficiency.dir/fig10_cluster_efficiency.cc.o.d"
  "fig10_cluster_efficiency"
  "fig10_cluster_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cluster_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig10_cluster_efficiency.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ext_network.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_network.dir/ext_network.cc.o"
  "CMakeFiles/ext_network.dir/ext_network.cc.o.d"
  "ext_network"
  "ext_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

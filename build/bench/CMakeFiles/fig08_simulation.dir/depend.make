# Empty dependencies file for fig08_simulation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_simulation.dir/fig08_simulation.cc.o"
  "CMakeFiles/fig08_simulation.dir/fig08_simulation.cc.o.d"
  "fig08_simulation"
  "fig08_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libef_exec.a"
)

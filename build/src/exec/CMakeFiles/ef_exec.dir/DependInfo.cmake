
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/control_plane.cc" "src/exec/CMakeFiles/ef_exec.dir/control_plane.cc.o" "gcc" "src/exec/CMakeFiles/ef_exec.dir/control_plane.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/ef_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/ef_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/profiler.cc" "src/exec/CMakeFiles/ef_exec.dir/profiler.cc.o" "gcc" "src/exec/CMakeFiles/ef_exec.dir/profiler.cc.o.d"
  "/root/repo/src/exec/replay.cc" "src/exec/CMakeFiles/ef_exec.dir/replay.cc.o" "gcc" "src/exec/CMakeFiles/ef_exec.dir/replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ef_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ef_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ef_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ef_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ef_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ef_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

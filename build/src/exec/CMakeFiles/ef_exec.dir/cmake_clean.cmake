file(REMOVE_RECURSE
  "CMakeFiles/ef_exec.dir/control_plane.cc.o"
  "CMakeFiles/ef_exec.dir/control_plane.cc.o.d"
  "CMakeFiles/ef_exec.dir/executor.cc.o"
  "CMakeFiles/ef_exec.dir/executor.cc.o.d"
  "CMakeFiles/ef_exec.dir/profiler.cc.o"
  "CMakeFiles/ef_exec.dir/profiler.cc.o.d"
  "CMakeFiles/ef_exec.dir/replay.cc.o"
  "CMakeFiles/ef_exec.dir/replay.cc.o.d"
  "libef_exec.a"
  "libef_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

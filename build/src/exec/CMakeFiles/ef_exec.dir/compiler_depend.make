# Empty compiler generated dependencies file for ef_exec.
# This may be replaced when dependencies are built.

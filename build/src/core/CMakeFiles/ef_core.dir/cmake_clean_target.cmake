file(REMOVE_RECURSE
  "libef_core.a"
)

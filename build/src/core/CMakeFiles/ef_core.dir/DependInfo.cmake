
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cc" "src/core/CMakeFiles/ef_core.dir/admission.cc.o" "gcc" "src/core/CMakeFiles/ef_core.dir/admission.cc.o.d"
  "/root/repo/src/core/allocation_plan.cc" "src/core/CMakeFiles/ef_core.dir/allocation_plan.cc.o" "gcc" "src/core/CMakeFiles/ef_core.dir/allocation_plan.cc.o.d"
  "/root/repo/src/core/allocator.cc" "src/core/CMakeFiles/ef_core.dir/allocator.cc.o" "gcc" "src/core/CMakeFiles/ef_core.dir/allocator.cc.o.d"
  "/root/repo/src/core/scaling_curve.cc" "src/core/CMakeFiles/ef_core.dir/scaling_curve.cc.o" "gcc" "src/core/CMakeFiles/ef_core.dir/scaling_curve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ef_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ef_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ef_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ef_core.dir/admission.cc.o"
  "CMakeFiles/ef_core.dir/admission.cc.o.d"
  "CMakeFiles/ef_core.dir/allocation_plan.cc.o"
  "CMakeFiles/ef_core.dir/allocation_plan.cc.o.d"
  "CMakeFiles/ef_core.dir/allocator.cc.o"
  "CMakeFiles/ef_core.dir/allocator.cc.o.d"
  "CMakeFiles/ef_core.dir/scaling_curve.cc.o"
  "CMakeFiles/ef_core.dir/scaling_curve.cc.o.d"
  "libef_core.a"
  "libef_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

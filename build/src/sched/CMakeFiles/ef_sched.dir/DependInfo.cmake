
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/admission_policy.cc" "src/sched/CMakeFiles/ef_sched.dir/admission_policy.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/admission_policy.cc.o.d"
  "/root/repo/src/sched/chronus.cc" "src/sched/CMakeFiles/ef_sched.dir/chronus.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/chronus.cc.o.d"
  "/root/repo/src/sched/edf.cc" "src/sched/CMakeFiles/ef_sched.dir/edf.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/edf.cc.o.d"
  "/root/repo/src/sched/elastic_flow.cc" "src/sched/CMakeFiles/ef_sched.dir/elastic_flow.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/elastic_flow.cc.o.d"
  "/root/repo/src/sched/gandiva.cc" "src/sched/CMakeFiles/ef_sched.dir/gandiva.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/gandiva.cc.o.d"
  "/root/repo/src/sched/planning_util.cc" "src/sched/CMakeFiles/ef_sched.dir/planning_util.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/planning_util.cc.o.d"
  "/root/repo/src/sched/pollux.cc" "src/sched/CMakeFiles/ef_sched.dir/pollux.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/pollux.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/ef_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/scheduler.cc.o.d"
  "/root/repo/src/sched/themis.cc" "src/sched/CMakeFiles/ef_sched.dir/themis.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/themis.cc.o.d"
  "/root/repo/src/sched/tiresias.cc" "src/sched/CMakeFiles/ef_sched.dir/tiresias.cc.o" "gcc" "src/sched/CMakeFiles/ef_sched.dir/tiresias.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ef_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ef_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ef_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ef_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ef_sched.dir/admission_policy.cc.o"
  "CMakeFiles/ef_sched.dir/admission_policy.cc.o.d"
  "CMakeFiles/ef_sched.dir/chronus.cc.o"
  "CMakeFiles/ef_sched.dir/chronus.cc.o.d"
  "CMakeFiles/ef_sched.dir/edf.cc.o"
  "CMakeFiles/ef_sched.dir/edf.cc.o.d"
  "CMakeFiles/ef_sched.dir/elastic_flow.cc.o"
  "CMakeFiles/ef_sched.dir/elastic_flow.cc.o.d"
  "CMakeFiles/ef_sched.dir/gandiva.cc.o"
  "CMakeFiles/ef_sched.dir/gandiva.cc.o.d"
  "CMakeFiles/ef_sched.dir/planning_util.cc.o"
  "CMakeFiles/ef_sched.dir/planning_util.cc.o.d"
  "CMakeFiles/ef_sched.dir/pollux.cc.o"
  "CMakeFiles/ef_sched.dir/pollux.cc.o.d"
  "CMakeFiles/ef_sched.dir/scheduler.cc.o"
  "CMakeFiles/ef_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/ef_sched.dir/themis.cc.o"
  "CMakeFiles/ef_sched.dir/themis.cc.o.d"
  "CMakeFiles/ef_sched.dir/tiresias.cc.o"
  "CMakeFiles/ef_sched.dir/tiresias.cc.o.d"
  "libef_sched.a"
  "libef_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

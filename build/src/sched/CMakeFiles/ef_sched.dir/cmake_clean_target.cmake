file(REMOVE_RECURSE
  "libef_sched.a"
)

# Empty compiler generated dependencies file for ef_sched.
# This may be replaced when dependencies are built.

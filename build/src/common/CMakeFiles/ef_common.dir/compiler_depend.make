# Empty compiler generated dependencies file for ef_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libef_common.a"
)

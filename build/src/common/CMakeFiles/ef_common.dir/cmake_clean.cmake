file(REMOVE_RECURSE
  "CMakeFiles/ef_common.dir/csv.cc.o"
  "CMakeFiles/ef_common.dir/csv.cc.o.d"
  "CMakeFiles/ef_common.dir/logging.cc.o"
  "CMakeFiles/ef_common.dir/logging.cc.o.d"
  "CMakeFiles/ef_common.dir/math_util.cc.o"
  "CMakeFiles/ef_common.dir/math_util.cc.o.d"
  "CMakeFiles/ef_common.dir/rng.cc.o"
  "CMakeFiles/ef_common.dir/rng.cc.o.d"
  "CMakeFiles/ef_common.dir/stats.cc.o"
  "CMakeFiles/ef_common.dir/stats.cc.o.d"
  "CMakeFiles/ef_common.dir/table.cc.o"
  "CMakeFiles/ef_common.dir/table.cc.o.d"
  "libef_common.a"
  "libef_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/buddy.cc" "src/cluster/CMakeFiles/ef_cluster.dir/buddy.cc.o" "gcc" "src/cluster/CMakeFiles/ef_cluster.dir/buddy.cc.o.d"
  "/root/repo/src/cluster/placement.cc" "src/cluster/CMakeFiles/ef_cluster.dir/placement.cc.o" "gcc" "src/cluster/CMakeFiles/ef_cluster.dir/placement.cc.o.d"
  "/root/repo/src/cluster/topology.cc" "src/cluster/CMakeFiles/ef_cluster.dir/topology.cc.o" "gcc" "src/cluster/CMakeFiles/ef_cluster.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ef_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ef_cluster.
# This may be replaced when dependencies are built.

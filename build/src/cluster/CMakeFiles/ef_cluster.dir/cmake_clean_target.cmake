file(REMOVE_RECURSE
  "libef_cluster.a"
)

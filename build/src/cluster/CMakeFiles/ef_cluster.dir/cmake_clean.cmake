file(REMOVE_RECURSE
  "CMakeFiles/ef_cluster.dir/buddy.cc.o"
  "CMakeFiles/ef_cluster.dir/buddy.cc.o.d"
  "CMakeFiles/ef_cluster.dir/placement.cc.o"
  "CMakeFiles/ef_cluster.dir/placement.cc.o.d"
  "CMakeFiles/ef_cluster.dir/topology.cc.o"
  "CMakeFiles/ef_cluster.dir/topology.cc.o.d"
  "libef_cluster.a"
  "libef_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

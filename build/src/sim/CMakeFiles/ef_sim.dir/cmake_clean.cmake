file(REMOVE_RECURSE
  "CMakeFiles/ef_sim.dir/metrics.cc.o"
  "CMakeFiles/ef_sim.dir/metrics.cc.o.d"
  "CMakeFiles/ef_sim.dir/overhead_model.cc.o"
  "CMakeFiles/ef_sim.dir/overhead_model.cc.o.d"
  "CMakeFiles/ef_sim.dir/report.cc.o"
  "CMakeFiles/ef_sim.dir/report.cc.o.d"
  "CMakeFiles/ef_sim.dir/simulator.cc.o"
  "CMakeFiles/ef_sim.dir/simulator.cc.o.d"
  "libef_sim.a"
  "libef_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/ef_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/ef_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/overhead_model.cc" "src/sim/CMakeFiles/ef_sim.dir/overhead_model.cc.o" "gcc" "src/sim/CMakeFiles/ef_sim.dir/overhead_model.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/ef_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/ef_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/ef_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/ef_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/ef_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ef_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ef_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ef_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ef_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ef_workload.dir/job.cc.o"
  "CMakeFiles/ef_workload.dir/job.cc.o.d"
  "CMakeFiles/ef_workload.dir/model_zoo.cc.o"
  "CMakeFiles/ef_workload.dir/model_zoo.cc.o.d"
  "CMakeFiles/ef_workload.dir/perf_model.cc.o"
  "CMakeFiles/ef_workload.dir/perf_model.cc.o.d"
  "CMakeFiles/ef_workload.dir/trace.cc.o"
  "CMakeFiles/ef_workload.dir/trace.cc.o.d"
  "CMakeFiles/ef_workload.dir/trace_gen.cc.o"
  "CMakeFiles/ef_workload.dir/trace_gen.cc.o.d"
  "CMakeFiles/ef_workload.dir/trace_io.cc.o"
  "CMakeFiles/ef_workload.dir/trace_io.cc.o.d"
  "libef_workload.a"
  "libef_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

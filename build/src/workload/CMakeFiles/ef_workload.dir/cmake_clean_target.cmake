file(REMOVE_RECURSE
  "libef_workload.a"
)

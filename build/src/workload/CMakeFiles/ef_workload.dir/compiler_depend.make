# Empty compiler generated dependencies file for ef_workload.
# This may be replaced when dependencies are built.

/**
 * @file
 * ef-audit engine tests. Three layers:
 *
 *  - Clean-tree contract: the real repository (loaded from
 *    EF_REPO_ROOT) audits clean against the real manifest, so the
 *    suite fails the moment a new persistent field lands without
 *    hash/codec coverage or an audited annotation.
 *  - Mutation fixtures: for every manifest type, remove (or hollow
 *    out) one field's line from its hash or codec surface and assert
 *    the audit reports exactly the expected finding — proving each
 *    check actually bites, per surface kind.
 *  - Synthetic fixtures for the thread-ownership and layering rules,
 *    the annotation grammar, manifest strictness, and the JSON/SARIF
 *    emitters.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit.h"

namespace ef {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path.string();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** The real src/ + tools/ tree, loaded once (as ef_audit's CLI does). */
const std::vector<audit::SourceFile> &
real_tree()
{
    static const std::vector<audit::SourceFile> tree = [] {
        const fs::path root = EF_REPO_ROOT;
        std::vector<std::string> rels;
        for (const char *dir : {"src", "tools"}) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(root / dir)) {
                const std::string ext =
                    entry.path().extension().string();
                if (entry.is_regular_file() &&
                    (ext == ".h" || ext == ".hpp" || ext == ".cc" ||
                     ext == ".cpp")) {
                    rels.push_back(fs::relative(entry.path(), root)
                                       .generic_string());
                }
            }
        }
        std::sort(rels.begin(), rels.end());
        std::vector<audit::SourceFile> files;
        for (const std::string &rel : rels)
            files.push_back({rel, slurp(root / rel)});
        return files;
    }();
    return tree;
}

const audit::Manifest &
real_manifest()
{
    static const audit::Manifest manifest = [] {
        std::vector<audit::Finding> errors;
        audit::Manifest m = audit::parse_manifest(
            "tools/ef_audit/state_manifest.txt",
            slurp(fs::path(EF_REPO_ROOT) / "tools" / "ef_audit" /
                  "state_manifest.txt"),
            &errors);
        EXPECT_TRUE(errors.empty())
            << (errors.empty() ? ""
                               : audit::format_finding(errors[0]));
        return m;
    }();
    return manifest;
}

std::vector<audit::Finding>
run(const audit::Manifest &manifest,
    const std::vector<audit::SourceFile> &files, int jobs = 2)
{
    audit::AuditOptions options;
    options.jobs = jobs;
    return audit::run_audit(manifest, files, options);
}

/**
 * Replace the unique line whose trimmed text equals @p needle in
 * @p file with @p replacement ("" deletes the line). Fails the test
 * if the needle matches zero or several lines.
 */
void
mutate(std::vector<audit::SourceFile> &files, const std::string &file,
       const std::string &needle, const std::string &replacement)
{
    auto trim = [](const std::string &s) {
        const std::size_t b = s.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            return std::string();
        return s.substr(b, s.find_last_not_of(" \t\r") - b + 1);
    };
    for (audit::SourceFile &source : files) {
        if (source.path != file)
            continue;
        std::istringstream in(source.text);
        std::ostringstream out;
        std::string line;
        int hits = 0;
        while (std::getline(in, line)) {
            if (trim(line) == needle) {
                ++hits;
                if (!replacement.empty())
                    out << replacement << "\n";
            } else {
                out << line << "\n";
            }
        }
        ASSERT_EQ(hits, 1) << "needle '" << needle << "' in " << file;
        source.text = out.str();
        return;
    }
    FAIL() << "no such file in tree: " << file;
}

TEST(EfAuditRealTree, ManifestParsesAndTreeIsClean)
{
    const std::vector<audit::Finding> findings =
        run(real_manifest(), real_tree());
    for (const audit::Finding &finding : findings)
        ADD_FAILURE() << audit::format_finding(finding);
}

TEST(EfAuditRealTree, JobsCountDoesNotChangeFindings)
{
    std::vector<audit::SourceFile> files = real_tree();
    mutate(files, "src/sim/simulator.cc", "h.u64(next_seq_);", "");
    const auto serial = run(real_manifest(), files, 1);
    const auto parallel = run(real_manifest(), files, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(audit::format_finding(serial[i]),
                  audit::format_finding(parallel[i]));
    }
}

/** One mutation: drop @p needle from @p file, expect @p expected. */
struct Mutation
{
    const char *label;
    const char *file;
    const char *needle;
    const char *replacement;  ///< "" = delete the line
    struct Expect
    {
        const char *symbol;
        const char *kind;  ///< hash / encode / decode
    };
    std::vector<Expect> expected;
};

const Mutation kMutations[] = {
    {"simulator-hash-drops-next-seq", "src/sim/simulator.cc",
     "h.u64(next_seq_);", "",
     {{"ef::Simulator::next_seq_", "hash"}}},
    {"simulator-encode-drops-next-seq", "src/sim/simulator.cc",
     "enc->u64(next_seq_);", "",
     {{"ef::Simulator::next_seq_", "encode"}}},
    {"jobrt-hash-drops-executed", "src/sim/simulator.cc",
     "h.f64(job.executed);", "",
     {{"ef::Simulator::JobRt::executed", "hash"}}},
    {"jobrt-decode-drops-executed", "src/sim/simulator.cc",
     "dec->f64(&job.executed);", "",
     {{"ef::Simulator::JobRt::executed", "decode"}}},
    {"service-hash-drops-admitted", "src/serve/service.cc",
     "h.u64(stats_.admitted);", "",
     {{"ef::serve::ServiceStats::admitted", "hash"}}},
    {"service-decode-drops-last-round", "src/serve/service.cc",
     "dec->f64(&last_round_);", "",
     {{"ef::serve::Service::last_round_", "decode"}}},
    {"active-hash-drops-deadline", "src/serve/service.cc",
     "h.f64(active.deadline);", "",
     {{"ef::serve::Service::Active::deadline", "hash"}}},
    {"governor-restore-drops-tokens", "src/serve/governor.h",
     "tokens_ = tokens;", "",
     {{"ef::serve::ReplanGovernor::tokens_", "decode"}}},
    {"rng-restore-drops-draws", "src/common/rng.cc",
     "draws_ = draws;", "",
     {{"ef::Rng::draws_", "decode"}}},
    // The draws() accessor is both a hash and an encode surface;
    // hollowing it out must surface on both sides.
    {"rng-accessor-stops-reading-draws", "src/common/rng.h",
     "std::uint64_t draws() const { return draws_; }",
     "    std::uint64_t draws() const { return 0; }",
     {{"ef::Rng::draws_", "hash"}, {"ef::Rng::draws_", "encode"}}},
    {"fault-fingerprint-drops-armed-ckpt", "src/fault/fault.cc",
     "h.u64(armed_ckpt_.size());", "",
     {{"ef::FaultInjector::armed_ckpt_", "hash"}}},
    {"fault-stream-encode-drops-forks", "src/serve/state_codec.cc",
     "enc->u64(stream.forks);", "",
     {{"ef::FaultInjector::State::Stream::forks", "encode"}}},
    {"jobspec-encode-drops-user", "src/serve/state_codec.cc",
     "enc->str(spec.user);", "",
     {{"ef::JobSpec::user", "encode"}}},
    // encode_curve reads the table through the table() accessor, so
    // rewiring the accessor severs the field from the encode surface
    // (decode stays covered: from_pow2_table writes table_ directly).
    {"curve-accessor-stops-reading-table", "src/core/scaling_curve.h",
     "const std::vector<double> &table() const { return table_; }",
     "    const std::vector<double> &table() const { return x_; }",
     {{"ef::ScalingCurve::table_", "encode"}}},
    {"stepseries-accessor-stops-reading-values", "src/common/stats.h",
     "const std::vector<double> &values() const { return values_; }",
     "    const std::vector<double> &values() const"
     " { return times_; }",
     {{"ef::StepSeries::values_", "encode"}}},
};

class EfAuditMutation : public ::testing::TestWithParam<Mutation>
{
};

TEST_P(EfAuditMutation, YieldsExactlyTheExpectedFindings)
{
    const Mutation &mutation = GetParam();
    std::vector<audit::SourceFile> files = real_tree();
    mutate(files, mutation.file, mutation.needle,
           mutation.replacement);
    const std::vector<audit::Finding> findings =
        run(real_manifest(), files);
    ASSERT_EQ(findings.size(), mutation.expected.size())
        << (findings.empty()
                ? "no findings"
                : audit::format_finding(findings[0]));
    for (const Mutation::Expect &expect : mutation.expected) {
        const bool matched = std::any_of(
            findings.begin(), findings.end(),
            [&](const audit::Finding &finding) {
                return finding.rule == "state-coverage" &&
                       finding.symbol == expect.symbol &&
                       finding.message.find(std::string("its ") +
                                            expect.kind +
                                            " surface") !=
                           std::string::npos;
            });
        EXPECT_TRUE(matched)
            << expect.symbol << " missing from its " << expect.kind
            << " surface was not reported";
    }
}

INSTANTIATE_TEST_SUITE_P(
    PerType, EfAuditMutation, ::testing::ValuesIn(kMutations),
    [](const ::testing::TestParamInfo<Mutation> &info) {
        std::string name = info.param.label;
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

// ---------------------------------------------------------------------------
// Synthetic fixtures: manifest strictness, annotations, the
// thread-ownership and layering rules, and the emitters.
// ---------------------------------------------------------------------------

audit::Manifest
manifest_from(const std::string &text,
              std::vector<audit::Finding> *errors)
{
    return audit::parse_manifest("manifest.txt", text, errors);
}

TEST(EfAuditManifest, UnresolvableSurfaceIsABlockingFinding)
{
    // The def file parses but the declared hash function is gone — a
    // rename must not silently disable the audit.
    std::vector<audit::Finding> errors;
    audit::Manifest manifest = manifest_from(
        "type demo::Widget\n"
        "  def  fixtures/widget.h\n"
        "  hash fixtures/widget.cc state_hash\n",
        &errors);
    ASSERT_TRUE(errors.empty());
    const std::vector<audit::SourceFile> files = {
        {"fixtures/widget.h", "struct Widget { int x_ = 0; };\n"},
        {"fixtures/widget.cc", "int renamed_hash() { return 0; }\n"},
    };
    const auto findings = run(manifest, files);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "manifest");
    EXPECT_NE(findings[0].message.find("state_hash"),
              std::string::npos);
}

TEST(EfAuditManifest, ParseErrorsAreReported)
{
    std::vector<audit::Finding> errors;
    manifest_from("type demo::Widget\n"
                  "  frobnicate x y\n",
                  &errors);
    ASSERT_FALSE(errors.empty());
    EXPECT_EQ(errors[0].rule, "manifest");

    errors.clear();
    manifest_from("type demo::Widget\n"
                  "  hash a.cc f\n",  // no def line
                  &errors);
    ASSERT_FALSE(errors.empty());
    EXPECT_EQ(errors[0].rule, "manifest");
}

TEST(EfAuditAnnotations, TransientScopesAreHonored)
{
    std::vector<audit::Finding> errors;
    audit::Manifest manifest = manifest_from(
        "type demo::Widget\n"
        "  def  fixtures/widget.h\n"
        "  hash fixtures/widget.cc state_hash\n"
        "  encode fixtures/widget.cc encode\n",
        &errors);
    ASSERT_TRUE(errors.empty());
    const char *widget_cc =
        "unsigned state_hash() { return covered_; }\n"
        "void encode() { put(covered_); }\n";
    // Unannotated + uncovered: one finding per declared surface kind.
    auto findings = run(
        manifest,
        {{"fixtures/widget.h", "struct Widget { int missing_; };\n"},
         {"fixtures/widget.cc", widget_cc}});
    EXPECT_EQ(findings.size(), 2u);
    // transient(hash: ...) silences exactly the hash side.
    findings = run(
        manifest,
        {{"fixtures/widget.h",
          "struct Widget {\n"
          "  // ef-audit: transient(hash: derived)\n"
          "  int missing_;\n"
          "};\n"},
         {"fixtures/widget.cc", widget_cc}});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("its encode surface"),
              std::string::npos);
    // A bare reason means all scopes; covered() works the same way.
    for (const char *annotation :
         {"// ef-audit: transient(rebuilt on load)",
          "// ef-audit: covered(hash, encode: via the base class)"}) {
        findings =
            run(manifest,
                {{"fixtures/widget.h",
                  std::string("struct Widget {\n  ") + annotation +
                      "\n  int missing_;\n};\n"},
                 {"fixtures/widget.cc", widget_cc}});
        EXPECT_TRUE(findings.empty()) << annotation;
    }
}

TEST(EfAuditAnnotations, MalformedAndUnsuppressibleAreReported)
{
    const audit::Manifest empty;
    // No reason.
    auto findings = run(
        empty,
        {{"fixtures/a.h", "// ef-audit: transient(hash:)\nint x;\n"}});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "bad-annotation");
    // Unknown keyword.
    findings = run(
        empty, {{"fixtures/a.h", "// ef-audit: ignore(x: y)\n"}});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "bad-annotation");
    // allow() may not waive state-coverage — only an audited
    // transient()/covered() on the declaration can.
    findings = run(
        empty,
        {{"fixtures/a.h", "// ef-audit: allow(state-coverage: no)\n"}});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "bad-annotation");
}

TEST(EfAuditThreadOwnership, SharedWritesInParallelForAreFlagged)
{
    const audit::Manifest empty;
    const char *bad =
        "void plan(ef::ThreadPool *pool, std::vector<int> &out) {\n"
        "    int total = 0;\n"
        "    ef::parallel_for(pool, 4, [&](int i) {\n"
        "        total += i;\n"
        "    });\n"
        "}\n";
    auto findings = run(empty, {{"src/core/demo.cc", bad}});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "thread-ownership");
    EXPECT_NE(findings[0].message.find("total"), std::string::npos);

    // Index-owned slots, locals, and by-value captures are all fine.
    const char *good =
        "void plan(ef::ThreadPool *pool, std::vector<int> &out) {\n"
        "    int base = 7;\n"
        "    ef::parallel_for(pool, 4, [&, base](int i) {\n"
        "        int local = base + i;\n"
        "        local += 1;\n"
        "        out[i] = local;\n"
        "    });\n"
        "}\n";
    EXPECT_TRUE(run(empty, {{"src/core/demo.cc", good}}).empty());

    // Mutating-method calls on a shared container are writes too.
    const char *push =
        "void plan(ef::ThreadPool *pool, std::vector<int> &out) {\n"
        "    ef::parallel_for(pool, 4, [&](int i) {\n"
        "        out.push_back(i);\n"
        "    });\n"
        "}\n";
    findings = run(empty, {{"src/core/demo.cc", push}});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "thread-ownership");

    // The audited escape hatch (line above the call site).
    const char *allowed =
        "void plan(ef::ThreadPool *pool, std::atomic<int> &n) {\n"
        "    // ef-audit: allow(thread-ownership: atomic counter)\n"
        "    ef::parallel_for(pool, 4, [&](int i) {\n"
        "        n += i;\n"
        "    });\n"
        "}\n";
    EXPECT_TRUE(run(empty, {{"src/core/demo.cc", allowed}}).empty());
}

TEST(EfAuditLayering, IncludesMustFollowTheDeclaredDag)
{
    std::vector<audit::Finding> errors;
    audit::Manifest manifest =
        manifest_from("layer base :\n"
                      "layer mid  : base\n"
                      "layer top  : mid\n",
                      &errors);
    ASSERT_TRUE(errors.empty());
    // top -> mid (direct) and top -> base (transitive) are fine.
    const std::vector<audit::SourceFile> good = {
        {"src/top/a.cc", "#include \"mid/m.h\"\n"
                         "#include \"base/b.h\"\n"
                         "#include \"top/a.h\"\n"
                         "#include <vector>\n"}};
    EXPECT_TRUE(run(manifest, good).empty());
    // base -> top inverts the DAG.
    const std::vector<audit::SourceFile> bad = {
        {"src/base/b.cc", "#include \"top/a.h\"\n"}};
    auto findings = run(manifest, bad);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "layering");
    EXPECT_EQ(findings[0].file, "src/base/b.cc");
    EXPECT_EQ(findings[0].line, 1);
    // A directory missing from the DAG is itself a finding.
    const std::vector<audit::SourceFile> unknown = {
        {"src/rogue/r.cc", "#include \"base/b.h\"\n"}};
    findings = run(manifest, unknown);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "layering");
}

TEST(EfAuditOutput, JsonAndSarifCarryTheFindings)
{
    const std::vector<audit::Finding> findings = {
        {"src/a.cc", 3, "state-coverage", "T::x", "field 'x' missing"}};
    const std::string json = audit::findings_to_json(findings);
    EXPECT_NE(json.find("\"state-coverage\""), std::string::npos);
    EXPECT_NE(json.find("\"src/a.cc\""), std::string::npos);
    EXPECT_NE(json.find("\"count\""), std::string::npos);
    const std::string sarif = audit::findings_to_sarif(findings);
    EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ef-audit\""), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\":3"), std::string::npos);
}

TEST(EfAuditRules, NamesAreStable)
{
    const std::vector<std::string> expected = {
        "state-coverage", "thread-ownership", "layering", "manifest",
        "bad-annotation"};
    EXPECT_EQ(audit::rule_names(), expected);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Edge cases and failure-injection across modules: degenerate traces,
 * odd topologies (non-power-of-two servers per rack), simulator time
 * limits, malformed CSV traces, and the gradient-accumulation
 * extension of the performance model.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

TEST(EdgeCases, EmptyTraceProducesEmptyRun)
{
    Trace trace;
    trace.name = "empty";
    trace.topology = TopologySpec::testbed_32();
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs.empty());
    EXPECT_DOUBLE_EQ(result.deadline_ratio(), 1.0);
    EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST(EdgeCases, SingleGpuCluster)
{
    TopologySpec spec;
    spec.num_racks = 1;
    spec.servers_per_rack = 1;
    spec.gpus_per_server = 1;
    Trace trace = TraceBuilder(spec)
                      .slo(DnnModel::kResNet50, 64, 1, 0.0, kHour, 1.3)
                      .build();
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[0].met_deadline());
}

TEST(EdgeCases, OddServersPerRackTopology)
{
    // 96 GPUs = 2 racks x 6 servers: rack capacity is not a power of
    // two, exercising the non-perfect rack-level packing path.
    TraceGenConfig gen;
    gen.topology = TopologySpec::with_total_gpus(96);
    gen.num_jobs = 40;
    gen.mean_interarrival_s = 400.0;
    gen.seed = 5;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.admitted && job.spec.kind == JobKind::kSlo) {
            EXPECT_TRUE(job.met_deadline()) << job.spec.id;
        }
    }
}

TEST(EdgeCases, MaxTimeCutsOffGracefully)
{
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kBert, 128, 2, 0.0, 100.0 * kHour, 1.5)
            .build();
    SimConfig config;
    config.max_time = 10.0;  // far too short to finish anything
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    RunResult result = sim.run();
    EXPECT_FALSE(result.jobs[0].finished);
}

TEST(EdgeCases, SimultaneousArrivalsAreOrderedById)
{
    TraceBuilder builder(TopologySpec::testbed_32());
    for (int i = 0; i < 5; ++i)
        builder.slo(DnnModel::kResNet50, 128, 4, 100.0, kHour, 1.5);
    Trace trace = builder.build();
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.admitted) {
            EXPECT_TRUE(job.finished);
        }
    }
}

TEST(EdgeCases, MalformedTraceCsvDies)
{
    TopologySpec topo = TopologySpec::testbed_32();
    EXPECT_DEATH(
        parse_trace_csv("id,name,user,model,global_batch,iterations,"
                        "submit_time,deadline,kind,requested_gpus\n"
                        "1,x,u,NotAModel,64,10,0,100,slo,1\n",
                        topo),
        "unknown model");
    EXPECT_DEATH(
        parse_trace_csv("id,name,user,model,global_batch,iterations,"
                        "submit_time,deadline,kind,requested_gpus\n"
                        "1,x,u,BERT,64,10,0,100,banana,1\n",
                        topo),
        "unknown job kind");
    EXPECT_DEATH(
        parse_trace_csv("id,name,user,model,global_batch,iterations,"
                        "submit_time,deadline,kind,requested_gpus\n"
                        "1,x,u,BERT,64,-5,0,100,slo,1\n",
                        topo),
        "non-positive iterations");
}

TEST(EdgeCases, MissingTraceFileDies)
{
    EXPECT_DEATH(load_trace_csv("/nonexistent/trace.csv",
                                TopologySpec::testbed_32()),
                 "cannot open");
}

TEST(GradAccumulation, RemovesMemoryBound)
{
    Topology topo(TopologySpec::testbed_128());
    PerfModel strict(&topo);
    PerfModelConfig config;
    config.allow_grad_accumulation = true;
    PerfModel accum(&topo, config);

    // GPT-2 at batch 256 needs 8 GPUs without accumulation...
    EXPECT_EQ(strict.min_workers(DnnModel::kGpt2, 256), 8);
    EXPECT_EQ(strict.compact_throughput(DnnModel::kGpt2, 256, 1), 0.0);
    // ...but runs on one GPU with it, slower than the 8-GPU config.
    EXPECT_EQ(accum.min_workers(DnnModel::kGpt2, 256), 1);
    double single = accum.compact_throughput(DnnModel::kGpt2, 256, 1);
    EXPECT_GT(single, 0.0);
    EXPECT_LT(single, accum.compact_throughput(DnnModel::kGpt2, 256, 8));
}

TEST(GradAccumulation, MatchesStrictModelWhenBatchFits)
{
    Topology topo(TopologySpec::testbed_128());
    PerfModel strict(&topo);
    PerfModelConfig config;
    config.allow_grad_accumulation = true;
    PerfModel accum(&topo, config);
    // No micro-batching needed: identical predictions.
    EXPECT_DOUBLE_EQ(
        strict.compact_throughput(DnnModel::kResNet50, 128, 4),
        accum.compact_throughput(DnnModel::kResNet50, 128, 4));
}

TEST(GradAccumulation, AccumulationCostIsCharged)
{
    Topology topo(TopologySpec::testbed_128());
    PerfModelConfig cheap;
    cheap.allow_grad_accumulation = true;
    cheap.accumulation_overhead_s = 0.0;
    PerfModelConfig costly = cheap;
    costly.accumulation_overhead_s = 10.0e-3;
    PerfModel fast(&topo, cheap);
    PerfModel slow(&topo, costly);
    // 8 micro-steps on one GPU: the overhead knob must show up.
    EXPECT_GT(fast.compact_throughput(DnnModel::kGpt2, 256, 1),
              slow.compact_throughput(DnnModel::kGpt2, 256, 1));
}

TEST(EdgeCases, SchedulersHandleAllBestEffortTrace)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 15;
    gen.best_effort_fraction = 1.0;
    Trace trace = TraceGenerator::generate(gen);
    for (const std::string name : {"elasticflow", "chronus", "edf"}) {
        SCOPED_TRACE(name);
        auto scheduler = make_scheduler(name);
        Simulator sim(trace, scheduler.get());
        RunResult result = sim.run();
        EXPECT_EQ(result.dropped_count(), 0u);
        for (const JobOutcome &job : result.jobs)
            EXPECT_TRUE(job.finished) << job.spec.id;
    }
}

TEST(EdgeCases, HugeJobSpanningWholeCluster)
{
    Trace trace =
        TraceBuilder(TopologySpec::testbed_128())
            .slo(DnnModel::kResNet50, 256, 128, 0.0, 4.0 * kHour, 1.4)
            .build();
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[0].met_deadline());
}

}  // namespace
}  // namespace ef

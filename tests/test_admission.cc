/**
 * @file
 * Tests for admission control (Algorithm 1): the paper's Figure 4
 * walkthrough, progressive-filling semantics, and the Theorem 1
 * relationship with the linear-curve closed form.
 */
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "core/admission.h"

namespace ef {
namespace {

ScalingCurve
fig4_curve()
{
    return ScalingCurve::from_pow2_table({1.0, 1.5, 2.0});
}

PlannerConfig
unit_config(GpuCount gpus)
{
    PlannerConfig config;
    config.total_gpus = gpus;
    config.slot_seconds = 1.0;
    return config;
}

PlanningJob
make_job(JobId id, ScalingCurve curve, double remaining, Time deadline)
{
    PlanningJob job;
    job.id = id;
    job.curve = std::move(curve);
    job.remaining_iterations = remaining;
    job.deadline = deadline;
    return job;
}

TEST(Admission, PaperFigure4Example)
{
    // Jobs A and B occupy 3 GPUs in slot 0; job C (D=2, M=3) must use
    // 1 GPU in slot 0 and 4 GPUs in slot 1 (paper §4.1).
    std::vector<PlanningJob> jobs = {
        make_job(1, fig4_curve(), 1.0, 1.0),  // A: 1 GPU for slot 0
        make_job(2, fig4_curve(), 1.5, 1.0),  // B: 2 GPUs for slot 0
        make_job(3, fig4_curve(), 3.0, 2.0),  // C
    };
    AdmissionOutcome outcome = run_admission(unit_config(4), 0.0, jobs);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_EQ(outcome.plans.at(1).gpus, (std::vector<GpuCount>{1}));
    EXPECT_EQ(outcome.plans.at(2).gpus, (std::vector<GpuCount>{2}));
    EXPECT_EQ(outcome.plans.at(3).gpus, (std::vector<GpuCount>{1, 4}));
}

TEST(Admission, DropsWhenNoLevelSuffices)
{
    // Same scenario but job C must finish in slot 1 alone: max level 4
    // yields T(1) + nothing = impossible within one slot.
    std::vector<PlanningJob> jobs = {
        make_job(1, fig4_curve(), 1.0, 1.0),
        make_job(2, fig4_curve(), 1.5, 1.0),
        make_job(3, fig4_curve(), 3.0, 1.0),
    };
    EXPECT_FALSE(run_admission(unit_config(4), 0.0, jobs).feasible);
}

TEST(Admission, MinimumSatisfactoryShareUsesSmallestLevel)
{
    // Deadline 4, M = 3, curve T(1)=1: one GPU suffices; the paper's
    // diminishing-returns argument says never allocate more.
    std::vector<PlanningJob> jobs = {
        make_job(1, fig4_curve(), 3.0, 4.0),
    };
    AdmissionOutcome outcome = run_admission(unit_config(4), 0.0, jobs);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_EQ(outcome.plans.at(1).gpus,
              (std::vector<GpuCount>{1, 1, 1}));
}

TEST(Admission, TighterDeadlineRaisesShare)
{
    // Deadline 1.5 time units, M = 2: needs T(2)=1.5 in slot 0 plus
    // the half slot... level 2 gives 1.5 + 0.75 = 2.25 >= 2.
    std::vector<PlanningJob> jobs = {
        make_job(1, fig4_curve(), 2.0, 1.5),
    };
    AdmissionOutcome outcome = run_admission(unit_config(4), 0.0, jobs);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_EQ(outcome.plans.at(1).at(0), 2);
}

TEST(Admission, ZeroRemainingJobGetsEmptyPlan)
{
    std::vector<PlanningJob> jobs = {
        make_job(1, fig4_curve(), 0.0, 1.0),
    };
    AdmissionOutcome outcome = run_admission(unit_config(4), 0.0, jobs);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_EQ(outcome.plans.at(1).horizon(), 0);
}

TEST(Admission, PastDeadlineInfeasible)
{
    std::vector<PlanningJob> jobs = {
        make_job(1, fig4_curve(), 1.0, -5.0),
    };
    EXPECT_FALSE(run_admission(unit_config(4), 10.0, jobs).feasible);
}

TEST(Admission, BestEffortJobRejectedByContract)
{
    std::vector<PlanningJob> jobs = {
        make_job(1, fig4_curve(), 1.0, kTimeInfinity),
    };
    EXPECT_DEATH(run_admission(unit_config(4), 0.0, jobs),
                 "best-effort");
}

TEST(ProgressiveFill, LatestDirectionPacksLate)
{
    PlannerConfig config = unit_config(4);
    config.direction = FillDirection::kLatest;
    PlanningJob job = make_job(1, fig4_curve(), 2.0, 4.0);
    std::vector<GpuCount> avail(4, 4);
    auto plan = progressive_fill(job, avail, PlanHorizon{4, 1.0},
                                 config);
    ASSERT_TRUE(plan.has_value());
    // Two iterations at level 1 occupy the last two slots.
    EXPECT_EQ(plan->gpus, (std::vector<GpuCount>{0, 0, 1, 1}));
}

TEST(ProgressiveFill, EarliestDirectionPacksEarly)
{
    PlannerConfig config = unit_config(4);
    PlanningJob job = make_job(1, fig4_curve(), 2.0, 4.0);
    std::vector<GpuCount> avail(4, 4);
    auto plan = progressive_fill(job, avail, PlanHorizon{4, 1.0},
                                 config);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->gpus, (std::vector<GpuCount>{1, 1}));
}

TEST(ProgressiveFill, StartSlotLeavesPrefixUntouched)
{
    PlannerConfig config = unit_config(4);
    PlanningJob job = make_job(1, fig4_curve(), 2.0, 4.0);
    std::vector<GpuCount> avail(4, 4);
    auto plan = progressive_fill(job, avail, PlanHorizon{4, 1.0},
                                 config, /*start_slot=*/2);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->at(0), 0);
    EXPECT_EQ(plan->at(1), 0);
    EXPECT_EQ(plan->at(2), 1);
    EXPECT_EQ(plan->at(3), 1);
}

TEST(ProgressiveFill, FractionalLastSlotCountsPartially)
{
    PlannerConfig config = unit_config(4);
    PlanningJob job = make_job(1, fig4_curve(), 1.0, 0.0);
    std::vector<GpuCount> avail(1, 4);
    // Half a slot at level 1 yields 0.5 < 1 -> level 2 yields 0.75 <
    // 1 -> level 4 yields 1.0 >= 1.
    auto plan = progressive_fill(job, avail, PlanHorizon{1, 0.5},
                                 config);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->at(0), 4);
}

/**
 * Theorem 1 (contrapositive direction): whenever the closed-form
 * linear-curve condition fails, progressive filling must also report
 * infeasible; whenever progressive filling succeeds, the condition
 * must hold (an explicit allocation is a witness of the GPU-time
 * bound).
 */
TEST(Admission, Theorem1PropertySweep)
{
    Rng rng(2024);
    for (int trial = 0; trial < 300; ++trial) {
        GpuCount gpus = GpuCount(1) << rng.uniform_int(1, 4);
        // Linear curves: throughput k per GPU up to the cluster size.
        int levels = log2_exact(gpus) + 1;
        std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 5));
        std::vector<PlanningJob> jobs;
        for (std::size_t i = 0; i < n; ++i) {
            double k = rng.uniform_real(0.5, 2.0);
            std::vector<double> table;
            for (int level = 0; level < levels; ++level)
                table.push_back(k * static_cast<double>(1 << level));
            jobs.push_back(make_job(
                static_cast<JobId>(i),
                ScalingCurve::from_pow2_table(table),
                rng.uniform_real(0.5, 20.0),
                rng.uniform_real(1.0, 12.0)));
        }
        bool progressive =
            run_admission(unit_config(gpus), 0.0, jobs).feasible;
        bool closed_form = linear_feasibility(gpus, 0.0, jobs);
        if (progressive) {
            EXPECT_TRUE(closed_form) << "trial " << trial;
        }
        if (!closed_form) {
            EXPECT_FALSE(progressive) << "trial " << trial;
        }
    }
}

/** Invariant sweep: plans never exceed capacity and always satisfy
 *  remaining work before the deadline. */
TEST(Admission, FeasiblePlansRespectInvariants)
{
    Rng rng(555);
    for (int trial = 0; trial < 200; ++trial) {
        GpuCount gpus = 8;
        std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 6));
        std::vector<PlanningJob> jobs;
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<double> table = {1.0};
            double prev = 1.0, inc = 0.8;
            for (int level = 1; level <= 3; ++level) {
                prev += inc * rng.uniform_real(0.3, 1.0);
                inc *= 0.7;
                table.push_back(prev);
            }
            jobs.push_back(make_job(
                static_cast<JobId>(i),
                ScalingCurve::from_pow2_table(table),
                rng.uniform_real(0.5, 15.0),
                rng.uniform_real(1.0, 10.0)));
        }
        PlannerConfig config = unit_config(gpus);
        AdmissionOutcome outcome = run_admission(config, 0.0, jobs);
        if (!outcome.feasible)
            continue;
        int horizon = 0;
        for (const auto &[id, plan] : outcome.plans)
            horizon = std::max(horizon, plan.horizon());
        for (int t = 0; t < horizon; ++t) {
            GpuCount used = 0;
            for (const auto &[id, plan] : outcome.plans)
                used += plan.at(t);
            EXPECT_LE(used, gpus) << "trial " << trial << " slot " << t;
        }
        for (const PlanningJob &job : jobs) {
            const SlotPlan &plan = outcome.plans.at(job.id);
            EXPECT_GE(plan_iterations(job.curve, plan, 1.0),
                      job.remaining_iterations - 1e-6)
                << "trial " << trial << " job " << job.id;
            EXPECT_LE(plan_finish_seconds(job.curve, plan,
                                          job.remaining_iterations, 1.0),
                      job.deadline + 1e-6)
                << "trial " << trial << " job " << job.id;
        }
    }
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the assembled ElasticFlow scheduler: the performance
 * guarantee, admission decisions, elastic scale-up/down behaviour,
 * and best-effort handling (§4.4).
 */
#include <gtest/gtest.h>

#include "sched/elastic_flow.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

SimConfig
no_overhead()
{
    SimConfig config;
    config.overhead.enabled = false;
    return config;
}

TEST(ElasticFlow, AdmitsTightDeadlineByScalingOut)
{
    // Deadline 0.55x of the 1-GPU duration: only elastic scaling can
    // make this feasible.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kResNet50, 256, 1, 0.0, 2.0 * kHour, 0.55)
            .build();
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[0].admitted);
    EXPECT_TRUE(result.jobs[0].met_deadline());
}

TEST(ElasticFlow, DropsImpossibleDeadline)
{
    // Even the whole cluster cannot compress a job below its maximal
    // speedup; a hopeless deadline is rejected at submission.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kVgg16, 64, 32, 0.0, 10.0 * kHour, 0.2)
            .build();
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    EXPECT_FALSE(result.jobs[0].admitted);
    EXPECT_FALSE(result.jobs[0].finished);
}

TEST(ElasticFlow, DropsJobThatWouldBreakAdmittedDeadlines)
{
    // Two jobs whose tight deadlines each demand the whole cluster
    // (BERT at 0.82x its 8-GPU duration needs all 32 GPUs): the second
    // arrival would steal the first one's minimum share. Margins are
    // zeroed to make the admission arithmetic exact.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kBert, 128, 8, 0.0, 4.0 * kHour, 0.82)
            .slo(DnnModel::kBert, 128, 8, 60.0, 4.0 * kHour, 0.82)
            .build();
    ElasticFlowConfig config;
    config.admission_margin = 0.0;
    config.overhead_allowance_s = 0.0;
    ElasticFlowScheduler scheduler(config);
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[0].admitted);
    EXPECT_TRUE(result.jobs[0].met_deadline());
    EXPECT_FALSE(result.jobs[1].admitted);
}

TEST(ElasticFlow, PerformanceGuaranteeAcrossSeeds)
{
    // The paper's §3.1 guarantee: every admitted job meets its
    // deadline — across random traces, with overheads modelled.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        TraceGenConfig config = testbed_small_preset();
        config.seed = seed;
        config.num_jobs = 40;
        Trace trace = TraceGenerator::generate(config);
        ElasticFlowScheduler scheduler;
        Simulator sim(trace, &scheduler);
        RunResult result = sim.run();
        for (const JobOutcome &job : result.jobs) {
            if (!job.admitted || job.spec.kind != JobKind::kSlo)
                continue;
            EXPECT_TRUE(job.met_deadline())
                << "seed " << seed << " job " << job.spec.id;
        }
    }
}

TEST(ElasticFlow, UsesIdleGpusToFinishEarly)
{
    // Loose deadline, empty cluster: Algorithm 2 should still boost
    // the job (constraint 7) so it finishes well before its deadline.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kResNet50, 256, 1, 0.0, 2.0 * kHour, 1.5)
            .build();
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[0].finished);
    EXPECT_LT(result.jobs[0].jct(), kHour);
}

TEST(ElasticFlow, ReleasesBoostWhenContendedJobArrives)
{
    // Job 1 runs boosted; job 2 arrives with a tight deadline needing
    // most of the cluster. Both must meet their deadlines.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kInceptionV3, 128, 2, 0.0, 3.0 * kHour, 1.4)
            .slo(DnnModel::kResNet50, 256, 4, 600.0, 3.0 * kHour, 0.65)
            .build();
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[0].met_deadline());
    EXPECT_TRUE(result.jobs[1].met_deadline());
    // Job 1 was actually rescaled at least once beyond its initial
    // placement.
    EXPECT_GE(result.jobs[0].scaling_events, 2);
}

TEST(ElasticFlow, BestEffortJobsAlwaysAdmittedAndFinish)
{
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kResNet50, 256, 4, 0.0, 4.0 * kHour, 0.6)
            .best_effort(DnnModel::kInceptionV3, 128, 4, 10.0, kHour)
            .build();
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[1].admitted);
    EXPECT_TRUE(result.jobs[0].met_deadline());
    EXPECT_TRUE(result.jobs[1].finished);
}

TEST(ElasticFlow, BestEffortDoesNotStealMinimumShares)
{
    // Saturating SLO job + best-effort job submitted first: the SLO
    // job's guarantee must hold anyway.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .best_effort(DnnModel::kVgg16, 256, 8, 0.0, 10.0 * kHour)
            .slo(DnnModel::kResNet50, 256, 4, 30.0, 4.0 * kHour, 0.6)
            .build();
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    const JobOutcome &slo =
        result.jobs[0].spec.kind == JobKind::kSlo ? result.jobs[0]
                                                  : result.jobs[1];
    EXPECT_TRUE(slo.met_deadline());
}

TEST(ElasticFlow, PowerOfTwoAllocationsOnly)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    // Snapshot allocations at every event via the used_gpus series:
    // indirect, so instead re-run and check outcome-level invariants.
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.admitted) {
            EXPECT_TRUE(job.finished) << job.spec.id;
        }
    }
    EXPECT_EQ(result.placement_failures, 0);
}

TEST(ElasticFlow, LatestFillDirectionAlsoHonorsGuarantee)
{
    ElasticFlowConfig config;
    config.direction = FillDirection::kLatest;
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 30;
    Trace trace = TraceGenerator::generate(gen);
    ElasticFlowScheduler scheduler(config);
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.admitted && job.spec.kind == JobKind::kSlo) {
            EXPECT_TRUE(job.met_deadline()) << job.spec.id;
        }
    }
}

}  // namespace
}  // namespace ef

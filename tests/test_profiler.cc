/**
 * @file
 * Tests for the pre-run throughput profiler (paper §6.6 / Fig. 12a):
 * it starts at the memory-bound minimum, stops when GPUs stop
 * helping, and reports the wall-clock cost.
 */
#include <gtest/gtest.h>

#include "core/scaling_curve.h"
#include "exec/profiler.h"

namespace ef {
namespace {

class ProfilerTest : public testing::Test
{
  protected:
    ProfilerTest()
        : topo_(TopologySpec::testbed_128()), perf_(&topo_),
          profiler_(&perf_)
    {}

    Topology topo_;
    PerfModel perf_;
    Profiler profiler_;
};

TEST_F(ProfilerTest, StartsAtMemoryBoundMinimum)
{
    // GPT-2 at batch 256 cannot fit under 8 workers.
    ProfileReport report =
        profiler_.profile(DnnModel::kGpt2, 256, 128);
    ASSERT_FALSE(report.entries.empty());
    EXPECT_EQ(report.entries.front().workers, 8);
}

TEST_F(ProfilerTest, EntriesAreDoublingCounts)
{
    ProfileReport report =
        profiler_.profile(DnnModel::kResNet50, 128, 128);
    for (std::size_t i = 1; i < report.entries.size(); ++i) {
        EXPECT_EQ(report.entries[i].workers,
                  report.entries[i - 1].workers * 2);
    }
}

TEST_F(ProfilerTest, StopsWhenThroughputStopsImproving)
{
    ProfileReport report =
        profiler_.profile(DnnModel::kVgg16, 64, 128);
    // All but possibly the last entry strictly improve.
    for (std::size_t i = 1; i + 1 < report.entries.size(); ++i) {
        EXPECT_GT(report.entries[i].throughput,
                  report.entries[i - 1].throughput);
    }
    // The scan never runs past the batch-size bound.
    EXPECT_LE(report.entries.back().workers, 64);
}

TEST_F(ProfilerTest, CostAccountsSetupAndIterations)
{
    ProfilerConfig config;
    config.iterations_per_config = 10;
    config.setup_seconds = 5.0;
    Profiler profiler(&perf_, config);
    ProfileReport report =
        profiler.profile(DnnModel::kBert, 64, 16);
    double expected = 0.0;
    for (const ProfileEntry &entry : report.entries)
        expected += 5.0 + 10.0 / entry.throughput;
    EXPECT_NEAR(report.total_seconds, expected, 1e-9);
    // Profiling minutes, training hours: the overhead is marginal.
    EXPECT_LT(report.total_seconds, 30 * kMinute);
}

TEST_F(ProfilerTest, Pow2TableFeedsScalingCurve)
{
    ProfileReport report =
        profiler_.profile(DnnModel::kDeepSpeech2, 64, 128);
    ScalingCurve curve =
        ScalingCurve::from_pow2_table(report.pow2_table());
    EXPECT_EQ(curve.min_workers(), report.entries.front().workers);
    EXPECT_GT(curve.throughput(curve.min_workers()), 0.0);
}

TEST_F(ProfilerTest, TotalCostCoversAllBatchSizes)
{
    for (DnnModel model : all_models()) {
        Time total = profiler_.total_cost_for_model(model, 128);
        EXPECT_GT(total, 0.0) << model_name(model);
        // Fig. 12a magnitudes: minutes, not hours.
        EXPECT_LT(total, 2.0 * kHour) << model_name(model);
    }
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the console table / chart renderers the benches print.
 */
#include <gtest/gtest.h>

#include "common/table.h"

namespace ef {
namespace {

TEST(ConsoleTable, RendersAlignedColumns)
{
    ConsoleTable table({"scheduler", "ratio"});
    table.add_row({"elasticflow", "0.85"});
    table.add_row({"edf", "0.20"});
    std::string out = table.render();
    EXPECT_NE(out.find("scheduler"), std::string::npos);
    EXPECT_NE(out.find("elasticflow"), std::string::npos);
    EXPECT_NE(out.find("0.20"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ConsoleTable, RejectsMismatchedRowWidth)
{
    ConsoleTable table({"a", "b"});
    EXPECT_DEATH(table.add_row({"only-one"}), "row width");
}

TEST(Format, Double)
{
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Format, Percent)
{
    EXPECT_EQ(format_percent(0.8532), "85.3%");
    EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(BarChart, ScalesToMax)
{
    std::string out =
        render_bar_chart({"a", "bb"}, {1.0, 2.0}, 10);
    // The larger value gets the full width.
    EXPECT_NE(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find("2.000"), std::string::npos);
}

TEST(BarChart, AllZeros)
{
    std::string out = render_bar_chart({"a"}, {0.0}, 10);
    EXPECT_NE(out.find("0.000"), std::string::npos);
}

TEST(Sparkline, RendersRows)
{
    std::string out = render_sparkline({0.0, 1.0, 2.0, 3.0}, 4);
    // 4 rows plus axis.
    int lines = 0;
    for (char c : out)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 5);
}

TEST(Sparkline, EmptySeries)
{
    EXPECT_NE(render_sparkline({}, 4).find("empty"), std::string::npos);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * The paper's two theorems as executable checks.
 *
 * Theorem 1 (linear curves) has a dedicated sweep in
 * test_admission.cc; here it gets exact hand-computable instances.
 *
 * Theorem 2 (greedy optimality): Algorithm 2 finds the most efficient
 * allocation — minimum total GPU time — among allocations that meet
 * every deadline, respect capacity, and are at least as aggressive in
 * the current slot (constraint 7). We verify by exhaustive enumeration
 * on small instances: every feasible slot-plan assignment whose slot-0
 * usage is >= the greedy's must consume at least as much GPU time.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/allocator.h"

namespace ef {
namespace {

PlannerConfig
unit_config(GpuCount gpus)
{
    PlannerConfig config;
    config.total_gpus = gpus;
    config.slot_seconds = 1.0;
    return config;
}

PlanningJob
make_job(JobId id, std::vector<double> table, double remaining,
         Time deadline)
{
    PlanningJob job;
    job.id = id;
    job.curve = ScalingCurve::from_pow2_table(std::move(table));
    job.remaining_iterations = remaining;
    job.deadline = deadline;
    return job;
}

/** All level choices a job can hold in one slot. */
std::vector<GpuCount>
levels_of(const PlanningJob &job)
{
    std::vector<GpuCount> levels = {0};
    for (GpuCount g = job.curve.min_workers();
         g != 0 && g <= job.curve.max_useful();
         g = (g < job.curve.max_useful() ? g * 2 : 0)) {
        levels.push_back(g);
    }
    return levels;
}

struct BruteForceResult
{
    bool any_feasible = false;
    double best_gpu_time = 0.0;
    GpuCount max_slot0 = 0;
};

/**
 * Exhaustively enumerate per-slot level assignments for all jobs over
 * @p horizon slots; track the cheapest feasible assignment with
 * slot-0 usage >= @p min_slot0 and the maximum feasible slot-0 usage.
 */
BruteForceResult
brute_force(const std::vector<PlanningJob> &jobs, GpuCount gpus,
            int horizon, GpuCount min_slot0)
{
    std::vector<std::vector<GpuCount>> levels;
    for (const PlanningJob &job : jobs)
        levels.push_back(levels_of(job));

    const std::size_t n = jobs.size();
    std::vector<std::size_t> choice(n * static_cast<std::size_t>(horizon),
                                    0);
    BruteForceResult result;
    result.best_gpu_time = 1e18;

    while (true) {
        // Evaluate the current assignment.
        bool capacity_ok = true;
        for (int t = 0; t < horizon && capacity_ok; ++t) {
            GpuCount used = 0;
            for (std::size_t i = 0; i < n; ++i) {
                used += levels[i][choice[i * horizon + t]];
            }
            capacity_ok = used <= gpus;
        }
        if (capacity_ok) {
            bool deadlines_ok = true;
            double gpu_time = 0.0;
            GpuCount slot0 = 0;
            for (std::size_t i = 0; i < n && deadlines_ok; ++i) {
                double iters = 0.0;
                int deadline_slot = static_cast<int>(jobs[i].deadline);
                for (int t = 0; t < horizon; ++t) {
                    GpuCount x = levels[i][choice[i * horizon + t]];
                    if (t < deadline_slot)
                        iters += jobs[i].curve.throughput(x);
                    gpu_time += static_cast<double>(x);
                    if (t == 0)
                        slot0 += x;
                }
                deadlines_ok =
                    iters >= jobs[i].remaining_iterations - 1e-9;
            }
            if (deadlines_ok) {
                result.any_feasible = true;
                result.max_slot0 = std::max(result.max_slot0, slot0);
                if (slot0 >= min_slot0) {
                    result.best_gpu_time =
                        std::min(result.best_gpu_time, gpu_time);
                }
            }
        }
        // Advance the odometer.
        std::size_t pos = 0;
        while (pos < choice.size()) {
            std::size_t job_index = pos / horizon;
            if (++choice[pos] < levels[job_index].size())
                break;
            choice[pos] = 0;
            ++pos;
        }
        if (pos == choice.size())
            break;
    }
    return result;
}

void
check_theorem2(const std::vector<PlanningJob> &jobs, GpuCount gpus,
               int horizon, const std::string &label)
{
    PlannerConfig config = unit_config(gpus);
    AdmissionOutcome admission = run_admission(config, 0.0, jobs);
    ASSERT_TRUE(admission.feasible) << label;
    AllocationOutcome outcome =
        run_allocation(config, 0.0, jobs, admission.plans, {});

    double greedy_time = 0.0;
    GpuCount greedy_slot0 = 0;
    for (const PlanningJob &job : jobs) {
        greedy_time += outcome.plans.at(job.id).gpu_seconds(1.0);
        greedy_slot0 += outcome.plans.at(job.id).at(0);
    }

    BruteForceResult brute =
        brute_force(jobs, gpus, horizon, greedy_slot0);
    ASSERT_TRUE(brute.any_feasible) << label;
    // Greedy's own allocation is inside the enumerated set, so the
    // brute-force optimum can never exceed it...
    EXPECT_GE(greedy_time, brute.best_gpu_time - 1e-6) << label;
    // ...and Theorem 2 holds within the paper's plan class (uniform
    // progressive-filling levels). The brute force also enumerates
    // *mixed-level* plans the O(G*T) algorithm deliberately does not
    // consider, so allow the bounded quantization gap that class
    // restriction costs (measured: < 35% on these instance sizes).
    EXPECT_LE(greedy_time, brute.best_gpu_time * 1.35 + 1e-6) << label;
}

/** Exact equality cases: instances where uniform levels are optimal. */
void
check_theorem2_exact(const std::vector<PlanningJob> &jobs,
                     GpuCount gpus, int horizon,
                     const std::string &label)
{
    PlannerConfig config = unit_config(gpus);
    AdmissionOutcome admission = run_admission(config, 0.0, jobs);
    ASSERT_TRUE(admission.feasible) << label;
    AllocationOutcome outcome =
        run_allocation(config, 0.0, jobs, admission.plans, {});
    double greedy_time = 0.0;
    GpuCount greedy_slot0 = 0;
    for (const PlanningJob &job : jobs) {
        greedy_time += outcome.plans.at(job.id).gpu_seconds(1.0);
        greedy_slot0 += outcome.plans.at(job.id).at(0);
    }
    BruteForceResult brute =
        brute_force(jobs, gpus, horizon, greedy_slot0);
    ASSERT_TRUE(brute.any_feasible) << label;
    EXPECT_NEAR(greedy_time, brute.best_gpu_time, 1e-6) << label;
}

TEST(Theorem2, PaperCurveTwoJobs)
{
    std::vector<PlanningJob> jobs = {
        make_job(1, {1.0, 1.5, 2.0}, 3.0, 3.0),
        make_job(2, {1.0, 1.5, 2.0}, 3.0, 4.0),
    };
    check_theorem2_exact(jobs, 4, 5, "paper curve");
}

TEST(Theorem2, AsymmetricCurves)
{
    std::vector<PlanningJob> jobs = {
        make_job(1, {1.0, 1.9}, 2.0, 3.0),
        make_job(2, {1.0, 1.1}, 2.0, 3.0),
    };
    check_theorem2_exact(jobs, 3, 4, "asymmetric");
}

TEST(Theorem2, RandomInstanceSweep)
{
    Rng rng(808);
    int evaluated = 0;
    for (int trial = 0; trial < 40; ++trial) {
        GpuCount gpus = GpuCount(1) << rng.uniform_int(1, 2);  // 2 or 4
        std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 2));
        int horizon = static_cast<int>(rng.uniform_int(2, 3));
        std::vector<PlanningJob> jobs;
        for (std::size_t i = 0; i < n; ++i) {
            double t1 = 1.0;
            double t2 = t1 + rng.uniform_real(0.1, 0.9);
            double t4 = t2 + rng.uniform_real(0.05, t2 - t1);
            jobs.push_back(make_job(
                static_cast<JobId>(i), {t1, t2, t4},
                rng.uniform_real(0.5, 3.0),
                static_cast<double>(rng.uniform_int(1, horizon))));
        }
        PlannerConfig config = unit_config(gpus);
        if (!run_admission(config, 0.0, jobs).feasible)
            continue;
        ++evaluated;
        check_theorem2(jobs, gpus, horizon,
                       "trial " + std::to_string(trial));
    }
    EXPECT_GT(evaluated, 10);
}

TEST(Theorem1, ExactBoundaryInstance)
{
    // Two 1-GPU-throughput jobs on 1 GPU with slot-aligned work:
    // total work 3 by deadline 3 is exactly feasible; any more is not.
    // (Non-slot-aligned work makes the slotted algorithm conservative
    // — a job occupies its final slot wholly — which is expected.)
    std::vector<PlanningJob> feasible = {
        make_job(1, {1.0}, 2.0, 2.0),
        make_job(2, {1.0}, 1.0, 3.0),
    };
    EXPECT_TRUE(linear_feasibility(1, 0.0, feasible));
    EXPECT_TRUE(run_admission(unit_config(1), 0.0, feasible).feasible);

    std::vector<PlanningJob> infeasible = {
        make_job(1, {1.0}, 2.0, 2.0),
        make_job(2, {1.0}, 1.5, 3.0),
    };
    EXPECT_FALSE(linear_feasibility(1, 0.0, infeasible));
    EXPECT_FALSE(
        run_admission(unit_config(1), 0.0, infeasible).feasible);
}

TEST(Theorem1, PrefixConditionBites)
{
    // The second prefix violates the bound even though the total fits
    // the last deadline.
    std::vector<PlanningJob> jobs = {
        make_job(1, {2.0, 4.0}, 5.0, 1.0),  // needs 2.5 GPU time by 1
        make_job(2, {2.0, 4.0}, 1.0, 4.0),
    };
    EXPECT_FALSE(linear_feasibility(2, 0.0, jobs));
    EXPECT_FALSE(run_admission(unit_config(2), 0.0, jobs).feasible);
}

}  // namespace
}  // namespace ef

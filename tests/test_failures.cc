/**
 * @file
 * Tests for the node-failure extension (§4.4): placement-level server
 * availability, failure/repair dynamics in the simulator, checkpoint
 * rollback, ElasticFlow's failure headroom, and throughput-noise
 * robustness.
 */
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "sched/elastic_flow.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

TEST(PlacementAvailability, DownServersHoldNothing)
{
    Topology topo(TopologySpec::testbed_32());
    PlacementManager manager(&topo);
    EXPECT_EQ(manager.available_gpus(), 32);

    manager.set_server_available(1, false);
    EXPECT_EQ(manager.available_gpus(), 24);
    EXPECT_EQ(manager.idle_gpus(), 24);
    EXPECT_EQ(manager.free_in_server(1), 0);
    EXPECT_FALSE(manager.server_available(1));

    // Placements avoid the down server even via repack.
    for (int i = 0; i < 3; ++i) {
        PlacementResult r = manager.place(
            i, 8, PlacementStrategy::kBestFitCompact, true);
        ASSERT_TRUE(r.ok) << i;
        for (GpuCount g : r.gpus)
            EXPECT_NE(topo.server_of(g), 1);
    }
    // A fourth 8-GPU job no longer fits.
    EXPECT_FALSE(manager
                     .place(99, 8, PlacementStrategy::kBestFitCompact,
                            true)
                     .ok);
    manager.validate();

    manager.set_server_available(1, true);
    EXPECT_TRUE(manager
                    .place(99, 8, PlacementStrategy::kBestFitCompact,
                           true)
                    .ok);
    manager.validate();
}

TEST(PlacementAvailability, OccupiedServerCannotGoDown)
{
    Topology topo(TopologySpec::testbed_32());
    PlacementManager manager(&topo);
    ASSERT_TRUE(manager.place(1, 8, PlacementStrategy::kFirstFit,
                              false).ok);
    EXPECT_DEATH(manager.set_server_available(0, false), "drained");
}

TEST(Failures, JobsSurviveServerFailures)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 20;
    Trace trace = TraceGenerator::generate(gen);
    SimConfig config;
    config.failures.enabled = true;
    config.failures.server_mtbf_s = 12.0 * kHour;  // aggressive
    config.failures.repair_s = kHour;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    RunResult result = sim.run();

    int evictions = 0;
    for (const JobOutcome &job : result.jobs) {
        evictions += job.failures_suffered;
        if (job.admitted) {
            EXPECT_TRUE(job.finished) << "job " << job.spec.id;
        }
    }
    EXPECT_GT(evictions, 0) << "failure model produced no evictions";
}

TEST(Failures, CheckpointRollbackDelaysVictims)
{
    // One long job; a failure mid-run must push its finish time out
    // relative to a failure-free run.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kVgg16, 256, 8, 0.0, 10.0 * kHour,
                           3.0)
                      .build();
    auto run_with = [&trace](bool failures) {
        SimConfig config;
        config.failures.enabled = failures;
        config.failures.server_mtbf_s = 6.0 * kHour;
        config.failures.repair_s = 30.0 * kMinute;
        config.failures.seed = 3;
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        return sim.run();
    };
    RunResult clean = run_with(false);
    RunResult faulty = run_with(true);
    ASSERT_TRUE(clean.jobs[0].finished);
    ASSERT_TRUE(faulty.jobs[0].finished);
    if (faulty.jobs[0].failures_suffered > 0) {
        EXPECT_GT(faulty.jobs[0].finish_time, clean.jobs[0].finish_time);
    }
}

TEST(Failures, HeadroomProtectsDeadlinesUnderFailures)
{
    TraceGenConfig gen = testbed_large_preset();
    gen.num_jobs = 80;
    Trace trace = TraceGenerator::generate(gen);

    auto run_with = [&trace](GpuCount headroom) {
        SimConfig config;
        config.failures.enabled = true;
        config.failures.server_mtbf_s = 5.0 * kDay;
        config.failures.repair_s = 2.0 * kHour;
        ElasticFlowConfig ef_config;
        ef_config.failure_headroom_gpus = headroom;
        ElasticFlowScheduler scheduler(ef_config);
        Simulator sim(trace, &scheduler, config);
        RunResult result = sim.run();
        int missed = 0;
        for (const JobOutcome &job : result.jobs) {
            if (job.admitted && job.spec.kind == JobKind::kSlo &&
                !job.met_deadline()) {
                ++missed;
            }
        }
        return missed;
    };
    int missed_with = run_with(16);  // two servers' worth of reserve
    int missed_without = run_with(0);
    EXPECT_LE(missed_with, missed_without);
    EXPECT_LE(missed_with, 1);
}

TEST(Failures, DeterministicUnderFailures)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 15;
    Trace trace = TraceGenerator::generate(gen);
    auto run_once = [&trace]() {
        SimConfig config;
        config.failures.enabled = true;
        config.failures.server_mtbf_s = kDay;
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        return sim.run();
    };
    RunResult a = run_once();
    RunResult b = run_once();
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].failures_suffered,
                  b.jobs[i].failures_suffered) << i;
        if (a.jobs[i].finished && b.jobs[i].finished) {
            EXPECT_DOUBLE_EQ(a.jobs[i].finish_time,
                             b.jobs[i].finish_time) << i;
        }
    }
}

TEST(Failures, PostFailureReplanIsNeverElided)
{
    // With immediate (uncoalesced) replans and elision on, three
    // requests land at t = 600 in order: arrival (flushes, decides),
    // scripted crash (must NOT be elided — the fault dirtied the
    // view), and the colliding tick (elidable). The crash victim must
    // be re-placed by the crash-triggered replan at that same
    // timestamp.
    class TickingFixedScheduler : public Scheduler
    {
      public:
        std::string name() const override { return "fixed"; }
        Time reschedule_interval() const override { return 600.0; }
        SchedulerDecision
        allocate() override
        {
            SchedulerDecision decision;
            GpuCount free = view_->total_gpus();
            for (JobId id : view_->active_jobs()) {
                GpuCount req = view_->spec(id).requested_gpus;
                if (view_->remaining_iterations(id) > 0.0 &&
                    req <= free) {
                    decision.gpus[id] = req;
                    free -= req;
                }
            }
            return decision;
        }
    };
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kVgg16, 256, 8, 0.0, kHour, 4.0)
                      .slo(DnnModel::kBert, 64, 4, 600.0, kHour, 4.0)
                      .build();
    TickingFixedScheduler scheduler;
    SimConfig config;
    config.overhead.enabled = false;
    config.coalesce_replans = false;
    config.elide_replans = true;
    config.faults.script.push_back(
        {600.0, FaultType::kServerCrash, 0, 1800.0, 0.0});
    Simulator sim(trace, &scheduler, config);
    RunResult result = sim.run();

    EXPECT_GE(result.replans_elided, 1);  // elision is active...
    EXPECT_EQ(result.jobs[0].failures_suffered, 1);
    bool evicted_at_600 = false;
    bool replaced_at_600 = false;
    for (const AllocationEvent &event : result.allocation_log) {
        if (event.job != 0 || !almost_equal(event.time, 600.0))
            continue;
        if (event.gpus.empty())
            evicted_at_600 = true;
        else if (evicted_at_600)
            replaced_at_600 = true;
    }
    EXPECT_TRUE(evicted_at_600);
    // ...yet the post-failure replan ran despite a decision already
    // made at t = 600, because the fault dirtied the view.
    EXPECT_TRUE(replaced_at_600);
    for (const JobOutcome &job : result.jobs)
        EXPECT_TRUE(job.finished) << job.spec.id;
}

TEST(Noise, SmallProfilingErrorIsAbsorbedByMargin)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 30;
    Trace trace = TraceGenerator::generate(gen);
    SimConfig config;
    config.noise.throughput_error = 0.02;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.admitted && job.spec.kind == JobKind::kSlo) {
            EXPECT_TRUE(job.met_deadline()) << job.spec.id;
        }
    }
}

TEST(Noise, LargeErrorDegradesGracefully)
{
    // 25% misestimation exceeds the margin: some admitted jobs may
    // slip, but everything still completes and nothing crashes.
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 30;
    Trace trace = TraceGenerator::generate(gen);
    SimConfig config;
    config.noise.throughput_error = 0.25;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.admitted) {
            EXPECT_TRUE(job.finished) << job.spec.id;
        }
    }
}

}  // namespace
}  // namespace ef

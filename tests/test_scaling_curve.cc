/**
 * @file
 * Tests for ScalingCurve: lookup semantics, feasible range, concavity
 * enforcement, and the fixed-size restriction used by Chronus.
 */
#include <gtest/gtest.h>

#include "core/scaling_curve.h"

namespace ef {
namespace {

TEST(ScalingCurve, LookupRoundsDownToPow2)
{
    // Figure 4(a): T(1)=1, T(2)=1.5, T(4)=2.
    ScalingCurve curve =
        ScalingCurve::from_pow2_table({1.0, 1.5, 2.0});
    EXPECT_DOUBLE_EQ(curve.throughput(1), 1.0);
    EXPECT_DOUBLE_EQ(curve.throughput(2), 1.5);
    EXPECT_DOUBLE_EQ(curve.throughput(3), 1.5);
    EXPECT_DOUBLE_EQ(curve.throughput(4), 2.0);
    EXPECT_DOUBLE_EQ(curve.throughput(100), 2.0);  // clamps
    EXPECT_DOUBLE_EQ(curve.throughput(0), 0.0);
    EXPECT_DOUBLE_EQ(curve.throughput(-1), 0.0);
}

TEST(ScalingCurve, MinWorkersFromLeadingZeros)
{
    ScalingCurve curve =
        ScalingCurve::from_pow2_table({0.0, 0.0, 2.0, 3.0});
    EXPECT_EQ(curve.min_workers(), 4);
    EXPECT_DOUBLE_EQ(curve.throughput(2), 0.0);
    EXPECT_DOUBLE_EQ(curve.throughput(4), 2.0);
    EXPECT_EQ(curve.usable(3), 0);
    EXPECT_EQ(curve.usable(4), 4);
}

TEST(ScalingCurve, MaxUsefulStopsAtPlateau)
{
    ScalingCurve curve = ScalingCurve::from_pow2_table(
        {1.0, 1.8, 2.0, 2.0, 2.0}, /*enforce_concave=*/false);
    EXPECT_EQ(curve.max_useful(), 4);
    EXPECT_EQ(curve.usable(16), 4);
    EXPECT_EQ(curve.next_step(4), 0);
    EXPECT_EQ(curve.next_step(2), 4);
    EXPECT_EQ(curve.next_step(0), 1);
}

TEST(ScalingCurve, EnforceConcaveLiftsDipsAndMonotone)
{
    // A dip at 2 GPUs and a decrease at the tail.
    ScalingCurve curve =
        ScalingCurve::from_pow2_table({1.0, 0.9, 2.0, 1.8});
    EXPECT_TRUE(curve.concave());
    EXPECT_GE(curve.throughput(2), 1.0);
    EXPECT_GE(curve.throughput(8), curve.throughput(4) - 1e-12);
    EXPECT_DOUBLE_EQ(curve.throughput(1), 1.0);
}

TEST(ScalingCurve, ConcaveDetection)
{
    ScalingCurve concave =
        ScalingCurve::from_pow2_table({1.0, 1.8, 2.5});
    EXPECT_TRUE(concave.concave());
    ScalingCurve convex = ScalingCurve::from_pow2_table(
        {1.0, 1.1, 4.0}, /*enforce_concave=*/false);
    EXPECT_FALSE(convex.concave());
}

TEST(ScalingCurve, UsableRespectsAvailability)
{
    ScalingCurve curve =
        ScalingCurve::from_pow2_table({1.0, 1.5, 2.0, 2.2});
    EXPECT_EQ(curve.usable(0), 0);
    EXPECT_EQ(curve.usable(1), 1);
    EXPECT_EQ(curve.usable(5), 4);
    EXPECT_EQ(curve.usable(7), 4);
    EXPECT_EQ(curve.usable(8), 8);
    EXPECT_EQ(curve.usable(1000), 8);
}

TEST(ScalingCurve, RestrictToFixedSize)
{
    ScalingCurve curve =
        ScalingCurve::from_pow2_table({1.0, 1.5, 2.0, 2.2});
    ScalingCurve fixed = restrict_to_fixed_size(curve, 4);
    EXPECT_EQ(fixed.min_workers(), 4);
    EXPECT_EQ(fixed.max_useful(), 4);
    EXPECT_DOUBLE_EQ(fixed.throughput(4), 2.0);
    EXPECT_DOUBLE_EQ(fixed.throughput(2), 0.0);
    EXPECT_DOUBLE_EQ(fixed.throughput(8), 2.0);  // clamps to table end
    EXPECT_EQ(fixed.usable(7), 4);
    EXPECT_EQ(fixed.usable(3), 0);
}

TEST(ScalingCurve, InvalidTablesDie)
{
    EXPECT_DEATH(ScalingCurve::from_pow2_table({}), "at least one");
    EXPECT_DEATH(ScalingCurve::from_pow2_table({0.0, 0.0}),
                 "no feasible");
    EXPECT_DEATH(ScalingCurve::from_pow2_table({1.0, 0.0, 2.0}),
                 "zero inside");
    EXPECT_DEATH(ScalingCurve::from_pow2_table({-1.0}), "negative");
}

TEST(ScalingCurve, NextStepRequiresPow2)
{
    ScalingCurve curve = ScalingCurve::from_pow2_table({1.0, 1.5});
    EXPECT_DEATH(curve.next_step(3), "not a power of two");
}

TEST(ScalingCurve, NextStepOnFixedSizeCurve)
{
    // A restrict_to_fixed_size() curve pins min_workers == max_useful
    // == size: the only legal transitions are start (0 -> size) and
    // "already at the top" (size -> 0).
    ScalingCurve curve =
        ScalingCurve::from_pow2_table({1.0, 1.8, 3.0, 4.0});
    ScalingCurve fixed = restrict_to_fixed_size(curve, 4);
    EXPECT_EQ(fixed.min_workers(), 4);
    EXPECT_EQ(fixed.max_useful(), 4);
    EXPECT_EQ(fixed.next_step(0), 4);
    EXPECT_EQ(fixed.next_step(4), 0);
}

TEST(ScalingCurve, NextStepBeyondMaxUsefulDies)
{
    // A count above max_useful() means an allocation escaped the
    // usable() clamp; next_step used to return 0 silently, freezing
    // the job at an unpriceable size. Now it aborts.
    ScalingCurve curve =
        ScalingCurve::from_pow2_table({1.0, 1.8, 3.0, 4.0});
    ScalingCurve fixed = restrict_to_fixed_size(curve, 2);
    EXPECT_EQ(fixed.max_useful(), 2);
    EXPECT_DEATH(fixed.next_step(8), "exceeds max_useful");
    EXPECT_DEATH(curve.next_step(16), "exceeds max_useful");
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the replay-based fidelity validator (§6.1): the fluid
 * simulator and the iteration-granular executor agree within the
 * paper's 3% bound across schedulers, workloads, and seeds.
 */
#include <gtest/gtest.h>

#include "exec/replay.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

TEST(Replay, ElasticFlowTimelineWithinThreePercent)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    SimConfig config;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    RunResult result = sim.run();

    ReplayReport report =
        replay_and_compare(trace, result, config.overhead);
    EXPECT_GT(report.compared, 10u);
    // The paper's 3% is the simulator's overall fidelity; per-job
    // error is dominated by iteration discretization, which can reach
    // a few percent of a very short job's JCT.
    EXPECT_LE(report.mean_relative_error, 0.03);
    EXPECT_LE(report.max_relative_error, 0.10)
        << "worst job error " << report.max_relative_error;
}

TEST(Replay, EverySchedulerWithinThreePercent)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 20;
    Trace trace = TraceGenerator::generate(gen);
    SimConfig config;
    for (const std::string &name : all_scheduler_names()) {
        SCOPED_TRACE(name);
        auto scheduler = make_scheduler(name);
        Simulator sim(trace, scheduler.get(), config);
        RunResult result = sim.run();
        ReplayReport report =
            replay_and_compare(trace, result, config.overhead);
        EXPECT_LE(report.mean_relative_error, 0.03);
        EXPECT_LE(report.max_relative_error, 0.10);
        // Everything that finished in simulation also finishes in the
        // replay.
        std::size_t finished_unfailed = 0;
        for (const JobOutcome &job : result.jobs) {
            finished_unfailed +=
                (job.finished && job.failures_suffered == 0) ? 1 : 0;
        }
        EXPECT_EQ(report.compared, finished_unfailed);
    }
}

TEST(Replay, ErrorSeedSweep)
{
    SimConfig config;
    for (std::uint64_t seed : {21u, 22u, 23u}) {
        TraceGenConfig gen = testbed_small_preset();
        gen.seed = seed;
        gen.num_jobs = 15;
        Trace trace = TraceGenerator::generate(gen);
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        RunResult result = sim.run();
        ReplayReport report =
            replay_and_compare(trace, result, config.overhead);
        EXPECT_LE(report.mean_relative_error, 0.03) << "seed " << seed;
        EXPECT_LE(report.max_relative_error, 0.10) << "seed " << seed;
        EXPECT_LE(report.mean_relative_error,
                  report.max_relative_error + 1e-12);
    }
}

TEST(Replay, AllocationLogIsTimeOrderedAndComplete)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();

    EXPECT_FALSE(result.allocation_log.empty());
    Time prev = -1.0;
    for (const AllocationEvent &event : result.allocation_log) {
        EXPECT_GE(event.time, prev);
        prev = event.time;
    }
    // Every job that ran appears in the log at least once.
    std::set<JobId> seen;
    for (const AllocationEvent &event : result.allocation_log)
        seen.insert(event.job);
    for (const JobOutcome &job : result.jobs) {
        if (job.finished) {
            EXPECT_TRUE(seen.count(job.spec.id)) << job.spec.id;
        }
    }
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the analytic performance model, including the calibration
 * targets that tie it to the paper's measurements (Fig. 2): concave
 * scaling curves, VGG16 ~76% efficiency at 8 intra-server GPUs, and
 * ResNet50's ~2.17x same-server vs. 8-server throughput ratio.
 */
#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "common/math_util.h"
#include "workload/perf_model.h"

namespace ef {
namespace {

class PerfModelTest : public testing::Test
{
  protected:
    PerfModelTest() : topo_(TopologySpec::testbed_128()), perf_(&topo_) {}

    Topology topo_;
    PerfModel perf_;
};

TEST_F(PerfModelTest, CompactShape)
{
    EXPECT_EQ(perf_.compact_shape(1).server_span, 1);
    EXPECT_EQ(perf_.compact_shape(8).server_span, 1);
    EXPECT_EQ(perf_.compact_shape(9).server_span, 2);
    EXPECT_EQ(perf_.compact_shape(64).server_span, 8);
    EXPECT_EQ(perf_.compact_shape(64).rack_span, 1);
    EXPECT_EQ(perf_.compact_shape(128).rack_span, 2);
}

TEST_F(PerfModelTest, ThroughputIncreasesWithCompactGpus)
{
    for (DnnModel model : all_models()) {
        int batch = model_profile(model).batch_sizes.back();
        double prev = 0.0;
        for (GpuCount g = perf_.min_workers(model, batch); g <= 8;
             g *= 2) {
            double tpt = perf_.compact_throughput(model, batch, g);
            EXPECT_GT(tpt, prev)
                << model_name(model) << " at " << g << " GPUs";
            prev = tpt;
        }
    }
}

TEST_F(PerfModelTest, Vgg16EfficiencyMatchesPaper)
{
    // Paper: VGG16, global batch 256, 8 GPUs on one server reaches
    // 76.07% of linear scaling. Pin the model to a plausible window.
    double t1 = perf_.compact_throughput(DnnModel::kVgg16, 256, 1);
    double t8 = perf_.compact_throughput(DnnModel::kVgg16, 256, 8);
    double efficiency = t8 / (8.0 * t1);
    EXPECT_GT(efficiency, 0.70);
    EXPECT_LT(efficiency, 0.85);
}

TEST_F(PerfModelTest, ResNetPlacementPenaltyMatchesPaper)
{
    // Paper Fig. 2(b): ResNet50, batch 256, 8 workers — same-server
    // throughput is ~2.17x that of 8 workers on 8 different servers.
    PlacementShape same{8, 1, 1};
    PlacementShape spread{8, 8, 1};
    double ratio = perf_.throughput(DnnModel::kResNet50, 256, same) /
                   perf_.throughput(DnnModel::kResNet50, 256, spread);
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 2.6);
}

TEST_F(PerfModelTest, PlacementPenaltyMonotoneInSpan)
{
    // Fig. 2(b): 8 workers over 1, 2, 4, 8 servers degrade monotonically.
    double prev = 1e18;
    for (int span : {1, 2, 4, 8}) {
        PlacementShape shape{8, span, 1};
        double tpt = perf_.throughput(DnnModel::kBert, 128, shape);
        EXPECT_LT(tpt, prev) << "span " << span;
        prev = tpt;
    }
}

TEST_F(PerfModelTest, CrossRackSlowerThanIntraRack)
{
    PlacementShape intra{16, 2, 1};
    PlacementShape cross{16, 2, 2};
    EXPECT_GT(perf_.throughput(DnnModel::kGpt2, 256, intra),
              perf_.throughput(DnnModel::kGpt2, 256, cross));
}

TEST_F(PerfModelTest, MemoryBoundMinWorkers)
{
    // GPT-2 max local batch is 32: a global batch of 256 needs >= 8.
    EXPECT_EQ(perf_.min_workers(DnnModel::kGpt2, 256), 8);
    EXPECT_EQ(perf_.min_workers(DnnModel::kResNet50, 256), 1);
    // Below min_workers, throughput is 0 (would OOM).
    EXPECT_EQ(perf_.compact_throughput(DnnModel::kGpt2, 256, 4), 0.0);
}

TEST_F(PerfModelTest, MaxWorkersBoundedByBatch)
{
    EXPECT_EQ(perf_.max_workers(DnnModel::kResNet50, 64, 1024), 64);
    EXPECT_EQ(perf_.max_workers(DnnModel::kResNet50, 256, 16), 16);
    // Beyond the batch there is nothing to shard.
    EXPECT_EQ(perf_.compact_throughput(DnnModel::kResNet50, 64, 128),
              0.0);
}

TEST_F(PerfModelTest, Pow2TablesAreConcaveAfterEnvelope)
{
    for (DnnModel model : all_models()) {
        for (int batch : model_profile(model).batch_sizes) {
            std::vector<double> table =
                perf_.compact_pow2_throughputs(model, batch, 128);
            std::vector<double> xs, ys;
            for (std::size_t k = 0; k < table.size(); ++k) {
                if (table[k] <= 0)
                    continue;
                xs.push_back(static_cast<double>(GpuCount(1) << k));
                ys.push_back(table[k]);
            }
            std::vector<double> env = concave_envelope(xs, ys);
            for (std::size_t i = 0; i < ys.size(); ++i) {
                // Raw model output stays close to its own concave
                // envelope (small dips appear at extreme worker counts
                // where the local batch degenerates); the ScalingCurve
                // construction then removes the residue entirely.
                EXPECT_LT(relative_difference(env[i], ys[i]), 0.2)
                    << model_name(model) << " b" << batch << " i" << i;
            }
        }
    }
}

TEST_F(PerfModelTest, OneGpuThroughputIsPlausible)
{
    // ResNet50 at batch 256 on an A100-class GPU: hundreds of
    // images/sec, i.e. iteration time a fraction of a second.
    double t = perf_.iteration_seconds(DnnModel::kResNet50, 256,
                                       PlacementShape{1, 1, 1});
    double img_per_s = 256.0 / t;
    EXPECT_GT(img_per_s, 300.0);
    EXPECT_LT(img_per_s, 3000.0);
}

TEST_F(PerfModelTest, OverflowingLocalBatchDies)
{
    PlacementShape shape{1, 1, 1};
    EXPECT_DEATH(perf_.iteration_seconds(DnnModel::kGpt2, 256, shape),
                 "overflows GPU memory");
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Crash-recovery primitives (DESIGN.md §12): binary codec round-trips,
 * snapshot-file atomicity and verification, journal framing, and the
 * corruption fuzz — truncated tails, bit-flipped records, bad magic,
 * and bad versions must all surface as typed Status values with the
 * valid prefix intact, never as aborts or UB.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "recover/codec.h"
#include "recover/journal.h"
#include "recover/log.h"
#include "recover/snapshot.h"
#include "serve/state_codec.h"

namespace ef {
namespace {

using recover::Decoder;
using recover::Encoder;
using recover::ErrorCode;
using recover::JournalContents;
using recover::RecordKind;
using recover::Status;

std::string
temp_path(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
write_file(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

TEST(Codec, ScalarRoundTrip)
{
    Encoder enc;
    enc.u8(0xab);
    enc.u32(0xdeadbeef);
    enc.u64(UINT64_C(0x0123456789abcdef));
    enc.i64(-42);
    enc.f64(-0.0);
    enc.boolean(true);
    enc.str("hello");

    Decoder dec(enc.data());
    std::uint8_t u8v = 0;
    std::uint32_t u32v = 0;
    std::uint64_t u64v = 0;
    std::int64_t i64v = 0;
    double f64v = 1.0;
    bool bv = false;
    std::string sv;
    EXPECT_TRUE(dec.u8(&u8v));
    EXPECT_TRUE(dec.u32(&u32v));
    EXPECT_TRUE(dec.u64(&u64v));
    EXPECT_TRUE(dec.i64(&i64v));
    EXPECT_TRUE(dec.f64(&f64v));
    EXPECT_TRUE(dec.boolean(&bv));
    EXPECT_TRUE(dec.str(&sv));
    EXPECT_TRUE(dec.empty());
    EXPECT_EQ(u8v, 0xab);
    EXPECT_EQ(u32v, 0xdeadbeefu);
    EXPECT_EQ(u64v, UINT64_C(0x0123456789abcdef));
    EXPECT_EQ(i64v, -42);
    EXPECT_TRUE(std::signbit(f64v));
    EXPECT_TRUE(bv);
    EXPECT_EQ(sv, "hello");
}

TEST(Codec, DecoderIsStickyAndBounded)
{
    Encoder enc;
    enc.u64(7);
    Decoder dec(enc.data());
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    EXPECT_TRUE(dec.u64(&a));
    EXPECT_FALSE(dec.u64(&b));  // past the end
    EXPECT_FALSE(dec.ok());
    EXPECT_FALSE(dec.u64(&b));  // stays failed
}

TEST(Codec, CountRejectsImpossibleSizes)
{
    Encoder enc;
    enc.u64(UINT64_C(1) << 40);  // claims a trillion elements
    Decoder dec(enc.data());
    std::uint64_t n = 0;
    EXPECT_FALSE(dec.count(&n, 8));
    EXPECT_FALSE(dec.ok());
}

TEST(Codec, BooleanRejectsNonCanonicalBytes)
{
    Encoder enc;
    enc.u8(2);
    Decoder dec(enc.data());
    bool v = false;
    EXPECT_FALSE(dec.boolean(&v));
}

TEST(Codec, JobSpecAndCurveRoundTrip)
{
    JobSpec spec;
    spec.id = 17;
    spec.name = "bert-ft";
    spec.user = "alice";
    spec.model = DnnModel::kBert;
    spec.global_batch = 128;
    spec.iterations = 5000;
    spec.submit_time = 123.5;
    spec.deadline = 9000.0;
    spec.kind = JobKind::kSlo;
    spec.requested_gpus = 8;
    ScalingCurve curve =
        ScalingCurve::from_pow2_table({1.0, 1.9, 3.5, 6.0});

    Encoder enc;
    serve::encode_job_spec(&enc, spec);
    serve::encode_curve(&enc, curve);

    Decoder dec(enc.data());
    JobSpec back;
    ScalingCurve curve_back;
    ASSERT_TRUE(serve::decode_job_spec(&dec, &back));
    ASSERT_TRUE(serve::decode_curve(&dec, &curve_back));
    EXPECT_TRUE(dec.empty());
    EXPECT_EQ(back.id, spec.id);
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.user, spec.user);
    EXPECT_EQ(back.model, spec.model);
    EXPECT_EQ(back.deadline, spec.deadline);
    EXPECT_EQ(back.kind, spec.kind);
    EXPECT_EQ(curve_back.table(), curve.table());
}

TEST(Codec, CurveDecodeRejectsGarbage)
{
    // A count that claims elements but delivers NaN.
    Encoder enc;
    enc.u64(2);
    enc.f64(1.0);
    enc.f64(std::numeric_limits<double>::quiet_NaN());
    Decoder dec(enc.data());
    ScalingCurve curve;
    EXPECT_FALSE(serve::decode_curve(&dec, &curve));
}

TEST(Snapshot, RoundTripAndTypedCorruption)
{
    const std::string path = temp_path("ef_snap_test.bin");
    const std::string payload(10000, '\x5a');
    ASSERT_TRUE(recover::write_snapshot_file(path, payload).ok());

    std::string back;
    ASSERT_TRUE(recover::read_snapshot_file(path, &back).ok());
    EXPECT_EQ(back, payload);

    // Bit flip in the payload -> checksum mismatch, byte offset set.
    std::string bytes = read_file(path);
    bytes[5000] = static_cast<char>(bytes[5000] ^ 0x01);
    write_file(path, bytes);
    Status st = recover::read_snapshot_file(path, &back);
    EXPECT_EQ(st.code, ErrorCode::kChecksumMismatch);
    EXPECT_GE(st.offset, 0);

    // Wrong magic.
    bytes = read_file(path);
    bytes[0] = 'X';
    write_file(path, bytes);
    st = recover::read_snapshot_file(path, &back);
    EXPECT_EQ(st.code, ErrorCode::kBadMagic);

    // Unsupported version.
    ASSERT_TRUE(recover::write_snapshot_file(path, payload).ok());
    bytes = read_file(path);
    bytes[4] = 99;
    write_file(path, bytes);
    st = recover::read_snapshot_file(path, &back);
    EXPECT_EQ(st.code, ErrorCode::kBadVersion);

    // Truncated mid-payload.
    ASSERT_TRUE(recover::write_snapshot_file(path, payload).ok());
    bytes = read_file(path);
    write_file(path, bytes.substr(0, bytes.size() - 100));
    st = recover::read_snapshot_file(path, &back);
    EXPECT_EQ(st.code, ErrorCode::kTruncated);

    // Missing file.
    std::remove(path.c_str());
    st = recover::read_snapshot_file(path, &back);
    EXPECT_EQ(st.code, ErrorCode::kIoError);
}

std::string
journal_with_records(const std::string &path, int n)
{
    recover::JournalWriter writer;
    EXPECT_TRUE(writer.open(path, /*truncate=*/true).ok());
    for (int i = 0; i < n; ++i) {
        Encoder body;
        body.u64(static_cast<std::uint64_t>(i));
        body.str("record payload " + std::to_string(i));
        EXPECT_TRUE(
            writer.append(RecordKind::kRoundCommit, body.data()).ok());
    }
    EXPECT_TRUE(writer.commit().ok());
    writer.close();
    return read_file(path);
}

TEST(Journal, RoundTrip)
{
    const std::string path = temp_path("ef_journal_test.bin");
    journal_with_records(path, 5);
    JournalContents contents;
    ASSERT_TRUE(recover::read_journal(path, &contents).ok());
    EXPECT_TRUE(contents.tail.ok());
    ASSERT_EQ(contents.records.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        Decoder dec(contents.records[static_cast<std::size_t>(i)].body);
        std::uint64_t seq = 99;
        std::string text;
        EXPECT_TRUE(dec.u64(&seq));
        EXPECT_TRUE(dec.str(&text));
        EXPECT_EQ(seq, static_cast<std::uint64_t>(i));
    }
}

TEST(Journal, TornTailKeepsValidPrefix)
{
    const std::string path = temp_path("ef_journal_torn.bin");
    const std::string bytes = journal_with_records(path, 5);
    // Cut into the middle of the last record: every prefix length
    // from "lost some payload" down to "lost the length header"
    // must keep exactly the first four records.
    for (std::size_t cut = 1; cut <= 12; ++cut) {
        write_file(path, bytes.substr(0, bytes.size() - cut));
        JournalContents contents;
        ASSERT_TRUE(recover::read_journal(path, &contents).ok());
        EXPECT_FALSE(contents.tail.ok()) << "cut " << cut;
        EXPECT_EQ(contents.tail.code, ErrorCode::kTruncated);
        ASSERT_EQ(contents.records.size(), 4u) << "cut " << cut;
    }
}

TEST(Journal, BitFlippedRecordStopsAtLastValidCommit)
{
    const std::string path = temp_path("ef_journal_flip.bin");
    std::string bytes = journal_with_records(path, 5);
    // Flip one payload byte in the final record.
    bytes[bytes.size() - 3] =
        static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
    write_file(path, bytes);
    JournalContents contents;
    ASSERT_TRUE(recover::read_journal(path, &contents).ok());
    EXPECT_EQ(contents.tail.code, ErrorCode::kChecksumMismatch);
    EXPECT_EQ(contents.records.size(), 4u);
    EXPECT_GE(contents.tail.record, 0);
}

TEST(Journal, BadMagicAndVersionAreTyped)
{
    const std::string path = temp_path("ef_journal_magic.bin");
    std::string bytes = journal_with_records(path, 2);
    std::string broken = bytes;
    broken[0] = 'Z';
    write_file(path, broken);
    JournalContents contents;
    EXPECT_EQ(recover::read_journal(path, &contents).code,
              ErrorCode::kBadMagic);

    broken = bytes;
    broken[4] = 77;
    write_file(path, broken);
    EXPECT_EQ(recover::read_journal(path, &contents).code,
              ErrorCode::kBadVersion);
}

TEST(Journal, FuzzRandomCutsNeverCrash)
{
    const std::string path = temp_path("ef_journal_fuzz.bin");
    const std::string bytes = journal_with_records(path, 8);
    // Deterministic sweep: truncate at every byte boundary, and flip
    // one byte at a stride. Every outcome must be a typed status with
    // a record prefix, never an abort.
    for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
        write_file(path, bytes.substr(0, cut));
        JournalContents contents;
        Status st = recover::read_journal(path, &contents);
        if (st.ok()) {
            EXPECT_LE(contents.records.size(), 8u);
        }
    }
    for (std::size_t i = 0; i < bytes.size(); i += 7) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
        write_file(path, mutated);
        JournalContents contents;
        Status st = recover::read_journal(path, &contents);
        if (st.ok()) {
            EXPECT_LE(contents.records.size(), 8u);
            if (!contents.tail.ok()) {
                EXPECT_NE(contents.tail.code, ErrorCode::kOk);
            }
        }
    }
}

TEST(DurableLog, SnapshotTruncatesJournal)
{
    const std::string dir = temp_path("ef_durable_log_dir");
    recover::DurableLog log;
    ASSERT_TRUE(log.open(dir).ok());
    ASSERT_TRUE(log.write_snapshot("state v1").ok());
    Encoder body;
    body.u64(1);
    ASSERT_TRUE(log.append(RecordKind::kRoundCommit, body.data()).ok());
    ASSERT_TRUE(log.commit().ok());
    EXPECT_EQ(log.journal_records(), 1u);

    ASSERT_TRUE(log.write_snapshot("state v2").ok());
    EXPECT_EQ(log.journal_records(), 0u);

    std::string snapshot;
    JournalContents contents;
    ASSERT_TRUE(
        recover::DurableLog::load(dir, &snapshot, &contents).ok());
    EXPECT_EQ(snapshot, "state v2");
    EXPECT_TRUE(contents.records.empty());
}

TEST(DurableLog, LoadWithoutSnapshotIsTyped)
{
    const std::string dir = temp_path("ef_durable_missing_dir");
    std::string snapshot;
    JournalContents contents;
    Status st = recover::DurableLog::load(dir, &snapshot, &contents);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code, ErrorCode::kIoError);
}

TEST(Status, ToStringCarriesRecordAndOffset)
{
    Status st = Status::error(ErrorCode::kChecksumMismatch,
                              "journal record payload mismatch", 7, 123);
    const std::string text = st.to_string();
    EXPECT_NE(text.find("checksum-mismatch"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("123"), std::string::npos);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * ef::defrag — search-based background defragmentation (DESIGN.md
 * §14). Covers the fragmentation metrics, the SA planner's objective /
 * budget contract, the snapshot codec round-trip, and the simulator
 * integration: a defrag-enabled run must double-run, shard-sweep and
 * crash-recover to byte-identical state hashes, a zero budget must be
 * byte-identical to defrag disabled, and on a churn-heavy trace defrag
 * must reduce fragmentation without costing deadline satisfaction.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/fragmentation.h"
#include "cluster/placement.h"
#include "cluster/topology.h"
#include "defrag/defrag.h"
#include "fault/fault.h"
#include "recover/codec.h"
#include "recover/log.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/perf_model.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

TEST(BuddyBlockFloor, LargestPowerOfTwoAtMostN)
{
    EXPECT_EQ(buddy_block_floor(0), 0);
    EXPECT_EQ(buddy_block_floor(1), 1);
    EXPECT_EQ(buddy_block_floor(2), 2);
    EXPECT_EQ(buddy_block_floor(3), 2);
    EXPECT_EQ(buddy_block_floor(5), 4);
    EXPECT_EQ(buddy_block_floor(7), 4);
    EXPECT_EQ(buddy_block_floor(8), 8);
}

TEST(FragmentationStats, EmptyClusterHasNoFragmentation)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PlacementManager pm(&topo);
    FragmentationStats stats = fragmentation_stats(pm);
    EXPECT_EQ(stats.idle_gpus, 16);
    EXPECT_EQ(stats.buddy_usable_gpus, 16);
    EXPECT_DOUBLE_EQ(stats.buddy_external_frag, 0.0);
    EXPECT_EQ(stats.total_span_excess, 0);
}

TEST(FragmentationStats, OddHolesAreExternalFragmentation)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PlacementManager pm(&topo);
    // One 1-GPU job leaves a 7-GPU hole: only a 4-block is buddy-usable
    // there, so 3 of 15 idle GPUs are stranded.
    ASSERT_TRUE(pm.place(1, 1, PlacementStrategy::kBestFitCompact,
                         false).ok);
    FragmentationStats stats = fragmentation_stats(pm);
    EXPECT_EQ(stats.idle_gpus, 15);
    EXPECT_EQ(stats.buddy_usable_gpus, 12);
    EXPECT_NEAR(stats.buddy_external_frag, 0.2, 1e-12);
    EXPECT_EQ(stats.largest_buddy_block, 8);
}

TEST(FragmentationStats, ScatteredJobsHaveSpanExcess)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PlacementManager pm(&topo);
    // kScatter round-robins across servers: a 4-GPU job lands 2+2
    // although it fits on one server (compact span 1, actual span 2).
    ASSERT_TRUE(pm.place(1, 4, PlacementStrategy::kScatter, false).ok);
    EXPECT_EQ(pm.server_span(1), 2);
    EXPECT_EQ(span_excess_of(pm, 1), 1);
    FragmentationStats stats = fragmentation_stats(pm);
    EXPECT_EQ(stats.total_span_excess, 1);
    EXPECT_EQ(stats.jobs_with_span_excess, 1);
    EXPECT_EQ(stats.placed_jobs, 1);
}

/** Two 4-GPU jobs deliberately scattered 2+2 across both servers. */
void
scatter_two_jobs(PlacementManager *pm)
{
    ASSERT_TRUE(pm->place(1, 4, PlacementStrategy::kScatter, false).ok);
    ASSERT_TRUE(pm->place(2, 4, PlacementStrategy::kScatter, false).ok);
}

std::vector<defrag::DefragJob>
two_resnet_jobs()
{
    return {{1, DnnModel::kResNet50, 256},
            {2, DnnModel::kResNet50, 256}};
}

defrag::DefragConfig
test_config()
{
    defrag::DefragConfig config;
    config.enabled = true;
    config.budget_units_per_round = 16.0;
    // Always grant a round token in unit tests.
    config.governor = {1.0, 4.0, kTimeInfinity};
    return config;
}

TEST(Defragmenter, CompactsScatteredPlacement)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PerfModel perf(&topo);
    PlacementManager pm(&topo);
    scatter_two_jobs(&pm);
    ASSERT_EQ(fragmentation_stats(pm).total_span_excess, 2);

    defrag::Defragmenter defrag(test_config(), &topo, &perf);
    ASSERT_TRUE(defrag.try_begin_round(0.0));
    defrag::DefragPlan plan = defrag.plan_round(pm, two_resnet_jobs());
    ASSERT_FALSE(plan.moves.empty());
    EXPECT_LT(plan.objective_after, plan.objective_before);
    EXPECT_LE(plan.cost_units, 16.0 + 1e-9);

    pm.apply_moves(plan.moves);
    // Both jobs fit on one server each; the search must find that.
    EXPECT_EQ(fragmentation_stats(pm).total_span_excess, 0);
    EXPECT_EQ(defrag.moves_committed(), plan.moves.size());
    EXPECT_DOUBLE_EQ(defrag.budget_spent_units(), plan.cost_units);
}

TEST(Defragmenter, BudgetBoundsTheBatch)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PerfModel perf(&topo);
    PlacementManager pm(&topo);
    scatter_two_jobs(&pm);

    // Budget for at most one 4-worker job per round.
    defrag::DefragConfig config = test_config();
    config.budget_units_per_round = 4.0;
    defrag::Defragmenter defrag(config, &topo, &perf);

    ASSERT_TRUE(defrag.try_begin_round(0.0));
    defrag::DefragPlan plan = defrag.plan_round(pm, two_resnet_jobs());
    EXPECT_LE(plan.cost_units, 4.0 + 1e-9);
    EXPECT_LE(plan.moves.size(), 1u);
    if (!plan.moves.empty())
        pm.apply_moves(plan.moves);
    EXPECT_LE(fragmentation_stats(pm).total_span_excess, 2);
}

TEST(Defragmenter, GovernorPacesRounds)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PerfModel perf(&topo);
    defrag::DefragConfig config = test_config();
    // One round per 600 s, burst 1: two immediate requests, one token.
    config.governor = {1.0 / 600.0, 1.0, kTimeInfinity};
    defrag::Defragmenter defrag(config, &topo, &perf);
    EXPECT_TRUE(defrag.try_begin_round(0.0));
    EXPECT_FALSE(defrag.try_begin_round(1.0));
    EXPECT_TRUE(defrag.try_begin_round(700.0));
}

TEST(Defragmenter, CodecRoundTripsAllState)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PerfModel perf(&topo);
    PlacementManager pm(&topo);
    scatter_two_jobs(&pm);

    defrag::Defragmenter defrag(test_config(), &topo, &perf);
    ASSERT_TRUE(defrag.try_begin_round(0.0));
    defrag::DefragPlan plan = defrag.plan_round(pm, two_resnet_jobs());
    ASSERT_FALSE(plan.moves.empty());

    recover::Encoder enc;
    defrag.encode_state(&enc);

    defrag::Defragmenter restored(test_config(), &topo, &perf);
    EXPECT_NE(restored.fingerprint(), defrag.fingerprint());
    recover::Decoder dec(enc.data());
    ASSERT_TRUE(restored.decode_state(&dec));
    EXPECT_TRUE(dec.empty());
    EXPECT_EQ(restored.fingerprint(), defrag.fingerprint());
    EXPECT_EQ(restored.rounds(), defrag.rounds());
    EXPECT_EQ(restored.moves_committed(), defrag.moves_committed());
    EXPECT_DOUBLE_EQ(restored.budget_spent_units(),
                     defrag.budget_spent_units());
    ASSERT_EQ(restored.last_batch().size(), defrag.last_batch().size());
}

// ---------------------------------------------------------------------
// Simulator integration on a churn-heavy trace.
// ---------------------------------------------------------------------

Trace
churn_trace()
{
    TraceGenConfig gen = churn_preset();
    gen.num_jobs = 60;  // keep the test fast; same statistics
    return TraceGenerator::generate(gen);
}

SimConfig
defrag_config()
{
    SimConfig config;
    config.defrag.enabled = true;
    return config;
}

RunResult
run_churn(const Trace &trace, const std::string &scheduler_name,
          const SimConfig &config)
{
    auto scheduler = make_scheduler(scheduler_name);
    Simulator sim(trace, scheduler.get(), config);
    return sim.run();
}

TEST(DefragSim, ImprovesChurnWithoutCostingDeadlines)
{
    Trace trace = churn_trace();
    // Tiresias is the greedy-only baseline: fixed-size placements,
    // no migration, so completions strand odd holes and spanning jobs.
    RunResult base = run_churn(trace, "tiresias", SimConfig{});
    RunResult with = run_churn(trace, "tiresias", defrag_config());

    EXPECT_GT(with.defrag_rounds, 0);
    EXPECT_GT(with.defrag_moves, 0);
    EXPECT_GT(with.defrag_budget_spent, 0.0);
    EXPECT_LE(average_fragmentation(with), average_fragmentation(base));
    EXPECT_LE(average_span_excess(with), average_span_excess(base));
    EXPECT_GE(with.deadline_ratio(), base.deadline_ratio());
}

TEST(DefragSim, DoubleRunsAreByteIdentical)
{
    Trace trace = churn_trace();
    RunResult a = run_churn(trace, "tiresias", defrag_config());
    RunResult b = run_churn(trace, "tiresias", defrag_config());
    EXPECT_GT(a.defrag_moves, 0);
    EXPECT_EQ(a.state_hash, b.state_hash);
    EXPECT_EQ(a.state_hash_samples, b.state_hash_samples);
    EXPECT_EQ(a.defrag_moves, b.defrag_moves);
    EXPECT_DOUBLE_EQ(a.defrag_budget_spent, b.defrag_budget_spent);
}

TEST(DefragSim, ShardCountDoesNotChangeTheHash)
{
    Trace trace = churn_trace();
    SimConfig sharded = defrag_config();
    sharded.planner_shards = 4;
    sharded.planner_threads = 4;
    // elasticflow exercises the sharded planner; defrag must stay
    // bit-identical across shard/thread settings.
    RunResult a = run_churn(trace, "elasticflow", defrag_config());
    RunResult b = run_churn(trace, "elasticflow", sharded);
    EXPECT_EQ(a.state_hash, b.state_hash);
    EXPECT_EQ(a.state_hash_samples, b.state_hash_samples);
}

TEST(DefragSim, ZeroBudgetIsByteIdenticalToDisabled)
{
    Trace trace = churn_trace();
    SimConfig zero = defrag_config();
    zero.defrag.budget_units_per_round = 0.0;
    RunResult off = run_churn(trace, "tiresias", SimConfig{});
    RunResult zero_budget = run_churn(trace, "tiresias", zero);
    EXPECT_EQ(off.state_hash, zero_budget.state_hash);
    EXPECT_EQ(off.state_hash_samples, zero_budget.state_hash_samples);
    EXPECT_EQ(zero_budget.defrag_rounds, 0);
    EXPECT_EQ(zero_budget.defrag_moves, 0);
}

// ---------------------------------------------------------------------
// Crash recovery with an active defragmenter.
// ---------------------------------------------------------------------

std::string
fresh_dir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::remove(recover::DurableLog::snapshot_path(dir).c_str());
    std::remove(recover::DurableLog::journal_path(dir).c_str());
    return dir;
}

FaultEvent
sched_crash_at_round(std::int64_t round)
{
    FaultEvent ev;
    ev.time = 0.0;
    ev.type = FaultType::kSchedCrash;
    ev.target = round;
    return ev;
}

TEST(DefragSim, CrashRecoverMidRepackReplaysToSameHash)
{
    Trace trace = churn_trace();
    // Baseline carries the same scripted fault config (outside the
    // hashed state) but no journal, so the crash never fires.
    SimConfig base = defrag_config();
    base.faults.script.push_back(sched_crash_at_round(1));
    RunResult clean = run_churn(trace, "tiresias", base);
    ASSERT_GT(clean.defrag_moves, 0);

    // Crash well after the first committed defrag rounds.
    const std::string dir = fresh_dir("defrag_crash");
    SimConfig crash = defrag_config();
    crash.durability.journal_dir = dir;
    crash.durability.snapshot_every = 20;
    crash.faults.script.push_back(sched_crash_at_round(60));
    {
        auto scheduler = make_scheduler("tiresias");
        Simulator sim(trace, scheduler.get(), crash);
        ASSERT_TRUE(sim.prepare_durability().ok());
        sim.run();
        ASSERT_TRUE(sim.crashed());
    }

    SimConfig recover_config = crash;
    recover_config.durability.recover = true;
    auto scheduler = make_scheduler("tiresias");
    Simulator sim(trace, scheduler.get(), recover_config);
    recover::Status st = sim.prepare_durability();
    ASSERT_TRUE(st.ok()) << st.to_string();
    RunResult recovered = sim.run();
    EXPECT_FALSE(sim.crashed());

    EXPECT_EQ(recovered.state_hash, clean.state_hash);
    EXPECT_EQ(recovered.state_hash_samples, clean.state_hash_samples);
    EXPECT_EQ(recovered.makespan, clean.makespan);
}

TEST(DefragSim, SnapshotModeMismatchIsRejected)
{
    Trace trace = churn_trace();
    const std::string dir = fresh_dir("defrag_mismatch");
    SimConfig crash = defrag_config();
    crash.durability.journal_dir = dir;
    crash.durability.snapshot_every = 10;
    crash.faults.script.push_back(sched_crash_at_round(40));
    {
        auto scheduler = make_scheduler("tiresias");
        Simulator sim(trace, scheduler.get(), crash);
        ASSERT_TRUE(sim.prepare_durability().ok());
        sim.run();
        ASSERT_TRUE(sim.crashed());
    }

    // Recovering a defrag-enabled snapshot with defrag turned off must
    // fail loudly instead of silently dropping the repacker's state.
    SimConfig wrong;
    wrong.durability.journal_dir = dir;
    wrong.durability.recover = true;
    auto scheduler = make_scheduler("tiresias");
    Simulator sim(trace, scheduler.get(), wrong);
    recover::Status st = sim.prepare_durability();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code, recover::ErrorCode::kStateMismatch);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * ThreadPool tests: the fixed-pool parallel_for must run every index
 * exactly once, keep generations strictly separated (a straggler from
 * one dispatch can never claim the next dispatch's indices), and be
 * equivalent to the inline loop for any thread count — including the
 * degenerate single-threaded and null-pool paths the determinism
 * tests rely on.
 */
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/parallel.h"

namespace ef {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4);
    std::vector<int> hits(1000, 0);
    pool.parallel_for(static_cast<int>(hits.size()),
                      [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadedRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    std::vector<int> hits(17, 0);
    pool.parallel_for(static_cast<int>(hits.size()),
                      [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 17);
}

TEST(ThreadPool, FreeFunctionToleratesNullPool)
{
    std::vector<int> hits(9, 0);
    parallel_for(nullptr, static_cast<int>(hits.size()),
                 [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 9);
}

TEST(ThreadPool, EmptyAndSingleCounts)
{
    ThreadPool pool(3);
    int calls = 0;
    pool.parallel_for(0, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallel_for(-5, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallel_for(1, [&](int i) {
        EXPECT_EQ(i, 0);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, FewerItemsThanThreads)
{
    ThreadPool pool(8);
    std::vector<int> hits(3, 0);
    pool.parallel_for(static_cast<int>(hits.size()),
                      [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

/**
 * Back-to-back generations stress the dispatch barrier: a worker
 * still draining generation g must never observe generation g+1's
 * job. Disjoint per-generation slots make any such bleed a visible
 * count error.
 */
TEST(ThreadPool, ManyGenerationsStaySeparated)
{
    ThreadPool pool(4);
    constexpr int kGenerations = 500;
    constexpr int kItems = 23;
    for (int g = 0; g < kGenerations; ++g) {
        std::vector<int> hits(kItems, 0);
        pool.parallel_for(kItems, [&](int i) {
            hits[static_cast<std::size_t>(i)] += g + 1;
        });
        for (int i = 0; i < kItems; ++i)
            ASSERT_EQ(hits[static_cast<std::size_t>(i)], g + 1)
                << "generation " << g << " index " << i;
    }
}

/** Deterministic accumulation into index-owned slots, then a
 *  sequential fold — the exact usage pattern of the sharded planner. */
TEST(ThreadPool, IndexOwnedSlotsFoldDeterministically)
{
    ThreadPool pool(4);
    constexpr int kShards = 8;
    constexpr int kJobs = 200;
    std::vector<long> shard_sum(kShards, 0);
    pool.parallel_for(kShards, [&](int s) {
        for (int i = s; i < kJobs; i += kShards)
            shard_sum[static_cast<std::size_t>(s)] += i;
    });
    long total = 0;
    for (long v : shard_sum)
        total += v;
    EXPECT_EQ(total, static_cast<long>(kJobs) * (kJobs - 1) / 2);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the elastic training executor model: worker groups, local
 * batch adjustment, iteration-granular progress, and checkpoint
 * semantics on scaling (paper §5).
 */
#include <gtest/gtest.h>

#include "exec/executor.h"

namespace ef {
namespace {

class ExecutorTest : public testing::Test
{
  protected:
    ExecutorTest()
        : topo_(TopologySpec::testbed_128()), perf_(&topo_),
          overhead_(OverheadConfig{})
    {}

    JobSpec
    spec(std::int64_t iterations, DnnModel model = DnnModel::kResNet50,
         int batch = 128) const
    {
        JobSpec s;
        s.id = 1;
        s.model = model;
        s.global_batch = batch;
        s.iterations = iterations;
        s.submit_time = 0.0;
        return s;
    }

    Topology topo_;
    PerfModel perf_;
    OverheadModel overhead_;
};

TEST_F(ExecutorTest, WorkersPreserveGlobalBatch)
{
    JobExecution exec(spec(100), &perf_, &overhead_);
    exec.scale(0.0, {0, 1, 2, 3});
    ASSERT_EQ(exec.worker_count(), 4);
    int total = 0;
    for (const Worker &w : exec.workers())
        total += w.local_batch;
    EXPECT_EQ(total, 128);
    for (const Worker &w : exec.workers())
        EXPECT_EQ(w.local_batch, 32);
}

TEST_F(ExecutorTest, UnevenShardingKeepsGlobalBatch)
{
    // 128 samples over 3 workers: 43 + 43 + 42.
    JobExecution exec(spec(100), &perf_, &overhead_);
    exec.scale(0.0, {0, 1, 2});
    int total = 0;
    for (const Worker &w : exec.workers()) {
        total += w.local_batch;
        EXPECT_LE(w.local_batch, 43);
    }
    EXPECT_EQ(total, 128);
}

TEST_F(ExecutorTest, ProgressIsIterationGranular)
{
    JobExecution exec(spec(1000), &perf_, &overhead_);
    exec.scale(0.0, {0});
    double iter = exec.iteration_seconds();
    ASSERT_GT(iter, 0.0);
    Time start = exec.finish_time_estimate() -
                 1000.0 * iter;  // when iterating actually begins
    exec.advance(start + 10.5 * iter);
    EXPECT_EQ(exec.completed_iterations(), 10);
    exec.advance(start + 11.0 * iter + 1e-9);
    EXPECT_EQ(exec.completed_iterations(), 11);
}

TEST_F(ExecutorTest, ScalingChargesOverheadPause)
{
    JobExecution exec(spec(1000000), &perf_, &overhead_);
    exec.scale(0.0, {0});
    Time t1 = exec.finish_time_estimate();
    exec.scale(100.0, {0, 1});
    Time t2 = exec.finish_time_estimate();
    EXPECT_LT(t2, t1);  // more GPUs, faster despite the pause
    EXPECT_EQ(exec.checkpoints_taken(), 2);

    // A no-op scale (same GPUs) takes no checkpoint.
    std::vector<GpuCount> same = {0, 1};
    exec.scale(200.0, same);
    EXPECT_EQ(exec.checkpoints_taken(), 2);
}

TEST_F(ExecutorTest, SuspendStopsProgress)
{
    JobExecution exec(spec(1000), &perf_, &overhead_);
    exec.scale(0.0, {0});
    exec.advance(100.0);
    std::int64_t done = exec.completed_iterations();
    EXPECT_GT(done, 0);
    exec.scale(100.0, {});
    exec.advance(10000.0);
    EXPECT_EQ(exec.completed_iterations(), done);
    EXPECT_EQ(exec.finish_time_estimate(), kTimeInfinity);
    // Resume completes the job.
    exec.scale(10000.0, {0, 1});
    exec.advance(1e9);
    EXPECT_TRUE(exec.finished());
}

TEST_F(ExecutorTest, PartialIterationLostOnScale)
{
    JobExecution exec(spec(1000), &perf_, &overhead_);
    exec.scale(0.0, {0});
    double iter = exec.iteration_seconds();
    // Land mid-iteration, then rescale: the fraction is discarded.
    exec.scale(10.0 * iter + 0.5 * iter, {0, 1});
    EXPECT_LE(exec.completed_iterations(), 10);
    std::int64_t before = exec.completed_iterations();
    exec.advance(10.0 * iter + 0.6 * iter);
    EXPECT_EQ(exec.completed_iterations(), before);
}

TEST_F(ExecutorTest, PlacementShapeAffectsIterationTime)
{
    JobExecution compact(spec(100), &perf_, &overhead_);
    compact.scale(0.0, {0, 1, 2, 3, 4, 5, 6, 7});
    JobExecution spread(spec(100), &perf_, &overhead_);
    spread.scale(0.0, {0, 8, 16, 24, 32, 40, 48, 56});
    EXPECT_LT(compact.iteration_seconds(), spread.iteration_seconds());
}

TEST_F(ExecutorTest, MemoryOverflowDies)
{
    JobExecution exec(spec(100, DnnModel::kGpt2, 256), &perf_,
                      &overhead_);
    // GPT-2 max local batch 32: 256 / 4 = 64 overflows.
    EXPECT_DEATH(exec.scale(0.0, {0, 1, 2, 3}), "memory limit");
}

TEST_F(ExecutorTest, FinishExactlyAtIterationCount)
{
    JobExecution exec(spec(17), &perf_, &overhead_);
    exec.scale(0.0, {0, 1});
    exec.advance(1e9);
    EXPECT_TRUE(exec.finished());
    EXPECT_EQ(exec.completed_iterations(), 17);
    for (const Worker &w : exec.workers())
        EXPECT_EQ(w.samples_processed, 17 * w.local_batch);
}

}  // namespace
}  // namespace ef

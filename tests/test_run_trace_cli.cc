/**
 * @file
 * CLI contract tests for the run_trace driver: unknown flags go to
 * stderr and exit 2 (scripts depend on it), and the service-mode
 * flags (--service, --arrival-rate, --duration, in both "--flag v"
 * and "--flag=v" spellings) run clean.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <string>

namespace ef {
namespace {

/** Exit status of `run_trace <args>` with output discarded. */
int
run_cli(const std::string &args)
{
    const std::string command = std::string(EF_RUN_TRACE_BIN) + " " +
                                args + " >/dev/null 2>/dev/null";
    const int raw = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(raw)) << command;
    return WEXITSTATUS(raw);
}

TEST(RunTraceCli, UnknownFlagExitsTwo)
{
    EXPECT_EQ(run_cli("--definitely-not-a-flag"), 2);
    EXPECT_EQ(run_cli("trace.csv --frobnicate"), 2);
}

TEST(RunTraceCli, NoArgumentsExitsTwo)
{
    EXPECT_EQ(run_cli(""), 2);
}

TEST(RunTraceCli, ServiceModeNeedsRateAndDuration)
{
    EXPECT_EQ(run_cli("--service"), 2);
    EXPECT_EQ(run_cli("--service --arrival-rate=0.1"), 2);
    EXPECT_EQ(run_cli("--service --duration=100"), 2);
}

TEST(RunTraceCli, ServiceModeRunsClean)
{
    EXPECT_EQ(run_cli("--service --arrival-rate=0.05 --duration=600 "
                      "--gpus 16 --state-hash"),
              0);
    // Space-separated values work too.
    EXPECT_EQ(
        run_cli("--service --arrival-rate 0.05 --duration 600"), 0);
}

TEST(RunTraceCli, ServiceFlagsRejectedWithATraceFile)
{
    EXPECT_EQ(run_cli("trace.csv --arrival-rate=0.1 --duration=10"),
              2);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Determinism contract of shard-parallel planning (DESIGN.md §10):
 * for every input, shard count, and thread count, the sharded planner
 * must produce *bit-identical* decisions to the classic
 * single-threaded one — refreshed minimum shares, parks, relaxations,
 * allocation outcomes, deterministic cost units, and (at the
 * whole-simulation level) RunResult::state_hash.
 *
 * Fuzz instances are generated from fixed seeds so failures
 * reproduce. The shard-boundary test pins the cross-shard balancer: a
 * job that fits only by straddling two pods must be re-bid against
 * the global profile and end up planned exactly as classically.
 */
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "cluster/shard.h"
#include "common/parallel.h"
#include "core/allocator.h"
#include "fault/fault.h"
#include "sched/planning_util.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

ScalingCurve
random_curve(std::mt19937 &rng)
{
    std::uniform_int_distribution<int> entries(1, 8);
    std::uniform_real_distribution<double> base(0.5, 4.0);
    std::uniform_real_distribution<double> gain(1.0, 2.0);
    int count = entries(rng);
    std::vector<double> table;
    double tpt = base(rng);
    for (int k = 0; k < count; ++k) {
        table.push_back(tpt);
        tpt *= gain(rng);
    }
    return ScalingCurve::from_pow2_table(std::move(table));
}

PlanningJob
random_job(std::mt19937 &rng, JobId id, Time now, bool best_effort)
{
    PlanningJob job;
    job.id = id;
    job.curve = random_curve(rng);
    std::uniform_real_distribution<double> iters(10.0, 5000.0);
    job.remaining_iterations = iters(rng);
    if (!best_effort) {
        double solo = job.remaining_iterations /
                      job.curve.throughput(job.curve.min_workers());
        std::uniform_real_distribution<double> factor(0.3, 4.0);
        job.deadline = now + solo * factor(rng);
        std::uniform_int_distribution<int> soft(0, 3);
        job.soft = soft(rng) == 0;
    }
    return job;
}

void
expect_refresh_equal(const MinShareRefresh &a, const MinShareRefresh &b,
                     const std::string &label)
{
    ASSERT_EQ(a.slo.size(), b.slo.size()) << label;
    for (std::size_t i = 0; i < a.slo.size(); ++i) {
        EXPECT_EQ(a.slo[i].id, b.slo[i].id) << label << " rank " << i;
        EXPECT_EQ(a.slo[i].deadline, b.slo[i].deadline)
            << label << " job " << a.slo[i].id;
    }
    ASSERT_EQ(a.parked.size(), b.parked.size()) << label;
    for (std::size_t i = 0; i < a.parked.size(); ++i)
        EXPECT_EQ(a.parked[i].id, b.parked[i].id) << label;
    ASSERT_EQ(a.min_shares.size(), b.min_shares.size()) << label;
    for (const auto &[id, plan] : a.min_shares) {
        auto it = b.min_shares.find(id);
        ASSERT_TRUE(it != b.min_shares.end()) << label << " job " << id;
        EXPECT_EQ(plan.gpus, it->second.gpus) << label << " job " << id;
    }
}

/** Classic vs sharded refresh over one fuzz instance, every shard
 *  count, inline and pooled. */
void
check_refresh(std::uint32_t seed, int slo_jobs, GpuCount total_gpus,
              bool park_infeasible_hard, ThreadPool *pool)
{
    std::mt19937 rng(seed);
    const Time now = 137.5;
    PlannerConfig config;
    config.total_gpus = total_gpus;
    config.slot_seconds = 60.0;

    std::vector<PlanningJob> jobs;
    for (int i = 0; i < slo_jobs; ++i)
        jobs.push_back(random_job(rng, i + 1, now, false));

    int classic_failures = 0;
    std::uint64_t classic_cost = 0;
    MinShareRefresh classic =
        refresh_min_shares(config, now, jobs, &classic_failures,
                           park_infeasible_hard, &classic_cost);

    for (int shards : {1, 2, 3, 4, 8}) {
        PlannerConcurrency conc;
        conc.shards = shards;
        conc.pool = pool;
        int failures = 0;
        std::uint64_t cost = 0;
        ShardRoundStats stats;
        MinShareRefresh sharded = refresh_min_shares_sharded(
            config, now, jobs, &failures, park_infeasible_hard, &cost,
            conc, &stats);
        std::ostringstream label;
        label << "seed=" << seed << " jobs=" << slo_jobs
              << " gpus=" << total_gpus << " shards=" << shards
              << " pool=" << (pool != nullptr ? pool->threads() : 0);
        expect_refresh_equal(classic, sharded, label.str());
        EXPECT_EQ(classic_cost, cost) << label.str();
        EXPECT_EQ(classic_failures, failures) << label.str();
        // Every job was either adopted from speculation or re-bid.
        EXPECT_EQ(stats.adopted + stats.rebid,
                  static_cast<std::uint64_t>(slo_jobs))
            << label.str();
    }
}

TEST(ShardedRefresh, MatchesClassicOnAbundantClusters)
{
    ThreadPool pool(4);
    for (std::uint32_t seed = 1; seed <= 20; ++seed) {
        check_refresh(seed, 12, /*total_gpus=*/512, false, nullptr);
        check_refresh(seed, 12, /*total_gpus=*/512, false, &pool);
    }
}

TEST(ShardedRefresh, MatchesClassicOnSaturatedClusters)
{
    // Starved capacity forces clipped speculation, re-bids, deadline
    // relaxation, and parking — the whole balancer surface.
    ThreadPool pool(4);
    for (std::uint32_t seed = 1; seed <= 20; ++seed) {
        check_refresh(seed, 16, /*total_gpus=*/8, false, nullptr);
        check_refresh(seed, 16, /*total_gpus=*/8, false, &pool);
        check_refresh(seed, 16, /*total_gpus=*/8, true, &pool);
    }
}

TEST(ShardedRefresh, MatchesClassicOnMidsizedClusters)
{
    ThreadPool pool(4);
    for (std::uint32_t seed = 100; seed < 130; ++seed) {
        check_refresh(seed, 24, /*total_gpus=*/64, false, &pool);
        check_refresh(seed, 24, /*total_gpus=*/64, true, nullptr);
    }
}

TEST(ShardedAllocation, MatchesClassicOnFuzzedInstances)
{
    ThreadPool pool(4);
    int covered = 0;
    for (std::uint32_t seed = 1; seed <= 40 || covered < 10; ++seed) {
        ASSERT_LT(seed, 200u) << "not enough feasible instances";
        std::mt19937 rng(seed);
        const Time now = 137.5;
        PlannerConfig config;
        config.total_gpus = (seed % 3 == 0) ? 16 : 256;
        config.slot_seconds = 60.0;

        std::vector<PlanningJob> slo;
        std::vector<PlanningJob> best_effort;
        JobId next_id = 1;
        for (int i = 0; i < 10; ++i)
            slo.push_back(random_job(rng, next_id++, now, false));
        for (int j = 0; j < 6; ++j)
            best_effort.push_back(random_job(rng, next_id++, now, true));
        AdmissionOutcome admitted = run_admission(config, now, slo);
        if (!admitted.feasible)
            continue;
        ++covered;

        AllocationOutcome classic = run_allocation(
            config, now, slo, admitted.plans, best_effort);
        for (int shards : {1, 2, 4, 8}) {
            PlannerConcurrency conc;
            conc.shards = shards;
            conc.pool = (shards % 2 == 0) ? &pool : nullptr;
            ShardRoundStats stats;
            AllocationOutcome sharded = run_allocation_sharded(
                config, now, slo, admitted.plans, best_effort, conc,
                &stats);
            std::ostringstream label;
            label << "seed=" << seed << " shards=" << shards;
            EXPECT_EQ(classic.gpus_now, sharded.gpus_now) << label.str();
            EXPECT_EQ(classic.unallocated, sharded.unallocated)
                << label.str();
            ASSERT_EQ(classic.plans.size(), sharded.plans.size())
                << label.str();
            for (const auto &[id, plan] : classic.plans) {
                auto it = sharded.plans.find(id);
                ASSERT_TRUE(it != sharded.plans.end())
                    << label.str() << " job " << id;
                EXPECT_EQ(plan.gpus, it->second.gpus)
                    << label.str() << " job " << id;
            }
        }
    }
}

/**
 * Shard-boundary pin: a job whose minimum satisfactory level exceeds
 * every pod's capacity can only be planned by straddling pods. Its
 * speculative fill must clip inside its shard, the merge must re-bid
 * it against the global profile, and the result must equal classic
 * planning exactly.
 */
TEST(ShardedRefresh, StraddlingJobIsRebidByTheBalancer)
{
    const Time now = 0.0;
    PlannerConfig config;
    config.total_gpus = 16;  // two pods of 8
    config.slot_seconds = 60.0;

    // Throughput scales perfectly to 16 GPUs; the deadline is one slot,
    // and the work needs all 16 — no single 8-GPU pod suffices.
    std::vector<double> table;
    for (int workers = 1; workers <= 16; workers *= 2)
        table.push_back(static_cast<double>(workers));
    PlanningJob straddler;
    straddler.id = 7;
    straddler.curve = ScalingCurve::from_pow2_table(table);
    straddler.remaining_iterations = 15.5 * 60.0;  // needs level 16
    straddler.deadline = now + 60.0;

    int classic_failures = 0;
    std::uint64_t classic_cost = 0;
    MinShareRefresh classic = refresh_min_shares(
        config, now, {straddler}, &classic_failures, false,
        &classic_cost);
    ASSERT_EQ(classic.slo.size(), 1u);
    ASSERT_EQ(classic.min_shares.count(7), 1u);

    PlannerConcurrency conc;
    conc.shards = 2;
    conc.shard_gpus = {8, 8};
    int failures = 0;
    std::uint64_t cost = 0;
    ShardRoundStats stats;
    MinShareRefresh sharded = refresh_min_shares_sharded(
        config, now, {straddler}, &failures, false, &cost, conc,
        &stats);

    expect_refresh_equal(classic, sharded, "straddler");
    EXPECT_EQ(classic_cost, cost);
    EXPECT_EQ(stats.rebid, 1u);   // the balancer had to re-bid it
    EXPECT_EQ(stats.adopted, 0u); // no pod could adopt it
    // And the plan really does straddle: peak allocation above any
    // single pod's capacity.
    GpuCount peak = 0;
    const SlotPlan &plan = sharded.min_shares.at(7);
    for (int t = 0; t < plan.horizon(); ++t)
        peak = std::max(peak, plan.at(t));
    EXPECT_GT(peak, GpuCount{8});
}

TEST(ShardedRefresh, PodLocalJobsAreAdoptedFromSpeculation)
{
    const Time now = 0.0;
    PlannerConfig config;
    config.total_gpus = 16;
    config.slot_seconds = 60.0;

    // Two small jobs, each well within one 8-GPU pod, generous
    // deadlines: speculation must be unclipped and adopted verbatim.
    std::vector<PlanningJob> jobs;
    for (JobId id = 1; id <= 2; ++id) {
        PlanningJob job;
        job.id = id;
        job.curve = ScalingCurve::from_pow2_table({1.0, 2.0});
        job.remaining_iterations = 30.0;
        job.deadline = now + 600.0;
        jobs.push_back(std::move(job));
    }

    PlannerConcurrency conc;
    conc.shards = 2;
    conc.shard_gpus = {8, 8};
    int failures = 0;
    std::uint64_t cost = 0;
    ShardRoundStats stats;
    MinShareRefresh sharded = refresh_min_shares_sharded(
        config, now, jobs, &failures, false, &cost, conc, &stats);
    EXPECT_EQ(stats.adopted, 2u);
    EXPECT_EQ(stats.rebid, 0u);

    int classic_failures = 0;
    std::uint64_t classic_cost = 0;
    MinShareRefresh classic = refresh_min_shares(
        config, now, jobs, &classic_failures, false, &classic_cost);
    expect_refresh_equal(classic, sharded, "pod-local");
    EXPECT_EQ(classic_cost, cost);
}

TEST(ShardCapacitySlices, PodLayoutAndFallback)
{
    // A matching pod layout passes through verbatim.
    EXPECT_EQ(shard_capacity_slices(16, 2, {10, 6}),
              (std::vector<GpuCount>{10, 6}));
    // Wrong shard count or stale sum (post-fault) falls back to an
    // even split with the remainder on the leading shards.
    EXPECT_EQ(shard_capacity_slices(14, 2, {10, 6}),
              (std::vector<GpuCount>{7, 7}));
    EXPECT_EQ(shard_capacity_slices(13, 4, {}),
              (std::vector<GpuCount>{4, 3, 3, 3}));
    EXPECT_EQ(shard_capacity_slices(8, 1, {}),
              (std::vector<GpuCount>{8}));
}

TEST(PodShards, BalancedContiguousAndExact)
{
    std::vector<PodShard> pods = extract_pod_shards(GpuCount{1024}, 4);
    ASSERT_FALSE(pods.empty());
    GpuCount sum = 0;
    int next_rack = 0;
    for (std::size_t s = 0; s < pods.size(); ++s) {
        EXPECT_EQ(pods[s].index, static_cast<int>(s));
        EXPECT_EQ(pods[s].first_rack, next_rack);
        EXPECT_GE(pods[s].num_racks, 1);
        next_rack += pods[s].num_racks;
        sum += pods[s].gpus;
    }
    EXPECT_EQ(sum, GpuCount{1024});
    // Fewer racks than requested shards: clamps, never empty.
    std::vector<PodShard> tiny = extract_pod_shards(GpuCount{8}, 16);
    ASSERT_FALSE(tiny.empty());
    GpuCount tiny_sum = 0;
    for (const PodShard &p : tiny)
        tiny_sum += p.gpus;
    EXPECT_EQ(tiny_sum, GpuCount{8});
}

// ---------------------------------------------------------------------------
// Whole-simulation determinism: state_hash across shard counts.
// ---------------------------------------------------------------------------

RunResult
run_sim(std::uint64_t seed, const SimConfig &config)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.seed = seed;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    return sim.run();
}

TEST(ShardedStateHash, ChurnHeavyTraceIsShardCountInvariant)
{
    SimConfig classic;
    const RunResult base = run_sim(42, classic);
    for (int shards : {1, 2, 4, 8}) {
        for (int threads : {1, 4}) {
            SimConfig config;
            config.planner_shards = shards;
            config.planner_threads = threads;
            RunResult sharded = run_sim(42, config);
            EXPECT_EQ(base.state_hash, sharded.state_hash)
                << "shards=" << shards << " threads=" << threads;
            EXPECT_EQ(base.state_hash_samples,
                      sharded.state_hash_samples)
                << "shards=" << shards << " threads=" << threads;
        }
    }
}

TEST(ShardedStateHash, ScriptedFaultTraceIsShardCountInvariant)
{
    SimConfig classic;
    classic.faults.script.push_back(
        {6.0 * kHour, FaultType::kServerCrash, 0, 2.0 * kHour, 0.0});
    classic.faults.script.push_back(
        {9.0 * kHour, FaultType::kGpuFault, 3, 1.0 * kHour, 0.0});
    classic.faults.script.push_back(
        {12.0 * kHour, FaultType::kServerCrash, 1, 3.0 * kHour, 0.0});
    const RunResult base = run_sim(42, classic);
    for (int shards : {1, 2, 4, 8}) {
        SimConfig config = classic;
        config.planner_shards = shards;
        config.planner_threads = shards > 1 ? 4 : 1;
        RunResult sharded = run_sim(42, config);
        EXPECT_EQ(base.state_hash, sharded.state_hash)
            << "shards=" << shards;
    }
}

TEST(ShardedStateHash, RandomFaultsAreShardCountInvariant)
{
    SimConfig classic;
    classic.faults.seed = 7;
    classic.faults.gpu_mtbf_s = 6.0 * kHour;
    classic.faults.rpc_drop_prob = 0.01;
    classic.faults.straggler_prob = 0.05;
    const RunResult base = run_sim(42, classic);
    for (int shards : {2, 8}) {
        SimConfig config = classic;
        config.planner_shards = shards;
        config.planner_threads = 4;
        RunResult sharded = run_sim(42, config);
        EXPECT_EQ(base.state_hash, sharded.state_hash)
            << "shards=" << shards;
    }
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the scaling/migration overhead model (Fig. 12b) and the
 * run metrics (deadline ratio, Eq. 8 efficiency, JCT).
 */
#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/overhead_model.h"

namespace ef {
namespace {

TEST(OverheadModel, ZeroWhenUnchangedOrDisabled)
{
    OverheadModel model;
    EXPECT_EQ(model.scaling_seconds(DnnModel::kBert, 4, 4), 0.0);
    OverheadConfig off;
    off.enabled = false;
    OverheadModel disabled(off);
    EXPECT_EQ(disabled.scaling_seconds(DnnModel::kBert, 1, 8), 0.0);
    EXPECT_EQ(disabled.migration_seconds(DnnModel::kBert, 8), 0.0);
}

TEST(OverheadModel, GrowsWithModelSize)
{
    OverheadModel model;
    // VGG16's checkpoint dwarfs InceptionV3's.
    EXPECT_GT(model.scaling_seconds(DnnModel::kVgg16, 1, 8),
              model.scaling_seconds(DnnModel::kInceptionV3, 1, 8));
}

TEST(OverheadModel, Fig12bMagnitudes)
{
    // The paper reports scaling/migration overheads of seconds to tens
    // of seconds per event.
    OverheadModel model;
    for (DnnModel m : all_models()) {
        for (auto [from, to] : std::vector<std::pair<int, int>>{
                 {1, 8}, {8, 1}, {4, 8}, {8, 4}}) {
            Time s = model.scaling_seconds(m, from, to);
            EXPECT_GT(s, 1.0) << model_name(m);
            EXPECT_LT(s, 60.0) << model_name(m);
        }
        Time mig = model.migration_seconds(m, 8);
        EXPECT_GT(mig, 1.0) << model_name(m);
        EXPECT_LT(mig, 60.0) << model_name(m);
    }
}

TEST(OverheadModel, SymmetricUpDown)
{
    // Paper §6.6: "the overheads of different cases are similar".
    OverheadModel model;
    EXPECT_DOUBLE_EQ(model.scaling_seconds(DnnModel::kGpt2, 1, 8),
                     model.scaling_seconds(DnnModel::kGpt2, 8, 1));
}

JobOutcome
make_outcome(JobId id, JobKind kind, Time submit, Time deadline,
             bool admitted, bool finished, Time finish)
{
    JobOutcome outcome;
    outcome.spec.id = id;
    outcome.spec.kind = kind;
    outcome.spec.submit_time = submit;
    outcome.spec.deadline = deadline;
    outcome.admitted = admitted;
    outcome.finished = finished;
    outcome.finish_time = finish;
    return outcome;
}

TEST(Metrics, DeadlineRatioCountsDropsAsMisses)
{
    RunResult result;
    result.jobs.push_back(make_outcome(
        1, JobKind::kSlo, 0, 100, true, true, 90));   // met
    result.jobs.push_back(make_outcome(
        2, JobKind::kSlo, 0, 100, true, true, 150));  // late
    result.jobs.push_back(make_outcome(
        3, JobKind::kSlo, 0, 100, false, false,
        kTimeInfinity));                              // dropped
    result.jobs.push_back(make_outcome(
        4, JobKind::kBestEffort, 0, kTimeInfinity, true, true, 500));
    EXPECT_EQ(result.deadlines_met(), 1u);
    EXPECT_DOUBLE_EQ(result.deadline_ratio(), 1.0 / 3.0);
    EXPECT_EQ(result.submitted(JobKind::kSlo), 3u);
    EXPECT_EQ(result.submitted(JobKind::kBestEffort), 1u);
    EXPECT_EQ(result.admitted_count(), 3u);
    EXPECT_EQ(result.dropped_count(), 1u);
    EXPECT_EQ(result.finished_count(), 3u);
}

TEST(Metrics, BestEffortJobsAlwaysMeetInfiniteDeadline)
{
    JobOutcome outcome = make_outcome(
        1, JobKind::kBestEffort, 0, kTimeInfinity, true, true, 1e9);
    EXPECT_TRUE(outcome.met_deadline());
}

TEST(Metrics, AverageJctOverFinishedOnly)
{
    RunResult result;
    result.jobs.push_back(make_outcome(
        1, JobKind::kBestEffort, 10, kTimeInfinity, true, true, 110));
    result.jobs.push_back(make_outcome(
        2, JobKind::kBestEffort, 20, kTimeInfinity, true, true, 320));
    result.jobs.push_back(make_outcome(
        3, JobKind::kBestEffort, 0, kTimeInfinity, true, false,
        kTimeInfinity));
    EXPECT_DOUBLE_EQ(result.average_jct(JobKind::kBestEffort), 200.0);
    EXPECT_DOUBLE_EQ(result.average_jct(JobKind::kSlo), 0.0);
}

TEST(Metrics, ClusterEfficiencyTimeAverage)
{
    RunResult result;
    result.cluster_efficiency.record(0.0, 0.5);
    result.cluster_efficiency.record(50.0, 1.0);
    EXPECT_NEAR(result.average_cluster_efficiency(100.0), 0.75, 1e-9);
}

TEST(Metrics, EmptyRunIsVacuouslyPerfect)
{
    RunResult result;
    EXPECT_DOUBLE_EQ(result.deadline_ratio(), 1.0);
}

TEST(Metrics, SummaryMentionsKeyNumbers)
{
    RunResult result;
    result.scheduler_name = "elasticflow";
    result.trace_name = "t";
    result.jobs.push_back(make_outcome(
        1, JobKind::kSlo, 0, 100, true, true, 90));
    std::string s = summarize(result);
    EXPECT_NE(s.find("elasticflow"), std::string::npos);
    EXPECT_NE(s.find("1/1"), std::string::npos);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the placement manager: best-fit selection, fragmentation
 * behaviour of the non-migrating strategies, and the buddy guarantee —
 * with migration, any power-of-two request that fits idle capacity is
 * placeable and compact.
 */
#include <gtest/gtest.h>

#include <set>

#include "cluster/placement.h"
#include "common/rng.h"

namespace ef {
namespace {

class PlacementTest : public testing::Test
{
  protected:
    PlacementTest()
        : topo_(TopologySpec::testbed_128()), manager_(&topo_)
    {}

    Topology topo_;
    PlacementManager manager_;
};

TEST_F(PlacementTest, BestFitPrefersTightestServer)
{
    // Occupy 6 GPUs of server 0 so it has 2 free; server 1 full free.
    ASSERT_TRUE(manager_
                    .place(100, 4, PlacementStrategy::kBestFitCompact,
                           false)
                    .ok);
    ASSERT_TRUE(manager_
                    .place(101, 2, PlacementStrategy::kBestFitCompact,
                           false)
                    .ok);
    // A 2-GPU job should best-fit into server 0's remaining 2 GPUs.
    PlacementResult r =
        manager_.place(102, 2, PlacementStrategy::kBestFitCompact, false);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(topo_.server_of(r.gpus[0]), 0);
    EXPECT_EQ(topo_.server_of(r.gpus[1]), 0);
    manager_.validate();
}

TEST_F(PlacementTest, CompactPlacementSingleServer)
{
    PlacementResult r =
        manager_.place(1, 8, PlacementStrategy::kBestFitCompact, false);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(manager_.server_span(1), 1);
    EXPECT_EQ(manager_.comm_level_of(1), CommLevel::kIntraServer);
}

TEST_F(PlacementTest, MultiServerJobStaysRackLocal)
{
    PlacementResult r =
        manager_.place(1, 32, PlacementStrategy::kBestFitCompact, false);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(manager_.server_span(1), 4);
    EXPECT_EQ(manager_.comm_level_of(1), CommLevel::kIntraRack);
}

TEST_F(PlacementTest, ScatterSpreadsAcrossServers)
{
    PlacementResult r =
        manager_.place(1, 8, PlacementStrategy::kScatter, false);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(manager_.server_span(1), 8);
}

TEST_F(PlacementTest, FirstFitTakesLowestIds)
{
    ASSERT_TRUE(manager_.place(1, 3, PlacementStrategy::kFirstFit,
                               false).ok);
    std::vector<GpuCount> expect = {0, 1, 2};
    EXPECT_EQ(manager_.gpus_of(1), expect);
}

/** Leave every server with exactly one idle GPU (4+2+1 used). */
void
fill_servers_to_seven(PlacementManager *manager, const Topology &topo)
{
    // Deterministic construction: first-fit walks GPU ids in order, so
    // processing one server at a time with a placeholder plugging the
    // would-be hole yields exactly 4 + 2 + 1 used per server; dropping
    // the placeholders afterwards leaves one idle GPU everywhere.
    for (int s = 0; s < topo.num_servers(); ++s) {
        ASSERT_TRUE(manager
                        ->place(100 + s, 4, PlacementStrategy::kFirstFit,
                                false)
                        .ok);
        ASSERT_TRUE(manager
                        ->place(200 + s, 2, PlacementStrategy::kFirstFit,
                                false)
                        .ok);
        ASSERT_TRUE(manager
                        ->place(300 + s, 1, PlacementStrategy::kFirstFit,
                                false)
                        .ok);
        ASSERT_TRUE(manager
                        ->place(400 + s, 1, PlacementStrategy::kFirstFit,
                                false)
                        .ok);  // placeholder for the hole
    }
    for (int s = 0; s < topo.num_servers(); ++s)
        manager->release(400 + s);
    for (int s = 0; s < topo.num_servers(); ++s)
        ASSERT_EQ(manager->free_in_server(s), 1) << "server " << s;
}

TEST_F(PlacementTest, FragmentationWithoutMigration)
{
    // The paper's fragmentation scenario (§4.3): plenty of idle GPUs
    // in total, but no server has two adjacent ones.
    fill_servers_to_seven(&manager_, topo_);
    EXPECT_EQ(manager_.idle_gpus(), 16);
    // Without migration the 2-GPU job is forced to span servers.
    PlacementResult r = manager_.place(
        999, 2, PlacementStrategy::kBestFitCompact, false);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(topo_.server_span(r.gpus), 2);
}

TEST_F(PlacementTest, MigrationDefragments)
{
    fill_servers_to_seven(&manager_, topo_);
    PlacementResult r = manager_.place(
        999, 2, PlacementStrategy::kBestFitCompact, true);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(topo_.server_span(r.gpus), 1);
    EXPECT_FALSE(r.migrations.empty());
    manager_.validate();
}

TEST_F(PlacementTest, ResizeShrinkKeepsDensestServers)
{
    ASSERT_TRUE(manager_.place(1, 16, PlacementStrategy::kBestFitCompact,
                               true).ok);
    PlacementResult r = manager_.resize(
        1, 8, PlacementStrategy::kBestFitCompact, true);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(manager_.server_span(1), 1);
    manager_.validate();
}

TEST_F(PlacementTest, ResizeGrowRestoresOnFailure)
{
    ASSERT_TRUE(manager_.place(1, 64, PlacementStrategy::kBestFitCompact,
                               true).ok);
    ASSERT_TRUE(manager_.place(2, 64, PlacementStrategy::kBestFitCompact,
                               true).ok);
    std::vector<GpuCount> before = manager_.gpus_of(1);
    PlacementResult r = manager_.resize(
        1, 128, PlacementStrategy::kBestFitCompact, true);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(manager_.gpus_of(1), before);
    manager_.validate();
}

TEST_F(PlacementTest, ReleaseFreesGpus)
{
    ASSERT_TRUE(manager_.place(1, 32, PlacementStrategy::kBestFitCompact,
                               true).ok);
    EXPECT_EQ(manager_.idle_gpus(), 96);
    manager_.release(1);
    EXPECT_EQ(manager_.idle_gpus(), 128);
    EXPECT_FALSE(manager_.is_placed(1));
}

/**
 * The buddy guarantee (paper §4.3): random power-of-two workloads with
 * migration never fail a placement that fits idle capacity, and jobs
 * of <= 8 GPUs always land on a single server.
 */
TEST_F(PlacementTest, BuddyGuaranteePropertySweep)
{
    Rng rng(77);
    std::set<JobId> live;
    JobId next = 0;
    for (int step = 0; step < 2000; ++step) {
        bool do_place = live.empty() || rng.flip(0.55);
        if (do_place) {
            GpuCount size = GpuCount(1) << rng.uniform_int(0, 5);
            GpuCount idle_before = manager_.idle_gpus();
            PlacementResult r = manager_.place(
                next, size, PlacementStrategy::kBestFitCompact, true);
            if (size <= idle_before) {
                ASSERT_TRUE(r.ok)
                    << "step " << step << " size " << size << " idle "
                    << idle_before;
                int compact_span = (size + 7) / 8;
                EXPECT_LE(manager_.server_span(next), compact_span)
                    << "step " << step;
                live.insert(next);
            } else {
                EXPECT_FALSE(r.ok);
            }
            ++next;
        } else {
            auto it = live.begin();
            std::advance(it, rng.uniform_int(
                                 0, static_cast<std::int64_t>(
                                        live.size()) - 1));
            manager_.release(*it);
            live.erase(it);
        }
        if (step % 100 == 0)
            manager_.validate();
    }
}

TEST_F(PlacementTest, MultiServerBuddyStaysRackLocalUnderChurn)
{
    Rng rng(88);
    std::set<JobId> live;
    JobId next = 0;
    for (int step = 0; step < 600; ++step) {
        if (live.empty() || rng.flip(0.55)) {
            GpuCount size = GpuCount(1) << rng.uniform_int(3, 6);  // 8..64
            if (size <= manager_.idle_gpus()) {
                PlacementResult r = manager_.place(
                    next, size, PlacementStrategy::kBestFitCompact, true);
                ASSERT_TRUE(r.ok) << "step " << step;
                // <= 64 GPUs fits one rack; buddy keeps it there.
                EXPECT_EQ(topo_.rack_span(manager_.gpus_of(next)), 1)
                    << "step " << step << " size " << size;
                live.insert(next);
            }
            ++next;
        } else {
            auto it = live.begin();
            std::advance(it, rng.uniform_int(
                                 0, static_cast<std::int64_t>(
                                        live.size()) - 1));
            manager_.release(*it);
            live.erase(it);
        }
    }
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for operator admission policies (§4.4): per-user quotas,
 * deadline-sensitive pricing, and their integration with ElasticFlow's
 * admission control.
 */
#include <gtest/gtest.h>

#include "sched/admission_policy.h"
#include "sched/elastic_flow.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

JobSpec
job_from(const std::string &user, Time deadline_in = kHour)
{
    JobSpec job;
    job.id = 1;
    job.user = user;
    job.requested_gpus = 4;
    job.iterations = 1000;
    job.deadline = deadline_in;
    return job;
}

TEST(QuotaPolicy, EnforcesDailyCap)
{
    QuotaPolicy policy(2);
    EXPECT_TRUE(policy.approve(job_from("alice"), 0.0, kHour));
    EXPECT_TRUE(policy.approve(job_from("alice"), kHour, kHour));
    EXPECT_FALSE(policy.approve(job_from("alice"), 2 * kHour, kHour));
    // Other users are unaffected.
    EXPECT_TRUE(policy.approve(job_from("bob"), 2 * kHour, kHour));
    EXPECT_EQ(policy.used("alice", 2 * kHour), 2);
}

TEST(QuotaPolicy, WindowRolls)
{
    QuotaPolicy policy(1);
    EXPECT_TRUE(policy.approve(job_from("alice"), 0.0, kHour));
    EXPECT_FALSE(policy.approve(job_from("alice"), kHour, kHour));
    // A day later the quota is free again.
    EXPECT_TRUE(policy.approve(job_from("alice"), 25 * kHour, kHour));
}

TEST(PricingPolicy, QuoteScalesWithSizeAndUrgency)
{
    PricingPolicy policy(2.0, {{"alice", 1e9}});
    JobSpec relaxed = job_from("alice", 2.0 * kHour);
    JobSpec urgent = job_from("alice", 0.5 * kHour);
    // Baseline duration 1 hour on 4 GPUs at 2/GPU-hour = 8.
    EXPECT_NEAR(policy.quote(relaxed, 0.0, kHour), 8.0, 1e-9);
    // Half the baseline window doubles the price.
    EXPECT_NEAR(policy.quote(urgent, 0.0, kHour), 16.0, 1e-9);
    // More GPUs cost proportionally more.
    JobSpec big = relaxed;
    big.requested_gpus = 8;
    EXPECT_NEAR(policy.quote(big, 0.0, kHour), 16.0, 1e-9);
}

TEST(PricingPolicy, ChargesBudgetOnApproval)
{
    PricingPolicy policy(1.0, {{"alice", 10.0}});
    JobSpec job = job_from("alice", 2.0 * kHour);  // costs 4
    EXPECT_TRUE(policy.approve(job, 0.0, kHour));
    EXPECT_NEAR(policy.remaining_budget("alice"), 6.0, 1e-9);
    EXPECT_TRUE(policy.approve(job, 0.0, kHour));
    EXPECT_NEAR(policy.remaining_budget("alice"), 2.0, 1e-9);
    // Third one exceeds the remaining budget: rejected, not charged.
    EXPECT_FALSE(policy.approve(job, 0.0, kHour));
    EXPECT_NEAR(policy.remaining_budget("alice"), 2.0, 1e-9);
    // Unknown users have no budget.
    EXPECT_FALSE(policy.approve(job_from("mallory"), 0.0, kHour));
}

TEST(PolicyIntegration, QuotaStopsAFloodingUser)
{
    // Mallory floods the cluster; with a quota of 2/day the rest of
    // her feasible jobs are rejected even though capacity exists.
    TraceBuilder builder(TopologySpec::testbed_32());
    for (int i = 0; i < 6; ++i) {
        builder.slo(DnnModel::kResNet50, 128, 2,
                    i * 10.0, kHour, 1.5);
    }
    Trace trace = builder.build();
    for (JobSpec &job : trace.jobs)
        job.user = "mallory";

    QuotaPolicy policy(2);
    ElasticFlowScheduler scheduler;
    scheduler.set_admission_policy(&policy);
    Simulator sim(trace, &scheduler);
    RunResult result = sim.run();
    EXPECT_EQ(result.admitted_count(), 2u);
    EXPECT_EQ(result.dropped_count(), 4u);
    // The admitted two still carry the full guarantee.
    for (const JobOutcome &job : result.jobs) {
        if (job.admitted) {
            EXPECT_TRUE(job.met_deadline());
        }
    }
}

TEST(PolicyIntegration, PolicyOnlyChargedAfterFeasibility)
{
    // An infeasible job is dropped by Algorithm 1 before the policy
    // sees it — its quota is not consumed (the paper's "before line 9"
    // placement of the hook).
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kVgg16, 64, 32, 0.0, 10.0 * kHour, 0.2)
            .slo(DnnModel::kResNet50, 128, 2, 60.0, kHour, 1.5)
            .build();
    for (JobSpec &job : trace.jobs)
        job.user = "alice";
    QuotaPolicy policy(1);
    ElasticFlowScheduler scheduler;
    scheduler.set_admission_policy(&policy);
    Simulator sim(trace, &scheduler);
    RunResult result = sim.run();
    // Infeasible job dropped by feasibility; the feasible one still
    // fits in alice's quota of one.
    EXPECT_FALSE(result.jobs[0].admitted);
    EXPECT_TRUE(result.jobs[1].admitted);
}

}  // namespace
}  // namespace ef

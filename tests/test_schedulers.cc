/**
 * @file
 * Behavioural tests for the baseline schedulers, each run through the
 * simulator on hand-crafted traces that isolate the policy's defining
 * trait.
 */
#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

SimConfig
no_overhead()
{
    SimConfig config;
    config.overhead.enabled = false;
    return config;
}

TEST(Factory, MakesEveryScheduler)
{
    for (const std::string name :
         {"elasticflow", "edf", "edf+admission", "edf+elastic",
          "gandiva", "tiresias", "themis", "chronus", "pollux"}) {
        auto scheduler = make_scheduler(name);
        ASSERT_NE(scheduler, nullptr) << name;
        EXPECT_EQ(scheduler->name(), name);
    }
    EXPECT_DEATH(make_scheduler("nope"), "unknown scheduler");
}

TEST(Factory, ComparisonOrderMatchesPaper)
{
    const auto &names = all_scheduler_names();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "elasticflow");
}

TEST(Edf, HeadOfLineJobGetsMaxUsefulGpus)
{
    // One job alone: EDF gives it as many GPUs as still help.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kVgg16, 256, 2, 0.0, kHour, 1.2)
                      .build();
    auto scheduler = make_scheduler("edf");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[0].finished);
    // It ran well above its requested 2 GPUs: the finish time beats
    // the standalone duration by a wide margin.
    EXPECT_LT(result.jobs[0].jct(), 0.6 * kHour);
}

TEST(Edf, Figure3PathologySerializesJobs)
{
    // Two identical jobs, deadlines 1.0x and 1.17x of standalone
    // duration. EDF gives the whole useful share to the earlier
    // deadline, so the second job starts late and misses, even though
    // running both in parallel on smaller shares meets both —
    // exactly the paper's Fig. 3.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kVgg16, 256, 8, 0.0, 2.0 * kHour, 1.0)
            .slo(DnnModel::kVgg16, 256, 8, 1.0, 2.0 * kHour, 1.17)
            .build();
    {
        auto edf = make_scheduler("edf");
        Simulator sim(trace, edf.get(), no_overhead());
        RunResult result = sim.run();
        EXPECT_TRUE(result.jobs[0].met_deadline());
        EXPECT_FALSE(result.jobs[1].met_deadline());
    }
    {
        auto ef = make_scheduler("elasticflow");
        Simulator sim(trace, ef.get(), no_overhead());
        RunResult result = sim.run();
        EXPECT_TRUE(result.jobs[0].met_deadline());
        EXPECT_TRUE(result.jobs[1].met_deadline());
    }
}

TEST(Gandiva, UsesRequestedGpusAndQueuesFifo)
{
    // Two 32-GPU jobs on a 32-GPU cluster: strictly one at a time, in
    // submission order.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kResNet50, 256, 32, 0.0, kHour, 1.5)
            .slo(DnnModel::kResNet50, 256, 32, 10.0, kHour, 1.5)
            .build();
    auto scheduler = make_scheduler("gandiva");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[0].finished);
    ASSERT_TRUE(result.jobs[1].finished);
    EXPECT_LT(result.jobs[0].finish_time, result.jobs[1].finish_time);
    // Never elastic: peak allocation equals the request.
    EXPECT_LE(result.used_gpus.values()[0], 32.0);
}

TEST(Tiresias, LeastAttainedServiceWinsPreemption)
{
    // A long-running job has accumulated service; a short newcomer
    // with zero attained service preempts it on a full cluster and
    // stays ahead (its total GPU-time keeps it in a higher queue).
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kBert, 128, 32, 0.0, 20.0 * kHour, 3.0)
            .slo(DnnModel::kBert, 128, 2, 2.0 * kHour, kHour, 3.0)
            .build();
    auto scheduler = make_scheduler("tiresias");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[1].finished);
    // The short newcomer finishes long before the hog.
    EXPECT_LT(result.jobs[1].finish_time, result.jobs[0].finish_time);
    // And did not wait for the hog to finish first.
    EXPECT_LT(result.jobs[1].jct(), 2.0 * kHour);
}

TEST(Themis, StarvedJobEventuallyReclaimsLease)
{
    // Two jobs, one cluster-filling: the waiting job's finish-time
    // fairness degrades until it reclaims GPUs.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kInceptionV3, 128, 32, 0.0, 10.0 * kHour, 3.0)
            .slo(DnnModel::kInceptionV3, 128, 32, 60.0, kHour, 3.0)
            .build();
    auto scheduler = make_scheduler("themis");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[1].finished);
    EXPECT_LT(result.jobs[1].finish_time, result.jobs[0].finish_time);
}

TEST(Chronus, AdmitsOnlyFixedSizeFeasibleJobs)
{
    // Job 2's deadline requires more than its fixed 1-GPU request can
    // deliver — Chronus drops it, ElasticFlow (elastic) admits it.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kResNet50, 256, 1, 0.0, 4.0 * kHour, 0.6)
            .build();
    {
        auto chronus = make_scheduler("chronus");
        Simulator sim(trace, chronus.get(), no_overhead());
        RunResult result = sim.run();
        EXPECT_FALSE(result.jobs[0].admitted);
    }
    {
        auto ef = make_scheduler("elasticflow");
        Simulator sim(trace, ef.get(), no_overhead());
        RunResult result = sim.run();
        EXPECT_TRUE(result.jobs[0].admitted);
        EXPECT_TRUE(result.jobs[0].met_deadline());
    }
}

TEST(Chronus, MeetsDeadlinesItAdmits)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    auto scheduler = make_scheduler("chronus");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.admitted && job.spec.kind == JobKind::kSlo) {
            EXPECT_TRUE(job.met_deadline()) << "job " << job.spec.id;
        }
    }
}

TEST(Pollux, ElasticallyUsesIdleGpus)
{
    // A single 1-GPU-requested job: Pollux ignores the request and
    // scales it out.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kBert, 64, 1, 0.0, kHour, 1.0)
                      .build();
    auto scheduler = make_scheduler("pollux");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[0].finished);
    EXPECT_LT(result.jobs[0].jct(), 0.5 * kHour);
}

TEST(Pollux, SharesProportionallyFairly)
{
    // Two identical jobs on 32 GPUs: neither should monopolize.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kResNet50, 256, 8, 0.0, kHour, 2.0)
            .slo(DnnModel::kResNet50, 256, 8, 1.0, kHour, 2.0)
            .build();
    auto scheduler = make_scheduler("pollux");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    // Near-identical completion times (same share).
    EXPECT_LT(std::abs(result.jobs[0].jct() - result.jobs[1].jct()),
              0.2 * result.jobs[0].jct());
}

TEST(EdfVariants, AdmissionControlDropsInfeasible)
{
    // Hopeless deadline: 0.3x standalone on a saturated request.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kVgg16, 64, 32, 0.0, 10.0 * kHour, 0.3)
            .build();
    auto plain = make_scheduler("edf");
    auto admission = make_scheduler("edf+admission");
    Simulator sim_plain(trace, plain.get(), no_overhead());
    Simulator sim_admission(trace, admission.get(), no_overhead());
    EXPECT_TRUE(sim_plain.run().jobs[0].admitted);
    EXPECT_FALSE(sim_admission.run().jobs[0].admitted);
}

TEST(EdfVariants, ElasticVariantBeatsPlainOnFig3)
{
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kVgg16, 256, 8, 0.0, 2.0 * kHour, 1.0)
            .slo(DnnModel::kVgg16, 256, 8, 1.0, 2.0 * kHour, 1.17)
            .build();
    auto elastic = make_scheduler("edf+elastic");
    Simulator sim(trace, elastic.get(), no_overhead());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[0].met_deadline());
    EXPECT_TRUE(result.jobs[1].met_deadline());
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the run-report exporter: CSV parse-back, summary keys, and
 * file writing.
 */
#include <gtest/gtest.h>

#include "common/csv.h"
#include "sched/scheduler.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

RunResult
sample_run()
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 12;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    return sim.run();
}

TEST(Report, JobsCsvParsesBackAndAgrees)
{
    RunResult result = sample_run();
    CsvTable table = parse_csv(jobs_report_csv(result));
    ASSERT_EQ(table.rows.size(), result.jobs.size());
    std::size_t met = 0;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        EXPECT_EQ(std::stoll(table.cell(r, "id")),
                  result.jobs[r].spec.id);
        met += table.cell(r, "met_deadline") == "1" ? 1 : 0;
        if (table.cell(r, "admitted") == "0") {
            EXPECT_EQ(table.cell(r, "finished"), "0");
        }
    }
    EXPECT_EQ(met, result.deadlines_met());
}

TEST(Report, AllocationCsvMatchesLog)
{
    RunResult result = sample_run();
    CsvTable table = parse_csv(allocation_report_csv(result));
    ASSERT_EQ(table.rows.size(), result.allocation_log.size());
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        EXPECT_EQ(std::stoul(table.cell(r, "gpus")),
                  result.allocation_log[r].gpus.size());
    }
}

TEST(Report, SummaryHasStableKeys)
{
    RunResult result = sample_run();
    std::string summary = summary_report(result);
    for (const std::string key :
         {"scheduler=", "deadline_ratio=", "makespan_s=",
          "admitted=", "replan_failures="}) {
        EXPECT_NE(summary.find(key), std::string::npos) << key;
    }
}

TEST(Report, SaveWritesThreeFiles)
{
    RunResult result = sample_run();
    std::string prefix = testing::TempDir() + "/ef_report_test";
    std::string summary = save_run_report(prefix, result);
    EXPECT_FALSE(summary.empty());
    EXPECT_FALSE(load_csv(prefix + ".jobs.csv").rows.empty());
    EXPECT_FALSE(load_csv(prefix + ".alloc.csv").rows.empty());
}

}  // namespace
}  // namespace ef

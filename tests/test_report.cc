/**
 * @file
 * Tests for the run-report exporter: CSV parse-back, summary keys, and
 * file writing.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/json.h"
#include "sched/scheduler.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

RunResult
sample_run()
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 12;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    return sim.run();
}

TEST(Report, JobsCsvParsesBackAndAgrees)
{
    RunResult result = sample_run();
    CsvTable table = parse_csv(jobs_report_csv(result));
    ASSERT_EQ(table.rows.size(), result.jobs.size());
    std::size_t met = 0;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        EXPECT_EQ(std::stoll(table.cell(r, "id")),
                  result.jobs[r].spec.id);
        met += table.cell(r, "met_deadline") == "1" ? 1 : 0;
        if (table.cell(r, "admitted") == "0") {
            EXPECT_EQ(table.cell(r, "finished"), "0");
        }
    }
    EXPECT_EQ(met, result.deadlines_met());
}

TEST(Report, AllocationCsvMatchesLog)
{
    RunResult result = sample_run();
    CsvTable table = parse_csv(allocation_report_csv(result));
    ASSERT_EQ(table.rows.size(), result.allocation_log.size());
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        EXPECT_EQ(std::stoul(table.cell(r, "gpus")),
                  result.allocation_log[r].gpus.size());
    }
}

TEST(Report, SummaryHasStableKeys)
{
    RunResult result = sample_run();
    std::string summary = summary_report(result);
    for (const std::string key :
         {"scheduler=", "deadline_ratio=", "makespan_s=",
          "admitted=", "replan_failures="}) {
        EXPECT_NE(summary.find(key), std::string::npos) << key;
    }
}

TEST(Report, SaveWritesThreeFiles)
{
    RunResult result = sample_run();
    std::string prefix = testing::TempDir() + "/ef_report_test";
    std::string summary = save_run_report(prefix, result);
    EXPECT_FALSE(summary.empty());
    EXPECT_FALSE(load_csv(prefix + ".jobs.csv").rows.empty());
    EXPECT_FALSE(load_csv(prefix + ".alloc.csv").rows.empty());
}

TEST(Report, JobsJsonRoundTripsAndAgreesWithCsv)
{
    RunResult result = sample_run();
    std::string json = jobs_report_json(result);
    std::string error;
    ASSERT_TRUE(json_validate(json, &error)) << error;
    // One array element per job, with the id spelled verbatim.
    for (const JobOutcome &job : result.jobs) {
        std::string needle =
            "\"id\":" + std::to_string(job.spec.id) + ",";
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
    // Unadmitted jobs must serialize finish_time as null, not inf.
    EXPECT_EQ(json.find("inf"), std::string::npos);
    // The export is deterministic.
    EXPECT_EQ(json, jobs_report_json(result));
}

TEST(Report, SummaryJsonMatchesTextSummary)
{
    RunResult result = sample_run();
    std::string json = summary_report_json(result);
    std::string error;
    ASSERT_TRUE(json_validate(json, &error)) << error;
    for (const std::string key :
         {"\"scheduler\":", "\"deadline_ratio\":",
          "\"makespan_s\":", "\"admitted\":",
          "\"replan_failures\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    std::string expected_jobs =
        "\"jobs\":" + std::to_string(result.jobs.size());
    EXPECT_NE(json.find(expected_jobs), std::string::npos);
    std::string expected_sched =
        "\"scheduler\":\"" + result.scheduler_name + "\"";
    EXPECT_NE(json.find(expected_sched), std::string::npos);
}

TEST(Report, SaveAlsoWritesJsonArtifacts)
{
    RunResult result = sample_run();
    std::string prefix = testing::TempDir() + "/ef_report_json_test";
    save_run_report(prefix, result);
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.good()) << path;
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    };
    std::string error;
    EXPECT_TRUE(json_validate(slurp(prefix + ".jobs.json"), &error))
        << error;
    EXPECT_TRUE(
        json_validate(slurp(prefix + ".summary.json"), &error))
        << error;
}

}  // namespace
}  // namespace ef

/**
 * @file
 * ef-lint rule-engine tests. Each rule is exercised on a small fixture
 * snippet, once violating and once with the allow() escape hatch, plus
 * path classification, annotation validation, and the lexer corner
 * cases (comments, strings, raw strings, digit separators) that must
 * never produce false positives.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

namespace ef {
namespace {

using lint::FileClass;
using lint::Issue;
using lint::classify;
using lint::lint_source;

/** Rule names of all issues found in @p text under @p cls. */
std::vector<std::string>
rules_in(std::string_view text, const FileClass &cls)
{
    std::vector<std::string> out;
    for (const Issue &issue : lint_source("fixture.cc", text, cls))
        out.push_back(issue.rule);
    return out;
}

bool
has_rule(const std::vector<std::string> &rules, std::string_view name)
{
    return std::find(rules.begin(), rules.end(), name) != rules.end();
}

FileClass
library_class()
{
    return classify("src/core/foo.cc");
}

FileClass
order_sensitive_class()
{
    return classify("src/sched/foo.cc");
}

TEST(EfLintClassify, PathsMapToRuleScopes)
{
    EXPECT_TRUE(classify("src/core/allocator.cc").library);
    EXPECT_FALSE(classify("src/core/allocator.cc").order_sensitive);
    EXPECT_TRUE(classify("src/sched/elastic_flow.cc").order_sensitive);
    EXPECT_TRUE(classify("src/sim/simulator.cc").order_sensitive);
    EXPECT_FALSE(classify("tests/test_smoke.cc").library);
    EXPECT_FALSE(classify("bench/fig7.cc").library);
    EXPECT_TRUE(classify("src/common/logging.cc").io_exempt);
    EXPECT_TRUE(classify("src/common/check.h").io_exempt);
    EXPECT_FALSE(classify("src/common/table.cc").io_exempt);
    EXPECT_TRUE(classify("src/common/rng.cc").rng_exempt);
    EXPECT_FALSE(classify("src/common/hash.h").rng_exempt);
}

TEST(EfLintNondet, FlagsEnginesAndCallsInLibraryCode)
{
    const char *text = "std::mt19937_64 gen(std::random_device{}());\n"
                       "int r = rand();\n"
                       "const char *home = getenv(\"HOME\");\n"
                       "auto t = std::chrono::system_clock::now();\n";
    auto rules = rules_in(text, library_class());
    EXPECT_EQ(std::count(rules.begin(), rules.end(), "nondet"), 5);
    // Same text outside src/ is fine (tests may use real clocks).
    EXPECT_TRUE(rules_in(text, classify("tests/t.cc")).empty());
    // The sanctioned source (common/rng.*) is exempt.
    EXPECT_FALSE(has_rule(
        rules_in("std::mt19937_64 gen_;", classify("src/common/rng.h")),
        "nondet"));
}

TEST(EfLintNondet, MemberNamedTimeIsNotACall)
{
    // `spec.time(...)`-style member access must not trip the time()
    // heuristic, and `event.time` has no call parens at all.
    const char *text = "double t = event.time; obj->clock();\n";
    EXPECT_TRUE(rules_in(text, library_class()).empty());
}

TEST(EfLintUnordered, OnlyInOrderSensitiveCode)
{
    const char *text = "std::unordered_map<int, int> m;\n";
    EXPECT_TRUE(has_rule(rules_in(text, order_sensitive_class()),
                         "unordered"));
    EXPECT_FALSE(has_rule(rules_in(text, library_class()), "unordered"));

    const char *allowed =
        "// ef-lint: allow(unordered: order never observed)\n"
        "std::unordered_map<int, int> m;\n";
    EXPECT_TRUE(rules_in(allowed, order_sensitive_class()).empty());
}

TEST(EfLintFloatEq, LiteralsAndSentinelBothSides)
{
    FileClass cls = library_class();
    EXPECT_TRUE(has_rule(rules_in("if (x == 1.0) {}", cls), "float-eq"));
    EXPECT_TRUE(has_rule(rules_in("if (0.5f != y) {}", cls), "float-eq"));
    EXPECT_TRUE(
        has_rule(rules_in("if (t != kTimeInfinity) {}", cls), "float-eq"));
    EXPECT_TRUE(
        has_rule(rules_in("return kTimeInfinity == deadline;", cls),
                 "float-eq"));
    // Scientific notation and hex floats count as floats.
    EXPECT_TRUE(has_rule(rules_in("if (x == 1e-9) {}", cls), "float-eq"));
    // Integer comparisons do not.
    EXPECT_FALSE(has_rule(rules_in("if (n == 3) {}", cls), "float-eq"));
    EXPECT_FALSE(
        has_rule(rules_in("if (a.time != b.time) {}", cls), "float-eq"));
    // A float in a *different* clause must not bleed across && or ;.
    EXPECT_FALSE(has_rule(
        rules_in("if (x > 1.0 && n == 3) {}", cls), "float-eq"));
    EXPECT_FALSE(has_rule(
        rules_in("double d = 1.0; if (n == 3) {}", cls), "float-eq"));
    // Escape hatch on the same line.
    EXPECT_TRUE(rules_in("bool eq = a == b && x == 1.0;  "
                         "// ef-lint: allow(float-eq: exact by design)",
                         cls)
                    .empty());
}

TEST(EfLintCheckSideEffect, ConditionOnlyNotMessage)
{
    FileClass cls = library_class();
    EXPECT_TRUE(has_rule(rules_in("EF_CHECK(n++ > 0);", cls),
                         "check-side-effect"));
    EXPECT_TRUE(has_rule(rules_in("EF_DCHECK(total += step);", cls),
                         "check-side-effect"));
    EXPECT_TRUE(has_rule(
        rules_in("EF_CHECK_MSG(x = 1, \"oops\");", cls),
        "check-side-effect"));
    EXPECT_TRUE(has_rule(rules_in("EF_FATAL_IF(--n == 0, \"gone\");", cls),
                         "check-side-effect"));
    // Comparisons are not side effects; the tokenizer must keep
    // ==, !=, <=, >= distinct from =.
    EXPECT_TRUE(rules_in("EF_CHECK(a == b && c <= d);", cls).empty());
    // The message argument may mutate (it only renders on failure).
    EXPECT_TRUE(
        rules_in("EF_CHECK_MSG(ok, \"retry \" << attempts++);", cls)
            .empty());
    // Calls with internal commas stay inside the condition argument.
    EXPECT_TRUE(has_rule(
        rules_in("EF_DCHECK_MSG(fits(a, b += 1), \"m\");", cls),
        "check-side-effect"));
}

TEST(EfLintIo, LibraryOnlyWithExemptions)
{
    const char *text = "std::cout << \"hi\";\nstd::cerr << \"uh\";\n";
    auto rules = rules_in(text, library_class());
    EXPECT_EQ(std::count(rules.begin(), rules.end(), "io"), 2);
    EXPECT_TRUE(rules_in(text, classify("examples/run.cpp")).empty());
    EXPECT_TRUE(rules_in(text, classify("src/common/logging.cc")).empty());
    // A member named cerr is not the global stream.
    EXPECT_TRUE(rules_in("sink.cerr << x;", library_class()).empty());
}

TEST(EfLintUsingNamespace, LibraryOnly)
{
    const char *text = "using namespace std;\n";
    EXPECT_TRUE(
        has_rule(rules_in(text, library_class()), "using-namespace"));
    EXPECT_TRUE(rules_in(text, classify("bench/fig7.cc")).empty());
    // Plain using-declarations are fine.
    EXPECT_TRUE(
        rules_in("using std::vector;", library_class()).empty());
}

TEST(EfLintLexer, CommentsStringsAndRawStringsAreOpaque)
{
    FileClass cls = order_sensitive_class();
    EXPECT_TRUE(rules_in("// std::unordered_map in a comment\n"
                         "/* rand() in a block comment */\n"
                         "const char *s = \"rand() == 1.0\";\n"
                         "const char *r = R\"(using namespace std)\";\n",
                         cls)
                    .empty());
    // Digit separators don't split numbers; 1'000 is an int.
    EXPECT_FALSE(
        has_rule(rules_in("if (n == 1'000) {}", cls), "float-eq"));
    // Character literals are opaque too.
    EXPECT_TRUE(rules_in("char c = '\\\"'; (void)c;", cls).empty());
}

TEST(EfLintAnnotations, MalformedAndUnknownAreReported)
{
    FileClass cls = library_class();
    auto issues =
        lint_source("fixture.cc", "// ef-lint: allow(float-eq)\n", cls);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].rule, "bad-annotation");
    EXPECT_EQ(issues[0].line, 1);

    issues = lint_source(
        "fixture.cc", "// ef-lint: allow(not-a-rule: because)\n", cls);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].rule, "bad-annotation");

    issues =
        lint_source("fixture.cc", "// ef-lint: suppress(io: x)\n", cls);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].rule, "bad-annotation");

    // An allow() for rule A does not silence rule B on that line.
    EXPECT_TRUE(has_rule(
        rules_in("bool b = x == 1.0;  // ef-lint: allow(io: wrong rule)",
                 cls),
        "float-eq"));

    // Unused-but-well-formed annotations are legal (may document
    // sites the lexical heuristics cannot see).
    EXPECT_TRUE(
        rules_in("// ef-lint: allow(float-eq: documented intent)\n"
                 "bool eq = close_enough(a, b);\n",
                 cls)
            .empty());
}

TEST(EfLintThreading, LibraryIncludesFlowThroughParallel)
{
    FileClass cls = library_class();
    // Direct threading includes are the violation, one per directive.
    auto rules = rules_in("#include <thread>\n#include <mutex>\n", cls);
    EXPECT_EQ(std::count(rules.begin(), rules.end(), "threading"), 2);
    EXPECT_TRUE(has_rule(rules_in("#include <atomic>\n", cls), "threading"));
    EXPECT_TRUE(has_rule(rules_in("#include <condition_variable>\n", cls),
                         "threading"));
    // Non-threading includes and mere mentions of std::thread are fine;
    // the rule targets the include directive, not usage (usage outside
    // the sanctioned pool cannot compile without the include anyway).
    EXPECT_TRUE(rules_in("#include <vector>\n", cls).empty());
    EXPECT_TRUE(rules_in("ef::ThreadPool pool(4);\n", cls).empty());
}

TEST(EfLintThreading, ParallelIsTheSanctionedHome)
{
    EXPECT_TRUE(classify("src/common/parallel.h").threading_exempt);
    EXPECT_TRUE(classify("src/common/parallel.cc").threading_exempt);
    EXPECT_FALSE(classify("src/common/logging.cc").threading_exempt);
    EXPECT_FALSE(classify("src/core/allocator.cc").threading_exempt);

    const char *text = "#include <thread>\n#include <condition_variable>\n";
    EXPECT_TRUE(
        rules_in(text, classify("src/common/parallel.cc")).empty());
    // Outside src/ the rule does not apply at all.
    EXPECT_TRUE(rules_in(text, classify("tests/test_parallel.cc")).empty());
    EXPECT_TRUE(rules_in(text, classify("bench/fig7.cc")).empty());
}

TEST(EfLintThreading, AllowAnnotationSuppresses)
{
    FileClass cls = library_class();
    EXPECT_TRUE(
        rules_in("// ef-lint: allow(threading: lock-free stat counter)\n"
                 "#include <atomic>\n",
                 cls)
            .empty());
    EXPECT_TRUE(
        rules_in("#include <mutex>  // ef-lint: allow(threading: guard)\n",
                 cls)
            .empty());
    // An allow() for a different rule does not silence it.
    EXPECT_TRUE(has_rule(
        rules_in("#include <thread>  // ef-lint: allow(io: wrong rule)\n",
                 cls),
        "threading"));
}

TEST(EfLintFileIo, LibraryConfinedToRecoverAndTraceIo)
{
    FileClass cls = library_class();
    // The include directive, stream types, and C-style opens are each
    // one violation.
    const auto include_rules = rules_in("#include <fstream>\n", cls);
    EXPECT_EQ(std::count(include_rules.begin(), include_rules.end(),
                         "file-io"),
              1);
    EXPECT_TRUE(
        has_rule(rules_in("std::ofstream out(path);", cls), "file-io"));
    EXPECT_TRUE(
        has_rule(rules_in("std::ifstream in(path);", cls), "file-io"));
    EXPECT_TRUE(has_rule(
        rules_in("FILE *f = std::fopen(p, \"rb\");", cls), "file-io"));
    EXPECT_TRUE(
        has_rule(rules_in("f = freopen(p, \"w\", f);", cls), "file-io"));
    // A member named fopen is not the C call; other includes are fine.
    EXPECT_TRUE(rules_in("vfs.fopen(p);", cls).empty());
    EXPECT_TRUE(rules_in("#include <sstream>\n", cls).empty());
}

TEST(EfLintFileIo, RecoverAndTraceIoAreTheSanctionedHomes)
{
    EXPECT_TRUE(classify("src/recover/journal.cc").file_io_exempt);
    EXPECT_TRUE(classify("src/recover/snapshot.h").file_io_exempt);
    EXPECT_TRUE(classify("src/workload/trace_io.cc").file_io_exempt);
    EXPECT_FALSE(classify("src/workload/trace_gen.cc").file_io_exempt);
    EXPECT_FALSE(classify("src/sim/report.cc").file_io_exempt);

    const char *text = "#include <fstream>\nstd::ofstream out(p);\n";
    EXPECT_TRUE(
        rules_in(text, classify("src/recover/snapshot.cc")).empty());
    EXPECT_TRUE(
        rules_in(text, classify("src/workload/trace_io.cc")).empty());
    // Outside src/ the rule does not apply at all.
    EXPECT_TRUE(rules_in(text, classify("tests/test_recover.cc")).empty());
    EXPECT_TRUE(rules_in(text, classify("tools/ef_lint/main.cc")).empty());
}

TEST(EfLintFileIo, AllowAnnotationSuppresses)
{
    FileClass cls = library_class();
    EXPECT_TRUE(rules_in(
                    "// ef-lint: allow(file-io: read-only script input)\n"
                    "std::ifstream in(path);\n",
                    cls)
                    .empty());
    EXPECT_TRUE(
        rules_in("#include <fstream>  "
                 "// ef-lint: allow(file-io: report artifacts)\n",
                 cls)
            .empty());
    // An allow() for a different rule does not silence it.
    EXPECT_TRUE(has_rule(
        rules_in("#include <fstream>  // ef-lint: allow(io: wrong)\n",
                 cls),
        "file-io"));
}

TEST(EfLintIssues, FormatAndLineNumbers)
{
    auto issues = lint_source("src/sched/x.cc",
                              "int a;\nint b;\nstd::unordered_set<int> s;\n",
                              classify("src/sched/x.cc"));
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].line, 3);
    const std::string formatted = lint::format_issue(issues[0]);
    EXPECT_EQ(formatted.find("src/sched/x.cc:3: [unordered] "), 0u);
}

TEST(EfLintUnusedAllow, ReportedOnlyWhenAsked)
{
    FileClass cls = library_class();
    const char *stale =
        "// ef-lint: allow(float-eq: nothing floaty here)\n"
        "int n = 3;\n";
    // Default behavior is unchanged: stale allows stay silent.
    EXPECT_TRUE(lint_source("fixture.cc", stale, cls).empty());
    lint::LintOptions options;
    options.warn_unused_allow = true;
    auto issues = lint_source("fixture.cc", stale, cls, options);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].rule, "unused-allow");
    EXPECT_EQ(issues[0].line, 1);

    // An allow that actually suppressed something is not stale.
    const char *used =
        "bool eq = x == 1.0;  // ef-lint: allow(float-eq: by design)\n";
    EXPECT_TRUE(lint_source("fixture.cc", used, cls, options).empty());
}

TEST(EfLintRules, NamesAreStable)
{
    const std::vector<std::string> expected = {
        "nondet",            "unordered", "float-eq",
        "check-side-effect", "io",        "using-namespace",
        "threading",         "file-io"};
    EXPECT_EQ(lint::rule_names(), expected);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Crash-consistent control plane, end to end (DESIGN.md §12): a
 * simulator killed at ANY round commit and restarted with
 * durability.recover must finish with decisions and a
 * RunResult::state_hash bit-identical to an uninterrupted run. The
 * crash-at-every-round harness proves it exhaustively for scripted
 * kSchedCrash faults, across planner shard settings, through
 * multi-crash chains, and under rate-based crash soak.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "fault/fault.h"
#include "recover/log.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

Trace
small_trace(std::uint64_t seed)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.seed = seed;
    return TraceGenerator::generate(gen);
}

FaultEvent
sched_crash_at_round(std::int64_t round)
{
    FaultEvent ev;
    ev.time = 0.0;
    ev.type = FaultType::kSchedCrash;
    ev.target = round;
    return ev;
}

std::string
fresh_dir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::remove(recover::DurableLog::snapshot_path(dir).c_str());
    std::remove(recover::DurableLog::journal_path(dir).c_str());
    return dir;
}

RunResult
run_sim(const Trace &trace, const SimConfig &config)
{
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    return sim.run();
}

/**
 * Crash at round `n`, recover, and return the recovered result. The
 * scripted sched-crash entries live in the injector's armed-sched
 * list, which is deliberately outside state_fingerprint(), so the
 * crash script never perturbs hashed state relative to the baseline.
 */
RunResult
crash_then_recover(const Trace &trace, const SimConfig &base,
                   const std::string &dir, std::int64_t round)
{
    SimConfig crash_config = base;
    crash_config.durability.journal_dir = dir;
    crash_config.faults.script.push_back(sched_crash_at_round(round));
    {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), crash_config);
        sim.run();
        EXPECT_TRUE(sim.crashed()) << "round " << round;
    }
    SimConfig recover_config = crash_config;
    recover_config.durability.recover = true;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), recover_config);
    recover::Status st = sim.prepare_durability();
    EXPECT_TRUE(st.ok()) << st.to_string();
    RunResult result = sim.run();
    EXPECT_FALSE(sim.crashed()) << "round " << round;
    return result;
}

void
expect_identical(const RunResult &a, const RunResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.state_hash, b.state_hash) << what;
    EXPECT_EQ(a.state_hash_samples, b.state_hash_samples) << what;
    ASSERT_EQ(a.allocation_log.size(), b.allocation_log.size()) << what;
    for (std::size_t i = 0; i < a.allocation_log.size(); ++i) {
        EXPECT_EQ(a.allocation_log[i].time, b.allocation_log[i].time)
            << what << " entry " << i;
        EXPECT_EQ(a.allocation_log[i].job, b.allocation_log[i].job)
            << what << " entry " << i;
        EXPECT_EQ(a.allocation_log[i].gpus, b.allocation_log[i].gpus)
            << what << " entry " << i;
    }
    EXPECT_EQ(a.jobs.size(), b.jobs.size()) << what;
    EXPECT_EQ(a.makespan, b.makespan) << what;
}

/** Baseline with the fault injector present (so the configuration
 *  fingerprint matches the crashing runs) but no journal bound — a
 *  scripted sched-crash only fires at durable round commits, so this
 *  run never crashes regardless of the entry's target. */
SimConfig
scripted_base()
{
    SimConfig config;
    config.faults.script.push_back(sched_crash_at_round(1));
    return config;
}

/** scripted_base() minus the dummy entry: callers add real crashes. */
SimConfig
empty_script_base()
{
    return SimConfig{};
}

TEST(CrashRecovery, CrashAtEveryRoundIsBitIdentical)
{
    const Trace trace = small_trace(42);
    const SimConfig base = scripted_base();
    const RunResult baseline = run_sim(trace, base);
    ASSERT_GT(baseline.state_hash_samples, 2u);

    for (std::uint64_t n = 1; n <= baseline.state_hash_samples; ++n) {
        const std::string dir =
            fresh_dir("ef_crash_round_" + std::to_string(n));
        RunResult recovered = crash_then_recover(
            trace, empty_script_base(), dir,
            static_cast<std::int64_t>(n));
        expect_identical(baseline, recovered,
                         "crash at round " + std::to_string(n));
    }
}

TEST(CrashRecovery, ShardedPlannerRecoversIdentically)
{
    const Trace trace = small_trace(42);
    SimConfig base = scripted_base();
    base.planner_shards = 4;
    const RunResult baseline = run_sim(trace, base);

    // Same decisions as unsharded planning (DESIGN.md §10)...
    const RunResult unsharded = run_sim(trace, scripted_base());
    expect_identical(baseline, unsharded, "shards 4 vs 0");

    // ...and crash+recover under shards=4 reproduces them.
    const std::uint64_t mid = baseline.state_hash_samples / 2 + 1;
    const std::string dir = fresh_dir("ef_crash_shards4");
    SimConfig crash_base = empty_script_base();
    crash_base.planner_shards = 4;
    RunResult recovered = crash_then_recover(
        trace, crash_base, dir, static_cast<std::int64_t>(mid));
    expect_identical(baseline, recovered, "sharded recovery");
}

TEST(CrashRecovery, RecoveryMayChangeShardSetting)
{
    // planner_shards is an execution strategy, not state: a journal
    // written under shards=0 recovers under shards=4 bit-identically.
    const Trace trace = small_trace(42);
    const SimConfig base = scripted_base();
    const RunResult baseline = run_sim(trace, base);
    const std::uint64_t mid = baseline.state_hash_samples / 2 + 1;

    const std::string dir = fresh_dir("ef_crash_cross_shard");
    SimConfig crash_config = empty_script_base();
    crash_config.durability.journal_dir = dir;
    crash_config.faults.script.push_back(
        sched_crash_at_round(static_cast<std::int64_t>(mid)));
    {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), crash_config);
        sim.run();
        ASSERT_TRUE(sim.crashed());
    }
    SimConfig recover_config = crash_config;
    recover_config.durability.recover = true;
    recover_config.planner_shards = 4;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), recover_config);
    ASSERT_TRUE(sim.prepare_durability().ok());
    RunResult recovered = sim.run();
    expect_identical(baseline, recovered, "cross-shard recovery");
}

TEST(CrashRecovery, MultiCrashChainRecovers)
{
    const Trace trace = small_trace(42);
    const SimConfig base = scripted_base();
    const RunResult baseline = run_sim(trace, base);
    const std::uint64_t rounds = baseline.state_hash_samples;
    ASSERT_GT(rounds, 4u);

    const std::string dir = fresh_dir("ef_crash_chain");
    SimConfig config = empty_script_base();
    config.durability.journal_dir = dir;
    // Three more crashes at increasing rounds; each recovery run hits
    // the next one until the script is exhausted.
    config.faults.script.push_back(sched_crash_at_round(2));
    config.faults.script.push_back(
        sched_crash_at_round(static_cast<std::int64_t>(rounds / 2)));
    config.faults.script.push_back(
        sched_crash_at_round(static_cast<std::int64_t>(rounds - 1)));

    int crashes = 0;
    RunResult final_result;
    for (int attempt = 0; attempt < 8; ++attempt) {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        ASSERT_TRUE(sim.prepare_durability().ok());
        final_result = sim.run();
        if (!sim.crashed())
            break;
        ++crashes;
        config.durability.recover = true;
    }
    EXPECT_EQ(crashes, 3);
    expect_identical(baseline, final_result, "multi-crash chain");
}

TEST(CrashRecovery, RateBasedCrashSoak)
{
    const Trace trace = small_trace(7);
    SimConfig base;
    base.faults.seed = 99;
    base.faults.sched_crash_prob = 0.25;
    const RunResult baseline = run_sim(trace, base);

    const std::string dir = fresh_dir("ef_crash_soak");
    SimConfig config = base;
    config.durability.journal_dir = dir;
    int crashes = 0;
    RunResult final_result;
    bool finished = false;
    // With p=0.25 per commit the expected chain is short; the bound
    // is generous so the test is deterministic-but-not-flaky under
    // any seed choice.
    for (int attempt = 0; attempt < 200; ++attempt) {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        ASSERT_TRUE(sim.prepare_durability().ok());
        final_result = sim.run();
        if (!sim.crashed()) {
            finished = true;
            break;
        }
        ++crashes;
        config.durability.recover = true;
    }
    ASSERT_TRUE(finished) << "soak never completed";
    EXPECT_GT(crashes, 0) << "p=0.25 soak never crashed once";
    expect_identical(baseline, final_result, "rate-based soak");
}

TEST(CrashRecovery, FrequentSnapshotsStillIdentical)
{
    const Trace trace = small_trace(42);
    const SimConfig base = scripted_base();
    const RunResult baseline = run_sim(trace, base);
    const std::uint64_t late = baseline.state_hash_samples - 1;

    const std::string dir = fresh_dir("ef_crash_snap1");
    SimConfig config = empty_script_base();
    config.durability.snapshot_every = 1;  // snapshot every round
    config.durability.journal_dir = dir;
    config.faults.script.push_back(
        sched_crash_at_round(static_cast<std::int64_t>(late)));
    {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        sim.run();
        ASSERT_TRUE(sim.crashed());
    }
    SimConfig recover_config = config;
    recover_config.durability.recover = true;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), recover_config);
    ASSERT_TRUE(sim.prepare_durability().ok());
    RunResult recovered = sim.run();
    expect_identical(baseline, recovered, "snapshot_every=1");
}

TEST(CrashRecovery, ChurnWithClusterFaultsRecovers)
{
    // Crash recovery composed with the rest of the fault model: GPU
    // faults, RPC loss, and stragglers are all active, so the replay
    // must restore every RNG cursor exactly.
    const Trace trace = small_trace(21);
    SimConfig base;
    base.faults.seed = 5;
    base.faults.gpu_mtbf_s = 12.0 * kHour;
    base.faults.rpc_drop_prob = 0.01;
    base.faults.straggler_prob = 0.05;
    base.faults.ckpt_failure_prob = 0.02;
    const RunResult baseline = run_sim(trace, base);
    ASSERT_GT(baseline.state_hash_samples, 3u);

    const std::uint64_t rounds = baseline.state_hash_samples;
    for (std::uint64_t n : {std::uint64_t{1}, rounds / 2, rounds}) {
        if (n < 1)
            continue;
        const std::string dir =
            fresh_dir("ef_crash_churn_" + std::to_string(n));
        SimConfig config = base;
        RunResult recovered = crash_then_recover(
            trace, config, dir, static_cast<std::int64_t>(n));
        expect_identical(baseline, recovered,
                         "churn crash at round " + std::to_string(n));
    }
}

TEST(CrashRecovery, RecoverWithoutCrashIsIdempotent)
{
    // Recovering a journal whose run completed replays to the end and
    // finishes with the same result.
    const Trace trace = small_trace(42);
    const std::string dir = fresh_dir("ef_crash_complete");
    SimConfig config;
    config.durability.journal_dir = dir;
    const RunResult first = run_sim(trace, config);

    SimConfig recover_config = config;
    recover_config.durability.recover = true;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), recover_config);
    ASSERT_TRUE(sim.prepare_durability().ok());
    RunResult again = sim.run();
    expect_identical(first, again, "recover after completion");
}

TEST(CrashRecovery, MismatchedTraceIsTypedError)
{
    const Trace trace = small_trace(42);
    const std::string dir = fresh_dir("ef_crash_mismatch");
    SimConfig config;
    config.durability.journal_dir = dir;
    config.faults.script.push_back(sched_crash_at_round(2));
    {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        sim.run();
        ASSERT_TRUE(sim.crashed());
    }
    const Trace other = small_trace(43);
    SimConfig recover_config = config;
    recover_config.durability.recover = true;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(other, scheduler.get(), recover_config);
    recover::Status st = sim.prepare_durability();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code, recover::ErrorCode::kStateMismatch);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for trace generation (presets, deadline assignment) and CSV
 * round-tripping.
 */
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "workload/perf_model.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace ef {
namespace {

TEST(TraceGen, DeterministicInSeed)
{
    Trace a = TraceGenerator::generate(testbed_small_preset());
    Trace b = TraceGenerator::generate(testbed_small_preset());
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
        EXPECT_EQ(a.jobs[i].model, b.jobs[i].model);
        EXPECT_DOUBLE_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
        EXPECT_DOUBLE_EQ(a.jobs[i].deadline, b.jobs[i].deadline);
        EXPECT_EQ(a.jobs[i].iterations, b.jobs[i].iterations);
    }
}

TEST(TraceGen, JobsAreWellFormed)
{
    TraceGenConfig config = testbed_large_preset();
    Trace trace = TraceGenerator::generate(config);
    Topology topo(trace.topology);
    PerfModel perf(&topo);
    EXPECT_EQ(trace.jobs.size(), 195u);

    Time prev = -1.0;
    for (const JobSpec &job : trace.jobs) {
        EXPECT_GE(job.submit_time, prev);
        prev = job.submit_time;
        EXPECT_TRUE(is_power_of_two(job.requested_gpus)) << job.id;
        EXPECT_GE(job.requested_gpus,
                  perf.min_workers(job.model, job.global_batch))
            << job.id;
        EXPECT_LE(job.requested_gpus, topo.total_gpus()) << job.id;
        EXPECT_GT(job.iterations, 0) << job.id;
        EXPECT_GT(job.deadline, job.submit_time) << job.id;
    }
}

TEST(TraceGen, DeadlineTightnessInRange)
{
    TraceGenConfig config = testbed_large_preset();
    Trace trace = TraceGenerator::generate(config);
    Topology topo(trace.topology);
    PerfModel perf(&topo);
    for (const JobSpec &job : trace.jobs) {
        double lambda = (job.deadline - job.submit_time) /
                        standalone_duration(perf, job);
        // Iteration rounding can push lambda epsilon past the bounds.
        EXPECT_GT(lambda, 0.45) << job.id;
        EXPECT_LT(lambda, 1.60) << job.id;
    }
}

TEST(TraceGen, BestEffortFraction)
{
    TraceGenConfig config = testbed_large_preset();
    config.best_effort_fraction = 0.3;
    config.num_jobs = 400;
    Trace trace = TraceGenerator::generate(config);
    double frac = static_cast<double>(
                      trace.count_kind(JobKind::kBestEffort)) /
                  static_cast<double>(trace.jobs.size());
    EXPECT_NEAR(frac, 0.3, 0.07);
    for (const JobSpec &job : trace.jobs) {
        if (job.is_best_effort()) {
            EXPECT_EQ(job.deadline, kTimeInfinity);
        }
    }
}

TEST(TraceGen, ClusterPresetsCoverRange)
{
    int prev_gpus = 0;
    for (int i = 1; i <= 10; ++i) {
        TraceGenConfig config = cluster_preset(i);
        Topology topo(config.topology);
        EXPECT_GE(topo.total_gpus(), 64) << "preset " << i;
        EXPECT_GE(config.num_jobs, 60) << "preset " << i;
        prev_gpus = std::max(prev_gpus, topo.total_gpus());
    }
    EXPECT_GE(prev_gpus, 512);
    EXPECT_DEATH(cluster_preset(0), "preset index");
    EXPECT_DEATH(cluster_preset(11), "preset index");
}

TEST(TraceGen, PhillyPresetSkewsSmall)
{
    Trace trace = TraceGenerator::generate(philly_preset());
    std::size_t small = 0;
    for (const JobSpec &job : trace.jobs)
        small += job.requested_gpus <= 2 ? 1 : 0;
    EXPECT_GT(static_cast<double>(small) / trace.jobs.size(), 0.5);
}

TEST(TraceIo, CsvRoundTrip)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    Trace copy = parse_trace_csv(trace_to_csv(trace), trace.topology,
                                 trace.name);
    ASSERT_EQ(copy.jobs.size(), trace.jobs.size());
    for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
        const JobSpec &a = trace.jobs[i];
        const JobSpec &b = copy.jobs[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.model, b.model);
        EXPECT_EQ(a.global_batch, b.global_batch);
        EXPECT_EQ(a.iterations, b.iterations);
        EXPECT_NEAR(a.submit_time, b.submit_time, 1e-3);
        EXPECT_NEAR(a.deadline, b.deadline, 1e-3);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.requested_gpus, b.requested_gpus);
    }
}

TEST(TraceIo, BestEffortDeadlineSerializesAsInf)
{
    Trace trace;
    trace.topology = TopologySpec::testbed_32();
    JobSpec job;
    job.id = 1;
    job.name = "be";
    job.iterations = 10;
    job.kind = JobKind::kBestEffort;
    job.deadline = kTimeInfinity;
    trace.jobs.push_back(job);
    std::string csv = trace_to_csv(trace);
    EXPECT_NE(csv.find("inf"), std::string::npos);
    Trace copy = parse_trace_csv(csv, trace.topology);
    EXPECT_EQ(copy.jobs[0].deadline, kTimeInfinity);
}

TEST(TraceIo, FileRoundTrip)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    std::string path = testing::TempDir() + "/ef_trace_test.csv";
    save_trace_csv(path, trace);
    Trace copy = load_trace_csv(path, trace.topology);
    EXPECT_EQ(copy.jobs.size(), trace.jobs.size());
}

TEST(TraceIoDeathTest, MalformedRowsNameTheLine)
{
    const std::string header =
        "id,name,user,model,global_batch,iterations,submit_time,"
        "deadline,kind,requested_gpus\n";
    const TopologySpec topo = TopologySpec::testbed_32();
    // Non-numeric iterations on data row 1 = file line 2.
    EXPECT_DEATH(
        parse_trace_csv(header +
                            "0,j0,u,ResNet50,128,lots,0,100,slo,4\n",
                        topo),
        "trace line 2.*iterations");
    // Bad row lands on line 3 even when line 2 is fine.
    EXPECT_DEATH(
        parse_trace_csv(header +
                            "0,j0,u,ResNet50,128,10,0,100,slo,4\n"
                            "1,j1,u,ResNet50,128,10,0,1e,slo,4\n",
                        topo),
        "trace line 3.*deadline");
    // Wrong field count.
    EXPECT_DEATH(parse_trace_csv(header + "0,j0,u,ResNet50,128,10\n",
                                 topo),
                 "trace line 2.*expected 10 fields, got 6");
    // Unknown job kind.
    EXPECT_DEATH(
        parse_trace_csv(header +
                            "0,j0,u,ResNet50,128,10,0,100,urgent,4\n",
                        topo),
        "trace line 2.*unknown job kind 'urgent'");
    // Non-positive GPU request.
    EXPECT_DEATH(
        parse_trace_csv(header +
                            "0,j0,u,ResNet50,128,10,0,100,slo,0\n",
                        topo),
        "trace line 2.*non-positive GPU request");
}

TEST(Trace, IterationsForDurationInvertsStandalone)
{
    Topology topo(TopologySpec::testbed_128());
    PerfModel perf(&topo);
    JobSpec job;
    job.model = DnnModel::kResNet50;
    job.global_batch = 128;
    job.requested_gpus = 4;
    job.iterations = iterations_for_duration(perf, job, 3600.0);
    EXPECT_NEAR(standalone_duration(perf, job), 3600.0, 1.0);
}

}  // namespace
}  // namespace ef

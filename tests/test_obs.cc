/**
 * @file
 * Tests for the ef::obs subsystem: counters, gauges, histogram bucket
 * edges, the ring-buffer sink, scope nesting, and — the load-bearing
 * property — that installing a recorder leaves the simulation
 * byte-identical (same state hash, same summary).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

TEST(Metrics, CounterSaturatesInsteadOfWrapping)
{
    obs::Counter c;
    c.inc(std::numeric_limits<std::uint64_t>::max() - 1);
    c.inc(5);
    EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
    c.inc();
    EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds)
{
    obs::Histogram h({1.0, 2.0, 4.0});
    ASSERT_EQ(h.buckets().size(), 4u);  // 3 edges + overflow
    h.observe(0.5);   // <= 1.0 -> bucket 0
    h.observe(1.0);   // boundary lands in bucket 0 (inclusive)
    h.observe(1.001); // bucket 1
    h.observe(2.0);   // bucket 1
    h.observe(4.0);   // bucket 2
    h.observe(4.5);   // overflow
    h.observe(100.0); // overflow
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 2u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_NEAR(h.mean(), (0.5 + 1.0 + 1.001 + 2.0 + 4.0 + 4.5 + 100.0) / 7.0,
                1e-12);
}

TEST(Metrics, RegistryDumpIsSortedAndStable)
{
    obs::MetricsRegistry reg;
    reg.counter("b.counter").inc(2);
    reg.counter("a.counter").inc(1);
    reg.gauge("c.gauge").set(1.5);
    reg.histogram("d.hist", {1.0, 2.0}).observe(1.5);
    std::string dump = reg.text_dump();
    EXPECT_NE(dump.find("a.counter=1\n"), std::string::npos);
    EXPECT_NE(dump.find("b.counter=2\n"), std::string::npos);
    EXPECT_LT(dump.find("a.counter="), dump.find("b.counter="));
    EXPECT_NE(dump.find("d.hist.count=1"), std::string::npos);
    EXPECT_NE(dump.find("d.hist.le.inf=0"), std::string::npos);
    // Two dumps of the same registry are byte-identical.
    EXPECT_EQ(dump, reg.text_dump());
    // CSV dump covers the same metric names.
    std::string csv = reg.csv_dump();
    EXPECT_NE(csv.find("a.counter"), std::string::npos);
    EXPECT_NE(csv.find("d.hist"), std::string::npos);
}

TEST(Metrics, HistogramEdgesApplyOnFirstCreationOnly)
{
    obs::MetricsRegistry reg;
    obs::Histogram &h1 = reg.histogram("h", {1.0, 2.0});
    obs::Histogram &h2 = reg.histogram("h", {9.0});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.edges().size(), 2u);
}

TEST(Metrics, HelpersAreNoOpsWhenDisabled)
{
    ASSERT_EQ(obs::metrics(), nullptr);
    obs::count("nobody.listens");
    obs::gauge_set("nobody.listens", 1.0);
    obs::observe("nobody.listens", {1.0}, 0.5);
    EXPECT_EQ(obs::metrics(), nullptr);
}

TEST(Metrics, ScopesNestAndRestore)
{
    obs::MetricsRegistry outer, inner;
    ASSERT_EQ(obs::metrics(), nullptr);
    {
        obs::MetricsScope a(&outer);
        EXPECT_EQ(obs::metrics(), &outer);
        obs::count("k");
        {
            obs::MetricsScope b(&inner);
            EXPECT_EQ(obs::metrics(), &inner);
            obs::count("k", 10);
        }
        EXPECT_EQ(obs::metrics(), &outer);
        obs::count("k");
    }
    EXPECT_EQ(obs::metrics(), nullptr);
    EXPECT_EQ(outer.counter("k").value(), 2u);
    EXPECT_EQ(inner.counter("k").value(), 10u);
}

TEST(Trace, RingBufferKeepsMostRecentAndCountsDrops)
{
    obs::RingBufferSink ring(3);
    for (int i = 0; i < 5; ++i) {
        obs::TraceEvent e;
        e.time = static_cast<Time>(i);
        e.a = i;
        ring.record(e);
    }
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.dropped(), 2u);
    std::vector<obs::TraceEvent> events = ring.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].a, 2);
    EXPECT_EQ(events[1].a, 3);
    EXPECT_EQ(events[2].a, 4);
}

TEST(Trace, EmitIsNoOpWithoutSinkAndScopesNest)
{
    auto make = [](Time t, obs::EventKind k) {
        obs::TraceEvent e;
        e.time = t;
        e.kind = k;
        e.job = 1;
        return e;
    };
    ASSERT_FALSE(obs::tracing());
    obs::emit(make(0.0, obs::EventKind::kJobSubmit));  // must not crash
    obs::RingBufferSink outer(8), inner(8);
    {
        obs::TraceScope a(&outer);
        EXPECT_TRUE(obs::tracing());
        obs::emit(make(1.0, obs::EventKind::kJobSubmit));
        {
            obs::TraceScope b(&inner);
            obs::emit(make(2.0, obs::EventKind::kJobAdmit));
        }
        obs::emit(make(3.0, obs::EventKind::kJobFinish));
    }
    EXPECT_FALSE(obs::tracing());
    EXPECT_EQ(outer.size(), 2u);
    EXPECT_EQ(inner.size(), 1u);
}

TEST(Trace, EventKindNamesAreStable)
{
    EXPECT_STREQ(obs::event_kind_name(obs::EventKind::kJobSubmit),
                 "job_submit");
    EXPECT_STREQ(obs::event_kind_name(obs::EventKind::kReplanBegin),
                 "replan_begin");
    EXPECT_STREQ(obs::event_kind_name(obs::EventKind::kRpcRetry),
                 "rpc_retry");
}

/** The regression the whole design hangs on: recording must not
 *  perturb the simulation. */
TEST(Obs, SimulationIsByteIdenticalWithRecorderInstalled)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 15;
    Trace trace = TraceGenerator::generate(gen);

    auto run = [&](bool instrumented) {
        auto scheduler = make_scheduler("elasticflow");
        SimConfig config;
        config.failures.enabled = true;
        config.failures.server_mtbf_s = 2.0 * kDay;
        Simulator sim(trace, scheduler.get(), config);
        if (!instrumented)
            return sim.run();
        obs::RingBufferSink ring(1 << 16);
        obs::MetricsRegistry registry;
        obs::TraceScope ts(&ring);
        obs::MetricsScope ms(&registry);
        RunResult result = sim.run();
        EXPECT_GT(ring.size(), 0u);
        EXPECT_FALSE(registry.empty());
        return result;
    };

    RunResult plain = run(false);
    RunResult traced = run(true);
    EXPECT_EQ(plain.state_hash, traced.state_hash);
    EXPECT_EQ(plain.state_hash_samples, traced.state_hash_samples);
    EXPECT_EQ(summarize(plain), summarize(traced));
}

}  // namespace
}  // namespace ef

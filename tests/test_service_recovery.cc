/**
 * @file
 * Serve-mode crash recovery under pressure (DESIGN.md §12): a Service
 * killed with a non-empty admission queue and a mid-bucket governor
 * must recover to a state whose verdict stream is exactly-once — a
 * verdict whose journal record reached disk before the crash is never
 * re-delivered by the replay — while the starvation-horizon bound and
 * the round-hash chain both survive the crash. Also covers the
 * simulator's streaming-admission (service) mode through the same
 * crash-at-round harness.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "recover/log.h"
#include "sched/scheduler.h"
#include "serve/service.h"
#include "serve/stream.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

std::string
fresh_dir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::remove(recover::DurableLog::snapshot_path(dir).c_str());
    std::remove(recover::DurableLog::journal_path(dir).c_str());
    return dir;
}

serve::ServiceConfig
pressured_config()
{
    serve::ServiceConfig config;
    config.total_gpus = 16;
    config.queue_watermark = 8;
    // A slow bucket, so submissions pile up between rounds and the
    // governor is mid-refill at any interesting crash point.
    config.governor.rounds_per_second = 0.01;
    config.governor.burst = 1.0;
    config.governor.starvation_horizon_s = 300.0;
    return config;
}

std::vector<serve::Submission>
burst_stream(int n, std::uint64_t seed = 7)
{
    serve::StreamConfig stream_config;
    stream_config.topology = TopologySpec::with_total_gpus(16);
    stream_config.arrival_rate = 0.05;
    stream_config.seed = seed;
    serve::SyntheticStream stream(stream_config);
    std::vector<serve::Submission> subs;
    subs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        subs.push_back(stream.next());
    return subs;
}

TEST(ServiceRecovery, ExactlyOnceVerdictsUnderPressure)
{
    const int kSubs = 40;
    const int kCrashAfter = 17;  // crash mid-stream, queue non-empty
    const std::vector<serve::Submission> subs = burst_stream(kSubs);

    // Uninterrupted reference run.
    std::vector<serve::Decision> want;
    serve::Service reference(pressured_config());
    reference.set_decision_callback(
        [&](const serve::Decision &d) { want.push_back(d); });
    for (const serve::Submission &sub : subs)
        reference.submit(sub);
    reference.finish();
    const std::uint64_t want_hash = reference.state_hash();

    // Durable run killed after kCrashAfter submissions.
    const std::string dir = fresh_dir("ef_service_crash");
    std::vector<serve::Decision> before;
    std::size_t queue_at_crash = 0;
    {
        serve::Service service(pressured_config());
        ASSERT_TRUE(service
                        .bind_durability(dir, /*snapshot_every=*/4,
                                         /*recover=*/false)
                        .ok());
        service.set_decision_callback(
            [&](const serve::Decision &d) { before.push_back(d); });
        for (int i = 0; i < kCrashAfter; ++i)
            service.submit(subs[static_cast<std::size_t>(i)]);
        queue_at_crash = service.queue_depth();
        // The Service object dies here with its queue still loaded —
        // the on-disk journal is all that survives.
    }
    ASSERT_GT(queue_at_crash, 0u) << "crash point lost its pressure";

    // Recover into a fresh Service and finish the stream.
    std::vector<serve::Decision> after;
    serve::Service recovered(pressured_config());
    recovered.set_decision_callback(
        [&](const serve::Decision &d) { after.push_back(d); });
    ASSERT_TRUE(recovered
                    .bind_durability(dir, /*snapshot_every=*/4,
                                     /*recover=*/true)
                    .ok());
    EXPECT_EQ(recovered.queue_depth(), queue_at_crash);
    for (int i = kCrashAfter; i < kSubs; ++i)
        recovered.submit(subs[static_cast<std::size_t>(i)]);
    recovered.finish();

    // Exactly-once: pre-crash verdicts and post-recovery verdicts
    // concatenate to precisely the uninterrupted stream — nothing
    // re-issued, nothing lost.
    ASSERT_EQ(before.size() + after.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        const serve::Decision &got = i < before.size()
                                         ? before[i]
                                         : after[i - before.size()];
        EXPECT_EQ(got.id, want[i].id) << "verdict " << i;
        EXPECT_EQ(got.verdict, want[i].verdict) << "verdict " << i;
        EXPECT_EQ(got.decide_time, want[i].decide_time)
            << "verdict " << i;
    }
    EXPECT_EQ(recovered.state_hash(), want_hash);
    EXPECT_EQ(recovered.stats().submitted,
              reference.stats().submitted);
    EXPECT_EQ(recovered.stats().rounds, reference.stats().rounds);

    // Starvation bound survives the crash: no queued submission
    // waited past the horizon for its verdict.
    const Time horizon =
        pressured_config().governor.starvation_horizon_s;
    for (std::size_t i = 0; i < after.size(); ++i) {
        EXPECT_LE(after[i].decide_time - after[i].submit_time,
                  horizon + 1e-9)
            << "verdict " << i;
    }
}

TEST(ServiceRecovery, CrashAtEverySubmissionPrefix)
{
    const int kSubs = 24;
    const std::vector<serve::Submission> subs = burst_stream(kSubs, 11);

    serve::Service reference(pressured_config());
    for (const serve::Submission &sub : subs)
        reference.submit(sub);
    reference.finish();

    for (int crash = 1; crash < kSubs; crash += 3) {
        const std::string dir =
            fresh_dir("ef_service_prefix_" + std::to_string(crash));
        {
            serve::Service service(pressured_config());
            ASSERT_TRUE(
                service.bind_durability(dir, 4, false).ok());
            for (int i = 0; i < crash; ++i)
                service.submit(subs[static_cast<std::size_t>(i)]);
        }
        serve::Service recovered(pressured_config());
        ASSERT_TRUE(recovered.bind_durability(dir, 4, true).ok());
        for (int i = crash; i < kSubs; ++i)
            recovered.submit(subs[static_cast<std::size_t>(i)]);
        recovered.finish();
        EXPECT_EQ(recovered.state_hash(), reference.state_hash())
            << "crash after submission " << crash;
    }
}

TEST(ServiceRecovery, RecoveryIsReadOnlyUntilRebind)
{
    // Crashing again mid-recovery must be harmless: DurableLog::load
    // never mutates the directory, so a second recovery sees the same
    // bytes.
    const std::vector<serve::Submission> subs = burst_stream(20, 3);
    const std::string dir = fresh_dir("ef_service_recrash");
    {
        serve::Service service(pressured_config());
        ASSERT_TRUE(service.bind_durability(dir, 4, false).ok());
        for (int i = 0; i < 12; ++i)
            service.submit(subs[static_cast<std::size_t>(i)]);
    }
    serve::Service first(pressured_config());
    ASSERT_TRUE(first.bind_durability(dir, 4, true).ok());
    const std::uint64_t hash_first = first.state_hash();

    // "first" dies right after recovery (before any new input); its
    // rebind rewrote the snapshot, but the recovered state is the
    // same, so a second recovery lands in the same place.
    serve::Service second(pressured_config());
    ASSERT_TRUE(second.bind_durability(dir, 4, true).ok());
    EXPECT_EQ(second.state_hash(), hash_first);
    EXPECT_EQ(second.queue_depth(), first.queue_depth());
}

TEST(ServiceRecovery, MismatchedConfigIsTypedError)
{
    const std::vector<serve::Submission> subs = burst_stream(8, 5);
    const std::string dir = fresh_dir("ef_service_mismatch");
    {
        serve::Service service(pressured_config());
        ASSERT_TRUE(service.bind_durability(dir, 4, false).ok());
        for (const serve::Submission &sub : subs)
            service.submit(sub);
    }
    serve::ServiceConfig other = pressured_config();
    other.total_gpus = 32;
    serve::Service recovered(other);
    recover::Status st = recovered.bind_durability(dir, 4, true);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code, recover::ErrorCode::kStateMismatch);
}

TEST(ServiceRecovery, SimulatorServiceModeCrashRecovers)
{
    // The simulator's streaming-admission mode carries the admission
    // queue and governor bucket inside the simulator snapshot; a
    // sched-crash mid-run must recover bit-identically there too.
    TraceGenConfig gen = testbed_small_preset();
    gen.seed = 13;
    const Trace trace = TraceGenerator::generate(gen);

    SimConfig base;
    base.service.enabled = true;
    base.service.queue_watermark = 4;
    base.service.governor.rounds_per_second = 0.001;
    base.service.governor.burst = 1.0;
    base.service.governor.starvation_horizon_s = 2.0 * kHour;
    base.faults.script.push_back([] {
        FaultEvent ev;
        ev.time = 0.0;
        ev.type = FaultType::kSchedCrash;
        ev.target = 1;
        return ev;
    }());

    RunResult baseline;
    {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), base);
        baseline = sim.run();
        ASSERT_FALSE(sim.crashed());  // no journal, crash can't fire
    }
    ASSERT_GT(baseline.state_hash_samples, 2u);

    for (std::uint64_t n = 1; n <= baseline.state_hash_samples;
         n += 2) {
        const std::string dir =
            fresh_dir("ef_service_sim_" + std::to_string(n));
        SimConfig config = base;
        config.faults.script.clear();
        config.faults.script.push_back([n] {
            FaultEvent ev;
            ev.time = 0.0;
            ev.type = FaultType::kSchedCrash;
            ev.target = static_cast<std::int64_t>(n);
            return ev;
        }());
        config.durability.journal_dir = dir;
        {
            auto scheduler = make_scheduler("elasticflow");
            Simulator sim(trace, scheduler.get(), config);
            sim.run();
            ASSERT_TRUE(sim.crashed()) << "round " << n;
        }
        config.durability.recover = true;
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        ASSERT_TRUE(sim.prepare_durability().ok());
        RunResult recovered = sim.run();
        EXPECT_EQ(recovered.state_hash, baseline.state_hash)
            << "round " << n;
        EXPECT_EQ(recovered.state_hash_samples,
                  baseline.state_hash_samples)
            << "round " << n;
        EXPECT_EQ(recovered.shed_queue_full, baseline.shed_queue_full)
            << "round " << n;
    }
}

}  // namespace
}  // namespace ef

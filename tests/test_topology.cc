/**
 * @file
 * Tests for the cluster topology model: id arithmetic, span
 * classification, and the hierarchical bandwidth model.
 */
#include <gtest/gtest.h>

#include "cluster/topology.h"

namespace ef {
namespace {

TEST(Topology, Testbed128Shape)
{
    Topology topo(TopologySpec::testbed_128());
    EXPECT_EQ(topo.total_gpus(), 128);
    EXPECT_EQ(topo.num_servers(), 16);
    EXPECT_EQ(topo.num_racks(), 2);
    EXPECT_EQ(topo.gpus_per_server(), 8);
}

TEST(Topology, IdArithmetic)
{
    Topology topo(TopologySpec::testbed_128());
    EXPECT_EQ(topo.server_of(0), 0);
    EXPECT_EQ(topo.server_of(7), 0);
    EXPECT_EQ(topo.server_of(8), 1);
    EXPECT_EQ(topo.server_of(127), 15);
    EXPECT_EQ(topo.rack_of(0), 0);
    EXPECT_EQ(topo.rack_of(63), 0);
    EXPECT_EQ(topo.rack_of(64), 1);
    EXPECT_EQ(topo.first_gpu_of_server(3), 24);
    EXPECT_EQ(topo.rack_of_server(7), 0);
    EXPECT_EQ(topo.rack_of_server(8), 1);
}

TEST(Topology, SpanAndCommLevel)
{
    Topology topo(TopologySpec::testbed_128());
    EXPECT_EQ(topo.comm_level({5}), CommLevel::kSingleGpu);
    EXPECT_EQ(topo.comm_level({0, 1, 2}), CommLevel::kIntraServer);
    EXPECT_EQ(topo.comm_level({0, 8}), CommLevel::kIntraRack);
    EXPECT_EQ(topo.comm_level({0, 64}), CommLevel::kCrossRack);
    EXPECT_EQ(topo.server_span({0, 1, 8, 16}), 3);
    EXPECT_EQ(topo.rack_span({0, 1, 8, 16}), 1);
    EXPECT_EQ(topo.rack_span({0, 127}), 2);
}

TEST(Topology, CompactCommLevel)
{
    Topology topo(TopologySpec::testbed_128());
    EXPECT_EQ(topo.compact_comm_level(1), CommLevel::kSingleGpu);
    EXPECT_EQ(topo.compact_comm_level(8), CommLevel::kIntraServer);
    EXPECT_EQ(topo.compact_comm_level(16), CommLevel::kIntraRack);
    EXPECT_EQ(topo.compact_comm_level(64), CommLevel::kIntraRack);
    EXPECT_EQ(topo.compact_comm_level(128), CommLevel::kCrossRack);
}

TEST(Topology, BandwidthHierarchy)
{
    Topology topo(TopologySpec::testbed_128());
    double intra = topo.bandwidth_gbps(CommLevel::kIntraServer);
    double rack_full = topo.bandwidth_gbps(CommLevel::kIntraRack, 8.0);
    double rack_single = topo.bandwidth_gbps(CommLevel::kIntraRack, 1.0);
    double cross = topo.bandwidth_gbps(CommLevel::kCrossRack, 8.0);
    EXPECT_GT(intra, rack_full);
    EXPECT_GT(rack_full, rack_single);
    EXPECT_GT(rack_full, cross);
    // A job driving more GPUs per server gets proportionally more NICs.
    EXPECT_NEAR(rack_full / rack_single, 8.0, 1e-9);
}

TEST(Topology, WithTotalGpusCoversRequest)
{
    for (int g : {1, 7, 8, 64, 100, 128, 500}) {
        Topology topo(TopologySpec::with_total_gpus(g));
        EXPECT_GE(topo.total_gpus(), g) << g;
        EXPECT_LE(topo.gpus_per_server(), 8) << g;
    }
}

TEST(Topology, CommLevelNames)
{
    EXPECT_EQ(comm_level_name(CommLevel::kSingleGpu), "single-gpu");
    EXPECT_EQ(comm_level_name(CommLevel::kCrossRack), "cross-rack");
}

TEST(Topology, InvalidSpecDies)
{
    TopologySpec spec;
    spec.num_racks = 0;
    EXPECT_DEATH(Topology topo(spec), "invalid topology");
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the minimal JSON writer and validator in common/json.h:
 * escaping, deterministic double formatting, container bookkeeping,
 * and the validator's accept/reject behavior.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.h"

namespace ef {
namespace {

TEST(Json, EscapesControlAndSpecialCharacters)
{
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("line\nbreak\ttab"),
              "line\\nbreak\\ttab");
    EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, WriterBuildsObjectsAndArrays)
{
    JsonWriter w;
    w.begin_object();
    w.kv("name", "ef");
    w.kv("count", std::int64_t{42});
    w.kv("ok", true);
    w.key("list").begin_array();
    w.value(1).value(2).value(3);
    w.end_array();
    w.key("nothing").null();
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\"name\":\"ef\",\"count\":42,\"ok\":true,"
              "\"list\":[1,2,3],\"nothing\":null}");
}

TEST(Json, DoubleFormattingIsDeterministic)
{
    auto render = [](double v) {
        JsonWriter w;
        w.begin_array().value(v).end_array();
        return w.str();
    };
    EXPECT_EQ(render(1.5), "[1.5]");
    EXPECT_EQ(render(0.0), "[0.0]");
    EXPECT_EQ(render(-2.25), "[-2.25]");
    EXPECT_EQ(render(3.0), "[3.0]");
    // Non-finite doubles degrade to null (strict JSON has no inf/nan).
    EXPECT_EQ(render(std::numeric_limits<double>::infinity()),
              "[null]");
    EXPECT_EQ(render(std::nan("")), "[null]");
}

TEST(Json, ValidatorAcceptsWriterOutput)
{
    JsonWriter w;
    w.begin_object();
    w.key("nested").begin_object().kv("k", 1.25).end_object();
    w.key("arr").begin_array().value("x").value(false).end_array();
    w.end_object();
    std::string error;
    EXPECT_TRUE(json_validate(w.str(), &error)) << error;
}

TEST(Json, ValidatorRejectsMalformedDocuments)
{
    EXPECT_FALSE(json_validate(""));
    EXPECT_FALSE(json_validate("{"));
    EXPECT_FALSE(json_validate("{\"a\":}"));
    EXPECT_FALSE(json_validate("[1,]"));
    EXPECT_FALSE(json_validate("{\"a\":1} trailing"));
    EXPECT_FALSE(json_validate("{'a':1}"));
    EXPECT_FALSE(json_validate("[01]"));
    std::string error;
    EXPECT_FALSE(json_validate("[1, 2", &error));
    EXPECT_FALSE(error.empty());
}

TEST(Json, ValidatorAcceptsAssortedValidDocuments)
{
    EXPECT_TRUE(json_validate("null"));
    EXPECT_TRUE(json_validate("  [ ]  "));
    EXPECT_TRUE(json_validate("-1.5e-3"));
    EXPECT_TRUE(json_validate("\"esc \\u00e9 \\n\""));
    EXPECT_TRUE(json_validate("{\"a\":[{\"b\":[true,null]}]}"));
}

}  // namespace
}  // namespace ef

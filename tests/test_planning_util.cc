/**
 * @file
 * Tests for the shared planning helpers: margins, fixed-size planning
 * jobs (Chronus semantics), and the EDF-greedy admission predicate.
 */
#include <gtest/gtest.h>

#include "sched/planning_util.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

/** Minimal ClusterView over a fixed job list (no simulator). */
class FakeView : public ClusterView
{
  public:
    FakeView(TopologySpec spec, std::vector<JobSpec> jobs)
        : topology_(spec), perf_(&topology_), jobs_(std::move(jobs))
    {
        for (const JobSpec &job : jobs_) {
            curves_.emplace(job.id, curve_for(job));
            remaining_.emplace(job.id,
                               static_cast<double>(job.iterations));
        }
    }

    GpuCount total_gpus() const override
    {
        return topology_.total_gpus();
    }
    Time now() const override { return now_; }
    std::vector<JobId>
    active_jobs() const override
    {
        std::vector<JobId> ids;
        for (const JobSpec &job : jobs_)
            ids.push_back(job.id);
        return ids;
    }
    const JobSpec &
    spec(JobId job) const override
    {
        for (const JobSpec &s : jobs_) {
            if (s.id == job)
                return s;
        }
        EF_CHECK(false);
        return jobs_.front();
    }
    const ScalingCurve &
    curve(JobId job) const override
    {
        return curves_.at(job);
    }
    ScalingCurve
    curve_for(const JobSpec &spec) const override
    {
        return ScalingCurve::from_pow2_table(
            perf_.compact_pow2_throughputs(spec.model,
                                           spec.global_batch,
                                           topology_.total_gpus()));
    }
    double
    remaining_iterations(JobId job) const override
    {
        return remaining_.at(job);
    }
    GpuCount current_gpus(JobId) const override { return 0; }
    double attained_gpu_seconds(JobId) const override { return 0.0; }

    void set_remaining(JobId job, double r) { remaining_[job] = r; }
    void set_now(Time t) { now_ = t; }

  private:
    Topology topology_;
    PerfModel perf_;
    std::vector<JobSpec> jobs_;
    std::map<JobId, ScalingCurve> curves_;
    std::map<JobId, double> remaining_;
    Time now_ = 0.0;
};

JobSpec
spec_of(JobId id, DnnModel model, int batch, GpuCount requested,
        std::int64_t iterations, Time deadline)
{
    JobSpec job;
    job.id = id;
    job.model = model;
    job.global_batch = batch;
    job.requested_gpus = requested;
    job.iterations = iterations;
    job.deadline = deadline;
    return job;
}

TEST(PlanningMargin, InflateCombinesRelativeAndAbsolute)
{
    ScalingCurve curve = ScalingCurve::from_pow2_table({2.0, 3.0});
    PlanningMargin margin{0.10, 50.0};
    // 10% of 1000 plus 50 s at the max-useful rate (3 iters/s).
    EXPECT_DOUBLE_EQ(margin.inflate(1000.0, curve),
                     1100.0 + 150.0);
    PlanningMargin none{};
    EXPECT_DOUBLE_EQ(none.inflate(1000.0, curve), 1000.0);
}

TEST(PlanningUtil, ToPlanningJobReflectsViewState)
{
    FakeView view(TopologySpec::testbed_32(),
                  {spec_of(7, DnnModel::kResNet50, 128, 4, 10000,
                           2.0 * kHour)});
    view.set_remaining(7, 4000.0);
    PlanningJob job = to_planning_job(view, 7, PlanningMargin{});
    EXPECT_EQ(job.id, 7);
    EXPECT_DOUBLE_EQ(job.remaining_iterations, 4000.0);
    EXPECT_DOUBLE_EQ(job.deadline, 2.0 * kHour);
    EXPECT_FALSE(job.soft);
}

TEST(PlanningUtil, FixedPlanningJobPinsRequestedSize)
{
    FakeView view(TopologySpec::testbed_32(),
                  {spec_of(1, DnnModel::kResNet50, 128, 4, 10000,
                           2.0 * kHour)});
    PlanningJob job = to_fixed_planning_job(view, 1, PlanningMargin{});
    EXPECT_EQ(job.curve.min_workers(), 4);
    EXPECT_EQ(job.curve.max_useful(), 4);
}

TEST(EdfAdmission, AcceptsWhatGreedyEdfCanFinish)
{
    FakeView view(TopologySpec::testbed_32(), {});
    PlannerConfig config =
        planner_config_for(view, 300.0, FillDirection::kEarliest);
    // A lone job with a loose deadline is trivially EDF-feasible.
    JobSpec ok = spec_of(1, DnnModel::kResNet50, 128, 4, 20000,
                         4.0 * kHour);
    EXPECT_TRUE(edf_admission_feasible(view, config, ok));
    // A deadline in the past is not.
    JobSpec late = ok;
    late.deadline = -10.0;
    EXPECT_FALSE(edf_admission_feasible(view, config, late));
}

TEST(EdfAdmission, AccountsForEarlierDeadlineHogs)
{
    // One running job with an earlier deadline consumes the whole
    // cluster under EDF greed; the candidate starves and is rejected,
    // even though an elastic planner could interleave both.
    Topology topo(TopologySpec::testbed_32());
    PerfModel perf(&topo);
    double t32 =
        perf.compact_throughput(DnnModel::kVgg16, 256, 32);
    auto hog_iters =
        static_cast<std::int64_t>(t32 * 2.0 * kHour * 0.95);
    FakeView view(TopologySpec::testbed_32(),
                  {spec_of(1, DnnModel::kVgg16, 256, 8, hog_iters,
                           2.0 * kHour)});
    PlannerConfig config =
        planner_config_for(view, 300.0, FillDirection::kEarliest);
    // Candidate has a later deadline but needs most of the first two
    // hours too.
    double t8 = perf.compact_throughput(DnnModel::kVgg16, 256, 8);
    JobSpec candidate =
        spec_of(2, DnnModel::kVgg16, 256, 8,
                static_cast<std::int64_t>(t8 * 2.0 * kHour),
                2.2 * kHour);
    EXPECT_FALSE(edf_admission_feasible(view, config, candidate));
    // With a much later deadline it fits after the hog.
    candidate.deadline = 8.0 * kHour;
    EXPECT_TRUE(edf_admission_feasible(view, config, candidate));
}

TEST(ElasticAllocate, SuspendedWhenNothingFits)
{
    // More SLO demand than the cluster: elastic_allocate must still
    // return a capacity-respecting decision.
    FakeView view(
        TopologySpec::testbed_32(),
        {spec_of(1, DnnModel::kVgg16, 256, 32, 2000000, kHour),
         spec_of(2, DnnModel::kVgg16, 256, 32, 2000000, kHour)});
    PlannerConfig config =
        planner_config_for(view, 300.0, FillDirection::kEarliest);
    int failures = 0;
    SchedulerDecision decision = elastic_allocate(
        view, config, PlanningMargin{}, false, &failures);
    GpuCount total = 0;
    for (const auto &[id, g] : decision.gpus)
        total += g;
    EXPECT_LE(total, 32);
    EXPECT_GT(failures, 0);  // both deadlines are hopeless
}

TEST(RefreshMinShares, RelaxedReservationStaysInsideRelaxedHorizon)
{
    // Regression: the relaxation loop grows `available` as the
    // deadline extends, and the resulting reservation must never
    // reach past the horizon of the *relaxed* deadline — an earlier
    // fill attempt's bookkeeping must not leak into the retry.
    PlannerConfig config;
    config.total_gpus = 8;
    config.slot_seconds = 300.0;
    const Time now = 50.0;

    ScalingCurve curve = ScalingCurve::from_pow2_table({1.0, 1.8, 3.0});
    std::vector<PlanningJob> slo;
    // An infeasible job: needs far more GPU time than its deadline
    // allows even at full tilt, so relaxation must extend it.
    PlanningJob hopeless;
    hopeless.id = 1;
    hopeless.curve = curve;
    hopeless.deadline = now + 600.0;  // two slots
    hopeless.remaining_iterations = 3.0 * 20 * 300.0;  // ~20 full slots
    slo.push_back(hopeless);
    // A feasible companion filling in around it.
    PlanningJob easy;
    easy.id = 2;
    easy.curve = curve;
    easy.deadline = now + 4 * 300.0;
    easy.remaining_iterations = 1.0 * 300.0;
    slo.push_back(easy);

    int failures = 0;
    MinShareRefresh refresh =
        refresh_min_shares(config, now, slo, &failures);
    EXPECT_EQ(failures, 1);
    ASSERT_EQ(refresh.slo.size(), 2u);
    EXPECT_TRUE(refresh.parked.empty());
    for (const PlanningJob &job : refresh.slo) {
        PlanHorizon d = plan_horizon(now, job.deadline,
                                     config.slot_seconds,
                                     config.max_slots);
        const SlotPlan &share = refresh.min_shares.at(job.id);
        EXPECT_LE(share.horizon(), d.slots)
            << "job " << job.id << " reserves past its relaxed horizon";
    }
    // The hopeless job's deadline was actually relaxed, not dropped.
    for (const PlanningJob &job : refresh.slo) {
        if (job.id == 1) {
            EXPECT_GT(job.deadline, now + 600.0);
        }
    }
}

TEST(PlanningRound, CachesUntilViewStateChanges)
{
    JobSpec be = spec_of(2, DnnModel::kVgg16, 256, 8, 50000,
                         kTimeInfinity);
    be.kind = JobKind::kBestEffort;
    FakeView view(
        TopologySpec::testbed_32(),
        {spec_of(1, DnnModel::kResNet50, 128, 4, 40000, 4.0 * kHour),
         be});
    PlanningMargin margin{0.05, 60.0};
    PlanningRound round;
    const PlanningRound::Jobs &first = round.jobs(view, margin, false);
    ASSERT_EQ(first.slo.size(), 1u);
    ASSERT_EQ(first.best_effort.size(), 1u);
    const PlanningJob *slo_addr = first.slo.data();

    // Same snapshot: served from cache (vector storage unchanged).
    const PlanningRound::Jobs &again = round.jobs(view, margin, false);
    EXPECT_EQ(again.slo.data(), slo_addr);

    // Progress moves remaining work: the round must rebuild.
    view.set_remaining(1, 30000.0);
    const PlanningRound::Jobs &rebuilt = round.jobs(view, margin, false);
    ASSERT_EQ(rebuilt.slo.size(), 1u);
    EXPECT_DOUBLE_EQ(rebuilt.slo[0].remaining_iterations,
                     margin.inflate(30000.0, rebuilt.slo[0].curve));

    // A different margin is a different snapshot too.
    const PlanningRound::Jobs &other =
        round.jobs(view, PlanningMargin{}, false);
    EXPECT_DOUBLE_EQ(other.slo[0].remaining_iterations, 30000.0);
}

TEST(PlanningRound, SharedRoundMatchesUncachedPlanning)
{
    FakeView view(
        TopologySpec::testbed_32(),
        {spec_of(1, DnnModel::kResNet50, 128, 4, 40000, 4.0 * kHour),
         spec_of(2, DnnModel::kVgg16, 256, 8, 60000, 6.0 * kHour)});
    PlannerConfig config =
        planner_config_for(view, 300.0, FillDirection::kEarliest);
    PlanningMargin margin{0.05, 60.0};
    JobSpec candidate = spec_of(3, DnnModel::kBert, 32, 4, 20000,
                                5.0 * kHour);

    PlanningRound round;
    EXPECT_EQ(
        admission_feasible(view, config, margin, candidate, false),
        admission_feasible(view, config, margin, candidate, false,
                           &round));
    int failures_a = 0;
    int failures_b = 0;
    SchedulerDecision plain = elastic_allocate(
        view, config, margin, false, &failures_a);
    SchedulerDecision cached = elastic_allocate(
        view, config, margin, false, &failures_b, &round);
    EXPECT_EQ(plain.gpus, cached.gpus);
    EXPECT_EQ(failures_a, failures_b);
}

}  // namespace
}  // namespace ef

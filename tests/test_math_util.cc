/**
 * @file
 * Unit and property tests for the numeric helpers, especially the
 * concave-envelope construction the scaling curves rely on.
 */
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace ef {
namespace {

TEST(MathUtil, PowerOfTwoPredicates)
{
    EXPECT_TRUE(is_power_of_two(1));
    EXPECT_TRUE(is_power_of_two(2));
    EXPECT_TRUE(is_power_of_two(64));
    EXPECT_FALSE(is_power_of_two(0));
    EXPECT_FALSE(is_power_of_two(-4));
    EXPECT_FALSE(is_power_of_two(3));
    EXPECT_FALSE(is_power_of_two(96));
}

TEST(MathUtil, FloorPowerOfTwo)
{
    EXPECT_EQ(floor_power_of_two(0), 0);
    EXPECT_EQ(floor_power_of_two(-5), 0);
    EXPECT_EQ(floor_power_of_two(1), 1);
    EXPECT_EQ(floor_power_of_two(2), 2);
    EXPECT_EQ(floor_power_of_two(3), 2);
    EXPECT_EQ(floor_power_of_two(127), 64);
    EXPECT_EQ(floor_power_of_two(128), 128);
}

TEST(MathUtil, CeilPowerOfTwo)
{
    EXPECT_EQ(ceil_power_of_two(0), 1);
    EXPECT_EQ(ceil_power_of_two(1), 1);
    EXPECT_EQ(ceil_power_of_two(3), 4);
    EXPECT_EQ(ceil_power_of_two(8), 8);
    EXPECT_EQ(ceil_power_of_two(9), 16);
}

TEST(MathUtil, Log2Helpers)
{
    EXPECT_EQ(log2_floor(1), 0);
    EXPECT_EQ(log2_floor(7), 2);
    EXPECT_EQ(log2_floor(8), 3);
    EXPECT_EQ(log2_exact(32), 5);
}

TEST(MathUtil, IsConcaveDetectsViolations)
{
    std::vector<double> xs = {1, 2, 4, 8};
    EXPECT_TRUE(is_concave(xs, {1.0, 1.8, 3.0, 4.0}));
    // Slope increases between the last two segments.
    EXPECT_FALSE(is_concave(xs, {1.0, 1.2, 1.4, 4.0}));
    // Short sequences are trivially concave.
    EXPECT_TRUE(is_concave({1, 2}, {5.0, 1.0}));
}

TEST(MathUtil, ConcaveEnvelopeLiftsInteriorDips)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {0.0, 0.1, 2.9, 3.0};
    std::vector<double> env = concave_envelope(xs, ys);
    EXPECT_TRUE(is_concave(xs, env));
    for (std::size_t i = 0; i < ys.size(); ++i)
        EXPECT_GE(env[i], ys[i] - 1e-12);
    // Endpoints are preserved.
    EXPECT_DOUBLE_EQ(env.front(), ys.front());
    EXPECT_DOUBLE_EQ(env.back(), ys.back());
}

/** Property: the envelope is concave, majorizes the input, and is
 *  idempotent — for random inputs. */
TEST(MathUtil, ConcaveEnvelopePropertySweep)
{
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 12));
        std::vector<double> xs, ys;
        double x = 1.0;
        for (std::size_t i = 0; i < n; ++i) {
            xs.push_back(x);
            x += rng.uniform_real(0.5, 3.0);
            ys.push_back(rng.uniform_real(0.0, 10.0));
        }
        std::vector<double> env = concave_envelope(xs, ys);
        EXPECT_TRUE(is_concave(xs, env, 1e-7)) << "trial " << trial;
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_GE(env[i], ys[i] - 1e-9) << "trial " << trial;
        std::vector<double> env2 = concave_envelope(xs, env);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(env2[i], env[i], 1e-7) << "trial " << trial;
    }
}

TEST(MathUtil, AlmostEqualBasics)
{
    EXPECT_TRUE(almost_equal(1.0, 1.0));
    EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(almost_equal(1.0, 1.0 + 1e-6));
    // Relative tolerance scales with magnitude.
    EXPECT_TRUE(almost_equal(1e12, 1e12 + 1.0));
    EXPECT_FALSE(almost_equal(1e12, 1e12 + 1e5));
    // Caller-supplied tolerances are honored.
    EXPECT_TRUE(almost_equal(100.0, 101.0, 0.02));
    EXPECT_FALSE(almost_equal(100.0, 101.0, 0.005));
}

TEST(MathUtil, AlmostEqualNanAndInfinity)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    // NaN equals nothing, itself included (IEEE semantics, and a NaN
    // in a schedule is a bug we must not mask).
    EXPECT_FALSE(almost_equal(nan, nan));
    EXPECT_FALSE(almost_equal(nan, 0.0));
    EXPECT_FALSE(almost_equal(1.0, nan));
    // Equal infinities compare equal (the kTimeInfinity sentinel),
    // opposite or mixed ones do not.
    EXPECT_TRUE(almost_equal(inf, inf));
    EXPECT_TRUE(almost_equal(-inf, -inf));
    EXPECT_FALSE(almost_equal(inf, -inf));
    EXPECT_FALSE(almost_equal(inf, 1e308));
    EXPECT_TRUE(almost_equal(kTimeInfinity, kTimeInfinity));
}

TEST(MathUtil, AlmostEqualNearZeroAndDenormals)
{
    const double denorm = std::numeric_limits<double>::denorm_min();
    // Near zero the relative test collapses; the absolute floor keeps
    // tiny opposite-sign values equal instead of never-equal.
    EXPECT_TRUE(almost_equal(0.0, 0.0));
    EXPECT_TRUE(almost_equal(0.0, -0.0));
    EXPECT_TRUE(almost_equal(denorm, -denorm));
    EXPECT_TRUE(almost_equal(1e-300, -1e-300));
    EXPECT_TRUE(almost_equal(0.0, 1e-13));
    EXPECT_FALSE(almost_equal(0.0, 1e-11));
    // Sign-crossing values above the absolute floor stay distinct.
    EXPECT_FALSE(almost_equal(1e-9, -1e-9));
    EXPECT_FALSE(almost_equal(1.0, -1.0));
}

TEST(MathUtil, IsUnboundedSentinel)
{
    EXPECT_TRUE(is_unbounded(kTimeInfinity));
    EXPECT_TRUE(
        is_unbounded(std::numeric_limits<double>::infinity()));
    EXPECT_FALSE(is_unbounded(0.0));
    EXPECT_FALSE(is_unbounded(1e308));
    EXPECT_FALSE(is_unbounded(-kTimeInfinity));
}

TEST(MathUtil, ClampAndRelativeDifference)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 3.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 3.0), 2.0);
    EXPECT_NEAR(relative_difference(100.0, 103.0), 0.029126, 1e-5);
    EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace ef

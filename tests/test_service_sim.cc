/**
 * @file
 * Simulator service-mode tests: the bounded arrival queue sheds
 * bursts at the watermark, the governor batches queued arrivals into
 * one planning round (one replan per batch), the degrade knob keeps
 * infeasible work as best-effort, and the whole path is
 * deterministic.
 */
#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

Trace
burst_trace(int jobs, Time spacing)
{
    TraceBuilder builder(TopologySpec::with_total_gpus(16), "burst");
    for (int i = 0; i < jobs; ++i) {
        builder.slo(DnnModel::kResNet50, 128, 4,
                    spacing * static_cast<double>(i),
                    /*standalone_s=*/2.0 * kHour, /*tightness=*/1.5);
    }
    return builder.build();
}

RunResult
run_service_sim(const Trace &trace, SimConfig config)
{
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    return sim.run();
}

TEST(ServiceSim, BurstBeyondTheWatermarkIsShed)
{
    SimConfig config;
    config.service.enabled = true;
    config.service.queue_watermark = 4;
    // No tokens to speak of and a distant horizon: the burst piles up
    // against the watermark before the first round runs.
    config.service.governor.rounds_per_second = 1e-6;
    config.service.governor.burst = 1.0;
    config.service.governor.starvation_horizon_s = 600.0;

    RunResult result = run_service_sim(burst_trace(12, 0.0), config);
    EXPECT_GT(result.shed_queue_full, 0);
    EXPECT_LE(result.max_service_queue_depth, 4u);
    // Queue-full sheds are a subset of the dropped jobs.
    EXPECT_GE(result.dropped_count(),
              static_cast<std::size_t>(result.shed_queue_full));
    // Everyone got exactly one verdict.
    EXPECT_EQ(result.admitted_count() + result.dropped_count(),
              result.jobs.size());
}

TEST(ServiceSim, GovernorBatchesArrivalsIntoFewRounds)
{
    SimConfig config;
    config.service.enabled = true;
    config.service.queue_watermark = 64;
    config.service.governor.rounds_per_second = 0.001;  // 1 per 1000 s
    config.service.governor.burst = 1.0;
    config.service.governor.starvation_horizon_s = 4000.0;

    // 10 small arrivals 100 s apart: without batching that is 10
    // admission rounds; the governor must merge them into far fewer.
    // Jobs are sized so every one is feasible even after queueing.
    TraceBuilder builder(TopologySpec::with_total_gpus(16), "drip");
    for (int i = 0; i < 10; ++i) {
        builder.slo(DnnModel::kResNet50, 128, 1,
                    100.0 * static_cast<double>(i),
                    /*standalone_s=*/1.0 * kHour, /*tightness=*/3.0);
    }
    RunResult result = run_service_sim(builder.build(), config);
    EXPECT_GT(result.service_rounds, 0);
    EXPECT_LT(result.service_rounds, 5);
    EXPECT_EQ(result.shed_queue_full, 0);
    EXPECT_EQ(result.admitted_count(), result.jobs.size());
}

TEST(ServiceSim, StarvationHorizonForcesTokenlessRounds)
{
    SimConfig config;
    config.service.enabled = true;
    config.service.governor.rounds_per_second = 1e-6;
    config.service.governor.burst = 1.0;
    config.service.governor.starvation_horizon_s = 300.0;

    RunResult result = run_service_sim(burst_trace(6, 400.0), config);
    EXPECT_GT(result.service_rounds_forced, 0);
    // Every arrival got its verdict despite the empty bucket.
    EXPECT_EQ(result.admitted_count() + result.dropped_count(),
              result.jobs.size());
}

TEST(ServiceSim, DegradeKeepsInfeasibleWorkAsBestEffort)
{
    // A deadline nothing can meet: admission must reject it.
    TraceBuilder builder(TopologySpec::with_total_gpus(16));
    builder.slo(DnnModel::kResNet50, 128, 4, 0.0,
                /*standalone_s=*/2.0 * kHour, /*tightness=*/0.01);
    Trace trace = builder.build();

    SimConfig strict;
    strict.service.enabled = true;
    RunResult rejected = run_service_sim(trace, strict);
    EXPECT_EQ(rejected.admitted_count(), 0u);
    EXPECT_EQ(rejected.service_degraded, 0);

    SimConfig lenient;
    lenient.service.enabled = true;
    lenient.service.degrade_infeasible = true;
    RunResult degraded = run_service_sim(trace, lenient);
    EXPECT_EQ(degraded.admitted_count(), 1u);
    EXPECT_EQ(degraded.service_degraded, 1);
    EXPECT_EQ(degraded.jobs[0].spec.kind, JobKind::kBestEffort);
    EXPECT_EQ(degraded.finished_count(), 1u);
}

TEST(ServiceSim, DoubleRunProducesIdenticalStateHashes)
{
    SimConfig config;
    config.service.enabled = true;
    config.service.queue_watermark = 3;
    config.service.governor.rounds_per_second = 0.01;
    config.service.degrade_infeasible = true;

    Trace trace = burst_trace(15, 1.0);
    RunResult first = run_service_sim(trace, config);
    RunResult second = run_service_sim(trace, config);
    EXPECT_EQ(first.state_hash, second.state_hash);
    EXPECT_EQ(first.state_hash_samples, second.state_hash_samples);
    EXPECT_EQ(first.shed_queue_full, second.shed_queue_full);
    EXPECT_EQ(first.service_rounds, second.service_rounds);
    EXPECT_GT(first.shed_queue_full, 0);
}

TEST(ServiceSim, DisabledServiceModeMatchesClassicAdmission)
{
    Trace trace = burst_trace(5, 50.0);
    SimConfig classic;  // service.enabled defaults to false
    SimConfig explicit_off;
    explicit_off.service.queue_watermark = 2;  // ignored when disabled
    RunResult a = run_service_sim(trace, classic);
    RunResult b = run_service_sim(trace, explicit_off);
    EXPECT_EQ(a.state_hash, b.state_hash);
    EXPECT_EQ(a.service_rounds, 0);
    EXPECT_EQ(b.shed_queue_full, 0);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * ef::serve tests: replan-cadence governor math, backpressure sheds at
 * the queue watermark, starvation bound, watchdog fallback, and the
 * determinism contract (same stream + config twice produces identical
 * decision sequences and state hashes), including under scripted
 * arrival storms and RPC drops.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fault/fault.h"
#include "serve/governor.h"
#include "serve/service.h"
#include "serve/stream.h"

namespace ef {
namespace {

serve::StreamConfig
small_stream(double rate, std::uint64_t seed = 7)
{
    serve::StreamConfig config;
    config.topology = TopologySpec::with_total_gpus(16);
    config.arrival_rate = rate;
    config.seed = seed;
    return config;
}

serve::ServiceConfig
small_service()
{
    serve::ServiceConfig config;
    config.total_gpus = 16;
    return config;
}

TEST(ReplanGovernor, BucketStartsFullAndRefillsAtTheRate)
{
    serve::GovernorConfig config;
    config.rounds_per_second = 0.5;
    config.burst = 2.0;
    serve::ReplanGovernor governor(config);

    EXPECT_DOUBLE_EQ(governor.tokens_at(0.0), 2.0);
    EXPECT_TRUE(governor.try_acquire(0.0));
    EXPECT_TRUE(governor.try_acquire(0.0));
    EXPECT_FALSE(governor.try_acquire(0.0));
    // Empty bucket at rate 0.5: one token is 2 seconds away.
    EXPECT_DOUBLE_EQ(governor.next_eligible(0.0), 2.0);
    EXPECT_FALSE(governor.try_acquire(1.0));
    EXPECT_TRUE(governor.try_acquire(2.0));
    // Refill clamps at the burst size.
    EXPECT_DOUBLE_EQ(governor.tokens_at(1000.0), 2.0);
}

TEST(ReplanGovernor, FingerprintTracksConsumption)
{
    serve::GovernorConfig config;
    serve::ReplanGovernor a(config);
    serve::ReplanGovernor b(config);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    ASSERT_TRUE(a.try_acquire(1.0));
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    ASSERT_TRUE(b.try_acquire(1.0));
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Service, ShedsSynchronouslyAtTheWatermark)
{
    serve::ServiceConfig config = small_service();
    config.queue_watermark = 2;
    // One token total: the first submission's round consumes it, the
    // rest must queue (the horizon is far away).
    config.governor.rounds_per_second = 1e-4;
    config.governor.burst = 1.0;
    config.governor.starvation_horizon_s = 1e6;
    serve::Service service(config);

    serve::SyntheticStream stream(small_stream(0.01));
    std::vector<serve::Decision> decisions;
    service.set_decision_callback(
        [&](const serve::Decision &d) { decisions.push_back(d); });

    for (int i = 0; i < 4; ++i) {
        serve::Submission sub = stream.next();
        sub.spec.submit_time = 0.0;  // all at once: a burst
        service.submit(std::move(sub));
    }
    // Round at t=0 decided #0; #1 and #2 queued; #3 hit the watermark.
    EXPECT_EQ(service.stats().shed_queue_full, 1u);
    EXPECT_EQ(service.queue_depth(), 2u);
    ASSERT_EQ(decisions.size(), 2u);
    EXPECT_EQ(decisions[1].verdict, serve::ShedVerdict::kShedQueueFull);
    EXPECT_EQ(decisions[1].decide_time, 0.0);  // synchronous verdict

    service.finish();
    EXPECT_EQ(service.stats().submitted, 4u);
    EXPECT_EQ(service.stats().max_queue_depth, 2u);
    EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(Service, NoSubmissionWaitsPastTheStarvationHorizon)
{
    serve::ServiceConfig config = small_service();
    config.queue_watermark = 64;
    // Tokens are essentially never refilled: after the initial burst,
    // every round must be forced by the horizon.
    config.governor.rounds_per_second = 1e-6;
    config.governor.burst = 1.0;
    config.governor.starvation_horizon_s = 50.0;
    serve::Service service(config);

    std::vector<serve::Decision> decisions;
    service.set_decision_callback(
        [&](const serve::Decision &d) { decisions.push_back(d); });

    serve::SyntheticStream stream(small_stream(0.2));
    for (int i = 0; i < 200; ++i)
        service.submit(stream.next());
    service.advance_to(service.now() + 1000.0);
    service.finish();

    ASSERT_EQ(decisions.size(), 200u);
    for (const serve::Decision &d : decisions) {
        EXPECT_LE(d.decide_time - d.submit_time,
                  config.governor.starvation_horizon_s + 1e-9)
            << "job " << d.id << " starved";
    }
    EXPECT_GT(service.stats().rounds_forced, 0u);
}

TEST(Service, WatchdogAbandonsOverBudgetRoundsAndRetries)
{
    serve::ServiceConfig config = small_service();
    // Any real refresh blows a one-unit budget; the retry must then
    // run unmetered and still decide everything.
    config.watchdog_budget = 1;
    serve::Service service(config);

    serve::SyntheticStream stream(small_stream(0.02));
    for (int i = 0; i < 50; ++i)
        service.submit(stream.next());
    service.finish();

    EXPECT_GT(service.stats().replan_timeouts, 0u);
    EXPECT_EQ(service.stats().submitted, 50u);
    EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(Service, WatchdogRetryDoesNotReapplyFluidProgress)
{
    // An abandoned round has already retired fluid progress over
    // [last_round_, t]; the escalated retry at the same t must not
    // apply the interval again. If it did, jobs would finish early and
    // the retry would plan against understated remaining work, so a
    // metered run must make exactly the same decisions and retire
    // exactly the same completions as an unmetered run of the same
    // stream. (state_hash folds replan_timeouts, so it legitimately
    // differs between the two runs and is not compared.)
    auto run = [](std::uint64_t budget, serve::ServiceStats *stats,
                  std::vector<serve::Decision> *decisions) {
        serve::ServiceConfig config = small_service();
        config.watchdog_budget = budget;
        serve::Service service(config);
        service.set_decision_callback([&](const serve::Decision &d) {
            decisions->push_back(d);
        });
        serve::SyntheticStream stream(small_stream(0.02, 13));
        for (int i = 0; i < 80; ++i)
            service.submit(stream.next());
        service.finish();
        *stats = service.stats();
    };

    serve::ServiceStats metered, unmetered;
    std::vector<serve::Decision> with_watchdog, without_watchdog;
    run(1, &metered, &with_watchdog);
    run(0, &unmetered, &without_watchdog);

    ASSERT_GT(metered.replan_timeouts, 0u);
    EXPECT_EQ(unmetered.replan_timeouts, 0u);
    // The comparison is only meaningful if completions were retired
    // while the watchdog was firing.
    ASSERT_GT(unmetered.finished, 0u);
    EXPECT_EQ(metered.finished, unmetered.finished);
    EXPECT_EQ(metered.deadline_misses, unmetered.deadline_misses);
    EXPECT_EQ(metered.demotions, unmetered.demotions);
    EXPECT_EQ(metered.admitted, unmetered.admitted);
    ASSERT_EQ(with_watchdog.size(), without_watchdog.size());
    for (std::size_t i = 0; i < with_watchdog.size(); ++i) {
        EXPECT_EQ(with_watchdog[i].id, without_watchdog[i].id);
        EXPECT_EQ(with_watchdog[i].verdict, without_watchdog[i].verdict);
        EXPECT_EQ(with_watchdog[i].decide_time,
                  without_watchdog[i].decide_time);
    }
}

TEST(Service, DoubleRunIsByteIdentical)
{
    auto run = [](std::vector<serve::Decision> *decisions) {
        serve::ServiceConfig config = small_service();
        config.queue_watermark = 8;
        config.governor.rounds_per_second = 0.05;
        config.degrade_infeasible = true;
        serve::Service service(config);
        service.set_decision_callback([&](const serve::Decision &d) {
            decisions->push_back(d);
        });
        serve::SyntheticStream stream(small_stream(0.5, 21));
        for (int i = 0; i < 400; ++i)
            service.submit(stream.next());
        service.finish();
        return service.state_hash();
    };

    std::vector<serve::Decision> first, second;
    const std::uint64_t hash1 = run(&first);
    const std::uint64_t hash2 = run(&second);
    EXPECT_EQ(hash1, hash2);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].id, second[i].id);
        EXPECT_EQ(first[i].verdict, second[i].verdict);
        EXPECT_EQ(first[i].submit_time, second[i].submit_time);
        EXPECT_EQ(first[i].decide_time, second[i].decide_time);
    }
}

TEST(Service, RpcDropsLoseSubmissionsDeterministically)
{
    auto run = [](std::uint64_t *dropped) {
        FaultConfig fault_config;
        fault_config.rpc_drop_prob = 0.5;
        fault_config.seed = 3;
        FaultInjector faults(fault_config);
        serve::Service service(small_service(), &faults);
        serve::SyntheticStream stream(small_stream(0.05));
        for (int i = 0; i < 100; ++i)
            service.submit(stream.next());
        service.finish();
        *dropped = service.stats().rpc_dropped;
        EXPECT_EQ(service.stats().submitted + *dropped, 100u);
        return service.state_hash();
    };
    std::uint64_t dropped1 = 0, dropped2 = 0;
    const std::uint64_t hash1 = run(&dropped1);
    const std::uint64_t hash2 = run(&dropped2);
    EXPECT_GT(dropped1, 0u);
    EXPECT_EQ(dropped1, dropped2);
    EXPECT_EQ(hash1, hash2);
}

TEST(SyntheticStream, IsAPureFunctionOfItsSeed)
{
    serve::SyntheticStream a(small_stream(0.1, 5));
    serve::SyntheticStream b(small_stream(0.1, 5));
    serve::SyntheticStream c(small_stream(0.1, 6));
    bool any_difference = false;
    for (int i = 0; i < 50; ++i) {
        serve::Submission sa = a.next();
        serve::Submission sb = b.next();
        serve::Submission sc = c.next();
        EXPECT_EQ(sa.spec.submit_time, sb.spec.submit_time);
        EXPECT_EQ(sa.spec.model, sb.spec.model);
        EXPECT_EQ(sa.spec.iterations, sb.spec.iterations);
        EXPECT_EQ(sa.spec.deadline, sb.spec.deadline);
        any_difference = any_difference ||
                         sa.spec.submit_time != sc.spec.submit_time;
    }
    EXPECT_TRUE(any_difference) << "different seeds, same stream";
}

TEST(SyntheticStream, ArrivalStormMultipliesTheRate)
{
    // 10x storm over [0, 1e6): arrivals land ~10x denser than the
    // stormless stream with the same seed.
    FaultConfig fault_config;
    fault_config.script.push_back(
        {0.0, FaultType::kArrivalStorm, -1, 1e6, 10.0});
    FaultInjector faults(fault_config);

    serve::SyntheticStream calm(small_stream(0.01, 11));
    serve::SyntheticStream stormy(small_stream(0.01, 11), &faults);
    for (int i = 0; i < 200; ++i) {
        calm.next();
        stormy.next();
    }
    ASSERT_GT(stormy.now(), 0.0);
    const double speedup = calm.now() / stormy.now();
    EXPECT_GT(speedup, 5.0);
    EXPECT_LT(speedup, 20.0);

    // And the storm replays: same script, same stream.
    FaultInjector faults2(fault_config);
    serve::SyntheticStream replay(small_stream(0.01, 11), &faults2);
    for (int i = 0; i < 200; ++i)
        replay.next();
    EXPECT_EQ(replay.now(), stormy.now());
}

TEST(ShedVerdict, NamesAreStable)
{
    EXPECT_STREQ(shed_verdict_name(serve::ShedVerdict::kAdmitted),
                 "admitted");
    EXPECT_STREQ(
        shed_verdict_name(serve::ShedVerdict::kShedQueueFull),
        "shed-queue-full");
    EXPECT_STREQ(
        shed_verdict_name(serve::ShedVerdict::kShedInfeasible),
        "shed-infeasible");
    EXPECT_TRUE(is_shed(serve::ShedVerdict::kShedQueueFull));
    EXPECT_FALSE(is_shed(serve::ShedVerdict::kDegraded));
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the Table 1 model pool.
 */
#include <gtest/gtest.h>

#include "workload/model_zoo.h"

namespace ef {
namespace {

TEST(ModelZoo, HasAllSixModels)
{
    EXPECT_EQ(all_models().size(), static_cast<std::size_t>(kNumModels));
}

TEST(ModelZoo, Table1BatchSizes)
{
    // Exactly the pools from Table 1.
    EXPECT_EQ(model_profile(DnnModel::kResNet50).batch_sizes,
              (std::vector<int>{64, 128, 256}));
    EXPECT_EQ(model_profile(DnnModel::kVgg16).batch_sizes,
              (std::vector<int>{64, 128, 256}));
    EXPECT_EQ(model_profile(DnnModel::kInceptionV3).batch_sizes,
              (std::vector<int>{64, 128}));
    EXPECT_EQ(model_profile(DnnModel::kBert).batch_sizes,
              (std::vector<int>{64, 128}));
    EXPECT_EQ(model_profile(DnnModel::kGpt2).batch_sizes,
              (std::vector<int>{128, 256}));
    EXPECT_EQ(model_profile(DnnModel::kDeepSpeech2).batch_sizes,
              (std::vector<int>{32, 64}));
}

TEST(ModelZoo, TasksAndDatasetsMatchTable1)
{
    EXPECT_EQ(model_profile(DnnModel::kResNet50).dataset, "ImageNet");
    EXPECT_EQ(model_profile(DnnModel::kBert).dataset, "CoLA");
    EXPECT_EQ(model_profile(DnnModel::kGpt2).dataset, "aclImdb V1");
    EXPECT_EQ(model_profile(DnnModel::kDeepSpeech2).dataset,
              "LibriSpeech");
    EXPECT_EQ(model_profile(DnnModel::kVgg16).task, "CV");
    EXPECT_EQ(model_profile(DnnModel::kDeepSpeech2).task,
              "Speech Recognition");
}

TEST(ModelZoo, ProfilesArePhysicallySane)
{
    for (DnnModel model : all_models()) {
        const ModelProfile &p = model_profile(model);
        EXPECT_GT(p.param_gb, 0.0) << p.name;
        EXPECT_LT(p.param_gb, 2.0) << p.name;
        EXPECT_GT(p.per_sample_s, 0.0) << p.name;
        EXPECT_GT(p.fixed_overhead_s, 0.0) << p.name;
        EXPECT_GE(p.max_local_batch, 32) << p.name;
        EXPECT_GT(p.checkpoint_gb, 0.0) << p.name;
        EXPECT_FALSE(p.batch_sizes.empty()) << p.name;
        // Every batch in the pool is trainable on a single GPU or a
        // power-of-two group.
        for (int batch : p.batch_sizes)
            EXPECT_GT(batch, 0) << p.name;
    }
}

TEST(ModelZoo, NameRoundTrip)
{
    for (DnnModel model : all_models())
        EXPECT_EQ(model_from_name(model_name(model)), model);
}

TEST(ModelZoo, UnknownNameDies)
{
    EXPECT_DEATH(model_from_name("NotAModel"), "unknown model");
}

TEST(ModelZoo, VggIsCommunicationHeavy)
{
    // VGG16's 528 MB of gradients per iteration is the paper's example
    // of poor scaling (76% at 8 GPUs); keep it the largest CV payload.
    EXPECT_GT(model_profile(DnnModel::kVgg16).param_gb,
              model_profile(DnnModel::kResNet50).param_gb * 3);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for buddy packing math, including the key property behind the
 * paper's no-fragmentation claim (§4.3): with power-of-two item sizes
 * and bin capacities, first-fit-decreasing succeeds whenever total
 * size fits total capacity.
 */
#include <gtest/gtest.h>

#include "cluster/buddy.h"
#include "common/rng.h"

namespace ef {
namespace {

TEST(Buddy, PacksSimpleItems)
{
    std::vector<PackItem> items = {{1, 8}, {2, 4}, {3, 4}, {4, 8}};
    Packing p = pack_power_of_two(items, 3, 8);
    ASSERT_TRUE(p.feasible);
    // All items placed in distinct-capacity-respecting bins.
    for (int bin : p.bin_of_item)
        EXPECT_GE(bin, 0);
    for (GpuCount used : p.bin_used)
        EXPECT_LE(used, 8);
}

TEST(Buddy, InfeasibleWhenOverCapacity)
{
    std::vector<PackItem> items = {{1, 8}, {2, 8}, {3, 1}};
    Packing p = pack_power_of_two(items, 2, 8);
    EXPECT_FALSE(p.feasible);
}

TEST(Buddy, PaperFragmentationExample)
{
    // Paper §4.3: jobs of 7 GPUs would fragment; with powers of two
    // (4+2+1 per job is not allowed — each job is one item), two
    // 4-GPU jobs and filler still admit a 2-GPU job via repacking.
    std::vector<PackItem> existing = {{1, 4}, {2, 2}, {3, 1},
                                      {4, 4}, {5, 2}, {6, 1}};
    // Two 8-GPU servers, 14 GPUs used... only 2 free.
    EXPECT_TRUE(fits_after_repack(existing, 2, 2, 8));
    EXPECT_FALSE(fits_after_repack(existing, 4, 2, 8));
}

TEST(Buddy, MultiBinItemNeedsWholeBins)
{
    std::vector<PackItem> existing = {{1, 4}};
    // A 16-GPU job needs two whole 8-GPU bins; with one bin partly
    // used, three bins are required.
    EXPECT_FALSE(fits_after_repack(existing, 16, 2, 8));
    EXPECT_TRUE(fits_after_repack(existing, 16, 3, 8));
}

/**
 * Property (the no-fragmentation theorem): for random power-of-two
 * item multisets, FFD packs iff total size <= total capacity.
 */
TEST(Buddy, PerfectPackingPropertySweep)
{
    Rng rng(1234);
    for (int trial = 0; trial < 500; ++trial) {
        int bins = static_cast<int>(rng.uniform_int(1, 12));
        GpuCount cap = 8;
        std::vector<PackItem> items;
        GpuCount total = 0;
        while (true) {
            GpuCount size = GpuCount(1)
                            << rng.uniform_int(0, 3);  // 1..8
            if (!items.empty() && rng.flip(0.2))
                break;
            items.push_back(
                {static_cast<std::int64_t>(items.size()), size});
            total += size;
            if (total > bins * cap + 16)
                break;
        }
        Packing p = pack_power_of_two(items, bins, cap);
        bool fits = total <= bins * cap;
        EXPECT_EQ(p.feasible, fits)
            << "trial " << trial << " total=" << total
            << " capacity=" << bins * cap;
        if (p.feasible) {
            // Accounting is exact.
            GpuCount used = 0;
            for (GpuCount u : p.bin_used)
                used += u;
            EXPECT_EQ(used, total);
        }
    }
}

TEST(Buddy, DeterministicTieBreaks)
{
    std::vector<PackItem> items = {{5, 4}, {3, 4}, {1, 4}};
    Packing a = pack_power_of_two(items, 3, 8);
    Packing b = pack_power_of_two(items, 3, 8);
    EXPECT_EQ(a.bin_of_item, b.bin_of_item);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Shared helpers for scheduler/simulator tests: compact construction
 * of hand-crafted traces.
 */
#ifndef EF_TESTS_TEST_UTIL_H_
#define EF_TESTS_TEST_UTIL_H_

#include "workload/perf_model.h"
#include "workload/trace.h"

namespace ef {
namespace testutil {

/** Fluent builder for hand-crafted traces. */
class TraceBuilder
{
  public:
    explicit TraceBuilder(TopologySpec topology,
                          const std::string &name = "crafted")
    {
        trace_.name = name;
        trace_.topology = topology;
    }

    /**
     * Add an SLO job that would take @p standalone_s seconds on its
     * requested GPUs and must finish within @p tightness times that.
     */
    TraceBuilder &
    slo(DnnModel model, int batch, GpuCount requested, Time submit,
        Time standalone_s, double tightness)
    {
        Topology topo(trace_.topology);
        PerfModel perf(&topo);
        JobSpec job;
        job.id = static_cast<JobId>(trace_.jobs.size());
        job.model = model;
        job.global_batch = batch;
        job.requested_gpus = requested;
        job.submit_time = submit;
        job.name = model_name(model) + "#" + std::to_string(job.id);
        job.iterations = iterations_for_duration(perf, job, standalone_s);
        job.deadline = submit + tightness * standalone_s;
        job.kind = JobKind::kSlo;
        trace_.jobs.push_back(job);
        return *this;
    }

    /** Add a best-effort job (no deadline). */
    TraceBuilder &
    best_effort(DnnModel model, int batch, GpuCount requested,
                Time submit, Time standalone_s)
    {
        slo(model, batch, requested, submit, standalone_s, 1.0);
        trace_.jobs.back().kind = JobKind::kBestEffort;
        trace_.jobs.back().deadline = kTimeInfinity;
        return *this;
    }

    Trace
    build()
    {
        trace_.sort_by_submit_time();
        return trace_;
    }

  private:
    Trace trace_;
};

}  // namespace testutil
}  // namespace ef

#endif  // EF_TESTS_TEST_UTIL_H_

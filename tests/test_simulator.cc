/**
 * @file
 * Tests for the event-driven simulator itself: progress accounting,
 * overhead charging, timeline recording, and the ClusterView contract.
 */
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

/** Trivial scheduler: every active job gets its requested GPUs. */
class FixedScheduler : public Scheduler
{
  public:
    std::string name() const override { return "fixed"; }

    SchedulerDecision
    allocate() override
    {
        SchedulerDecision decision;
        GpuCount free = view_->total_gpus();
        for (JobId id : view_->active_jobs()) {
            GpuCount req = view_->spec(id).requested_gpus;
            if (view_->remaining_iterations(id) > 0.0 && req <= free) {
                decision.gpus[id] = req;
                free -= req;
            }
        }
        return decision;
    }
};

TEST(Simulator, SingleJobFinishTimeMatchesAnalyticDuration)
{
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 100.0,
                           2.0 * kHour, 1.5)
                      .build();
    FixedScheduler scheduler;
    SimConfig config;
    config.overhead.enabled = false;
    Simulator sim(trace, &scheduler, config);
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[0].finished);
    // Standalone duration was 2h by construction; the fluid simulator
    // must land within iteration-rounding error of submit + 2h.
    EXPECT_NEAR(result.jobs[0].finish_time, 100.0 + 2.0 * kHour, 2.0);
    EXPECT_EQ(result.jobs[0].first_run_time, 100.0);
}

TEST(Simulator, OverheadDelaysFinish)
{
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kVgg16, 128, 8, 0.0, kHour, 2.0)
                      .build();
    FixedScheduler s1, s2;
    SimConfig with, without;
    without.overhead.enabled = false;
    Simulator sim_with(trace, &s1, with);
    Simulator sim_without(trace, &s2, without);
    Time t_with = sim_with.run().jobs[0].finish_time;
    Time t_without = sim_without.run().jobs[0].finish_time;
    EXPECT_GT(t_with, t_without);
    // The initial placement costs one checkpoint/restore (~seconds).
    EXPECT_LT(t_with - t_without, 2.0 * kMinute);
}

TEST(Simulator, AttainedServiceCountsGpuSeconds)
{
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kBert, 64, 4, 0.0, kHour, 2.0)
                      .build();
    FixedScheduler scheduler;
    SimConfig config;
    config.overhead.enabled = false;
    Simulator sim(trace, &scheduler, config);
    RunResult result = sim.run();
    // 4 GPUs for ~1 hour.
    EXPECT_NEAR(result.jobs[0].gpu_seconds, 4.0 * kHour,
                4.0 * kMinute);
}

TEST(Simulator, UsedGpusTimelineRisesAndFalls)
{
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 64, 8, 0.0, kHour, 2.0)
                      .build();
    FixedScheduler scheduler;
    Simulator sim(trace, &scheduler);
    RunResult result = sim.run();
    ASSERT_FALSE(result.used_gpus.empty());
    EXPECT_DOUBLE_EQ(result.used_gpus.value_at(60.0), 8.0);
    EXPECT_DOUBLE_EQ(
        result.used_gpus.value_at(result.makespan + 1.0), 0.0);
}

TEST(Simulator, ClusterEfficiencyBelowOneWithMultiGpuJobs)
{
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kVgg16, 256, 8, 0.0, kHour, 2.0)
                      .build();
    FixedScheduler scheduler;
    Simulator sim(trace, &scheduler);
    RunResult result = sim.run();
    double ce = result.cluster_efficiency.value_at(60.0);
    EXPECT_GT(ce, 0.0);
    // 8 GPUs of 32 at ~77% scaling efficiency: CE well below 0.25.
    EXPECT_LT(ce, 0.25);
}

TEST(Simulator, SubmittedAdmittedTimelines)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();
    EXPECT_DOUBLE_EQ(result.submitted_jobs.values().back(), 25.0);
    EXPECT_LE(result.admitted_jobs.values().back(), 25.0);
    EXPECT_DOUBLE_EQ(
        result.admitted_jobs.values().back(),
        static_cast<double>(result.admitted_count()));
}

TEST(Simulator, ViewExposesProgress)
{
    // Custom scheduler that asserts view invariants mid-run.
    class ProbeScheduler : public FixedScheduler
    {
      public:
        SchedulerDecision
        allocate() override
        {
            for (JobId id : view_->active_jobs()) {
                const JobSpec &spec = view_->spec(id);
                EXPECT_GE(view_->remaining_iterations(id), 0.0);
                EXPECT_LE(view_->remaining_iterations(id),
                          static_cast<double>(spec.iterations));
                EXPECT_GE(view_->attained_gpu_seconds(id), 0.0);
                const ScalingCurve &curve = view_->curve(id);
                EXPECT_FALSE(curve.empty());
                ++probes;
            }
            return FixedScheduler::allocate();
        }
        int probes = 0;
    };
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kGpt2, 128, 4, 0.0, kHour, 2.0)
                      .slo(DnnModel::kBert, 64, 2, 30.0, kHour, 2.0)
                      .build();
    ProbeScheduler scheduler;
    Simulator sim(trace, &scheduler);
    sim.run();
    EXPECT_GT(scheduler.probes, 0);
}

TEST(Simulator, OverSubscribedDecisionDies)
{
    class GreedyScheduler : public Scheduler
    {
      public:
        std::string name() const override { return "greedy"; }
        SchedulerDecision
        allocate() override
        {
            SchedulerDecision decision;
            for (JobId id : view_->active_jobs())
                decision.gpus[id] = view_->total_gpus();
            return decision;
        }
    };
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kBert, 64, 2, 0.0, kHour, 2.0)
                      .slo(DnnModel::kBert, 64, 2, 0.0, kHour, 2.0)
                      .build();
    GreedyScheduler scheduler;
    Simulator sim(trace, &scheduler);
    EXPECT_DEATH(sim.run(), "requested");
}

TEST(Simulator, DuplicateJobIdsDie)
{
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kBert, 64, 2, 0.0, kHour, 2.0)
                      .build();
    trace.jobs.push_back(trace.jobs[0]);
    FixedScheduler scheduler;
    EXPECT_DEATH(Simulator sim(trace, &scheduler), "duplicate job id");
}

/** FixedScheduler with a periodic tick, so tick collisions can occur. */
class TickingFixedScheduler : public FixedScheduler
{
  public:
    Time reschedule_interval() const override { return 600.0; }
};

RunResult
run_replan_config(const Trace &trace, bool coalesce, bool elide)
{
    TickingFixedScheduler scheduler;
    SimConfig config;
    config.overhead.enabled = false;
    config.coalesce_replans = coalesce;
    config.elide_replans = elide;
    Simulator sim(trace, &scheduler, config);
    return sim.run();
}

TEST(Simulator, ReplanElisionPreservesOutcomes)
{
    // The second arrival lands exactly on a tick boundary (t = 600 s,
    // the tick armed by the first flush at t = 0). Arrivals pop before
    // the tick (lower sequence number), so without coalescing the tick
    // finds a decision already made at its own timestamp and nothing
    // dirty — the textbook elidable replan.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 0.0,
                           2.0 * kHour, 1.5)
                      .slo(DnnModel::kBert, 64, 8, 600.0, kHour, 2.0)
                      .build();

    RunResult baseline = run_replan_config(trace, false, false);
    RunResult elided = run_replan_config(trace, false, true);
    RunResult coalesced = run_replan_config(trace, true, false);
    RunResult both = run_replan_config(trace, true, true);

    EXPECT_EQ(baseline.replans_elided, 0);
    EXPECT_EQ(baseline.replans_coalesced, 0);
    EXPECT_GE(elided.replans_elided, 1);
    EXPECT_GE(coalesced.replans_coalesced, 1);

    // Every event raises the same requests regardless of how they are
    // serviced, and elision/coalescing must not change any outcome.
    for (const RunResult *r : {&elided, &coalesced, &both}) {
        EXPECT_EQ(r->replans_attempted, baseline.replans_attempted);
        ASSERT_EQ(r->jobs.size(), baseline.jobs.size());
        for (std::size_t i = 0; i < baseline.jobs.size(); ++i) {
            const JobOutcome &want = baseline.jobs[i];
            const JobOutcome &got = r->jobs[i];
            EXPECT_EQ(got.admitted, want.admitted);
            EXPECT_EQ(got.finished, want.finished);
            EXPECT_EQ(got.met_deadline(), want.met_deadline());
            EXPECT_DOUBLE_EQ(got.finish_time, want.finish_time);
            EXPECT_DOUBLE_EQ(got.first_run_time, want.first_run_time);
            EXPECT_DOUBLE_EQ(got.gpu_seconds, want.gpu_seconds);
        }
    }
}

TEST(Simulator, CoalescingMergesSimultaneousArrivals)
{
    // Three jobs submitted at the same instant: coalescing services
    // the burst with one scheduler invocation instead of three.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 0.0, kHour, 2.0)
                      .slo(DnnModel::kBert, 64, 4, 0.0, kHour, 2.0)
                      .slo(DnnModel::kVgg16, 128, 4, 0.0, kHour, 2.0)
                      .build();
    RunResult merged = run_replan_config(trace, true, true);
    EXPECT_GE(merged.replans_coalesced, 2);
    for (const JobOutcome &job : merged.jobs) {
        EXPECT_TRUE(job.finished);
        EXPECT_TRUE(job.met_deadline());
    }
}

TEST(Simulator, MigrationsAreCountedAndCharged)
{
    // Force defragmentation: odd-sized jobs fill servers, then a job
    // needs a compact block.
    Trace trace = TraceGenerator::generate(testbed_large_preset());
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();
    int migrations = 0;
    for (const JobOutcome &job : result.jobs)
        migrations += job.migrations;
    EXPECT_GT(migrations, 0);
}

TEST(Simulator, FailureAtArrivalBurstCoalescesIntoOneReplan)
{
    // Three replan sources collide at t = 600: an arrival, a scripted
    // server crash, and the periodic tick armed at t = 0. Coalescing
    // must merge them into a single scheduler invocation, and the
    // crash victim must be re-placed by that very invocation.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kVgg16, 256, 8, 0.0, kHour, 4.0)
                      .slo(DnnModel::kBert, 64, 4, 600.0, kHour, 4.0)
                      .build();
    TickingFixedScheduler scheduler;
    SimConfig config;
    config.overhead.enabled = false;
    config.faults.script.push_back(
        {600.0, FaultType::kServerCrash, 0, 1800.0, 0.0});
    Simulator sim(trace, &scheduler, config);
    RunResult result = sim.run();

    EXPECT_GE(result.replans_coalesced, 2);
    EXPECT_EQ(result.jobs[0].failures_suffered, 1);
    EXPECT_EQ(result.jobs[1].failures_suffered, 0);
    for (const JobOutcome &job : result.jobs)
        EXPECT_TRUE(job.finished) << job.spec.id;
    // The coalesced replan at t = 600 both evicted and re-placed the
    // victim: its allocation log shows the eviction followed by a new
    // placement at the same timestamp.
    bool evicted_at_600 = false;
    bool replaced_at_600 = false;
    for (const AllocationEvent &event : result.allocation_log) {
        if (event.job != 0 || !almost_equal(event.time, 600.0))
            continue;
        if (event.gpus.empty())
            evicted_at_600 = true;
        else if (evicted_at_600)
            replaced_at_600 = true;
    }
    EXPECT_TRUE(evicted_at_600);
    EXPECT_TRUE(replaced_at_600);
}

}  // namespace
}  // namespace ef

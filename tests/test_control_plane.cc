/**
 * @file
 * Tests for the executor control plane (§5): command delivery with
 * RPC latency, launch/scale/suspend/shutdown semantics, command-log
 * observability, and driving a full job to completion.
 */
#include <gtest/gtest.h>

#include "exec/control_plane.h"
#include "fault/fault.h"

namespace ef {
namespace {

class ControlPlaneTest : public testing::Test
{
  protected:
    ControlPlaneTest()
        : topo_(TopologySpec::testbed_32()), perf_(&topo_),
          overhead_(OverheadConfig{}), fleet_(&perf_, &overhead_, 0.05)
    {}

    JobSpec
    spec(JobId id, std::int64_t iterations = 10000) const
    {
        JobSpec s;
        s.id = id;
        s.model = DnnModel::kResNet50;
        s.global_batch = 128;
        s.iterations = iterations;
        return s;
    }

    Topology topo_;
    PerfModel perf_;
    OverheadModel overhead_;
    ExecutorFleet fleet_;
};

TEST_F(ControlPlaneTest, LaunchRunsAJob)
{
    fleet_.register_job(spec(1));
    CommandAck ack =
        fleet_.issue(CommandType::kLaunch, 1, {0, 1, 2, 3}, 0.0);
    EXPECT_TRUE(ack.ok);
    EXPECT_DOUBLE_EQ(ack.applied_at, 0.05);
    EXPECT_EQ(fleet_.running_count(), 1u);
    fleet_.advance(1e9);
    EXPECT_EQ(fleet_.finished_count(), 1u);
    EXPECT_EQ(fleet_.execution(1).completed_iterations(), 10000);
}

TEST_F(ControlPlaneTest, CommandsToUnknownJobsAreNacked)
{
    CommandAck ack = fleet_.issue(CommandType::kLaunch, 42, {0}, 0.0);
    EXPECT_FALSE(ack.ok);
    EXPECT_FALSE(fleet_.knows(42));
}

TEST_F(ControlPlaneTest, ScaleAfterLaunchChangesWorkerCount)
{
    fleet_.register_job(spec(1, 1000000));
    fleet_.issue(CommandType::kLaunch, 1, {0, 1}, 0.0);
    fleet_.advance(100.0);
    fleet_.issue(CommandType::kScale, 1, {0, 1, 2, 3, 4, 5, 6, 7},
                 100.0);
    EXPECT_EQ(fleet_.execution(1).worker_count(), 8);
    EXPECT_EQ(fleet_.execution(1).checkpoints_taken(), 2);
}

TEST_F(ControlPlaneTest, SuspendStopsProgressUntilRelaunch)
{
    fleet_.register_job(spec(1, 1000000));
    fleet_.issue(CommandType::kLaunch, 1, {0, 1, 2, 3}, 0.0);
    fleet_.advance(500.0);
    EXPECT_GT(fleet_.execution(1).completed_iterations(), 0);
    // The job keeps iterating until the suspend RPC lands.
    fleet_.issue(CommandType::kSuspend, 1, {}, 500.0);
    std::int64_t done =
        fleet_.execution(1).completed_iterations();
    fleet_.advance(5000.0);
    EXPECT_EQ(fleet_.execution(1).completed_iterations(), done);
    EXPECT_EQ(fleet_.running_count(), 0u);
    fleet_.issue(CommandType::kScale, 1, {8, 9}, 5000.0);
    fleet_.advance(6000.0);
    EXPECT_GT(fleet_.execution(1).completed_iterations(), done);
}

TEST_F(ControlPlaneTest, ShutdownForgetsTheJob)
{
    fleet_.register_job(spec(1));
    fleet_.issue(CommandType::kLaunch, 1, {0}, 0.0);
    CommandAck ack = fleet_.issue(CommandType::kShutdown, 1, {}, 10.0);
    EXPECT_TRUE(ack.ok);
    EXPECT_FALSE(fleet_.knows(1));
}

TEST_F(ControlPlaneTest, CommandLogRecordsEverything)
{
    fleet_.register_job(spec(1));
    fleet_.issue(CommandType::kLaunch, 1, {0, 1}, 0.0);
    fleet_.issue(CommandType::kScale, 1, {0, 1, 2, 3}, 60.0);
    fleet_.issue(CommandType::kSuspend, 1, {}, 120.0);
    const auto &log = fleet_.command_log();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].type, CommandType::kLaunch);
    EXPECT_EQ(log[1].type, CommandType::kScale);
    EXPECT_EQ(log[2].type, CommandType::kSuspend);
    // Sequence numbers are dense and match acks.
    const auto &acks = fleet_.ack_log();
    ASSERT_EQ(acks.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(log[i].seq, acks[i].seq);
        EXPECT_TRUE(acks[i].ok);
    }
}

TEST_F(ControlPlaneTest, OutOfOrderIssueDies)
{
    fleet_.register_job(spec(1));
    fleet_.issue(CommandType::kLaunch, 1, {0}, 100.0);
    EXPECT_DEATH(fleet_.issue(CommandType::kSuspend, 1, {}, 50.0),
                 "time order");
}

TEST_F(ControlPlaneTest, LaunchAfterFinishIsNacked)
{
    fleet_.register_job(spec(1, 100));
    fleet_.issue(CommandType::kLaunch, 1, {0, 1, 2, 3}, 0.0);
    fleet_.advance(1e9);
    ASSERT_TRUE(fleet_.execution(1).finished());
    CommandAck ack =
        fleet_.issue(CommandType::kScale, 1, {0, 1}, 1e9);
    EXPECT_FALSE(ack.ok);
}

TEST_F(ControlPlaneTest, CommandTypeNames)
{
    EXPECT_EQ(command_type_name(CommandType::kLaunch), "launch");
    EXPECT_EQ(command_type_name(CommandType::kShutdown), "shutdown");
}

// --- unreliable delivery (fault injection) ------------------------------

TEST_F(ControlPlaneTest, RetryOnDroppedRpcEventuallyApplies)
{
    FaultConfig config;
    config.script.push_back({0.0, FaultType::kRpcDrop, 1, 0.0, 2.0});
    FaultInjector injector(config);
    fleet_.set_fault_injector(&injector);
    fleet_.register_job(spec(1));
    CommandAck ack =
        fleet_.issue(CommandType::kLaunch, 1, {0, 1, 2, 3}, 0.0);
    EXPECT_TRUE(ack.ok);
    EXPECT_EQ(ack.retries, 2);
    EXPECT_FALSE(ack.gave_up);
    // Base latency plus bounded exponential backoff 0.2 + 0.4 s.
    EXPECT_DOUBLE_EQ(ack.applied_at, 0.05 + 0.2 + 0.4);
    EXPECT_EQ(fleet_.rpc_retries(), 2);
    EXPECT_EQ(fleet_.rpc_gave_up(), 0);
    EXPECT_EQ(fleet_.running_count(), 1u);
    EXPECT_EQ(fleet_.applied_seq(1), ack.seq);
}

TEST_F(ControlPlaneTest, GiveUpAfterMaxRetriesLeavesJobUntouched)
{
    FaultConfig config;
    config.rpc_max_retries = 2;
    config.script.push_back({0.0, FaultType::kRpcDrop, 1, 0.0, 10.0});
    FaultInjector injector(config);
    fleet_.set_fault_injector(&injector);
    fleet_.register_job(spec(1));
    CommandAck ack =
        fleet_.issue(CommandType::kLaunch, 1, {0, 1, 2, 3}, 0.0);
    EXPECT_FALSE(ack.ok);
    EXPECT_TRUE(ack.gave_up);
    EXPECT_EQ(ack.retries, 2);
    EXPECT_EQ(fleet_.rpc_gave_up(), 1);
    EXPECT_EQ(fleet_.running_count(), 0u);
    EXPECT_EQ(fleet_.applied_seq(1), 0u);  // never applied
    // A later clean reissue still works (scripted drops consumed).
    ack = fleet_.issue(CommandType::kLaunch, 1, {0, 1, 2, 3}, 1.0);
    EXPECT_TRUE(ack.ok);
    EXPECT_EQ(fleet_.running_count(), 1u);
}

TEST_F(ControlPlaneTest, LostAcksApplyOnceAndSuppressDuplicates)
{
    // Every attempt loses its ack: the command is applied by the first
    // attempt, each redelivery is suppressed by the seq-based dedup,
    // and after max retries the fleet reports gave_up even though the
    // execution did act.
    FaultConfig config;
    config.rpc_drop_prob = 1.0;
    config.rpc_ack_loss_fraction = 1.0;
    config.rpc_max_retries = 2;
    FaultInjector injector(config);
    fleet_.set_fault_injector(&injector);
    fleet_.register_job(spec(1));
    CommandAck ack =
        fleet_.issue(CommandType::kLaunch, 1, {0, 1, 2, 3}, 0.0);
    EXPECT_FALSE(ack.ok);  // no confirmation ever arrived
    EXPECT_TRUE(ack.gave_up);
    EXPECT_EQ(fleet_.duplicates_suppressed(), 2);
    EXPECT_EQ(fleet_.rpc_retries(), 2);
    // ...but the worker group is up: idempotent application happened
    // exactly once.
    EXPECT_EQ(fleet_.running_count(), 1u);
    EXPECT_EQ(fleet_.execution(1).worker_count(), 4);
    EXPECT_EQ(fleet_.applied_seq(1), ack.seq);
}

TEST_F(ControlPlaneTest, RejectsCommandsNamingDownGpus)
{
    fleet_.register_job(spec(1, 1000000));
    fleet_.set_gpu_available(2, false);
    CommandAck ack =
        fleet_.issue(CommandType::kLaunch, 1, {0, 1, 2, 3}, 0.0);
    EXPECT_FALSE(ack.ok);
    EXPECT_EQ(fleet_.rejected_commands(), 1);
    EXPECT_EQ(fleet_.running_count(), 0u);
    // Other GPUs still accept work; repair re-enables the GPU.
    EXPECT_TRUE(fleet_.issue(CommandType::kLaunch, 1, {4, 5}, 1.0).ok);
    fleet_.set_gpu_available(2, true);
    EXPECT_TRUE(
        fleet_.issue(CommandType::kScale, 1, {0, 1, 2, 3}, 2.0).ok);
    EXPECT_EQ(fleet_.rejected_commands(), 1);
}

TEST_F(ControlPlaneTest, RejectsCommandsToDownServers)
{
    fleet_.register_job(spec(1, 1000000));
    fleet_.set_server_available(0, false);
    // GPUs 0-7 are down with their server.
    EXPECT_FALSE(fleet_.issue(CommandType::kLaunch, 1, {7}, 0.0).ok);
    EXPECT_TRUE(fleet_.issue(CommandType::kLaunch, 1, {8, 9}, 1.0).ok);
    // Suspend carries no GPU set and is never hardware-gated.
    EXPECT_TRUE(fleet_.issue(CommandType::kSuspend, 1, {}, 2.0).ok);
    fleet_.set_server_available(0, true);
    EXPECT_TRUE(fleet_.issue(CommandType::kScale, 1, {0, 1}, 3.0).ok);
}

}  // namespace
}  // namespace ef

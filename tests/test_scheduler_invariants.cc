/**
 * @file
 * Parameterized invariant suite run against EVERY scheduling policy on
 * multiple workloads: whatever the policy decides, the platform-level
 * invariants must hold — capacity is never exceeded, admitted jobs
 * finish, timelines are sane, runs are deterministic, and no job runs
 * below its memory-bound minimum worker count.
 */
#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/perf_model.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

struct Case
{
    std::string scheduler;
    std::string workload;  // "small", "contended", "best-effort"
};

std::string
case_name(const testing::TestParamInfo<Case> &info)
{
    std::string name =
        info.param.scheduler + "_" + info.param.workload;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

Trace
workload_by_name(const std::string &name)
{
    if (name == "small") {
        return TraceGenerator::generate(testbed_small_preset());
    }
    if (name == "contended") {
        TraceGenConfig config = testbed_large_preset();
        config.num_jobs = 60;
        config.mean_interarrival_s = 150.0;
        return TraceGenerator::generate(config);
    }
    TraceGenConfig config = testbed_small_preset();
    config.num_jobs = 30;
    config.best_effort_fraction = 0.3;
    config.soft_deadline_fraction = 0.2;
    return TraceGenerator::generate(config);
}

class SchedulerInvariants : public testing::TestWithParam<Case>
{
};

TEST_P(SchedulerInvariants, PlatformInvariantsHold)
{
    const Case &param = GetParam();
    Trace trace = workload_by_name(param.workload);
    Topology topo(trace.topology);
    PerfModel perf(&topo);

    auto scheduler = make_scheduler(param.scheduler);
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();

    // Every submitted job is accounted for.
    ASSERT_EQ(result.jobs.size(), trace.jobs.size());

    for (const JobOutcome &job : result.jobs) {
        // Admitted jobs run to completion; dropped jobs never run.
        if (job.admitted) {
            EXPECT_TRUE(job.finished) << "job " << job.spec.id;
            EXPECT_LE(job.finish_time, result.makespan + 1e-6);
            EXPECT_GE(job.finish_time, job.spec.submit_time);
            EXPECT_GT(job.gpu_seconds, 0.0) << "job " << job.spec.id;
        } else {
            EXPECT_FALSE(job.finished) << "job " << job.spec.id;
            EXPECT_EQ(job.gpu_seconds, 0.0) << "job " << job.spec.id;
        }
        // A finished job consumed at least its minimal GPU time.
        if (job.finished) {
            GpuCount min_w =
                perf.min_workers(job.spec.model, job.spec.global_batch);
            double max_tpt = perf.compact_throughput(
                job.spec.model, job.spec.global_batch,
                perf.max_workers(job.spec.model, job.spec.global_batch,
                                 topo.total_gpus()));
            double min_gpu_seconds =
                static_cast<double>(job.spec.iterations) / max_tpt *
                static_cast<double>(min_w);
            EXPECT_GE(job.gpu_seconds, 0.5 * min_gpu_seconds)
                << "job " << job.spec.id;
        }
    }

    // The allocation timeline never exceeds the cluster.
    for (double used : result.used_gpus.values()) {
        EXPECT_GE(used, 0.0);
        EXPECT_LE(used, static_cast<double>(topo.total_gpus()));
    }

    // Deterministic: a second run reproduces the headline numbers.
    auto scheduler2 = make_scheduler(param.scheduler);
    Simulator sim2(trace, scheduler2.get());
    RunResult result2 = sim2.run();
    EXPECT_EQ(result.deadlines_met(), result2.deadlines_met());
    EXPECT_EQ(result.admitted_count(), result2.admitted_count());
    EXPECT_DOUBLE_EQ(result.makespan, result2.makespan);
}

std::vector<Case>
all_cases()
{
    std::vector<Case> cases;
    for (const std::string scheduler :
         {"elasticflow", "edf", "edf+admission", "edf+elastic",
          "gandiva", "tiresias", "themis", "chronus", "pollux"}) {
        for (const std::string workload :
             {"small", "contended", "best-effort"}) {
            cases.push_back(Case{scheduler, workload});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerInvariants,
                         testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the logging and checked-assertion plumbing that every
 * module leans on.
 */
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/logging.h"

namespace ef {
namespace {

class LogLevelGuard
{
  public:
    LogLevelGuard() : saved_(log_level()) {}
    ~LogLevelGuard() { set_log_level(saved_); }

  private:
    LogLevel saved_;
};

TEST(Logging, ThresholdFilters)
{
    LogLevelGuard guard;
    set_log_level(LogLevel::kError);
    testing::internal::CaptureStderr();
    EF_WARN("should be filtered");
    EF_ERROR("should appear");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("should be filtered"), std::string::npos);
    EXPECT_NE(err.find("should appear"), std::string::npos);
    EXPECT_NE(err.find("[ef:error]"), std::string::npos);
}

TEST(Logging, DebugLevelLetsEverythingThrough)
{
    LogLevelGuard guard;
    set_log_level(LogLevel::kDebug);
    testing::internal::CaptureStderr();
    EF_DEBUG("dbg " << 42);
    EF_INFO("info");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("dbg 42"), std::string::npos);
    EXPECT_NE(err.find("[ef:info] info"), std::string::npos);
}

TEST(Logging, MessageExpressionNotEvaluatedWhenFiltered)
{
    LogLevelGuard guard;
    set_log_level(LogLevel::kError);
    int evaluations = 0;
    auto expensive = [&evaluations]() {
        ++evaluations;
        return "x";
    };
    EF_DEBUG(expensive());
    EXPECT_EQ(evaluations, 0);
    EF_ERROR(expensive());
    EXPECT_EQ(evaluations, 1);
}

TEST(Check, PassingConditionsAreSilent)
{
    EF_CHECK(1 + 1 == 2);
    EF_CHECK_MSG(true, "never shown");
    EF_FATAL_IF(false, "never shown");
    SUCCEED();
}

TEST(Check, FailureAbortsWithExpression)
{
    EXPECT_DEATH(EF_CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
}

TEST(Check, FailureMessageIsStreamed)
{
    EXPECT_DEATH(EF_CHECK_MSG(false, "value was " << 7),
                 "value was 7");
}

TEST(Check, FatalIfReportsUserError)
{
    EXPECT_DEATH(EF_FATAL_IF(true, "bad config " << "x"),
                 "bad config x");
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for soft-deadline jobs (§4.4): never dropped, scheduled like
 * SLO jobs while feasible, demoted to best-effort (not killed) when
 * their deadline cannot be met, and never in the way of hard
 * guarantees.
 */
#include <gtest/gtest.h>

#include "sched/elastic_flow.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

Trace
with_soft(Trace trace, std::initializer_list<std::size_t> soft_indices)
{
    for (std::size_t i : soft_indices)
        trace.jobs[i].kind = JobKind::kSoftDeadline;
    return trace;
}

SimConfig
no_overhead()
{
    SimConfig config;
    config.overhead.enabled = false;
    return config;
}

TEST(SoftDeadlines, NeverDroppedEvenWhenHopeless)
{
    // Impossible deadline: a hard job would be dropped; a soft one is
    // admitted and simply finishes late.
    Trace trace = with_soft(
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kVgg16, 64, 32, 0.0, 10.0 * kHour, 0.2)
            .build(),
        {0});
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[0].admitted);
    EXPECT_TRUE(result.jobs[0].finished);
    EXPECT_FALSE(result.jobs[0].met_deadline());
    EXPECT_EQ(result.replan_failures, 0);  // soft misses aren't incidents
}

TEST(SoftDeadlines, MetWhenFeasible)
{
    Trace trace = with_soft(
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kResNet50, 256, 2, 0.0, 2.0 * kHour, 1.2)
            .build(),
        {0});
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[0].met_deadline());
    EXPECT_DOUBLE_EQ(
        result.deadline_ratio_of(JobKind::kSoftDeadline), 1.0);
}

TEST(SoftDeadlines, DoNotBlockHardAdmissions)
{
    // A cluster-saturating soft job arrives first; a hard job with a
    // tight-but-feasible deadline must still be admitted and met —
    // the soft job yields.
    Trace trace = with_soft(
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kBert, 128, 8, 0.0, 4.0 * kHour, 0.82)
            .slo(DnnModel::kBert, 128, 8, 60.0, 4.0 * kHour, 0.82)
            .build(),
        {0});
    ElasticFlowConfig config;
    config.admission_margin = 0.0;
    config.overhead_allowance_s = 0.0;
    ElasticFlowScheduler scheduler(config);
    Simulator sim(trace, &scheduler, no_overhead());
    RunResult result = sim.run();
    // The hard job (index 1) is admitted — the soft job does not
    // reserve capacity against it — and meets its deadline.
    EXPECT_TRUE(result.jobs[1].admitted);
    EXPECT_TRUE(result.jobs[1].met_deadline());
    // The soft job still finishes eventually.
    EXPECT_TRUE(result.jobs[0].finished);
}

TEST(SoftDeadlines, MixedTraceKeepsHardGuarantee)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 40;
    gen.soft_deadline_fraction = 0.4;
    Trace trace = TraceGenerator::generate(gen);
    EXPECT_GT(trace.count_kind(JobKind::kSoftDeadline), 0u);

    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler);
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.spec.kind == JobKind::kSlo && job.admitted) {
            EXPECT_TRUE(job.met_deadline()) << job.spec.id;
        }
        if (job.spec.kind == JobKind::kSoftDeadline) {
            EXPECT_TRUE(job.admitted) << job.spec.id;
            EXPECT_TRUE(job.finished) << job.spec.id;
        }
    }
}

TEST(SoftDeadlines, KindSurvivesCsvRoundTrip)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.soft_deadline_fraction = 0.5;
    Trace trace = TraceGenerator::generate(gen);
    Trace copy = parse_trace_csv(trace_to_csv(trace), trace.topology);
    for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
        EXPECT_EQ(copy.jobs[i].kind, trace.jobs[i].kind) << i;
        EXPECT_EQ(copy.jobs[i].user, trace.jobs[i].user) << i;
    }
}

}  // namespace
}  // namespace ef

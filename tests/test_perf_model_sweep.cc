/**
 * @file
 * Parameterized property sweep of the performance model across the
 * full Table 1 (model, batch) grid and several topologies: feasibility
 * bounds, monotone placement penalties, curve sanity, and agreement
 * between the curve tables the scheduler consumes and the raw model.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/math_util.h"
#include "core/scaling_curve.h"
#include "workload/perf_model.h"

namespace ef {
namespace {

struct GridPoint
{
    DnnModel model;
    int batch;
    int cluster_gpus;
};

std::string
grid_name(const testing::TestParamInfo<GridPoint> &info)
{
    std::string name = model_name(info.param.model) + "_b" +
                       std::to_string(info.param.batch) + "_g" +
                       std::to_string(info.param.cluster_gpus);
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

std::vector<GridPoint>
full_grid()
{
    std::vector<GridPoint> grid;
    for (DnnModel model : all_models()) {
        for (int batch : model_profile(model).batch_sizes) {
            for (int gpus : {32, 128, 512})
                grid.push_back(GridPoint{model, batch, gpus});
        }
    }
    return grid;
}

class PerfModelSweep : public testing::TestWithParam<GridPoint>
{
  protected:
    PerfModelSweep()
        : topo_(TopologySpec::with_total_gpus(GetParam().cluster_gpus)),
          perf_(&topo_)
    {}

    Topology topo_;
    PerfModel perf_;
};

TEST_P(PerfModelSweep, FeasibleRangeIsConsistent)
{
    const GridPoint &p = GetParam();
    GpuCount lo = perf_.min_workers(p.model, p.batch);
    GpuCount hi = perf_.max_workers(p.model, p.batch,
                                    topo_.total_gpus());
    EXPECT_GE(lo, 1);
    EXPECT_LE(lo, hi);
    EXPECT_LE(hi, std::max<GpuCount>(
                      floor_power_of_two(topo_.total_gpus()), lo));
    // Below lo: infeasible. At lo and hi: positive throughput.
    if (lo > 1) {
        EXPECT_EQ(perf_.compact_throughput(p.model, p.batch, lo / 2),
                  0.0);
    }
    EXPECT_GT(perf_.compact_throughput(p.model, p.batch, lo), 0.0);
    EXPECT_GT(perf_.compact_throughput(p.model, p.batch, hi), 0.0);
}

TEST_P(PerfModelSweep, SchedulerCurveMatchesRawModelAtValidPoints)
{
    const GridPoint &p = GetParam();
    std::vector<double> table = perf_.compact_pow2_throughputs(
        p.model, p.batch, topo_.total_gpus());
    ScalingCurve curve = ScalingCurve::from_pow2_table(table);
    for (std::size_t k = 0; k < table.size(); ++k) {
        GpuCount g = GpuCount(1) << k;
        if (table[k] <= 0.0)
            continue;
        // Concavification may lift raw dips, never lower values.
        EXPECT_GE(curve.throughput(g), table[k] - 1e-12)
            << g << " GPUs";
    }
    // ...and never above the raw table's peak (monotone clamp and
    // concave envelope only interpolate between existing values).
    double peak = *std::max_element(table.begin(), table.end());
    for (std::size_t k = 0; k < table.size(); ++k) {
        GpuCount g = GpuCount(1) << k;
        EXPECT_LE(curve.throughput(g), peak + 1e-9) << g << " GPUs";
    }
    EXPECT_TRUE(curve.concave());
    EXPECT_EQ(curve.min_workers(), perf_.min_workers(p.model, p.batch));
}

TEST_P(PerfModelSweep, PlacementPenaltyMonotoneInSpan)
{
    const GridPoint &p = GetParam();
    GpuCount workers = 8;
    if (perf_.min_workers(p.model, p.batch) > workers)
        return;  // cannot run 8 workers at this batch
    if (workers > p.batch)
        return;
    double prev = 1e18;
    for (int span : {1, 2, 4, 8}) {
        if (span > topo_.num_servers())
            break;
        int rack_span =
            (span + topo_.spec().servers_per_rack - 1) /
            topo_.spec().servers_per_rack;
        double tpt = perf_.throughput(
            p.model, p.batch, PlacementShape{workers, span, rack_span});
        EXPECT_LT(tpt, prev) << "span " << span;
        EXPECT_GT(tpt, 0.0) << "span " << span;
        prev = tpt;
    }
}

TEST_P(PerfModelSweep, ThroughputScalesWithBatchAtFixedWorkers)
{
    const GridPoint &p = GetParam();
    // Samples/sec should not collapse when the batch grows: iteration
    // time grows at most linearly in the local batch.
    GpuCount g = perf_.min_workers(p.model, p.batch);
    double iters = perf_.compact_throughput(p.model, p.batch, g);
    double samples_per_s = iters * p.batch;
    EXPECT_GT(samples_per_s, 0.0);
    // And per-sample time stays within 100x of the profile constant
    // (overheads bounded).
    double per_sample = 1.0 / samples_per_s *
                        static_cast<double>(g);
    EXPECT_LT(per_sample,
              model_profile(p.model).per_sample_s * 100.0);
}

INSTANTIATE_TEST_SUITE_P(Table1Grid, PerfModelSweep,
                         testing::ValuesIn(full_grid()), grid_name);

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the deterministic RNG: reproducibility, fork independence,
 * and basic distribution sanity.
 */
#include <gtest/gtest.h>

#include "common/rng.h"

namespace ef {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
        EXPECT_DOUBLE_EQ(a.uniform_real(0, 1), b.uniform_real(0, 1));
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30);
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministicAndIndependent)
{
    Rng parent1(7), parent2(7);
    Rng child1 = parent1.fork();
    Rng child2 = parent2.fork();
    EXPECT_EQ(child1.seed(), child2.seed());
    // Forking again yields a different stream.
    Rng sibling = parent1.fork();
    EXPECT_NE(sibling.seed(), child1.seed());
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniform_int(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
    EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, ExponentialMeanApproximatesInverseRate)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(0.25);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, FlipProbability)
{
    Rng rng(8);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        heads += rng.flip(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weighted_index(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(21);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.log_normal(8.0, 1.5), 0.0);
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the CSV reader/writer used by trace IO and bench dumps.
 */
#include <gtest/gtest.h>

#include "common/csv.h"

namespace ef {
namespace {

TEST(Csv, ParsesHeaderAndRows)
{
    CsvTable t = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
    ASSERT_EQ(t.header.size(), 3u);
    ASSERT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.cell(0, "a"), "1");
    EXPECT_EQ(t.cell(1, "c"), "6");
    EXPECT_EQ(t.column_index("b"), 1);
    EXPECT_EQ(t.column_index("zzz"), -1);
}

TEST(Csv, QuotedFieldsWithCommasAndQuotes)
{
    CsvTable t = parse_csv("name,notes\n\"x,y\",\"say \"\"hi\"\"\"\n");
    EXPECT_EQ(t.cell(0, "name"), "x,y");
    EXPECT_EQ(t.cell(0, "notes"), "say \"hi\"");
}

TEST(Csv, SkipsBlankLinesAndCarriageReturns)
{
    CsvTable t = parse_csv("a,b\r\n\r\n1,2\r\n");
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.cell(0, "b"), "2");
}

TEST(Csv, RoundTrip)
{
    std::vector<std::string> header = {"id", "name"};
    std::vector<std::vector<std::string>> rows = {
        {"1", "plain"},
        {"2", "with,comma"},
        {"3", "with\"quote"},
    };
    CsvTable t = parse_csv(to_csv(header, rows));
    ASSERT_EQ(t.rows.size(), rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        EXPECT_EQ(t.rows[r][0], rows[r][0]);
        EXPECT_EQ(t.rows[r][1], rows[r][1]);
    }
}

TEST(Csv, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/ef_csv_test.csv";
    save_csv(path, {"k", "v"}, {{"x", "1"}});
    CsvTable t = load_csv(path);
    EXPECT_EQ(t.cell(0, "k"), "x");
    EXPECT_EQ(t.cell(0, "v"), "1");
}

}  // namespace
}  // namespace ef

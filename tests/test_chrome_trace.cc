/**
 * @file
 * Chrome trace_event exporter tests: a byte-for-byte golden-file
 * comparison on a hand-scripted event sequence, plus a structural
 * check on the trace recorded from a real simulation run.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/json.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

#ifndef EF_TEST_GOLDEN_DIR
#error "EF_TEST_GOLDEN_DIR must point at tests/golden"
#endif

namespace ef {
namespace {

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** The scripted lifecycle the golden file was generated from: a
 *  crash-recovery replay (6 journal records, 2 rounds re-executed),
 *  then one job admitted via a shard-parallel replan (two planner
 *  shards), scaled 2 -> 4 GPUs, released, finished. Regenerate the
 *  golden by dumping chrome_trace_json(events, 3) for this
 *  sequence. */
std::vector<obs::TraceEvent>
scripted_events()
{
    using obs::EventKind;
    std::vector<obs::TraceEvent> events;
    auto ev = [&](Time t, EventKind k, JobId j, std::int64_t a = 0,
                  std::int64_t b = 0, double x = 0.0,
                  std::vector<std::int64_t> ids = {}) {
        obs::TraceEvent e;
        e.time = t;
        e.kind = k;
        e.job = j;
        e.a = a;
        e.b = b;
        e.x = x;
        e.ids = std::move(ids);
        events.push_back(e);
    };
    ev(0.0, EventKind::kJobSubmit, 7, 4);
    ev(0.5, EventKind::kRecoveryBegin, kInvalidJob, 6, 2);
    ev(0.9, EventKind::kRecoveryEnd, kInvalidJob, 2);
    ev(1.0, EventKind::kJobAdmit, 7);
    ev(1.0, EventKind::kReplanBegin, kInvalidJob, 1);
    ev(1.0, EventKind::kShardPlan, kInvalidJob, 0, 120, 1.2);
    ev(1.0, EventKind::kShardPlan, kInvalidJob, 1, 80, 1.2);
    ev(1.0, EventKind::kReplanEnd, kInvalidJob, 1, 1);
    ev(1.0, EventKind::kAllocChange, 7, 0, 0, 0.0, {0, 1});
    ev(2.5, EventKind::kScale, 7, 2, 4, 0.25);
    ev(2.5, EventKind::kAllocChange, 7, 0, 0, 0.0, {0, 1, 2, 3});
    ev(5.0, EventKind::kAllocChange, 7, 0, 0, 0.0, {});
    ev(5.0, EventKind::kJobFinish, 7);
    return events;
}

TEST(ChromeTrace, MatchesGoldenFileByteForByte)
{
    std::string json = obs::chrome_trace_json(scripted_events(), 3);
    std::string error;
    EXPECT_TRUE(json_validate(json, &error)) << error;
    std::string golden = read_file(std::string(EF_TEST_GOLDEN_DIR) +
                                   "/chrome_trace_small.json");
    EXPECT_EQ(json, golden);
}

TEST(ChromeTrace, ScriptedSpansHaveExpectedGeometry)
{
    std::string json = obs::chrome_trace_json(scripted_events());
    // Job row: the 2-GPU interval runs from admit (1s) to scale (2.5s).
    EXPECT_NE(json.find("\"name\":\"run x2\",\"ph\":\"X\",\"pid\":1,"
                        "\"tid\":7,\"ts\":1000000,\"dur\":1500000"),
              std::string::npos);
    // GPU 2 is held only by the 4-GPU interval.
    EXPECT_NE(json.find("\"name\":\"job 7\",\"ph\":\"X\",\"pid\":2,"
                        "\"tid\":2,\"ts\":2500000,\"dur\":2500000"),
              std::string::npos);
    // Each planner shard gets its own scheduler row (tids 3+s) with a
    // complete span whose duration is the shard's cost units in µs.
    EXPECT_NE(json.find("\"name\":\"shard 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"shard 1\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"shard_plan\",\"cat\":\"shard\","
                        "\"ph\":\"X\",\"pid\":3,\"tid\":3,"
                        "\"ts\":1000000,\"dur\":120"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"shard_plan\",\"cat\":\"shard\","
                        "\"ph\":\"X\",\"pid\":3,\"tid\":4,"
                        "\"ts\":1000000,\"dur\":80"),
              std::string::npos);
    // The recovery replay is an async span on the scheduler row,
    // annotated with the journal-record and replay-round counts.
    EXPECT_NE(json.find("\"name\":\"recovery\",\"cat\":\"recovery\","
                        "\"ph\":\"b\",\"id\":0,\"pid\":3,\"tid\":0,"
                        "\"ts\":500000"),
              std::string::npos);
    EXPECT_NE(json.find("\"journal_records\":6"), std::string::npos);
    EXPECT_NE(json.find("\"replayed\":2"), std::string::npos);
    // The replan is an async begin/end pair with an outcome.
    EXPECT_NE(json.find("\"ph\":\"b\",\"id\":0"), std::string::npos);
    EXPECT_NE(json.find("\"outcome\":\"executed\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(ChromeTrace, EmptyStreamStillValidates)
{
    std::string json = obs::chrome_trace_json({});
    std::string error;
    EXPECT_TRUE(json_validate(json, &error)) << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, RealRunExportsValidTracks)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 10;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());

    obs::RingBufferSink ring(1 << 16);
    std::string json;
    {
        obs::TraceScope scope(&ring);
        sim.run();
        json = obs::chrome_trace_json(ring.events(), ring.dropped());
    }
    std::string error;
    ASSERT_TRUE(json_validate(json, &error)) << error;
    EXPECT_NE(json.find("\"name\":\"jobs\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"GPUs\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"scheduler\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"replan\""), std::string::npos);
    EXPECT_NE(json.find("job_submit"), std::string::npos);
    // The exporter is deterministic: same events, same bytes.
    EXPECT_EQ(json,
              obs::chrome_trace_json(ring.events(), ring.dropped()));
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Fault-injection subsystem tests: injector determinism, scripted
 * fault parsing, per-GPU availability, and end-to-end degradation
 * through the simulator (retries, evictions, demotions, counters).
 */
#include <gtest/gtest.h>

#include <map>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "fault/fault.h"
#include "sched/elastic_flow.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

/** Trivial scheduler: every active job gets its requested GPUs. */
class FixedScheduler : public Scheduler
{
  public:
    std::string name() const override { return "fixed"; }

    SchedulerDecision
    allocate() override
    {
        SchedulerDecision decision;
        GpuCount free = view_->total_gpus();
        for (JobId id : view_->active_jobs()) {
            GpuCount req = view_->spec(id).requested_gpus;
            if (view_->remaining_iterations(id) > 0.0 && req <= free) {
                decision.gpus[id] = req;
                free -= req;
            }
        }
        return decision;
    }
};

/** FixedScheduler that also replans periodically. */
class TickingFixedScheduler : public FixedScheduler
{
  public:
    Time reschedule_interval() const override { return 600.0; }
};

TEST(FaultInjector, ClassStreamsAreIndependent)
{
    FaultConfig base;
    base.seed = 42;
    base.server_mtbf_s = kDay;
    base.gpu_mtbf_s = kDay;

    FaultConfig with_rpc = base;
    with_rpc.rpc_drop_prob = 0.5;

    FaultInjector a(base);
    FaultInjector b(with_rpc);
    // Enabling the RPC class must not perturb the other streams.
    for (int i = 0; i < 8; ++i) {
        (void)b.rpc_attempt_lost();
        EXPECT_DOUBLE_EQ(a.server_crash_delay(), b.server_crash_delay());
        EXPECT_DOUBLE_EQ(a.gpu_fault_delay(32), b.gpu_fault_delay(32));
    }
}

TEST(FaultInjector, LegacyServerSeedReplaysVerbatim)
{
    FaultConfig config;
    config.seed = 7;
    config.server_mtbf_s = kDay;
    config.server_seed = 1;  // legacy FailureConfig seed
    FaultInjector injector(config);
    Rng legacy(1);
    for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(injector.server_crash_delay(),
                         legacy.exponential(1.0 / kDay));
    }
}

TEST(FaultInjector, DisabledClassesDrawNothing)
{
    FaultConfig config;
    config.seed = 3;
    FaultInjector injector(config);
    EXPECT_FALSE(injector.rpc_attempt_lost());
    EXPECT_FALSE(injector.straggler_starts());
    EXPECT_FALSE(injector.checkpoint_write_fails(0, 100.0));
    EXPECT_DOUBLE_EQ(injector.rpc_delay(), 0.0);
    EXPECT_FALSE(config.any());
}

TEST(FaultInjector, BackoffIsBoundedExponential)
{
    FaultConfig config;
    config.rpc_backoff_base_s = 0.2;
    config.rpc_backoff_cap_s = 1.0;
    FaultInjector injector(config);
    EXPECT_DOUBLE_EQ(injector.rpc_backoff(1), 0.2);
    EXPECT_DOUBLE_EQ(injector.rpc_backoff(2), 0.4);
    EXPECT_DOUBLE_EQ(injector.rpc_backoff(3), 0.8);
    EXPECT_DOUBLE_EQ(injector.rpc_backoff(4), 1.0);  // capped
    EXPECT_DOUBLE_EQ(injector.rpc_backoff(10), 1.0);
}

TEST(FaultInjector, ScriptedRpcDropsMatchJobAndTime)
{
    FaultConfig config;
    config.script.push_back({100.0, FaultType::kRpcDrop, 3, 0.0, 2.0});
    config.script.push_back({200.0, FaultType::kRpcDrop, -1, 0.0, 0.0});
    FaultInjector injector(config);
    EXPECT_EQ(injector.take_scripted_rpc_drops(3, 50.0), 0);   // too early
    EXPECT_EQ(injector.take_scripted_rpc_drops(5, 150.0), 0);  // wrong job
    EXPECT_EQ(injector.take_scripted_rpc_drops(3, 150.0), 2);  // magnitude
    EXPECT_EQ(injector.take_scripted_rpc_drops(3, 150.0), 0);  // consumed
    EXPECT_EQ(injector.take_scripted_rpc_drops(9, 250.0), 1);  // wildcard
}

TEST(FaultInjector, ScriptedCkptFailConsumedOnce)
{
    FaultConfig config;
    config.script.push_back({100.0, FaultType::kCkptFail, 2, 0.0, 0.0});
    FaultInjector injector(config);
    EXPECT_FALSE(injector.checkpoint_write_fails(2, 50.0));
    EXPECT_TRUE(injector.checkpoint_write_fails(2, 120.0));
    EXPECT_FALSE(injector.checkpoint_write_fails(2, 130.0));
}

TEST(FaultScript, ParsesAllFields)
{
    std::vector<FaultEvent> script = parse_fault_script(
        "time,type,target,duration,magnitude\n"
        "100,server-crash,1,3600,0\n"
        "200.5,gpu-fault,7,0,0\n"
        "300,straggler,2,600,2.5\n"
        "400,rpc-drop,0,0,3\n"
        "500,ckpt-fail,-1,0,0\n");
    ASSERT_EQ(script.size(), 5u);
    EXPECT_EQ(script[0].type, FaultType::kServerCrash);
    EXPECT_DOUBLE_EQ(script[0].duration_s, 3600.0);
    EXPECT_EQ(script[1].type, FaultType::kGpuFault);
    EXPECT_DOUBLE_EQ(script[1].time, 200.5);
    EXPECT_EQ(script[2].type, FaultType::kStraggler);
    EXPECT_DOUBLE_EQ(script[2].magnitude, 2.5);
    EXPECT_EQ(script[3].type, FaultType::kRpcDrop);
    EXPECT_EQ(script[4].target, -1);
}

TEST(FaultScript, ParsesArrivalStorms)
{
    std::vector<FaultEvent> script = parse_fault_script(
        "time,type,target,duration,magnitude\n"
        "50,arrival-storm,-1,600,4\n");
    ASSERT_EQ(script.size(), 1u);
    EXPECT_EQ(script[0].type, FaultType::kArrivalStorm);
    EXPECT_DOUBLE_EQ(script[0].duration_s, 600.0);
    EXPECT_DOUBLE_EQ(script[0].magnitude, 4.0);
}

TEST(FaultInjector, ArrivalStormsMultiplyAndCompound)
{
    FaultConfig config;
    config.script.push_back(
        {100.0, FaultType::kArrivalStorm, -1, 200.0, 3.0});
    config.script.push_back(
        {150.0, FaultType::kArrivalStorm, -1, 50.0, 2.0});
    FaultInjector injector(config);
    EXPECT_DOUBLE_EQ(injector.arrival_rate_multiplier(0.0), 1.0);
    EXPECT_DOUBLE_EQ(injector.arrival_rate_multiplier(120.0), 3.0);
    // Overlap compounds multiplicatively.
    EXPECT_DOUBLE_EQ(injector.arrival_rate_multiplier(160.0), 6.0);
    EXPECT_DOUBLE_EQ(injector.arrival_rate_multiplier(250.0), 3.0);
    EXPECT_DOUBLE_EQ(injector.arrival_rate_multiplier(300.0), 1.0);
    // Window ends are half-open: [time, time + duration).
    EXPECT_DOUBLE_EQ(injector.arrival_rate_multiplier(99.9), 1.0);
}

TEST(FaultScriptDeathTest, MalformedRowsNameTheLine)
{
    EXPECT_DEATH(parse_fault_script("time,type,target\n"
                                    "abc,server-crash,1\n"),
                 "line 2");
    EXPECT_DEATH(parse_fault_script("time,type,target\n"
                                    "100,server-crash,1\n"
                                    "200,martian-attack,1\n"),
                 "line 3");
    EXPECT_DEATH(parse_fault_script("time,type,target\n"
                                    "100,server-crash\n"),
                 "line 2");
    EXPECT_DEATH(parse_fault_script("time,target\n100,1\n"),
                 "time,type,target");
}

TEST(PlacementGpuFaults, DownGpuIsSkippedByAllStrategies)
{
    Topology topo(TopologySpec::testbed_32());
    for (PlacementStrategy strategy :
         {PlacementStrategy::kBestFitCompact, PlacementStrategy::kFirstFit,
          PlacementStrategy::kScatter}) {
        PlacementManager pm(&topo);
        pm.set_gpu_available(0, false);
        EXPECT_EQ(pm.available_gpus(), 31);
        EXPECT_EQ(pm.idle_gpus(), 31);
        PlacementResult result = pm.place(1, 8, strategy, false);
        ASSERT_TRUE(result.ok);
        for (GpuCount g : result.gpus)
            EXPECT_NE(g, 0);
        pm.validate();
    }
}

TEST(PlacementGpuFaults, RepairRestoresCapacity)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PlacementManager pm(&topo);
    pm.set_gpu_available(3, false);
    EXPECT_FALSE(pm.gpu_available(3));
    EXPECT_EQ(pm.idle_gpus(), 15);
    // A whole-server request on server 0 no longer fits there.
    PlacementResult r = pm.place(1, 8, PlacementStrategy::kBestFitCompact,
                                 false);
    ASSERT_TRUE(r.ok);
    for (GpuCount g : r.gpus)
        EXPECT_GE(g, 8);  // placed on server 1
    pm.set_gpu_available(3, true);
    EXPECT_TRUE(pm.gpu_available(3));
    EXPECT_EQ(pm.idle_gpus(), 8);
    pm.validate();
}

TEST(PlacementGpuFaults, ServerDrainAccountsForDownGpus)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PlacementManager pm(&topo);
    pm.set_gpu_available(2, false);
    // Server 0 has 7 free + 1 down = 8: it still counts as drained.
    pm.set_server_available(0, false);
    EXPECT_EQ(pm.available_gpus(), 8);
    pm.set_server_available(0, true);
    EXPECT_EQ(pm.available_gpus(), 15);
    pm.validate();
}

TEST(PlacementGpuFaultsDeathTest, OwnedGpuCannotGoDown)
{
    Topology topo(TopologySpec::with_total_gpus(16));
    PlacementManager pm(&topo);
    PlacementResult r = pm.place(1, 4, PlacementStrategy::kFirstFit, false);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(pm.owner_of(r.gpus[0]), 1);
    EXPECT_DEATH(pm.set_gpu_available(r.gpus[0], false), "released");
}

// --- end-to-end degradation through the simulator -----------------------

TEST(FaultE2E, DisabledInjectionIsByteIdenticalPinned)
{
    // Regression anchor: with every fault class at rate 0 the injector
    // is never constructed and the run must stay byte-identical to the
    // pre-fault-layer simulator. These constants were captured from
    // the seed; EXPECT_EQ (not NEAR) on purpose.
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 20;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), SimConfig{});
    RunResult result = sim.run();

    EXPECT_EQ(result.jobs.size(), 20u);
    EXPECT_EQ(result.admitted_count(), 14u);
    EXPECT_EQ(result.finished_count(), 14u);
    EXPECT_EQ(result.makespan, 15493.044547805748);
    EXPECT_EQ(result.total_gpu_seconds(), 369450.60321067006);

    const std::map<JobId, double> finish = {
        {0, 2512.234087531413},   {1, 12569.939762592578},
        {2, 10580.795437908575},  {3, 6584.0496610608134},
        {6, 6367.3047096697956},  {7, 7595.4668990500531},
        {8, 9626.8958148920956},  {9, 8114.3659252773996},
        {11, 11240.061856931301}, {12, 10761.758492698513},
        {15, 9779.7710631470654}, {16, 13039.005968182129},
        {17, 15493.044547805748}, {18, 14485.652272362015},
    };
    for (const JobOutcome &job : result.jobs) {
        auto it = finish.find(job.spec.id);
        if (it == finish.end()) {
            EXPECT_FALSE(job.admitted) << job.spec.id;
        } else {
            EXPECT_TRUE(job.finished) << job.spec.id;
            EXPECT_EQ(job.finish_time, it->second) << job.spec.id;
        }
        EXPECT_FALSE(job.demoted) << job.spec.id;
    }
    EXPECT_EQ(result.rpc_retries, 0);
    EXPECT_EQ(result.rpc_gave_up, 0);
    EXPECT_EQ(result.stragglers_observed, 0);
    EXPECT_EQ(result.gpu_faults, 0);
    EXPECT_EQ(result.ckpt_failures, 0);
    EXPECT_EQ(result.slo_demotions, 0);
}

TEST(FaultE2E, LegacyFailureConfigReplaysPinned)
{
    // The legacy FailureConfig path now runs through the injector's
    // server-crash class; the draw sequence must replay byte-identical
    // to the seed (captured constant below).
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 15;
    Trace trace = TraceGenerator::generate(gen);
    SimConfig config;
    config.failures.enabled = true;
    config.failures.server_mtbf_s = kDay;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get(), config);
    RunResult result = sim.run();
    EXPECT_EQ(result.makespan, 15420.712575184702);
    EXPECT_EQ(result.finished_count(), 10u);
}

TEST(FaultE2EDeathTest, DualServerCrashConfigDies)
{
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 0.0, kHour, 2.0)
                      .build();
    SimConfig config;
    config.failures.enabled = true;
    config.faults.server_mtbf_s = kDay;
    FixedScheduler scheduler;
    EXPECT_DEATH(Simulator sim(trace, &scheduler, config), "pick one");
}

TEST(FaultE2E, ScriptedRpcDropIsRetriedThenApplied)
{
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 0.0, kHour, 2.0)
                      .build();
    auto run_with = [&trace](int forced_drops) {
        FixedScheduler scheduler;
        SimConfig config;
        config.overhead.enabled = false;
        if (forced_drops > 0) {
            config.faults.script.push_back(
                {0.0, FaultType::kRpcDrop, 0, 0.0,
                 static_cast<double>(forced_drops)});
        }
        Simulator sim(trace, &scheduler, config);
        return sim.run();
    };
    RunResult clean = run_with(0);
    RunResult faulty = run_with(2);
    ASSERT_TRUE(clean.jobs[0].finished);
    ASSERT_TRUE(faulty.jobs[0].finished);
    EXPECT_EQ(faulty.rpc_retries, 2);
    EXPECT_EQ(faulty.rpc_gave_up, 0);
    // Both lost attempts charged bounded exponential backoff
    // (0.2 + 0.4 s) to the launch.
    EXPECT_NEAR(faulty.jobs[0].finish_time,
                clean.jobs[0].finish_time + 0.6, 1e-6);
}

TEST(FaultE2E, RpcGiveUpIsReconciledByLaterReplan)
{
    // The launch command is lost beyond rpc_max_retries: the job stays
    // suspended until the next periodic replan reissues it.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 0.0, kHour, 3.0)
                      .build();
    TickingFixedScheduler scheduler;
    SimConfig config;
    config.overhead.enabled = false;
    config.faults.script.push_back(
        {0.0, FaultType::kRpcDrop, 0, 0.0, 10.0});
    Simulator sim(trace, &scheduler, config);
    RunResult result = sim.run();
    EXPECT_EQ(result.rpc_gave_up, 1);
    EXPECT_EQ(result.rpc_retries, 5);  // default rpc_max_retries
    ASSERT_TRUE(result.jobs[0].finished);
    EXPECT_DOUBLE_EQ(result.jobs[0].first_run_time, 600.0);
    EXPECT_TRUE(result.jobs[0].met_deadline());
}

TEST(FaultE2E, ScriptedGpuFaultEvictsOnlyColocatedJob)
{
    // Two compact 8-GPU jobs on different servers; GPU 0 fails. Only
    // its owner is evicted and rolled back; the other job never
    // notices.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kVgg16, 256, 8, 0.0, kHour, 4.0)
                      .slo(DnnModel::kVgg16, 256, 8, 0.0, kHour, 4.0)
                      .build();
    auto run_with = [&trace](bool fault) {
        FixedScheduler scheduler;
        SimConfig config;
        config.overhead.enabled = false;
        if (fault) {
            config.faults.script.push_back(
                {1000.0, FaultType::kGpuFault, 0, 10.0 * kHour, 0.0});
        }
        Simulator sim(trace, &scheduler, config);
        return sim.run();
    };
    RunResult clean = run_with(false);
    RunResult faulty = run_with(true);
    EXPECT_EQ(faulty.gpu_faults, 1);
    EXPECT_EQ(faulty.jobs[0].failures_suffered, 1);
    EXPECT_EQ(faulty.jobs[1].failures_suffered, 0);
    ASSERT_TRUE(faulty.jobs[0].finished);
    ASSERT_TRUE(faulty.jobs[1].finished);
    // The victim lost progress back to its checkpoint; the co-located
    // job's trajectory is untouched.
    EXPECT_GT(faulty.jobs[0].finish_time, clean.jobs[0].finish_time);
    EXPECT_DOUBLE_EQ(faulty.jobs[1].finish_time,
                     clean.jobs[1].finish_time);
}

TEST(FaultE2E, SloJobDemotedExactlyOnceAfterCrash)
{
    // Both servers crash mid-run for longer than the job's remaining
    // slack: ElasticFlow finds the SLO unmeetable, demotes the job to
    // best-effort exactly once (despite replanning every slot while
    // the cluster is down), and lets it finish late after repair.
    Trace trace = TraceBuilder(TopologySpec::with_total_gpus(16))
                      .slo(DnnModel::kVgg16, 256, 8, 0.0, 2.0 * kHour,
                           1.05)
                      .build();
    SimConfig config;
    config.faults.script.push_back(
        {1800.0, FaultType::kServerCrash, 0, 2.0 * kHour, 0.0});
    config.faults.script.push_back(
        {1800.0, FaultType::kServerCrash, 1, 2.0 * kHour, 0.0});
    ElasticFlowScheduler scheduler;
    Simulator sim(trace, &scheduler, config);
    RunResult result = sim.run();

    EXPECT_EQ(result.slo_demotions, 1);
    EXPECT_TRUE(result.jobs[0].demoted);
    EXPECT_EQ(result.jobs[0].failures_suffered, 1);
    ASSERT_TRUE(result.jobs[0].finished);
    EXPECT_FALSE(result.jobs[0].met_deadline());
}

TEST(FaultE2E, RateStragglersSlowJobsAndAreCounted)
{
    // straggler_prob = 1 with an effectively infinite window: the job
    // runs its whole life at half speed.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 0.0, kHour, 4.0)
                      .build();
    auto run_with = [&trace](double prob) {
        FixedScheduler scheduler;
        SimConfig config;
        config.overhead.enabled = false;
        config.faults.straggler_prob = prob;
        config.faults.straggler_slowdown = 2.0;
        config.faults.straggler_duration_s = 10.0 * kDay;
        Simulator sim(trace, &scheduler, config);
        return sim.run();
    };
    RunResult clean = run_with(0.0);
    RunResult slow = run_with(1.0);
    EXPECT_EQ(clean.stragglers_observed, 0);
    EXPECT_EQ(slow.stragglers_observed, 1);
    ASSERT_TRUE(slow.jobs[0].finished);
    EXPECT_NEAR(slow.jobs[0].finish_time,
                2.0 * clean.jobs[0].finish_time, 5.0);
}

TEST(FaultE2E, ScriptedStragglerWindowEnds)
{
    // A bounded scripted straggler episode runs the job at 1/factor
    // speed for the window, costing (1 - 1/factor) x window, then
    // full speed resumes.
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 0.0, kHour, 4.0)
                      .build();
    auto run_with = [&trace](bool straggle) {
        FixedScheduler scheduler;
        SimConfig config;
        config.overhead.enabled = false;
        if (straggle) {
            config.faults.script.push_back(
                {100.0, FaultType::kStraggler, 0, 600.0, 3.0});
        }
        Simulator sim(trace, &scheduler, config);
        return sim.run();
    };
    RunResult clean = run_with(false);
    RunResult slow = run_with(true);
    EXPECT_EQ(slow.stragglers_observed, 1);
    ASSERT_TRUE(slow.jobs[0].finished);
    EXPECT_NEAR(slow.jobs[0].finish_time,
                clean.jobs[0].finish_time + (1.0 - 1.0 / 3.0) * 600.0,
                5.0);
}

TEST(FaultE2E, CheckpointWriteFailuresAreCounted)
{
    // Every checkpoint write fails; the launch-time checkpoint is the
    // only scale event, so exactly one failure — and the job still
    // finishes (the in-memory run is unaffected until an eviction).
    Trace trace = TraceBuilder(TopologySpec::testbed_32())
                      .slo(DnnModel::kResNet50, 128, 4, 0.0, kHour, 2.0)
                      .build();
    FixedScheduler scheduler;
    SimConfig config;
    config.overhead.enabled = false;
    config.faults.ckpt_failure_prob = 1.0;
    Simulator sim(trace, &scheduler, config);
    RunResult result = sim.run();
    EXPECT_EQ(result.ckpt_failures, 1);
    EXPECT_TRUE(result.jobs[0].finished);
}

TEST(FaultE2E, RunsAreDeterministicUnderAllFaultClasses)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 15;
    Trace trace = TraceGenerator::generate(gen);
    auto run_once = [&trace]() {
        SimConfig config;
        config.faults.seed = 9;
        config.faults.server_mtbf_s = 2.0 * kDay;
        config.faults.gpu_mtbf_s = kDay;
        config.faults.rpc_drop_prob = 0.1;
        config.faults.straggler_prob = 0.2;
        config.faults.ckpt_failure_prob = 0.2;
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get(), config);
        return sim.run();
    };
    RunResult a = run_once();
    RunResult b = run_once();
    EXPECT_EQ(a.rpc_retries, b.rpc_retries);
    EXPECT_EQ(a.gpu_faults, b.gpu_faults);
    EXPECT_EQ(a.stragglers_observed, b.stragglers_observed);
    EXPECT_EQ(a.ckpt_failures, b.ckpt_failures);
    EXPECT_EQ(a.slo_demotions, b.slo_demotions);
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].finished, b.jobs[i].finished) << i;
        EXPECT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time) << i;
    }
}

}  // namespace
}  // namespace ef

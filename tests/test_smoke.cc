/**
 * @file
 * End-to-end smoke test: every scheduler completes a small trace
 * without tripping an internal invariant, and ElasticFlow's headline
 * property holds — admitted jobs meet their deadlines.
 */
#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

TEST(Smoke, AllSchedulersRunSmallTrace)
{
    TraceGenConfig config = testbed_small_preset();
    Trace trace = TraceGenerator::generate(config);
    ASSERT_EQ(trace.jobs.size(), 25u);

    for (const std::string &name : all_scheduler_names()) {
        SCOPED_TRACE(name);
        auto scheduler = make_scheduler(name);
        Simulator sim(trace, scheduler.get());
        RunResult result = sim.run();
        EXPECT_EQ(result.jobs.size(), trace.jobs.size());
        // Every admitted job eventually finishes.
        for (const JobOutcome &job : result.jobs) {
            if (job.admitted) {
                EXPECT_TRUE(job.finished) << "job " << job.spec.id;
            }
        }
    }
}

TEST(Smoke, ElasticFlowMeetsAdmittedDeadlines)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();

    int admitted = 0;
    for (const JobOutcome &job : result.jobs) {
        if (!job.admitted)
            continue;
        ++admitted;
        EXPECT_TRUE(job.finished) << "job " << job.spec.id;
        EXPECT_LE(job.finish_time, job.spec.deadline)
            << "job " << job.spec.id << " missed its deadline";
    }
    EXPECT_GT(admitted, 0);
    EXPECT_EQ(result.replan_failures, 0);
}

}  // namespace
}  // namespace ef

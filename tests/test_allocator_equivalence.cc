/**
 * @file
 * Equivalence fuzz: the incremental (lazy-heap) run_allocation must
 * produce byte-identical outcomes to run_allocation_reference, the
 * direct transcription of Algorithm 2, on randomized instances.
 *
 * Instances are generated from fixed seeds so failures reproduce.
 * Coverage spans best-effort-only, SLO-only, and mixed queues, both
 * fill directions for the minimum-share plans, and cluster sizes from
 * starved to abundant. Min-share plans come from run_admission over
 * the same state, exactly as elastic_allocate wires them.
 */
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "core/allocator.h"

namespace ef {
namespace {

ScalingCurve
random_curve(std::mt19937 &rng)
{
    std::uniform_int_distribution<int> entries(1, 8);
    std::uniform_real_distribution<double> base(0.5, 4.0);
    std::uniform_real_distribution<double> gain(1.0, 2.0);
    int count = entries(rng);
    std::vector<double> table;
    double tpt = base(rng);
    for (int k = 0; k < count; ++k) {
        table.push_back(tpt);
        tpt *= gain(rng);
    }
    return ScalingCurve::from_pow2_table(std::move(table));
}

PlanningJob
random_job(std::mt19937 &rng, JobId id, Time now, bool best_effort)
{
    PlanningJob job;
    job.id = id;
    job.curve = random_curve(rng);
    std::uniform_real_distribution<double> iters(10.0, 5000.0);
    job.remaining_iterations = iters(rng);
    if (!best_effort) {
        // Deadline between "tight" and "slack" relative to the job's
        // single-GPU runtime; admission filters the infeasible ones.
        double solo = job.remaining_iterations /
                      job.curve.throughput(job.curve.min_workers());
        std::uniform_real_distribution<double> factor(0.3, 4.0);
        job.deadline = now + solo * factor(rng);
    }
    return job;
}

struct Shape
{
    int slo_jobs = 0;
    int best_effort_jobs = 0;
    GpuCount total_gpus = 0;
    FillDirection direction = FillDirection::kEarliest;
};

/**
 * Generate one instance from @p seed, run both implementations, and
 * compare. Returns false when admission rejected the SLO set (the
 * instance is skipped, not counted).
 */
bool
check_one(std::uint32_t seed, const Shape &shape)
{
    std::mt19937 rng(seed);
    const Time now = 137.5;  // deliberately not slot-aligned

    PlannerConfig config;
    config.total_gpus = shape.total_gpus;
    config.slot_seconds = 60.0;
    config.direction = shape.direction;

    std::vector<PlanningJob> slo_jobs;
    std::vector<PlanningJob> best_effort_jobs;
    JobId next_id = 1;
    for (int i = 0; i < shape.slo_jobs; ++i)
        slo_jobs.push_back(random_job(rng, next_id++, now, false));
    for (int j = 0; j < shape.best_effort_jobs; ++j)
        best_effort_jobs.push_back(random_job(rng, next_id++, now, true));

    std::map<JobId, SlotPlan> min_shares;
    if (!slo_jobs.empty()) {
        AdmissionOutcome admitted =
            run_admission(config, now, slo_jobs);
        if (!admitted.feasible)
            return false;
        min_shares = std::move(admitted.plans);
    }

    AllocationOutcome fast = run_allocation(config, now, slo_jobs,
                                            min_shares,
                                            best_effort_jobs);
    AllocationOutcome slow = run_allocation_reference(
        config, now, slo_jobs, min_shares, best_effort_jobs);

    std::ostringstream label;
    label << "seed=" << seed << " slo=" << shape.slo_jobs
          << " be=" << shape.best_effort_jobs
          << " gpus=" << shape.total_gpus << " dir="
          << (shape.direction == FillDirection::kEarliest ? "earliest"
                                                          : "latest");
    EXPECT_EQ(fast.gpus_now, slow.gpus_now) << label.str();
    EXPECT_EQ(fast.unallocated, slow.unallocated) << label.str();
    EXPECT_EQ(fast.plans.size(), slow.plans.size()) << label.str();
    for (const auto &[id, plan] : slow.plans) {
        auto it = fast.plans.find(id);
        EXPECT_TRUE(it != fast.plans.end())
            << label.str() << " job " << id;
        if (it != fast.plans.end()) {
            EXPECT_EQ(it->second.gpus, plan.gpus)
                << label.str() << " job " << id;
        }
    }
    return true;
}

int
run_shapes(const std::vector<Shape> &shapes, std::uint32_t seed_base,
           int seeds_per_shape)
{
    int compared = 0;
    for (std::size_t s = 0; s < shapes.size(); ++s) {
        for (int k = 0; k < seeds_per_shape; ++k) {
            std::uint32_t seed =
                seed_base + static_cast<std::uint32_t>(s) * 1000 +
                static_cast<std::uint32_t>(k);
            if (check_one(seed, shapes[s]))
                ++compared;
        }
    }
    return compared;
}

TEST(AllocatorEquivalence, BestEffortOnly)
{
    std::vector<Shape> shapes = {
        {0, 1, 4, FillDirection::kEarliest},
        {0, 5, 16, FillDirection::kEarliest},
        {0, 20, 32, FillDirection::kEarliest},
        {0, 40, 8, FillDirection::kEarliest},  // starved
    };
    // No admission step, so every seed yields a comparison.
    EXPECT_EQ(run_shapes(shapes, 10'000, 20), 80);
}

TEST(AllocatorEquivalence, SloOnly)
{
    std::vector<Shape> shapes = {
        {1, 0, 8, FillDirection::kEarliest},
        {6, 0, 32, FillDirection::kEarliest},
        {6, 0, 32, FillDirection::kLatest},
        {15, 0, 64, FillDirection::kLatest},
        {10, 0, 16, FillDirection::kEarliest},  // contended
    };
    int compared = run_shapes(shapes, 20'000, 25);
    EXPECT_GE(compared, 60) << "admission rejected too many instances "
                            << "for the fuzz to be meaningful";
}

TEST(AllocatorEquivalence, MixedQueues)
{
    std::vector<Shape> shapes = {
        {3, 3, 16, FillDirection::kEarliest},
        {8, 8, 64, FillDirection::kLatest},
        {12, 4, 32, FillDirection::kEarliest},
        {4, 12, 24, FillDirection::kLatest},
        {10, 10, 128, FillDirection::kEarliest},  // abundant
        // Deep greedy runs: enough headroom for long upgrade chains,
        // exercising every skip certificate in the incremental path.
        {60, 20, 512, FillDirection::kLatest},
    };
    int compared = run_shapes(shapes, 30'000, 25);
    EXPECT_GE(compared, 60) << "admission rejected too many instances "
                            << "for the fuzz to be meaningful";
}

}  // namespace
}  // namespace ef

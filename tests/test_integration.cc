/**
 * @file
 * Integration tests: fluid-simulator vs. iteration-granular executor
 * fidelity (the analog of the paper's <=3% simulator error claim),
 * end-to-end scheduler ordering on the evaluation traces, and
 * determinism.
 */
#include <gtest/gtest.h>

#include <map>

#include "exec/executor.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

TEST(Fidelity, FluidSimMatchesExecutorOnFixedAllocation)
{
    Topology topo(TopologySpec::testbed_32());
    PerfModel perf(&topo);
    OverheadModel overhead{OverheadConfig{}};

    TraceBuilder builder(TopologySpec::testbed_32());
    builder.slo(DnnModel::kVgg16, 256, 8, 0.0, 2.0 * kHour, 2.0);
    Trace trace = builder.build();
    const JobSpec &spec = trace.jobs[0];

    // Executor: run on GPUs 0..7 from t=0.
    JobExecution exec(spec, &perf, &overhead);
    exec.scale(0.0, {0, 1, 2, 3, 4, 5, 6, 7});
    exec.advance(1e9);
    ASSERT_TRUE(exec.finished());
    Time exec_finish = exec.last_progress_time();

    // Fluid simulator with a scheduler that grants exactly 8 GPUs.
    class EightScheduler : public Scheduler
    {
      public:
        std::string name() const override { return "eight"; }
        SchedulerDecision
        allocate() override
        {
            SchedulerDecision d;
            for (JobId id : view_->active_jobs()) {
                if (view_->remaining_iterations(id) > 0)
                    d.gpus[id] = 8;
            }
            return d;
        }
    };
    EightScheduler scheduler;
    Simulator sim(trace, &scheduler);
    RunResult result = sim.run();
    ASSERT_TRUE(result.jobs[0].finished);

    double err = std::abs(result.jobs[0].finish_time - exec_finish) /
                 exec_finish;
    EXPECT_LT(err, 0.03) << "fluid " << result.jobs[0].finish_time
                         << " vs executor " << exec_finish;
}

TEST(Fidelity, ScriptedRescaleScheduleWithinThreePercent)
{
    Topology topo(TopologySpec::testbed_128());
    PerfModel perf(&topo);
    OverheadModel overhead{OverheadConfig{}};

    JobSpec spec;
    spec.id = 9;
    spec.model = DnnModel::kBert;
    spec.global_batch = 128;
    spec.iterations = 40000;
    spec.submit_time = 0.0;

    // A schedule of (time, gpu set) the elastic platform might issue.
    std::vector<std::pair<Time, std::vector<GpuCount>>> schedule = {
        {0.0, {0, 1}},
        {1800.0, {0, 1, 2, 3}},
        {3600.0, {0, 1, 2, 3, 8, 9, 10, 11}},
        {5400.0, {0, 1}},
        {5460.0, {16, 17}},  // migration
    };

    // Executor path.
    JobExecution exec(spec, &perf, &overhead);
    for (const auto &[time, gpus] : schedule) {
        if (exec.finished())
            break;
        exec.scale(time, gpus);
    }
    exec.advance(1e9);
    ASSERT_TRUE(exec.finished());

    // Fluid path: integrate throughput over the same intervals, with
    // the same overhead pauses.
    double remaining = static_cast<double>(spec.iterations);
    Time fluid_finish = 0.0;
    Time paused_until = 0.0;
    GpuCount prev = 0;
    for (std::size_t i = 0; i < schedule.size() && remaining > 0; ++i) {
        Time start = schedule[i].first;
        Time end = i + 1 < schedule.size() ? schedule[i + 1].first : 1e18;
        const auto &gpus = schedule[i].second;
        Time pause = overhead.scaling_seconds(
            spec.model, prev, static_cast<GpuCount>(gpus.size()));
        if (prev == static_cast<GpuCount>(gpus.size()))
            pause = overhead.migration_seconds(spec.model, prev);
        paused_until = start + pause;
        prev = static_cast<GpuCount>(gpus.size());
        double tpt = perf.throughput(spec.model, spec.global_batch,
                                     perf.shape_of(gpus));
        Time run_start = std::max(start, paused_until);
        if (run_start >= end)
            continue;
        double possible = tpt * (end - run_start);
        if (possible >= remaining) {
            fluid_finish = run_start + remaining / tpt;
            remaining = 0;
        } else {
            remaining -= possible;
        }
    }
    ASSERT_EQ(remaining, 0.0);

    double err =
        std::abs(exec.last_progress_time() - fluid_finish) / fluid_finish;
    EXPECT_LT(err, 0.03) << "executor " << exec.last_progress_time()
                         << " vs fluid " << fluid_finish;
}

TEST(EndToEnd, ElasticFlowBeatsEveryBaselineOnLargeTrace)
{
    Trace trace = TraceGenerator::generate(testbed_large_preset());
    std::map<std::string, double> ratio;
    for (const std::string &name : all_scheduler_names()) {
        auto scheduler = make_scheduler(name);
        Simulator sim(trace, scheduler.get());
        ratio[name] = sim.run().deadline_ratio();
    }
    for (const auto &[name, r] : ratio) {
        if (name == "elasticflow")
            continue;
        EXPECT_GT(ratio["elasticflow"], r) << name;
    }
    // Headline factors hold in spirit: EDF and Gandiva far behind,
    // deadline-aware Chronus the closest non-elastic policy.
    EXPECT_GT(ratio["elasticflow"] / ratio["edf"], 2.0);
    EXPECT_GT(ratio["elasticflow"] / ratio["gandiva"], 2.5);
    EXPECT_LT(ratio["elasticflow"] / ratio["pollux"], 3.0);
}

TEST(EndToEnd, AblationOrderingMatchesFig9)
{
    // EDF < EDF+one-ingredient <= ElasticFlow on a contended cluster.
    TraceGenConfig config = testbed_large_preset();
    config.num_jobs = 120;
    Trace trace = TraceGenerator::generate(config);
    std::map<std::string, double> ratio;
    for (const std::string name :
         {"edf", "edf+admission", "edf+elastic", "elasticflow"}) {
        auto scheduler = make_scheduler(name);
        Simulator sim(trace, scheduler.get());
        ratio[name] = sim.run().deadline_ratio();
    }
    EXPECT_GE(ratio["edf+admission"], ratio["edf"]);
    EXPECT_GT(ratio["edf+elastic"], ratio["edf"]);
    EXPECT_GE(ratio["elasticflow"], ratio["edf+admission"]);
    EXPECT_GE(ratio["elasticflow"] + 0.05, ratio["edf+elastic"]);
}

TEST(EndToEnd, DeterministicAcrossRuns)
{
    Trace trace = TraceGenerator::generate(testbed_small_preset());
    auto run_once = [&trace]() {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get());
        return sim.run();
    };
    RunResult a = run_once();
    RunResult b = run_once();
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].admitted, b.jobs[i].admitted) << i;
        EXPECT_EQ(a.jobs[i].finished, b.jobs[i].finished) << i;
        if (a.jobs[i].finished) {
            EXPECT_DOUBLE_EQ(a.jobs[i].finish_time,
                             b.jobs[i].finish_time)
                << i;
        }
    }
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(EndToEnd, BestEffortMixKeepsSloGuarantee)
{
    TraceGenConfig config = testbed_small_preset();
    config.num_jobs = 40;
    config.best_effort_fraction = 0.3;
    Trace trace = TraceGenerator::generate(config);
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        if (job.spec.kind == JobKind::kSlo && job.admitted) {
            EXPECT_TRUE(job.met_deadline()) << job.spec.id;
        }
        if (job.spec.kind == JobKind::kBestEffort) {
            EXPECT_TRUE(job.finished) << job.spec.id;
        }
    }
}

TEST(EndToEnd, ClusterPresetsRunQuickly)
{
    // Every Fig. 8(b) preset simulates end to end (smoke for the
    // bench); cap the job count for test speed.
    for (int preset : {1, 5, 9}) {
        TraceGenConfig config = cluster_preset(preset);
        config.num_jobs = std::min(config.num_jobs, 60);
        Trace trace = TraceGenerator::generate(config);
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get());
        RunResult result = sim.run();
        EXPECT_EQ(result.jobs.size(), trace.jobs.size()) << preset;
    }
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for the greedy resource allocator (Algorithm 2): the Fig. 3
 * motivating example, marginal-return ordering, constraint (7), and
 * best-effort handling (§4.4).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/allocator.h"

namespace ef {
namespace {

PlannerConfig
unit_config(GpuCount gpus)
{
    PlannerConfig config;
    config.total_gpus = gpus;
    config.slot_seconds = 1.0;
    return config;
}

PlanningJob
make_job(JobId id, std::vector<double> table, double remaining,
         Time deadline)
{
    PlanningJob job;
    job.id = id;
    job.curve = ScalingCurve::from_pow2_table(std::move(table));
    job.remaining_iterations = remaining;
    job.deadline = deadline;
    return job;
}

/** Admission + allocation in one call (what the scheduler does). */
AllocationOutcome
plan(const PlannerConfig &config, std::vector<PlanningJob> slo,
     std::vector<PlanningJob> best_effort = {})
{
    AdmissionOutcome admission = run_admission(config, 0.0, slo);
    EXPECT_TRUE(admission.feasible);
    return run_allocation(config, 0.0, slo, admission.plans,
                          best_effort);
}

TEST(Allocator, Figure3BothJobsMeetDeadlines)
{
    // Paper Fig. 3: curve T(1)=1, T(2)=1.5; jobs A (D=3) and B
    // (D=3.5), both M=3, two workers. EDF serialized them and missed
    // B; the optimal allocation runs both on one worker.
    std::vector<PlanningJob> jobs = {
        make_job(1, {1.0, 1.5}, 3.0, 3.0),
        make_job(2, {1.0, 1.5}, 3.0, 3.5),
    };
    AllocationOutcome outcome = plan(unit_config(2), jobs);
    EXPECT_EQ(outcome.gpus_now.at(1), 1);
    EXPECT_EQ(outcome.gpus_now.at(2), 1);
    for (const PlanningJob &job : jobs) {
        EXPECT_LE(plan_finish_seconds(job.curve,
                                      outcome.plans.at(job.id),
                                      job.remaining_iterations, 1.0),
                  job.deadline + 1e-9);
    }
}

TEST(Allocator, ExtraGpuGoesToHighestMarginalReturn)
{
    // Job 1 scales almost linearly (its bump finishes the job within
    // the slot, wasting no GPU time); job 2 barely scales (its bump
    // spills into another slot, costing one extra GPU-second). The
    // spare GPU must speed up job 1.
    std::vector<PlanningJob> jobs = {
        make_job(1, {1.0, 1.9}, 1.8, 10.0),
        make_job(2, {1.0, 1.1}, 1.8, 10.0),
    };
    AllocationOutcome outcome = plan(unit_config(3), jobs);
    EXPECT_EQ(outcome.gpus_now.at(1), 2);
    EXPECT_EQ(outcome.gpus_now.at(2), 1);
}

TEST(Allocator, Constraint7NoUsefulGpuLeftIdle)
{
    // One job, plenty of GPUs: it should be boosted to max_useful.
    std::vector<PlanningJob> jobs = {
        make_job(1, {1.0, 1.5, 2.0}, 10.0, 100.0),
    };
    AllocationOutcome outcome = plan(unit_config(8), jobs);
    EXPECT_EQ(outcome.gpus_now.at(1), 4);  // max_useful
    EXPECT_EQ(outcome.unallocated, 4);     // the rest cannot help
}

TEST(Allocator, BoostNeverBreaksOtherDeadlines)
{
    // Tight cluster: boosting one job must not consume a reservation
    // another deadline needs.
    std::vector<PlanningJob> jobs = {
        make_job(1, {1.0, 1.8}, 2.0, 2.0),
        make_job(2, {1.0, 1.8}, 4.0, 4.4),
    };
    AllocationOutcome outcome = plan(unit_config(2), jobs);
    for (const PlanningJob &job : jobs) {
        EXPECT_LE(plan_finish_seconds(job.curve,
                                      outcome.plans.at(job.id),
                                      job.remaining_iterations, 1.0),
                  job.deadline + 1e-9)
            << "job " << job.id;
    }
    GpuCount used = outcome.gpus_now.at(1) + outcome.gpus_now.at(2);
    EXPECT_LE(used, 2);
}

TEST(Allocator, BestEffortStartsOnIdleGpus)
{
    std::vector<PlanningJob> slo = {
        make_job(1, {1.0, 1.5}, 2.0, 10.0),
    };
    std::vector<PlanningJob> be = {
        make_job(50, {1.0, 1.5, 2.0}, 100.0, kTimeInfinity),
    };
    AllocationOutcome outcome = plan(unit_config(8), slo, be);
    // Both jobs are grown to their max_useful counts (2 and 4); the
    // best-effort job is started before any SLO speed-up.
    EXPECT_EQ(outcome.gpus_now.at(1), 2);
    EXPECT_EQ(outcome.gpus_now.at(50), 4);
    EXPECT_EQ(outcome.unallocated, 2);
}

TEST(Allocator, BestEffortYieldsToSloMinimumShares)
{
    // The SLO job needs the whole cluster to make its deadline; the
    // best-effort job must stay suspended.
    std::vector<PlanningJob> slo = {
        make_job(1, {1.0, 1.5, 2.0}, 2.0, 1.0),
    };
    std::vector<PlanningJob> be = {
        make_job(50, {1.0, 1.5, 2.0}, 100.0, kTimeInfinity),
    };
    AllocationOutcome outcome = plan(unit_config(4), slo, be);
    EXPECT_EQ(outcome.gpus_now.at(1), 4);
    EXPECT_EQ(outcome.gpus_now.at(50), 0);
}

TEST(Allocator, BestEffortMemoryBoundRespected)
{
    // A best-effort job whose min_workers is 4 cannot start on 2
    // leftover GPUs.
    std::vector<PlanningJob> slo = {
        make_job(1, {1.0, 1.5}, 4.5, 3.2),
    };
    std::vector<PlanningJob> be = {
        make_job(50, {0.0, 0.0, 2.0}, 100.0, kTimeInfinity),
    };
    AllocationOutcome outcome = plan(unit_config(4), slo, be);
    EXPECT_EQ(outcome.gpus_now.at(50), 0);
    EXPECT_GE(outcome.unallocated, 1);
}

TEST(Allocator, SuspendedSloJobWhenMinShareStartsLater)
{
    // With the latest-fill direction a loose job is packed at the end
    // of its window; Algorithm 2 then pulls it forward only if that
    // saves GPU time — the slot-0 count may legitimately stay 0 when
    // boosting cannot beat the reserved plan. Here the idle cluster
    // means boosting strictly improves finish time, so it runs now.
    PlannerConfig config = unit_config(4);
    config.direction = FillDirection::kLatest;
    std::vector<PlanningJob> jobs = {
        make_job(1, {1.0, 1.5}, 2.0, 10.0),
    };
    AllocationOutcome outcome = plan(config, jobs);
    EXPECT_GT(outcome.gpus_now.at(1), 0);
}

/** Property sweep: allocation respects capacity in every slot, meets
 *  every deadline, and never allocates past max_useful. */
TEST(Allocator, InvariantPropertySweep)
{
    Rng rng(303);
    for (int trial = 0; trial < 200; ++trial) {
        GpuCount gpus = GpuCount(1) << rng.uniform_int(2, 4);
        PlannerConfig config = unit_config(gpus);
        std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 5));
        std::vector<PlanningJob> slo;
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<double> table = {1.0};
            double prev = 1.0, inc = rng.uniform_real(0.3, 0.9);
            for (int level = 1; level <= 3; ++level) {
                prev += inc;
                inc *= rng.uniform_real(0.4, 0.9);
                table.push_back(prev);
            }
            slo.push_back(make_job(static_cast<JobId>(i), table,
                                   rng.uniform_real(0.5, 8.0),
                                   rng.uniform_real(2.0, 12.0)));
        }
        AdmissionOutcome admission = run_admission(config, 0.0, slo);
        if (!admission.feasible)
            continue;
        AllocationOutcome outcome =
            run_allocation(config, 0.0, slo, admission.plans, {});

        int horizon = 0;
        for (const auto &[id, p] : outcome.plans)
            horizon = std::max(horizon, p.horizon());
        for (int t = 0; t < horizon; ++t) {
            GpuCount used = 0;
            for (const auto &[id, p] : outcome.plans)
                used += p.at(t);
            EXPECT_LE(used, gpus) << "trial " << trial << " slot " << t;
        }
        for (const PlanningJob &job : slo) {
            const SlotPlan &p = outcome.plans.at(job.id);
            EXPECT_LE(plan_finish_seconds(job.curve, p,
                                          job.remaining_iterations, 1.0),
                      job.deadline + 1e-6)
                << "trial " << trial << " job " << job.id;
            EXPECT_LE(outcome.gpus_now.at(job.id),
                      job.curve.max_useful())
                << "trial " << trial << " job " << job.id;
        }
        // Allocation monotonicity of Algorithm 2: totals at slot 0
        // equal the cluster unless no job benefits from more.
        GpuCount now_total = 0;
        for (const auto &[id, g] : outcome.gpus_now)
            now_total += g;
        EXPECT_EQ(now_total + outcome.unallocated, gpus)
            << "trial " << trial;
    }
}

TEST(Allocator, MissingMinShareDies)
{
    std::vector<PlanningJob> jobs = {
        make_job(1, {1.0}, 1.0, 5.0),
    };
    std::map<JobId, SlotPlan> empty;
    EXPECT_DEATH(run_allocation(unit_config(2), 0.0, jobs, empty, {}),
                 "minimum satisfactory share");
}

}  // namespace
}  // namespace ef

/**
 * @file
 * Tests for SampleStats and the StepSeries timelines used by the
 * Fig. 7 / Fig. 10 metrics.
 */
#include <gtest/gtest.h>

#include "common/stats.h"

namespace ef {
namespace {

TEST(SampleStats, BasicMoments)
{
    SampleStats stats;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 4u);
    EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_NEAR(stats.stddev(), 1.1180, 1e-3);
}

TEST(SampleStats, Percentiles)
{
    SampleStats stats;
    for (int i = 1; i <= 100; ++i)
        stats.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(stats.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(stats.percentile(100), 100.0);
    EXPECT_NEAR(stats.median(), 50.5, 1e-9);
    EXPECT_NEAR(stats.percentile(90), 90.1, 1e-9);
}

TEST(SampleStats, SingleSample)
{
    SampleStats stats;
    stats.add(7.0);
    EXPECT_DOUBLE_EQ(stats.percentile(37.0), 7.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(StepSeries, ValueAtLooksUpSteps)
{
    StepSeries s;
    s.record(10.0, 1.0);
    s.record(20.0, 3.0);
    EXPECT_DOUBLE_EQ(s.value_at(5.0), 0.0);
    EXPECT_DOUBLE_EQ(s.value_at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(s.value_at(15.0), 1.0);
    EXPECT_DOUBLE_EQ(s.value_at(20.0), 3.0);
    EXPECT_DOUBLE_EQ(s.value_at(1000.0), 3.0);
}

TEST(StepSeries, RunLengthCompressesEqualValues)
{
    StepSeries s;
    s.record(0.0, 2.0);
    s.record(5.0, 2.0);
    s.record(9.0, 4.0);
    EXPECT_EQ(s.size(), 2u);
}

TEST(StepSeries, SameInstantOverwrites)
{
    StepSeries s;
    s.record(1.0, 2.0);
    s.record(1.0, 5.0);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s.value_at(1.0), 5.0);
}

TEST(StepSeries, TimeAverage)
{
    StepSeries s;
    s.record(0.0, 1.0);
    s.record(10.0, 3.0);
    // [0,10) at 1, [10,20) at 3 -> mean 2 over [0,20].
    EXPECT_NEAR(s.time_average(0.0, 20.0), 2.0, 1e-9);
    // Window starting before the first sample counts zeros.
    StepSeries t;
    t.record(10.0, 4.0);
    EXPECT_NEAR(t.time_average(0.0, 20.0), 2.0, 1e-9);
}

TEST(StepSeries, ResampleBuckets)
{
    StepSeries s;
    s.record(0.0, 0.0);
    s.record(50.0, 10.0);
    std::vector<double> grid = s.resample(0.0, 100.0, 4);
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_NEAR(grid[0], 0.0, 1e-9);
    EXPECT_NEAR(grid[1], 0.0, 1e-9);
    EXPECT_NEAR(grid[2], 10.0, 1e-9);
    EXPECT_NEAR(grid[3], 10.0, 1e-9);
}

}  // namespace
}  // namespace ef

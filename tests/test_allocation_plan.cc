/**
 * @file
 * Tests for slot plans, iteration accounting, finish-time computation,
 * and the fractional planning horizon.
 */
#include <gtest/gtest.h>

#include "core/allocation_plan.h"

namespace ef {
namespace {

ScalingCurve
fig4_curve()
{
    return ScalingCurve::from_pow2_table({1.0, 1.5, 2.0});
}

TEST(SlotPlan, AccessorsAndGpuSeconds)
{
    SlotPlan plan;
    plan.gpus = {2, 0, 4};
    EXPECT_EQ(plan.at(0), 2);
    EXPECT_EQ(plan.at(1), 0);
    EXPECT_EQ(plan.at(2), 4);
    EXPECT_EQ(plan.at(99), 0);
    EXPECT_DOUBLE_EQ(plan.gpu_seconds(10.0), 60.0);
}

TEST(SlotPlan, TrimRemovesTrailingZeros)
{
    SlotPlan plan;
    plan.gpus = {0, 2, 0, 0};
    plan.trim();
    EXPECT_EQ(plan.horizon(), 2);
    EXPECT_EQ(plan.at(0), 0);
    EXPECT_EQ(plan.at(1), 2);
}

TEST(Plan, IterationsSumThroughputTimesSlot)
{
    SlotPlan plan;
    plan.gpus = {1, 2, 4};
    // T = 1, 1.5, 2 -> 4.5 iterations at dt = 1.
    EXPECT_DOUBLE_EQ(plan_iterations(fig4_curve(), plan, 1.0), 4.5);
}

TEST(Plan, FinishSecondsFractionalWithinSlot)
{
    SlotPlan plan;
    plan.gpus = {1, 4};
    // Remaining 2: slot 0 does 1, slot 1 at T=2 needs 0.5s more.
    EXPECT_DOUBLE_EQ(
        plan_finish_seconds(fig4_curve(), plan, 2.0, 1.0), 1.5);
    // Already done.
    EXPECT_DOUBLE_EQ(
        plan_finish_seconds(fig4_curve(), plan, 0.0, 1.0), 0.0);
    // Never finishes.
    EXPECT_EQ(plan_finish_seconds(fig4_curve(), plan, 100.0, 1.0),
              kTimeInfinity);
}

TEST(Plan, FinishSkipsIdleSlots)
{
    SlotPlan plan;
    plan.gpus = {0, 0, 1};
    EXPECT_DOUBLE_EQ(
        plan_finish_seconds(fig4_curve(), plan, 1.0, 1.0), 3.0);
}

TEST(Horizon, DeadlineSlotsFloors)
{
    EXPECT_EQ(deadline_slots(0.0, 1000.0, 300.0, 100), 3);
    EXPECT_EQ(deadline_slots(0.0, 900.0, 300.0, 100), 3);
    EXPECT_EQ(deadline_slots(0.0, 899.0, 300.0, 100), 2);
    EXPECT_EQ(deadline_slots(100.0, 50.0, 300.0, 100), 0);
    EXPECT_EQ(deadline_slots(0.0, kTimeInfinity, 300.0, 42), 42);
    EXPECT_EQ(deadline_slots(0.0, 1e9, 300.0, 10), 10);
}

TEST(Horizon, PlanHorizonCarriesFraction)
{
    PlanHorizon h = plan_horizon(0.0, 750.0, 300.0, 100);
    EXPECT_EQ(h.slots, 3);
    EXPECT_NEAR(h.last_weight, 0.5, 1e-9);

    h = plan_horizon(0.0, 900.0, 300.0, 100);
    EXPECT_EQ(h.slots, 3);
    EXPECT_NEAR(h.last_weight, 1.0, 1e-9);

    h = plan_horizon(50.0, 40.0, 300.0, 100);
    EXPECT_EQ(h.slots, 0);

    h = plan_horizon(0.0, kTimeInfinity, 300.0, 7);
    EXPECT_EQ(h.slots, 7);
    EXPECT_NEAR(h.last_weight, 1.0, 1e-9);
}

TEST(Horizon, PlannableTimeIsExact)
{
    // The sum of slot capacities equals deadline - now, whatever the
    // alignment — the property that keeps replans stable.
    for (double now : {0.0, 13.7, 299.9, 301.2}) {
        double deadline = 2000.0;
        PlanHorizon h = plan_horizon(now, deadline, 300.0, 1000);
        double plannable =
            (h.slots - 1) * 300.0 + h.last_weight * 300.0;
        EXPECT_NEAR(plannable, deadline - now, 1e-6) << now;
    }
}

TEST(PlanningJob, BestEffortPredicate)
{
    PlanningJob job;
    job.deadline = kTimeInfinity;
    EXPECT_TRUE(job.best_effort());
    job.deadline = 100.0;
    EXPECT_FALSE(job.best_effort());
}

}  // namespace
}  // namespace ef

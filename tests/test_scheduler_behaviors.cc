/**
 * @file
 * Deeper behavioural tests for the baseline policies: Gandiva's
 * time-slice rotation, Chronus's best-effort backfill, Pollux's
 * migration-enabled compaction, and the end-to-end CSV workflow a
 * downstream user would run (generate preset -> CSV -> replay).
 */
#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace ef {
namespace {

using testutil::TraceBuilder;

SimConfig
no_overhead()
{
    SimConfig config;
    config.overhead.enabled = false;
    return config;
}

TEST(GandivaBehavior, RotationSharesAnOversubscribedCluster)
{
    // Three cluster-filling jobs: without rotation, job 3 would wait
    // for both predecessors; with least-recently-served rotation all
    // three make progress, so the last submission finishes earlier
    // than a strict FIFO would allow and everyone's first run starts
    // within the first few rotation quanta.
    TraceBuilder builder(TopologySpec::testbed_32());
    for (int i = 0; i < 3; ++i) {
        builder.slo(DnnModel::kInceptionV3, 128, 32, i * 60.0,
                    6.0 * kHour, 3.0);
    }
    Trace trace = builder.build();
    auto scheduler = make_scheduler("gandiva");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    for (const JobOutcome &job : result.jobs) {
        ASSERT_TRUE(job.finished) << job.spec.id;
        // Everyone got GPUs within the first few rotation quanta.
        EXPECT_LT(job.first_run_time, 2.5 * kHour) << job.spec.id;
        // And was swapped in/out several times.
        EXPECT_GE(job.scaling_events, 3) << job.spec.id;
    }
}

TEST(ChronusBehavior, BestEffortBackfillsReservedCluster)
{
    // One SLO job reserves half the cluster; a best-effort job (which
    // Chronus never admission-controls) backfills the rest instead of
    // queueing behind the reservation.
    Trace trace =
        TraceBuilder(TopologySpec::testbed_32())
            .slo(DnnModel::kBert, 128, 16, 0.0, 2.0 * kHour, 1.4)
            .best_effort(DnnModel::kResNet50, 128, 8, 60.0, kHour)
            .build();
    auto scheduler = make_scheduler("chronus");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    EXPECT_TRUE(result.jobs[0].met_deadline());
    ASSERT_TRUE(result.jobs[1].finished);
    // The best-effort job started promptly (no waiting for the SLO
    // job to finish).
    EXPECT_LT(result.jobs[1].first_run_time, 0.5 * kHour);
}

TEST(PolluxBehavior, MigrationKeepsPlacementsCompact)
{
    // Pollux reallocates with migration allowed: after churn, running
    // jobs should not be fragmented across servers beyond the compact
    // span (spot-checked through the throughput they achieve: all
    // jobs finish well within the elastic speedup window).
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 15;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler("pollux");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    int migrations = 0;
    for (const JobOutcome &job : result.jobs) {
        EXPECT_TRUE(job.finished) << job.spec.id;
        migrations += job.migrations;
    }
    EXPECT_EQ(result.placement_failures, 0);
    (void)migrations;  // may legitimately be zero on light traces
}

TEST(Workflow, PresetToCsvToReplayMatchesDirectRun)
{
    // The downstream workflow: dump a preset to CSV, reload it, and
    // get bit-identical scheduling results.
    Trace original = TraceGenerator::generate(testbed_small_preset());
    std::string path = testing::TempDir() + "/ef_workflow_trace.csv";
    save_trace_csv(path, original);
    Trace reloaded = load_trace_csv(path, original.topology,
                                    original.name);

    auto run = [](const Trace &trace) {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get());
        return sim.run();
    };
    RunResult a = run(original);
    RunResult b = run(reloaded);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.deadlines_met(), b.deadlines_met());
    EXPECT_EQ(a.admitted_count(), b.admitted_count());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        if (a.jobs[i].finished) {
            // CSV stores times at millisecond precision.
            EXPECT_NEAR(a.jobs[i].finish_time, b.jobs[i].finish_time,
                        1.0)
                << i;
        }
    }
}

TEST(ThemisBehavior, FairnessConvergesForIdenticalJobs)
{
    // Four identical jobs submitted together: finish-time fairness
    // should keep their completion times within a modest band (no job
    // starves under the lease policy).
    TraceBuilder builder(TopologySpec::testbed_32());
    for (int i = 0; i < 4; ++i) {
        builder.slo(DnnModel::kResNet50, 128, 8, i * 30.0,
                    2.0 * kHour, 3.0);
    }
    Trace trace = builder.build();
    auto scheduler = make_scheduler("themis");
    Simulator sim(trace, scheduler.get(), no_overhead());
    RunResult result = sim.run();
    Time min_finish = kTimeInfinity, max_finish = 0.0;
    for (const JobOutcome &job : result.jobs) {
        ASSERT_TRUE(job.finished);
        min_finish = std::min(min_finish, job.finish_time);
        max_finish = std::max(max_finish, job.finish_time);
    }
    EXPECT_LT(max_finish / min_finish, 1.6);
}

}  // namespace
}  // namespace ef

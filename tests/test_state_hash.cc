/**
 * @file
 * Determinism auditor tests: the FNV-1a state hash chained over every
 * replan must be bit-identical across repeated runs of the same
 * configuration, sensitive to any configuration change, and stable
 * against the pinned baseline below (which detects accidental changes
 * to scheduler decisions, event ordering, or RNG consumption).
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "common/hash.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

RunResult
run_once(const std::string &scheduler_name, std::uint64_t seed,
         const SimConfig &config = SimConfig{})
{
    TraceGenConfig gen = testbed_small_preset();
    gen.seed = seed;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler(scheduler_name);
    Simulator sim(trace, scheduler.get(), config);
    return sim.run();
}

TEST(StateHash, SampledAtLeastOncePerReplan)
{
    RunResult result = run_once("elasticflow", 42);
    EXPECT_GT(result.state_hash_samples, 0u);
    EXPECT_NE(result.state_hash, 0u);
    // One audit per executed or elided replan, plus the terminal one
    // (coalesced requests collapse into the replan that serves them).
    EXPECT_EQ(static_cast<int>(result.state_hash_samples),
              result.replans_attempted - result.replans_coalesced + 1);
}

TEST(StateHash, DoubleRunIsBitIdentical)
{
    for (const std::string &name : all_scheduler_names()) {
        SCOPED_TRACE(name);
        RunResult a = run_once(name, 42);
        RunResult b = run_once(name, 42);
        EXPECT_EQ(a.state_hash, b.state_hash);
        EXPECT_EQ(a.state_hash_samples, b.state_hash_samples);
    }
}

TEST(StateHash, DoubleRunWithFaultsIsBitIdentical)
{
    SimConfig config;
    config.faults.seed = 7;
    config.faults.gpu_mtbf_s = 6.0 * kHour;
    config.faults.rpc_drop_prob = 0.01;
    config.faults.straggler_prob = 0.05;
    RunResult a = run_once("elasticflow", 42, config);
    RunResult b = run_once("elasticflow", 42, config);
    EXPECT_EQ(a.state_hash, b.state_hash);
    EXPECT_EQ(a.state_hash_samples, b.state_hash_samples);
}

TEST(StateHash, DistinguishesSchedulersSeedsAndFaults)
{
    const RunResult base = run_once("elasticflow", 42);
    EXPECT_NE(base.state_hash, run_once("edf", 42).state_hash);
    EXPECT_NE(base.state_hash, run_once("elasticflow", 43).state_hash);

    SimConfig faulty;
    faulty.faults.seed = 7;
    faulty.faults.gpu_mtbf_s = 6.0 * kHour;
    EXPECT_NE(base.state_hash,
              run_once("elasticflow", 42, faulty).state_hash);
}

/**
 * Pinned digest of the canonical configuration. A change here means
 * scheduler decisions, event ordering, job-state evolution, or RNG
 * draw counts changed for everyone — which is fine when intended, but
 * must be a conscious decision: re-pin the constant from this test's
 * failure message and say why in the commit.
 */
TEST(StateHash, PinnedBaseline)
{
    RunResult result = run_once("elasticflow", 42);
    EXPECT_EQ(result.state_hash, UINT64_C(0xe75d68e122baea09));
}

TEST(Fnv1a, KnownVectorsAndOrderSensitivity)
{
    // Empty input must yield the FNV-1a offset basis.
    EXPECT_EQ(Fnv1a().digest(), UINT64_C(0xcbf29ce484222325));
    // Classic known vector: "a" -> 0xaf63dc4c8601ec8c.
    Fnv1a a;
    a.byte(static_cast<unsigned char>('a'));
    EXPECT_EQ(a.digest(), UINT64_C(0xaf63dc4c8601ec8c));
    // Order matters.
    Fnv1a ab, ba;
    ab.u64(1);
    ab.u64(2);
    ba.u64(2);
    ba.u64(1);
    EXPECT_NE(ab.digest(), ba.digest());
    // f64 hashes the bit pattern: +0.0 and -0.0 differ.
    Fnv1a pos, neg;
    pos.f64(0.0);
    neg.f64(-0.0);
    EXPECT_NE(pos.digest(), neg.digest());
    // str() is length-prefixed, so ("ab","c") != ("a","bc").
    Fnv1a s1, s2;
    s1.str("ab");
    s1.str("c");
    s2.str("a");
    s2.str("bc");
    EXPECT_NE(s1.digest(), s2.digest());
}

}  // namespace
}  // namespace ef

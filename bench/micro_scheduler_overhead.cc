/**
 * @file
 * Micro benchmarks (google-benchmark) for the scheduler's own decision
 * latency — the analogue of the paper's claim that scheduling overhead
 * is negligible next to the ~23-minute scheduling interval: admission
 * control (Algorithm 1), resource allocation (Algorithm 2), buddy
 * placement with defragmentation, and performance-model evaluation.
 */
#include <benchmark/benchmark.h>

#include "cluster/placement.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/allocator.h"
#include "core/planner_concurrency.h"
#include "workload/perf_model.h"

namespace ef {
namespace {

std::vector<PlanningJob>
make_jobs(int count, GpuCount gpus, std::uint64_t seed)
{
    Rng rng(seed);
    Topology topo(TopologySpec::with_total_gpus(gpus));
    PerfModel perf(&topo);
    std::vector<PlanningJob> jobs;
    for (int i = 0; i < count; ++i) {
        DnnModel model = all_models()[static_cast<std::size_t>(
            rng.uniform_int(0, kNumModels - 1))];
        int batch = model_profile(model).batch_sizes.back();
        PlanningJob job;
        job.id = i;
        job.curve = ScalingCurve::from_pow2_table(
            perf.compact_pow2_throughputs(model, batch, gpus));
        double duration = rng.uniform_real(0.5, 8.0) * kHour;
        job.remaining_iterations =
            duration * job.curve.throughput(job.curve.min_workers());
        job.deadline = duration * rng.uniform_real(0.8, 2.5);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

void
BM_AdmissionControl(benchmark::State &state)
{
    const int num_jobs = static_cast<int>(state.range(0));
    PlannerConfig config;
    config.total_gpus = 128;
    config.slot_seconds = 600.0;
    std::vector<PlanningJob> jobs = make_jobs(num_jobs, 128, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_admission(config, 0.0, jobs));
    }
}
BENCHMARK(BM_AdmissionControl)->Arg(8)->Arg(32)->Arg(128);

void
BM_ResourceAllocation(benchmark::State &state)
{
    const int num_jobs = static_cast<int>(state.range(0));
    PlannerConfig config;
    config.total_gpus = 128;
    config.slot_seconds = 600.0;
    std::vector<PlanningJob> jobs = make_jobs(num_jobs, 128, 7);
    AdmissionOutcome admission = run_admission(config, 0.0, jobs);
    if (!admission.feasible) {
        state.SkipWithError("fixture infeasible");
        return;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            run_allocation(config, 0.0, jobs, admission.plans, {}));
    }
}
BENCHMARK(BM_ResourceAllocation)->Arg(8)->Arg(32);

/**
 * The hot-path stress case: 2048 GPUs, 1000 jobs. Minimum shares are
 * packed latest so slot 0 has headroom and the greedy upgrade loop
 * actually runs to depth — with earliest packing the fixture
 * degenerates (slot 0 saturates on minimum shares alone and the loop
 * exits immediately).
 */
enum class AllocMode { kReference, kIncremental, kSharded };

void
BM_ResourceAllocationLarge(benchmark::State &state, AllocMode mode)
{
    const int num_jobs = static_cast<int>(state.range(0));
    const GpuCount gpus = static_cast<GpuCount>(state.range(1));
    PlannerConfig config;
    config.total_gpus = gpus;
    config.slot_seconds = 600.0;
    config.direction = FillDirection::kLatest;
    std::vector<PlanningJob> jobs = make_jobs(num_jobs, gpus, 99);
    AdmissionOutcome admission = run_admission(config, 0.0, jobs);
    if (!admission.feasible) {
        state.SkipWithError("fixture infeasible");
        return;
    }
    // Pool and shard layout are built once, outside the timed region —
    // they are amortized across every replan of a scheduler's lifetime.
    ThreadPool pool(4);
    PlannerConcurrency concurrency;
    concurrency.shards = 4;
    concurrency.pool = &pool;
    for (auto _ : state) {
        switch (mode) {
          case AllocMode::kReference:
            benchmark::DoNotOptimize(run_allocation_reference(
                config, 0.0, jobs, admission.plans, {}));
            break;
          case AllocMode::kIncremental:
            benchmark::DoNotOptimize(run_allocation(
                config, 0.0, jobs, admission.plans, {}));
            break;
          case AllocMode::kSharded:
            benchmark::DoNotOptimize(run_allocation_sharded(
                config, 0.0, jobs, admission.plans, {}, concurrency));
            break;
        }
    }
}
BENCHMARK_CAPTURE(BM_ResourceAllocationLarge, incremental,
                  AllocMode::kIncremental)
    ->Args({1000, 2048})
    ->Args({1000, 16384})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ResourceAllocationLarge, reference,
                  AllocMode::kReference)
    ->Args({1000, 2048})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ResourceAllocationLarge, sharded, AllocMode::kSharded)
    ->Args({1000, 2048})
    ->Args({1000, 16384})
    ->Args({1000, 65536})
    ->Unit(benchmark::kMillisecond);

void
BM_BuddyPlacementChurn(benchmark::State &state)
{
    Topology topo(TopologySpec::testbed_128());
    Rng rng(5);
    for (auto _ : state) {
        PlacementManager manager(&topo);
        std::vector<JobId> live;
        JobId next = 0;
        for (int step = 0; step < 200; ++step) {
            if (live.empty() || rng.flip(0.6)) {
                GpuCount size = GpuCount(1) << rng.uniform_int(0, 4);
                if (size <= manager.idle_gpus()) {
                    benchmark::DoNotOptimize(manager.place(
                        next, size,
                        PlacementStrategy::kBestFitCompact, true));
                    live.push_back(next);
                }
                ++next;
            } else {
                std::size_t idx = static_cast<std::size_t>(
                    rng.uniform_int(0,
                                    static_cast<std::int64_t>(
                                        live.size()) - 1));
                manager.release(live[idx]);
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(idx));
            }
        }
    }
}
BENCHMARK(BM_BuddyPlacementChurn);

void
BM_PerfModelThroughput(benchmark::State &state)
{
    Topology topo(TopologySpec::testbed_128());
    PerfModel perf(&topo);
    for (auto _ : state) {
        for (DnnModel model : all_models()) {
            benchmark::DoNotOptimize(perf.compact_throughput(
                model, model_profile(model).batch_sizes.back(), 8));
        }
    }
}
BENCHMARK(BM_PerfModelThroughput);

}  // namespace
}  // namespace ef

/**
 * Custom main instead of BENCHMARK_MAIN(): records the build type of
 * the ef libraries actually under measurement. The upstream
 * `library_build_type` context key reports how the google-benchmark
 * harness itself was compiled (the distro ships a debug build of the
 * .so), which says nothing about the planner code being timed —
 * `ef_build_type` is the key baselines and CI gate on.
 */
int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("ef_build_type", "release");
#else
    benchmark::AddCustomContext("ef_build_type", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * Figure 12 — system overheads.
 * (a) Pre-run profiling cost per model (all Table 1 batch sizes, GPU
 *     counts doubling until throughput stops improving, §6.6).
 * (b) Scaling/migration overhead per model for the paper's five
 *     cases: 1->8, 8->1, 4->8, 8->4, and migrating 8 GPUs.
 * Both are reported against the ~23-minute average scheduling
 * interval the paper cites, to show they are marginal.
 */
#include "bench_util.h"

#include "exec/profiler.h"
#include "sim/overhead_model.h"

int
main()
{
    using namespace ef;
    Topology topo(TopologySpec::testbed_128());
    PerfModel perf(&topo);

    bench::section("Figure 12(a): pre-run profiling overhead");
    Profiler profiler(&perf);
    ConsoleTable profiling({"model", "configs", "total(s)",
                            "largest batch curve"});
    for (DnnModel model : all_models()) {
        int configs = 0;
        for (int batch : model_profile(model).batch_sizes) {
            configs += static_cast<int>(
                profiler.profile(model, batch, 128).entries.size());
        }
        ProfileReport report = profiler.profile(
            model, model_profile(model).batch_sizes.back(), 128);
        std::string curve;
        for (const ProfileEntry &entry : report.entries) {
            if (!curve.empty())
                curve += " ";
            curve += std::to_string(entry.workers) + ":" +
                     format_double(entry.throughput, 1);
        }
        profiling.add_row(
            {model_name(model), std::to_string(configs),
             format_double(profiler.total_cost_for_model(model, 128), 0),
             curve});
    }
    std::cout << profiling.render();

    bench::section("Figure 12(b): scaling and migration overheads");
    OverheadModel overhead;
    ConsoleTable scaling({"model", "1->8", "8->1", "4->8", "8->4",
                          "migrate-8"});
    for (DnnModel model : all_models()) {
        scaling.add_row(
            {model_name(model),
             format_double(overhead.scaling_seconds(model, 1, 8), 1),
             format_double(overhead.scaling_seconds(model, 8, 1), 1),
             format_double(overhead.scaling_seconds(model, 4, 8), 1),
             format_double(overhead.scaling_seconds(model, 8, 4), 1),
             format_double(overhead.migration_seconds(model, 8), 1)});
    }
    std::cout << scaling.render();
    std::cout << "(seconds per event; the paper's average scheduling "
                 "interval is ~23 min, so overheads are marginal)\n";
    return 0;
}

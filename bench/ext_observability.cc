/**
 * @file
 * Micro benchmarks (google-benchmark) for the ef::obs recorder: the
 * cost of a disabled instrumentation site, raw emit/count throughput
 * into the in-memory sinks, and — the headline number — the overhead a
 * recorder adds to the scheduler hot path on the 2048-GPU / 1000-job
 * fixture. The design target is <5% on that case; compare the
 * `recorder_off` and `recorder_on` variants.
 */
#include <benchmark/benchmark.h>

#include <optional>

#include "common/rng.h"
#include "core/allocator.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/perf_model.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

std::vector<PlanningJob>
make_jobs(int count, GpuCount gpus, std::uint64_t seed)
{
    Rng rng(seed);
    Topology topo(TopologySpec::with_total_gpus(gpus));
    PerfModel perf(&topo);
    std::vector<PlanningJob> jobs;
    for (int i = 0; i < count; ++i) {
        DnnModel model = all_models()[static_cast<std::size_t>(
            rng.uniform_int(0, kNumModels - 1))];
        int batch = model_profile(model).batch_sizes.back();
        PlanningJob job;
        job.id = i;
        job.curve = ScalingCurve::from_pow2_table(
            perf.compact_pow2_throughputs(model, batch, gpus));
        double duration = rng.uniform_real(0.5, 8.0) * kHour;
        job.remaining_iterations =
            duration * job.curve.throughput(job.curve.min_workers());
        job.deadline = duration * rng.uniform_real(0.8, 2.5);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** The cost of one instrumentation site with no recorder installed:
 *  must stay at a single predictable branch. */
void
BM_EmitDisabled(benchmark::State &state)
{
    obs::TraceEvent event;
    event.time = 1.0;
    event.kind = obs::EventKind::kJobSubmit;
    event.job = 1;
    for (auto _ : state) {
        obs::emit(event);
        obs::count("bench.disabled");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_EmitDisabled);

void
BM_EmitRingBuffer(benchmark::State &state)
{
    obs::RingBufferSink ring(1 << 16);
    obs::TraceScope scope(&ring);
    obs::TraceEvent event;
    event.time = 1.0;
    event.kind = obs::EventKind::kJobSubmit;
    event.job = 1;
    for (auto _ : state)
        obs::emit(event);
}
BENCHMARK(BM_EmitRingBuffer);

void
BM_CounterInc(benchmark::State &state)
{
    obs::MetricsRegistry registry;
    obs::MetricsScope scope(&registry);
    for (auto _ : state)
        obs::count("bench.counter");
}
BENCHMARK(BM_CounterInc);

void
BM_HistogramObserve(benchmark::State &state)
{
    obs::MetricsRegistry registry;
    obs::MetricsScope scope(&registry);
    const std::vector<double> edges = {1.0, 2.0, 4.0, 8.0, 16.0};
    double v = 0.0;
    for (auto _ : state) {
        obs::observe("bench.hist", edges, v);
        v = v >= 20.0 ? 0.0 : v + 0.37;
    }
}
BENCHMARK(BM_HistogramObserve);

/**
 * Recorder overhead on the scheduler hot path: the same 2048-GPU /
 * 1000-job allocation case micro_scheduler_overhead measures, with and
 * without a recorder installed. The paper-level claim we defend is
 * that observability is effectively free next to the planning work.
 */
void
BM_AllocationLargeObs(benchmark::State &state, bool recorder)
{
    const int num_jobs = 1000;
    const GpuCount gpus = 2048;
    PlannerConfig config;
    config.total_gpus = gpus;
    config.slot_seconds = 600.0;
    config.direction = FillDirection::kLatest;
    std::vector<PlanningJob> jobs = make_jobs(num_jobs, gpus, 99);
    AdmissionOutcome admission = run_admission(config, 0.0, jobs);
    if (!admission.feasible) {
        state.SkipWithError("fixture infeasible");
        return;
    }
    obs::RingBufferSink ring(1 << 16);
    obs::MetricsRegistry registry;
    std::optional<obs::TraceScope> ts;
    std::optional<obs::MetricsScope> ms;
    if (recorder) {
        ts.emplace(&ring);
        ms.emplace(&registry);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            run_allocation(config, 0.0, jobs, admission.plans, {}));
    }
}
BENCHMARK_CAPTURE(BM_AllocationLargeObs, recorder_off, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AllocationLargeObs, recorder_on, true)
    ->Unit(benchmark::kMillisecond);

/** End-to-end: a full simulated day with and without a recorder, plus
 *  the export cost itself. */
void
BM_SimulationObs(benchmark::State &state, bool recorder)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 25;
    Trace trace = TraceGenerator::generate(gen);
    for (auto _ : state) {
        auto scheduler = make_scheduler("elasticflow");
        Simulator sim(trace, scheduler.get());
        if (recorder) {
            obs::RingBufferSink ring(1 << 18);
            obs::MetricsRegistry registry;
            obs::TraceScope ts(&ring);
            obs::MetricsScope ms(&registry);
            benchmark::DoNotOptimize(sim.run());
        } else {
            benchmark::DoNotOptimize(sim.run());
        }
    }
}
BENCHMARK_CAPTURE(BM_SimulationObs, recorder_off, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulationObs, recorder_on, true)
    ->Unit(benchmark::kMillisecond);

void
BM_ChromeTraceExport(benchmark::State &state)
{
    TraceGenConfig gen = testbed_small_preset();
    gen.num_jobs = 25;
    Trace trace = TraceGenerator::generate(gen);
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(trace, scheduler.get());
    obs::RingBufferSink ring(1 << 18);
    {
        obs::TraceScope scope(&ring);
        sim.run();
    }
    std::vector<obs::TraceEvent> events = ring.events();
    for (auto _ : state)
        benchmark::DoNotOptimize(obs::chrome_trace_json(events));
}
BENCHMARK(BM_ChromeTraceExport);

}  // namespace
}  // namespace ef

BENCHMARK_MAIN();

/**
 * @file
 * Network-sensitivity ablation (beyond the paper's figures, grounded
 * in its §3.2 observation that inter-server bandwidth ranges from
 * 40 Gbps Ethernet to 8x200 Gbps InfiniBand): the same 195-job
 * workload on the InfiniBand-class testbed vs a commodity Ethernet
 * cluster. Slower networks flatten scaling curves — elastic scale-out
 * buys less — and punish fragmented placements harder, so the gap
 * between topology-aware and naive policies widens.
 */
#include "bench_util.h"

int
main()
{
    using namespace ef;
    bench::section("Network sensitivity: InfiniBand vs 40GbE cluster");
    ConsoleTable table({"network", "scheduler", "ratio", "dropped",
                        "makespan(h)"});
    for (bool ethernet : {false, true}) {
        TraceGenConfig config = testbed_large_preset();
        config.num_jobs = 120;
        if (ethernet) {
            config.topology = TopologySpec::ethernet_128();
            config.name = "ethernet-128";
        }
        Trace trace = TraceGenerator::generate(config);
        for (const std::string name :
             {"elasticflow", "tiresias", "gandiva"}) {
            RunResult result = bench::run_once(trace, name);
            table.add_row({ethernet ? "40GbE" : "IB-200G", name,
                           format_percent(result.deadline_ratio()),
                           std::to_string(result.dropped_count()),
                           format_double(result.makespan / kHour, 1)});
        }
    }
    std::cout << table.render();
    std::cout << "(slower networks flatten scaling curves, so elastic "
                 "speed-up buys less and\n admission becomes more "
                 "selective; topology-aware placement matters more)\n";
    return 0;
}

/**
 * @file
 * Figure 7 — behaviour over time on the 128-GPU testbed trace.
 * (a) GPUs allocated over time for ElasticFlow vs. representative
 *     non-elastic baselines (ElasticFlow soaks up idle GPUs, drains
 *     on bursts).
 * (b) Cumulative submitted vs. admitted jobs under ElasticFlow
 *     (admission control visibly drops jobs during bursts).
 */
#include "bench_util.h"

int
main()
{
    using namespace ef;
    Trace trace = TraceGenerator::generate(testbed_large_preset());

    bench::section("Figure 7(a): allocated GPUs over time");
    std::map<std::string, RunResult> results;
    Time horizon = 0.0;
    for (const std::string name :
         {"elasticflow", "gandiva", "tiresias"}) {
        results.emplace(name, bench::run_once(trace, name));
        horizon = std::max(horizon, results.at(name).makespan);
    }
    const std::size_t buckets = 64;
    for (const std::string name :
         {"elasticflow", "gandiva", "tiresias"}) {
        const RunResult &r = results.at(name);
        std::cout << name << " (makespan "
                  << format_double(r.makespan / kHour, 1) << " h, mean "
                  << format_double(
                         r.used_gpus.time_average(0.0, horizon), 1)
                  << " GPUs busy):\n";
        std::cout << render_sparkline(
            r.used_gpus.resample(0.0, horizon, buckets), 6);
    }

    bench::section("Figure 7(b): submitted vs admitted (ElasticFlow)");
    const RunResult &ef_run = results.at("elasticflow");
    ConsoleTable table({"hour", "submitted", "admitted", "dropped"});
    Time last_submit = trace.last_submit_time();
    for (int h = 0; h <= static_cast<int>(last_submit / kHour) + 1;
         h += 2) {
        double t = h * kHour;
        double submitted = ef_run.submitted_jobs.value_at(t);
        double admitted = ef_run.admitted_jobs.value_at(t);
        table.add_row({std::to_string(h),
                       format_double(submitted, 0),
                       format_double(admitted, 0),
                       format_double(submitted - admitted, 0)});
    }
    std::cout << table.render();
    return 0;
}

/**
 * @file
 * Simulator fidelity (paper §6.1): the paper validates its event
 * simulator against the real 128-GPU testbed and reports <=3% error.
 * Here the "real system" stand-in is the iteration-granular executor
 * fleet; every scheduler's full allocation timeline is replayed
 * through it and per-job completion times are compared.
 */
#include "bench_util.h"

#include "exec/replay.h"

int
main()
{
    using namespace ef;
    Trace trace = TraceGenerator::generate(testbed_small_preset());

    bench::section("Simulator fidelity: fluid sim vs executor replay");
    ConsoleTable table({"scheduler", "jobs compared", "mean err",
                        "max err", "within 3%?"});
    SimConfig config;  // default overheads, charged identically
    for (const std::string &name : all_scheduler_names()) {
        RunResult result = bench::run_once(trace, name, config);
        ReplayReport report =
            replay_and_compare(trace, result, config.overhead);
        table.add_row({name, std::to_string(report.compared),
                       format_percent(report.mean_relative_error, 2),
                       format_percent(report.max_relative_error, 2),
                       report.mean_relative_error <= 0.03 ? "yes"
                                                          : "NO"});
    }
    std::cout << table.render();
    std::cout << "(paper: simulator error vs the real cluster is "
                 "no more than 3%)\n";
    return 0;
}

/**
 * @file
 * Service-mode soak: push a million synthetic submissions through the
 * ef::serve streaming front end (admission + allocation, no
 * simulator) and verify the overload-control invariants hold at
 * scale:
 *
 *  - bounded memory: the admission queue never exceeds the watermark
 *    (everything beyond it is shed synchronously);
 *  - determinism: two identical runs produce byte-identical
 *    state_hash and counters;
 *  - every submission gets exactly one verdict.
 *
 * Reports decision-latency p50/p99 (from the ef::obs histogram the
 * service feeds) and per-verdict shed rates. Exits nonzero when any
 * invariant fails, so CI can run it as a smoke test:
 *
 *   ext_service_soak [count] [arrival_rate_jobs_per_s]
 *
 * defaults to 1,000,000 submissions at 100 jobs/s — a deliberate
 * overload of the 64-GPU fixture, so the shed path and the governor's
 * batching both stay hot.
 */
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "serve/stream.h"

namespace ef {
namespace {

constexpr GpuCount kGpus = 64;
constexpr std::size_t kWatermark = 64;

const std::vector<double> kLatencyEdges = {
    0.001, 0.01, 0.1, 0.5, 1.0,  2.0,
    5.0,   10.0, 20.0, 30.0, 60.0, 120.0, 300.0};

struct SoakResult
{
    serve::ServiceStats stats;
    std::uint64_t state_hash = 0;
    double p50 = 0.0;
    double p99 = 0.0;
};

SoakResult
run_soak(std::uint64_t count, double arrival_rate)
{
    serve::StreamConfig stream_config;
    stream_config.topology = TopologySpec::with_total_gpus(kGpus);
    stream_config.arrival_rate = arrival_rate;
    stream_config.seed = 42;

    serve::ServiceConfig service_config;
    service_config.total_gpus = kGpus;
    service_config.queue_watermark = kWatermark;
    service_config.governor.rounds_per_second = 0.5;
    service_config.governor.burst = 2.0;
    service_config.governor.starvation_horizon_s = 120.0;
    service_config.degrade_infeasible = true;
    service_config.max_active_best_effort = 256;

    serve::SyntheticStream stream(stream_config);
    serve::Service service(service_config);

    SoakResult result;
    obs::MetricsRegistry registry;
    {
        obs::MetricsScope metrics_scope(&registry);
        for (std::uint64_t i = 0; i < count; ++i)
            service.submit(stream.next());
        service.finish();
        result.stats = service.stats();
        result.state_hash = service.state_hash();
        const obs::Histogram &latency = registry.histogram(
            "serve.decision_latency_s", kLatencyEdges);
        result.p50 = obs::histogram_quantile(latency, 0.5);
        result.p99 = obs::histogram_quantile(latency, 0.99);
    }
    return result;
}

std::string
rate_of(std::uint64_t part, std::uint64_t whole)
{
    if (whole == 0)
        return "0.0%";
    return format_percent(static_cast<double>(part) /
                          static_cast<double>(whole));
}

}  // namespace
}  // namespace ef

int
main(int argc, char **argv)
{
    using namespace ef;
    std::uint64_t count = 1000000;
    double arrival_rate = 100.0;
    if (argc > 1)
        count = std::stoull(argv[1]);
    if (argc > 2)
        arrival_rate = std::stod(argv[2]);

    std::cout << "soak: " << count << " submissions at "
              << format_double(arrival_rate, 1) << " jobs/s on "
              << kGpus << " GPUs (watermark " << kWatermark
              << "), two runs\n";

    const SoakResult first = run_soak(count, arrival_rate);
    const SoakResult second = run_soak(count, arrival_rate);
    const serve::ServiceStats &stats = first.stats;

    ConsoleTable table({"metric", "value"});
    table.add_row({"decided", std::to_string(stats.submitted)});
    table.add_row({"admitted (SLO)", std::to_string(stats.admitted)});
    table.add_row({"admitted (best-effort)",
                   std::to_string(stats.admitted_best_effort)});
    table.add_row({"degraded", std::to_string(stats.degraded)});
    table.add_row({"shed (queue-full)",
                   std::to_string(stats.shed_queue_full) + " (" +
                       rate_of(stats.shed_queue_full,
                               stats.submitted) + ")"});
    table.add_row({"shed (infeasible)",
                   std::to_string(stats.shed_infeasible) + " (" +
                       rate_of(stats.shed_infeasible,
                               stats.submitted) + ")"});
    table.add_row({"shed rate", rate_of(stats.shed(),
                                        stats.submitted)});
    table.add_row({"rounds (forced)",
                   std::to_string(stats.rounds) + " (" +
                       std::to_string(stats.rounds_forced) + ")"});
    table.add_row({"planning cost (units)",
                   std::to_string(stats.planning_cost)});
    table.add_row({"finished", std::to_string(stats.finished)});
    table.add_row({"max queue depth",
                   std::to_string(stats.max_queue_depth)});
    table.add_row({"decision latency p50 (s)",
                   format_double(first.p50, 3)});
    table.add_row({"decision latency p99 (s)",
                   format_double(first.p99, 3)});
    std::cout << table.render();
    std::cout << "state-hash run 1: " << std::hex << first.state_hash
              << "  run 2: " << second.state_hash << std::dec << "\n";

    int failures = 0;
    if (stats.submitted != count) {
        std::cout << "FAIL: " << stats.submitted << " verdicts for "
                  << count << " submissions\n";
        ++failures;
    }
    if (stats.max_queue_depth > kWatermark) {
        std::cout << "FAIL: queue depth " << stats.max_queue_depth
                  << " exceeded the watermark " << kWatermark << "\n";
        ++failures;
    }
    if (first.state_hash != second.state_hash) {
        std::cout << "FAIL: state hashes differ between runs\n";
        ++failures;
    }
    if (second.stats.submitted != stats.submitted ||
        second.stats.shed_queue_full != stats.shed_queue_full ||
        second.stats.rounds != stats.rounds) {
        std::cout << "FAIL: counters differ between runs\n";
        ++failures;
    }
    if (failures == 0)
        std::cout << "OK: all soak invariants held\n";
    return failures == 0 ? 0 : 1;
}

/**
 * @file
 * Figure 2 — characteristics of distributed training jobs.
 * (a) Normalized scaling curves of the six DNN models (throughput on
 *     1..16 GPUs, compact placement, relative to 1 GPU x count).
 * (b) Throughput of 8-worker ResNet50/BERT under placements spanning
 *     1, 2, 4, and 8 servers (normalized to the same-server case).
 */
#include "bench_util.h"

#include "workload/perf_model.h"

int
main()
{
    using namespace ef;
    Topology topo(TopologySpec::testbed_128());
    PerfModel perf(&topo);

    bench::section("Figure 2(a): scaling curves (normalized to linear)");
    ConsoleTable curves({"model", "batch", "1", "2", "4", "8", "16",
                         "eff@8"});
    for (DnnModel model : all_models()) {
        int batch = model_profile(model).batch_sizes.back();
        GpuCount base = perf.min_workers(model, batch);
        double t_base = perf.compact_throughput(model, batch, base);
        std::vector<std::string> row = {model_name(model),
                                        std::to_string(batch)};
        double eff8 = 0.0;
        for (GpuCount g : {1, 2, 4, 8, 16}) {
            double tpt = perf.compact_throughput(model, batch, g);
            if (tpt <= 0.0) {
                row.push_back("-");  // local batch would not fit
                continue;
            }
            // Speedup relative to the smallest feasible worker count,
            // scaled so linear scaling reads as g.
            double speedup = tpt / t_base * static_cast<double>(base);
            row.push_back(format_double(speedup, 2));
            if (g == 8)
                eff8 = speedup / 8.0;
        }
        row.push_back(format_percent(eff8));
        curves.add_row(std::move(row));
    }
    std::cout << curves.render();
    std::cout << "(paper: VGG16 reaches 76.07% of linear at 8 GPUs)\n";

    bench::section(
        "Figure 2(b): placement-dependent throughput, 8 workers");
    ConsoleTable placement({"model", "1 server", "2 servers",
                            "4 servers", "8 servers",
                            "best/worst"});
    for (DnnModel model : {DnnModel::kResNet50, DnnModel::kBert}) {
        int batch = 256;
        if (perf.min_workers(model, batch) > 8)
            batch = model_profile(model).batch_sizes.front();
        double best = perf.throughput(model, batch,
                                      PlacementShape{8, 1, 1});
        std::vector<std::string> row = {model_name(model)};
        double worst = best;
        for (int span : {1, 2, 4, 8}) {
            double tpt = perf.throughput(model, batch,
                                         PlacementShape{8, span, 1});
            worst = std::min(worst, tpt);
            row.push_back(format_double(tpt / best, 3));
        }
        row.push_back(format_double(best / worst, 2) + "x");
        placement.add_row(std::move(row));
    }
    std::cout << placement.render();
    std::cout << "(paper: ResNet50 same-server is 2.17x of 8-server)\n";
    return 0;
}

/**
 * @file
 * Figure 11 — mixing SLO and best-effort jobs (§6.5). Sweeping the
 * best-effort fraction: (a) ElasticFlow keeps the highest deadline
 * satisfactory ratio for SLO jobs; (b) best-effort average JCT,
 * normalized to Gandiva's, stays competitive at low fractions and is
 * traded for SLO compliance at higher ones.
 */
#include "bench_util.h"
#include "common/math_util.h"

int
main()
{
    using namespace ef;
    const std::vector<double> fractions = {0.0, 0.1, 0.3, 0.5};
    const std::vector<std::string> schedulers = {
        "elasticflow", "edf", "gandiva", "tiresias", "themis",
        "chronus"};

    std::map<double, std::map<std::string, RunResult>> grid;
    for (double fraction : fractions) {
        TraceGenConfig config = testbed_large_preset();
        config.num_jobs = 150;
        config.best_effort_fraction = fraction;
        Trace trace = TraceGenerator::generate(config);
        for (const std::string &name : schedulers)
            grid[fraction].emplace(name, bench::run_once(trace, name));
    }

    bench::section("Figure 11(a): SLO deadline satisfactory ratio");
    {
        std::vector<std::string> header = {"best-effort %"};
        for (const std::string &name : schedulers)
            header.push_back(name);
        ConsoleTable table(header);
        for (double fraction : fractions) {
            std::vector<std::string> row = {
                format_percent(fraction, 0)};
            for (const std::string &name : schedulers) {
                row.push_back(format_percent(
                    grid[fraction].at(name).deadline_ratio()));
            }
            table.add_row(std::move(row));
        }
        std::cout << table.render();
    }

    bench::section(
        "Figure 11(b): best-effort avg JCT (normalized to Gandiva)");
    {
        std::vector<std::string> header = {"best-effort %"};
        for (const std::string &name : schedulers)
            header.push_back(name);
        ConsoleTable table(header);
        for (double fraction : fractions) {
            if (almost_equal(fraction, 0.0))
                continue;  // no best-effort jobs to measure
            double gandiva_jct =
                grid[fraction].at("gandiva").average_jct(
                    JobKind::kBestEffort);
            std::vector<std::string> row = {
                format_percent(fraction, 0)};
            for (const std::string &name : schedulers) {
                double jct = grid[fraction].at(name).average_jct(
                    JobKind::kBestEffort);
                row.push_back(gandiva_jct > 0.0
                                  ? format_double(jct / gandiva_jct, 2)
                                  : "-");
            }
            table.add_row(std::move(row));
        }
        std::cout << table.render();
    }
    return 0;
}

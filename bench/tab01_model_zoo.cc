/**
 * @file
 * Table 1 — DNN models used in the evaluation: task, dataset, model,
 * and batch-size pool, plus the performance-model constants this
 * reproduction calibrates them with.
 */
#include "bench_util.h"

#include "workload/model_zoo.h"

int
main()
{
    using namespace ef;
    bench::section("Table 1: DNN models used in the evaluation");

    ConsoleTable table({"Task", "Dataset", "Model", "Batch Sizes",
                        "Params(GB)", "MaxLocalBatch"});
    for (DnnModel model : all_models()) {
        const ModelProfile &p = model_profile(model);
        std::string batches;
        for (std::size_t i = 0; i < p.batch_sizes.size(); ++i) {
            if (i)
                batches += ", ";
            batches += std::to_string(p.batch_sizes[i]);
        }
        table.add_row({p.task, p.dataset, p.name, batches,
                       format_double(p.param_gb, 3),
                       std::to_string(p.max_local_batch)});
    }
    std::cout << table.render();
    return 0;
}

/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: run one
 * (trace, scheduler) pair and render comparison tables the way the
 * paper reports them.
 */
#ifndef EF_BENCH_BENCH_UTIL_H_
#define EF_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace bench {

/** Simulate one scheduler on a trace. */
inline RunResult
run_once(const Trace &trace, const std::string &scheduler_name,
         SimConfig config = {})
{
    auto scheduler = make_scheduler(scheduler_name);
    Simulator sim(trace, scheduler.get(), config);
    return sim.run();
}

/** Print a section header. */
inline void
section(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

/**
 * Print deadline-satisfactory-ratio rows plus the paper's
 * "ElasticFlow improves over X by N.NNx" factors.
 */
inline void
print_deadline_table(const std::vector<RunResult> &results)
{
    ConsoleTable table({"scheduler", "met", "submitted", "ratio",
                        "dropped", "elasticflow-vs"});
    double ef_ratio = 0.0;
    for (const RunResult &r : results) {
        if (r.scheduler_name == "elasticflow")
            ef_ratio = r.deadline_ratio();
    }
    for (const RunResult &r : results) {
        double ratio = r.deadline_ratio();
        std::string factor =
            (r.scheduler_name == "elasticflow" || ratio <= 0.0)
                ? "-"
                : format_double(ef_ratio / ratio, 2) + "x";
        table.add_row({r.scheduler_name,
                       std::to_string(r.deadlines_met()),
                       std::to_string(r.submitted(JobKind::kSlo)),
                       format_percent(ratio),
                       std::to_string(r.dropped_count()), factor});
    }
    std::cout << table.render();
}

}  // namespace bench
}  // namespace ef

#endif  // EF_BENCH_BENCH_UTIL_H_

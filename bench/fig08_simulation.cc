/**
 * @file
 * Figure 8 — end-to-end results in simulation.
 * (a) The 195-job trace with Pollux included (the paper transforms the
 *     trace into Pollux's simulator; here all policies share one
 *     simulator).
 * (b) Deadline satisfactory ratio across the ten production-like
 *     cluster presets and the Philly-like trace, with the average
 *     improvement factors the paper reports (12.95x / 2.58x / 2.15x /
 *     1.76x / 1.68x over EDF / Gandiva / Tiresias / Themis / Chronus).
 */
#include "bench_util.h"

int
main()
{
    using namespace ef;

    bench::section("Figure 8(a): simulation incl. Pollux, 195 jobs");
    {
        Trace trace = TraceGenerator::generate(testbed_large_preset());
        std::vector<RunResult> results;
        for (const std::string &name : all_scheduler_names())
            results.push_back(bench::run_once(trace, name));
        bench::print_deadline_table(results);
    }

    bench::section("Figure 8(b): ten cluster traces + Philly");
    const std::vector<std::string> schedulers = {
        "elasticflow", "edf", "gandiva", "tiresias", "themis",
        "chronus"};
    std::vector<std::string> header = {"trace", "gpus", "jobs"};
    for (const std::string &name : schedulers)
        header.push_back(name);
    ConsoleTable table(header);

    std::map<std::string, double> factor_sum;
    std::map<std::string, int> factor_count;
    auto run_trace = [&](const TraceGenConfig &config) {
        Trace trace = TraceGenerator::generate(config);
        Topology topo(trace.topology);
        std::vector<std::string> row = {
            trace.name, std::to_string(topo.total_gpus()),
            std::to_string(trace.jobs.size())};
        double ef_ratio = 0.0;
        for (const std::string &name : schedulers) {
            RunResult result = bench::run_once(trace, name);
            double ratio = result.deadline_ratio();
            if (name == "elasticflow")
                ef_ratio = ratio;
            else if (ratio > 0.0) {
                factor_sum[name] += ef_ratio / ratio;
                ++factor_count[name];
            }
            row.push_back(format_percent(ratio));
        }
        table.add_row(std::move(row));
    };

    for (int preset = 1; preset <= 10; ++preset)
        run_trace(cluster_preset(preset));
    run_trace(philly_preset());
    std::cout << table.render();

    std::cout << "\nAverage ElasticFlow improvement factors:\n";
    ConsoleTable factors({"baseline", "avg factor", "paper"});
    const std::map<std::string, std::string> paper = {
        {"edf", "12.95x"},    {"gandiva", "2.58x"},
        {"tiresias", "2.15x"}, {"themis", "1.76x"},
        {"chronus", "1.68x"}};
    for (const std::string &name : schedulers) {
        if (name == "elasticflow")
            continue;
        double avg = factor_sum[name] /
                     std::max(1, factor_count[name]);
        factors.add_row({name, format_double(avg, 2) + "x",
                         paper.at(name)});
    }
    std::cout << factors.render();
    return 0;
}

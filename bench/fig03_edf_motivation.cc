/**
 * @file
 * Figure 3 — the motivating example: EDF serializes two jobs with the
 * concave curve T(1)=1, T(2)=1.5 (deadlines 3 and 3.5, size 3 each, 2
 * workers) and misses B's deadline; the elastic allocation runs both
 * on one worker and meets both.
 */
#include "bench_util.h"

#include "core/allocator.h"

namespace {

ef::PlanningJob
make_job(ef::JobId id, double remaining, ef::Time deadline)
{
    ef::PlanningJob job;
    job.id = id;
    job.curve = ef::ScalingCurve::from_pow2_table({1.0, 1.5});
    job.remaining_iterations = remaining;
    job.deadline = deadline;
    return job;
}

}  // namespace

int
main()
{
    using namespace ef;
    PlannerConfig config;
    config.total_gpus = 2;
    config.slot_seconds = 1.0;

    bench::section("Figure 3: EDF vs optimal on the concave curve "
                    "T(1)=1, T(2)=1.5");

    // EDF (Fig. 3b): A takes both workers, B runs after.
    {
        double a_finish = 3.0 / 1.5;            // 2 units on 2 workers
        double b_finish = a_finish + 3.0 / 1.5; // then B on 2 workers
        ConsoleTable table({"job", "deadline", "finish", "met?"});
        table.add_row({"A", "3.0", format_double(a_finish, 2),
                       a_finish <= 3.0 ? "yes" : "NO"});
        table.add_row({"B", "3.5", format_double(b_finish, 2),
                       b_finish <= 3.5 ? "yes" : "NO"});
        std::cout << "EDF (whole cluster to the earliest deadline):\n"
                  << table.render();
    }

    // ElasticFlow's Algorithms 1+2 (Fig. 3c): one worker each.
    {
        std::vector<PlanningJob> jobs = {make_job(1, 3.0, 3.0),
                                         make_job(2, 3.0, 3.5)};
        AdmissionOutcome admission = run_admission(config, 0.0, jobs);
        AllocationOutcome outcome =
            run_allocation(config, 0.0, jobs, admission.plans, {});
        ConsoleTable table({"job", "deadline", "gpus-now", "finish",
                            "met?"});
        for (const PlanningJob &job : jobs) {
            Time finish = plan_finish_seconds(
                job.curve, outcome.plans.at(job.id),
                job.remaining_iterations, 1.0);
            table.add_row({job.id == 1 ? "A" : "B",
                           format_double(job.deadline, 1),
                           std::to_string(outcome.gpus_now.at(job.id)),
                           format_double(finish, 2),
                           finish <= job.deadline ? "yes" : "NO"});
        }
        std::cout << "\nElasticFlow (minimum satisfactory shares):\n"
                  << table.render();
    }
    return 0;
}

/**
 * @file
 * Extension benches beyond the paper's figures, covering the §4.4
 * discussion items this reproduction implements:
 *  - node failures: deadline ratio vs. failure rate, with and without
 *    ElasticFlow's admission headroom;
 *  - throughput misestimation: guarantee robustness vs. profiling
 *    error (the margin's working range);
 *  - soft deadlines: hard/soft/best-effort mix outcomes;
 *  - quota policy: a flooding user with and without a quota.
 */
#include "bench_util.h"

#include "sched/admission_policy.h"
#include "sched/elastic_flow.h"

int
main()
{
    using namespace ef;

    bench::section("Node failures: deadline ratio vs MTBF (§4.4)");
    {
        ConsoleTable table({"server MTBF", "headroom", "ratio",
                            "missed admitted", "evictions"});
        TraceGenConfig gen = testbed_large_preset();
        gen.num_jobs = 120;
        Trace trace = TraceGenerator::generate(gen);
        for (double mtbf_days : {30.0, 7.0, 2.0}) {
            for (GpuCount headroom : {0, 16}) {
                SimConfig config;
                config.failures.enabled = true;
                config.failures.server_mtbf_s = mtbf_days * kDay;
                ElasticFlowConfig ef_config;
                ef_config.failure_headroom_gpus = headroom;
                ElasticFlowScheduler scheduler(ef_config);
                Simulator sim(trace, &scheduler, config);
                RunResult result = sim.run();
                int missed = 0, evictions = 0;
                for (const JobOutcome &job : result.jobs) {
                    evictions += job.failures_suffered;
                    if (job.admitted &&
                        job.spec.kind == JobKind::kSlo &&
                        !job.met_deadline()) {
                        ++missed;
                    }
                }
                table.add_row({format_double(mtbf_days, 0) + "d",
                               std::to_string(headroom),
                               format_percent(result.deadline_ratio()),
                               std::to_string(missed),
                               std::to_string(evictions)});
            }
        }
        std::cout << table.render();
    }

    bench::section("Profiling error: guarantee vs throughput noise");
    {
        ConsoleTable table({"noise", "ratio", "missed admitted"});
        TraceGenConfig gen = testbed_large_preset();
        gen.num_jobs = 120;
        Trace trace = TraceGenerator::generate(gen);
        for (double noise : {0.0, 0.02, 0.05, 0.10, 0.20}) {
            SimConfig config;
            config.noise.throughput_error = noise;
            RunResult result =
                bench::run_once(trace, "elasticflow", config);
            int missed = 0;
            for (const JobOutcome &job : result.jobs) {
                if (job.admitted && job.spec.kind == JobKind::kSlo &&
                    !job.met_deadline()) {
                    ++missed;
                }
            }
            table.add_row({format_percent(noise, 0),
                           format_percent(result.deadline_ratio()),
                           std::to_string(missed)});
        }
        std::cout << table.render();
        std::cout << "(the default 5% margin + allowance absorbs "
                     "small profiling error)\n";
    }

    bench::section("Soft deadlines: hard/soft mix (§4.4)");
    {
        ConsoleTable table({"soft fraction", "hard ratio",
                            "soft ratio", "dropped"});
        for (double fraction : {0.0, 0.2, 0.5}) {
            TraceGenConfig gen = testbed_large_preset();
            gen.num_jobs = 120;
            gen.soft_deadline_fraction = fraction;
            Trace trace = TraceGenerator::generate(gen);
            RunResult result = bench::run_once(trace, "elasticflow");
            table.add_row(
                {format_percent(fraction, 0),
                 format_percent(result.deadline_ratio()),
                 format_percent(result.deadline_ratio_of(
                     JobKind::kSoftDeadline)),
                 std::to_string(result.dropped_count())});
        }
        std::cout << table.render();
        std::cout << "(soft jobs are never dropped; misses cost them "
                     "only lateness)\n";
    }

    bench::section("Quota policy vs a flooding user (§4.4)");
    {
        TraceGenConfig gen = testbed_small_preset();
        gen.num_jobs = 40;
        gen.num_users = 4;
        Trace trace = TraceGenerator::generate(gen);
        // user-0 floods: every other job belongs to them.
        for (std::size_t i = 0; i < trace.jobs.size(); i += 2)
            trace.jobs[i].user = "user-0";

        ConsoleTable table({"policy", "user-0 admitted",
                            "others admitted", "ratio"});
        for (int quota : {0, 6}) {
            QuotaPolicy policy(quota);
            ElasticFlowScheduler scheduler;
            if (quota > 0)
                scheduler.set_admission_policy(&policy);
            Simulator sim(trace, &scheduler);
            RunResult result = sim.run();
            int flooder = 0, others = 0;
            for (const JobOutcome &job : result.jobs) {
                if (!job.admitted)
                    continue;
                (job.spec.user == "user-0" ? flooder : others) += 1;
            }
            table.add_row({quota == 0 ? "none"
                                      : std::to_string(quota) + "/day",
                           std::to_string(flooder),
                           std::to_string(others),
                           format_percent(result.deadline_ratio())});
        }
        std::cout << table.render();
    }
    return 0;
}

/**
 * @file
 * Figure 6 — end-to-end deadline satisfactory ratio on the testbed.
 * (a) 4 servers / 32 GPUs, 25 jobs, all seven schedulers (the paper's
 *     Pollux-inclusive small run).
 * (b) 16 servers / 128 GPUs, 195 jobs (Pollux excluded in the paper's
 *     testbed run for cost; included here since simulation is free).
 */
#include "bench_util.h"

int
main()
{
    using namespace ef;

    bench::section("Figure 6(a): 32 GPUs, 25 jobs, all schedulers");
    {
        Trace trace = TraceGenerator::generate(testbed_small_preset());
        std::vector<RunResult> results;
        for (const std::string &name : all_scheduler_names())
            results.push_back(bench::run_once(trace, name));
        bench::print_deadline_table(results);
        std::cout << "(paper: ElasticFlow improves over EDF/Gandiva/"
                     "Tiresias/Themis/Chronus/Pollux by\n 8.0x/2.7x/"
                     "2.0x/2.3x/1.6x/2.0x)\n";
    }

    bench::section("Figure 6(b): 128 GPUs, 195 jobs");
    {
        Trace trace = TraceGenerator::generate(testbed_large_preset());
        std::vector<RunResult> results;
        for (const std::string &name : all_scheduler_names())
            results.push_back(bench::run_once(trace, name));
        bench::print_deadline_table(results);
        std::cout << "(paper: ElasticFlow improves over EDF/Gandiva/"
                     "Tiresias/Themis/Chronus by\n 7.65x/3.17x/1.46x/"
                     "1.71x/1.62x; Pollux not run on the testbed)\n";
    }
    return 0;
}

/**
 * @file
 * Figure 9 — sources of improvement: plain EDF, EDF + Admission
 * Control, EDF + Elastic Scaling, and full ElasticFlow across cluster
 * sizes at a fixed offered load. The paper's observations to
 * reproduce: (i) each ingredient alone helps but trails ElasticFlow;
 * (ii) the EDF+Elastic gap to ElasticFlow closes as the cluster grows
 * (admission matters most when the cluster is small).
 *
 * A second table ablates this reproduction's own design knobs: the
 * planning-slot length and the fill direction (DESIGN.md decisions).
 */
#include "bench_util.h"

#include "sched/elastic_flow.h"

int
main()
{
    using namespace ef;

    bench::section("Figure 9: ablation vs cluster size (fixed load)");
    const std::vector<std::string> variants = {
        "edf", "edf+admission", "edf+elastic", "elasticflow"};
    std::vector<std::string> header = {"gpus"};
    for (const std::string &v : variants)
        header.push_back(v);
    ConsoleTable table(header);
    for (int gpus : {32, 64, 128, 256}) {
        TraceGenConfig config = testbed_large_preset();
        config.topology = TopologySpec::with_total_gpus(gpus);
        config.num_jobs = 120;
        Trace trace = TraceGenerator::generate(config);
        std::vector<std::string> row = {std::to_string(gpus)};
        for (const std::string &variant : variants) {
            RunResult result = bench::run_once(trace, variant);
            row.push_back(format_percent(result.deadline_ratio()));
        }
        table.add_row(std::move(row));
    }
    std::cout << table.render();

    bench::section("Extra ablation: slot length and fill direction "
                    "(ElasticFlow internals)");
    ConsoleTable knobs({"slot(s)", "direction", "ratio", "dropped",
                        "replans"});
    Trace trace = TraceGenerator::generate(testbed_large_preset());
    for (double slot : {300.0, 600.0, 1200.0, 2400.0}) {
        for (FillDirection dir :
             {FillDirection::kEarliest, FillDirection::kLatest}) {
            ElasticFlowConfig config;
            config.slot_seconds = slot;
            config.direction = dir;
            ElasticFlowScheduler scheduler(config);
            Simulator sim(trace, &scheduler);
            RunResult result = sim.run();
            knobs.add_row(
                {format_double(slot, 0),
                 dir == FillDirection::kEarliest ? "earliest"
                                                 : "latest",
                 format_percent(result.deadline_ratio()),
                 std::to_string(result.dropped_count()),
                 std::to_string(result.replan_failures)});
        }
    }
    std::cout << knobs.render();
    return 0;
}

/**
 * @file
 * Micro benchmarks (google-benchmark) for ef::defrag (DESIGN.md §14):
 * the cost of one SA planning round over a heavily fragmented 256-GPU
 * placement, and an end-to-end churn-trace run with background defrag
 * enabled. Both are also compiled into micro_scheduler_overhead (with
 * EF_BENCH_NO_MAIN) so repack cost is recorded into BENCH_sched.json
 * and stays visible in the repo's perf trajectory.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/fragmentation.h"
#include "cluster/placement.h"
#include "cluster/topology.h"
#include "common/check.h"
#include "defrag/defrag.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/perf_model.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

/**
 * A deliberately fragmented fixture: mixed-size jobs scattered
 * round-robin across a 256-GPU cluster, so nearly every multi-GPU job
 * spans more servers than its compact shape needs.
 */
struct FragmentedFixture
{
    Topology topology;
    PerfModel perf;
    PlacementManager placement;
    std::vector<defrag::DefragJob> jobs;

    FragmentedFixture()
        : topology(TopologySpec::with_total_gpus(256)),
          perf(&topology),
          placement(&topology)
    {
        const GpuCount sizes[] = {2, 4, 8, 4};
        JobId id = 0;
        for (int i = 0; i < 48; ++i) {
            GpuCount size = sizes[i % 4];
            if (!placement.place(id, size, PlacementStrategy::kScatter,
                                 false).ok)
                break;
            jobs.push_back({id, DnnModel::kResNet50, 256});
            ++id;
        }
        EF_CHECK_MSG(jobs.size() >= 40u, "bench fixture underfilled");
    }
};

/** One full SA planning round (max_steps proposals plus the concrete
 *  GPU-id materialization of the winning batch) on the fragmented
 *  256-GPU fixture. Moves are planned, never applied, so every
 *  iteration searches the same placement. */
void
BM_DefragPlanRound(benchmark::State &state)
{
    FragmentedFixture fx;
    defrag::DefragConfig config;
    config.enabled = true;
    config.budget_units_per_round = 64.0;
    config.max_steps = static_cast<int>(state.range(0));
    config.governor = {1000.0, 1000.0, kTimeInfinity};

    defrag::Defragmenter defrag(config, &fx.topology, &fx.perf);
    Time now = 0.0;
    double gain = 0.0;
    int moves = 0;
    for (auto _ : state) {
        now += 1.0;
        EF_CHECK_MSG(defrag.try_begin_round(now),
                     "bench governor starved a round");
        defrag::DefragPlan plan = defrag.plan_round(fx.placement,
                                                    fx.jobs);
        benchmark::DoNotOptimize(plan);
        gain = plan.objective_before - plan.objective_after;
        moves = static_cast<int>(plan.moves.size());
    }
    state.counters["objective_gain"] = gain;
    state.counters["moves_planned"] = moves;
}
BENCHMARK(BM_DefragPlanRound)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMicrosecond);

/** End-to-end churn run (64 GPUs, 60 jobs, tiresias) with background
 *  defrag: the full price of governor-gated repacking inside the
 *  planning loop, with the fragmentation win recorded as counters. */
void
BM_DefragChurnEndToEnd(benchmark::State &state)
{
    static const Trace kTrace = [] {
        TraceGenConfig gen = churn_preset();
        gen.num_jobs = 60;
        return TraceGenerator::generate(gen);
    }();

    SimConfig config;
    config.defrag.enabled = state.range(0) != 0;

    RunResult result;
    for (auto _ : state) {
        auto scheduler = make_scheduler("tiresias");
        Simulator sim(kTrace, scheduler.get(), config);
        result = sim.run();
        benchmark::DoNotOptimize(result.state_hash);
    }
    state.counters["defrag_moves"] =
        static_cast<double>(result.defrag_moves);
    state.counters["frag_avg_pct"] = 100.0 * average_fragmentation(result);
    state.counters["span_excess_avg"] = average_span_excess(result);
    state.counters["deadline_pct"] = 100.0 * result.deadline_ratio();
}
BENCHMARK(BM_DefragChurnEndToEnd)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ef

#ifndef EF_BENCH_NO_MAIN
/** Same custom main as micro_scheduler_overhead: record the build type
 *  of the ef libraries under measurement (`ef_build_type`), which the
 *  release-baseline guard gates on. */
int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("ef_build_type", "release");
#else
    benchmark::AddCustomContext("ef_build_type", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
#endif  // EF_BENCH_NO_MAIN

# Refuses a scheduler benchmark baseline recorded from an unoptimized
# build. Invoked as:
#
#   cmake -DBENCH_JSON=<path> -P bench/check_release_baseline.cmake
#
# The gate keys on the `ef_build_type` context entry written by
# bench/micro_scheduler_overhead.cc, which reflects how the ef
# libraries under measurement were compiled (-DNDEBUG => "release").
# The upstream `library_build_type` key only describes the prebuilt
# google-benchmark harness and is deliberately not consulted.
if(NOT DEFINED BENCH_JSON)
    message(FATAL_ERROR "pass -DBENCH_JSON=<path to BENCH_sched.json>")
endif()
if(NOT EXISTS "${BENCH_JSON}")
    message(FATAL_ERROR "no baseline at ${BENCH_JSON}")
endif()
file(READ "${BENCH_JSON}" contents)
if(contents MATCHES "\"ef_build_type\": \"release\"")
    message(STATUS "baseline ${BENCH_JSON}: ef_build_type=release, ok")
elseif(contents MATCHES "\"ef_build_type\": \"debug\"")
    message(FATAL_ERROR
        "baseline ${BENCH_JSON} was recorded from a debug build — "
        "re-record with CMAKE_BUILD_TYPE=Release "
        "(cmake --build build --target bench_sched_json)")
else()
    message(FATAL_ERROR
        "baseline ${BENCH_JSON} has no ef_build_type context entry — "
        "recorded by an old harness; re-record with "
        "cmake --build build --target bench_sched_json in Release mode")
endif()

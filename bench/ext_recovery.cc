/**
 * @file
 * Micro benchmarks (google-benchmark) for the durable control plane
 * (DESIGN.md §12): the cost of writing one full-state snapshot, and a
 * complete recovery — snapshot load plus journal-tail replay — on the
 * 2048-GPU / 1000-job fixture. Both are also compiled into
 * micro_scheduler_overhead (with EF_BENCH_NO_MAIN) so recovery cost is
 * recorded into BENCH_sched.json and stays visible in the repo's perf
 * trajectory.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/check.h"
#include "recover/log.h"
#include "recover/snapshot.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace ef {
namespace {

constexpr GpuCount kGpus = 2048;
constexpr int kJobs = 1000;

const Trace &
big_trace()
{
    static const Trace kTrace = [] {
        TraceGenConfig gen = testbed_large_preset();
        gen.name = "recovery-2048gpu-1000jobs";
        gen.topology = TopologySpec::with_total_gpus(kGpus);
        gen.num_jobs = kJobs;
        gen.mean_interarrival_s = 60.0;
        return TraceGenerator::generate(gen);
    }();
    return kTrace;
}

/**
 * One uninterrupted durable run with an effectively-infinite snapshot
 * cadence: afterwards @p dir holds the base snapshot of the fully
 * loaded initial state plus a journal with every round commit —
 * recovering it replays the entire run.
 */
RunResult
record_journal(const std::string &dir, bool recover = false)
{
    SimConfig config;
    config.durability.journal_dir = dir;
    config.durability.snapshot_every = 1u << 30;
    config.durability.recover = recover;
    auto scheduler = make_scheduler("elasticflow");
    Simulator sim(big_trace(), scheduler.get(), config);
    recover::Status st = sim.prepare_durability();
    EF_CHECK_MSG(st.ok(), "bench journal setup failed");
    return sim.run();
}

void
copy_file(const std::string &from, const std::string &to)
{
    std::FILE *in = std::fopen(from.c_str(), "rb");
    std::FILE *out = std::fopen(to.c_str(), "wb");
    EF_CHECK_MSG(in != nullptr && out != nullptr,
                 "bench fixture copy failed");
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0)
        std::fwrite(buf, 1, n, out);
    std::fclose(in);
    std::fclose(out);
}

/** Writing one full-state snapshot (serialize was paid by the owner;
 *  this is the durable path: atomic replace + fsync + journal
 *  truncation) for the 2048-GPU / 1000-job state. */
void
BM_SnapshotWrite(benchmark::State &state)
{
    const std::string dir = "bench_recovery_snap";
    record_journal(dir);
    std::string payload;
    recover::Status st = recover::read_snapshot_file(
        recover::DurableLog::snapshot_path(dir), &payload);
    EF_CHECK_MSG(st.ok(), "bench snapshot read failed");

    recover::DurableLog log;
    EF_CHECK_MSG(log.open(dir + "_out").ok(),
                 "bench snapshot dir failed");
    for (auto _ : state) {
        benchmark::DoNotOptimize(log.write_snapshot(payload));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(payload.size()));
    state.counters["snapshot_bytes"] =
        static_cast<double>(payload.size());
}
BENCHMARK(BM_SnapshotWrite)->Unit(benchmark::kMillisecond);

/** A complete recovery of the 2048-GPU / 1000-job run: load the base
 *  snapshot, then re-execute and hash-verify every journaled round
 *  (the journal spans the whole run, so this is a full replay). */
void
BM_RecoveryReplay(benchmark::State &state)
{
    const std::string dir = "bench_recovery_replay";
    const RunResult base = record_journal(dir);
    const std::string snap = recover::DurableLog::snapshot_path(dir);
    const std::string journal = recover::DurableLog::journal_path(dir);
    // Stash the pristine pre-crash image: each recovery re-anchors
    // the log (fresh snapshot, truncated journal) and would otherwise
    // leave nothing to replay for the next iteration.
    copy_file(snap, snap + ".orig");
    copy_file(journal, journal + ".orig");

    std::uint64_t rounds = 0;
    for (auto _ : state) {
        state.PauseTiming();
        copy_file(snap + ".orig", snap);
        copy_file(journal + ".orig", journal);
        state.ResumeTiming();
        RunResult replayed = record_journal(dir, /*recover=*/true);
        EF_CHECK_MSG(replayed.state_hash == base.state_hash,
                     "bench recovery diverged from the baseline");
        rounds = replayed.state_hash_samples;
    }
    state.counters["rounds_replayed"] = static_cast<double>(rounds);
}
BENCHMARK(BM_RecoveryReplay)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ef

#ifndef EF_BENCH_NO_MAIN
/** Same custom main as micro_scheduler_overhead: record the build type
 *  of the ef libraries under measurement (`ef_build_type`), which the
 *  release-baseline guard gates on. */
int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("ef_build_type", "release");
#else
    benchmark::AddCustomContext("ef_build_type", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
#endif  // EF_BENCH_NO_MAIN

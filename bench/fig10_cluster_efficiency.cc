/**
 * @file
 * Figure 10 — cluster efficiency (Eq. 8) over time and makespan.
 * Following §6.4, deadlines are set loose (1.5x duration) so every
 * scheduler runs the identical 100-job set on 128 GPUs; ElasticFlow
 * should sustain the highest efficiency early on and finish the whole
 * batch first (smallest makespan).
 */
#include "bench_util.h"

int
main()
{
    using namespace ef;
    TraceGenConfig config = testbed_large_preset();
    config.num_jobs = 100;
    config.mean_interarrival_s = 150.0;  // a dense burst of work
    config.tightness_lo = 4.0;  // loose enough to admit everything
    config.tightness_hi = 4.0;
    Trace trace = TraceGenerator::generate(config);

    bench::section("Figure 10: cluster efficiency (Eq. 8) and makespan");
    ConsoleTable table({"scheduler", "CE@10h", "CE@20h", "CE@40h",
                        "makespan(h)", "admitted"});
    std::map<std::string, RunResult> results;
    for (const std::string &name : all_scheduler_names()) {
        RunResult result = bench::run_once(trace, name);
        table.add_row(
            {name,
             format_percent(result.average_cluster_efficiency(
                 10.0 * kHour)),
             format_percent(result.average_cluster_efficiency(
                 20.0 * kHour)),
             format_percent(result.average_cluster_efficiency(
                 40.0 * kHour)),
             format_double(result.makespan / kHour, 1),
             std::to_string(result.admitted_count())});
        results.emplace(name, std::move(result));
    }
    std::cout << table.render();

    std::cout << "\nCluster efficiency over time (first 40 h):\n";
    for (const std::string name : {"elasticflow", "edf", "chronus"}) {
        std::cout << name << ":\n"
                  << render_sparkline(
                         results.at(name).cluster_efficiency.resample(
                             0.0, 40.0 * kHour, 64),
                         5);
    }
    return 0;
}

#!/usr/bin/env sh
# One-command local gate: everything the CI lint job blocks on, in
# order of increasing cost. Run from anywhere inside the repo:
#
#   tools/check.sh            # build tools if needed, then lint+audit
#   tools/check.sh --no-build # use existing build/ binaries as-is
#
# Exits non-zero on the first failing stage. clang-format runs only on
# files that differ from origin/main (falling back to HEAD) and is
# skipped with a note when clang-format is not installed.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

build=1
[ "${1:-}" = "--no-build" ] && build=0

if [ "$build" -eq 1 ]; then
    cmake -B build -S . > /dev/null
    cmake --build build -j --target ef_lint ef_audit > /dev/null
fi

echo "== ef-lint =="
./build/tools/ef_lint/ef_lint --root . --jobs 4 --warn-unused-allow

echo "== ef-audit =="
./build/tools/ef_audit/ef_audit --root . --jobs 4

echo "== clang-format (changed files) =="
if command -v clang-format > /dev/null 2>&1; then
    base=$(git merge-base origin/main HEAD 2> /dev/null ||
        git rev-parse HEAD)
    files=$(git diff --name-only --diff-filter=d "$base" \
        -- '*.h' '*.hpp' '*.cc' '*.cpp' || true)
    if [ -n "$files" ]; then
        echo "$files" | xargs clang-format --dry-run -Werror
    else
        echo "no C++ files changed"
    fi
else
    echo "clang-format not installed — skipped"
fi

echo "check.sh: all gates passed"

/** @file Manifest parsing (see audit.h for the format contract). */
#include "audit.h"

#include <sstream>

namespace ef {
namespace audit {
namespace {

void
manifest_error(std::vector<Finding> *errors, std::string_view path,
               int line, std::string message)
{
    if (errors == nullptr)
        return;
    errors->push_back(Finding{std::string(path), line, "manifest", "",
                              std::move(message)});
}

std::vector<std::string>
split_words(std::string_view line)
{
    std::vector<std::string> words;
    std::istringstream in{std::string(line)};
    std::string word;
    while (in >> word)
        words.push_back(word);
    return words;
}

}  // namespace

Manifest
parse_manifest(std::string_view path, std::string_view text,
               std::vector<Finding> *errors)
{
    Manifest manifest;
    Manifest::Type *current = nullptr;
    int ln = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, eol == std::string_view::npos ? text.size() - pos
                                               : eol - pos);
        ++ln;
        pos = eol == std::string_view::npos ? text.size() + 1
                                            : eol + 1;
        std::size_t hash = line.find('#');
        if (hash != std::string_view::npos)
            line = line.substr(0, hash);
        std::vector<std::string> words = split_words(line);
        if (words.empty())
            continue;
        const std::string &kw = words[0];
        if (kw == "layer") {
            // layer <dir> : [<direct deps>...]
            if (words.size() < 3 || words[2] != ":") {
                manifest_error(errors, path, ln,
                               "expected 'layer <dir> : [deps...]'");
                continue;
            }
            Manifest::Layer layer;
            layer.dir = words[1];
            layer.deps.assign(words.begin() + 3, words.end());
            layer.line = ln;
            manifest.layers.push_back(std::move(layer));
        } else if (kw == "type") {
            if (words.size() != 2) {
                manifest_error(errors, path, ln,
                               "expected 'type <qualified-name>'");
                current = nullptr;
                continue;
            }
            Manifest::Type type;
            type.name = words[1];
            type.line = ln;
            manifest.types.push_back(std::move(type));
            current = &manifest.types.back();
        } else if (kw == "def") {
            if (current == nullptr || words.size() != 2) {
                manifest_error(errors, path, ln,
                               "'def <file>' must follow a type line");
                continue;
            }
            current->def_file = words[1];
        } else if (kw == "hash" || kw == "encode" || kw == "decode") {
            if (current == nullptr || words.size() != 3) {
                manifest_error(errors, path, ln,
                               "'" + kw +
                                   " <file> <function>' must follow "
                                   "a type line");
                continue;
            }
            Manifest::Surface surface{words[1], words[2], ln};
            if (kw == "hash")
                current->hash.push_back(std::move(surface));
            else if (kw == "encode")
                current->encode.push_back(std::move(surface));
            else
                current->decode.push_back(std::move(surface));
        } else {
            manifest_error(errors, path, ln,
                           "unknown manifest directive '" + kw + "'");
        }
    }
    for (const Manifest::Type &type : manifest.types) {
        if (type.def_file.empty()) {
            manifest_error(errors, path, type.line,
                           "type " + type.name +
                               " has no 'def <file>' line");
        }
    }
    return manifest;
}

}  // namespace audit
}  // namespace ef

/**
 * @file
 * ef-audit command-line driver.
 *
 *   ef_audit --root <repo-root>       audit src/ and tools/ against
 *                                     tools/ef_audit/state_manifest.txt
 *   --manifest <file>                 alternate manifest (repo-relative
 *                                     or absolute)
 *   --jobs N                          index files on N threads
 *   --json <file|->                   machine-readable findings
 *   --sarif <file>                    SARIF 2.1.0 report
 *   --list-rules                      print rule names and exit
 *
 * Exits 0 when clean, 1 when any finding was reported, 2 on usage/IO
 * errors. Text output is one "file:line: [rule] message" per finding,
 * sorted by (file, line, rule) so runs are diffable regardless of
 * --jobs.
 */
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "audit.h"

namespace fs = std::filesystem;

namespace {

bool
auditable(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp";
}

std::string
slurp(const fs::path &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ok = false;
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ok = true;
    return buffer.str();
}

bool
spill(const fs::path &path, std::string_view text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << text;
    return static_cast<bool>(out);
}

int
usage()
{
    std::cerr
        << "usage: ef_audit --root <repo-root> [--manifest <file>]\n"
        << "                [--jobs N] [--json <file|->] "
        << "[--sarif <file>]\n"
        << "       ef_audit --list-rules\n";
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    fs::path root;
    std::string manifest_arg;
    std::string json_out;
    std::string sarif_out;
    ef::audit::AuditOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &name : ef::audit::rule_names())
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--root") {
            if (i + 1 >= argc)
                return usage();
            root = argv[++i];
        } else if (arg == "--manifest") {
            if (i + 1 >= argc)
                return usage();
            manifest_arg = argv[++i];
        } else if (arg == "--jobs") {
            if (i + 1 >= argc)
                return usage();
            options.jobs = std::atoi(argv[++i]);
            if (options.jobs < 1)
                return usage();
        } else if (arg == "--json") {
            if (i + 1 >= argc)
                return usage();
            json_out = argv[++i];
        } else if (arg == "--sarif") {
            if (i + 1 >= argc)
                return usage();
            sarif_out = argv[++i];
        } else {
            return usage();
        }
    }
    if (root.empty())
        return usage();
    if (!fs::is_directory(root)) {
        std::cerr << "ef_audit: not a directory: " << root.string()
                  << "\n";
        return 2;
    }

    fs::path manifest_path =
        manifest_arg.empty()
            ? root / "tools" / "ef_audit" / "state_manifest.txt"
            : fs::path(manifest_arg).is_absolute()
                  ? fs::path(manifest_arg)
                  : root / manifest_arg;
    bool ok = false;
    const std::string manifest_text = slurp(manifest_path, ok);
    if (!ok) {
        std::cerr << "ef_audit: cannot read manifest "
                  << manifest_path.string() << "\n";
        return 2;
    }

    std::vector<std::string> rels;
    for (const char *dir : {"src", "tools"}) {
        const fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (entry.is_regular_file() && auditable(entry.path())) {
                rels.push_back(fs::relative(entry.path(), root)
                                   .generic_string());
            }
        }
    }
    std::sort(rels.begin(), rels.end());

    std::vector<ef::audit::SourceFile> files;
    files.reserve(rels.size());
    int file_errors = 0;
    for (const std::string &rel : rels) {
        bool read_ok = false;
        std::string text = slurp(root / rel, read_ok);
        if (!read_ok) {
            std::cerr << "ef_audit: cannot read " << rel << "\n";
            ++file_errors;
            continue;
        }
        files.push_back({rel, std::move(text)});
    }

    std::vector<ef::audit::Finding> findings;
    const ef::audit::Manifest manifest = ef::audit::parse_manifest(
        fs::relative(manifest_path, root).generic_string(),
        manifest_text, &findings);
    std::vector<ef::audit::Finding> audited =
        ef::audit::run_audit(manifest, files, options);
    findings.insert(findings.end(),
                    std::make_move_iterator(audited.begin()),
                    std::make_move_iterator(audited.end()));
    std::sort(findings.begin(), findings.end(),
              [](const ef::audit::Finding &a,
                 const ef::audit::Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.symbol) <
                         std::tie(b.file, b.line, b.rule, b.symbol);
              });

    for (const ef::audit::Finding &finding : findings)
        std::cout << ef::audit::format_finding(finding) << "\n";
    if (!json_out.empty()) {
        const std::string doc =
            ef::audit::findings_to_json(findings);
        if (json_out == "-") {
            std::cout << doc << "\n";
        } else if (!spill(json_out, doc)) {
            std::cerr << "ef_audit: cannot write " << json_out
                      << "\n";
            ++file_errors;
        }
    }
    if (!sarif_out.empty() &&
        !spill(sarif_out, ef::audit::findings_to_sarif(findings))) {
        std::cerr << "ef_audit: cannot write " << sarif_out << "\n";
        ++file_errors;
    }

    std::cerr << "ef_audit: " << files.size() << " files, "
              << findings.size() << " finding(s)\n";
    if (file_errors > 0)
        return 2;
    return findings.empty() ? 0 : 1;
}

/** @file See index.h. */
#include "index.h"

#include <cctype>
#include <utility>

namespace ef {
namespace audit {
namespace {

using lint::Token;

bool
is_punct(const Token &tok, std::string_view text)
{
    return tok.kind == Token::kPunct && tok.text == text;
}

bool
is_ident(const Token &tok, std::string_view text)
{
    return tok.kind == Token::kIdent && tok.text == text;
}

bool
any_of(std::string_view text, std::initializer_list<std::string_view> set)
{
    for (std::string_view s : set) {
        if (text == s)
            return true;
    }
    return false;
}

/**
 * Index after the brace/bracket/paren block opening at @p i (which
 * must hold the opening token). Only the opener's own kind nests.
 */
std::size_t
skip_balanced(const std::vector<Token> &tokens, std::size_t i,
              std::string_view open, std::string_view close)
{
    int depth = 0;
    for (; i < tokens.size(); ++i) {
        if (is_punct(tokens[i], open)) {
            ++depth;
        } else if (is_punct(tokens[i], close)) {
            if (--depth == 0)
                return i + 1;
        }
    }
    return tokens.size();
}

/**
 * Split [begin, end) into top-level comma-separated ranges. Depth
 * tracking covers (), [], {} exactly and template angle brackets
 * heuristically (a '<' after an identifier or '>' opens a level).
 */
std::vector<std::pair<std::size_t, std::size_t>>
split_top_level(const std::vector<Token> &tokens, std::size_t begin,
                std::size_t end)
{
    std::vector<std::pair<std::size_t, std::size_t>> out;
    int depth = 0;
    int angle = 0;
    std::size_t start = begin;
    for (std::size_t i = begin; i < end; ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != Token::kPunct)
            continue;
        if (tok.text == "(" || tok.text == "[" || tok.text == "{") {
            ++depth;
        } else if (tok.text == ")" || tok.text == "]" ||
                   tok.text == "}") {
            if (depth > 0)
                --depth;
        } else if (tok.text == "<") {
            if (i > begin && (tokens[i - 1].kind == Token::kIdent ||
                              is_punct(tokens[i - 1], ">"))) {
                ++angle;
            }
        } else if (tok.text == ">") {
            if (angle > 0)
                --angle;
        } else if (tok.text == ">>") {
            angle = angle >= 2 ? angle - 2 : 0;
        } else if (tok.text == "," && depth == 0 && angle == 0) {
            out.push_back({start, i});
            start = i + 1;
        }
    }
    out.push_back({start, end});
    return out;
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

void
set_scopes(AuditAnnotation *a, std::string_view scope)
{
    if (scope == "hash") {
        a->hash = true;
    } else if (scope == "encode") {
        a->encode = true;
    } else if (scope == "decode") {
        a->decode = true;
    } else if (scope == "codec") {
        a->encode = true;
        a->decode = true;
    } else {  // "all"
        a->hash = true;
        a->encode = true;
        a->decode = true;
    }
}

/** Is @p head a comma list drawn entirely from the scope keywords? */
bool
parse_scope_list(std::string_view head, AuditAnnotation *a)
{
    AuditAnnotation scratch;
    std::size_t pos = 0;
    bool any = false;
    while (pos <= head.size()) {
        std::size_t comma = head.find(',', pos);
        std::string_view piece = head.substr(
            pos, comma == std::string_view::npos ? head.size() - pos
                                                 : comma - pos);
        std::string word = lint::trim(piece);
        if (!any_of(word, {"hash", "encode", "decode", "codec", "all"}))
            return false;
        set_scopes(&scratch, word);
        any = true;
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    if (!any)
        return false;
    a->hash = scratch.hash;
    a->encode = scratch.encode;
    a->decode = scratch.decode;
    return true;
}

void
parse_annotation(std::string_view comment, int line,
                 std::vector<AuditAnnotation> &out)
{
    const std::string_view kTag = "ef-audit:";
    std::size_t pos = comment.find(kTag);
    if (pos == std::string_view::npos)
        return;
    AuditAnnotation a;
    a.line = line;
    std::size_t i = pos + kTag.size();
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i]))) {
        ++i;
    }
    std::size_t open = comment.find('(', i);
    if (open == std::string_view::npos) {
        a.malformed = true;
        a.error = "expected 'ef-audit: transient(...)' / 'covered(...)'"
                  " / 'allow(<rule>: <reason>)'";
        out.push_back(std::move(a));
        return;
    }
    const std::string keyword = lint::trim(comment.substr(i, open - i));
    std::size_t close = comment.find(')', open);
    std::string_view content = comment.substr(
        open + 1, (close == std::string_view::npos ? comment.size()
                                                   : close) -
                      open - 1);
    if (keyword == "allow") {
        a.kind = AuditAnnotation::kAllow;
        std::size_t colon = content.find(':');
        if (colon == std::string_view::npos) {
            a.malformed = true;
            a.error = "allow() needs a reason: allow(<rule>: <reason>)";
            out.push_back(std::move(a));
            return;
        }
        a.rule = lint::trim(content.substr(0, colon));
        a.reason = lint::trim(content.substr(colon + 1));
        if (a.rule.empty() || a.reason.empty()) {
            a.malformed = true;
            a.error =
                "allow() needs a rule name and a non-empty reason";
        }
        out.push_back(std::move(a));
        return;
    }
    if (keyword != "transient" && keyword != "covered") {
        a.malformed = true;
        a.error = "unknown ef-audit annotation '" + keyword +
                  "' (expected transient / covered / allow)";
        out.push_back(std::move(a));
        return;
    }
    a.kind = keyword == "covered" ? AuditAnnotation::kCovered
                                  : AuditAnnotation::kTransient;
    std::size_t colon = content.find(':');
    if (colon != std::string_view::npos &&
        parse_scope_list(content.substr(0, colon), &a)) {
        a.reason = lint::trim(content.substr(colon + 1));
    } else {
        // No scope head: the whole content is the reason, all scopes.
        set_scopes(&a, "all");
        a.reason = lint::trim(content);
    }
    if (a.reason.empty()) {
        a.malformed = true;
        a.error = keyword + "() needs a non-empty reason";
    }
    out.push_back(std::move(a));
}

// ---------------------------------------------------------------------------
// Lambda sites
// ---------------------------------------------------------------------------

void
parse_lambda(const std::vector<Token> &tokens, std::size_t open_bracket,
             int call_line, std::vector<LambdaSite> &out)
{
    LambdaSite site;
    site.line = call_line;
    const std::size_t cap_end =
        skip_balanced(tokens, open_bracket, "[", "]");  // one past ']'
    if (cap_end >= tokens.size())
        return;
    for (auto [b, e] :
         split_top_level(tokens, open_bracket + 1, cap_end - 1)) {
        if (b >= e)
            continue;
        const Token &first = tokens[b];
        if (e - b == 1 && is_punct(first, "&")) {
            site.capture_default_ref = true;
        } else if (e - b == 1 && is_punct(first, "=")) {
            site.capture_default_value = true;
        } else if (is_ident(first, "this") ||
                   (is_punct(first, "*") && b + 1 < e &&
                    is_ident(tokens[b + 1], "this"))) {
            site.captures_this = true;
        } else if (is_punct(first, "&")) {
            for (std::size_t k = b + 1; k < e; ++k) {
                if (tokens[k].kind == Token::kIdent) {
                    site.by_ref.insert(tokens[k].text);
                    break;
                }
            }
        } else {
            for (std::size_t k = b; k < e; ++k) {
                if (tokens[k].kind == Token::kIdent) {
                    site.by_value.insert(tokens[k].text);
                    break;
                }
            }
        }
    }
    std::size_t j = cap_end;
    if (j < tokens.size() && is_punct(tokens[j], "(")) {
        const std::size_t params_end =
            skip_balanced(tokens, j, "(", ")");
        for (auto [b, e] :
             split_top_level(tokens, j + 1, params_end - 1)) {
            for (std::size_t k = e; k-- > b;) {
                if (tokens[k].kind == Token::kIdent) {
                    site.params.insert(tokens[k].text);
                    break;
                }
            }
        }
        j = params_end;
    }
    // Specifiers (mutable, noexcept, trailing return) up to the body.
    while (j < tokens.size() && !is_punct(tokens[j], "{"))
        ++j;
    if (j >= tokens.size())
        return;
    site.body_begin = j + 1;
    site.body_end = skip_balanced(tokens, j, "{", "}") - 1;
    out.push_back(std::move(site));
}

}  // namespace

FileIndex
index_file(std::string path, std::string_view text)
{
    FileIndex index;
    index.path = std::move(path);
    index.lexed = lint::lex(text);
    for (const lint::Comment &comment : index.lexed.comments)
        parse_annotation(comment.text, comment.line, index.annotations);

    const std::vector<Token> &tokens = index.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (is_punct(tok, "#") && i + 2 < tokens.size() &&
            is_ident(tokens[i + 1], "include") &&
            tokens[i + 2].kind == Token::kString) {
            index.includes.push_back(
                {tokens[i + 2].line, tokens[i + 2].text});
            i += 2;
            continue;
        }
        if (is_ident(tok, "parallel_for") && i + 1 < tokens.size() &&
            is_punct(tokens[i + 1], "(")) {
            const std::size_t args_end =
                skip_balanced(tokens, i + 1, "(", ")");
            for (std::size_t j = i + 2; j < args_end; ++j) {
                // A '[' directly after '(' or ',' introduces a lambda;
                // after anything else it is a subscript.
                if (is_punct(tokens[j], "[") &&
                    (is_punct(tokens[j - 1], "(") ||
                     is_punct(tokens[j - 1], ","))) {
                    parse_lambda(tokens, j, tok.line,
                                 index.lambda_sites);
                    j = skip_balanced(tokens, j, "[", "]") - 1;
                }
            }
        }
    }
    return index;
}

// ---------------------------------------------------------------------------
// Class bodies
// ---------------------------------------------------------------------------

namespace {

const std::initializer_list<std::string_view> kDeclSkipLead = {
    "using",  "typedef", "friend", "static", "template",
    "public", "private", "protected", "class", "struct",
    "enum",   "union",   "operator"};

void
finish_decl(const std::vector<Token> &tokens,
            const std::vector<std::size_t> &decl, bool has_top_paren,
            std::vector<FieldInfo> &fields)
{
    if (decl.empty())
        return;
    const Token &first = tokens[decl.front()];
    if (first.kind == Token::kIdent &&
        any_of(first.text, kDeclSkipLead)) {
        return;
    }
    for (std::size_t idx : decl) {
        if (is_ident(tokens[idx], "operator"))
            return;
    }
    if (has_top_paren)
        return;  // function declaration (or function-pointer member)

    // Split declarator list on top-level commas of the *declaration*
    // (recomputed over the collected token indices).
    int depth = 0;
    int angle = 0;
    std::vector<std::vector<std::size_t>> chunks(1);
    for (std::size_t idx : decl) {
        const Token &tok = tokens[idx];
        if (tok.kind == Token::kPunct) {
            if (tok.text == "(" || tok.text == "[" ||
                tok.text == "{") {
                ++depth;
            } else if (tok.text == ")" || tok.text == "]" ||
                       tok.text == "}") {
                if (depth > 0)
                    --depth;
            } else if (tok.text == "<") {
                if (!chunks.back().empty()) {
                    const Token &prev =
                        tokens[chunks.back().back()];
                    if (prev.kind == Token::kIdent ||
                        is_punct(prev, ">"))
                        ++angle;
                }
            } else if (tok.text == ">") {
                if (angle > 0)
                    --angle;
            } else if (tok.text == ">>") {
                angle = angle >= 2 ? angle - 2 : 0;
            } else if (tok.text == "," && depth == 0 && angle == 0) {
                chunks.emplace_back();
                continue;
            }
        }
        chunks.back().push_back(idx);
    }
    for (const std::vector<std::size_t> &chunk : chunks) {
        // Name: the identifier directly before a top-level '=', else
        // the last identifier of the declarator.
        std::size_t name_idx = tokens.size();
        int d = 0, ang = 0;
        for (std::size_t k = 0; k < chunk.size(); ++k) {
            const Token &tok = tokens[chunk[k]];
            if (tok.kind != Token::kPunct)
                continue;
            if (tok.text == "(" || tok.text == "[" ||
                tok.text == "{") {
                ++d;
            } else if (tok.text == ")" || tok.text == "]" ||
                       tok.text == "}") {
                if (d > 0)
                    --d;
            } else if (tok.text == "<") {
                if (k > 0 && (tokens[chunk[k - 1]].kind ==
                                  Token::kIdent ||
                              is_punct(tokens[chunk[k - 1]], ">")))
                    ++ang;
            } else if (tok.text == ">") {
                if (ang > 0)
                    --ang;
            } else if (tok.text == ">>") {
                ang = ang >= 2 ? ang - 2 : 0;
            } else if (tok.text == "=" && d == 0 && ang == 0) {
                if (k > 0 &&
                    tokens[chunk[k - 1]].kind == Token::kIdent)
                    name_idx = chunk[k - 1];
                break;
            }
        }
        if (name_idx == tokens.size()) {
            for (std::size_t k = chunk.size(); k-- > 0;) {
                if (tokens[chunk[k]].kind == Token::kIdent) {
                    name_idx = chunk[k];
                    break;
                }
            }
        }
        if (name_idx == tokens.size())
            continue;
        const Token &name = tokens[name_idx];
        if (any_of(name.text,
                   {"const", "mutable", "volatile", "int", "bool",
                    "double", "float", "char", "auto", "void",
                    "unsigned", "signed", "long", "short"})) {
            continue;
        }
        fields.push_back(
            {name.text, name.line, tokens[decl.front()].line});
    }
}

std::vector<FieldInfo>
parse_fields(const std::vector<Token> &tokens, std::size_t begin,
             std::size_t end)
{
    std::vector<FieldInfo> fields;
    std::vector<std::size_t> decl;
    int paren = 0;
    int angle = 0;
    bool has_top_paren = false;
    std::size_t i = begin;
    while (i < end) {
        const Token &tok = tokens[i];
        if (tok.kind != Token::kPunct) {
            decl.push_back(i);
            ++i;
            continue;
        }
        const std::string &text = tok.text;
        if (text == "(") {
            if (paren == 0 && angle == 0)
                has_top_paren = true;
            ++paren;
            decl.push_back(i);
            ++i;
        } else if (text == ")") {
            if (paren > 0)
                --paren;
            decl.push_back(i);
            ++i;
        } else if (text == "<") {
            if (!decl.empty() &&
                (tokens[decl.back()].kind == Token::kIdent ||
                 is_punct(tokens[decl.back()], ">")))
                ++angle;
            decl.push_back(i);
            ++i;
        } else if (text == ">") {
            if (angle > 0)
                --angle;
            decl.push_back(i);
            ++i;
        } else if (text == ">>") {
            angle = angle >= 2 ? angle - 2 : 0;
            decl.push_back(i);
            ++i;
        } else if (text == "{") {
            const bool nested_type =
                !decl.empty() &&
                tokens[decl.front()].kind == Token::kIdent &&
                any_of(tokens[decl.front()].text,
                       {"class", "struct", "enum", "union"});
            if (decl.empty()) {
                i = skip_balanced(tokens, i, "{", "}");
            } else if (nested_type) {
                // Nested type body; its ';' clears the declaration.
                i = skip_balanced(tokens, i, "{", "}");
            } else if (has_top_paren && paren == 0) {
                // In-class function definition: drop it wholesale.
                i = skip_balanced(tokens, i, "{", "}");
                decl.clear();
                has_top_paren = false;
            } else {
                // Brace initializer (or a default argument's); the
                // declarator continues after it.
                i = skip_balanced(tokens, i, "{", "}");
            }
        } else if (text == ";" && paren == 0) {
            finish_decl(tokens, decl, has_top_paren, fields);
            decl.clear();
            has_top_paren = false;
            angle = 0;
            ++i;
        } else if (text == ":" && paren == 0 && decl.size() == 1 &&
                   tokens[decl.front()].kind == Token::kIdent &&
                   any_of(tokens[decl.front()].text,
                          {"public", "private", "protected"})) {
            decl.clear();
            ++i;
        } else {
            decl.push_back(i);
            ++i;
        }
    }
    return fields;
}

}  // namespace

TypeDef
find_type(const FileIndex &index, std::string_view terminal)
{
    const std::vector<Token> &tokens = index.lexed.tokens;
    TypeDef out;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!(is_ident(tokens[i], "class") ||
              is_ident(tokens[i], "struct"))) {
            continue;
        }
        if (i > 0 && is_ident(tokens[i - 1], "enum"))
            continue;  // `enum struct` / `enum class`
        std::size_t j = i + 1;
        std::string name;
        while (j < tokens.size()) {
            const Token &tok = tokens[j];
            if (tok.kind == Token::kIdent) {
                if (tok.text != "final")
                    name = tok.text;
                ++j;
            } else if (is_punct(tok, "::")) {
                ++j;
            } else {
                break;
            }
        }
        if (j >= tokens.size())
            break;
        if (is_punct(tokens[j], ":")) {
            // Base clause: scan to the body brace (template args in
            // base names may nest parens/angles; braces cannot appear
            // before the body's own '{').
            while (j < tokens.size() && !is_punct(tokens[j], "{"))
                ++j;
        }
        if (j >= tokens.size() || !is_punct(tokens[j], "{"))
            continue;  // forward declaration or elaborated type use
        if (name != terminal)
            continue;  // linear scan still enters the body → nested
                       // types are found by their own terminal name
        out.found = true;
        out.fields = parse_fields(
            tokens, j + 1, skip_balanced(tokens, j, "{", "}") - 1);
        return out;
    }
    return out;
}

std::set<std::string>
function_body_idents(const FileIndex &index, std::string_view function,
                     int *bodies_found)
{
    const std::vector<Token> &tokens = index.lexed.tokens;
    std::set<std::string> idents;
    int bodies = 0;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!(tokens[i].kind == Token::kIdent &&
              tokens[i].text == function &&
              is_punct(tokens[i + 1], "("))) {
            continue;
        }
        std::size_t j = skip_balanced(tokens, i + 1, "(", ")");
        while (j < tokens.size() &&
               tokens[j].kind == Token::kIdent &&
               any_of(tokens[j].text,
                      {"const", "noexcept", "override", "final"})) {
            ++j;
        }
        if (j >= tokens.size() || !is_punct(tokens[j], "{"))
            continue;  // declaration or call, not a definition
        const std::size_t body_end =
            skip_balanced(tokens, j, "{", "}") - 1;
        for (std::size_t k = j + 1; k < body_end; ++k) {
            if (tokens[k].kind == Token::kIdent)
                idents.insert(tokens[k].text);
        }
        ++bodies;
        i = body_end;
    }
    if (bodies_found != nullptr)
        *bodies_found = bodies;
    return idents;
}

}  // namespace audit
}  // namespace ef

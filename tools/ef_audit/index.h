/**
 * @file
 * ef-audit pass 1: the per-file symbol index.
 *
 * Built once per source file (in parallel, one index per slot) from
 * the shared ef-lint lexer's token stream. Everything pass 2 needs is
 * precomputed here: parsed ef-audit annotations, quoted includes,
 * parallel_for lambda sites, and the token stream itself for on-demand
 * class-body and function-body queries.
 */
#ifndef EF_TOOLS_EF_AUDIT_INDEX_H_
#define EF_TOOLS_EF_AUDIT_INDEX_H_

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace ef {
namespace audit {

/** One parsed `// ef-audit: ...` annotation (or a malformed try). */
struct AuditAnnotation
{
    enum Kind { kTransient, kCovered, kAllow };
    Kind kind = kTransient;
    int line = 0;
    /** Exempted surfaces (transient/covered only). */
    bool hash = false;
    bool encode = false;
    bool decode = false;
    /** Suppressed rule (allow only). */
    std::string rule;
    std::string reason;
    bool malformed = false;
    std::string error;
};

/** One quoted `#include "path"` directive. */
struct IncludeDirective
{
    int line = 0;
    std::string path;  // as written, e.g. "cluster/topology.h"
};

/** One lambda literal passed to a parallel_for call. */
struct LambdaSite
{
    int line = 0;  // line of the parallel_for identifier
    bool capture_default_ref = false;
    bool capture_default_value = false;
    bool captures_this = false;
    std::set<std::string> by_ref;    // explicit &name captures
    std::set<std::string> by_value;  // explicit name / name=init
    std::set<std::string> params;
    /** Token range [body_begin, body_end) of the lambda body. */
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
};

/** A member field parsed out of a class/struct body. */
struct FieldInfo
{
    std::string name;
    int line = 0;       ///< line of the field's name token
    int decl_line = 0;  ///< line the whole declaration starts on
};

struct TypeDef
{
    bool found = false;
    std::vector<FieldInfo> fields;
};

struct FileIndex
{
    std::string path;
    lint::Lexed lexed;
    std::vector<AuditAnnotation> annotations;
    std::vector<IncludeDirective> includes;
    std::vector<LambdaSite> lambda_sites;
};

/** Build the index for one file. Never fails. */
FileIndex index_file(std::string path, std::string_view text);

/**
 * Find the class/struct whose name's terminal identifier is
 * @p terminal and parse its member fields. Functions, static members,
 * nested type declarations, using/typedef/friend declarations and
 * access specifiers are skipped; a declaration list yields one field
 * per declarator. Scans the whole file, so nested classes are found
 * by their own terminal name.
 */
TypeDef find_type(const FileIndex &index, std::string_view terminal);

/**
 * Union of identifier tokens inside every *definition* body of
 * functions named @p function in this file (declarations and call
 * sites do not match). Returns the number of bodies found via
 * @p bodies_found.
 */
std::set<std::string> function_body_idents(const FileIndex &index,
                                           std::string_view function,
                                           int *bodies_found);

}  // namespace audit
}  // namespace ef

#endif  // EF_TOOLS_EF_AUDIT_INDEX_H_

/**
 * @file
 * ef-audit: cross-file semantic analysis for the repo's durability and
 * determinism contracts.
 *
 * Where ef-lint (tools/ef_lint) judges one file at a time, ef-audit
 * runs in two passes: pass 1 builds a lightweight symbol index over
 * the scanned sources (class/struct member fields, quoted-include
 * graph, lambda captures at ef::ThreadPool dispatch sites); pass 2
 * runs cross-file rules over that index:
 *
 *   state-coverage   Every member field of a type registered in the
 *                    state manifest (tools/ef_audit/state_manifest.txt)
 *                    must appear in each of the type's declared
 *                    coverage surfaces: its state-hash chain and its
 *                    recover::Encoder / Decoder encode+decode pair.
 *                    Adding a field to Simulator or serve::Service and
 *                    forgetting to hash or journal it is exactly the
 *                    bug that compiles clean, passes tests, and breaks
 *                    bit-identical recovery — this rule makes it a
 *                    blocking finding at the field's declaration site.
 *   thread-ownership Lambdas passed to parallel_for may only write
 *                    through locals bound to index-owned slots.
 *                    Captured-by-reference mutation of shared state
 *                    without a subscripted owned slot violates the
 *                    ThreadPool determinism contract (DESIGN.md §10).
 *   layering         Quoted includes in src/ must respect the library
 *                    DAG declared in the manifest: a directory may
 *                    include itself and its (transitive) declared
 *                    dependencies, never upward or cyclically.
 *   manifest         The manifest must stay bound to reality: a type,
 *                    file, or surface function it names that no longer
 *                    resolves is itself a blocking finding, so renames
 *                    cannot silently disable the audit.
 *   bad-annotation   Malformed ef-audit annotations.
 *
 * Escape hatches (all audited — each carries a mandatory reason):
 *
 *   // ef-audit: transient(<scopes>: <reason>)
 *       The field is deliberately outside the named coverage surfaces.
 *       <scopes> is a comma list of hash / encode / decode / codec
 *       (= encode+decode) / all; a bare transient(<reason>) means all.
 *   // ef-audit: covered(<scopes>: <reason>)
 *       The field IS covered, but indirectly (through an accessor or
 *       an equivalent value), so the lexical check cannot see it.
 *       Same scope grammar; semantically an audited exemption.
 *   // ef-audit: allow(<rule>: <reason>)
 *       Suppress a thread-ownership or layering finding on this line
 *       or the line below (same contract as ef-lint allow()).
 *
 * transient/covered attach to the field's declaration line or the
 * line directly above it, in the file that defines the type.
 */
#ifndef EF_TOOLS_EF_AUDIT_AUDIT_H_
#define EF_TOOLS_EF_AUDIT_AUDIT_H_

#include <string>
#include <string_view>
#include <vector>

namespace ef {
namespace audit {

/** One file handed to the audit: repo-relative path + contents. */
struct SourceFile
{
    std::string path;  // forward-slash, relative to the repo root
    std::string text;
};

/** One rule violation. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    /** "Type::field" for state-coverage, else empty. */
    std::string symbol;
    std::string message;
};

/** "file:line: [rule] (symbol) message" */
std::string format_finding(const Finding &finding);

/** All rule names, for allow() validation and --list-rules. */
const std::vector<std::string> &rule_names();

/** The audited-state manifest: types + the library layering DAG. */
struct Manifest
{
    /** One hash/encode/decode surface: a function in a file. */
    struct Surface
    {
        std::string file;
        std::string function;
        int line = 0;  // manifest line, for manifest findings
    };
    struct Type
    {
        /** Qualified name as written (ef::Simulator::JobRt); only the
         *  terminal identifier is matched against class/struct keys. */
        std::string name;
        std::string def_file;
        std::vector<Surface> hash;
        std::vector<Surface> encode;
        std::vector<Surface> decode;
        int line = 0;
    };
    struct Layer
    {
        std::string dir;                // e.g. "serve"
        std::vector<std::string> deps;  // direct dependencies
        int line = 0;
    };
    std::vector<Type> types;
    std::vector<Layer> layers;
};

/**
 * Parse the manifest text. Syntax problems become rule-"manifest"
 * findings in @p errors (reported against @p path); the surviving
 * entries are still returned so one bad line does not disable the
 * whole audit.
 */
Manifest parse_manifest(std::string_view path, std::string_view text,
                        std::vector<Finding> *errors);

struct AuditOptions
{
    /** Worker threads for the pass-1 file indexing (>= 1). */
    int jobs = 1;
};

/**
 * Run both passes over @p files and return all findings, sorted by
 * (file, line, rule, symbol) and deduplicated. Thread-ownership and
 * bad-annotation scan every file given; layering scans files under
 * src/; state-coverage reads exactly the files the manifest names.
 */
std::vector<Finding> run_audit(const Manifest &manifest,
                               const std::vector<SourceFile> &files,
                               const AuditOptions &options = {});

/** Machine-readable output: {"findings": [...], "count": N}. */
std::string findings_to_json(const std::vector<Finding> &findings);

/** SARIF 2.1.0, one run, level "error" results. */
std::string findings_to_sarif(const std::vector<Finding> &findings);

}  // namespace audit
}  // namespace ef

#endif  // EF_TOOLS_EF_AUDIT_AUDIT_H_

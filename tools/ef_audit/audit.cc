/** @file ef-audit pass 2: cross-file rules over the symbol index. */
#include "audit.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/json.h"
#include "common/parallel.h"
#include "index.h"

namespace ef {
namespace audit {
namespace {

using lint::Token;

const std::set<std::string> kAssignOps = {
    "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<=", ">>="};

/** Container methods that mutate the receiver. */
const std::set<std::string> kMutatingMethods = {
    "push_back", "emplace_back", "emplace", "insert", "erase",
    "clear",     "resize",       "assign",  "pop_back", "push",
    "pop",       "reserve",      "swap",    "fill"};

/** Rules an `ef-audit: allow(...)` may suppress. */
const std::set<std::string> kAllowableRules = {"thread-ownership",
                                               "layering"};

std::string
terminal_name(std::string_view qualified)
{
    std::size_t pos = qualified.rfind("::");
    return std::string(pos == std::string_view::npos
                           ? qualified
                           : qualified.substr(pos + 2));
}

void
add_finding(std::vector<Finding> &findings, std::string file, int line,
            const char *rule, std::string symbol, std::string message)
{
    findings.push_back(Finding{std::move(file), line, rule,
                               std::move(symbol), std::move(message)});
}

// ---------------------------------------------------------------------------
// thread-ownership
// ---------------------------------------------------------------------------

/**
 * Local declarations inside a lambda body, by a two-token pattern:
 * an identifier preceded by a type-ish token (identifier, '&', '*',
 * '>') and followed by '=', ';', ':' or '{'. Catches `Foo &slot =
 * out[i];`, `const auto x = ...;` and range-for variables — the
 * idiomatic owned-slot bindings — without parsing declarations fully.
 */
std::set<std::string>
collect_locals(const std::vector<Token> &tokens, std::size_t begin,
               std::size_t end)
{
    static const std::set<std::string> kNotTypes = {
        "return", "case",  "goto",     "delete", "throw",
        "new",    "else",  "do",       "sizeof", "co_return",
        "co_yield", "co_await", "break", "continue"};
    std::set<std::string> locals;
    for (std::size_t k = begin; k < end; ++k) {
        if (tokens[k].kind != Token::kIdent || k == begin ||
            k + 1 >= end) {
            continue;
        }
        const Token &prev = tokens[k - 1];
        const Token &next = tokens[k + 1];
        const bool prev_typeish =
            (prev.kind == Token::kIdent &&
             kNotTypes.count(prev.text) == 0) ||
            (prev.kind == Token::kPunct &&
             (prev.text == "&" || prev.text == "*" ||
              prev.text == ">"));
        const bool next_declish =
            next.kind == Token::kPunct &&
            (next.text == "=" || next.text == ";" ||
             next.text == ":" || next.text == "{");
        if (prev_typeish && next_declish)
            locals.insert(tokens[k].text);
    }
    return locals;
}

struct Lvalue
{
    std::string root;
    bool subscript = false;
};

/**
 * Walk the member-access chain leftward from @p j (the token just
 * before a mutation) to its root identifier. `a.b[i].c` → root "a",
 * subscript true. Complex lvalues (through a call's result) return an
 * empty root and are skipped.
 */
Lvalue
walk_lvalue(const std::vector<Token> &tokens, std::size_t j,
            std::size_t begin)
{
    Lvalue out;
    while (true) {
        if (j < begin || j >= tokens.size())
            return {};
        const Token &tok = tokens[j];
        if (tok.kind == Token::kPunct && tok.text == "]") {
            int depth = 0;
            while (true) {
                const Token &t = tokens[j];
                if (t.kind == Token::kPunct && t.text == "]") {
                    ++depth;
                } else if (t.kind == Token::kPunct &&
                           t.text == "[") {
                    if (--depth == 0)
                        break;
                }
                if (j == begin)
                    return {};
                --j;
            }
            out.subscript = true;
            if (j == begin)
                return {};
            --j;
            continue;
        }
        if (tok.kind == Token::kIdent) {
            if (j >= begin + 2 &&
                tokens[j - 1].kind == Token::kPunct &&
                (tokens[j - 1].text == "." ||
                 tokens[j - 1].text == "->")) {
                j -= 2;
                continue;
            }
            out.root = tok.text;
            return out;
        }
        return {};  // ')' etc.: lvalue through a call — skip
    }
}

void
check_lambda_site(const FileIndex &index, const LambdaSite &site,
                  std::vector<Finding> &findings)
{
    // An allow(thread-ownership) on the dispatch line (or the line
    // above it) sanctions the whole lambda — writes are flagged at
    // their own line, which the annotator cannot predict.
    for (const AuditAnnotation &a : index.annotations) {
        if (!a.malformed && a.kind == AuditAnnotation::kAllow &&
            a.rule == "thread-ownership" &&
            (a.line == site.line || a.line == site.line - 1)) {
            return;
        }
    }
    const std::vector<Token> &tokens = index.lexed.tokens;
    const std::set<std::string> locals =
        collect_locals(tokens, site.body_begin, site.body_end);
    auto flag = [&](const Lvalue &lv, int line,
                    const std::string &via) {
        if (lv.root.empty() || lv.subscript)
            return;
        if (locals.count(lv.root) > 0 ||
            site.params.count(lv.root) > 0 ||
            site.by_value.count(lv.root) > 0) {
            return;
        }
        const bool shared =
            lv.root == "this"
                ? (site.captures_this || site.capture_default_ref ||
                   site.capture_default_value)
                : (site.by_ref.count(lv.root) > 0 ||
                   site.capture_default_ref);
        if (!shared)
            return;
        add_finding(
            findings, index.path, line, "thread-ownership", "",
            "lambda at this parallel_for site " + via + " '" +
                lv.root +
                "' captured by reference without an index-owned "
                "subscript — fn(i) may only touch index-i state "
                "(write through a slot like out[i], or annotate "
                "`// ef-audit: allow(thread-ownership: ...)`)");
    };
    for (std::size_t k = site.body_begin; k < site.body_end; ++k) {
        const Token &tok = tokens[k];
        if (tok.kind != Token::kPunct && tok.kind != Token::kIdent)
            continue;
        if (tok.kind == Token::kPunct &&
            kAssignOps.count(tok.text) > 0 && k > site.body_begin) {
            flag(walk_lvalue(tokens, k - 1, site.body_begin),
                 tok.line, "writes");
        } else if (tok.kind == Token::kPunct &&
                   (tok.text == "++" || tok.text == "--")) {
            const bool postfix =
                k > site.body_begin &&
                (tokens[k - 1].kind == Token::kIdent ||
                 (tokens[k - 1].kind == Token::kPunct &&
                  (tokens[k - 1].text == "]" ||
                   tokens[k - 1].text == ")")));
            if (postfix) {
                flag(walk_lvalue(tokens, k - 1, site.body_begin),
                     tok.line, "increments");
            } else if (k + 1 < site.body_end &&
                       tokens[k + 1].kind == Token::kIdent) {
                // Prefix: the chain runs rightward; re-use the
                // leftward walker from the chain's last token.
                std::size_t e = k + 1;
                while (e + 1 < site.body_end) {
                    const Token &nx = tokens[e + 1];
                    if (nx.kind == Token::kPunct &&
                        (nx.text == "." || nx.text == "->") &&
                        e + 2 < site.body_end &&
                        tokens[e + 2].kind == Token::kIdent) {
                        e += 2;
                    } else if (nx.kind == Token::kPunct &&
                               nx.text == "[") {
                        int depth = 0;
                        std::size_t m = e + 1;
                        for (; m < site.body_end; ++m) {
                            if (tokens[m].kind == Token::kPunct &&
                                tokens[m].text == "[")
                                ++depth;
                            else if (tokens[m].kind ==
                                         Token::kPunct &&
                                     tokens[m].text == "]" &&
                                     --depth == 0)
                                break;
                        }
                        e = m;
                    } else {
                        break;
                    }
                }
                flag(walk_lvalue(tokens, e, site.body_begin),
                     tok.line, "increments");
            }
        } else if (tok.kind == Token::kIdent &&
                   kMutatingMethods.count(tok.text) > 0 &&
                   k + 1 < site.body_end &&
                   tokens[k + 1].kind == Token::kPunct &&
                   tokens[k + 1].text == "(" &&
                   k >= site.body_begin + 2 &&
                   tokens[k - 1].kind == Token::kPunct &&
                   (tokens[k - 1].text == "." ||
                    tokens[k - 1].text == "->")) {
            flag(walk_lvalue(tokens, k - 2, site.body_begin),
                 tok.line, "calls mutating method ." + tok.text +
                               "() on");
        }
    }
}

// ---------------------------------------------------------------------------
// state-coverage
// ---------------------------------------------------------------------------

struct SurfaceIdents
{
    std::set<std::string> idents;
    std::string described;  // "state_hash (src/sim/simulator.cc)", ...
    bool present = false;   // the manifest lists >= 1 surface
    bool resolved = false;  // >= 1 listed surface body was found
};

SurfaceIdents
collect_surface(const std::map<std::string, const FileIndex *> &by_path,
                const std::vector<Manifest::Surface> &surfaces,
                std::string_view manifest_path,
                std::vector<Finding> &findings)
{
    SurfaceIdents out;
    out.present = !surfaces.empty();
    for (const Manifest::Surface &surface : surfaces) {
        if (!out.described.empty())
            out.described += ", ";
        out.described += surface.function + " (" + surface.file + ")";
        auto it = by_path.find(surface.file);
        if (it == by_path.end()) {
            add_finding(findings, std::string(manifest_path),
                        surface.line, "manifest", "",
                        "surface file " + surface.file +
                            " is not in the scanned file set");
            continue;
        }
        int bodies = 0;
        std::set<std::string> idents = function_body_idents(
            *it->second, surface.function, &bodies);
        if (bodies == 0) {
            add_finding(findings, std::string(manifest_path),
                        surface.line, "manifest", "",
                        "no definition of " + surface.function +
                            "() found in " + surface.file +
                            " — update the manifest after renames");
            continue;
        }
        out.resolved = true;
        out.idents.insert(idents.begin(), idents.end());
    }
    return out;
}

void
check_type_coverage(
    const std::map<std::string, const FileIndex *> &by_path,
    const Manifest::Type &type, std::string_view manifest_path,
    std::vector<Finding> &findings)
{
    auto def_it = by_path.find(type.def_file);
    if (def_it == by_path.end()) {
        add_finding(findings, std::string(manifest_path), type.line,
                    "manifest", "",
                    "def file " + type.def_file +
                        " for type " + type.name +
                        " is not in the scanned file set");
        return;
    }
    const FileIndex &def = *def_it->second;
    TypeDef td = find_type(def, terminal_name(type.name));
    if (!td.found) {
        add_finding(findings, std::string(manifest_path), type.line,
                    "manifest", "",
                    "type " + type.name + " (terminal '" +
                        terminal_name(type.name) +
                        "') not found in " + type.def_file +
                        " — update the manifest after renames");
        return;
    }
    const SurfaceIdents hash = collect_surface(
        by_path, type.hash, manifest_path, findings);
    const SurfaceIdents encode = collect_surface(
        by_path, type.encode, manifest_path, findings);
    const SurfaceIdents decode = collect_surface(
        by_path, type.decode, manifest_path, findings);

    // transient/covered annotations in the defining file, by line.
    std::map<int, const AuditAnnotation *> exempts;
    for (const AuditAnnotation &a : def.annotations) {
        if (!a.malformed && (a.kind == AuditAnnotation::kTransient ||
                             a.kind == AuditAnnotation::kCovered)) {
            exempts[a.line] = &a;
        }
    }
    struct SurfaceCheck
    {
        const SurfaceIdents *surface;
        const char *what;
        bool AuditAnnotation::*exempt_flag;
    };
    const SurfaceCheck checks[] = {
        {&hash, "hash", &AuditAnnotation::hash},
        {&encode, "encode", &AuditAnnotation::encode},
        {&decode, "decode", &AuditAnnotation::decode}};
    for (const FieldInfo &field : td.fields) {
        // The annotation may sit on the name's line, the line above
        // it, or (for declarations that wrap) the line above the
        // declaration's first line.
        const AuditAnnotation *ann = nullptr;
        for (int line : {field.line, field.line - 1,
                         field.decl_line - 1}) {
            auto it = exempts.find(line);
            if (it != exempts.end()) {
                ann = it->second;
                break;
            }
        }
        for (const SurfaceCheck &check : checks) {
            // An unresolved surface already blocked with a manifest
            // finding; per-field noise on top would drown it out.
            if (!check.surface->present || !check.surface->resolved)
                continue;
            if (ann != nullptr && ann->*(check.exempt_flag))
                continue;
            if (check.surface->idents.count(field.name) > 0)
                continue;
            add_finding(
                findings, type.def_file, field.line,
                "state-coverage", type.name + "::" + field.name,
                "persistent field '" + field.name + "' of " +
                    type.name + " does not appear in its " +
                    check.what + " surface [" +
                    check.surface->described +
                    "] — cover it there or annotate the declaration "
                    "with `// ef-audit: transient(" +
                    std::string(check.what) + ": <reason>)`");
        }
    }
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

std::map<std::string, std::set<std::string>>
layer_closure(const Manifest &manifest, std::string_view manifest_path,
              std::vector<Finding> &findings)
{
    std::map<std::string, std::vector<std::string>> direct;
    std::map<std::string, int> lines;
    for (const Manifest::Layer &layer : manifest.layers) {
        direct[layer.dir] = layer.deps;
        lines[layer.dir] = layer.line;
    }
    for (const Manifest::Layer &layer : manifest.layers) {
        for (const std::string &dep : layer.deps) {
            if (direct.count(dep) == 0) {
                add_finding(findings, std::string(manifest_path),
                            layer.line, "manifest", "",
                            "layer " + layer.dir +
                                " depends on undeclared layer '" +
                                dep + "'");
            }
        }
    }
    std::map<std::string, std::set<std::string>> closure;
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::map<std::string, int> color;
    std::function<void(const std::string &)> visit =
        [&](const std::string &dir) {
            color[dir] = 1;
            for (const std::string &dep : direct[dir]) {
                if (direct.count(dep) == 0)
                    continue;
                if (color[dep] == 1) {
                    add_finding(findings,
                                std::string(manifest_path),
                                lines[dir], "manifest", "",
                                "layer DAG cycle through " + dir +
                                    " -> " + dep);
                    continue;
                }
                if (color[dep] == 0)
                    visit(dep);
                closure[dir].insert(dep);
                closure[dir].insert(closure[dep].begin(),
                                    closure[dep].end());
            }
            color[dir] = 2;
        };
    for (const Manifest::Layer &layer : manifest.layers) {
        if (color[layer.dir] == 0)
            visit(layer.dir);
    }
    return closure;
}

void
check_layering(const FileIndex &index,
               const std::map<std::string, std::set<std::string>>
                   &closure,
               std::vector<Finding> &findings)
{
    const std::string &path = index.path;
    if (path.rfind("src/", 0) != 0)
        return;
    std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos)
        return;  // src/ top-level files are outside the DAG
    const std::string dir = path.substr(4, slash - 4);
    if (closure.count(dir) == 0) {
        add_finding(findings, path, 1, "layering", "",
                    "directory src/" + dir +
                        "/ is not declared in the manifest layer "
                        "DAG — add a 'layer " +
                        dir + " : ...' line");
        return;
    }
    for (const IncludeDirective &inc : index.includes) {
        std::size_t inc_slash = inc.path.find('/');
        if (inc_slash == std::string::npos)
            continue;  // same-directory include
        const std::string target = inc.path.substr(0, inc_slash);
        if (closure.count(target) == 0)
            continue;  // not a library directory (e.g. nested path)
        if (target == dir || closure.at(dir).count(target) > 0)
            continue;
        add_finding(findings, path, inc.line, "layering", "",
                    "src/" + dir + "/ includes \"" + inc.path +
                        "\" but the declared DAG gives " + dir +
                        " no (transitive) dependency on " + target);
    }
}

}  // namespace

std::string
format_finding(const Finding &finding)
{
    std::ostringstream out;
    out << finding.file << ":" << finding.line << ": ["
        << finding.rule << "] ";
    if (!finding.symbol.empty())
        out << finding.symbol << ": ";
    out << finding.message;
    return out.str();
}

const std::vector<std::string> &
rule_names()
{
    static const std::vector<std::string> kNames = {
        "state-coverage", "thread-ownership", "layering", "manifest",
        "bad-annotation"};
    return kNames;
}

std::vector<Finding>
run_audit(const Manifest &manifest,
          const std::vector<SourceFile> &files,
          const AuditOptions &options)
{
    // Pass 1: per-file indexes, one index-owned slot per file.
    std::vector<FileIndex> indexes(files.size());
    ThreadPool pool(options.jobs < 1 ? 1 : options.jobs);
    parallel_for(&pool, static_cast<int>(files.size()), [&](int i) {
        const std::size_t n = static_cast<std::size_t>(i);
        indexes[n] = index_file(files[n].path, files[n].text);
    });
    std::map<std::string, const FileIndex *> by_path;
    for (const FileIndex &index : indexes)
        by_path[index.path] = &index;
    const std::string manifest_path =
        "tools/ef_audit/state_manifest.txt";

    std::vector<Finding> findings;

    // Annotation hygiene + allow() collection across every file.
    std::map<std::tuple<std::string, std::string, int>, bool> allows;
    for (const FileIndex &index : indexes) {
        for (const AuditAnnotation &a : index.annotations) {
            if (a.malformed) {
                add_finding(findings, index.path, a.line,
                            "bad-annotation", "", a.error);
                continue;
            }
            if (a.kind != AuditAnnotation::kAllow)
                continue;
            if (kAllowableRules.count(a.rule) == 0) {
                add_finding(findings, index.path, a.line,
                            "bad-annotation", "",
                            "ef-audit: allow() cannot suppress '" +
                                a.rule +
                                "' (suppressible: thread-ownership, "
                                "layering)");
                continue;
            }
            allows[{index.path, a.rule, a.line}] = true;
        }
    }

    for (const Manifest::Type &type : manifest.types) {
        if (type.def_file.empty())
            continue;  // already reported by parse_manifest
        check_type_coverage(by_path, type, manifest_path, findings);
    }

    for (const FileIndex &index : indexes) {
        for (const LambdaSite &site : index.lambda_sites)
            check_lambda_site(index, site, findings);
    }

    const std::map<std::string, std::set<std::string>> closure =
        layer_closure(manifest, manifest_path, findings);
    if (!manifest.layers.empty()) {
        for (const FileIndex &index : indexes)
            check_layering(index, closure, findings);
    }

    // allow() suppression: an annotation on the finding's line or the
    // line directly above it.
    std::vector<Finding> kept;
    for (Finding &finding : findings) {
        if (kAllowableRules.count(finding.rule) > 0 &&
            (allows.count({finding.file, finding.rule,
                           finding.line}) > 0 ||
             allows.count({finding.file, finding.rule,
                           finding.line - 1}) > 0)) {
            continue;
        }
        kept.push_back(std::move(finding));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.symbol,
                                  a.message) <
                         std::tie(b.file, b.line, b.rule, b.symbol,
                                  b.message);
              });
    kept.erase(std::unique(kept.begin(), kept.end(),
                           [](const Finding &a, const Finding &b) {
                               return std::tie(a.file, a.line, a.rule,
                                               a.symbol, a.message) ==
                                      std::tie(b.file, b.line, b.rule,
                                               b.symbol, b.message);
                           }),
               kept.end());
    return kept;
}

std::string
findings_to_json(const std::vector<Finding> &findings)
{
    JsonWriter w;
    w.begin_object();
    w.key("findings").begin_array();
    for (const Finding &finding : findings) {
        w.begin_object();
        w.kv("file", finding.file);
        w.kv("line", finding.line);
        w.kv("rule", finding.rule);
        w.kv("symbol", finding.symbol);
        w.kv("message", finding.message);
        w.end_object();
    }
    w.end_array();
    w.kv("count", static_cast<std::int64_t>(findings.size()));
    w.end_object();
    return w.str();
}

std::string
findings_to_sarif(const std::vector<Finding> &findings)
{
    JsonWriter w;
    w.begin_object();
    w.kv("version", "2.1.0");
    w.kv("$schema",
         "https://json.schemastore.org/sarif-2.1.0.json");
    w.key("runs").begin_array();
    w.begin_object();
    w.key("tool").begin_object();
    w.key("driver").begin_object();
    w.kv("name", "ef-audit");
    w.kv("informationUri",
         "https://github.com/elasticflow/elasticflow");
    w.key("rules").begin_array();
    for (const std::string &rule : rule_names()) {
        w.begin_object();
        w.kv("id", rule);
        w.end_object();
    }
    w.end_array();
    w.end_object();  // driver
    w.end_object();  // tool
    w.key("results").begin_array();
    for (const Finding &finding : findings) {
        w.begin_object();
        w.kv("ruleId", finding.rule);
        w.kv("level", "error");
        w.key("message").begin_object();
        w.kv("text", finding.symbol.empty()
                         ? finding.message
                         : finding.symbol + ": " + finding.message);
        w.end_object();
        w.key("locations").begin_array();
        w.begin_object();
        w.key("physicalLocation").begin_object();
        w.key("artifactLocation").begin_object();
        w.kv("uri", finding.file);
        w.end_object();
        w.key("region").begin_object();
        w.kv("startLine", finding.line);
        w.end_object();
        w.end_object();  // physicalLocation
        w.end_object();  // location
        w.end_array();   // locations
        w.end_object();  // result
    }
    w.end_array();   // results
    w.end_object();  // run
    w.end_array();   // runs
    w.end_object();
    return w.str();
}

}  // namespace audit
}  // namespace ef

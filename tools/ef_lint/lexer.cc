/** @file See lexer.h. */
#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace ef {
namespace lint {

bool
ident_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

Lexed
lex(std::string_view text)
{
    Lexed out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();
    auto peek = [&](std::size_t k) {
        return i + k < n ? text[i + k] : '\0';
    };

    while (i < n) {
        char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            std::size_t end = text.find('\n', i);
            if (end == std::string_view::npos)
                end = n;
            out.comments.push_back(
                {line, std::string(text.substr(i + 2, end - i - 2))});
            i = end;  // the newline itself bumps `line` next round
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i < n && !(text[i] == '*' && peek(1) == '/')) {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            i = i + 2 <= n ? i + 2 : n;
            continue;
        }
        if (c == 'R' && peek(1) == '"') {
            // Raw string: skip to the matching )delim" unprocessed.
            std::size_t open = text.find('(', i + 2);
            std::string closer = ")";
            if (open != std::string_view::npos)
                closer += std::string(text.substr(i + 2, open - i - 2));
            closer += '"';
            std::size_t end = open == std::string_view::npos
                                  ? std::string_view::npos
                                  : text.find(closer, open + 1);
            std::size_t stop = end == std::string_view::npos
                                   ? n
                                   : end + closer.size();
            out.tokens.push_back({Token::kString, "", line, false});
            for (std::size_t k = i; k < stop; ++k) {
                if (text[k] == '\n')
                    ++line;
            }
            i = stop;
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            const int start_line = line;
            ++i;
            const std::size_t body = i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\')
                    ++i;
                else if (text[i] == '\n')
                    ++line;  // unterminated-literal safety net
                ++i;
            }
            std::string literal(text.substr(body, i - body));
            if (i < n)
                ++i;  // closing quote
            out.tokens.push_back(
                {quote == '"' ? Token::kString : Token::kChar,
                 std::move(literal), start_line, false});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            const std::size_t start = i;
            bool is_float = false;
            const bool hex = c == '0' && (peek(1) == 'x' || peek(1) == 'X');
            if (hex)
                i += 2;
            while (i < n) {
                char d = text[i];
                if (std::isdigit(static_cast<unsigned char>(d)) ||
                    d == '\'' ||
                    (hex &&
                     std::isxdigit(static_cast<unsigned char>(d)))) {
                    ++i;
                    continue;
                }
                if (d == '.') {
                    is_float = true;
                    ++i;
                    continue;
                }
                if ((!hex && (d == 'e' || d == 'E')) ||
                    (hex && (d == 'p' || d == 'P'))) {
                    is_float = true;
                    ++i;
                    if (i < n && (text[i] == '+' || text[i] == '-'))
                        ++i;
                    continue;
                }
                if (std::isalpha(static_cast<unsigned char>(d))) {
                    // Suffixes (u, l, f, z). Hex digits a-f were
                    // consumed above, so an 'f' here is a suffix.
                    if (d == 'f' || d == 'F')
                        is_float = true;
                    ++i;
                    continue;
                }
                break;
            }
            out.tokens.push_back({Token::kNumber,
                                  std::string(text.substr(start, i - start)),
                                  line, is_float});
            continue;
        }
        if (ident_start(c)) {
            const std::size_t start = i;
            while (i < n && ident_char(text[i]))
                ++i;
            out.tokens.push_back({Token::kIdent,
                                  std::string(text.substr(start, i - start)),
                                  line, false});
            continue;
        }
        // Punctuation, longest match first.
        static const std::string_view kThree[] = {"<<=", ">>=", "<=>",
                                                  "->*", "..."};
        static const std::string_view kTwo[] = {
            "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "::",
            ".*"};
        std::size_t len = 1;
        for (std::string_view op : kThree) {
            if (text.substr(i, 3) == op) {
                len = 3;
                break;
            }
        }
        if (len == 1) {
            for (std::string_view op : kTwo) {
                if (text.substr(i, 2) == op) {
                    len = 2;
                    break;
                }
            }
        }
        out.tokens.push_back({Token::kPunct,
                              std::string(text.substr(i, len)), line,
                              false});
        i += len;
    }
    return out;
}

}  // namespace lint
}  // namespace ef

/**
 * @file
 * ef-lint command-line driver.
 *
 *   ef_lint --root <repo-root>          lint src/ tests/ examples/ bench/
 *   ef_lint --root <repo-root> <files>  lint specific files (paths
 *                                       relative to the root)
 *   ef_lint --list-rules                print rule names and exit
 *   --jobs N                            lint files on N threads
 *                                       (output order is unchanged)
 *   --warn-unused-allow                 advisory: report allow()
 *                                       annotations that suppressed
 *                                       nothing (never affects the
 *                                       exit status)
 *
 * Exits 0 when clean, 1 when any issue was found, 2 on usage/IO
 * errors. Output is one "file:line: [rule] message" per issue, in
 * sorted file order so runs are diffable regardless of --jobs.
 */
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool
lintable(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp";
}

std::string
slurp(const fs::path &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ok = false;
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ok = true;
    return buffer.str();
}

int
usage()
{
    std::cerr << "usage: ef_lint --root <repo-root> [--jobs N]"
              << " [--warn-unused-allow] [files...]\n"
              << "       ef_lint --list-rules\n";
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    fs::path root;
    std::vector<std::string> explicit_files;
    ef::lint::LintOptions options;
    int jobs = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &name : ef::lint::rule_names())
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--root") {
            if (i + 1 >= argc)
                return usage();
            root = argv[++i];
        } else if (arg == "--jobs") {
            if (i + 1 >= argc)
                return usage();
            jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                return usage();
        } else if (arg == "--warn-unused-allow") {
            options.warn_unused_allow = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            explicit_files.push_back(arg);
        }
    }
    if (root.empty())
        return usage();
    if (!fs::is_directory(root)) {
        std::cerr << "ef_lint: not a directory: " << root.string()
                  << "\n";
        return 2;
    }

    // Collect repo-relative paths to lint.
    std::vector<std::string> files;
    if (!explicit_files.empty()) {
        files = explicit_files;
    } else {
        for (const char *dir :
             {"src", "tests", "examples", "bench"}) {
            const fs::path base = root / dir;
            if (!fs::is_directory(base))
                continue;
            for (const auto &entry :
                 fs::recursive_directory_iterator(base)) {
                if (entry.is_regular_file() &&
                    lintable(entry.path())) {
                    files.push_back(fs::relative(entry.path(), root)
                                        .generic_string());
                }
            }
        }
    }
    std::sort(files.begin(), files.end());

    // Lint every file into its own slot (index-owned, so the parallel
    // scan is deterministic), then report in sorted file order.
    struct FileResult
    {
        std::vector<ef::lint::Issue> issues;
        bool read_error = false;
    };
    std::vector<FileResult> results(files.size());
    ef::ThreadPool pool(jobs);
    ef::parallel_for(
        &pool, static_cast<int>(files.size()), [&](int idx) {
            FileResult &slot = results[static_cast<std::size_t>(idx)];
            const std::string &rel =
                files[static_cast<std::size_t>(idx)];
            bool ok = false;
            const std::string text = slurp(root / rel, ok);
            if (!ok) {
                slot.read_error = true;
                return;
            }
            const ef::lint::FileClass cls = ef::lint::classify(rel);
            slot.issues =
                ef::lint::lint_source(rel, text, cls, options);
        });

    int issue_count = 0;
    int warn_count = 0;
    int file_errors = 0;
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (results[i].read_error) {
            std::cerr << "ef_lint: cannot read " << files[i] << "\n";
            ++file_errors;
            continue;
        }
        for (const ef::lint::Issue &issue : results[i].issues) {
            std::cout << ef::lint::format_issue(issue) << "\n";
            if (issue.rule == "unused-allow")
                ++warn_count;
            else
                ++issue_count;
        }
    }

    std::cerr << "ef_lint: " << files.size() << " files, "
              << issue_count << " issue(s)";
    if (options.warn_unused_allow)
        std::cerr << ", " << warn_count << " warning(s)";
    std::cerr << "\n";
    if (file_errors > 0)
        return 2;
    return issue_count > 0 ? 1 : 0;
}

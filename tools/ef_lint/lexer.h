/**
 * @file
 * Shared C++ lexer for the repo's lexical analysis tools (ef-lint,
 * ef-audit).
 *
 * Produces preprocessed-enough C++: comments are stripped (line-comment
 * bodies captured separately so tools can parse their own annotation
 * grammars out of them), string and character literals are collapsed to
 * opaque tokens so rule patterns never match inside them (the literal's
 * text is still carried for tools that need it, e.g. include-path
 * analysis), and numbers know whether they are floating-point.
 */
#ifndef EF_TOOLS_EF_LINT_LEXER_H_
#define EF_TOOLS_EF_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ef {
namespace lint {

struct Token
{
    enum Kind { kIdent, kNumber, kPunct, kString, kChar };
    Kind kind = kPunct;
    std::string text;
    int line = 0;
    bool is_float = false;
};

/** One `//` line comment: the body after the slashes, untrimmed. */
struct Comment
{
    int line = 0;
    std::string text;
};

struct Lexed
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/** Lex one file's contents. Never fails: unknown bytes become punct. */
Lexed lex(std::string_view text);

bool ident_start(char c);
bool ident_char(char c);

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

}  // namespace lint
}  // namespace ef

#endif  // EF_TOOLS_EF_LINT_LEXER_H_

#include "lint.h"

#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "lexer.h"

namespace ef {
namespace lint {
namespace {

/** One `ef-lint: allow(rule: reason)` comment, or a malformed try. */
struct Annotation
{
    int line = 0;
    std::string rule;
    std::string reason;
    bool malformed = false;
    std::string error;
};

/**
 * Parse an ef-lint annotation out of one line comment's body. The
 * closing ')' is optional so a long reason may run to the end of the
 * comment; the rule name and a non-empty reason are not.
 */
void
parse_annotation(std::string_view comment, int line,
                 std::vector<Annotation> &out)
{
    const std::string_view kTag = "ef-lint:";
    std::size_t pos = comment.find(kTag);
    if (pos == std::string_view::npos)
        return;
    Annotation a;
    a.line = line;
    std::size_t i = pos + kTag.size();
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i]))) {
        ++i;
    }
    const std::string_view kAllow = "allow(";
    if (comment.substr(i, kAllow.size()) != kAllow) {
        a.malformed = true;
        a.error = "expected 'ef-lint: allow(<rule>: <reason>)'";
        out.push_back(std::move(a));
        return;
    }
    i += kAllow.size();
    std::size_t colon = comment.find(':', i);
    std::size_t close = comment.find(')', i);
    if (colon == std::string_view::npos ||
        (close != std::string_view::npos && close < colon)) {
        a.malformed = true;
        a.error = "allow() needs a reason: allow(<rule>: <reason>)";
        out.push_back(std::move(a));
        return;
    }
    a.rule = trim(comment.substr(i, colon - i));
    std::size_t reason_end = close == std::string_view::npos
                                 ? comment.size()
                                 : close;
    a.reason = trim(comment.substr(colon + 1, reason_end - colon - 1));
    if (a.rule.empty() || a.reason.empty()) {
        a.malformed = true;
        a.error = "allow() needs a rule name and a non-empty reason";
    }
    out.push_back(std::move(a));
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const std::set<std::string> kNondetCalls = {"rand", "srand", "getenv",
                                            "time", "clock"};
const std::set<std::string> kNondetTypes = {
    "random_device", "system_clock",         "steady_clock",
    "high_resolution_clock", "mt19937",      "mt19937_64",
    "minstd_rand",    "minstd_rand0",        "default_random_engine",
    "knuth_b",        "ranlux24",            "ranlux48",
    "random_shuffle"};
const std::set<std::string> kUnordered = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
const std::set<std::string> kIoSinks = {"cout", "cerr", "clog"};
const std::set<std::string> kThreadingHeaders = {
    "thread",    "mutex",     "atomic",    "condition_variable",
    "shared_mutex", "future", "semaphore", "barrier",
    "latch",     "stop_token"};
const std::set<std::string> kFileIoTypes = {"ifstream", "ofstream",
                                            "fstream", "filebuf"};
const std::set<std::string> kFileIoCalls = {"fopen", "freopen",
                                            "tmpfile"};
const std::set<std::string> kSideEffectOps = {
    "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<=", ">>=", "++", "--"};
const std::set<std::string> kCondMacros = {"EF_CHECK", "EF_DCHECK"};
const std::set<std::string> kCondMsgMacros = {"EF_CHECK_MSG",
                                              "EF_DCHECK_MSG",
                                              "EF_FATAL_IF"};

/** Is tokens[idx] a member access (preceded by '.' or '->')? */
bool
is_member(const std::vector<Token> &tokens, std::size_t idx)
{
    if (idx == 0)
        return false;
    const Token &prev = tokens[idx - 1];
    return prev.kind == Token::kPunct &&
           (prev.text == "." || prev.text == "->");
}

bool
next_is(const std::vector<Token> &tokens, std::size_t idx,
        std::string_view text)
{
    return idx + 1 < tokens.size() &&
           tokens[idx + 1].kind == Token::kPunct &&
           tokens[idx + 1].text == text;
}

/** Is this punct/ident a boundary that ends an ==/!= operand scan? */
bool
operand_boundary(const Token &tok)
{
    if (tok.kind == Token::kIdent)
        return tok.text == "return" || tok.text == "case";
    if (tok.kind != Token::kPunct)
        return false;
    static const std::set<std::string> kBoundary = {
        ";", "{", "}", ",", "?", ":", "&&", "||", "=",  "+=", "-=",
        "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", "#"};
    return kBoundary.count(tok.text) > 0;
}

/**
 * Does the operand neighborhood of the ==/!= at @p idx contain a
 * floating-point literal or the kTimeInfinity sentinel? Scans outward
 * in both directions until an expression boundary at paren depth 0
 * (bounded, so pathological lines cannot blow up).
 */
bool
float_operand_nearby(const std::vector<Token> &tokens, std::size_t idx)
{
    constexpr int kMaxScan = 64;
    auto is_float_tok = [](const Token &tok) {
        return (tok.kind == Token::kNumber && tok.is_float) ||
               (tok.kind == Token::kIdent &&
                tok.text == "kTimeInfinity");
    };
    int depth = 0;
    for (std::size_t j = idx; j-- > 0 && idx - j <= kMaxScan;) {
        const Token &tok = tokens[j];
        if (tok.kind == Token::kPunct &&
            (tok.text == ")" || tok.text == "]")) {
            ++depth;
        } else if (tok.kind == Token::kPunct &&
                   (tok.text == "(" || tok.text == "[")) {
            if (depth == 0)
                break;
            --depth;
        } else if (depth == 0 && operand_boundary(tok)) {
            break;
        } else if (is_float_tok(tok)) {
            return true;
        }
    }
    depth = 0;
    for (std::size_t j = idx + 1;
         j < tokens.size() && j - idx <= kMaxScan; ++j) {
        const Token &tok = tokens[j];
        if (tok.kind == Token::kPunct &&
            (tok.text == "(" || tok.text == "[")) {
            ++depth;
        } else if (tok.kind == Token::kPunct &&
                   (tok.text == ")" || tok.text == "]")) {
            if (depth == 0)
                break;
            --depth;
        } else if (depth == 0 && operand_boundary(tok)) {
            break;
        } else if (is_float_tok(tok)) {
            return true;
        }
    }
    return false;
}

void
add_issue(std::vector<Issue> &issues, std::string_view path, int line,
          const char *rule, std::string message)
{
    issues.push_back(
        Issue{std::string(path), line, rule, std::move(message)});
}

}  // namespace

FileClass
classify(std::string_view path)
{
    auto starts = [&](std::string_view prefix) {
        return path.substr(0, prefix.size()) == prefix;
    };
    FileClass cls;
    cls.library = starts("src/");
    cls.order_sensitive = starts("src/sched/") || starts("src/sim/");
    cls.io_exempt =
        starts("src/common/logging.") || starts("src/common/check.");
    cls.rng_exempt = starts("src/common/rng.");
    cls.threading_exempt = starts("src/common/parallel.");
    cls.file_io_exempt =
        starts("src/recover/") || starts("src/workload/trace_io.");
    return cls;
}

const std::vector<std::string> &
rule_names()
{
    static const std::vector<std::string> kNames = {
        "nondet",           "unordered", "float-eq",
        "check-side-effect", "io",        "using-namespace",
        "threading",        "file-io"};
    return kNames;
}

std::string
format_issue(const Issue &issue)
{
    std::ostringstream out;
    out << issue.file << ":" << issue.line << ": [" << issue.rule
        << "] " << issue.message;
    return out.str();
}

std::vector<Issue>
lint_source(std::string_view path, std::string_view text,
            const FileClass &cls)
{
    return lint_source(path, text, cls, LintOptions{});
}

std::vector<Issue>
lint_source(std::string_view path, std::string_view text,
            const FileClass &cls, const LintOptions &options)
{
    Lexed lexed = lex(text);
    const std::vector<Token> &tokens = lexed.tokens;
    std::vector<Issue> issues;

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind == Token::kIdent) {
            if (cls.library && !cls.rng_exempt && !is_member(tokens, i)) {
                if (kNondetTypes.count(tok.text) > 0 ||
                    (kNondetCalls.count(tok.text) > 0 &&
                     next_is(tokens, i, "("))) {
                    add_issue(issues, path, tok.line, "nondet",
                              "nondeterminism source '" + tok.text +
                                  "' in library code — route "
                                  "randomness through ef::Rng and "
                                  "time through the simulated clock");
                }
            }
            if (cls.order_sensitive && kUnordered.count(tok.text) > 0) {
                add_issue(issues, path, tok.line, "unordered",
                          "'" + tok.text +
                              "' in order-sensitive code: iteration "
                              "order can leak into plan or event "
                              "order — use std::map/std::set or a "
                              "sorted vector");
            }
            if (cls.library && !cls.io_exempt &&
                kIoSinks.count(tok.text) > 0 &&
                !is_member(tokens, i)) {
                add_issue(issues, path, tok.line, "io",
                          "direct std::" + tok.text +
                              " in library code — log through "
                              "EF_INFO/EF_WARN or return text to the "
                              "caller");
            }
            // (An `#include <fstream>` directive is reported once, by
            // the include branch below — the `<` guard skips it here.)
            const bool after_angle =
                i > 0 && tokens[i - 1].kind == Token::kPunct &&
                tokens[i - 1].text == "<";
            if (cls.library && !cls.file_io_exempt &&
                !is_member(tokens, i) && !after_angle &&
                (kFileIoTypes.count(tok.text) > 0 ||
                 (kFileIoCalls.count(tok.text) > 0 &&
                  next_is(tokens, i, "(")))) {
                add_issue(issues, path, tok.line, "file-io",
                          "raw file I/O ('" + tok.text +
                              "') in library code — durable state "
                              "flows through recover::DurableLog "
                              "(recover/) or workload/trace_io so "
                              "crash-consistency guarantees hold");
            }
            if (cls.library && tok.text == "using" &&
                i + 1 < tokens.size() &&
                tokens[i + 1].kind == Token::kIdent &&
                tokens[i + 1].text == "namespace") {
                add_issue(issues, path, tok.line, "using-namespace",
                          "'using namespace' in library code — "
                          "qualify names explicitly");
            }
            const bool cond_macro = kCondMacros.count(tok.text) > 0;
            const bool msg_macro = kCondMsgMacros.count(tok.text) > 0;
            if ((cond_macro || msg_macro) && next_is(tokens, i, "(")) {
                // Scan the condition argument (for _MSG/_FATAL_IF
                // variants: up to the first top-level comma) for
                // side-effect operators.
                int depth = 0;
                for (std::size_t j = i + 1; j < tokens.size(); ++j) {
                    const Token &arg = tokens[j];
                    if (arg.kind != Token::kPunct) {
                        continue;
                    } else if (arg.text == "(" || arg.text == "[" ||
                               arg.text == "{") {
                        ++depth;
                    } else if (arg.text == ")" || arg.text == "]" ||
                               arg.text == "}") {
                        if (--depth == 0)
                            break;
                    } else if (msg_macro && depth == 1 &&
                               arg.text == ",") {
                        break;  // message argument may stream freely
                    } else if (kSideEffectOps.count(arg.text) > 0) {
                        add_issue(
                            issues, path, arg.line,
                            "check-side-effect",
                            "side effect ('" + arg.text + "') inside " +
                                tok.text +
                                " condition — EF_DCHECK conditions "
                                "are not evaluated in release builds "
                                "and checks must never mutate state");
                    }
                }
            }
        } else if (tok.kind == Token::kPunct && tok.text == "#") {
            // Include directives lex as `#` `include` `<` name `>`.
            const bool is_include =
                i + 4 < tokens.size() &&
                tokens[i + 1].kind == Token::kIdent &&
                tokens[i + 1].text == "include" &&
                tokens[i + 2].kind == Token::kPunct &&
                tokens[i + 2].text == "<" &&
                tokens[i + 3].kind == Token::kIdent &&
                tokens[i + 4].kind == Token::kPunct &&
                tokens[i + 4].text == ">";
            if (cls.library && !cls.threading_exempt && is_include &&
                kThreadingHeaders.count(tokens[i + 3].text) > 0) {
                add_issue(issues, path, tok.line, "threading",
                          "direct <" + tokens[i + 3].text +
                              "> include in library code — all "
                              "parallelism flows through "
                              "ef::ThreadPool (common/parallel.h), "
                              "which keeps planner decisions "
                              "deterministic");
            }
            if (cls.library && !cls.file_io_exempt && is_include &&
                tokens[i + 3].text == "fstream") {
                add_issue(issues, path, tok.line, "file-io",
                          "<fstream> include in library code — "
                          "durable state flows through "
                          "recover::DurableLog (recover/) or "
                          "workload/trace_io so crash-consistency "
                          "guarantees hold");
            }
        } else if (tok.kind == Token::kPunct &&
                   (tok.text == "==" || tok.text == "!=")) {
            if (float_operand_nearby(tokens, i)) {
                add_issue(issues, path, tok.line, "float-eq",
                          "floating-point ==/!= — use "
                          "ef::almost_equal (common/math_util) or "
                          "ef::is_unbounded for kTimeInfinity "
                          "sentinels");
            }
        }
    }

    // Annotation validation + suppression.
    std::vector<Annotation> annotations;
    for (const Comment &comment : lexed.comments)
        parse_annotation(comment.text, comment.line, annotations);
    std::map<std::pair<std::string, int>, bool> allows;  // -> used?
    const std::vector<std::string> &known = rule_names();
    for (const Annotation &a : annotations) {
        if (a.malformed) {
            add_issue(issues, path, a.line, "bad-annotation", a.error);
            continue;
        }
        bool valid = false;
        for (const std::string &name : known)
            valid = valid || name == a.rule;
        if (!valid) {
            add_issue(issues, path, a.line, "bad-annotation",
                      "unknown rule '" + a.rule +
                          "' in ef-lint: allow(...)");
            continue;
        }
        allows.insert({{a.rule, a.line}, false});
    }
    std::vector<Issue> kept;
    for (Issue &issue : issues) {
        if (issue.rule != "bad-annotation") {
            auto same = allows.find({issue.rule, issue.line});
            auto above = allows.find({issue.rule, issue.line - 1});
            if (same != allows.end() || above != allows.end()) {
                // Suppressed by an allow() on this/previous line.
                if (same != allows.end())
                    same->second = true;
                if (above != allows.end())
                    above->second = true;
                continue;
            }
        }
        kept.push_back(std::move(issue));
    }
    if (options.warn_unused_allow) {
        for (const auto &[key, used] : allows) {
            if (used)
                continue;
            add_issue(kept, path, key.second, "unused-allow",
                      "ef-lint: allow(" + key.first +
                          ") suppressed nothing — stale escape "
                          "hatches hide real regressions; remove it "
                          "or re-anchor it to the flagged line");
        }
    }
    return kept;
}

}  // namespace lint
}  // namespace ef

/**
 * @file
 * ef-lint: ElasticFlow-specific static analysis.
 *
 * A lightweight lexer-based analyzer (no libclang) that enforces the
 * repo's determinism and scheduler-invariant contracts:
 *
 *   nondet            No nondeterminism sources in library code
 *                     (std::rand, random_device, system_clock,
 *                     steady_clock, time(), clock(), getenv, raw
 *                     standard engines). All randomness flows through
 *                     ef::Rng; all time through the simulated clock.
 *   unordered         No std::unordered_map / unordered_set in
 *                     src/sched/ and src/sim/, where iteration order
 *                     can leak into plan or event order.
 *   float-eq          No ==/!= whose operand expression contains a
 *                     floating-point literal or the kTimeInfinity
 *                     sentinel; use ef::almost_equal / ef::is_unbounded.
 *   check-side-effect No assignments or ++/-- inside the condition of
 *                     EF_CHECK / EF_CHECK_MSG / EF_FATAL_IF /
 *                     EF_DCHECK / EF_DCHECK_MSG (the EF_DCHECK
 *                     condition is not evaluated in release builds).
 *   io                No std::cout / std::cerr / std::clog in library
 *                     code outside common/logging and common/check.
 *   using-namespace   No using-namespace directives in library code.
 *   threading         No direct threading includes (<thread>, <mutex>,
 *                     <atomic>, <condition_variable>, ...) in library
 *                     code outside common/parallel.* — all parallelism
 *                     flows through ef::ThreadPool, whose deterministic
 *                     index-ownership contract keeps planner decisions
 *                     bit-identical to single-threaded runs.
 *   file-io           No raw file I/O (<fstream> includes, fstream
 *                     stream types, fopen/freopen) in library code
 *                     outside recover/ and workload/trace_io.* — all
 *                     durable state flows through recover::DurableLog
 *                     so crash-consistency (checksums, fsync'd commit
 *                     points, atomic snapshot replace) cannot be
 *                     bypassed by ad-hoc writes.
 *
 * Escape hatch: a violation is suppressed by a line comment on the
 * same line or the line directly above it, naming the rule and a
 * non-empty reason:
 *
 *     // ef-lint: allow(unordered: order never observed, keys drained
 *     //                into a sorted vector)
 *
 * Malformed annotations (unknown rule, missing reason) are themselves
 * reported, as rule "bad-annotation". Unused annotations are legal by
 * default — they may document intent at sites the lexical heuristics
 * are too weak to flag — but LintOptions::warn_unused_allow surfaces
 * them as advisory "unused-allow" issues so stale escape hatches are
 * visible instead of accumulating silently.
 */
#ifndef EF_TOOLS_EF_LINT_LINT_H_
#define EF_TOOLS_EF_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace ef {
namespace lint {

/** Which rule groups apply to a file, derived from its repo path. */
struct FileClass
{
    /** Library code (under src/): nondet, io, using-namespace apply. */
    bool library = false;
    /** Iteration order can leak into decisions (src/sched, src/sim). */
    bool order_sensitive = false;
    /** The sanctioned stderr sinks (common/logging.*, common/check.*). */
    bool io_exempt = false;
    /** The sanctioned randomness source (common/rng.*). */
    bool rng_exempt = false;
    /** The sanctioned threading primitive (common/parallel.*). */
    bool threading_exempt = false;
    /** The sanctioned persistence layer (recover/, workload/trace_io.*). */
    bool file_io_exempt = false;
};

/** Classify a forward-slash path relative to the repo root. */
FileClass classify(std::string_view repo_relative_path);

/** One rule violation (or malformed annotation). */
struct Issue
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** "file:line: [rule] message" */
std::string format_issue(const Issue &issue);

/** All valid rule names, for annotation validation and --list-rules. */
const std::vector<std::string> &rule_names();

/** Optional behaviors beyond the always-on rule set. */
struct LintOptions
{
    /**
     * Emit an advisory "unused-allow" issue for every well-formed
     * allow() annotation that suppressed nothing. Not a member of
     * rule_names(): it cannot itself be allow()ed, and callers treat
     * it as a warning (it never affects the ef_lint exit status).
     */
    bool warn_unused_allow = false;
};

/**
 * Lint one file's contents. @p path is used for issue reporting only;
 * pass @p cls from classify() (or hand-build it in tests).
 */
std::vector<Issue> lint_source(std::string_view path,
                               std::string_view text,
                               const FileClass &cls);
std::vector<Issue> lint_source(std::string_view path,
                               std::string_view text,
                               const FileClass &cls,
                               const LintOptions &options);

}  // namespace lint
}  // namespace ef

#endif  // EF_TOOLS_EF_LINT_LINT_H_

/**
 * @file
 * Capacity planning with ElasticFlow's admission control: an operator
 * asks "how many GPUs do I need so that at least 90% of my expected
 * workload is admitted (and therefore guaranteed)?". The admission
 * rate is a clean sizing signal because admitted == deadline-met.
 *
 * The example sweeps cluster sizes against the same workload and
 * prints admission rate, deadline ratio, and GPU-hours consumed.
 */
#include <iostream>

#include "common/table.h"
#include "sched/elastic_flow.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

using namespace ef;

int
main()
{
    std::cout << "Sizing a cluster for a 150-job weekly workload\n\n";
    ConsoleTable table({"gpus", "admitted", "deadline ratio",
                        "gpu-hours used", "avg busy GPUs"});

    for (int gpus : {32, 64, 96, 128, 192, 256}) {
        TraceGenConfig config = testbed_large_preset();
        config.name = "capacity";
        config.topology = TopologySpec::with_total_gpus(gpus);
        config.num_jobs = 150;
        config.seed = 1234;
        // Keep requests <= 8 GPUs so the generated workload is
        // identical at every cluster size (only capacity varies).
        config.gpu_size_weights = {0.35, 0.25, 0.25, 0.15};
        Trace trace = TraceGenerator::generate(config);

        ElasticFlowScheduler scheduler;
        Simulator simulator(trace, &scheduler);
        RunResult result = simulator.run();

        double admit_rate =
            static_cast<double>(result.admitted_count()) /
            static_cast<double>(result.jobs.size());
        double busy = result.makespan > 0.0
                          ? result.used_gpus.time_average(
                                0.0, result.makespan)
                          : 0.0;
        table.add_row({std::to_string(gpus),
                       format_percent(admit_rate),
                       format_percent(result.deadline_ratio()),
                       format_double(result.total_gpu_seconds() / kHour,
                                     0),
                       format_double(busy, 1)});
    }
    std::cout << table.render();
    std::cout << "\nRead off the smallest cluster whose admission rate "
                 "clears your target; every admitted job is "
                 "guaranteed to meet its deadline.\n";
    return 0;
}

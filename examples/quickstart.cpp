/**
 * @file
 * Quickstart: submit a handful of training jobs to ElasticFlow the
 * serverless way — model, hyperparameters, termination condition, and
 * a deadline; no GPU counts — and watch the platform admit, scale, and
 * finish them.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>

#include "common/table.h"
#include "sched/elastic_flow.h"
#include "sim/simulator.h"
#include "workload/perf_model.h"
#include "workload/trace.h"

using namespace ef;

int
main()
{
    // A 4-server x 8-GPU cluster (32 A100-class GPUs).
    Trace trace;
    trace.name = "quickstart";
    trace.topology = TopologySpec::testbed_32();
    Topology topology(trace.topology);
    PerfModel perf(&topology);

    // The serverless interface (§3.1): each submission names a DNN
    // model, its hyperparameters (global batch size), a termination
    // condition (iterations), and a deadline — never a GPU count.
    auto submit = [&](DnnModel model, int batch,
                      std::int64_t iterations, Time submit_time,
                      Time deadline_in) {
        JobSpec job;
        job.id = static_cast<JobId>(trace.jobs.size());
        job.name = model_name(model) + "-job";
        job.model = model;
        job.global_batch = batch;
        job.iterations = iterations;
        job.submit_time = submit_time;
        job.deadline = submit_time + deadline_in;
        // requested_gpus is only a hint for server-centric baselines;
        // ElasticFlow ignores it. Keep the memory-feasible minimum.
        job.requested_gpus = perf.min_workers(model, batch);
        trace.jobs.push_back(job);
    };

    // Fine-tune BERT within 2 hours, retrain ResNet50 overnight-style
    // within 6, and squeeze a tight VGG16 run that needs elastic
    // scale-out to make its 1-hour deadline.
    submit(DnnModel::kBert, 128, 60000, 0.0, 2.0 * kHour);
    submit(DnnModel::kResNet50, 256, 200000, 5.0 * kMinute,
           6.0 * kHour);
    submit(DnnModel::kVgg16, 256, 18000, 10.0 * kMinute, 1.0 * kHour);

    ElasticFlowScheduler scheduler;
    Simulator simulator(trace, &scheduler);
    RunResult result = simulator.run();

    ConsoleTable table({"job", "admitted", "finish(h)", "deadline(h)",
                        "met?", "scalings", "gpu-hours"});
    for (const JobOutcome &job : result.jobs) {
        table.add_row({job.spec.name,
                       job.admitted ? "yes" : "DROPPED",
                       job.finished
                           ? format_double(job.finish_time / kHour, 2)
                           : "-",
                       format_double(job.spec.deadline / kHour, 2),
                       job.met_deadline() ? "yes" : "no",
                       std::to_string(job.scaling_events),
                       format_double(job.gpu_seconds / kHour, 1)});
    }
    std::cout << table.render();
    std::cout << "\n" << summarize(result) << "\n";
    return 0;
}

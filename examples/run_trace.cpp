/**
 * @file
 * Command-line driver: run any scheduler on a CSV job trace, or dump
 * one of the built-in presets to CSV to edit and replay.
 *
 *   # dump a preset workload to CSV
 *   ./run_trace --generate testbed-small my_trace.csv
 *
 *   # replay it (or your own trace) under a scheduler
 *   ./run_trace my_trace.csv --gpus 32 --scheduler elasticflow
 *   ./run_trace my_trace.csv --gpus 32 --scheduler tiresias \
 *       --failures-mtbf-days 3 --noise 0.05
 *
 * CSV columns: id,name,user,model,global_batch,iterations,
 * submit_time,deadline,kind,requested_gpus (deadline "inf" and kind
 * "best-effort" for jobs without one; kind "soft" for soft deadlines).
 */
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>

#include "common/logging.h"
#include "common/table.h"
#include "fault/fault.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

using namespace ef;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
        << "  run_trace <trace.csv> [--gpus N] [--scheduler NAME]\n"
        << "            [--failures-mtbf-days D] [--noise FRACTION]\n"
        << "            [--no-coalesce] [--no-elide]\n"
        << "            [--mtbf DAYS] [--repair HOURS]\n"
        << "            [--gpu-fault-rate PER_GPU_PER_DAY]\n"
        << "            [--rpc-drop PROB] [--fault-script FILE]\n"
        << "            [--fault-seed N] [--state-hash]\n"
        << "            [--trace-out FILE.json] [--metrics-out FILE]\n"
        << "            [--log-level debug|info|warn|error]\n"
        << "  run_trace --generate <preset> <out.csv>\n"
        << "presets: testbed-small, testbed-large, philly, "
        << "cluster1..cluster10\nschedulers:";
    for (const std::string &name : all_scheduler_names())
        std::cerr << " " << name;
    std::cerr << " edf+admission edf+elastic\n";
    return 2;
}

TraceGenConfig
preset_by_name(const std::string &name)
{
    if (name == "testbed-small")
        return testbed_small_preset();
    if (name == "testbed-large")
        return testbed_large_preset();
    if (name == "philly")
        return philly_preset();
    if (name.rfind("cluster", 0) == 0)
        return cluster_preset(std::stoi(name.substr(7)));
    EF_FATAL_IF(true, "unknown preset '" << name << "'");
    return {};
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    if (std::strcmp(argv[1], "--generate") == 0) {
        if (argc != 4)
            return usage();
        Trace trace = TraceGenerator::generate(preset_by_name(argv[2]));
        save_trace_csv(argv[3], trace);
        Topology topo(trace.topology);
        std::cout << "wrote " << trace.jobs.size() << " jobs ("
                  << topo.total_gpus() << "-GPU preset) to " << argv[3]
                  << "\n";
        return 0;
    }

    std::string trace_path = argv[1];
    int gpus = 128;
    std::string scheduler_name = "elasticflow";
    bool show_state_hash = false;
    std::string trace_out;
    std::string metrics_out;
    SimConfig sim_config;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            EF_FATAL_IF(i + 1 >= argc, arg << " needs a value");
            return argv[++i];
        };
        if (arg == "--gpus") {
            gpus = std::stoi(next());
        } else if (arg == "--scheduler") {
            scheduler_name = next();
        } else if (arg == "--failures-mtbf-days") {
            sim_config.failures.enabled = true;
            sim_config.failures.server_mtbf_s =
                std::stod(next()) * kDay;
        } else if (arg == "--noise") {
            sim_config.noise.throughput_error = std::stod(next());
        } else if (arg == "--no-coalesce") {
            sim_config.coalesce_replans = false;
        } else if (arg == "--no-elide") {
            sim_config.elide_replans = false;
        } else if (arg == "--mtbf") {
            sim_config.faults.server_mtbf_s = std::stod(next()) * kDay;
        } else if (arg == "--repair") {
            sim_config.faults.server_repair_s =
                std::stod(next()) * kHour;
        } else if (arg == "--gpu-fault-rate") {
            sim_config.faults.gpu_mtbf_s = kDay / std::stod(next());
        } else if (arg == "--rpc-drop") {
            sim_config.faults.rpc_drop_prob = std::stod(next());
        } else if (arg == "--fault-script") {
            sim_config.faults.script = load_fault_script(next());
        } else if (arg == "--fault-seed") {
            sim_config.faults.seed = std::stoull(next());
        } else if (arg == "--state-hash") {
            show_state_hash = true;
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--log-level") {
            std::string name = next();
            auto level = log_level_from_name(name);
            if (!level.has_value()) {
                std::cerr << "run_trace: unknown log level '" << name
                          << "' (want debug|info|warn|error)\n";
                return usage();
            }
            set_log_level(*level);
        } else {
            std::cerr << "run_trace: unknown flag '" << arg << "'\n";
            return usage();
        }
    }

    Trace trace = load_trace_csv(
        trace_path, TopologySpec::with_total_gpus(gpus));
    auto scheduler = make_scheduler(scheduler_name);
    Simulator simulator(trace, scheduler.get(), sim_config);

    // Observability is opt-in: sinks are installed only when an output
    // file was requested, so the default path stays recorder-free.
    obs::RingBufferSink ring(std::size_t{1} << 20);
    obs::MetricsRegistry registry;
    std::optional<obs::TraceScope> trace_scope;
    std::optional<obs::MetricsScope> metrics_scope;
    if (!trace_out.empty())
        trace_scope.emplace(&ring);
    if (!metrics_out.empty())
        metrics_scope.emplace(&registry);

    RunResult result = simulator.run();

    trace_scope.reset();
    metrics_scope.reset();
    if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        EF_FATAL_IF(!out, "cannot open " << trace_out << " for writing");
        out << chrome_trace_json(ring.events(), ring.dropped());
        std::cout << "wrote " << ring.events().size()
                  << " trace events to " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        EF_FATAL_IF(!out,
                    "cannot open " << metrics_out << " for writing");
        out << registry.text_dump();
        std::cout << "wrote metrics to " << metrics_out << "\n";
    }

    std::cout << summarize(result) << "\n\n";
    ConsoleTable table({"metric", "value"});
    table.add_row({"jobs", std::to_string(result.jobs.size())});
    table.add_row({"admitted",
                   std::to_string(result.admitted_count())});
    table.add_row({"deadline ratio",
                   format_percent(result.deadline_ratio())});
    table.add_row({"soft-deadline ratio",
                   format_percent(result.deadline_ratio_of(
                       JobKind::kSoftDeadline))});
    table.add_row(
        {"avg best-effort JCT (h)",
         format_double(result.average_jct(JobKind::kBestEffort) / kHour,
                       2)});
    table.add_row({"makespan (h)",
                   format_double(result.makespan / kHour, 1)});
    table.add_row({"GPU-hours",
                   format_double(result.total_gpu_seconds() / kHour,
                                 0)});
    int executed = result.replans_attempted -
                   result.replans_coalesced - result.replans_elided;
    table.add_row({"replans (run/merged/skipped)",
                   std::to_string(executed) + "/" +
                       std::to_string(result.replans_coalesced) + "/" +
                       std::to_string(result.replans_elided)});
    int fault_total = result.rpc_retries + result.rpc_gave_up +
                      result.stragglers_observed + result.gpu_faults +
                      result.ckpt_failures + result.slo_demotions;
    if (fault_total > 0) {
        table.add_row({"RPC retries / give-ups",
                       std::to_string(result.rpc_retries) + "/" +
                           std::to_string(result.rpc_gave_up)});
        table.add_row({"stragglers",
                       std::to_string(result.stragglers_observed)});
        table.add_row({"GPU faults",
                       std::to_string(result.gpu_faults)});
        table.add_row({"checkpoint failures",
                       std::to_string(result.ckpt_failures)});
        table.add_row({"SLO demotions",
                       std::to_string(result.slo_demotions)});
    }
    std::cout << table.render();
    if (show_state_hash) {
        // Fixed single-line format so CI can diff two runs directly.
        std::cout << "state-hash: " << std::hex << std::setw(16)
                  << std::setfill('0') << result.state_hash << std::dec
                  << " samples: " << result.state_hash_samples << "\n";
    }
    return 0;
}

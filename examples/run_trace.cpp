/**
 * @file
 * Command-line driver: run any scheduler on a CSV job trace, or dump
 * one of the built-in presets to CSV to edit and replay.
 *
 *   # dump a preset workload to CSV
 *   ./run_trace --generate testbed-small my_trace.csv
 *
 *   # replay it (or your own trace) under a scheduler
 *   ./run_trace my_trace.csv --gpus 32 --scheduler elasticflow
 *   ./run_trace my_trace.csv --gpus 32 --scheduler tiresias \
 *       --failures-mtbf-days 3 --noise 0.05
 *
 * CSV columns: id,name,user,model,global_batch,iterations,
 * submit_time,deadline,kind,requested_gpus (deadline "inf" and kind
 * "best-effort" for jobs without one; kind "soft" for soft deadlines).
 *
 * Service mode (streaming admission, see src/serve/):
 *
 *   # synthetic open-loop stream through the serve front end
 *   ./run_trace --service --arrival-rate=0.5 --duration=7200 --gpus 64
 *
 *   # replay a CSV trace with the simulator's service-mode queue
 *   ./run_trace my_trace.csv --service --gpus 32
 *
 * Flags accept both "--flag value" and "--flag=value".
 */
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "fault/fault.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "serve/service.h"
#include "serve/stream.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

using namespace ef;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
        << "  run_trace <trace.csv> [--gpus N] [--scheduler NAME]\n"
        << "            [--failures-mtbf-days D] [--noise FRACTION]\n"
        << "            [--no-coalesce] [--no-elide]\n"
        << "            [--mtbf DAYS] [--repair HOURS]\n"
        << "            [--gpu-fault-rate PER_GPU_PER_DAY]\n"
        << "            [--rpc-drop PROB] [--fault-script FILE]\n"
        << "            [--fault-seed N] [--state-hash]\n"
        << "            [--planner-shards N] [--planner-threads N]\n"
        << "            [--trace-out FILE.json] [--metrics-out FILE]\n"
        << "            [--journal-dir DIR] [--snapshot-every N]\n"
        << "            [--recover] [--report-out PREFIX]\n"
        << "            [--defrag] [--defrag-budget UNITS]\n"
        << "            [--defrag-steps N] [--defrag-interval S]\n"
        << "            [--defrag-seed N]\n"
        << "            [--log-level debug|info|warn|error]\n"
        << "            [--service]\n"
        << "  run_trace --service --arrival-rate JOBS_PER_S "
        << "--duration SECONDS\n"
        << "            [--gpus N] [--seed N] [--state-hash]\n"
        << "            [--fault-script FILE] [--fault-seed N]\n"
        << "            [--rpc-drop PROB] [--metrics-out FILE]\n"
        << "  run_trace --generate <preset> <out.csv>\n"
        << "presets: testbed-small, testbed-large, philly, churn, "
        << "cluster1..cluster10\nschedulers:";
    for (const std::string &name : all_scheduler_names())
        std::cerr << " " << name;
    std::cerr << " edf+admission edf+elastic\n";
    return 2;
}

TraceGenConfig
preset_by_name(const std::string &name)
{
    if (name == "testbed-small")
        return testbed_small_preset();
    if (name == "testbed-large")
        return testbed_large_preset();
    if (name == "philly")
        return philly_preset();
    if (name == "churn")
        return churn_preset();
    if (name.rfind("cluster", 0) == 0)
        return cluster_preset(std::stoi(name.substr(7)));
    EF_FATAL_IF(true, "unknown preset '" << name << "'");
    return {};
}

/**
 * Standalone service mode: push a synthetic open-loop stream through
 * the ef::serve front end (no simulator) and report the overload-
 * control counters plus decision-latency quantiles.
 */
int
run_service(double arrival_rate, Time duration, int gpus,
            std::uint64_t seed, const FaultConfig &fault_config,
            bool show_state_hash, const std::string &metrics_out,
            int planner_shards, int planner_threads)
{
    serve::StreamConfig stream_config;
    stream_config.topology = TopologySpec::with_total_gpus(gpus);
    stream_config.arrival_rate = arrival_rate;
    stream_config.seed = seed;

    serve::ServiceConfig service_config;
    service_config.total_gpus = gpus;
    service_config.degrade_infeasible = true;
    service_config.planner_shards = planner_shards;
    service_config.planner_threads = planner_threads;

    std::unique_ptr<FaultInjector> faults;
    if (fault_config.any())
        faults = std::make_unique<FaultInjector>(fault_config);

    serve::SyntheticStream stream(stream_config, faults.get());
    serve::Service service(service_config, faults.get());

    // The decision-latency histogram lives in ef::obs; install a
    // registry so the quantiles below have something to read.
    obs::MetricsRegistry registry;
    {
        obs::MetricsScope metrics_scope(&registry);
        while (true) {
            serve::Submission sub = stream.next();
            if (sub.spec.submit_time > duration)
                break;
            service.submit(std::move(sub));
        }
        service.advance_to(duration);
        service.finish();
    }

    const serve::ServiceStats &stats = service.stats();
    const std::uint64_t offered = stats.submitted + stats.rpc_dropped;
    const double shed_rate =
        stats.submitted > 0
            ? static_cast<double>(stats.shed()) /
                  static_cast<double>(stats.submitted)
            : 0.0;
    const std::vector<double> edges = {0.001, 0.01, 0.1, 0.5, 1.0,
                                       2.0,   5.0,  10.0, 20.0, 30.0,
                                       60.0,  120.0, 300.0};
    const obs::Histogram &latency =
        registry.histogram("serve.decision_latency_s", edges);

    std::cout << "service: " << offered << " submissions over "
              << format_double(duration / kHour, 1) << " h at "
              << format_double(arrival_rate, 3) << " jobs/s ("
              << gpus << " GPUs)\n\n";
    ConsoleTable table({"metric", "value"});
    table.add_row({"decided", std::to_string(stats.submitted)});
    table.add_row({"RPC-dropped", std::to_string(stats.rpc_dropped)});
    table.add_row({"admitted (SLO)", std::to_string(stats.admitted)});
    table.add_row({"admitted (best-effort)",
                   std::to_string(stats.admitted_best_effort)});
    table.add_row({"degraded", std::to_string(stats.degraded)});
    table.add_row({"shed (queue-full)",
                   std::to_string(stats.shed_queue_full)});
    table.add_row({"shed (infeasible)",
                   std::to_string(stats.shed_infeasible)});
    table.add_row({"shed rate", format_percent(shed_rate)});
    table.add_row({"rounds (forced)",
                   std::to_string(stats.rounds) + " (" +
                       std::to_string(stats.rounds_forced) + ")"});
    table.add_row({"replan timeouts",
                   std::to_string(stats.replan_timeouts)});
    table.add_row({"planning cost (units)",
                   std::to_string(stats.planning_cost)});
    table.add_row({"finished", std::to_string(stats.finished)});
    table.add_row({"deadline misses",
                   std::to_string(stats.deadline_misses)});
    table.add_row({"max queue depth",
                   std::to_string(stats.max_queue_depth)});
    table.add_row({"decision latency p50 (s)",
                   format_double(
                       obs::histogram_quantile(latency, 0.5), 3)});
    table.add_row({"decision latency p99 (s)",
                   format_double(
                       obs::histogram_quantile(latency, 0.99), 3)});
    std::cout << table.render();

    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        EF_FATAL_IF(!out,
                    "cannot open " << metrics_out << " for writing");
        out << registry.text_dump();
        std::cout << "wrote metrics to " << metrics_out << "\n";
    }
    if (show_state_hash) {
        std::cout << "state-hash: " << std::hex << std::setw(16)
                  << std::setfill('0') << service.state_hash()
                  << std::dec << " samples: " << stats.rounds << "\n";
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    if (std::strcmp(argv[1], "--generate") == 0) {
        if (argc != 4)
            return usage();
        Trace trace = TraceGenerator::generate(preset_by_name(argv[2]));
        save_trace_csv(argv[3], trace);
        Topology topo(trace.topology);
        std::cout << "wrote " << trace.jobs.size() << " jobs ("
                  << topo.total_gpus() << "-GPU preset) to " << argv[3]
                  << "\n";
        return 0;
    }

    // A leading flag (instead of a trace path) selects standalone
    // service mode; --service after a trace path turns on the
    // simulator's service-mode arrival queue instead.
    std::string trace_path;
    int first_flag = 1;
    if (argv[1][0] != '-') {
        trace_path = argv[1];
        first_flag = 2;
    }
    int gpus = 128;
    std::string scheduler_name = "elasticflow";
    bool show_state_hash = false;
    bool service_mode = false;
    double arrival_rate = 0.0;
    Time service_duration = 0.0;
    std::uint64_t stream_seed = 1;
    std::string trace_out;
    std::string metrics_out;
    std::string report_out;
    SimConfig sim_config;
    for (int i = first_flag; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept --flag=value as well as --flag value.
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg = arg.substr(0, eq);
                has_inline = true;
            }
        }
        auto next = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            EF_FATAL_IF(i + 1 >= argc, arg << " needs a value");
            return argv[++i];
        };
        if (arg == "--service") {
            service_mode = true;
            sim_config.service.enabled = true;
        } else if (arg == "--arrival-rate") {
            arrival_rate = std::stod(next());
        } else if (arg == "--duration") {
            service_duration = std::stod(next());
        } else if (arg == "--seed") {
            stream_seed = std::stoull(next());
        } else if (arg == "--gpus") {
            gpus = std::stoi(next());
        } else if (arg == "--scheduler") {
            scheduler_name = next();
        } else if (arg == "--failures-mtbf-days") {
            sim_config.failures.enabled = true;
            sim_config.failures.server_mtbf_s =
                std::stod(next()) * kDay;
        } else if (arg == "--noise") {
            sim_config.noise.throughput_error = std::stod(next());
        } else if (arg == "--no-coalesce") {
            sim_config.coalesce_replans = false;
        } else if (arg == "--no-elide") {
            sim_config.elide_replans = false;
        } else if (arg == "--mtbf") {
            sim_config.faults.server_mtbf_s = std::stod(next()) * kDay;
        } else if (arg == "--repair") {
            sim_config.faults.server_repair_s =
                std::stod(next()) * kHour;
        } else if (arg == "--gpu-fault-rate") {
            sim_config.faults.gpu_mtbf_s = kDay / std::stod(next());
        } else if (arg == "--rpc-drop") {
            sim_config.faults.rpc_drop_prob = std::stod(next());
        } else if (arg == "--fault-script") {
            sim_config.faults.script = load_fault_script(next());
        } else if (arg == "--fault-seed") {
            sim_config.faults.seed = std::stoull(next());
        } else if (arg == "--planner-shards") {
            sim_config.planner_shards = std::stoi(next());
        } else if (arg == "--planner-threads") {
            sim_config.planner_threads = std::stoi(next());
        } else if (arg == "--state-hash") {
            show_state_hash = true;
        } else if (arg == "--journal-dir") {
            sim_config.durability.journal_dir = next();
        } else if (arg == "--snapshot-every") {
            sim_config.durability.snapshot_every = std::stoull(next());
        } else if (arg == "--recover") {
            sim_config.durability.recover = true;
        } else if (arg == "--defrag") {
            sim_config.defrag.enabled = true;
        } else if (arg == "--defrag-budget") {
            sim_config.defrag.enabled = true;
            sim_config.defrag.budget_units_per_round =
                std::stod(next());
        } else if (arg == "--defrag-steps") {
            sim_config.defrag.max_steps = std::stoi(next());
        } else if (arg == "--defrag-interval") {
            sim_config.defrag.governor.rounds_per_second =
                1.0 / std::stod(next());
        } else if (arg == "--defrag-seed") {
            sim_config.defrag.seed = std::stoull(next());
        } else if (arg == "--report-out") {
            report_out = next();
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--log-level") {
            std::string name = next();
            auto level = log_level_from_name(name);
            if (!level.has_value()) {
                std::cerr << "run_trace: unknown log level '" << name
                          << "' (want debug|info|warn|error)\n";
                return usage();
            }
            set_log_level(*level);
        } else {
            std::cerr << "run_trace: unknown flag '" << arg << "'\n";
            return usage();
        }
    }

    if (sim_config.durability.recover &&
        sim_config.durability.journal_dir.empty()) {
        std::cerr << "run_trace: --recover needs --journal-dir\n";
        return usage();
    }
    if (trace_path.empty()) {
        if (!sim_config.durability.journal_dir.empty()) {
            std::cerr << "run_trace: --journal-dir applies only to "
                      << "trace replays (crash-consistent simulator "
                      << "runs)\n";
            return usage();
        }
        if (!service_mode || arrival_rate <= 0.0 ||
            service_duration <= 0.0) {
            std::cerr << "run_trace: standalone service mode needs "
                      << "--service, --arrival-rate > 0 and "
                      << "--duration > 0\n";
            return usage();
        }
        return run_service(arrival_rate, service_duration, gpus,
                           stream_seed, sim_config.faults,
                           show_state_hash, metrics_out,
                           sim_config.planner_shards,
                           sim_config.planner_threads);
    }
    if (arrival_rate > 0.0 || service_duration > 0.0) {
        std::cerr << "run_trace: --arrival-rate/--duration apply only "
                  << "to standalone --service mode (no trace file)\n";
        return usage();
    }

    Trace trace = load_trace_csv(
        trace_path, TopologySpec::with_total_gpus(gpus));
    auto scheduler = make_scheduler(scheduler_name);
    Simulator simulator(trace, scheduler.get(), sim_config);

    // Observability is opt-in: sinks are installed only when an output
    // file was requested, so the default path stays recorder-free.
    obs::RingBufferSink ring(std::size_t{1} << 20);
    obs::MetricsRegistry registry;
    std::optional<obs::TraceScope> trace_scope;
    std::optional<obs::MetricsScope> metrics_scope;
    if (!trace_out.empty())
        trace_scope.emplace(&ring);
    if (!metrics_out.empty())
        metrics_scope.emplace(&registry);

    if (!sim_config.durability.journal_dir.empty()) {
        // Surface unreadable/corrupt snapshot or journal input as a
        // line/record-numbered diagnostic and exit code 2, matching
        // the CSV trace and fault-script conventions — never an
        // EF_CHECK abort.
        recover::Status st = simulator.prepare_durability();
        if (!st.ok()) {
            std::cerr << "run_trace: " << st.to_string() << "\n";
            return 2;
        }
    }

    RunResult result = simulator.run();

    if (simulator.crashed()) {
        std::cerr << "run_trace: injected scheduler crash after "
                  << result.state_hash_samples
                  << " round commits; rerun with --recover to "
                     "resume\n";
        return 3;
    }

    trace_scope.reset();
    metrics_scope.reset();
    if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        EF_FATAL_IF(!out, "cannot open " << trace_out << " for writing");
        out << chrome_trace_json(ring.events(), ring.dropped());
        std::cout << "wrote " << ring.events().size()
                  << " trace events to " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        EF_FATAL_IF(!out,
                    "cannot open " << metrics_out << " for writing");
        out << registry.text_dump();
        std::cout << "wrote metrics to " << metrics_out << "\n";
    }
    if (!report_out.empty()) {
        save_run_report(report_out, result);
        std::cout << "wrote report files to " << report_out << ".*\n";
    }

    std::cout << summarize(result) << "\n\n";
    ConsoleTable table({"metric", "value"});
    table.add_row({"jobs", std::to_string(result.jobs.size())});
    table.add_row({"admitted",
                   std::to_string(result.admitted_count())});
    table.add_row({"deadline ratio",
                   format_percent(result.deadline_ratio())});
    table.add_row({"soft-deadline ratio",
                   format_percent(result.deadline_ratio_of(
                       JobKind::kSoftDeadline))});
    table.add_row(
        {"avg best-effort JCT (h)",
         format_double(result.average_jct(JobKind::kBestEffort) / kHour,
                       2)});
    table.add_row({"makespan (h)",
                   format_double(result.makespan / kHour, 1)});
    table.add_row({"GPU-hours",
                   format_double(result.total_gpu_seconds() / kHour,
                                 0)});
    int executed = result.replans_attempted -
                   result.replans_coalesced - result.replans_elided;
    table.add_row({"replans (run/merged/skipped)",
                   std::to_string(executed) + "/" +
                       std::to_string(result.replans_coalesced) + "/" +
                       std::to_string(result.replans_elided)});
    int fault_total = result.rpc_retries + result.rpc_gave_up +
                      result.stragglers_observed + result.gpu_faults +
                      result.ckpt_failures + result.slo_demotions;
    if (fault_total > 0) {
        table.add_row({"RPC retries / give-ups",
                       std::to_string(result.rpc_retries) + "/" +
                           std::to_string(result.rpc_gave_up)});
        table.add_row({"stragglers",
                       std::to_string(result.stragglers_observed)});
        table.add_row({"GPU faults",
                       std::to_string(result.gpu_faults)});
        table.add_row({"checkpoint failures",
                       std::to_string(result.ckpt_failures)});
        table.add_row({"SLO demotions",
                       std::to_string(result.slo_demotions)});
    }
    table.add_row({"fragmentation (avg/final)",
                   format_double(average_fragmentation(result), 3) +
                       "/" +
                       format_double(final_fragmentation(result), 3)});
    table.add_row({"span excess (avg/final)",
                   format_double(average_span_excess(result), 1) + "/" +
                       format_double(final_span_excess(result), 1)});
    if (sim_config.defrag.enabled) {
        table.add_row({"defrag rounds/moves",
                       std::to_string(result.defrag_rounds) + "/" +
                           std::to_string(result.defrag_moves)});
        table.add_row({"defrag budget spent",
                       format_double(result.defrag_budget_spent, 1)});
    }
    if (sim_config.service.enabled) {
        table.add_row({"service rounds (forced)",
                       std::to_string(result.service_rounds) + " (" +
                           std::to_string(
                               result.service_rounds_forced) +
                           ")"});
        table.add_row({"shed (queue-full)",
                       std::to_string(result.shed_queue_full)});
        table.add_row({"degraded",
                       std::to_string(result.service_degraded)});
        table.add_row({"max service queue depth",
                       std::to_string(
                           result.max_service_queue_depth)});
    }
    std::cout << table.render();
    if (show_state_hash) {
        // Fixed single-line format so CI can diff two runs directly.
        std::cout << "state-hash: " << std::hex << std::setw(16)
                  << std::setfill('0') << result.state_hash << std::dec
                  << " samples: " << result.state_hash_samples << "\n";
    }
    return 0;
}

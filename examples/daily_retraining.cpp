/**
 * @file
 * The paper's motivating production scenario (§1): models are
 * re-trained and onboarded in time for regular product releases —
 * e.g. fine-tuning BERT with daily news to refresh a recommendation
 * service every day. Each morning a batch of retraining jobs arrives
 * with a hard end-of-workday deadline; ad-hoc experimentation jobs
 * arrive all day with looser deadlines.
 *
 * The example runs a week of this workload and reports how many
 * release-critical jobs shipped on time under ElasticFlow vs. a
 * deadline-unaware scheduler.
 */
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/perf_model.h"
#include "workload/trace.h"

using namespace ef;

namespace {

Trace
build_week()
{
    Trace trace;
    trace.name = "daily-retraining-week";
    trace.topology = TopologySpec::testbed_128();
    Topology topology(trace.topology);
    PerfModel perf(&topology);
    Rng rng(20260705);

    JobId next_id = 0;
    for (int day = 0; day < 7; ++day) {
        Time morning = day * kDay + 8.0 * kHour;
        // Release-critical retraining: BERT/GPT-2 jobs due at 18:00
        // the same day.
        for (int j = 0; j < 9; ++j) {
            JobSpec job;
            job.id = next_id++;
            job.model =
                j % 2 == 0 ? DnnModel::kBert : DnnModel::kResNet50;
            job.global_batch = j % 2 == 0 ? 64 : 256;
            job.name = "release-d" + std::to_string(day) + "-" +
                       std::to_string(j);
            job.submit_time = morning + rng.uniform_real(0, kHour);
            job.deadline = day * kDay + 18.0 * kHour;
            // The server-centric request (2 GPUs) could never make the
            // deadline — these jobs NEED elastic scale-out.
            job.requested_gpus = 2;
            double hours = rng.uniform_real(8.0, 13.0);
            job.iterations = iterations_for_duration(
                perf, job, hours * kHour);
            trace.jobs.push_back(job);
        }
        // Ad-hoc experiments: CV jobs with next-morning deadlines.
        for (int j = 0; j < 14; ++j) {
            JobSpec job;
            job.id = next_id++;
            job.model = j % 2 == 0 ? DnnModel::kResNet50
                                   : DnnModel::kInceptionV3;
            job.global_batch = 128;
            job.name = "adhoc-d" + std::to_string(day) + "-" +
                       std::to_string(j);
            job.submit_time =
                morning + rng.uniform_real(0, 10.0 * kHour);
            job.deadline = job.submit_time + 9.0 * kHour;
            job.requested_gpus = GpuCount(1)
                                 << rng.uniform_int(0, 3);
            double hours = rng.uniform_real(2.0, 9.0);
            job.iterations = iterations_for_duration(
                perf, job, hours * kHour);
            trace.jobs.push_back(job);
        }
    }
    trace.sort_by_submit_time();
    return trace;
}

}  // namespace

int
main()
{
    Trace trace = build_week();
    std::cout << "A week of daily retraining: " << trace.jobs.size()
              << " jobs on 128 GPUs\n\n";

    ConsoleTable table({"scheduler", "release jobs on time",
                        "adhoc jobs on time", "dropped"});
    for (const std::string name :
         {"elasticflow", "tiresias", "chronus"}) {
        auto scheduler = make_scheduler(name);
        Simulator simulator(trace, scheduler.get());
        RunResult result = simulator.run();
        int release_met = 0, release_total = 0;
        int adhoc_met = 0, adhoc_total = 0;
        for (const JobOutcome &job : result.jobs) {
            bool release = job.spec.name.rfind("release", 0) == 0;
            (release ? release_total : adhoc_total) += 1;
            if (job.met_deadline())
                (release ? release_met : adhoc_met) += 1;
        }
        table.add_row({name,
                       std::to_string(release_met) + "/" +
                           std::to_string(release_total),
                       std::to_string(adhoc_met) + "/" +
                           std::to_string(adhoc_total),
                       std::to_string(result.dropped_count())});
    }
    std::cout << table.render();
    std::cout << "\nElasticFlow admits only what it can finish and "
                 "elastically reshuffles GPUs so the release jobs "
                 "always ship on time.\n";
    return 0;
}

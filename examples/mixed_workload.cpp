/**
 * @file
 * Mixing SLO jobs (hard deadlines) with best-effort jobs (§4.4): a
 * research group shares a cluster with a production team. Production
 * retraining carries deadlines; research sweeps are best-effort and
 * should simply finish as early as possible from leftover capacity.
 *
 * Shows ElasticFlow's unified queue: SLO minimum shares are always
 * protected, best-effort jobs soak up every remaining GPU.
 */
#include <iostream>

#include "common/table.h"
#include "sched/elastic_flow.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

using namespace ef;

int
main()
{
    TraceGenConfig config = testbed_large_preset();
    config.name = "mixed-workload";
    config.num_jobs = 120;
    config.best_effort_fraction = 0.35;
    config.seed = 99;
    Trace trace = TraceGenerator::generate(config);

    ElasticFlowScheduler scheduler;
    Simulator simulator(trace, &scheduler);
    RunResult result = simulator.run();

    std::size_t slo_total = result.submitted(JobKind::kSlo);
    std::size_t be_total = result.submitted(JobKind::kBestEffort);
    std::cout << "Submitted: " << slo_total << " SLO + " << be_total
              << " best-effort jobs on "
              << result.total_gpus << " GPUs\n\n";

    ConsoleTable table({"class", "finished", "on-time", "avg JCT (h)",
                        "avg queueing (min)"});
    for (JobKind kind : {JobKind::kSlo, JobKind::kBestEffort}) {
        std::size_t finished = 0, on_time = 0;
        double jct_sum = 0.0, queue_sum = 0.0;
        for (const JobOutcome &job : result.jobs) {
            if (job.spec.kind != kind || !job.finished)
                continue;
            ++finished;
            on_time += job.met_deadline() ? 1 : 0;
            jct_sum += job.jct();
            queue_sum += job.first_run_time - job.spec.submit_time;
        }
        double denom = std::max<std::size_t>(finished, 1);
        table.add_row({kind == JobKind::kSlo ? "SLO" : "best-effort",
                       std::to_string(finished),
                       kind == JobKind::kSlo
                           ? std::to_string(on_time)
                           : std::string("-"),
                       format_double(jct_sum / denom / kHour, 2),
                       format_double(queue_sum / denom / kMinute, 1)});
    }
    std::cout << table.render();

    std::cout << "\nEvery admitted SLO job met its deadline: "
              << (result.deadlines_met() + result.dropped_count() ==
                          slo_total
                      ? "yes"
                      : "no")
              << " (" << result.dropped_count()
              << " infeasible deadlines rejected at submission)\n";
    return 0;
}

#include "sched/elastic_flow.h"

#include "common/check.h"
#include "common/logging.h"
#include <algorithm>

#include "recover/codec.h"

#include "cluster/shard.h"
#include "sched/planning_util.h"

namespace ef {

PlannerConfig
ElasticFlowScheduler::planner_config() const
{
    EF_CHECK(view_ != nullptr);
    return planner_config_for(*view_, config_.slot_seconds,
                              config_.direction);
}

const PlannerConcurrency *
ElasticFlowScheduler::planner_concurrency()
{
    if (config_.planner_shards <= 0)
        return nullptr;
    if (!concurrency_ready_) {
        // Shard along buddy-hierarchy (pod) boundaries of the initial
        // cluster; if faults later shrink capacity below this layout,
        // shard_capacity_slices falls back to an even split — either
        // way the decisions stay bit-identical to classic planning.
        concurrency_.shards = config_.planner_shards;
        concurrency_.shard_gpus = shard_capacities(extract_pod_shards(
            view_->total_gpus(), config_.planner_shards));
        concurrency_.shards =
            static_cast<int>(concurrency_.shard_gpus.size());
        if (config_.planner_threads > 1) {
            pool_ = std::make_unique<ThreadPool>(config_.planner_threads);
            concurrency_.pool = pool_.get();
        }
        concurrency_ready_ = true;
    }
    return &concurrency_;
}

bool
ElasticFlowScheduler::admit(const JobSpec &job)
{
    EF_CHECK(view_ != nullptr);
    if (job.is_best_effort() || job.has_soft_deadline())
        return true;  // no admission gate for non-guaranteed jobs (§4.4)
    PlanningMargin margin{config_.admission_margin,
                          config_.overhead_allowance_s};
    // Admission is checked against capacity minus the failure reserve
    // (§4.4 "Node failures"); allocation still spends every live GPU.
    PlannerConfig config = planner_config();
    config.total_gpus = std::max<GpuCount>(
        1, config.total_gpus - config_.failure_headroom_gpus);
    if (!admission_feasible(*view_, config, margin, job,
                            /*fixed_size=*/false, &round_, &demoted_)) {
        return false;
    }
    if (policy_ != nullptr) {
        // Operator veto (quota/pricing) after feasibility (§4.4).
        ScalingCurve curve = view_->curve_for(job);
        GpuCount baseline =
            std::max(job.requested_gpus, curve.min_workers());
        Time duration = static_cast<double>(job.iterations) /
                        curve.throughput(baseline);
        return policy_->approve(job, view_->now(), duration);
    }
    return true;
}

SchedulerDecision
ElasticFlowScheduler::allocate()
{
    EF_CHECK(view_ != nullptr);
    PlanningMargin margin{config_.admission_margin,
                          config_.overhead_allowance_s};
    std::vector<JobId> hard_parked;
    SchedulerDecision decision = elastic_allocate(
        *view_, planner_config(), margin,
        /*fixed_size=*/false, &replan_failures_, &round_, &demoted_,
        &hard_parked, planner_concurrency());
    if (view_->fault_epoch() > 0) {
        // A hard-SLO job whose deadline no longer fits after a fault
        // shrank capacity is demoted to best-effort, exactly once. On
        // a healthy cluster parked jobs keep the legacy
        // relax-and-retry treatment (overhead drift, not failures).
        for (JobId id : hard_parked) {
            if (demoted_.insert(id).second) {
                fresh_demotions_.push_back(id);
                EF_INFO("job " << id
                               << " deadline unmeetable after failure; "
                                  "demoted to best-effort");
            }
        }
    }
    return decision;
}

std::vector<JobId>
ElasticFlowScheduler::take_demotions()
{
    std::vector<JobId> fresh = std::move(fresh_demotions_);
    fresh_demotions_.clear();
    return fresh;
}

void
ElasticFlowScheduler::encode_recovery_state(std::string *out) const
{
    recover::Encoder enc;
    enc.i64(replan_failures_);
    enc.u64(demoted_.size());
    for (JobId id : demoted_)
        enc.i64(id);
    enc.u64(fresh_demotions_.size());
    for (JobId id : fresh_demotions_)
        enc.i64(id);
    *out = enc.data();
}

bool
ElasticFlowScheduler::decode_recovery_state(const std::string &blob)
{
    recover::Decoder dec(blob);
    std::int64_t failures = 0;
    std::uint64_t n = 0;
    if (!dec.i64(&failures) || !dec.count(&n, 8))
        return false;
    std::set<JobId> demoted;
    for (std::uint64_t i = 0; i < n; ++i) {
        JobId id = kInvalidJob;
        if (!dec.i64(&id))
            return false;
        demoted.insert(id);
    }
    std::uint64_t fresh_n = 0;
    if (!dec.count(&fresh_n, 8))
        return false;
    std::vector<JobId> fresh;
    for (std::uint64_t i = 0; i < fresh_n; ++i) {
        JobId id = kInvalidJob;
        if (!dec.i64(&id))
            return false;
        fresh.push_back(id);
    }
    if (!dec.ok() || !dec.empty())
        return false;
    replan_failures_ = static_cast<int>(failures);
    demoted_ = std::move(demoted);
    fresh_demotions_ = std::move(fresh);
    return true;
}

}  // namespace ef

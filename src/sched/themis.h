/**
 * @file
 * Themis baseline (Mahajan et al., NSDI'20): finish-time fairness.
 * Each job's rho is its projected finish time under the shared cluster
 * divided by its finish time had it run alone on its requested GPUs
 * from submission. Freed GPUs are leased to the waiting jobs with the
 * worst (largest) rho, and a lease can be reclaimed when a waiting job
 * is markedly worse off than a running one. Server-centric and not
 * deadline-aware; follows the simplified open-source formulation the
 * paper also uses (Narayanan et al.'s Gavel implementation).
 */
#ifndef EF_SCHED_THEMIS_H_
#define EF_SCHED_THEMIS_H_

#include <string>

#include "sched/scheduler.h"

namespace ef {

/** See file comment. */
class ThemisScheduler : public Scheduler
{
  public:
    std::string name() const override { return "themis"; }

    SchedulerDecision allocate() override;

    Time reschedule_interval() const override { return 600.0; }

  private:
    double finish_time_fairness(JobId id) const;
};

}  // namespace ef

#endif  // EF_SCHED_THEMIS_H_

#include "sched/scheduler.h"

#include "common/check.h"
#include "sched/chronus.h"
#include "sched/edf.h"
#include "sched/elastic_flow.h"
#include "sched/gandiva.h"
#include "sched/pollux.h"
#include "sched/themis.h"
#include "sched/tiresias.h"

namespace ef {

std::unique_ptr<Scheduler>
make_scheduler(const std::string &name)
{
    if (name == "elasticflow")
        return std::make_unique<ElasticFlowScheduler>();
    if (name == "edf")
        return std::make_unique<EdfScheduler>(EdfVariant::kPlain);
    if (name == "edf+admission")
        return std::make_unique<EdfScheduler>(EdfVariant::kWithAdmission);
    if (name == "edf+elastic")
        return std::make_unique<EdfScheduler>(EdfVariant::kWithElastic);
    if (name == "gandiva")
        return std::make_unique<GandivaScheduler>();
    if (name == "tiresias")
        return std::make_unique<TiresiasScheduler>();
    if (name == "themis")
        return std::make_unique<ThemisScheduler>();
    if (name == "chronus")
        return std::make_unique<ChronusScheduler>();
    if (name == "pollux")
        return std::make_unique<PolluxScheduler>();
    EF_FATAL_IF(true, "unknown scheduler '" << name << "'");
    return nullptr;  // unreachable
}

const std::vector<std::string> &
all_scheduler_names()
{
    static const std::vector<std::string> kNames = {
        "elasticflow", "edf", "gandiva", "tiresias",
        "themis", "chronus", "pollux",
    };
    return kNames;
}

}  // namespace ef

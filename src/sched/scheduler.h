/**
 * @file
 * The scheduler abstraction the simulator drives, plus the factory for
 * every policy evaluated in the paper.
 *
 * A scheduler sees the cluster through ClusterView (job specs, scaling
 * curves, progress, attained service) and makes two kinds of
 * decisions: an admission verdict when a job is submitted, and — on
 * every scheduling event (arrival, completion, periodic tick) — the
 * desired GPU count for each active job. Concrete GPU selection is the
 * placement manager's problem; a scheduler only chooses counts and its
 * placement strategy, mirroring the paper's decoupling of placement
 * from admission control and resource allocation (§4.3).
 */
#ifndef EF_SCHED_SCHEDULER_H_
#define EF_SCHED_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "core/scaling_curve.h"
#include "workload/job.h"

namespace ef {

/** Read-only view of cluster and job state offered to schedulers. */
class ClusterView
{
  public:
    virtual ~ClusterView() = default;

    virtual GpuCount total_gpus() const = 0;
    virtual Time now() const = 0;

    /** Admitted jobs that have not finished (includes suspended). */
    virtual std::vector<JobId> active_jobs() const = 0;

    virtual const JobSpec &spec(JobId job) const = 0;

    /** Compact-placement scaling curve of the job on this cluster. */
    virtual const ScalingCurve &curve(JobId job) const = 0;

    /**
     * Curve for an arbitrary spec (used to evaluate a submission that
     * is not yet active, e.g. during admission control).
     */
    virtual ScalingCurve curve_for(const JobSpec &spec) const = 0;

    virtual double remaining_iterations(JobId job) const = 0;

    /** GPUs the job holds right now (0 when suspended). */
    virtual GpuCount current_gpus(JobId job) const = 0;

    /** Total GPU-seconds the job has consumed so far (Tiresias). */
    virtual double attained_gpu_seconds(JobId job) const = 0;

    /**
     * Count of capacity-affecting fault events (server crashes, GPU
     * faults) so far. 0 on a healthy cluster; a failure-aware policy
     * only re-evaluates admitted guarantees when this moved.
     */
    virtual std::uint64_t fault_epoch() const { return 0; }
};

/** Desired GPU count per active job; absent means 0 (suspended). */
struct SchedulerDecision
{
    std::map<JobId, GpuCount> gpus;

    GpuCount of(JobId job) const
    {
        auto it = gpus.find(job);
        return it == gpus.end() ? 0 : it->second;
    }
};

/** Base class of all scheduling policies. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /** The simulator binds its view before the run starts. */
    void bind(const ClusterView *view) { view_ = view; }

    /**
     * Admission verdict for a submitted job. Default: admit everything
     * (only deadline-aware policies drop jobs). The candidate is NOT
     * yet part of active_jobs().
     */
    virtual bool admit(const JobSpec &job) { (void)job; return true; }

    /** Desired GPU counts for all active jobs, at a scheduling event. */
    virtual SchedulerDecision allocate() = 0;

    /** Periodic rescheduling interval; 0 = event-driven only. */
    virtual Time reschedule_interval() const { return 0.0; }

    /** How the placement manager should select GPUs for this policy. */
    virtual PlacementStrategy placement_strategy() const
    {
        return PlacementStrategy::kBestFitCompact;
    }

    /** Whether defragmentation migrations may be used. */
    virtual bool allow_migration() const { return false; }

    /**
     * Times the policy found an admitted job's deadline no longer
     * satisfiable during replanning (deadline-aware policies only).
     */
    virtual int replan_failures() const { return 0; }

    /**
     * SLO jobs the policy demoted to best-effort since the last call
     * (failure-aware policies only; each job is reported exactly
     * once). The simulator drains this after every allocate().
     */
    virtual std::vector<JobId> take_demotions() { return {}; }

    /**
     * Request shard-parallel planning (DESIGN.md §10): split each
     * planning round into @p shards per-pod shards and run the shard
     * phase on @p threads worker threads. Decisions are bit-identical
     * to single-threaded planning for any setting — this is purely an
     * execution strategy. Default: ignored (policies without a sharded
     * planner formulation plan as before). shards <= 0 disables.
     */
    virtual void set_planner_concurrency(int shards, int threads)
    {
        (void)shards;
        (void)threads;
    }

    /**
     * Serialize the policy state that must survive a crash (DESIGN.md
     * §12): anything carried across rounds that influences future
     * decisions and is not rebuilt from the ClusterView. Stateless
     * policies (the default) encode nothing.
     */
    virtual void
    encode_recovery_state(std::string *out) const
    {
        out->clear();
    }

    /**
     * Restore state captured by encode_recovery_state(). Returns false
     * when the blob is incompatible with this policy (the recovery
     * driver surfaces that as a typed state-mismatch error).
     */
    virtual bool
    decode_recovery_state(const std::string &blob)
    {
        return blob.empty();
    }

  protected:
    const ClusterView *view_ = nullptr;
};

/**
 * Factory. Known names: "elasticflow", "edf", "edf+admission",
 * "edf+elastic", "gandiva", "tiresias", "themis", "chronus", "pollux".
 * Aborts on unknown names.
 */
std::unique_ptr<Scheduler> make_scheduler(const std::string &name);

/** All factory names, in the paper's comparison order. */
const std::vector<std::string> &all_scheduler_names();

}  // namespace ef

#endif  // EF_SCHED_SCHEDULER_H_

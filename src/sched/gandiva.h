/**
 * @file
 * Gandiva baseline (Xiao et al., OSDI'18) at the policy granularity
 * the paper evaluates: server-centric (each job runs on exactly the
 * GPU count its trace requested), not deadline-aware, with
 * introspective time-slicing — when the cluster is oversubscribed,
 * jobs rotate by least-recently-served so everyone keeps making
 * progress. The real system's introspective packing/migration is
 * modelled by compact best-fit placement.
 */
#ifndef EF_SCHED_GANDIVA_H_
#define EF_SCHED_GANDIVA_H_

#include <map>
#include <string>

#include "sched/scheduler.h"

namespace ef {

/** See file comment. */
class GandivaScheduler : public Scheduler
{
  public:
    std::string name() const override { return "gandiva"; }

    SchedulerDecision allocate() override;

    Time reschedule_interval() const override { return 1800.0; }

  private:
    /** Last time each job held GPUs (drives the rotation). */
    std::map<JobId, Time> last_served_;
};

}  // namespace ef

#endif  // EF_SCHED_GANDIVA_H_

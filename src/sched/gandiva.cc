#include "sched/gandiva.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ef {

SchedulerDecision
GandivaScheduler::allocate()
{
    EF_CHECK(view_ != nullptr);
    std::vector<JobId> jobs = view_->active_jobs();

    // Least-recently-served first: suspended jobs starve the longest
    // and therefore get the next slice; ties go to earlier submission.
    std::stable_sort(jobs.begin(), jobs.end(), [this](JobId a, JobId b) {
        Time la = last_served_.count(a) ? last_served_.at(a) : -1.0;
        Time lb = last_served_.count(b) ? last_served_.at(b) : -1.0;
        if (la != lb)
            return la < lb;
        const JobSpec &sa = view_->spec(a);
        const JobSpec &sb = view_->spec(b);
        if (sa.submit_time != sb.submit_time)
            return sa.submit_time < sb.submit_time;
        return a < b;
    });

    SchedulerDecision decision;
    GpuCount free = view_->total_gpus();
    for (JobId id : jobs) {
        if (view_->remaining_iterations(id) <= 0.0)
            continue;
        GpuCount req = view_->spec(id).requested_gpus;
        if (req <= free) {
            decision.gpus[id] = req;
            free -= req;
            last_served_[id] = view_->now();
        } else {
            decision.gpus[id] = 0;
        }
    }
    return decision;
}

}  // namespace ef

/**
 * @file
 * The ElasticFlow scheduler: the paper's contribution assembled from
 * the core algorithms.
 *
 * On submission, an SLO job is admitted iff Algorithm 1 finds minimum
 * satisfactory shares for it and every already-admitted job (§4.1);
 * best-effort jobs are always admitted. On every scheduling event the
 * minimum shares are recomputed from the jobs' remaining work and
 * Algorithm 2 distributes the remaining GPUs by marginal return, with
 * best-effort jobs after SLO minimum shares (§4.2, §4.4). Worker
 * counts are powers of two and placement uses best-fit with buddy
 * defragmentation, so the compact-placement scaling curve used by the
 * planner is always achievable (§4.3).
 */
#ifndef EF_SCHED_ELASTIC_FLOW_H_
#define EF_SCHED_ELASTIC_FLOW_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/admission.h"
#include "core/allocator.h"
#include "sched/admission_policy.h"
#include "sched/planning_util.h"
#include "sched/scheduler.h"

namespace ef {

/** Tunables of the ElasticFlow policy. */
struct ElasticFlowConfig
{
    /** Planning slot length (the paper's average scheduling interval
     *  is ~23 minutes; plans are also refreshed on every event). */
    Time slot_seconds = 600.0;

    /**
     * Safety margin: remaining iterations are inflated by this factor
     * during planning so that modelled scaling/migration overheads
     * cannot turn an admitted job into a deadline miss.
     */
    double admission_margin = 0.05;

    /**
     * Absolute planning allowance (seconds of full-speed progress)
     * covering the checkpoint/restore pauses a job accrues over its
     * lifetime; protects short jobs where the relative margin is tiny.
     */
    double overhead_allowance_s = 180.0;

    /** Slot preference when a job needs fewer slots than available. */
    FillDirection direction = FillDirection::kEarliest;

    /**
     * GPUs withheld from planning as failure headroom (§4.4 "Node
     * failures"): admission guarantees are computed against capacity
     * minus this reserve, so a failed server's worth of GPUs can be
     * absorbed without breaking admitted deadlines.
     */
    GpuCount failure_headroom_gpus = 0;

    /**
     * Shard-parallel planning (DESIGN.md §10): number of per-pod
     * planner shards; <= 0 plans single-threaded (classic code path).
     * Decisions are bit-identical either way.
     */
    int planner_shards = 0;

    /**
     * Worker threads for the shard phase (including the calling
     * thread); <= 1 runs shards inline on the caller, still through
     * the full shard/merge code path. Only read when planner_shards
     * is positive.
     */
    int planner_threads = 1;
};

/** See file comment. */
class ElasticFlowScheduler : public Scheduler
{
  public:
    ElasticFlowScheduler() = default;
    explicit ElasticFlowScheduler(ElasticFlowConfig config)
        : config_(config)
    {}

    std::string name() const override { return "elasticflow"; }

    /**
     * Attach an operator policy (quota/pricing, §4.4) applied after
     * feasibility but before admission — the paper's "before line 9
     * of Algorithm 1" hook. Non-owning; may be null.
     */
    void set_admission_policy(AdmissionPolicy *policy)
    {
        policy_ = policy;
    }

    bool admit(const JobSpec &job) override;
    SchedulerDecision allocate() override;

    Time reschedule_interval() const override
    {
        return config_.slot_seconds;
    }
    PlacementStrategy placement_strategy() const override
    {
        return PlacementStrategy::kBestFitCompact;
    }
    bool allow_migration() const override { return true; }

    /**
     * Times allocate() found an admitted job unable to meet its
     * deadline under the current plan (possible only through modelled
     * overhead drift; should stay 0 with the default margin).
     */
    int replan_failures() const override { return replan_failures_; }

    /**
     * Hard-SLO jobs whose deadline became unmeetable after a fault
     * shrank the cluster (view_->fault_epoch() > 0): each is demoted
     * to best-effort exactly once and reported here exactly once.
     */
    std::vector<JobId> take_demotions() override;

    /**
     * Crash recovery (DESIGN.md §12): the only state carried across
     * rounds that future decisions depend on is the replan-failure
     * count and the exactly-once demotion bookkeeping; the planning
     * round/pool caches are rebuilt from the view without affecting
     * decisions.
     */
    void encode_recovery_state(std::string *out) const override;
    bool decode_recovery_state(const std::string &blob) override;

    void set_planner_concurrency(int shards, int threads) override
    {
        config_.planner_shards = shards;
        config_.planner_threads = threads;
        pool_.reset();
        concurrency_ = PlannerConcurrency{};
        concurrency_ready_ = false;
    }

  private:
    PlannerConfig planner_config() const;
    /** Lazily built sharding plan; null when planner_shards <= 0. */
    const PlannerConcurrency *planner_concurrency();

    ElasticFlowConfig config_;
    AdmissionPolicy *policy_ = nullptr;
    int replan_failures_ = 0;
    /** Shared admit()/allocate() planner view of the current round. */
    PlanningRound round_;
    /** Every job ever demoted (exactly-once guard). */
    std::set<JobId> demoted_;
    /** Demotions not yet drained by take_demotions(). */
    std::vector<JobId> fresh_demotions_;
    /** Shard worker pool (only when planner_threads > 1). */
    std::unique_ptr<ThreadPool> pool_;
    PlannerConcurrency concurrency_;
    bool concurrency_ready_ = false;
};

}  // namespace ef

#endif  // EF_SCHED_ELASTIC_FLOW_H_

#include "sched/pollux.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace ef {

SchedulerDecision
PolluxScheduler::allocate()
{
    EF_CHECK(view_ != nullptr);
    std::vector<JobId> jobs;
    for (JobId id : view_->active_jobs()) {
        if (view_->remaining_iterations(id) > 0.0)
            jobs.push_back(id);
    }

    std::vector<GpuCount> alloc(jobs.size(), 0);
    GpuCount free = view_->total_gpus();

    // Proportional-fair greedy: repeatedly take the step with the
    // highest delta log(throughput) per GPU; starting an idle job
    // dominates any growth step.
    while (free > 0) {
        double best_gain = 0.0;
        std::size_t best = jobs.size();
        GpuCount best_delta = 0;
        GpuCount best_next = 0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const ScalingCurve &curve = view_->curve(jobs[i]);
            GpuCount g = alloc[i];
            GpuCount gn = curve.next_step(g);
            if (gn == 0 || gn - g > free)
                continue;
            double gain;
            if (g == 0) {
                gain = std::numeric_limits<double>::infinity();
            } else {
                gain = (std::log(curve.throughput(gn)) -
                        std::log(curve.throughput(g))) /
                       static_cast<double>(gn - g);
            }
            if (best == jobs.size() || gain > best_gain) {
                best_gain = gain;
                best = i;
                best_delta = gn - g;
                best_next = gn;
            }
        }
        if (best == jobs.size())
            break;
        alloc[best] = best_next;
        free -= best_delta;
    }

    SchedulerDecision decision;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        decision.gpus[jobs[i]] = alloc[i];
    return decision;
}

}  // namespace ef

/**
 * @file
 * Earliest-Deadline-First baseline and its Fig. 9 ablation variants.
 *
 * Plain EDF (paper §6.1): orders jobs by deadline and gives the
 * earliest-deadline job as many GPUs as it can scale out to without
 * losing throughput, then the next job takes the leftovers, and so on.
 * It is neither admission-controlled (no drops) nor deadline-fitted
 * (no minimum-share right-sizing), which is exactly why it wastes GPU
 * time under sub-linear scaling (§3.2, Fig. 3).
 *
 * EDF + Admission Control adds Algorithm 1 as a submission filter.
 * EDF + Elastic Scaling keeps admitting everything but allocates with
 * ElasticFlow's minimum shares + marginal returns (Algorithms 1-2).
 */
#ifndef EF_SCHED_EDF_H_
#define EF_SCHED_EDF_H_

#include <string>

#include "sched/planning_util.h"
#include "sched/scheduler.h"

namespace ef {

/** Which Fig. 9 variant an EdfScheduler instance implements. */
enum class EdfVariant { kPlain, kWithAdmission, kWithElastic };

/** See file comment. */
class EdfScheduler : public Scheduler
{
  public:
    explicit EdfScheduler(EdfVariant variant = EdfVariant::kPlain)
        : variant_(variant)
    {}

    std::string name() const override;

    bool admit(const JobSpec &job) override;
    SchedulerDecision allocate() override;

    Time reschedule_interval() const override { return 300.0; }
    bool allow_migration() const override
    {
        return variant_ == EdfVariant::kWithElastic;
    }
    int replan_failures() const override { return replan_failures_; }

  private:
    EdfVariant variant_;
    int replan_failures_ = 0;
};

}  // namespace ef

#endif  // EF_SCHED_EDF_H_

#include "sched/planning_util.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace ef {

double
PlanningMargin::inflate(double remaining, const ScalingCurve &curve) const
{
    return remaining * (1.0 + relative) +
           curve.throughput(curve.max_useful()) * overhead_allowance_s;
}

PlanningJob
to_planning_job(const ClusterView &view, JobId id,
                const PlanningMargin &margin)
{
    PlanningJob job;
    job.id = id;
    job.curve = view.curve(id);
    job.remaining_iterations =
        margin.inflate(view.remaining_iterations(id), job.curve);
    job.deadline = view.spec(id).deadline;
    job.soft = view.spec(id).has_soft_deadline();
    return job;
}

PlanningJob
to_fixed_planning_job(const ClusterView &view, JobId id,
                      const PlanningMargin &margin)
{
    PlanningJob job = to_planning_job(view, id, margin);
    job.curve = restrict_to_fixed_size(job.curve,
                                       view.spec(id).requested_gpus);
    return job;
}

PlannerConfig
planner_config_for(const ClusterView &view, Time slot_seconds,
                   FillDirection direction)
{
    PlannerConfig config;
    config.total_gpus = view.total_gpus();
    config.slot_seconds = slot_seconds;
    config.direction = direction;
    return config;
}

const PlanningRound::Jobs &
PlanningRound::jobs(const ClusterView &view, const PlanningMargin &margin,
                    bool fixed_size)
{
    Key key;
    key.now = view.now();
    key.relative = margin.relative;
    key.allowance = margin.overhead_allowance_s;
    key.fixed_size = fixed_size;
    for (JobId id : view.active_jobs()) {
        double remaining = view.remaining_iterations(id);
        if (remaining <= 0.0)
            continue;
        key.jobs.push_back(JobKey{id, remaining, view.spec(id).deadline});
    }
    if (filled_ && key == key_)
        return jobs_;

    jobs_.slo.clear();
    jobs_.best_effort.clear();
    for (const JobKey &jk : key.jobs) {
        if (view.spec(jk.id).is_best_effort()) {
            jobs_.best_effort.push_back(
                fixed_size ? to_fixed_planning_job(view, jk.id, {})
                           : to_planning_job(view, jk.id, {}));
        } else {
            jobs_.slo.push_back(
                fixed_size ? to_fixed_planning_job(view, jk.id, margin)
                           : to_planning_job(view, jk.id, margin));
        }
    }
    key_ = std::move(key);
    filled_ = true;
    return jobs_;
}

bool
admission_feasible(const ClusterView &view, const PlannerConfig &config,
                   const PlanningMargin &margin, const JobSpec &candidate,
                   bool fixed_size, PlanningRound *round,
                   const std::set<JobId> *exclude)
{
    EF_CHECK(!candidate.is_best_effort());
    auto excluded = [exclude](JobId id) {
        return exclude != nullptr && exclude->count(id) > 0;
    };
    std::vector<PlanningJob> jobs;
    if (round != nullptr) {
        // Soft-deadline jobs are cached in the SLO list (the allocator
        // wants them there) but never reserve capacity against a hard
        // admission (§4.4); demoted jobs lost their guarantee the same
        // way.
        for (const PlanningJob &job :
             round->jobs(view, margin, fixed_size).slo) {
            if (!job.soft && !excluded(job.id))
                jobs.push_back(job);
        }
    } else {
        for (JobId id : view.active_jobs()) {
            const JobSpec &spec = view.spec(id);
            // Best-effort, soft-deadline, and demoted jobs never
            // reserve capacity against a hard admission (§4.4).
            if (spec.is_best_effort() || spec.has_soft_deadline() ||
                excluded(id))
                continue;
            if (view.remaining_iterations(id) <= 0.0)
                continue;
            jobs.push_back(fixed_size
                               ? to_fixed_planning_job(view, id, margin)
                               : to_planning_job(view, id, margin));
        }
    }
    PlanningJob cand;
    cand.id = candidate.id;
    cand.curve = view.curve_for(candidate);
    if (fixed_size) {
        cand.curve =
            restrict_to_fixed_size(cand.curve, candidate.requested_gpus);
    }
    cand.remaining_iterations = margin.inflate(
        static_cast<double>(candidate.iterations), cand.curve);
    cand.deadline = candidate.deadline;
    jobs.push_back(std::move(cand));
    return run_admission(config, view.now(), std::move(jobs)).feasible;
}

bool
edf_admission_feasible(const ClusterView &view,
                       const PlannerConfig &config,
                       const JobSpec &candidate)
{
    EF_CHECK(!candidate.is_best_effort());
    std::vector<PlanningJob> jobs;
    for (JobId id : view.active_jobs()) {
        const JobSpec &spec = view.spec(id);
        if (spec.is_best_effort())
            continue;
        if (view.remaining_iterations(id) <= 0.0)
            continue;
        jobs.push_back(to_planning_job(view, id, {}));
    }
    PlanningJob cand;
    cand.id = candidate.id;
    cand.curve = view.curve_for(candidate);
    cand.remaining_iterations = static_cast<double>(candidate.iterations);
    cand.deadline = candidate.deadline;
    jobs.push_back(std::move(cand));

    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const PlanningJob &a, const PlanningJob &b) {
                         if (a.deadline != b.deadline)
                             return a.deadline < b.deadline;
                         return a.id < b.id;
                     });
    const Time now = view.now();
    int horizon = 1;
    for (const PlanningJob &job : jobs) {
        horizon = std::max(horizon,
                           plan_horizon(now, job.deadline,
                                        config.slot_seconds,
                                        config.max_slots).slots);
    }
    std::vector<GpuCount> available(static_cast<std::size_t>(horizon),
                                    config.total_gpus);
    for (const PlanningJob &job : jobs) {
        PlanHorizon d = plan_horizon(now, job.deadline,
                                     config.slot_seconds,
                                     config.max_slots);
        // EDF greed: grab every useful GPU in every slot until done.
        double remaining = job.remaining_iterations;
        bool satisfied = false;
        for (int t = 0; t < d.slots && !satisfied; ++t) {
            GpuCount x = job.curve.usable(
                available[static_cast<std::size_t>(t)]);
            double capacity = (t == d.slots - 1)
                                  ? config.slot_seconds * d.last_weight
                                  : config.slot_seconds;
            remaining -= job.curve.throughput(x) * capacity;
            available[static_cast<std::size_t>(t)] -= x;
            satisfied = remaining <= 1e-7;
        }
        if (!satisfied)
            return false;
    }
    return true;
}

MinShareRefresh
refresh_min_shares(const PlannerConfig &config, Time now,
                   std::vector<PlanningJob> slo, int *replan_failures,
                   bool park_infeasible_hard, std::uint64_t *cost)
{
    // Minimum satisfactory shares in deadline order (Algorithm 1):
    // hard jobs first — soft-deadline jobs only reserve what hard jobs
    // left over (§4.4) — with deadline relaxation for hard jobs that
    // drifted infeasible so they keep running.
    std::stable_sort(slo.begin(), slo.end(),
                     [](const PlanningJob &a, const PlanningJob &b) {
                         if (a.soft != b.soft)
                             return !a.soft;
                         if (a.deadline != b.deadline)
                             return a.deadline < b.deadline;
                         return a.id < b.id;
                     });
    // One plan_horizon per job: the max-horizon scan reuses the
    // per-job value instead of recomputing it before each fill.
    int horizon = 1;
    std::vector<PlanHorizon> horizons(slo.size());
    for (std::size_t i = 0; i < slo.size(); ++i) {
        horizons[i] = plan_horizon(now, slo[i].deadline,
                                   config.slot_seconds, config.max_slots);
        horizon = std::max(horizon, horizons[i].slots);
    }
    MinShareRefresh refresh;
    std::vector<GpuCount> available(static_cast<std::size_t>(horizon),
                                    config.total_gpus);
    for (std::size_t i = 0; i < slo.size(); ++i) {
        PlanningJob &job = slo[i];
        PlanHorizon d = horizons[i];
        auto fill = progressive_fill(job, available, d, config,
                                     /*start_slot=*/0, cost);
        if (!fill.has_value() && job.soft) {
            // A soft deadline that cannot be met is not an incident:
            // the job simply continues as best-effort (§4.4).
            job.deadline = kTimeInfinity;
            refresh.parked.push_back(std::move(job));
            continue;
        }
        if (!fill.has_value() && park_infeasible_hard) {
            // Post-fault demotion rule: a hard SLO the shrunken
            // cluster can no longer satisfy is parked for the caller
            // to demote, not silently relaxed past its guarantee.
            job.deadline = kTimeInfinity;
            refresh.parked.push_back(std::move(job));
            continue;
        }
        // Relax a slipped deadline in small steps so the job still
        // finishes as close to its original deadline as the cluster
        // allows, rather than gliding to a distant one.
        Time extension = config.slot_seconds;
        int tries = 0;
        while (!fill.has_value() && tries < 24) {
            ++tries;
            if (tries == 1 && replan_failures != nullptr) {
                ++*replan_failures;
                EF_DEBUG("job " << job.id
                                << " cannot meet its deadline; relaxing");
            }
            if (is_unbounded(job.deadline))
                break;
            job.deadline += extension;
            extension *= 1.6;
            d = plan_horizon(now, job.deadline, config.slot_seconds,
                             config.max_slots);
            if (d.slots > static_cast<int>(available.size()))
                available.resize(static_cast<std::size_t>(d.slots),
                                 config.total_gpus);
            fill = progressive_fill(job, available, d, config,
                                    /*start_slot=*/0, cost);
        }
        if (!fill.has_value()) {
            job.deadline = kTimeInfinity;  // park as best-effort-like
            refresh.parked.push_back(std::move(job));
            continue;
        }
        // A fill never reserves past the (possibly relaxed) horizon it
        // was computed for; the allocator's scratch buffers rely on it.
        EF_CHECK(fill->horizon() <= d.slots);
        for (int t = 0; t < fill->horizon(); ++t) {
            GpuCount &a = available[static_cast<std::size_t>(t)];
            a -= fill->at(t);
            EF_CHECK(a >= 0);
        }
        refresh.min_shares.emplace(job.id, std::move(*fill));
        refresh.slo.push_back(std::move(job));
    }
    return refresh;
}

SchedulerDecision
elastic_allocate(const ClusterView &view, const PlannerConfig &base_config,
                 const PlanningMargin &margin, bool fixed_size,
                 int *replan_failures, PlanningRound *round,
                 const std::set<JobId> *demoted,
                 std::vector<JobId> *hard_parked)
{
    PlannerConfig config = base_config;
    const Time now = view.now();

    if (config.total_gpus <= 0) {
        // Total outage: every server is down, so there is nothing to
        // plan — suspend everyone. Deadlines are re-evaluated (and
        // unmeetable jobs parked/demoted) once capacity returns.
        return SchedulerDecision{};
    }

    std::vector<PlanningJob> slo;
    std::vector<PlanningJob> best_effort;
    if (round != nullptr) {
        const PlanningRound::Jobs &cached =
            round->jobs(view, margin, fixed_size);
        slo = cached.slo;
        best_effort = cached.best_effort;
    } else {
        for (JobId id : view.active_jobs()) {
            if (view.remaining_iterations(id) <= 0.0)
                continue;
            if (view.spec(id).is_best_effort()) {
                // Best-effort jobs never carry the margin (no
                // guarantee to protect).
                best_effort.push_back(
                    fixed_size ? to_fixed_planning_job(view, id, {})
                               : to_planning_job(view, id, {}));
            } else {
                slo.push_back(
                    fixed_size ? to_fixed_planning_job(view, id, margin)
                               : to_planning_job(view, id, margin));
            }
        }
    }

    if (demoted != nullptr && !demoted->empty()) {
        // Previously demoted jobs plan as best-effort: they keep
        // running on leftovers but no longer reserve SLO capacity.
        auto keep = slo.begin();
        for (auto it = slo.begin(); it != slo.end(); ++it) {
            if (demoted->count(it->id) > 0) {
                it->deadline = kTimeInfinity;
                best_effort.push_back(std::move(*it));
            } else {
                if (keep != it)
                    *keep = std::move(*it);
                ++keep;
            }
        }
        slo.erase(keep, slo.end());
    }

    // Failure-aware callers (hard_parked given) switch from
    // relax-and-retry to the demotion rule once a fault has shrunk
    // the cluster: an unmeetable hard SLO is parked for demotion.
    const bool park_hard =
        hard_parked != nullptr && view.fault_epoch() > 0;
    MinShareRefresh refresh = refresh_min_shares(
        config, now, std::move(slo), replan_failures, park_hard);
    // Jobs parked with an infinite deadline move to the best-effort
    // queue so Algorithm 2 can still feed them leftovers.
    for (PlanningJob &job : refresh.parked) {
        if (!job.soft && hard_parked != nullptr)
            hard_parked->push_back(job.id);
        best_effort.push_back(std::move(job));
    }

    AllocationOutcome outcome =
        run_allocation(config, now, refresh.slo, refresh.min_shares,
                       best_effort);
    SchedulerDecision decision;
    decision.gpus = std::move(outcome.gpus_now);
    return decision;
}

}  // namespace ef

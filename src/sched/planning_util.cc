#include "sched/planning_util.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"

namespace ef {

double
PlanningMargin::inflate(double remaining, const ScalingCurve &curve) const
{
    return remaining * (1.0 + relative) +
           curve.throughput(curve.max_useful()) * overhead_allowance_s;
}

PlanningJob
to_planning_job(const ClusterView &view, JobId id,
                const PlanningMargin &margin)
{
    PlanningJob job;
    job.id = id;
    job.curve = view.curve(id);
    job.remaining_iterations =
        margin.inflate(view.remaining_iterations(id), job.curve);
    job.deadline = view.spec(id).deadline;
    job.soft = view.spec(id).has_soft_deadline();
    return job;
}

PlanningJob
to_fixed_planning_job(const ClusterView &view, JobId id,
                      const PlanningMargin &margin)
{
    PlanningJob job = to_planning_job(view, id, margin);
    job.curve = restrict_to_fixed_size(job.curve,
                                       view.spec(id).requested_gpus);
    return job;
}

PlannerConfig
planner_config_for(const ClusterView &view, Time slot_seconds,
                   FillDirection direction)
{
    PlannerConfig config;
    config.total_gpus = view.total_gpus();
    config.slot_seconds = slot_seconds;
    config.direction = direction;
    return config;
}

const PlanningRound::Jobs &
PlanningRound::jobs(const ClusterView &view, const PlanningMargin &margin,
                    bool fixed_size)
{
    Key key;
    key.now = view.now();
    key.relative = margin.relative;
    key.allowance = margin.overhead_allowance_s;
    key.fixed_size = fixed_size;
    for (JobId id : view.active_jobs()) {
        double remaining = view.remaining_iterations(id);
        if (remaining <= 0.0)
            continue;
        key.jobs.push_back(JobKey{id, remaining, view.spec(id).deadline});
    }
    if (filled_ && key == key_)
        return jobs_;

    jobs_.slo.clear();
    jobs_.best_effort.clear();
    for (const JobKey &jk : key.jobs) {
        if (view.spec(jk.id).is_best_effort()) {
            jobs_.best_effort.push_back(
                fixed_size ? to_fixed_planning_job(view, jk.id, {})
                           : to_planning_job(view, jk.id, {}));
        } else {
            jobs_.slo.push_back(
                fixed_size ? to_fixed_planning_job(view, jk.id, margin)
                           : to_planning_job(view, jk.id, margin));
        }
    }
    key_ = std::move(key);
    filled_ = true;
    return jobs_;
}

bool
admission_feasible(const ClusterView &view, const PlannerConfig &config,
                   const PlanningMargin &margin, const JobSpec &candidate,
                   bool fixed_size, PlanningRound *round,
                   const std::set<JobId> *exclude)
{
    EF_CHECK(!candidate.is_best_effort());
    auto excluded = [exclude](JobId id) {
        return exclude != nullptr && exclude->count(id) > 0;
    };
    std::vector<PlanningJob> jobs;
    if (round != nullptr) {
        // Soft-deadline jobs are cached in the SLO list (the allocator
        // wants them there) but never reserve capacity against a hard
        // admission (§4.4); demoted jobs lost their guarantee the same
        // way.
        for (const PlanningJob &job :
             round->jobs(view, margin, fixed_size).slo) {
            if (!job.soft && !excluded(job.id))
                jobs.push_back(job);
        }
    } else {
        for (JobId id : view.active_jobs()) {
            const JobSpec &spec = view.spec(id);
            // Best-effort, soft-deadline, and demoted jobs never
            // reserve capacity against a hard admission (§4.4).
            if (spec.is_best_effort() || spec.has_soft_deadline() ||
                excluded(id))
                continue;
            if (view.remaining_iterations(id) <= 0.0)
                continue;
            jobs.push_back(fixed_size
                               ? to_fixed_planning_job(view, id, margin)
                               : to_planning_job(view, id, margin));
        }
    }
    PlanningJob cand;
    cand.id = candidate.id;
    cand.curve = view.curve_for(candidate);
    if (fixed_size) {
        cand.curve =
            restrict_to_fixed_size(cand.curve, candidate.requested_gpus);
    }
    cand.remaining_iterations = margin.inflate(
        static_cast<double>(candidate.iterations), cand.curve);
    cand.deadline = candidate.deadline;
    jobs.push_back(std::move(cand));
    return run_admission(config, view.now(), std::move(jobs)).feasible;
}

bool
edf_admission_feasible(const ClusterView &view,
                       const PlannerConfig &config,
                       const JobSpec &candidate)
{
    EF_CHECK(!candidate.is_best_effort());
    std::vector<PlanningJob> jobs;
    for (JobId id : view.active_jobs()) {
        const JobSpec &spec = view.spec(id);
        if (spec.is_best_effort())
            continue;
        if (view.remaining_iterations(id) <= 0.0)
            continue;
        jobs.push_back(to_planning_job(view, id, {}));
    }
    PlanningJob cand;
    cand.id = candidate.id;
    cand.curve = view.curve_for(candidate);
    cand.remaining_iterations = static_cast<double>(candidate.iterations);
    cand.deadline = candidate.deadline;
    jobs.push_back(std::move(cand));

    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const PlanningJob &a, const PlanningJob &b) {
                         if (a.deadline != b.deadline)
                             return a.deadline < b.deadline;
                         return a.id < b.id;
                     });
    const Time now = view.now();
    int horizon = 1;
    for (const PlanningJob &job : jobs) {
        horizon = std::max(horizon,
                           plan_horizon(now, job.deadline,
                                        config.slot_seconds,
                                        config.max_slots).slots);
    }
    std::vector<GpuCount> available(static_cast<std::size_t>(horizon),
                                    config.total_gpus);
    for (const PlanningJob &job : jobs) {
        PlanHorizon d = plan_horizon(now, job.deadline,
                                     config.slot_seconds,
                                     config.max_slots);
        // EDF greed: grab every useful GPU in every slot until done.
        double remaining = job.remaining_iterations;
        bool satisfied = false;
        for (int t = 0; t < d.slots && !satisfied; ++t) {
            GpuCount x = job.curve.usable(
                available[static_cast<std::size_t>(t)]);
            double capacity = (t == d.slots - 1)
                                  ? config.slot_seconds * d.last_weight
                                  : config.slot_seconds;
            remaining -= job.curve.throughput(x) * capacity;
            available[static_cast<std::size_t>(t)] -= x;
            satisfied = remaining <= 1e-7;
        }
        if (!satisfied)
            return false;
    }
    return true;
}

namespace {

/** One job's speculative per-pod fill (DESIGN.md §10). */
struct ShardFill
{
    /** Speculative plan; kept only when the fill never observed the
     *  shard's capacity (probe unclipped), discarded otherwise. */
    std::optional<SlotPlan> plan;
    FillProbe probe;
    std::uint64_t cost = 0;
};

MinShareRefresh
refresh_min_shares_impl(const PlannerConfig &config, Time now,
                        std::vector<PlanningJob> slo, int *replan_failures,
                        bool park_infeasible_hard, std::uint64_t *cost,
                        const PlannerConcurrency *conc,
                        ShardRoundStats *stats)
{
    // Minimum satisfactory shares in deadline order (Algorithm 1):
    // hard jobs first — soft-deadline jobs only reserve what hard jobs
    // left over (§4.4) — with deadline relaxation for hard jobs that
    // drifted infeasible so they keep running.
    std::stable_sort(slo.begin(), slo.end(),
                     [](const PlanningJob &a, const PlanningJob &b) {
                         if (a.soft != b.soft)
                             return !a.soft;
                         if (a.deadline != b.deadline)
                             return a.deadline < b.deadline;
                         return a.id < b.id;
                     });
    // One plan_horizon per job: the max-horizon scan reuses the
    // per-job value instead of recomputing it before each fill.
    int horizon = 1;
    std::vector<PlanHorizon> horizons(slo.size());
    for (std::size_t i = 0; i < slo.size(); ++i) {
        horizons[i] = plan_horizon(now, slo[i].deadline,
                                   config.slot_seconds, config.max_slots);
        horizon = std::max(horizon, horizons[i].slots);
    }

    const std::size_t n = slo.size();
    const int nshards = conc != nullptr ? std::max(1, conc->shards) : 1;
    ShardRoundStats local_stats;
    const bool emit_here = conc != nullptr && stats == nullptr;
    if (emit_here)
        stats = &local_stats;
    if (stats != nullptr &&
        stats->shard_cost.size() < static_cast<std::size_t>(nshards))
        stats->shard_cost.resize(static_cast<std::size_t>(nshards), 0);

    // Speculation phase (sharded mode): shard s fills the jobs with
    // rank ≡ s (mod nshards) against its private pod capacity, in
    // parallel. A speculative fill is only kept when its probe comes
    // back unclipped — the fill then never observed the shard's
    // capacity at all, so its attempts, plan, and cost are pure
    // functions of (curve, remaining, horizon, config) and would be
    // reproduced verbatim by the sequential planner against ANY
    // capacity profile that does not clip it either.
    std::vector<ShardFill> spec;
    if (conc != nullptr && n > 0) {
        spec.resize(n);
        std::vector<GpuCount> caps = shard_capacity_slices(
            config.total_gpus, nshards, conc->shard_gpus);
        std::vector<std::vector<GpuCount>> shard_avail(
            static_cast<std::size_t>(nshards));
        for (int s = 0; s < nshards; ++s) {
            shard_avail[static_cast<std::size_t>(s)].assign(
                static_cast<std::size_t>(horizon),
                caps[static_cast<std::size_t>(s)]);
        }
        parallel_for(conc->pool, nshards, [&](int s) {
            std::vector<GpuCount> &avail =
                shard_avail[static_cast<std::size_t>(s)];
            for (std::size_t i = static_cast<std::size_t>(s); i < n;
                 i += static_cast<std::size_t>(nshards)) {
                ShardFill &sf = spec[i];
                sf.plan = progressive_fill(slo[i], avail, horizons[i],
                                           config, /*start_slot=*/0,
                                           &sf.cost, &sf.probe);
                if (sf.plan.has_value() && !sf.probe.clipped) {
                    for (int t = 0; t < sf.plan->horizon(); ++t) {
                        GpuCount &a =
                            avail[static_cast<std::size_t>(t)];
                        a -= sf.plan->at(t);
                        EF_CHECK(a >= 0);
                    }
                } else {
                    // Clipped speculation depends on the shard's
                    // capacity slice, which the sequential planner
                    // never sees — worthless as a certificate.
                    sf.plan.reset();
                }
            }
        });
        if (stats != nullptr) {
            for (std::size_t i = 0; i < n; ++i) {
                stats->shard_cost[i % static_cast<std::size_t>(
                                          nshards)] += spec[i].cost;
            }
        }
    }

    MinShareRefresh refresh;
    std::vector<GpuCount> available(static_cast<std::size_t>(horizon),
                                    config.total_gpus);
    for (std::size_t i = 0; i < n; ++i) {
        PlanningJob &job = slo[i];
        PlanHorizon d = horizons[i];
        std::optional<SlotPlan> fill;
        if (i < spec.size() && spec[i].plan.has_value()) {
            // Cross-shard merge certificate: adopt the speculative
            // plan iff global availability never clips any attempted
            // level. Failed lower levels walk the entire window, and
            // every attempted level is <= probe.level, so min over
            // [0, d.slots) >= probe.level implies the sequential fill
            // would run the exact same unclipped attempt sequence.
            bool unclipped_globally = true;
            for (int t = 0; t < d.slots; ++t) {
                if (available[static_cast<std::size_t>(t)] <
                    spec[i].probe.level) {
                    unclipped_globally = false;
                    break;
                }
            }
            if (unclipped_globally) {
                fill = std::move(spec[i].plan);
                if (cost != nullptr)
                    *cost += spec[i].cost;
                if (stats != nullptr)
                    ++stats->adopted;
            }
        }
        if (!fill.has_value()) {
            // Cross-shard balancer: jobs that straddle shards (or lost
            // to a saturated shard) re-bid against the global profile,
            // exactly as the sequential planner plans them.
            if (conc != nullptr && stats != nullptr)
                ++stats->rebid;
            fill = progressive_fill(job, available, d, config,
                                    /*start_slot=*/0, cost);
        }
        if (!fill.has_value() && job.soft) {
            // A soft deadline that cannot be met is not an incident:
            // the job simply continues as best-effort (§4.4).
            job.deadline = kTimeInfinity;
            refresh.parked.push_back(std::move(job));
            continue;
        }
        if (!fill.has_value() && park_infeasible_hard) {
            // Post-fault demotion rule: a hard SLO the shrunken
            // cluster can no longer satisfy is parked for the caller
            // to demote, not silently relaxed past its guarantee.
            job.deadline = kTimeInfinity;
            refresh.parked.push_back(std::move(job));
            continue;
        }
        // Relax a slipped deadline in small steps so the job still
        // finishes as close to its original deadline as the cluster
        // allows, rather than gliding to a distant one.
        Time extension = config.slot_seconds;
        int tries = 0;
        while (!fill.has_value() && tries < 24) {
            ++tries;
            if (tries == 1 && replan_failures != nullptr) {
                ++*replan_failures;
                EF_DEBUG("job " << job.id
                                << " cannot meet its deadline; relaxing");
            }
            if (is_unbounded(job.deadline))
                break;
            job.deadline += extension;
            extension *= 1.6;
            d = plan_horizon(now, job.deadline, config.slot_seconds,
                             config.max_slots);
            if (d.slots > static_cast<int>(available.size()))
                available.resize(static_cast<std::size_t>(d.slots),
                                 config.total_gpus);
            fill = progressive_fill(job, available, d, config,
                                    /*start_slot=*/0, cost);
        }
        if (!fill.has_value()) {
            job.deadline = kTimeInfinity;  // park as best-effort-like
            refresh.parked.push_back(std::move(job));
            continue;
        }
        // A fill never reserves past the (possibly relaxed) horizon it
        // was computed for; the allocator's scratch buffers rely on it.
        EF_CHECK(fill->horizon() <= d.slots);
        for (int t = 0; t < fill->horizon(); ++t) {
            GpuCount &a = available[static_cast<std::size_t>(t)];
            a -= fill->at(t);
            EF_CHECK(a >= 0);
        }
        refresh.min_shares.emplace(job.id, std::move(*fill));
        refresh.slo.push_back(std::move(job));
    }
    if (emit_here)
        emit_shard_round(now, *stats);
    return refresh;
}

}  // namespace

MinShareRefresh
refresh_min_shares(const PlannerConfig &config, Time now,
                   std::vector<PlanningJob> slo, int *replan_failures,
                   bool park_infeasible_hard, std::uint64_t *cost)
{
    return refresh_min_shares_impl(config, now, std::move(slo),
                                   replan_failures, park_infeasible_hard,
                                   cost, /*conc=*/nullptr,
                                   /*stats=*/nullptr);
}

MinShareRefresh
refresh_min_shares_sharded(const PlannerConfig &config, Time now,
                           std::vector<PlanningJob> slo,
                           int *replan_failures, bool park_infeasible_hard,
                           std::uint64_t *cost,
                           const PlannerConcurrency &concurrency,
                           ShardRoundStats *stats)
{
    return refresh_min_shares_impl(config, now, std::move(slo),
                                   replan_failures, park_infeasible_hard,
                                   cost, &concurrency, stats);
}

SchedulerDecision
elastic_allocate(const ClusterView &view, const PlannerConfig &base_config,
                 const PlanningMargin &margin, bool fixed_size,
                 int *replan_failures, PlanningRound *round,
                 const std::set<JobId> *demoted,
                 std::vector<JobId> *hard_parked,
                 const PlannerConcurrency *concurrency)
{
    PlannerConfig config = base_config;
    const Time now = view.now();

    if (config.total_gpus <= 0) {
        // Total outage: every server is down, so there is nothing to
        // plan — suspend everyone. Deadlines are re-evaluated (and
        // unmeetable jobs parked/demoted) once capacity returns.
        return SchedulerDecision{};
    }

    std::vector<PlanningJob> slo;
    std::vector<PlanningJob> best_effort;
    if (round != nullptr) {
        const PlanningRound::Jobs &cached =
            round->jobs(view, margin, fixed_size);
        slo = cached.slo;
        best_effort = cached.best_effort;
    } else {
        for (JobId id : view.active_jobs()) {
            if (view.remaining_iterations(id) <= 0.0)
                continue;
            if (view.spec(id).is_best_effort()) {
                // Best-effort jobs never carry the margin (no
                // guarantee to protect).
                best_effort.push_back(
                    fixed_size ? to_fixed_planning_job(view, id, {})
                               : to_planning_job(view, id, {}));
            } else {
                slo.push_back(
                    fixed_size ? to_fixed_planning_job(view, id, margin)
                               : to_planning_job(view, id, margin));
            }
        }
    }

    if (demoted != nullptr && !demoted->empty()) {
        // Previously demoted jobs plan as best-effort: they keep
        // running on leftovers but no longer reserve SLO capacity.
        auto keep = slo.begin();
        for (auto it = slo.begin(); it != slo.end(); ++it) {
            if (demoted->count(it->id) > 0) {
                it->deadline = kTimeInfinity;
                best_effort.push_back(std::move(*it));
            } else {
                if (keep != it)
                    *keep = std::move(*it);
                ++keep;
            }
        }
        slo.erase(keep, slo.end());
    }

    // Failure-aware callers (hard_parked given) switch from
    // relax-and-retry to the demotion rule once a fault has shrunk
    // the cluster: an unmeetable hard SLO is parked for demotion.
    const bool park_hard =
        hard_parked != nullptr && view.fault_epoch() > 0;
    // Sharded mode: the refresh and the allocation of one round share a
    // single stats object, so the round emits one shard span set
    // covering both phases.
    ShardRoundStats shard_stats;
    MinShareRefresh refresh =
        concurrency != nullptr
            ? refresh_min_shares_sharded(config, now, std::move(slo),
                                         replan_failures, park_hard,
                                         /*cost=*/nullptr, *concurrency,
                                         &shard_stats)
            : refresh_min_shares(config, now, std::move(slo),
                                 replan_failures, park_hard);
    // Jobs parked with an infinite deadline move to the best-effort
    // queue so Algorithm 2 can still feed them leftovers.
    for (PlanningJob &job : refresh.parked) {
        if (!job.soft && hard_parked != nullptr)
            hard_parked->push_back(job.id);
        best_effort.push_back(std::move(job));
    }

    AllocationOutcome outcome =
        concurrency != nullptr
            ? run_allocation_sharded(config, now, refresh.slo,
                                     refresh.min_shares, best_effort,
                                     *concurrency, &shard_stats)
            : run_allocation(config, now, refresh.slo, refresh.min_shares,
                             best_effort);
    if (concurrency != nullptr)
        emit_shard_round(now, shard_stats);
    SchedulerDecision decision;
    decision.gpus = std::move(outcome.gpus_now);
    return decision;
}

}  // namespace ef

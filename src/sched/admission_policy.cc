#include "sched/admission_policy.h"

#include <algorithm>

#include "common/check.h"

namespace ef {

bool
QuotaPolicy::approve(const JobSpec &job, Time now,
                     Time baseline_duration_s)
{
    (void)baseline_duration_s;
    if (used(job.user, now) >= max_jobs_per_day_)
        return false;
    admissions_[job.user].push_back(now);
    return true;
}

int
QuotaPolicy::used(const std::string &user, Time now) const
{
    auto it = admissions_.find(user);
    if (it == admissions_.end())
        return 0;
    int count = 0;
    for (Time t : it->second)
        count += (t > now - kDay) ? 1 : 0;
    return count;
}

double
PricingPolicy::quote(const JobSpec &job, Time now,
                     Time baseline_duration_s) const
{
    EF_CHECK(baseline_duration_s > 0.0);
    double gpu_hours = baseline_duration_s / kHour *
                       static_cast<double>(job.requested_gpus);
    // Urgency: deadline at the baseline duration costs 1x; half the
    // baseline costs 2x; looser-than-baseline deadlines approach 1x.
    double window = std::max(job.deadline - now, 1.0);
    double urgency = std::max(1.0, baseline_duration_s / window);
    return gpu_hours * rate_per_gpu_hour_ * urgency;
}

bool
PricingPolicy::approve(const JobSpec &job, Time now,
                       Time baseline_duration_s)
{
    double price = quote(job, now, baseline_duration_s);
    auto it = budgets_.find(job.user);
    if (it == budgets_.end() || it->second < price)
        return false;
    it->second -= price;
    return true;
}

double
PricingPolicy::remaining_budget(const std::string &user) const
{
    auto it = budgets_.find(user);
    return it == budgets_.end() ? 0.0 : it->second;
}

}  // namespace ef

#include "sched/edf.h"

#include <algorithm>

#include "common/check.h"

namespace ef {

std::string
EdfScheduler::name() const
{
    switch (variant_) {
      case EdfVariant::kPlain: return "edf";
      case EdfVariant::kWithAdmission: return "edf+admission";
      case EdfVariant::kWithElastic: return "edf+elastic";
    }
    return "edf";
}

bool
EdfScheduler::admit(const JobSpec &job)
{
    if (variant_ != EdfVariant::kWithAdmission)
        return true;
    if (job.is_best_effort() || job.has_soft_deadline())
        return true;
    EF_CHECK(view_ != nullptr);
    PlannerConfig config =
        planner_config_for(*view_, 300.0, FillDirection::kEarliest);
    return edf_admission_feasible(*view_, config, job);
}

SchedulerDecision
EdfScheduler::allocate()
{
    EF_CHECK(view_ != nullptr);
    if (variant_ == EdfVariant::kWithElastic) {
        PlannerConfig config =
            planner_config_for(*view_, 300.0, FillDirection::kEarliest);
        return elastic_allocate(*view_, config, PlanningMargin{0.02, 60.0},
                                /*fixed_size=*/false, &replan_failures_);
    }

    // Plain EDF: deadline order, each job takes as many GPUs as still
    // help it, best-effort jobs last in submission order.
    std::vector<JobId> jobs = view_->active_jobs();
    std::stable_sort(jobs.begin(), jobs.end(), [this](JobId a, JobId b) {
        const JobSpec &sa = view_->spec(a);
        const JobSpec &sb = view_->spec(b);
        if (sa.deadline != sb.deadline)
            return sa.deadline < sb.deadline;
        if (sa.submit_time != sb.submit_time)
            return sa.submit_time < sb.submit_time;
        return a < b;
    });

    SchedulerDecision decision;
    GpuCount free = view_->total_gpus();
    for (JobId id : jobs) {
        if (view_->remaining_iterations(id) <= 0.0)
            continue;
        GpuCount g = view_->curve(id).usable(free);
        decision.gpus[id] = g;
        free -= g;
    }
    return decision;
}

}  // namespace ef

/**
 * @file
 * Operator admission policies (paper §4.4, "Malicious users and
 * admission control policies").
 *
 * ElasticFlow's admission control is purely feasibility-driven, so a
 * user could game it — e.g. flood the cluster with tight-deadline jobs
 * to crowd out everyone else. The paper suggests the operator apply a
 * quota or pricing policy "before line 9 of Algorithm 1": after
 * feasibility is established but before the job is actually admitted.
 * This module provides that hook plus the two policies the paper
 * names: per-user quotas and deadline-sensitive pricing against a
 * budget.
 *
 * Policies are deliberately stateful (quota consumption, budget
 * spend) and are charged only for jobs that pass both feasibility and
 * the policy, mirroring a real billing pipeline.
 */
#ifndef EF_SCHED_ADMISSION_POLICY_H_
#define EF_SCHED_ADMISSION_POLICY_H_

#include <map>
#include <string>
#include <vector>

#include "workload/job.h"

namespace ef {

/** Operator veto applied after feasibility, before admission. */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;

    virtual std::string name() const = 0;

    /**
     * Decide whether a *feasible* job may be admitted at @p now.
     * @p baseline_duration_s is the job's standalone duration on its
     * requested GPUs (the platform computes it from the scaling
     * curve). Returning true commits the policy's side effects
     * (quota use, billing).
     */
    virtual bool approve(const JobSpec &job, Time now,
                         Time baseline_duration_s) = 0;
};

/**
 * Per-user quota: at most N admitted jobs per user per rolling day
 * (the paper's "set a maximum number of jobs that can be submitted by
 * each user per day"). Users are identified by JobSpec::user.
 */
class QuotaPolicy : public AdmissionPolicy
{
  public:
    explicit QuotaPolicy(int max_jobs_per_day)
        : max_jobs_per_day_(max_jobs_per_day)
    {}

    std::string name() const override { return "quota"; }
    bool approve(const JobSpec &job, Time now,
                 Time baseline_duration_s) override;

    /** Jobs a user has admitted within the day ending at @p now. */
    int used(const std::string &user, Time now) const;

  private:
    int max_jobs_per_day_;
    std::map<std::string, std::vector<Time>> admissions_;
};

/**
 * Pricing: a job costs (estimated GPU time) x rate x urgency, where
 * urgency grows as the deadline tightens relative to the requested-
 * GPU duration (tight deadlines reserve more elastic capacity, so
 * they cost more — the paper's "the cost depends on the job size and
 * the deadline"). Jobs are approved while the user has budget.
 */
class PricingPolicy : public AdmissionPolicy
{
  public:
    /**
     * @param rate_per_gpu_hour currency per GPU-hour
     * @param budgets initial budget per user; unknown users have 0
     */
    PricingPolicy(double rate_per_gpu_hour,
                  std::map<std::string, double> budgets)
        : rate_per_gpu_hour_(rate_per_gpu_hour),
          budgets_(std::move(budgets))
    {}

    std::string name() const override { return "pricing"; }
    bool approve(const JobSpec &job, Time now,
                 Time baseline_duration_s) override;

    /**
     * Price of a job: estimated GPU-hours on its requested GPUs times
     * the rate, times an urgency multiplier that doubles the price
     * when the deadline is half the baseline duration (tight
     * deadlines reserve more elastic capacity).
     */
    double quote(const JobSpec &job, Time now,
                 Time baseline_duration_s) const;

    double remaining_budget(const std::string &user) const;

  private:
    double rate_per_gpu_hour_;
    std::map<std::string, double> budgets_;
};

}  // namespace ef

#endif  // EF_SCHED_ADMISSION_POLICY_H_

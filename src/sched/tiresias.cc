#include "sched/tiresias.h"

#include <algorithm>

#include "common/check.h"

namespace ef {

int
TiresiasScheduler::queue_of(double attained_gpu_seconds) const
{
    int q = 0;
    for (double threshold : thresholds_) {
        if (attained_gpu_seconds < threshold)
            return q;
        ++q;
    }
    return q;
}

SchedulerDecision
TiresiasScheduler::allocate()
{
    EF_CHECK(view_ != nullptr);
    std::vector<JobId> jobs = view_->active_jobs();

    // 2D-LAS: queue index first (less attained service wins), FIFO by
    // submission inside a queue.
    std::stable_sort(jobs.begin(), jobs.end(), [this](JobId a, JobId b) {
        int qa = queue_of(view_->attained_gpu_seconds(a));
        int qb = queue_of(view_->attained_gpu_seconds(b));
        if (qa != qb)
            return qa < qb;
        const JobSpec &sa = view_->spec(a);
        const JobSpec &sb = view_->spec(b);
        if (sa.submit_time != sb.submit_time)
            return sa.submit_time < sb.submit_time;
        return a < b;
    });

    SchedulerDecision decision;
    GpuCount free = view_->total_gpus();
    for (JobId id : jobs) {
        if (view_->remaining_iterations(id) <= 0.0)
            continue;
        GpuCount req = view_->spec(id).requested_gpus;
        if (req <= free) {
            decision.gpus[id] = req;
            free -= req;
        } else {
            decision.gpus[id] = 0;
        }
    }
    return decision;
}

}  // namespace ef

#include "sched/chronus.h"

#include "common/check.h"

namespace ef {

bool
ChronusScheduler::admit(const JobSpec &job)
{
    if (job.is_best_effort() || job.has_soft_deadline())
        return true;
    EF_CHECK(view_ != nullptr);
    PlannerConfig config =
        planner_config_for(*view_, 600.0, FillDirection::kEarliest);
    return admission_feasible(*view_, config, PlanningMargin{0.02, 60.0},
                              job, /*fixed_size=*/true, &round_);
}

SchedulerDecision
ChronusScheduler::allocate()
{
    EF_CHECK(view_ != nullptr);
    PlannerConfig config =
        planner_config_for(*view_, 600.0, FillDirection::kEarliest);
    return elastic_allocate(*view_, config, PlanningMargin{0.02, 60.0},
                            /*fixed_size=*/true, &replan_failures_,
                            &round_);
}

}  // namespace ef

#include "sched/themis.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ef {

double
ThemisScheduler::finish_time_fairness(JobId id) const
{
    const JobSpec &spec = view_->spec(id);
    double dedicated_tpt =
        view_->curve(id).throughput(spec.requested_gpus);
    EF_CHECK(dedicated_tpt > 0.0);

    // Ideal: running alone on the requested GPUs since submission.
    double t_ideal =
        static_cast<double>(spec.iterations) / dedicated_tpt;
    // Shared projection: time elapsed so far plus the remaining work
    // at the dedicated rate (the standard optimistic projection).
    double t_shared = (view_->now() - spec.submit_time) +
                      view_->remaining_iterations(id) / dedicated_tpt;
    return t_shared / std::max(t_ideal, 1e-9);
}

SchedulerDecision
ThemisScheduler::allocate()
{
    EF_CHECK(view_ != nullptr);
    std::vector<JobId> jobs = view_->active_jobs();

    // Lease semantics: a running job keeps its GPUs until it finishes;
    // freed GPUs are auctioned to the waiting jobs with the worst
    // finish-time fairness. A waiting job whose rho is far beyond a
    // running job's can reclaim that job's lease (fairness trigger).
    SchedulerDecision decision;
    GpuCount free = view_->total_gpus();
    std::vector<JobId> waiting;
    std::vector<JobId> running;
    for (JobId id : jobs) {
        if (view_->remaining_iterations(id) <= 0.0)
            continue;
        if (view_->current_gpus(id) > 0)
            running.push_back(id);
        else
            waiting.push_back(id);
    }
    for (JobId id : running) {
        GpuCount req = view_->spec(id).requested_gpus;
        decision.gpus[id] = req;
        free -= req;
    }

    std::stable_sort(waiting.begin(), waiting.end(),
                     [this](JobId a, JobId b) {
                         double ra = finish_time_fairness(a);
                         double rb = finish_time_fairness(b);
                         if (ra != rb)
                             return ra > rb;
                         return a < b;
                     });
    std::stable_sort(running.begin(), running.end(),
                     [this](JobId a, JobId b) {
                         double ra = finish_time_fairness(a);
                         double rb = finish_time_fairness(b);
                         if (ra != rb)
                             return ra < rb;  // best-treated first
                         return a < b;
                     });

    constexpr double kPreemptionFactor = 3.0;
    std::size_t victim = 0;
    for (JobId id : waiting) {
        GpuCount req = view_->spec(id).requested_gpus;
        double rho = finish_time_fairness(id);
        // Reclaim leases from the best-treated running jobs while this
        // starving job is markedly worse off.
        while (req > free && victim < running.size() &&
               rho > kPreemptionFactor *
                         finish_time_fairness(running[victim])) {
            JobId v = running[victim];
            free += decision.gpus[v];
            decision.gpus[v] = 0;
            ++victim;
        }
        if (req <= free) {
            decision.gpus[id] = req;
            free -= req;
        } else {
            decision.gpus[id] = 0;
        }
    }
    return decision;
}

}  // namespace ef

/**
 * @file
 * Shared planning helpers for deadline-aware schedulers.
 *
 * ElasticFlow and the Fig. 9 ablation variants (EDF + Admission
 * Control, EDF + Elastic Scaling) share the same building blocks:
 * turning the cluster view into PlanningJobs, checking a candidate's
 * admissibility (Algorithm 1), and computing a full elastic allocation
 * (Algorithm 1 refresh + Algorithm 2). Chronus reuses the same pieces
 * with fixed-size curves. Failure-aware policies additionally pass the
 * set of jobs already demoted to best-effort (they stop reserving SLO
 * capacity) and collect the hard-SLO jobs newly parked by a refresh.
 */
#ifndef EF_SCHED_PLANNING_UTIL_H_
#define EF_SCHED_PLANNING_UTIL_H_

#include <optional>
#include <set>
#include <vector>

#include "core/admission.h"
#include "core/allocator.h"
#include "sched/scheduler.h"

namespace ef {

/**
 * Safety margin applied when planning SLO jobs: remaining work is
 * inflated by the relative factor, plus an absolute allowance that
 * covers the scaling-overhead pauses a job accrues (expressed as
 * seconds of lost full-speed progress, so short jobs are protected
 * too).
 */
struct PlanningMargin
{
    double relative = 0.0;
    double overhead_allowance_s = 0.0;

    /** Inflated remaining iterations for a job with @p curve. */
    double inflate(double remaining, const ScalingCurve &curve) const;
};

/** Planner view of one active job; margin inflates remaining work. */
PlanningJob to_planning_job(const ClusterView &view, JobId id,
                            const PlanningMargin &margin);

/**
 * Planner view of an active job with its curve pinned to a fixed GPU
 * count (server-centric baselines).
 */
PlanningJob to_fixed_planning_job(const ClusterView &view, JobId id,
                                  const PlanningMargin &margin);

/** Default planner config for a view. */
PlannerConfig planner_config_for(const ClusterView &view,
                                 Time slot_seconds,
                                 FillDirection direction);

/**
 * Cached per-round planner view of the active jobs.
 *
 * Admission checks and the allocation pass of one scheduling round
 * previously each rebuilt the PlanningJob lists from the cluster view,
 * copying every job's scaling curve per call. A PlanningRound caches
 * the built lists keyed by a snapshot of everything they derive from
 * (time, margin, job set, remaining work, deadlines) and rebuilds only
 * when that snapshot goes stale. Relies on a job's scaling curve being
 * immutable while the job is active, which every ClusterView in this
 * repo guarantees (curves are fixed at job arrival).
 */
class PlanningRound
{
  public:
    /** The lists exactly as the planner consumes them. */
    struct Jobs
    {
        /** Deadline (hard and soft) jobs, margin applied. */
        std::vector<PlanningJob> slo;
        /** Best-effort jobs, no margin (no guarantee to protect). */
        std::vector<PlanningJob> best_effort;
    };

    /** Planner view of @p view, rebuilt iff the snapshot went stale. */
    const Jobs &jobs(const ClusterView &view,
                     const PlanningMargin &margin, bool fixed_size);

  private:
    struct JobKey
    {
        JobId id = kInvalidJob;
        double remaining = 0.0;
        Time deadline = 0.0;
        bool operator==(const JobKey &) const = default;
    };
    struct Key
    {
        Time now = 0.0;
        double relative = 0.0;
        double allowance = 0.0;
        bool fixed_size = false;
        std::vector<JobKey> jobs;
        bool operator==(const Key &) const = default;
    };

    bool filled_ = false;
    Key key_;
    Jobs jobs_;
};

/**
 * Admission check (Algorithm 1) of @p candidate against all active SLO
 * jobs. With @p fixed_size, jobs use their requested GPU counts
 * (Chronus semantics); otherwise full elastic curves. With @p round,
 * the active-job list is served from the round cache instead of being
 * rebuilt from the view.
 */
bool admission_feasible(const ClusterView &view,
                        const PlannerConfig &config,
                        const PlanningMargin &margin,
                        const JobSpec &candidate, bool fixed_size,
                        PlanningRound *round = nullptr,
                        const std::set<JobId> *exclude = nullptr);

/**
 * Admission check matching *plain EDF allocation* (Fig. 9's
 * "EDF + Admission Control" variant): in deadline order, each job
 * greedily fills as many GPUs as still help it; the candidate is
 * admitted iff every job then meets its deadline. This mirrors what
 * the EDF allocator will actually do, unlike the minimum-share check,
 * which assumes elastic right-sizing.
 */
bool edf_admission_feasible(const ClusterView &view,
                            const PlannerConfig &config,
                            const JobSpec &candidate);

/** Result of the per-round minimum-share refresh (Algorithm 1 rerun). */
struct MinShareRefresh
{
    /** Feasible SLO jobs, deadlines possibly relaxed in place. */
    std::vector<PlanningJob> slo;
    /** Jobs whose deadline could not be met even relaxed; they run on
     *  as best-effort (deadline rewritten to infinity). */
    std::vector<PlanningJob> parked;
    /** Minimum satisfactory share per job in @p slo. */
    std::map<JobId, SlotPlan> min_shares;
};

/**
 * Refresh minimum satisfactory shares for @p slo in deadline order
 * (hard before soft), relaxing slipped deadlines in growing steps so a
 * drifted job finishes as close to its original deadline as the
 * cluster allows. With @p park_infeasible_hard (the post-fault
 * demotion rule), a hard job whose original deadline cannot be met is
 * parked immediately instead of relaxed — the caller then demotes it
 * to best-effort rather than letting it silently miss. Exposed
 * separately from elastic_allocate so tests can assert relaxation
 * invariants (a relaxed job's reservation never reaches past its
 * relaxed horizon). When @p cost is non-null it accumulates the
 * deterministic planning work units spent by every progressive fill in
 * the refresh (see AdmissionOutcome::cost), which the service-mode
 * watchdog uses as its replayable time budget.
 */
MinShareRefresh refresh_min_shares(const PlannerConfig &config, Time now,
                                   std::vector<PlanningJob> slo,
                                   int *replan_failures,
                                   bool park_infeasible_hard = false,
                                   std::uint64_t *cost = nullptr);

/**
 * Shard-parallel formulation of refresh_min_shares (DESIGN.md §10).
 * Each shard speculatively fills its jobs (rank mod concurrency.shards)
 * against a private per-pod capacity slice in parallel; the sequential
 * merge adopts a speculative plan only under an exactness certificate
 * (the fill never clipped, and global availability cannot clip any
 * attempted level) and re-bids everything else classically — so plans,
 * parks, relaxations, and the accumulated @p cost are bit-identical to
 * refresh_min_shares for every input, shard count, and thread count.
 * @p stats, when non-null, accumulates per-shard cost units and
 * suppresses the built-in emit_shard_round (the caller owns emission).
 */
MinShareRefresh refresh_min_shares_sharded(
    const PlannerConfig &config, Time now, std::vector<PlanningJob> slo,
    int *replan_failures, bool park_infeasible_hard, std::uint64_t *cost,
    const PlannerConcurrency &concurrency,
    ShardRoundStats *stats = nullptr);

/**
 * Full elastic allocation pass: refresh minimum satisfactory shares
 * for active SLO jobs in deadline order, then run Algorithm 2 with
 * best-effort jobs appended. Jobs whose deadline became infeasible
 * (possible without admission control, or through overhead drift) are
 * kept running under a progressively relaxed deadline and counted in
 * @p replan_failures. With @p fixed_size, every job's curve is pinned
 * to its requested GPU count. With @p round, the active-job list is
 * served from the round cache instead of being rebuilt from the view.
 * Jobs in @p demoted plan as best-effort regardless of their spec;
 * hard-SLO jobs the refresh had to park (deadline unmeetable even
 * relaxed) are appended to @p hard_parked when given. With
 * @p concurrency, the refresh and allocation both run shard-parallel
 * (bit-identical decisions — see refresh_min_shares_sharded) and the
 * round emits one combined shard-telemetry span set.
 */
SchedulerDecision elastic_allocate(const ClusterView &view,
                                   const PlannerConfig &config,
                                   const PlanningMargin &margin,
                                   bool fixed_size,
                                   int *replan_failures,
                                   PlanningRound *round = nullptr,
                                   const std::set<JobId> *demoted = nullptr,
                                   std::vector<JobId> *hard_parked =
                                       nullptr,
                                   const PlannerConcurrency *concurrency =
                                       nullptr);

}  // namespace ef

#endif  // EF_SCHED_PLANNING_UTIL_H_

/**
 * @file
 * Shared planning helpers for deadline-aware schedulers.
 *
 * ElasticFlow and the Fig. 9 ablation variants (EDF + Admission
 * Control, EDF + Elastic Scaling) share the same building blocks:
 * turning the cluster view into PlanningJobs, checking a candidate's
 * admissibility (Algorithm 1), and computing a full elastic allocation
 * (Algorithm 1 refresh + Algorithm 2). Chronus reuses the same pieces
 * with fixed-size curves.
 */
#ifndef EF_SCHED_PLANNING_UTIL_H_
#define EF_SCHED_PLANNING_UTIL_H_

#include <optional>
#include <vector>

#include "core/admission.h"
#include "core/allocator.h"
#include "sched/scheduler.h"

namespace ef {

/**
 * Safety margin applied when planning SLO jobs: remaining work is
 * inflated by the relative factor, plus an absolute allowance that
 * covers the scaling-overhead pauses a job accrues (expressed as
 * seconds of lost full-speed progress, so short jobs are protected
 * too).
 */
struct PlanningMargin
{
    double relative = 0.0;
    double overhead_allowance_s = 0.0;

    /** Inflated remaining iterations for a job with @p curve. */
    double inflate(double remaining, const ScalingCurve &curve) const;
};

/** Planner view of one active job; margin inflates remaining work. */
PlanningJob to_planning_job(const ClusterView &view, JobId id,
                            const PlanningMargin &margin);

/**
 * Planner view of an active job with its curve pinned to a fixed GPU
 * count (server-centric baselines).
 */
PlanningJob to_fixed_planning_job(const ClusterView &view, JobId id,
                                  const PlanningMargin &margin);

/** Default planner config for a view. */
PlannerConfig planner_config_for(const ClusterView &view,
                                 Time slot_seconds,
                                 FillDirection direction);

/**
 * Admission check (Algorithm 1) of @p candidate against all active SLO
 * jobs. With @p fixed_size, jobs use their requested GPU counts
 * (Chronus semantics); otherwise full elastic curves.
 */
bool admission_feasible(const ClusterView &view,
                        const PlannerConfig &config,
                        const PlanningMargin &margin,
                        const JobSpec &candidate, bool fixed_size);

/**
 * Admission check matching *plain EDF allocation* (Fig. 9's
 * "EDF + Admission Control" variant): in deadline order, each job
 * greedily fills as many GPUs as still help it; the candidate is
 * admitted iff every job then meets its deadline. This mirrors what
 * the EDF allocator will actually do, unlike the minimum-share check,
 * which assumes elastic right-sizing.
 */
bool edf_admission_feasible(const ClusterView &view,
                            const PlannerConfig &config,
                            const JobSpec &candidate);

/**
 * Full elastic allocation pass: refresh minimum satisfactory shares
 * for active SLO jobs in deadline order, then run Algorithm 2 with
 * best-effort jobs appended. Jobs whose deadline became infeasible
 * (possible without admission control, or through overhead drift) are
 * kept running under a progressively relaxed deadline and counted in
 * @p replan_failures. With @p fixed_size, every job's curve is pinned
 * to its requested GPU count.
 */
SchedulerDecision elastic_allocate(const ClusterView &view,
                                   const PlannerConfig &config,
                                   const PlanningMargin &margin,
                                   bool fixed_size,
                                   int *replan_failures);

}  // namespace ef

#endif  // EF_SCHED_PLANNING_UTIL_H_

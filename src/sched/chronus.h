/**
 * @file
 * Chronus baseline (Gao et al., SoCC'21): deadline-aware but
 * server-centric. SLO jobs are admitted only if a lease schedule
 * exists that runs every admitted job on its *fixed* requested GPU
 * count before its deadline (expressed here as Algorithm 1 over
 * fixed-size curves); best-effort jobs backfill leftover GPUs. The
 * missing ingredient relative to ElasticFlow is elasticity: a job can
 * never borrow extra GPUs to finish early or shrink to fit, which is
 * precisely the gap Fig. 6 quantifies.
 */
#ifndef EF_SCHED_CHRONUS_H_
#define EF_SCHED_CHRONUS_H_

#include <string>

#include "sched/planning_util.h"
#include "sched/scheduler.h"

namespace ef {

/** See file comment. */
class ChronusScheduler : public Scheduler
{
  public:
    std::string name() const override { return "chronus"; }

    bool admit(const JobSpec &job) override;
    SchedulerDecision allocate() override;

    Time reschedule_interval() const override { return 600.0; }
    int replan_failures() const override { return replan_failures_; }

  private:
    int replan_failures_ = 0;
    /** Shared admit()/allocate() planner view of the current round. */
    PlanningRound round_;
};

}  // namespace ef

#endif  // EF_SCHED_CHRONUS_H_

/**
 * @file
 * Tiresias baseline (Gu et al., NSDI'19): two-dimensional
 * least-attained-service scheduling. Jobs are binned into discretized
 * priority queues by attained service (GPU count x occupied time);
 * lower attained service means higher priority, FIFO within a queue.
 * Server-centric (fixed trace GPU counts), preemptive, and not
 * deadline-aware. Tiresias' profile-guided consolidated placement is
 * modelled by compact best-fit.
 */
#ifndef EF_SCHED_TIRESIAS_H_
#define EF_SCHED_TIRESIAS_H_

#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace ef {

/** See file comment. */
class TiresiasScheduler : public Scheduler
{
  public:
    /** Queue thresholds in GPU-seconds (ascending); K = size + 1. */
    explicit TiresiasScheduler(
        std::vector<double> thresholds = {3600.0, 8.0 * 3600.0})
        : thresholds_(std::move(thresholds))
    {}

    std::string name() const override { return "tiresias"; }

    SchedulerDecision allocate() override;

    Time reschedule_interval() const override { return 300.0; }

  private:
    int queue_of(double attained_gpu_seconds) const;

    std::vector<double> thresholds_;
};

}  // namespace ef

#endif  // EF_SCHED_TIRESIAS_H_

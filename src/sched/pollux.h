/**
 * @file
 * Pollux baseline (Qiao et al., OSDI'21) at the policy granularity the
 * paper simulates: fully elastic, goodput-driven, not deadline-aware.
 * Every interval all GPUs are redistributed by a proportional-fair
 * greedy: the next allocation step goes to the job with the largest
 * gain in log-throughput per GPU, which reproduces Pollux's
 * diminishing-returns-aware co-adaptive allocation (the statistical-
 * efficiency term is out of scope — our jobs have fixed global batch
 * sizes, so goodput reduces to throughput).
 */
#ifndef EF_SCHED_POLLUX_H_
#define EF_SCHED_POLLUX_H_

#include <string>

#include "sched/scheduler.h"

namespace ef {

/** See file comment. */
class PolluxScheduler : public Scheduler
{
  public:
    std::string name() const override { return "pollux"; }

    SchedulerDecision allocate() override;

    Time reschedule_interval() const override { return 600.0; }
    bool allow_migration() const override { return true; }
};

}  // namespace ef

#endif  // EF_SCHED_POLLUX_H_

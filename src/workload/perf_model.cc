#include "workload/perf_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace ef {
namespace {

/** Growth of the per-iteration overhead with worker count. */
constexpr double kOverheadGrowthPerDoubling = 0.3;

}  // namespace

PerfModel::PerfModel(const Topology *topology, PerfModelConfig config)
    : topology_(topology), config_(config)
{
    EF_CHECK(topology_ != nullptr);
}

PlacementShape
PerfModel::compact_shape(GpuCount workers) const
{
    EF_CHECK(workers >= 1);
    PlacementShape shape;
    shape.workers = workers;
    int per_server = topology_->gpus_per_server();
    shape.server_span = (workers + per_server - 1) / per_server;
    int per_rack = topology_->spec().servers_per_rack;
    shape.rack_span = (shape.server_span + per_rack - 1) / per_rack;
    return shape;
}

PlacementShape
PerfModel::shape_of(const std::vector<GpuCount> &gpus) const
{
    EF_CHECK(!gpus.empty());
    PlacementShape shape;
    shape.workers = static_cast<GpuCount>(gpus.size());
    shape.server_span = topology_->server_span(gpus);
    shape.rack_span = topology_->rack_span(gpus);
    return shape;
}

double
PerfModel::iteration_seconds(DnnModel model, int global_batch,
                             const PlacementShape &shape) const
{
    const ModelProfile &profile = model_profile(model);
    const GpuCount g = shape.workers;
    EF_CHECK_MSG(g >= 1, "iteration_seconds needs at least one worker");
    EF_CHECK_MSG(global_batch >= 1, "invalid global batch");

    int local_batch = (global_batch + g - 1) / g;
    int micro_steps = 1;
    if (local_batch > profile.max_local_batch) {
        EF_CHECK_MSG(config_.allow_grad_accumulation,
                     profile.name << " local batch " << local_batch
                                  << " overflows GPU memory (max "
                                  << profile.max_local_batch << ")");
        micro_steps = (local_batch + profile.max_local_batch - 1) /
                      profile.max_local_batch;
    }

    double compute = profile.per_sample_s * local_batch;
    double overhead =
        profile.fixed_overhead_s *
            (1.0 + kOverheadGrowthPerDoubling *
                       std::log2(static_cast<double>(g))) +
        config_.accumulation_overhead_s * (micro_steps - 1);

    double comm = 0.0;
    double latency_steps = 0.0;
    if (g > 1) {
        const int m = std::max(shape.server_span, 1);
        const double k = static_cast<double>(g) / m;  // GPUs per server
        const double payload = profile.param_gb;
        if (k > 1.0) {
            comm += 2.0 * (k - 1.0) / k * payload /
                    topology_->spec().intra_server_gbps;
            latency_steps += 2.0 * (k - 1.0);
        }
        if (m > 1) {
            CommLevel level = shape.rack_span > 1 ? CommLevel::kCrossRack
                                                  : CommLevel::kIntraRack;
            double bw = topology_->bandwidth_gbps(level, k);
            comm += 2.0 * (m - 1.0) / m * payload / bw;
            latency_steps += 2.0 * (m - 1.0);
        }
    }
    double latency = latency_steps * topology_->spec().per_step_latency_s;

    return compute + overhead + comm + latency;
}

double
PerfModel::throughput(DnnModel model, int global_batch,
                      const PlacementShape &shape) const
{
    if (shape.workers <= 0)
        return 0.0;
    if (shape.workers < min_workers(model, global_batch))
        return 0.0;  // local batch would overflow GPU memory
    if (shape.workers > global_batch)
        return 0.0;  // cannot shard below one sample per worker
    return 1.0 / iteration_seconds(model, global_batch, shape);
}

double
PerfModel::compact_throughput(DnnModel model, int global_batch,
                              GpuCount workers) const
{
    if (workers <= 0)
        return 0.0;
    PlacementShape shape = compact_shape(workers);
    return throughput(model, global_batch, shape);
}

std::vector<double>
PerfModel::compact_pow2_throughputs(DnnModel model, int global_batch,
                                    GpuCount max_workers) const
{
    GpuCount cap = this->max_workers(model, global_batch, max_workers);
    std::vector<double> table;
    for (GpuCount g = 1; g <= cap; g *= 2)
        table.push_back(compact_throughput(model, global_batch, g));
    return table;
}

GpuCount
PerfModel::min_workers(DnnModel model, int global_batch) const
{
    if (config_.allow_grad_accumulation)
        return 1;  // accumulation removes the memory bound
    const ModelProfile &profile = model_profile(model);
    GpuCount needed = (global_batch + profile.max_local_batch - 1) /
                      profile.max_local_batch;
    return ceil_power_of_two(needed);
}

GpuCount
PerfModel::max_workers(DnnModel model, int global_batch,
                       GpuCount cluster_limit) const
{
    GpuCount cap = std::min<GpuCount>(floor_power_of_two(global_batch),
                                      floor_power_of_two(cluster_limit));
    return std::max(cap, min_workers(model, global_batch));
}

}  // namespace ef

/**
 * @file
 * CSV import/export of traces, so real production traces (submission
 * time, GPU count, duration-derived iterations) can be fed to the
 * schedulers and generated traces can be archived with results.
 *
 * Columns: id,name,model,global_batch,iterations,submit_time,deadline,
 * kind,requested_gpus. Deadline is the literal "inf" for best-effort
 * jobs. A trace CSV holds only jobs; the cluster topology is supplied
 * separately by the caller.
 */
#ifndef EF_WORKLOAD_TRACE_IO_H_
#define EF_WORKLOAD_TRACE_IO_H_

#include <string>

#include "workload/trace.h"

namespace ef {

/** Serialize the jobs of a trace to CSV text. */
std::string trace_to_csv(const Trace &trace);

/** Write a trace's jobs to a CSV file. */
void save_trace_csv(const std::string &path, const Trace &trace);

/**
 * Load jobs from CSV into a trace with the given topology. Aborts on
 * malformed rows (missing columns, unknown model names, negative
 * iteration counts).
 */
Trace load_trace_csv(const std::string &path, const TopologySpec &topology,
                     const std::string &name = "csv-trace");

/** Parse CSV text (same format as load_trace_csv). */
Trace parse_trace_csv(const std::string &text, const TopologySpec &topology,
                      const std::string &name = "csv-trace");

}  // namespace ef

#endif  // EF_WORKLOAD_TRACE_IO_H_

#include "workload/model_zoo.h"

#include "common/check.h"

namespace ef {
namespace {

// Per-sample costs approximate fp32 training on an A100-40GB-class GPU;
// parameter payloads are the published model sizes. fixed_overhead_s is
// the per-iteration floor (kernel launches, optimizer step, Python/DDP
// bookkeeping) that caps strong scaling, calibrated so VGG16 lands near
// the paper's 76% efficiency at 8 intra-server GPUs.
const std::vector<ModelProfile> &
profiles()
{
    static const std::vector<ModelProfile> kProfiles = {
        {DnnModel::kResNet50, "ResNet50", "CV", "ImageNet",
         0.0975, 1.10e-3, 5.0e-3, 256, {64, 128, 256}, 0.10},
        {DnnModel::kVgg16, "VGG16", "CV", "ImageNet",
         0.528, 4.00e-3, 10.0e-3, 256, {64, 128, 256}, 0.53},
        {DnnModel::kInceptionV3, "InceptionV3", "CV", "ImageNet",
         0.091, 1.60e-3, 7.0e-3, 128, {64, 128}, 0.10},
        {DnnModel::kBert, "BERT", "NLP", "CoLA",
         0.420, 5.00e-3, 8.0e-3, 64, {64, 128}, 0.42},
        {DnnModel::kGpt2, "GPT-2", "NLP", "aclImdb V1",
         0.475, 8.00e-3, 8.0e-3, 32, {128, 256}, 0.48},
        {DnnModel::kDeepSpeech2, "DeepSpeech2", "Speech Recognition",
         "LibriSpeech", 0.330, 10.0e-3, 12.0e-3, 32, {32, 64}, 0.33},
    };
    return kProfiles;
}

}  // namespace

const std::vector<DnnModel> &
all_models()
{
    static const std::vector<DnnModel> kModels = {
        DnnModel::kResNet50, DnnModel::kVgg16, DnnModel::kInceptionV3,
        DnnModel::kBert, DnnModel::kGpt2, DnnModel::kDeepSpeech2,
    };
    return kModels;
}

const ModelProfile &
model_profile(DnnModel model)
{
    for (const auto &profile : profiles()) {
        if (profile.model == model)
            return profile;
    }
    EF_CHECK_MSG(false, "unknown model enum "
                            << static_cast<int>(model));
    return profiles().front();  // unreachable
}

const std::string &
model_name(DnnModel model)
{
    return model_profile(model).name;
}

DnnModel
model_from_name(const std::string &name)
{
    for (const auto &profile : profiles()) {
        if (profile.name == name)
            return profile.model;
    }
    EF_FATAL_IF(true, "unknown model name '" << name << "'");
    return DnnModel::kResNet50;  // unreachable
}

}  // namespace ef

/**
 * @file
 * Job descriptions: what a DL developer submits through ElasticFlow's
 * serverless interface (paper §3.1).
 *
 * A job names its DNN model and hyperparameters (global batch size),
 * its termination condition (a maximum number of iterations), and a
 * deadline. It deliberately does NOT name a GPU count — deciding the
 * number of workers and the local batch size is the platform's problem.
 * The requested_gpus field exists only so the server-centric baseline
 * schedulers (Gandiva, Tiresias, Themis, Chronus) can be driven from
 * the same traces, mirroring the paper's methodology.
 */
#ifndef EF_WORKLOAD_JOB_H_
#define EF_WORKLOAD_JOB_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "workload/model_zoo.h"

namespace ef {

/**
 * SLO jobs carry hard deadlines and are dropped when unsatisfiable;
 * soft-deadline jobs keep running even when their deadline cannot be
 * guaranteed (scheduled like best-effort after minimum shares, §4.4);
 * best-effort jobs have no deadline at all.
 */
enum class JobKind { kSlo, kSoftDeadline, kBestEffort };

std::string job_kind_name(JobKind kind);

/** One trace entry / serverless function submission. */
struct JobSpec
{
    JobId id = kInvalidJob;
    std::string name;

    /** Submitting user (admission policies meter per user, §4.4). */
    std::string user = "default";

    DnnModel model = DnnModel::kResNet50;
    int global_batch = 128;

    /** Termination condition: maximum number of iterations M_i. */
    std::int64_t iterations = 0;

    Time submit_time = 0.0;

    /**
     * Absolute deadline D_i. kTimeInfinity for best-effort jobs.
     * Traces set deadline = submit + lambda * standalone duration with
     * lambda ~ U[0.5, 1.5] (paper §6.1).
     */
    Time deadline = kTimeInfinity;

    JobKind kind = JobKind::kSlo;

    /** True for jobs whose deadline is a wish, not a contract. */
    bool has_soft_deadline() const
    {
        return kind == JobKind::kSoftDeadline;
    }

    /**
     * GPU count the original server-centric trace requested; consumed
     * only by the non-elastic baselines. Power of two.
     */
    GpuCount requested_gpus = 1;

    bool is_best_effort() const { return kind == JobKind::kBestEffort; }
};

}  // namespace ef

#endif  // EF_WORKLOAD_JOB_H_

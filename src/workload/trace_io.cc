#include "workload/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/csv.h"

namespace ef {
namespace {

std::string
format_time(Time t)
{
    if (is_unbounded(t))
        return "inf";
    std::ostringstream out;
    out.precision(9);
    out << t;
    return out.str();
}

Time
parse_time(const std::string &s, const std::string &context)
{
    if (s == "inf")
        return kTimeInfinity;
    return csv_to_double(s, context);
}

}  // namespace

std::string
trace_to_csv(const Trace &trace)
{
    std::vector<std::string> header = {
        "id", "name", "user", "model", "global_batch", "iterations",
        "submit_time", "deadline", "kind", "requested_gpus",
    };
    std::vector<std::vector<std::string>> rows;
    rows.reserve(trace.jobs.size());
    for (const JobSpec &job : trace.jobs) {
        rows.push_back({
            std::to_string(job.id),
            job.name,
            job.user,
            model_name(job.model),
            std::to_string(job.global_batch),
            std::to_string(job.iterations),
            format_time(job.submit_time),
            format_time(job.deadline),
            job_kind_name(job.kind),
            std::to_string(job.requested_gpus),
        });
    }
    return to_csv(header, rows);
}

void
save_trace_csv(const std::string &path, const Trace &trace)
{
    std::ofstream out(path);
    EF_FATAL_IF(!out, "cannot write trace file: " << path);
    out << trace_to_csv(trace);
}

Trace
parse_trace_csv(const std::string &text, const TopologySpec &topology,
                const std::string &name)
{
    CsvTable table = parse_csv(text);
    Trace trace;
    trace.name = name;
    trace.topology = topology;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        // Header is line 1, so data row r lives on line r + 2. Every
        // malformed field aborts with this position instead of an
        // uncaught std::sto* exception.
        std::ostringstream where;
        where << "trace line " << r + 2;
        const std::string context = where.str();
        EF_FATAL_IF(table.rows[r].size() != table.header.size(),
                    context << ": expected " << table.header.size()
                            << " fields, got " << table.rows[r].size());
        auto column = [&context](const char *col) {
            return context + ", column '" + col + "'";
        };
        JobSpec job;
        job.id = csv_to_int(table.cell(r, "id"), column("id"));
        job.name = table.cell(r, "name");
        if (table.column_index("user") >= 0)
            job.user = table.cell(r, "user");
        job.model = model_from_name(table.cell(r, "model"));
        job.global_batch = static_cast<int>(csv_to_int(
            table.cell(r, "global_batch"), column("global_batch")));
        job.iterations = csv_to_int(table.cell(r, "iterations"),
                                    column("iterations"));
        job.submit_time = parse_time(table.cell(r, "submit_time"),
                                     column("submit_time"));
        job.deadline =
            parse_time(table.cell(r, "deadline"), column("deadline"));
        const std::string &kind = table.cell(r, "kind");
        if (kind == "slo") {
            job.kind = JobKind::kSlo;
        } else if (kind == "soft") {
            job.kind = JobKind::kSoftDeadline;
        } else if (kind == "best-effort") {
            job.kind = JobKind::kBestEffort;
        } else {
            EF_FATAL_IF(true, context << ": unknown job kind '" << kind
                                      << "'");
        }
        job.requested_gpus = static_cast<int>(csv_to_int(
            table.cell(r, "requested_gpus"), column("requested_gpus")));
        EF_FATAL_IF(job.iterations <= 0,
                    context << ": job " << job.id
                            << " has non-positive iterations");
        EF_FATAL_IF(job.global_batch <= 0,
                    context << ": job " << job.id
                            << " has non-positive batch");
        EF_FATAL_IF(job.requested_gpus <= 0,
                    context << ": job " << job.id
                            << " has non-positive GPU request");
        trace.jobs.push_back(std::move(job));
    }
    trace.sort_by_submit_time();
    return trace;
}

Trace
load_trace_csv(const std::string &path, const TopologySpec &topology,
               const std::string &name)
{
    std::ifstream in(path);
    EF_FATAL_IF(!in, "cannot open trace file: " << path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_trace_csv(buffer.str(), topology, name);
}

}  // namespace ef

/**
 * @file
 * A trace is the unit of an experiment: a cluster spec plus a list of
 * job submissions. Mirrors the paper's methodology (§6.1): real traces
 * provide submission time, GPU count, and duration; the model and batch
 * size are sampled from the Table 1 pool; the iteration count is
 * derived from the duration and the profiled throughput; deadlines are
 * submit + lambda * duration with lambda ~ U[0.5, 1.5].
 */
#ifndef EF_WORKLOAD_TRACE_H_
#define EF_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "cluster/topology.h"
#include "workload/job.h"

namespace ef {

class PerfModel;

/** One experiment input: a cluster and its job submissions. */
struct Trace
{
    std::string name;
    TopologySpec topology;
    std::vector<JobSpec> jobs;  ///< sorted by submit_time

    std::size_t size() const { return jobs.size(); }

    /** Sort jobs by submission time (stable; ids break ties). */
    void sort_by_submit_time();

    /** Latest submission time (0 for an empty trace). */
    Time last_submit_time() const;

    /** Count of jobs of a kind. */
    std::size_t count_kind(JobKind kind) const;
};

/**
 * Standalone duration of a job: the time it needs on its requested GPU
 * count with a compact placement (this is the "duration" column of a
 * server-centric trace).
 */
Time standalone_duration(const PerfModel &perf, const JobSpec &job);

/**
 * Derive the iteration count from a trace duration, inverting
 * standalone_duration (paper §6.1: "use the duration in the trace and
 * the pre-measured throughput to calculate the number of iterations").
 */
std::int64_t iterations_for_duration(const PerfModel &perf,
                                     const JobSpec &job, Time duration);

/**
 * Assign deadlines to all SLO jobs in @p trace:
 * deadline = submit + lambda * standalone duration,
 * lambda ~ U[tightness_lo, tightness_hi].
 */
void assign_deadlines(Trace *trace, const PerfModel &perf, double lo,
                      double hi, class Rng *rng);

}  // namespace ef

#endif  // EF_WORKLOAD_TRACE_H_

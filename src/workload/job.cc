#include "workload/job.h"

namespace ef {

std::string
job_kind_name(JobKind kind)
{
    switch (kind) {
      case JobKind::kSlo: return "slo";
      case JobKind::kSoftDeadline: return "soft";
      case JobKind::kBestEffort: return "best-effort";
    }
    return "?";
}

}  // namespace ef

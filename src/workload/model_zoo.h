/**
 * @file
 * The DNN model pool of the paper's evaluation (Table 1): six models
 * across CV, NLP, and speech recognition, each with the batch sizes the
 * paper samples from, plus the per-model constants the performance
 * model needs (parameter size, per-sample compute cost, per-iteration
 * overhead, GPU-memory-bound maximum local batch, and checkpoint size
 * for scaling-overhead estimation).
 *
 * The constants are calibrated to an A100-40GB-class device so that the
 * derived scaling curves match the shapes the paper reports in Fig. 2.
 */
#ifndef EF_WORKLOAD_MODEL_ZOO_H_
#define EF_WORKLOAD_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace ef {

/** Models from Table 1. */
enum class DnnModel {
    kResNet50 = 0,
    kVgg16,
    kInceptionV3,
    kBert,
    kGpt2,
    kDeepSpeech2,
};

/** Number of models in the zoo. */
inline constexpr int kNumModels = 6;

/** All models, for iteration in tests/benches. */
const std::vector<DnnModel> &all_models();

/** Per-model constants consumed by PerfModel and OverheadModel. */
struct ModelProfile
{
    DnnModel model;
    std::string name;
    std::string task;     ///< CV / NLP / Speech Recognition (Table 1)
    std::string dataset;  ///< dataset named in Table 1

    double param_gb;          ///< gradient/parameter payload per all-reduce
    double per_sample_s;      ///< fwd+bwd seconds per sample on one GPU
    double fixed_overhead_s;  ///< per-iteration launch/sync floor
    int max_local_batch;      ///< per-GPU memory bound on the local batch

    /** Batch sizes the paper samples for this model (Table 1). */
    std::vector<int> batch_sizes;

    /** Checkpoint payload for scaling/migration overhead (GB). */
    double checkpoint_gb;
};

/** Profile lookup (aborts on an unknown model). */
const ModelProfile &model_profile(DnnModel model);

/** Model name, e.g. "ResNet50". */
const std::string &model_name(DnnModel model);

/** Parse a model name (case-sensitive, as printed); aborts on miss. */
DnnModel model_from_name(const std::string &name);

}  // namespace ef

#endif  // EF_WORKLOAD_MODEL_ZOO_H_

/**
 * @file
 * Analytic distributed-training performance model.
 *
 * Substitutes for the paper's testbed profiling (§5, "Throughput
 * profiling"): given a model, a global batch size, and the *shape* of a
 * placement (worker count, server span, rack span), it predicts the
 * iteration time as
 *
 *   t = compute(local batch) + per-iteration overhead
 *       + hierarchical all-reduce time (intra-server ring +
 *         inter-server ring over the NICs the job can drive)
 *
 * which yields the paper's two key characteristics by construction:
 * concave scaling curves (Fig. 2a) and topology-dependent throughput
 * (Fig. 2b). Calibration targets pinned by tests: VGG16 at 8
 * intra-server GPUs reaches ~70-85% of linear scaling (paper: 76.07%),
 * and ResNet50's same-server vs. 8-server throughput ratio is ~1.8-2.6x
 * (paper: 2.17x).
 */
#ifndef EF_WORKLOAD_PERF_MODEL_H_
#define EF_WORKLOAD_PERF_MODEL_H_

#include <vector>

#include "cluster/topology.h"
#include "common/types.h"
#include "workload/model_zoo.h"

namespace ef {

/** The placement properties throughput depends on. */
struct PlacementShape
{
    GpuCount workers = 1;
    int server_span = 1;
    int rack_span = 1;
};

/** Optional behaviours of the performance model. */
struct PerfModelConfig
{
    /**
     * Gradient accumulation (extension beyond the paper): when the
     * local batch exceeds GPU memory, split it into micro-batches and
     * accumulate gradients instead of refusing the configuration.
     * Removes the memory-bound minimum worker count at the cost of
     * extra per-micro-step overhead.
     */
    bool allow_grad_accumulation = false;

    /** Extra per-iteration overhead per additional micro-step. */
    double accumulation_overhead_s = 2.0e-3;
};

/** Predicts training throughput from model, batch, and placement. */
class PerfModel
{
  public:
    explicit PerfModel(const Topology *topology,
                       PerfModelConfig config = {});

    const Topology &topology() const { return *topology_; }

    /** Shape of the most compact placement of @p workers GPUs. */
    PlacementShape compact_shape(GpuCount workers) const;

    /** Shape of a concrete GPU set. */
    PlacementShape shape_of(const std::vector<GpuCount> &gpus) const;

    /**
     * Seconds per training iteration. Aborts if the local batch would
     * overflow GPU memory (callers must respect min_workers).
     */
    double iteration_seconds(DnnModel model, int global_batch,
                             const PlacementShape &shape) const;

    /**
     * Iterations per second; 0 when @p shape.workers is 0 or below the
     * memory-bound minimum (the job cannot run in that configuration).
     */
    double throughput(DnnModel model, int global_batch,
                      const PlacementShape &shape) const;

    /** Throughput of the most compact placement of @p workers GPUs. */
    double compact_throughput(DnnModel model, int global_batch,
                              GpuCount workers) const;

    /**
     * Throughput table at power-of-two worker counts for compact
     * placements: entry k is the throughput with 2^k workers, up to the
     * largest power of two <= min(max_workers, global batch).
     * Entries below min_workers are 0.
     */
    std::vector<double> compact_pow2_throughputs(DnnModel model,
                                                 int global_batch,
                                                 GpuCount max_workers) const;

    /** Smallest power-of-two worker count whose local batch fits. */
    GpuCount min_workers(DnnModel model, int global_batch) const;

    /**
     * Largest power-of-two worker count that is meaningful: bounded by
     * the global batch (at least one sample per worker) and
     * @p cluster_limit.
     */
    GpuCount max_workers(DnnModel model, int global_batch,
                         GpuCount cluster_limit) const;

    const PerfModelConfig &config() const { return config_; }

  private:
    const Topology *topology_;
    PerfModelConfig config_;
};

}  // namespace ef

#endif  // EF_WORKLOAD_PERF_MODEL_H_

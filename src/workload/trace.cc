#include "workload/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "workload/perf_model.h"

namespace ef {

void
Trace::sort_by_submit_time()
{
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const JobSpec &a, const JobSpec &b) {
                         if (a.submit_time != b.submit_time)
                             return a.submit_time < b.submit_time;
                         return a.id < b.id;
                     });
}

Time
Trace::last_submit_time() const
{
    Time last = 0.0;
    for (const JobSpec &job : jobs)
        last = std::max(last, job.submit_time);
    return last;
}

std::size_t
Trace::count_kind(JobKind kind) const
{
    std::size_t n = 0;
    for (const JobSpec &job : jobs)
        n += job.kind == kind ? 1 : 0;
    return n;
}

Time
standalone_duration(const PerfModel &perf, const JobSpec &job)
{
    double tpt = perf.compact_throughput(job.model, job.global_batch,
                                         job.requested_gpus);
    EF_CHECK_MSG(tpt > 0.0, "job " << job.id << " cannot run on "
                                   << job.requested_gpus << " GPUs");
    return static_cast<Time>(job.iterations) / tpt;
}

std::int64_t
iterations_for_duration(const PerfModel &perf, const JobSpec &job,
                        Time duration)
{
    double tpt = perf.compact_throughput(job.model, job.global_batch,
                                         job.requested_gpus);
    EF_CHECK_MSG(tpt > 0.0, "job " << job.id << " cannot run on "
                                   << job.requested_gpus << " GPUs");
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(duration * tpt)));
}

void
assign_deadlines(Trace *trace, const PerfModel &perf, double lo, double hi,
                 Rng *rng)
{
    EF_CHECK(trace != nullptr && rng != nullptr);
    EF_CHECK(0.0 < lo && lo <= hi);
    for (JobSpec &job : trace->jobs) {
        if (job.is_best_effort()) {
            job.deadline = kTimeInfinity;
            continue;
        }
        double lambda = rng->uniform_real(lo, hi);
        job.deadline =
            job.submit_time + lambda * standalone_duration(perf, job);
    }
}

}  // namespace ef

/**
 * @file
 * Synthetic production-like trace generation.
 *
 * Substitutes for the paper's two-month traces from ten production
 * clusters and the public Microsoft Philly trace (§6.1). The generator
 * reproduces the statistical features the experiments depend on:
 * Poisson arrivals with diurnal modulation and occasional bursts,
 * a GPU-request distribution skewed toward small power-of-two jobs,
 * log-normal durations spanning minutes to days, Table 1 model/batch
 * sampling, and deadline tightness lambda ~ U[0.5, 1.5]. Ten cluster
 * presets (#1..#10) and a Philly-like preset cover the range of
 * cluster sizes and loads used in Fig. 8(b); the testbed presets match
 * Fig. 6 (25 jobs / 32 GPUs and 195 jobs / 128 GPUs).
 */
#ifndef EF_WORKLOAD_TRACE_GEN_H_
#define EF_WORKLOAD_TRACE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace ef {

class Rng;

/** Knobs of the synthetic trace generator. */
struct TraceGenConfig
{
    std::string name = "synthetic";
    TopologySpec topology;

    int num_jobs = 100;

    /** Mean interarrival time (seconds) before modulation. */
    double mean_interarrival_s = 600.0;
    /** Diurnal modulation depth in [0, 1): 0 disables. */
    double diurnal_depth = 0.5;
    /** Probability that an arrival starts a burst of extra jobs. */
    double burst_probability = 0.05;
    /** Jobs per burst (uniform 2..burst_max_jobs). */
    int burst_max_jobs = 6;

    /** Log-normal duration parameters (of the underlying normal). */
    double duration_log_mean = 8.3;   ///< exp(8.3) ~ 4000 s
    double duration_log_sigma = 1.2;
    double min_duration_s = 300.0;
    double max_duration_s = 3.0 * kDay;

    /** Weights for requested GPU counts 1, 2, 4, 8, 16, 32, ... */
    std::vector<double> gpu_size_weights = {0.30, 0.15, 0.17, 0.25,
                                            0.09, 0.04};

    /** Deadline tightness range (paper: U[0.5, 1.5]). */
    double tightness_lo = 0.5;
    double tightness_hi = 1.5;

    /** Fraction of jobs submitted without a deadline (§6.5). */
    double best_effort_fraction = 0.0;

    /** Fraction of jobs whose deadline is soft (§4.4). */
    double soft_deadline_fraction = 0.0;

    /** Number of synthetic submitting users ("user-0".."user-N-1"). */
    int num_users = 8;

    std::uint64_t seed = 1;
};

/** Generates reproducible traces from a config. */
class TraceGenerator
{
  public:
    /** Generate a trace (deterministic in config.seed). */
    static Trace generate(const TraceGenConfig &config);
};

/**
 * Cluster presets #1..#10 for Fig. 8(b): cluster sizes from 64 to 512
 * GPUs with loads from under- to over-subscribed (the paper's traces
 * span 164-2,783 GPUs and 260-15,802 jobs; presets are scaled down
 * proportionally to keep the benches fast, preserving the
 * load-per-GPU ratios).
 */
TraceGenConfig cluster_preset(int index);

/** Philly-like preset: smaller jobs, heavier queueing, bursty. */
TraceGenConfig philly_preset();

/** Fig. 6(a): 25 jobs on 4 servers x 8 GPUs. */
TraceGenConfig testbed_small_preset();

/** Fig. 6(b) / Fig. 8(a): 195 jobs on 16 servers x 8 GPUs. */
TraceGenConfig testbed_large_preset();

/**
 * Churn-heavy preset for the defrag experiments (DESIGN.md §14):
 * many short jobs with mixed power-of-two sizes arriving in bursts on
 * a 64-GPU cluster. Completions keep punching odd-sized holes, so
 * greedy-only (non-migrating) scheduling demonstrably fragments —
 * exactly the workload background defragmentation is judged on.
 */
TraceGenConfig churn_preset();

}  // namespace ef

#endif  // EF_WORKLOAD_TRACE_GEN_H_

#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "workload/perf_model.h"

namespace ef {
namespace {

/** Sample a (model, batch) pair from the Table 1 pool. */
std::pair<DnnModel, int>
sample_model_and_batch(Rng *rng)
{
    // Flatten Table 1 into (model, batch) settings, sampled uniformly
    // like the paper ("randomly choose a DNN model with a batch size
    // from a pool of representative settings").
    static const std::vector<std::pair<DnnModel, int>> kPool = [] {
        std::vector<std::pair<DnnModel, int>> pool;
        for (DnnModel model : all_models()) {
            for (int batch : model_profile(model).batch_sizes)
                pool.emplace_back(model, batch);
        }
        return pool;
    }();
    auto idx = static_cast<std::size_t>(
        rng->uniform_int(0, static_cast<std::int64_t>(kPool.size()) - 1));
    return kPool[idx];
}

}  // namespace

Trace
TraceGenerator::generate(const TraceGenConfig &config)
{
    EF_FATAL_IF(config.num_jobs < 1, "trace needs at least one job");
    Rng rng(config.seed);
    Topology topology(config.topology);
    PerfModel perf(&topology);

    Trace trace;
    trace.name = config.name;
    trace.topology = config.topology;

    const GpuCount cluster_gpus = topology.total_gpus();

    Time now = 0.0;
    JobId next_id = 0;
    int burst_remaining = 0;
    while (static_cast<int>(trace.jobs.size()) < config.num_jobs) {
        if (burst_remaining > 0) {
            // Bursts arrive back to back (seconds apart).
            now += rng.uniform_real(1.0, 30.0);
            --burst_remaining;
        } else {
            // Diurnal modulation of the arrival rate: slower at night.
            double phase = 2.0 * M_PI * std::fmod(now, kDay) / kDay;
            double modulation =
                1.0 + config.diurnal_depth * std::sin(phase);
            modulation = std::max(modulation, 0.05);
            now += rng.exponential(modulation / config.mean_interarrival_s);
            if (config.burst_probability > 0.0 &&
                rng.flip(config.burst_probability)) {
                burst_remaining =
                    static_cast<int>(rng.uniform_int(
                        2, std::max(2, config.burst_max_jobs)));
            }
        }

        JobSpec job;
        job.id = next_id++;
        job.submit_time = now;
        auto [model, batch] = sample_model_and_batch(&rng);
        job.model = model;
        job.global_batch = batch;
        job.name = model_name(model) + "-b" + std::to_string(batch) + "-" +
                   std::to_string(job.id);
        job.user = "user-" + std::to_string(rng.uniform_int(
                                 0, std::max(0, config.num_users - 1)));

        // Requested GPU count: skewed power-of-two distribution, kept
        // inside the job's feasible range on this cluster.
        GpuCount lo = perf.min_workers(model, batch);
        GpuCount hi = perf.max_workers(model, batch, cluster_gpus);
        auto idx = rng.weighted_index(config.gpu_size_weights);
        GpuCount req = GpuCount(1) << idx;
        req = std::clamp(req, lo, hi);
        job.requested_gpus = req;

        double duration = clamp(
            rng.log_normal(config.duration_log_mean,
                           config.duration_log_sigma),
            config.min_duration_s, config.max_duration_s);
        job.iterations = iterations_for_duration(perf, job, duration);

        if (rng.flip(config.best_effort_fraction)) {
            job.kind = JobKind::kBestEffort;
        } else if (config.soft_deadline_fraction > 0.0 &&
                   rng.flip(config.soft_deadline_fraction)) {
            job.kind = JobKind::kSoftDeadline;
        } else {
            job.kind = JobKind::kSlo;
        }

        trace.jobs.push_back(std::move(job));
    }

    assign_deadlines(&trace, perf, config.tightness_lo,
                     config.tightness_hi, &rng);
    trace.sort_by_submit_time();
    return trace;
}

TraceGenConfig
cluster_preset(int index)
{
    EF_FATAL_IF(index < 1 || index > 10,
                "cluster preset index must be in [1, 10], got " << index);
    TraceGenConfig config;
    config.name = "cluster#" + std::to_string(index);
    config.seed = 1000 + static_cast<std::uint64_t>(index);

    // Cluster sizes and loads spanning the paper's range (scaled down).
    // Interarrival shrinks with preset index faster than capacity grows,
    // so later presets are more contended — except #9/#10, which model
    // the paper's observation that some clusters are large enough for
    // EDF to do well.
    struct Preset { int gpus; int jobs; double interarrival; };
    static const Preset kPresets[10] = {
        {64, 80, 900.0},   {64, 120, 500.0},  {96, 120, 600.0},
        {128, 160, 450.0}, {128, 200, 300.0}, {192, 220, 350.0},
        {256, 260, 280.0}, {256, 320, 200.0}, {384, 150, 900.0},
        {512, 160, 1100.0},
    };
    const Preset &p = kPresets[index - 1];
    config.topology = TopologySpec::with_total_gpus(p.gpus);
    config.num_jobs = p.jobs;
    config.mean_interarrival_s = p.interarrival;
    return config;
}

TraceGenConfig
philly_preset()
{
    TraceGenConfig config;
    config.name = "philly";
    config.seed = 4242;
    config.topology = TopologySpec::with_total_gpus(256);
    config.num_jobs = 300;
    config.mean_interarrival_s = 240.0;
    // Philly jobs skew small and short with heavy bursts.
    config.gpu_size_weights = {0.45, 0.20, 0.15, 0.15, 0.04, 0.01};
    config.duration_log_mean = 7.8;
    config.duration_log_sigma = 1.5;
    config.burst_probability = 0.10;
    config.burst_max_jobs = 10;
    return config;
}

TraceGenConfig
testbed_small_preset()
{
    TraceGenConfig config;
    config.name = "testbed-32gpu-25jobs";
    config.seed = 7;
    config.topology = TopologySpec::testbed_32();
    config.num_jobs = 25;
    config.mean_interarrival_s = 1200.0;
    return config;
}

TraceGenConfig
testbed_large_preset()
{
    TraceGenConfig config;
    config.name = "testbed-128gpu-195jobs";
    config.seed = 11;
    config.topology = TopologySpec::testbed_128();
    config.num_jobs = 195;
    config.mean_interarrival_s = 300.0;
    return config;
}

TraceGenConfig
churn_preset()
{
    TraceGenConfig config;
    config.name = "churn-64gpu";
    config.seed = 23;
    config.topology = TopologySpec::with_total_gpus(64);
    config.num_jobs = 160;
    // High arrival rate and bursts: the cluster stays near-full, so
    // every completion leaves a hole the next arrival rarely fits.
    config.mean_interarrival_s = 150.0;
    config.burst_probability = 0.15;
    config.burst_max_jobs = 8;
    // Short jobs: exp(7.3) ~ 1500 s, clamped well below the default
    // multi-day tail, so placements turn over constantly.
    config.duration_log_mean = 7.3;
    config.duration_log_sigma = 0.8;
    config.max_duration_s = 0.5 * kDay;
    // Mixed small power-of-two sizes; enough 4s and 8s that stranded
    // odd-sized holes actually hurt.
    config.gpu_size_weights = {0.25, 0.25, 0.30, 0.20};
    // Leave deadline headroom and keep best-effort jobs resident so
    // fragmentation (not admission) dominates the outcome.
    config.tightness_lo = 0.8;
    config.best_effort_fraction = 0.3;
    return config;
}

}  // namespace ef

#include "core/allocator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ef {
namespace {

constexpr double kIterEpsilon = 1e-7;
constexpr double kFinishEpsilon = 1e-9;
/** Priority of starting an idle best-effort job (always first). */
constexpr double kStartPriority = std::numeric_limits<double>::infinity();

/** GPU-seconds to finish a best-effort job at a fixed GPU count. */
double
best_effort_gpu_seconds(const PlanningJob &job, GpuCount gpus)
{
    if (gpus <= 0)
        return std::numeric_limits<double>::infinity();
    double tpt = job.curve.throughput(gpus);
    EF_CHECK(tpt > 0.0);
    return job.remaining_iterations / tpt * static_cast<double>(gpus);
}

/** A considered upgrade for one job. */
struct Candidate
{
    bool valid = false;
    double priority = 0.0;   ///< GPU-seconds saved per GPU added
    GpuCount delta = 0;      ///< extra GPUs consumed in slot 0
    SlotPlan new_plan;       ///< SLO only
    GpuCount new_gpus = 0;   ///< best-effort only
};

/** Why the last recompute produced no valid candidate. */
enum class InvalidWhy : std::uint8_t {
    kNone,        ///< candidate is valid
    kRefillFail,  ///< tail re-fill missed the deadline at every level
    kNotFaster,   ///< bump does not strictly improve the finish time
};

/**
 * Cached candidate of one job, versioned for lazy heap revalidation.
 * Every recompute bumps the epoch, so heap entries carrying an older
 * epoch are recognized as stale when popped.
 */
struct CandidateSlot
{
    Candidate cand;
    std::uint32_t epoch = 0;
    /**
     * Invalid for a reason no later availability change can cure:
     * nothing left to run, no next power-of-two step, a slot-0 delta
     * that no longer fits (slot-0 headroom only ever shrinks), or an
     * empty planning horizon. Dead jobs are skipped on recompute.
     */
    bool dead = false;
    InvalidWhy why = InvalidWhy::kNone;
    /** Current plan changed (job won) since the caches below filled. */
    bool plan_dirty = true;
    /** plan_finish_seconds of the *current* plan (valid iff !dirty). */
    Time finish_cur = 0.0;
    /** gpu_seconds of the *current* plan (valid iff !plan_dirty). */
    double cur_gpu_seconds = 0.0;
};

/** One tail slot whose availability moved when a winner was applied. */
struct SlotChange
{
    int t = 0;
    /** min(before, after) — lower bound on free GPUs across the edit. */
    GpuCount min_avail = 0;
    bool increased = false;
};

/** One marginal-return queue entry; stale when epoch lags the slot. */
struct HeapEntry
{
    double priority = 0.0;
    bool is_slo = false;
    std::uint32_t index = 0;
    std::uint32_t epoch = 0;
};

/**
 * Orders the heap exactly like the reference scan: highest priority
 * first; on ties SLO candidates beat best-effort ones (the reference
 * scans SLO jobs first and only replaces on strict improvement), and
 * within a class the lower index wins.
 */
struct EntryWorse
{
    bool operator()(const HeapEntry &a, const HeapEntry &b) const
    {
        if (a.priority != b.priority)
            return a.priority < b.priority;
        if (a.is_slo != b.is_slo)
            return b.is_slo;
        return a.index > b.index;
    }
};

/**
 * progressive_fill specialized for the certificate "no tail slot can
 * clip any level": the caller proved min(available[1..slots)) >=
 * curve.max_useful(), so every fill operation would compute
 * usable(min(level, avail)) == usable(level) — the walk is a pure
 * function of (curve, remaining, horizon) and the per-level plan
 * vector never needs materializing until a level succeeds. The
 * arithmetic replicates progressive_fill's operation sequence exactly
 * (same values, same order, same epsilon test), so the returned plan,
 * the success/failure verdict, and the cost units are all
 * bit-identical to what the general fill would produce. Earliest
 * direction, start slot 1 (the allocator's tail re-fill shape).
 */
std::optional<SlotPlan>
unclipped_refill(const ScalingCurve &curve, double remaining_iterations,
                 const PlanHorizon &horizon, Time dt, std::uint64_t *cost)
{
    const int slots = horizon.slots;
    if (slots <= 1)
        return std::nullopt;  // start_slot 1 is already past the window
    const GpuCount max_useful = curve.max_useful();
    for (GpuCount level = curve.min_workers();
         level != 0 && level <= max_useful;
         level = (level < max_useful ? level * 2 : 0)) {
        const GpuCount x = curve.usable(level);
        const double tpt = curve.throughput(x);
        double remaining = remaining_iterations;
        for (int t = 1; t < slots; ++t) {
            if (cost != nullptr)
                ++*cost;
            const double cap =
                t == slots - 1 ? dt * horizon.last_weight : dt;
            remaining -= tpt * cap;
            if (remaining <= kIterEpsilon) {
                // progressive_fill's trimmed plan for this walk: x in
                // every visited slot [1, t], nothing after.
                SlotPlan plan;
                plan.gpus.assign(static_cast<std::size_t>(t) + 1, x);
                plan.gpus[0] = 0;
                return plan;
            }
        }
    }
    return std::nullopt;
}

}  // namespace

AllocationOutcome
run_allocation_reference(const PlannerConfig &config, Time now,
                         const std::vector<PlanningJob> &slo_jobs,
                         const std::map<JobId, SlotPlan> &min_share_plans,
                         const std::vector<PlanningJob> &best_effort_jobs)
{
    EF_CHECK(config.total_gpus > 0 && config.slot_seconds > 0.0);
    const Time dt = config.slot_seconds;

    // Planning horizon: the farthest SLO deadline.
    int horizon = 1;
    std::vector<PlanHorizon> slo_horizon(slo_jobs.size());
    for (std::size_t i = 0; i < slo_jobs.size(); ++i) {
        EF_CHECK_MSG(!slo_jobs[i].best_effort(),
                     "job " << slo_jobs[i].id
                            << " without deadline passed as SLO");
        slo_horizon[i] = plan_horizon(now, slo_jobs[i].deadline,
                                      dt, config.max_slots);
        horizon = std::max(horizon, slo_horizon[i].slots);
    }

    // Start from the minimum satisfactory shares.
    std::vector<SlotPlan> plan(slo_jobs.size());
    std::vector<GpuCount> available(static_cast<std::size_t>(horizon),
                                    config.total_gpus);
    for (std::size_t i = 0; i < slo_jobs.size(); ++i) {
        auto it = min_share_plans.find(slo_jobs[i].id);
        EF_CHECK_MSG(it != min_share_plans.end(),
                     "job " << slo_jobs[i].id
                            << " has no minimum satisfactory share");
        plan[i] = it->second;
        EF_CHECK(plan[i].horizon() <= horizon);
        for (int t = 0; t < plan[i].horizon(); ++t) {
            GpuCount &a = available[static_cast<std::size_t>(t)];
            a -= plan[i].at(t);
            EF_CHECK_MSG(a >= 0, "minimum shares exceed the cluster");
        }
    }

    std::vector<GpuCount> be_gpus(best_effort_jobs.size(), 0);
    for (const PlanningJob &job : best_effort_jobs) {
        EF_CHECK_MSG(job.best_effort(),
                     "job " << job.id << " with deadline passed as "
                            << "best-effort");
    }

    // Candidate construction.
    auto slo_candidate = [&](std::size_t i) {
        Candidate cand;
        const PlanningJob &job = slo_jobs[i];
        if (job.remaining_iterations <= kIterEpsilon)
            return cand;
        GpuCount g0 = plan[i].at(0);
        GpuCount g0n = job.curve.next_step(g0);
        if (g0n == 0)
            return cand;
        GpuCount delta = g0n - g0;
        if (delta > available[0])
            return cand;
        const PlanHorizon &d = slo_horizon[i];
        if (d.slots < 1)
            return cand;

        // Re-fill the tail with the bumped slot-0 allocation, against
        // availability with this job's own reservation returned.
        std::vector<GpuCount> avail_self(available.begin(),
                                         available.end());
        for (int t = 1; t < plan[i].horizon(); ++t)
            avail_self[static_cast<std::size_t>(t)] += plan[i].at(t);

        double slot0_capacity = d.slots == 1 ? dt * d.last_weight : dt;
        double rem_after0 = job.remaining_iterations -
                            job.curve.throughput(g0n) * slot0_capacity;
        SlotPlan candidate_plan;
        if (rem_after0 <= kIterEpsilon) {
            candidate_plan.gpus = {g0n};
        } else {
            PlanningJob tail = job;
            tail.remaining_iterations = rem_after0;
            // The refilled tail always packs earliest: boosting only
            // makes sense if it pulls the finish time forward, which a
            // latest-packed tail by construction never would.
            PlannerConfig refill_config = config;
            refill_config.direction = FillDirection::kEarliest;
            auto fill = progressive_fill(tail, avail_self, d,
                                         refill_config, 1);
            if (!fill.has_value())
                return cand;  // bump cannot keep the deadline
            candidate_plan = std::move(*fill);
            if (candidate_plan.horizon() < 1)
                candidate_plan.gpus.resize(1, 0);
            candidate_plan.gpus[0] = g0n;
        }

        Time finish_cur = plan_finish_seconds(
            job.curve, plan[i], job.remaining_iterations, dt);
        Time finish_new = plan_finish_seconds(
            job.curve, candidate_plan, job.remaining_iterations, dt);
        if (!(finish_new < finish_cur - kFinishEpsilon))
            return cand;  // Algorithm 2 line 10: must speed the job up

        cand.valid = true;
        cand.delta = delta;
        cand.priority = (plan[i].gpu_seconds(dt) -
                         candidate_plan.gpu_seconds(dt)) /
                        static_cast<double>(delta);
        cand.new_plan = std::move(candidate_plan);
        return cand;
    };

    auto be_candidate = [&](std::size_t j) {
        Candidate cand;
        const PlanningJob &job = best_effort_jobs[j];
        if (job.remaining_iterations <= kIterEpsilon)
            return cand;
        GpuCount g = be_gpus[j];
        GpuCount gn = job.curve.next_step(g);
        if (gn == 0)
            return cand;
        GpuCount delta = gn - g;
        if (delta > available[0])
            return cand;
        cand.valid = true;
        cand.delta = delta;
        cand.new_gpus = gn;
        if (g == 0) {
            cand.priority = kStartPriority;
        } else {
            cand.priority = (best_effort_gpu_seconds(job, g) -
                             best_effort_gpu_seconds(job, gn)) /
                            static_cast<double>(delta);
        }
        return cand;
    };

    // Greedy loop: hand out slot-0 GPUs to the best marginal return.
    while (available[0] > 0) {
        Candidate best;
        bool best_is_slo = false;
        std::size_t best_index = 0;
        for (std::size_t i = 0; i < slo_jobs.size(); ++i) {
            Candidate cand = slo_candidate(i);
            if (cand.valid &&
                (!best.valid || cand.priority > best.priority)) {
                best = std::move(cand);
                best_is_slo = true;
                best_index = i;
            }
        }
        for (std::size_t j = 0; j < best_effort_jobs.size(); ++j) {
            Candidate cand = be_candidate(j);
            if (cand.valid &&
                (!best.valid || cand.priority > best.priority)) {
                best = std::move(cand);
                best_is_slo = false;
                best_index = j;
            }
        }
        if (!best.valid)
            break;  // constraint (7): no job can use more GPUs

        if (best_is_slo) {
            // Return the old reservation, charge the new plan.
            for (int t = 0; t < plan[best_index].horizon(); ++t) {
                available[static_cast<std::size_t>(t)] +=
                    plan[best_index].at(t);
            }
            for (int t = 0; t < best.new_plan.horizon(); ++t) {
                GpuCount &a = available[static_cast<std::size_t>(t)];
                a -= best.new_plan.at(t);
                EF_CHECK(a >= 0);
            }
            plan[best_index] = std::move(best.new_plan);
        } else {
            available[0] -= best.delta;
            be_gpus[best_index] = best.new_gpus;
        }
    }

    AllocationOutcome outcome;
    for (std::size_t i = 0; i < slo_jobs.size(); ++i) {
        outcome.gpus_now[slo_jobs[i].id] = plan[i].at(0);
        outcome.plans[slo_jobs[i].id] = std::move(plan[i]);
    }
    for (std::size_t j = 0; j < best_effort_jobs.size(); ++j)
        outcome.gpus_now[best_effort_jobs[j].id] = be_gpus[j];
    outcome.unallocated = available[0];
    return outcome;
}

/*
 * Incremental formulation of the same greedy. The reference rebuilds
 * every candidate on every iteration, which is O(jobs × horizon) work
 * per handed-out GPU step. Here each job's candidate is computed once
 * and pushed into a lazy max-heap; after a winner is applied, only the
 * candidates its availability change can actually affect are
 * recomputed:
 *
 *  - A best-effort winner consumes slot-0 GPUs only. No other
 *    candidate's *content* depends on slot-0 headroom — only the
 *    "does my delta still fit" gate, which is revalidated lazily on
 *    pop (slot-0 headroom shrinks monotonically, so a failed gate is
 *    permanent).
 *  - An SLO winner additionally changes tail-slot availability where
 *    its old and new plans differ. Only SLO candidates whose horizon
 *    reaches the first changed tail slot can see that change (their
 *    re-fill reads slots [1, horizon)), so exactly those are
 *    recomputed — including previously invalid ones, which may become
 *    feasible when a winner frees tail capacity.
 *
 * Stale heap entries are detected by a per-job epoch. Invariant: the
 * set of fresh heap entries always equals the set of valid candidates
 * the reference would compute at the same point, so popping the heap
 * (with reference tie-breaking baked into the comparator) selects the
 * identical winner and the two implementations produce byte-identical
 * outcomes. tests/test_allocator_equivalence.cc fuzzes this claim.
 *
 * Shard-parallel mode (conc != nullptr, DESIGN.md §10) keeps that
 * invariant while changing only *how* the same numbers are computed:
 *
 *  - The initial candidate pass is sharded by job rank (i mod shards),
 *    each shard computing its candidates into disjoint state slots
 *    with private scratch; results are then pushed into the heap
 *    sequentially in ascending job order — the identical push
 *    sequence the classic pass produces, so the heap (and every
 *    subsequent pop) cannot depend on thread interleaving.
 *  - Tail re-fills take the unclipped_refill fast path whenever the
 *    job's window provably cannot clip (min tail availability >=
 *    max_useful), which is the common case on underloaded
 *    megaclusters.
 *  - The per-winner affected scan is skipped outright when every
 *    changed slot kept >= the *global* max max_useful GPUs free
 *    (changed_min >= slo_max_all): each per-job certificate
 *    pref_min[d] >= slo_max_useful[k] is then implied, and a skipped
 *    scan iteration has no side effects, so eliding the whole O(n)
 *    loop is exact.
 *
 * Both fast paths reproduce the classic computation bit for bit;
 * tests/test_sharded_planner.cc fuzzes sharded-vs-classic equality
 * and the state-hash tests pin full-simulation equality.
 */
namespace {

AllocationOutcome
run_allocation_impl(const PlannerConfig &config, Time now,
                    const std::vector<PlanningJob> &slo_jobs,
                    const std::map<JobId, SlotPlan> &min_share_plans,
                    const std::vector<PlanningJob> &best_effort_jobs,
                    const PlannerConcurrency *conc,
                    ShardRoundStats *stats)
{
    EF_CHECK(config.total_gpus > 0 && config.slot_seconds > 0.0);
    const Time dt = config.slot_seconds;
    const std::size_t n = slo_jobs.size();
    const std::size_t m = best_effort_jobs.size();

    const int nshards =
        conc != nullptr ? std::max(1, conc->shards) : 1;
    // A caller-provided stats object accumulates across phases (the
    // refresh and the allocation of one round share it) and the caller
    // emits; without one, a sharded run meters and emits locally.
    ShardRoundStats local_stats;
    const bool emit_here = conc != nullptr && stats == nullptr;
    if (emit_here)
        stats = &local_stats;
    if (stats != nullptr &&
        stats->shard_cost.size() < static_cast<std::size_t>(nshards))
        stats->shard_cost.resize(static_cast<std::size_t>(nshards), 0);

    // Planning horizon: the farthest SLO deadline.
    int horizon = 1;
    std::vector<PlanHorizon> slo_horizon(n);
    std::vector<GpuCount> slo_max_useful(n);
    GpuCount slo_max_all = 0;
    for (std::size_t i = 0; i < n; ++i) {
        EF_CHECK_MSG(!slo_jobs[i].best_effort(),
                     "job " << slo_jobs[i].id
                            << " without deadline passed as SLO");
        slo_horizon[i] = plan_horizon(now, slo_jobs[i].deadline,
                                      dt, config.max_slots);
        horizon = std::max(horizon, slo_horizon[i].slots);
        slo_max_useful[i] = slo_jobs[i].curve.max_useful();
        slo_max_all = std::max(slo_max_all, slo_max_useful[i]);
    }

    // Start from the minimum satisfactory shares.
    std::vector<SlotPlan> plan(n);
    std::vector<GpuCount> available(static_cast<std::size_t>(horizon),
                                    config.total_gpus);
    for (std::size_t i = 0; i < n; ++i) {
        auto it = min_share_plans.find(slo_jobs[i].id);
        EF_CHECK_MSG(it != min_share_plans.end(),
                     "job " << slo_jobs[i].id
                            << " has no minimum satisfactory share");
        plan[i] = it->second;
        EF_CHECK(plan[i].horizon() <= horizon);
        for (int t = 0; t < plan[i].horizon(); ++t) {
            GpuCount &a = available[static_cast<std::size_t>(t)];
            a -= plan[i].at(t);
            EF_CHECK_MSG(a >= 0, "minimum shares exceed the cluster");
        }
    }

    std::vector<GpuCount> be_gpus(m, 0);
    for (const PlanningJob &job : best_effort_jobs) {
        EF_CHECK_MSG(job.best_effort(),
                     "job " << job.id << " with deadline passed as "
                            << "best-effort");
    }

    PlannerConfig refill_config = config;
    refill_config.direction = FillDirection::kEarliest;

    std::vector<CandidateSlot> slo_state(n);
    std::vector<CandidateSlot> be_state(m);
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, EntryWorse>
        heap;
    // Scratch availability-with-own-reservation buffer, reused across
    // every candidate computation instead of allocated per candidate.
    std::vector<GpuCount> avail_self;
    avail_self.reserve(static_cast<std::size_t>(horizon));
    // Per-winner scratch: changed tail slots and their prefix
    // certificates (reused, never reallocated after warm-up).
    std::vector<SlotChange> changes;
    std::vector<GpuCount> pref_min(static_cast<std::size_t>(horizon) + 1);
    std::vector<bool> pref_inc(static_cast<std::size_t>(horizon) + 1);

    // Candidate recompute, split into compute + heap push so the
    // sharded initial pass can run computes in parallel (disjoint
    // slo_state slots, caller-owned scratch) and push sequentially.
    auto compute_slo_into = [&](std::size_t i,
                                std::vector<GpuCount> &scratch,
                                std::uint64_t *fill_cost) {
        CandidateSlot &st = slo_state[i];
        ++st.epoch;
        st.cand.valid = false;
        st.why = InvalidWhy::kNone;
        if (st.dead)
            return;
        const PlanningJob &job = slo_jobs[i];
        if (job.remaining_iterations <= kIterEpsilon) {
            st.dead = true;
            return;
        }
        GpuCount g0 = plan[i].at(0);
        GpuCount g0n = job.curve.next_step(g0);
        if (g0n == 0) {
            // plan[i].at(0) only changes when i wins, and i cannot win
            // while invalid — permanent until then.
            st.dead = true;
            return;
        }
        GpuCount delta = g0n - g0;
        EF_DCHECK_MSG(delta > 0, "next_step did not grow job "
                                     << job.id << " (" << g0 << " -> "
                                     << g0n << ")");
        if (delta > available[0]) {
            st.dead = true;  // slot-0 headroom never grows back
            return;
        }
        const PlanHorizon &d = slo_horizon[i];
        if (d.slots < 1) {
            st.dead = true;
            return;
        }

        // The current plan's finish time and GPU-seconds change only
        // when this job wins, not when availability does.
        if (st.plan_dirty) {
            st.finish_cur = plan_finish_seconds(
                job.curve, plan[i], job.remaining_iterations, dt);
            st.cur_gpu_seconds = plan[i].gpu_seconds(dt);
            st.plan_dirty = false;
        }

        double slot0_capacity = d.slots == 1 ? dt * d.last_weight : dt;
        double rem_after0 = job.remaining_iterations -
                            job.curve.throughput(g0n) * slot0_capacity;
        SlotPlan candidate_plan;
        bool used_refill = false;
        if (rem_after0 <= kIterEpsilon) {
            candidate_plan.gpus = {g0n};
        } else {
            used_refill = true;
            EF_DCHECK(plan[i].horizon() <= d.slots);
            // Megacluster fast path (sharded mode only): if every tail
            // slot of the window keeps >= max_useful GPUs free, the
            // re-fill can never clip — availability (and the job's own
            // returned reservation, which only adds) is invisible to
            // it, so the specialized walk is exact. The scan breaks at
            // the first busy slot, bounding its cost on saturated
            // clusters where the certificate rarely holds.
            bool unclipped = conc != nullptr;
            if (unclipped) {
                const GpuCount need = slo_max_useful[i];
                for (int t = 1; t < d.slots; ++t) {
                    if (available[static_cast<std::size_t>(t)] < need) {
                        unclipped = false;
                        break;
                    }
                }
            }
            std::optional<SlotPlan> fill;
            if (unclipped) {
                fill = unclipped_refill(job.curve, rem_after0, d, dt,
                                        fill_cost);
            } else {
                // Re-fill the tail with the bumped slot-0 allocation,
                // against availability with this job's own reservation
                // returned. The scratch buffer only needs this job's
                // horizon: progressive_fill never reads past d.slots.
                scratch.assign(available.begin(),
                               available.begin() + d.slots);
                for (int t = 1; t < plan[i].horizon(); ++t)
                    scratch[static_cast<std::size_t>(t)] += plan[i].at(t);
                // The refilled tail always packs earliest: boosting
                // only makes sense if it pulls the finish time
                // forward, which a latest-packed tail by construction
                // never would.
                fill = progressive_fill(job.curve, rem_after0, scratch,
                                        d, refill_config, 1, fill_cost);
            }
            if (!fill.has_value()) {
                // Curable only by *more* tail capacity: the fill sum
                // is monotone in availability, so it keeps failing
                // while the job's window only loses GPUs.
                st.why = InvalidWhy::kRefillFail;
                return;
            }
            candidate_plan = std::move(*fill);
            if (candidate_plan.horizon() < 1)
                candidate_plan.gpus.resize(1, 0);
            candidate_plan.gpus[0] = g0n;
        }

        Time finish_new = plan_finish_seconds(
            job.curve, candidate_plan, job.remaining_iterations, dt);
        if (!(finish_new < st.finish_cur - kFinishEpsilon)) {
            // Algorithm 2 line 10: must speed the job up. When the
            // bump finishes inside slot 0 the candidate read no
            // availability at all, so no future change can flip it.
            if (!used_refill)
                st.dead = true;
            else
                st.why = InvalidWhy::kNotFaster;
            return;
        }

        st.cand.valid = true;
        st.cand.delta = delta;
        st.cand.priority = (st.cur_gpu_seconds -
                            candidate_plan.gpu_seconds(dt)) /
                           static_cast<double>(delta);
        st.cand.new_plan = std::move(candidate_plan);
    };

    auto push_slo = [&](std::size_t i) {
        const CandidateSlot &st = slo_state[i];
        if (st.cand.valid)
            heap.push(HeapEntry{st.cand.priority, true,
                                static_cast<std::uint32_t>(i),
                                st.epoch});
    };

    // Greedy-phase recomputes stay sequential; meter their fill work
    // to the owning shard so imbalance telemetry covers the round.
    auto slo_fill_cost = [&](std::size_t i) -> std::uint64_t * {
        if (stats == nullptr)
            return nullptr;
        return &stats->shard_cost[i % static_cast<std::size_t>(nshards)];
    };

    auto compute_slo = [&](std::size_t i) {
        compute_slo_into(i, avail_self, slo_fill_cost(i));
        push_slo(i);
    };

    auto compute_be = [&](std::size_t j) {
        CandidateSlot &st = be_state[j];
        ++st.epoch;
        st.cand.valid = false;
        if (st.dead)
            return;
        const PlanningJob &job = best_effort_jobs[j];
        if (job.remaining_iterations <= kIterEpsilon) {
            st.dead = true;
            return;
        }
        GpuCount g = be_gpus[j];
        GpuCount gn = job.curve.next_step(g);
        if (gn == 0) {
            st.dead = true;
            return;
        }
        GpuCount delta = gn - g;
        EF_DCHECK_MSG(delta > 0, "next_step did not grow job "
                                     << job.id << " (" << g << " -> "
                                     << gn << ")");
        if (delta > available[0]) {
            st.dead = true;
            return;
        }
        st.cand.valid = true;
        st.cand.delta = delta;
        st.cand.new_gpus = gn;
        if (g == 0) {
            st.cand.priority = kStartPriority;
        } else {
            st.cand.priority = (best_effort_gpu_seconds(job, g) -
                                best_effort_gpu_seconds(job, gn)) /
                               static_cast<double>(delta);
        }
        heap.push(HeapEntry{st.cand.priority, false,
                            static_cast<std::uint32_t>(j), st.epoch});
    };

    if (conc != nullptr && n > 0) {
        // Shard phase: candidate i belongs to shard i mod nshards — a
        // fixed function of job rank. Shards write disjoint slo_state
        // slots with private scratch and cost cells; nothing shared is
        // mutated, so the results are independent of interleaving.
        std::vector<std::vector<GpuCount>> shard_scratch(
            static_cast<std::size_t>(nshards));
        std::vector<std::uint64_t> shard_cost(
            static_cast<std::size_t>(nshards), 0);
        for (auto &scratch : shard_scratch)
            scratch.reserve(static_cast<std::size_t>(horizon));
        parallel_for(conc->pool, nshards, [&](int s) {
            const auto shard = static_cast<std::size_t>(s);
            for (std::size_t i = shard; i < n;
                 i += static_cast<std::size_t>(nshards))
                compute_slo_into(i, shard_scratch[shard],
                                 &shard_cost[shard]);
        });
        if (stats != nullptr) {
            for (std::size_t s = 0; s < shard_cost.size(); ++s)
                stats->shard_cost[s] += shard_cost[s];
        }
        // Merge: push in ascending job order — the exact sequence the
        // classic sequential pass produces, whatever the thread
        // schedule did above.
        for (std::size_t i = 0; i < n; ++i)
            push_slo(i);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            compute_slo(i);
    }
    for (std::size_t j = 0; j < m; ++j)
        compute_be(j);

    // Greedy loop: hand out slot-0 GPUs to the best marginal return.
    while (available[0] > 0 && !heap.empty()) {
        HeapEntry top = heap.top();
        CandidateSlot &st = top.is_slo ? slo_state[top.index]
                                       : be_state[top.index];
        heap.pop();
        if (top.epoch != st.epoch || !st.cand.valid)
            continue;  // stale entry from before a recompute
        if (st.cand.delta > available[0]) {
            // Lazy slot-0 revalidation: the headroom shrank since this
            // candidate was computed and can never grow back.
            st.cand.valid = false;
            st.dead = true;
            ++st.epoch;
            continue;
        }

        if (top.is_slo) {
            const std::size_t i = top.index;
            // Return the old reservation, charge the new plan, and
            // record which tail slots actually moved (ascending t).
            SlotPlan &new_plan = st.cand.new_plan;
            int max_h = std::max(plan[i].horizon(), new_plan.horizon());
            changes.clear();
            GpuCount changed_min = std::numeric_limits<GpuCount>::max();
            for (int t = 0; t < max_h; ++t) {
                GpuCount diff = plan[i].at(t) - new_plan.at(t);
                if (diff == 0)
                    continue;
                GpuCount &a = available[static_cast<std::size_t>(t)];
                GpuCount before = a;
                a += diff;
                // Per-winner per-slot: debug-only (the reference
                // allocator keeps the always-on EF_CHECK and the
                // equivalence fuzz pins both to the same outcome).
                EF_DCHECK(a >= 0);
                if (t >= 1) {
                    const GpuCount low = std::min(before, a);
                    changes.push_back(SlotChange{t, low, diff > 0});
                    changed_min = std::min(changed_min, low);
                }
            }
            plan[i] = std::move(new_plan);
            st.plan_dirty = true;
            compute_slo(i);
            if (conc != nullptr && !changes.empty() &&
                changed_min >= slo_max_all) {
                // Whole-scan skip (sharded mode): every changed slot
                // kept >= the global max max_useful GPUs free on both
                // sides of the edit, so for every job k the per-job
                // certificate pref_min[d] >= slo_max_useful[k] below
                // would hold and its scan iteration would be a no-op.
                // Skipping the O(n) loop outright is therefore exact.
            } else if (!changes.empty()) {
                // Prefix certificates over the changed slots: a job
                // with horizon d sees changes [1, d) only, so
                // pref_min[d] / pref_inc[d] summarize them.
                std::size_t c = 0;
                GpuCount run_min =
                    std::numeric_limits<GpuCount>::max();
                bool run_inc = false;
                int last_t = changes.back().t;
                for (int d = 1; d <= last_t + 1; ++d) {
                    while (c < changes.size() && changes[c].t < d) {
                        run_min = std::min(run_min, changes[c].min_avail);
                        run_inc = run_inc || changes[c].increased;
                        ++c;
                    }
                    pref_min[static_cast<std::size_t>(d)] = run_min;
                    pref_inc[static_cast<std::size_t>(d)] = run_inc;
                }
                const int first_changed = changes.front().t;
                for (std::size_t k = 0; k < n; ++k) {
                    if (k == i || slo_state[k].dead)
                        continue;
                    int d = std::min(slo_horizon[k].slots, last_t + 1);
                    if (d <= first_changed)
                        continue;  // no change inside the window
                    // Every changed slot in the window kept at least
                    // max_useful GPUs free both before and after, so
                    // the re-fill (which reads usable(min(level,
                    // avail)) with level <= max_useful) is provably
                    // unchanged.
                    if (pref_min[static_cast<std::size_t>(d)] >=
                        slo_max_useful[k])
                        continue;
                    // A failed re-fill stays failed while the window
                    // only loses GPUs; only an increase can cure it.
                    if (slo_state[k].why == InvalidWhy::kRefillFail &&
                        !pref_inc[static_cast<std::size_t>(d)])
                        continue;
                    compute_slo(k);
                }
            }
        } else {
            const std::size_t j = top.index;
            available[0] -= st.cand.delta;
            be_gpus[j] = st.cand.new_gpus;
            compute_be(j);
        }
    }

    AllocationOutcome outcome;
    for (std::size_t i = 0; i < n; ++i) {
        outcome.gpus_now[slo_jobs[i].id] = plan[i].at(0);
        outcome.plans[slo_jobs[i].id] = std::move(plan[i]);
    }
    for (std::size_t j = 0; j < m; ++j)
        outcome.gpus_now[best_effort_jobs[j].id] = be_gpus[j];
    outcome.unallocated = available[0];
    if (emit_here)
        emit_shard_round(now, *stats);
    obs::count("core.allocation.runs");
    if (obs::tracing()) {
        obs::TraceEvent round{now, obs::EventKind::kAllocationRound,
                              kInvalidJob,
                              static_cast<std::int64_t>(n),
                              static_cast<std::int64_t>(m)};
        round.x = static_cast<double>(outcome.unallocated);
        obs::emit(round);
    }
    return outcome;
}

}  // namespace

AllocationOutcome
run_allocation(const PlannerConfig &config, Time now,
               const std::vector<PlanningJob> &slo_jobs,
               const std::map<JobId, SlotPlan> &min_share_plans,
               const std::vector<PlanningJob> &best_effort_jobs)
{
    return run_allocation_impl(config, now, slo_jobs, min_share_plans,
                               best_effort_jobs, /*conc=*/nullptr,
                               /*stats=*/nullptr);
}

AllocationOutcome
run_allocation_sharded(const PlannerConfig &config, Time now,
                       const std::vector<PlanningJob> &slo_jobs,
                       const std::map<JobId, SlotPlan> &min_share_plans,
                       const std::vector<PlanningJob> &best_effort_jobs,
                       const PlannerConcurrency &concurrency,
                       ShardRoundStats *stats)
{
    return run_allocation_impl(config, now, slo_jobs, min_share_plans,
                               best_effort_jobs, &concurrency, stats);
}

}  // namespace ef

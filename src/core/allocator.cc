#include "core/allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace ef {
namespace {

constexpr double kIterEpsilon = 1e-7;
constexpr double kFinishEpsilon = 1e-9;
/** Priority of starting an idle best-effort job (always first). */
constexpr double kStartPriority = std::numeric_limits<double>::infinity();

/** GPU-seconds to finish a best-effort job at a fixed GPU count. */
double
best_effort_gpu_seconds(const PlanningJob &job, GpuCount gpus)
{
    if (gpus <= 0)
        return std::numeric_limits<double>::infinity();
    double tpt = job.curve.throughput(gpus);
    EF_CHECK(tpt > 0.0);
    return job.remaining_iterations / tpt * static_cast<double>(gpus);
}

/** A considered upgrade for one job. */
struct Candidate
{
    bool valid = false;
    double priority = 0.0;   ///< GPU-seconds saved per GPU added
    GpuCount delta = 0;      ///< extra GPUs consumed in slot 0
    SlotPlan new_plan;       ///< SLO only
    GpuCount new_gpus = 0;   ///< best-effort only
};

}  // namespace

AllocationOutcome
run_allocation(const PlannerConfig &config, Time now,
               const std::vector<PlanningJob> &slo_jobs,
               const std::map<JobId, SlotPlan> &min_share_plans,
               const std::vector<PlanningJob> &best_effort_jobs)
{
    EF_CHECK(config.total_gpus > 0 && config.slot_seconds > 0.0);
    const Time dt = config.slot_seconds;

    // Planning horizon: the farthest SLO deadline.
    int horizon = 1;
    std::vector<PlanHorizon> slo_horizon(slo_jobs.size());
    for (std::size_t i = 0; i < slo_jobs.size(); ++i) {
        EF_CHECK_MSG(!slo_jobs[i].best_effort(),
                     "job " << slo_jobs[i].id
                            << " without deadline passed as SLO");
        slo_horizon[i] = plan_horizon(now, slo_jobs[i].deadline,
                                      dt, config.max_slots);
        horizon = std::max(horizon, slo_horizon[i].slots);
    }

    // Start from the minimum satisfactory shares.
    std::vector<SlotPlan> plan(slo_jobs.size());
    std::vector<GpuCount> available(static_cast<std::size_t>(horizon),
                                    config.total_gpus);
    for (std::size_t i = 0; i < slo_jobs.size(); ++i) {
        auto it = min_share_plans.find(slo_jobs[i].id);
        EF_CHECK_MSG(it != min_share_plans.end(),
                     "job " << slo_jobs[i].id
                            << " has no minimum satisfactory share");
        plan[i] = it->second;
        EF_CHECK(plan[i].horizon() <= horizon);
        for (int t = 0; t < plan[i].horizon(); ++t) {
            GpuCount &a = available[static_cast<std::size_t>(t)];
            a -= plan[i].at(t);
            EF_CHECK_MSG(a >= 0, "minimum shares exceed the cluster");
        }
    }

    std::vector<GpuCount> be_gpus(best_effort_jobs.size(), 0);
    for (const PlanningJob &job : best_effort_jobs) {
        EF_CHECK_MSG(job.best_effort(),
                     "job " << job.id << " with deadline passed as "
                            << "best-effort");
    }

    // Candidate construction.
    auto slo_candidate = [&](std::size_t i) {
        Candidate cand;
        const PlanningJob &job = slo_jobs[i];
        if (job.remaining_iterations <= kIterEpsilon)
            return cand;
        GpuCount g0 = plan[i].at(0);
        GpuCount g0n = job.curve.next_step(g0);
        if (g0n == 0)
            return cand;
        GpuCount delta = g0n - g0;
        if (delta > available[0])
            return cand;
        const PlanHorizon &d = slo_horizon[i];
        if (d.slots < 1)
            return cand;

        // Re-fill the tail with the bumped slot-0 allocation, against
        // availability with this job's own reservation returned.
        std::vector<GpuCount> avail_self(available.begin(),
                                         available.end());
        for (int t = 1; t < plan[i].horizon(); ++t)
            avail_self[static_cast<std::size_t>(t)] += plan[i].at(t);

        double slot0_capacity = d.slots == 1 ? dt * d.last_weight : dt;
        double rem_after0 = job.remaining_iterations -
                            job.curve.throughput(g0n) * slot0_capacity;
        SlotPlan candidate_plan;
        if (rem_after0 <= kIterEpsilon) {
            candidate_plan.gpus = {g0n};
        } else {
            PlanningJob tail = job;
            tail.remaining_iterations = rem_after0;
            // The refilled tail always packs earliest: boosting only
            // makes sense if it pulls the finish time forward, which a
            // latest-packed tail by construction never would.
            PlannerConfig refill_config = config;
            refill_config.direction = FillDirection::kEarliest;
            auto fill = progressive_fill(tail, avail_self, d,
                                         refill_config, 1);
            if (!fill.has_value())
                return cand;  // bump cannot keep the deadline
            candidate_plan = std::move(*fill);
            if (candidate_plan.horizon() < 1)
                candidate_plan.gpus.resize(1, 0);
            candidate_plan.gpus[0] = g0n;
        }

        Time finish_cur = plan_finish_seconds(
            job.curve, plan[i], job.remaining_iterations, dt);
        Time finish_new = plan_finish_seconds(
            job.curve, candidate_plan, job.remaining_iterations, dt);
        if (!(finish_new < finish_cur - kFinishEpsilon))
            return cand;  // Algorithm 2 line 10: must speed the job up

        cand.valid = true;
        cand.delta = delta;
        cand.priority = (plan[i].gpu_seconds(dt) -
                         candidate_plan.gpu_seconds(dt)) /
                        static_cast<double>(delta);
        cand.new_plan = std::move(candidate_plan);
        return cand;
    };

    auto be_candidate = [&](std::size_t j) {
        Candidate cand;
        const PlanningJob &job = best_effort_jobs[j];
        if (job.remaining_iterations <= kIterEpsilon)
            return cand;
        GpuCount g = be_gpus[j];
        GpuCount gn = job.curve.next_step(g);
        if (gn == 0)
            return cand;
        GpuCount delta = gn - g;
        if (delta > available[0])
            return cand;
        cand.valid = true;
        cand.delta = delta;
        cand.new_gpus = gn;
        if (g == 0) {
            cand.priority = kStartPriority;
        } else {
            cand.priority = (best_effort_gpu_seconds(job, g) -
                             best_effort_gpu_seconds(job, gn)) /
                            static_cast<double>(delta);
        }
        return cand;
    };

    // Greedy loop: hand out slot-0 GPUs to the best marginal return.
    while (available[0] > 0) {
        Candidate best;
        bool best_is_slo = false;
        std::size_t best_index = 0;
        for (std::size_t i = 0; i < slo_jobs.size(); ++i) {
            Candidate cand = slo_candidate(i);
            if (cand.valid &&
                (!best.valid || cand.priority > best.priority)) {
                best = std::move(cand);
                best_is_slo = true;
                best_index = i;
            }
        }
        for (std::size_t j = 0; j < best_effort_jobs.size(); ++j) {
            Candidate cand = be_candidate(j);
            if (cand.valid &&
                (!best.valid || cand.priority > best.priority)) {
                best = std::move(cand);
                best_is_slo = false;
                best_index = j;
            }
        }
        if (!best.valid)
            break;  // constraint (7): no job can use more GPUs

        if (best_is_slo) {
            // Return the old reservation, charge the new plan.
            for (int t = 0; t < plan[best_index].horizon(); ++t) {
                available[static_cast<std::size_t>(t)] +=
                    plan[best_index].at(t);
            }
            for (int t = 0; t < best.new_plan.horizon(); ++t) {
                GpuCount &a = available[static_cast<std::size_t>(t)];
                a -= best.new_plan.at(t);
                EF_CHECK(a >= 0);
            }
            plan[best_index] = std::move(best.new_plan);
        } else {
            available[0] -= best.delta;
            be_gpus[best_index] = best.new_gpus;
        }
    }

    AllocationOutcome outcome;
    for (std::size_t i = 0; i < slo_jobs.size(); ++i) {
        outcome.gpus_now[slo_jobs[i].id] = plan[i].at(0);
        outcome.plans[slo_jobs[i].id] = std::move(plan[i]);
    }
    for (std::size_t j = 0; j < best_effort_jobs.size(); ++j)
        outcome.gpus_now[best_effort_jobs[j].id] = be_gpus[j];
    outcome.unallocated = available[0];
    return outcome;
}

}  // namespace ef

/**
 * @file
 * Shard-parallel planning configuration (DESIGN.md §10).
 *
 * The planner entry points (`run_allocation_sharded`,
 * `refresh_min_shares_sharded`) accept a PlannerConcurrency describing
 * how to split one planning round into per-pod shards and which thread
 * pool to run the shard phase on. The determinism contract is central:
 * a sharded round produces *bit-identical* decisions — plans, costs,
 * and therefore RunResult::state_hash — to the classic single-threaded
 * round, for every shard count and thread count. Sharding is a pure
 * execution strategy, never a policy change.
 */
#ifndef EF_CORE_PLANNER_CONCURRENCY_H_
#define EF_CORE_PLANNER_CONCURRENCY_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ef {

class ThreadPool;

/** How one planning round is sharded and scheduled. */
struct PlannerConcurrency
{
    /**
     * Number of planner shards (>= 1). Shard membership is a fixed
     * function of job rank (rank mod shards, in the planner's
     * deterministic sort order), so the decomposition never depends on
     * thread completion order.
     */
    int shards = 1;

    /**
     * Worker pool for the shard phase; null runs shards inline on the
     * caller (still exercising the full shard/merge code path, which
     * is what the determinism tests rely on).
     */
    ThreadPool *pool = nullptr;

    /**
     * Per-shard speculation capacity in GPUs (pod sizes from
     * cluster/shard.h). When empty, capacity is split evenly across
     * shards. Slices only bound *speculative* per-shard fills; the
     * sequential merge re-bids any job whose speculation was clipped,
     * so total capacity — and the final decision — is unaffected.
     */
    std::vector<GpuCount> shard_gpus;
};

/** Per-round shard telemetry (feeds obs spans + imbalance metrics). */
struct ShardRoundStats
{
    /** Deterministic planning cost units spent inside each shard. */
    std::vector<std::uint64_t> shard_cost;
    /** Jobs whose speculative shard fill was adopted verbatim. */
    std::uint64_t adopted = 0;
    /** Jobs re-planned by the sequential cross-shard balancer. */
    std::uint64_t rebid = 0;
};

/**
 * Emit one round's shard telemetry: a kShardPlan trace event per shard
 * (a = shard index, b = cost units) and the `planner.shard_imbalance`
 * histogram observation (max/mean shard cost). Observability only —
 * never feeds back into planning state. No-op when the round recorded
 * no shards.
 */
void emit_shard_round(Time now, const ShardRoundStats &stats);

/**
 * Per-shard speculation capacities for a cluster of @p total_gpus.
 * Uses @p shard_gpus (pod sizes) verbatim when it has exactly
 * @p shards entries summing to @p total_gpus; otherwise falls back to
 * an even split (remainder spread over the leading shards). The
 * fallback keeps sharded planning well-defined when faults shrink the
 * cluster below the configured pod layout — slices only bound
 * speculation, so the fallback never changes the planned outcome.
 */
std::vector<GpuCount> shard_capacity_slices(
    GpuCount total_gpus, int shards,
    const std::vector<GpuCount> &shard_gpus);

}  // namespace ef

#endif  // EF_CORE_PLANNER_CONCURRENCY_H_

/**
 * @file
 * Admission control via Minimum Satisfactory Share (paper §4.1,
 * Algorithm 1).
 *
 * The minimum satisfactory share of a job is the least allocation
 * profile that meets its deadline given what earlier-deadline jobs
 * already reserved. Admission sorts jobs by deadline and progressively
 * fills each one: it raises a per-job GPU level j (a power of two) and
 * assigns x_i(t) = usable(min(j, available(t))) in each slot until the
 * job's remaining iterations fit before its deadline. A new job is
 * admitted iff this succeeds for *every* job with the new job included
 * — i.e. admitting it cannot break any already-admitted deadline.
 */
#ifndef EF_CORE_ADMISSION_H_
#define EF_CORE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/allocation_plan.h"

namespace ef {

/** Which slots a fill occupies when a job needs fewer than all. */
enum class FillDirection {
    kEarliest,  ///< run as soon as possible (frees GPUs early; default)
    kLatest,    ///< run as late as possible (paper's Algorithm 1 order)
};

/** Static parameters of one planning pass. */
struct PlannerConfig
{
    GpuCount total_gpus = 0;
    Time slot_seconds = 300.0;
    FillDirection direction = FillDirection::kEarliest;
    /** Upper bound on planning horizon slots (guards runaway input). */
    int max_slots = 1 << 16;
};

/** Result of Algorithm 1 over a job set. */
struct AdmissionOutcome
{
    bool feasible = false;
    /** Minimum-satisfactory-share plan per job (iff feasible). */
    std::map<JobId, SlotPlan> plans;
    /**
     * Planning cost of this pass in deterministic work units (one unit
     * per slot touched by progressive filling, summed over all level
     * attempts of all jobs). A pure function of the input — never of
     * wall clock — so cost-based policies (the service watchdog)
     * replay identically.
     */
    std::uint64_t cost = 0;
};

/**
 * How one progressive fill interacted with the capacity profile.
 * Filled in by progressive_fill when requested; consumed by the
 * shard-parallel planner's speculation/merge certificate.
 */
struct FillProbe
{
    /** Some fill operation of some attempted level saw
     *  available(t) < level (the level was capacity-clipped). */
    bool clipped = false;
    /** The level the successful fill ran at (0 when the fill failed
     *  or nothing was left to do). Every attempted level is <= it. */
    GpuCount level = 0;
};

/**
 * ProgressiveFilling for one job: the smallest GPU level whose
 * per-slot allocation min(level, available) finishes
 * @p job.remaining_iterations within the horizon (the final slot
 * contributes only its usable fraction). Slots [0, start_slot) are
 * untouched (used by Algorithm 2's re-fill with a fixed slot-0
 * allocation). @p available lists free GPUs per slot and must cover
 * horizon.slots entries.
 *
 * @return the plan (length <= horizon.slots, trailing zeros trimmed),
 *         or nullopt when even the maximum useful level cannot meet
 *         the deadline.
 *
 * When @p cost is non-null it is incremented by one work unit per
 * slot-fill operation performed (across every level attempt), giving
 * callers a deterministic measure of planning effort.
 *
 * When @p probe is non-null it reports how the fill interacted with
 * the capacity profile (see FillProbe). A fill whose probe comes back
 * unclipped never observed `available` at all — its attempts, result,
 * and cost are pure functions of (curve, remaining, horizon, config) —
 * which is the certificate the shard-parallel planner uses to adopt
 * speculative per-pod fills (DESIGN.md §10).
 */
std::optional<SlotPlan>
progressive_fill(const PlanningJob &job,
                 const std::vector<GpuCount> &available,
                 const PlanHorizon &horizon, const PlannerConfig &config,
                 int start_slot = 0, std::uint64_t *cost = nullptr,
                 FillProbe *probe = nullptr);

/**
 * Same fill without materializing a PlanningJob — the allocator's
 * candidate loop re-fills tails with an adjusted remaining-iterations
 * value, and copying a job (and its curve table) per candidate is
 * measurable on large instances.
 */
std::optional<SlotPlan>
progressive_fill(const ScalingCurve &curve, double remaining_iterations,
                 const std::vector<GpuCount> &available,
                 const PlanHorizon &horizon, const PlannerConfig &config,
                 int start_slot = 0, std::uint64_t *cost = nullptr,
                 FillProbe *probe = nullptr);

/**
 * Algorithm 1: feasibility of a whole job set (admitted jobs plus a
 * candidate), all with deadlines. Jobs are sorted by deadline
 * internally. Best-effort jobs must not be passed here — they are
 * never admission-controlled.
 */
AdmissionOutcome run_admission(const PlannerConfig &config, Time now,
                               std::vector<PlanningJob> jobs);

/**
 * Closed-form feasibility for *linear* curves (Theorem 1): with jobs
 * sorted by deadline, feasible iff for every prefix the required GPU
 * time fits before the prefix deadline. Used by tests to validate
 * run_admission and exposed for documentation value.
 */
bool linear_feasibility(GpuCount total_gpus, Time now,
                        const std::vector<PlanningJob> &jobs);

}  // namespace ef

#endif  // EF_CORE_ADMISSION_H_

#include "core/planner_concurrency.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ef {
namespace {

/** Buckets for the max/mean shard-cost ratio (1.0 = perfect balance). */
const std::vector<double> &
imbalance_edges()
{
    static const std::vector<double> edges{1.1, 1.25, 1.5, 2.0,
                                           3.0,  4.0,  8.0};
    return edges;
}

}  // namespace

void
emit_shard_round(Time now, const ShardRoundStats &stats)
{
    if (stats.shard_cost.empty())
        return;
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (std::uint64_t units : stats.shard_cost) {
        total += units;
        peak = std::max(peak, units);
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(stats.shard_cost.size());
    const double imbalance =
        mean > 0.0 ? static_cast<double>(peak) / mean : 1.0;
    if (obs::tracing()) {
        for (std::size_t s = 0; s < stats.shard_cost.size(); ++s) {
            obs::TraceEvent event{now, obs::EventKind::kShardPlan,
                                  kInvalidJob,
                                  static_cast<std::int64_t>(s),
                                  static_cast<std::int64_t>(
                                      stats.shard_cost[s])};
            event.x = imbalance;
            obs::emit(event);
        }
    }
    obs::count("planner.shard.rounds");
    obs::count("planner.shard.adopted", stats.adopted);
    obs::count("planner.shard.rebid", stats.rebid);
    obs::observe("planner.shard_imbalance", imbalance_edges(), imbalance);
}

std::vector<GpuCount>
shard_capacity_slices(GpuCount total_gpus, int shards,
                      const std::vector<GpuCount> &shard_gpus)
{
    shards = std::max(1, shards);
    if (static_cast<int>(shard_gpus.size()) == shards) {
        GpuCount sum = 0;
        for (GpuCount g : shard_gpus)
            sum += g;
        if (sum == total_gpus)
            return shard_gpus;
    }
    const GpuCount base = total_gpus / shards;
    const GpuCount rem = total_gpus % shards;
    std::vector<GpuCount> caps(static_cast<std::size_t>(shards), base);
    for (GpuCount s = 0; s < rem; ++s)
        caps[static_cast<std::size_t>(s)] += 1;
    return caps;
}

}  // namespace ef

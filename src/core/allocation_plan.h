/**
 * @file
 * Time-slotted allocation plans.
 *
 * Algorithms 1 and 2 (paper §4.1-4.2) reason about x_i(t): the number
 * of GPUs job i holds in time slot t. A SlotPlan is that vector for one
 * job, with slot 0 starting "now". The simulator runs in continuous
 * time; plans are recomputed on every scheduling event, so only slot 0
 * of a plan is ever executed — the tail exists to prove feasibility
 * (deadlines can still be met) and to price marginal returns.
 */
#ifndef EF_CORE_ALLOCATION_PLAN_H_
#define EF_CORE_ALLOCATION_PLAN_H_

#include <vector>

#include "common/types.h"
#include "core/scaling_curve.h"

namespace ef {

/** Per-slot GPU counts for one job, starting at the current slot. */
struct SlotPlan
{
    std::vector<GpuCount> gpus;

    /** Allocation in slot @p t (0 beyond the stored horizon). */
    GpuCount at(int t) const;

    int horizon() const { return static_cast<int>(gpus.size()); }

    /** Total GPU-seconds the plan consumes. */
    double gpu_seconds(Time slot_seconds) const;

    /** Drop trailing zero slots (canonical form). */
    void trim();

    bool operator==(const SlotPlan &other) const = default;
};

/** Iterations the plan completes for a job with @p curve. */
double plan_iterations(const ScalingCurve &curve, const SlotPlan &plan,
                       Time slot_seconds);

/**
 * Seconds from now until @p remaining_iterations complete under the
 * plan (fractional within the finishing slot); kTimeInfinity when the
 * plan never completes them.
 */
Time plan_finish_seconds(const ScalingCurve &curve, const SlotPlan &plan,
                         double remaining_iterations, Time slot_seconds);

/** One job as the planner sees it. */
struct PlanningJob
{
    JobId id = kInvalidJob;
    ScalingCurve curve;
    double remaining_iterations = 0.0;
    Time deadline = kTimeInfinity;  ///< absolute; infinity = best effort

    /**
     * Soft-deadline jobs (§4.4) yield to hard ones: they receive a
     * minimum satisfactory share only after every hard job has one,
     * and fall back to best-effort scheduling instead of being
     * dropped when their deadline cannot be met.
     */
    bool soft = false;

    bool best_effort() const { return is_unbounded(deadline); }
};

/**
 * Number of whole slots available to a job before its deadline, seen
 * from @p now: floor((deadline - now) / slot_seconds), clamped to
 * [0, max_slots]. Using floor is conservative — the planner never
 * counts a partial final slot, so plan feasibility implies deadline
 * feasibility in continuous time.
 */
int deadline_slots(Time now, Time deadline, Time slot_seconds,
                   int max_slots);

/**
 * Planning horizon of one job: the number of slots up to its deadline
 * plus the usable fraction of the final slot. Replans happen at
 * arbitrary (non-slot-aligned) times, so the final slot is generally
 * partial; accounting its exact fraction keeps the plannable time
 * equal to (deadline - now) and prevents quantization from eroding a
 * previously admitted job's feasibility.
 */
struct PlanHorizon
{
    int slots = 0;            ///< ceil((deadline - now) / slot_seconds)
    double last_weight = 1.0; ///< usable fraction of the final slot
};

PlanHorizon plan_horizon(Time now, Time deadline, Time slot_seconds,
                         int max_slots);

}  // namespace ef

#endif  // EF_CORE_ALLOCATION_PLAN_H_

#include "core/scaling_curve.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace ef {
namespace {

/** Relative gain below which an extra doubling is "not useful". */
constexpr double kUsefulGainEpsilon = 1e-6;

}  // namespace

ScalingCurve
ScalingCurve::from_pow2_table(std::vector<double> table,
                              bool enforce_concave)
{
    EF_CHECK_MSG(!table.empty(), "scaling curve needs at least one entry");
    for (double v : table)
        EF_CHECK_MSG(v >= 0.0, "negative throughput in scaling curve");

    // Identify the valid region [first positive, end].
    std::size_t first = 0;
    while (first < table.size() && table[first] <= 0.0)
        ++first;
    EF_CHECK_MSG(first < table.size(),
                 "scaling curve has no feasible GPU count");
    for (std::size_t k = first; k < table.size(); ++k) {
        EF_CHECK_MSG(table[k] > 0.0,
                     "scaling curve has a zero inside its valid region");
    }

    if (enforce_concave && table.size() - first >= 2) {
        // Monotone non-decreasing clamp: a concave curve in the
        // algorithms' sense never loses throughput when GPUs are added
        // (the scheduler would simply not use the extra GPUs; profiling
        // stops there, §6.6).
        for (std::size_t k = first + 1; k < table.size(); ++k)
            table[k] = std::max(table[k], table[k - 1]);
        // Concave envelope in GPU-count space over the valid region.
        std::vector<double> xs, ys;
        for (std::size_t k = first; k < table.size(); ++k) {
            xs.push_back(static_cast<double>(GpuCount(1) << k));
            ys.push_back(table[k]);
        }
        std::vector<double> env = concave_envelope(xs, ys);
        for (std::size_t k = first; k < table.size(); ++k)
            table[k] = env[k - first];
    }

    ScalingCurve curve;
    curve.table_ = std::move(table);
    curve.min_workers_ = GpuCount(1) << first;

    // max_useful: the last doubling that still improves throughput.
    std::size_t best = first;
    for (std::size_t k = first + 1; k < curve.table_.size(); ++k) {
        if (curve.table_[k] >
            curve.table_[best] * (1.0 + kUsefulGainEpsilon)) {
            best = k;
        }
    }
    curve.max_useful_ = GpuCount(1) << best;
    curve.rebuild_index();
    return curve;
}

void
ScalingCurve::rebuild_index()
{
    EF_CHECK(!table_.empty() && table_.size() < 256);
    // Entry w answers "throughput with any count of bit width w":
    // counts round down to 2^(w-1), clamped to the tabulated maximum.
    const std::size_t last = table_.size() - 1;
    index_[0] = 0;  // unreachable (non-positive counts short-circuit)
    for (std::size_t w = 1; w < kIndexEntries; ++w)
        index_[w] = static_cast<std::uint8_t>(std::min(w - 1, last));
}

GpuCount
ScalingCurve::next_step(GpuCount gpus) const
{
    EF_CHECK(!table_.empty());
    if (gpus <= 0)
        return min_workers_ <= max_useful_ ? min_workers_ : 0;
    EF_CHECK_MSG(is_power_of_two(gpus), "allocation " << gpus
                                        << " is not a power of two");
    // A running allocation beyond max_useful() means a plan escaped
    // the usable() clamp (seen with restrict_to_fixed_size() curves
    // whose fixed size is below the job's current count): returning 0
    // here would silently freeze the job at an allocation the curve
    // cannot price, so fail loudly instead.
    EF_CHECK_MSG(gpus <= max_useful_,
                 "allocation " << gpus << " exceeds max_useful "
                               << max_useful_);
    GpuCount next = gpus * 2;
    if (next > max_useful_)
        return 0;
    return next;
}

ScalingCurve
restrict_to_fixed_size(const ScalingCurve &curve, GpuCount size)
{
    EF_CHECK(is_power_of_two(size));
    double tpt = curve.throughput(size);
    EF_CHECK_MSG(tpt > 0.0,
                 "cannot fix a curve at infeasible size " << size);
    std::vector<double> table(static_cast<std::size_t>(
                                  log2_exact(size)) + 1, 0.0);
    table.back() = tpt;
    return ScalingCurve::from_pow2_table(std::move(table),
                                         /*enforce_concave=*/false);
}

bool
ScalingCurve::concave() const
{
    std::vector<double> xs, ys;
    for (std::size_t k = 0; k < table_.size(); ++k) {
        if (table_[k] <= 0.0)
            continue;
        xs.push_back(static_cast<double>(GpuCount(1) << k));
        ys.push_back(table_[k]);
    }
    return is_concave(xs, ys, 1e-9 * (ys.empty() ? 1.0 : ys.back()));
}

}  // namespace ef

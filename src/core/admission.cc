#include "core/admission.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ef {
namespace {

/** Tolerance on "remaining iterations satisfied" comparisons. */
constexpr double kIterEpsilon = 1e-7;

}  // namespace

std::optional<SlotPlan>
progressive_fill(const ScalingCurve &curve, double remaining_iterations,
                 const std::vector<GpuCount> &available,
                 const PlanHorizon &horizon, const PlannerConfig &config,
                 int start_slot, std::uint64_t *cost, FillProbe *probe)
{
    const int slots = horizon.slots;
    EF_CHECK(slots >= 0 && start_slot >= 0);
    EF_CHECK(static_cast<int>(available.size()) >= slots);
    EF_CHECK(!curve.empty());
    if (probe != nullptr)
        *probe = FillProbe{};

    SlotPlan plan;
    if (remaining_iterations <= kIterEpsilon)
        return plan;  // nothing left to do
    if (start_slot >= slots)
        return std::nullopt;

    const Time dt = config.slot_seconds;
    const GpuCount max_useful = curve.max_useful();
    auto slot_capacity = [&](int t) {
        return t == slots - 1 ? dt * horizon.last_weight : dt;
    };
    for (GpuCount level = curve.min_workers();
         level != 0 && level <= max_useful;
         level = (level < max_useful ? level * 2 : 0)) {
        plan.gpus.assign(static_cast<std::size_t>(slots), 0);
        double remaining = remaining_iterations;
        bool satisfied = false;

        auto fill_slot = [&](int t) {
            if (cost != nullptr)
                ++*cost;
            const GpuCount avail_t =
                available[static_cast<std::size_t>(t)];
            if (probe != nullptr && avail_t < level)
                probe->clipped = true;
            GpuCount x = curve.usable(std::min(level, avail_t));
            plan.gpus[static_cast<std::size_t>(t)] = x;
            remaining -= curve.throughput(x) * slot_capacity(t);
            return remaining <= kIterEpsilon;
        };

        if (config.direction == FillDirection::kEarliest) {
            for (int t = start_slot; t < slots && !satisfied; ++t)
                satisfied = fill_slot(t);
        } else {
            for (int t = slots - 1; t >= start_slot && !satisfied; --t)
                satisfied = fill_slot(t);
        }
        if (satisfied) {
            if (probe != nullptr)
                probe->level = level;
            plan.trim();
            return plan;
        }
    }
    return std::nullopt;
}

std::optional<SlotPlan>
progressive_fill(const PlanningJob &job,
                 const std::vector<GpuCount> &available,
                 const PlanHorizon &horizon, const PlannerConfig &config,
                 int start_slot, std::uint64_t *cost, FillProbe *probe)
{
    return progressive_fill(job.curve, job.remaining_iterations,
                            available, horizon, config, start_slot,
                            cost, probe);
}

AdmissionOutcome
run_admission(const PlannerConfig &config, Time now,
              std::vector<PlanningJob> jobs)
{
    EF_CHECK(config.total_gpus > 0 && config.slot_seconds > 0.0);
    AdmissionOutcome outcome;

    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const PlanningJob &a, const PlanningJob &b) {
                         if (a.deadline != b.deadline)
                             return a.deadline < b.deadline;
                         return a.id < b.id;
                     });

    int max_horizon = 0;
    std::vector<PlanHorizon> horizons(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const PlanningJob &job = jobs[i];
        EF_CHECK_MSG(!job.best_effort(),
                     "best-effort job " << job.id
                                        << " passed to admission control");
        horizons[i] = plan_horizon(now, job.deadline, config.slot_seconds,
                                   config.max_slots);
        max_horizon = std::max(max_horizon, horizons[i].slots);
    }

    obs::count("core.admission.runs");
    std::vector<GpuCount> available(static_cast<std::size_t>(max_horizon),
                                    config.total_gpus);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const PlanningJob &job = jobs[i];
        auto plan = progressive_fill(job, available, horizons[i], config,
                                     /*start_slot=*/0, &outcome.cost);
        if (!plan.has_value()) {
            obs::count("core.admission.infeasible");
            if (obs::tracing()) {
                obs::emit({now, obs::EventKind::kAdmissionOutcome,
                           job.id, /*feasible=*/0,
                           static_cast<std::int64_t>(i)});
            }
            return outcome;  // infeasible; plans discarded
        }
        if (obs::tracing()) {
            // The job's minimum satisfactory share, reported as the
            // peak GPU level of the filled plan.
            GpuCount peak = 0;
            for (int t = 0; t < plan->horizon(); ++t)
                peak = std::max(peak, plan->at(t));
            obs::TraceEvent share{now, obs::EventKind::kAdmissionShare,
                                  job.id, peak,
                                  static_cast<std::int64_t>(
                                      plan->horizon())};
            share.x = job.deadline;
            obs::emit(share);
        }
        for (int t = 0; t < plan->horizon(); ++t) {
            GpuCount &a = available[static_cast<std::size_t>(t)];
            a -= plan->at(t);
            EF_CHECK_MSG(a >= 0, "admission over-allocated slot " << t);
        }
        outcome.plans.emplace(job.id, std::move(*plan));
    }
    outcome.feasible = true;
    if (obs::tracing()) {
        obs::emit({now, obs::EventKind::kAdmissionOutcome, kInvalidJob,
                   /*feasible=*/1,
                   static_cast<std::int64_t>(jobs.size())});
    }
    return outcome;
}

bool
linear_feasibility(GpuCount total_gpus, Time now,
                   const std::vector<PlanningJob> &jobs)
{
    std::vector<PlanningJob> sorted = jobs;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const PlanningJob &a, const PlanningJob &b) {
                         return a.deadline < b.deadline;
                     });
    double cumulative_gpu_time = 0.0;
    for (const PlanningJob &job : sorted) {
        double per_gpu = job.curve.throughput(1);
        EF_CHECK_MSG(per_gpu > 0.0,
                     "linear_feasibility needs 1-GPU-feasible jobs");
        cumulative_gpu_time += job.remaining_iterations / per_gpu;
        double budget =
            static_cast<double>(total_gpus) * (job.deadline - now);
        if (cumulative_gpu_time > budget)
            return false;
    }
    return true;
}

}  // namespace ef

/**
 * @file
 * Scaling curves: the throughput of a job as a function of its GPU
 * count (paper §3.2, Fig. 2a).
 *
 * Worker counts are powers of two (§4.3), so a curve is a table indexed
 * by log2(GPUs). Curves are concave — adding GPUs has diminishing
 * returns — which Algorithms 1 and 2 rely on; construction optionally
 * enforces the concave envelope over the valid region so that analytic
 * performance-model output always satisfies the assumption.
 *
 * A curve also captures the feasible range of a job:
 *  - entries below min_workers() are zero (the local batch would
 *    overflow GPU memory);
 *  - max_useful() is where profiling stops because adding GPUs no
 *    longer increases throughput (§6.6).
 */
#ifndef EF_CORE_SCALING_CURVE_H_
#define EF_CORE_SCALING_CURVE_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace ef {

/** Throughput (iterations/sec) at power-of-two GPU counts. */
class ScalingCurve
{
  public:
    ScalingCurve() = default;

    /**
     * Build from a table where entry k is the throughput with 2^k
     * GPUs. Leading zeros mark memory-infeasible counts. When
     * @p enforce_concave is set, the valid region is made monotone
     * non-decreasing up to its peak and replaced by its concave
     * envelope (in GPU-count space).
     */
    static ScalingCurve from_pow2_table(std::vector<double> table,
                                        bool enforce_concave = true);

    bool empty() const { return table_.empty(); }

    /**
     * Throughput with @p gpus GPUs: counts round down to the nearest
     * power of two and clamp to the tabulated maximum; returns 0 for
     * counts below min_workers() or non-positive.
     *
     * Hot path of Algorithms 1–2: the clamped log2 index is
     * precomputed per bit width at construction, so a lookup is one
     * bit_width plus two array reads — no loops or divisions.
     */
    double throughput(GpuCount gpus) const
    {
        EF_CHECK(!table_.empty());
        if (gpus <= 0)
            return 0.0;
        return table_[index_[bit_width_of(gpus)]];
    }

    /** Largest tabulated GPU count (a power of two). */
    GpuCount max_tabulated() const
    {
        EF_CHECK(!table_.empty());
        return GpuCount(1) << (table_.size() - 1);
    }

    /** Smallest GPU count with positive throughput. */
    GpuCount min_workers() const
    {
        EF_CHECK(!table_.empty());
        return min_workers_;
    }

    /**
     * Largest GPU count worth allocating: beyond it, throughput stops
     * improving (by more than a relative epsilon).
     */
    GpuCount max_useful() const { return max_useful_; }

    /**
     * Largest usable allocation given @p available GPUs: the largest
     * power of two <= min(available, max_useful()), or 0 when even
     * min_workers() does not fit.
     */
    GpuCount usable(GpuCount available) const
    {
        GpuCount cap = std::min(available, max_useful_);
        if (cap < min_workers_)
            return 0;  // also covers non-positive availability
        return static_cast<GpuCount>(
            std::bit_floor(static_cast<std::uint32_t>(cap)));
    }

    /**
     * Next larger allocation step after @p gpus: min_workers() when
     * @p gpus is 0, twice @p gpus otherwise; 0 when already at or
     * beyond max_useful().
     */
    GpuCount next_step(GpuCount gpus) const;

    /** True when the valid region has non-increasing marginal gains. */
    bool concave() const;

    const std::vector<double> &table() const { return table_; }

  private:
    /** bit_width(gpus) for positive counts; 1 + floor(log2(gpus)). */
    static int bit_width_of(GpuCount gpus)
    {
        return std::bit_width(static_cast<std::uint32_t>(gpus));
    }

    void rebuild_index();

    /** One entry per possible bit width of a GpuCount (plus width 0). */
    static constexpr std::size_t kIndexEntries = 34;

    std::vector<double> table_;     // index k -> throughput at 2^k GPUs
    // ef-audit: transient(encode: derived from table_; from_pow2_table() recomputes it on decode)
    GpuCount max_useful_ = 0;
    // ef-audit: transient(encode: derived from table_; from_pow2_table() recomputes it on decode)
    GpuCount min_workers_ = 0;
    /** bit_width(gpus) -> clamped table index (min(log2, size-1)). */
    // ef-audit: transient(codec: lookup acceleration, rebuilt from table_ by rebuild_index())
    std::array<std::uint8_t, kIndexEntries> index_{};
};

/**
 * Restrict a curve to one fixed GPU count (server-centric semantics):
 * the result is zero below @p size and flat at the original
 * throughput(size) from there on, so min_workers() == max_useful() ==
 * size. Used to express non-elastic baselines (e.g. Chronus) in terms
 * of the same planning machinery.
 */
ScalingCurve restrict_to_fixed_size(const ScalingCurve &curve,
                                    GpuCount size);

}  // namespace ef

#endif  // EF_CORE_SCALING_CURVE_H_

/**
 * @file
 * Elastic resource allocation (paper §4.2, Algorithm 2).
 *
 * After admission reserves each SLO job's minimum satisfactory share,
 * leftover GPUs are handed out greedily by *marginal return*: the
 * reduction in total GPU time obtained by giving a job one more
 * allocation step in the current slot (worker counts being powers of
 * two, a step doubles the current count). Only steps that strictly
 * improve the job's finish time are considered (Algorithm 2, line 10).
 * Best-effort jobs (deadline = infinity, §4.4) join the same queue
 * after SLO minimum shares: starting an idle best-effort job has
 * unbounded return (it turns idle GPUs into progress), and growing a
 * running one is priced by the same GPU-time delta, computed
 * analytically since its horizon is unbounded.
 *
 * Theorem 2: under concave scaling curves this greedy is optimal for
 * the objective (4)-(7) — minimize total GPU time subject to meeting
 * all deadlines and leaving no allocatable GPU idle. Property tests
 * check it against brute force on small instances.
 */
#ifndef EF_CORE_ALLOCATOR_H_
#define EF_CORE_ALLOCATOR_H_

#include <map>
#include <vector>

#include "core/admission.h"
#include "core/planner_concurrency.h"

namespace ef {

/** Final decision of one scheduling pass. */
struct AllocationOutcome
{
    /** GPUs to hand each job *now* (slot 0); 0 = suspended. */
    std::map<JobId, GpuCount> gpus_now;
    /** Full plans for SLO jobs (feasibility witnesses). */
    std::map<JobId, SlotPlan> plans;
    /** GPUs left idle because no job could benefit from more. */
    GpuCount unallocated = 0;
};

/**
 * Algorithm 2. @p slo_jobs must all carry finite deadlines and an
 * entry in @p min_share_plans (produced by run_admission over the same
 * state); @p best_effort_jobs carry deadline = infinity.
 */
AllocationOutcome
run_allocation(const PlannerConfig &config, Time now,
               const std::vector<PlanningJob> &slo_jobs,
               const std::map<JobId, SlotPlan> &min_share_plans,
               const std::vector<PlanningJob> &best_effort_jobs);

/**
 * Direct transcription of Algorithm 2: rebuilds every candidate on
 * every greedy iteration. Kept as the oracle for the equivalence fuzz
 * (tests/test_allocator_equivalence.cc) — run_allocation must produce
 * an identical outcome on any input. Not for production use: it is
 * O(iterations x jobs x horizon) where the incremental version only
 * recomputes candidates an applied winner invalidated.
 */
AllocationOutcome
run_allocation_reference(const PlannerConfig &config, Time now,
                         const std::vector<PlanningJob> &slo_jobs,
                         const std::map<JobId, SlotPlan> &min_share_plans,
                         const std::vector<PlanningJob> &best_effort_jobs);

/**
 * Shard-parallel formulation of run_allocation (DESIGN.md §10).
 * Initial candidates are computed shard-parallel (job rank mod
 * `concurrency.shards`, each shard with private scratch) and merged
 * into the marginal-return heap in fixed ascending job order, so heap
 * contents never depend on thread completion order; the greedy loop
 * additionally exploits two megacluster fast paths (unclipped tail
 * re-fills, whole-scan skip certificates) that are exact — the
 * outcome is bit-identical to run_allocation for every input, shard
 * count, and thread count. @p stats, when non-null, accumulates
 * per-shard cost units for observability and suppresses the built-in
 * per-round emission — the caller owns emit_shard_round (letting one
 * round's refresh and allocation share a single emitted span set).
 */
AllocationOutcome
run_allocation_sharded(const PlannerConfig &config, Time now,
                       const std::vector<PlanningJob> &slo_jobs,
                       const std::map<JobId, SlotPlan> &min_share_plans,
                       const std::vector<PlanningJob> &best_effort_jobs,
                       const PlannerConcurrency &concurrency,
                       ShardRoundStats *stats = nullptr);

}  // namespace ef

#endif  // EF_CORE_ALLOCATOR_H_

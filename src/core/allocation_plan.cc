#include "core/allocation_plan.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ef {

GpuCount
SlotPlan::at(int t) const
{
    EF_CHECK(t >= 0);
    if (t >= static_cast<int>(gpus.size()))
        return 0;
    return gpus[static_cast<std::size_t>(t)];
}

double
SlotPlan::gpu_seconds(Time slot_seconds) const
{
    double total = 0.0;
    for (GpuCount g : gpus)
        total += static_cast<double>(g);
    return total * slot_seconds;
}

void
SlotPlan::trim()
{
    while (!gpus.empty() && gpus.back() == 0)
        gpus.pop_back();
}

double
plan_iterations(const ScalingCurve &curve, const SlotPlan &plan,
                Time slot_seconds)
{
    double iterations = 0.0;
    for (GpuCount g : plan.gpus)
        iterations += curve.throughput(g) * slot_seconds;
    return iterations;
}

Time
plan_finish_seconds(const ScalingCurve &curve, const SlotPlan &plan,
                    double remaining_iterations, Time slot_seconds)
{
    if (remaining_iterations <= 0.0)
        return 0.0;
    double left = remaining_iterations;
    for (std::size_t t = 0; t < plan.gpus.size(); ++t) {
        double tpt = curve.throughput(plan.gpus[t]);
        double done = tpt * slot_seconds;
        if (done >= left && tpt > 0.0) {
            return static_cast<Time>(t) * slot_seconds + left / tpt;
        }
        left -= done;
    }
    return kTimeInfinity;
}

int
deadline_slots(Time now, Time deadline, Time slot_seconds, int max_slots)
{
    EF_CHECK(slot_seconds > 0.0 && max_slots >= 0);
    if (is_unbounded(deadline))
        return max_slots;
    if (deadline <= now)
        return 0;
    double slots = std::floor((deadline - now) / slot_seconds);
    slots = std::min(slots, static_cast<double>(max_slots));
    return static_cast<int>(slots);
}

PlanHorizon
plan_horizon(Time now, Time deadline, Time slot_seconds, int max_slots)
{
    EF_CHECK(slot_seconds > 0.0 && max_slots >= 0);
    PlanHorizon horizon;
    if (is_unbounded(deadline)) {
        horizon.slots = max_slots;
        horizon.last_weight = 1.0;
        return horizon;
    }
    if (deadline <= now)
        return horizon;
    double span = (deadline - now) / slot_seconds;
    double whole = std::floor(span);
    if (whole >= static_cast<double>(max_slots)) {
        horizon.slots = max_slots;
        horizon.last_weight = 1.0;
        return horizon;
    }
    horizon.slots = static_cast<int>(whole);
    double frac = span - whole;
    if (frac > 1e-12) {
        horizon.slots += 1;
        horizon.last_weight = frac;
    } else {
        horizon.last_weight = 1.0;
    }
    return horizon;
}

}  // namespace ef

/**
 * @file
 * Deterministic fault injection for the control plane and simulator.
 *
 * A production ElasticFlow deployment survives lossy gRPC links,
 * straggling workers, single-GPU (ECC-style) faults, failed checkpoint
 * writes, and whole-server crashes (paper §4.4 "Node failures", §5).
 * The FaultInjector is the single source of such events: each fault
 * class draws from its own seeded Rng stream, so enabling one class
 * never perturbs the event sequence of another, and a run is a pure
 * function of (trace, config, seed). Faults come from two producers:
 *
 *  - per-class rates (MTBFs / probabilities) in FaultConfig, and
 *  - an explicit scripted fault trace (CSV), for tests and replay —
 *    scripted events fire at exact timestamps against exact targets.
 *
 * The legacy FailureConfig server-crash model is mapped onto the
 * server-crash class with its original seed, so pre-existing failure
 * runs replay byte-identically.
 */
#ifndef EF_FAULT_FAULT_H_
#define EF_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ef {

/** The fault classes the injector can produce. */
enum class FaultType {
    kServerCrash,  ///< whole server down (legacy FailureConfig class)
    kGpuFault,     ///< one GPU fails; its server stays up
    kStraggler,    ///< a job's workers run slowed for a while
    kRpcDrop,      ///< a control-plane command delivery is lost
    kCkptFail,     ///< a checkpoint write fails (previous one survives)
    kArrivalStorm, ///< submission rate multiplied for a window (service
                   ///< mode overload; magnitude = rate multiplier)
    kSchedCrash,   ///< the scheduler process itself dies at a round
                   ///< boundary (crash-recovery testing; target = round
                   ///< index, -1 = first commit at/after `time`)
};

std::string fault_type_name(FaultType type);
/** Inverse of fault_type_name; aborts (with @p context) on unknown names. */
FaultType fault_type_from_name(const std::string &name,
                               const std::string &context);

/** One scripted fault. */
struct FaultEvent
{
    Time time = 0.0;
    FaultType type = FaultType::kServerCrash;
    /**
     * Server index (kServerCrash), GPU id (kGpuFault), job id
     * (kStraggler / kRpcDrop / kCkptFail; -1 = first matching job), or
     * round-commit ordinal (kSchedCrash; -1 = first commit at/after
     * `time`). Ignored by kArrivalStorm (conventionally -1).
     */
    std::int64_t target = -1;
    /** Repair / straggle / storm window; 0 = use the class default. */
    Time duration_s = 0.0;
    /** Straggler slowdown factor, forced RPC-drop count, or
     *  arrival-rate multiplier (kArrivalStorm); 0 = default. */
    double magnitude = 0.0;
};

/** Per-class fault rates plus the scripted trace. A rate of 0 (or an
 *  empty script) disables the class entirely — no Rng draws happen. */
struct FaultConfig
{
    /** Master seed; every class stream is derived from it. */
    std::uint64_t seed = 1;

    // --- server crashes (the legacy FailureConfig class) ---
    Time server_mtbf_s = 0.0;  ///< per-server MTBF; 0 = disabled
    Time server_repair_s = 2.0 * kHour;
    /** Explicit server-class seed (legacy byte-compat); 0 = derive. */
    std::uint64_t server_seed = 0;

    // --- single-GPU faults ---
    Time gpu_mtbf_s = 0.0;  ///< per-GPU MTBF; 0 = disabled
    Time gpu_repair_s = kHour;

    // --- unreliable RPC delivery ---
    double rpc_drop_prob = 0.0;      ///< per-attempt loss probability
    /** Fraction of losses where the command arrived but the ack was
     *  lost (the retry then redelivers a duplicate). */
    double rpc_ack_loss_fraction = 0.0;
    double rpc_delay_prob = 0.0;     ///< chance of a slow delivery
    Time rpc_delay_mean_s = 0.5;
    Time rpc_backoff_base_s = 0.2;   ///< first retry backoff
    Time rpc_backoff_cap_s = 5.0;    ///< bounded exponential cap
    int rpc_max_retries = 5;         ///< give up after this many

    // --- worker stragglers ---
    double straggler_prob = 0.0;     ///< per-(re)launch probability
    double straggler_slowdown = 2.0; ///< iteration-time multiplier
    Time straggler_duration_s = 600.0;

    // --- checkpoint-write failures ---
    double ckpt_failure_prob = 0.0;  ///< per-checkpoint probability

    // --- scheduler (control-plane) crashes ---
    /**
     * Per-round-commit probability that the scheduler process dies at
     * the commit point (crash-recovery soak testing). Draws from its
     * own stream that is deliberately NOT part of state_fingerprint():
     * a crash+recover run must hash identically to an uninterrupted
     * one, so crash arrivals may never perturb hashed state.
     */
    double sched_crash_prob = 0.0;

    /** Scripted faults, applied in addition to the rates. */
    std::vector<FaultEvent> script;

    /** Whether any class can ever fire. */
    bool any() const;
};

/**
 * Draws fault events from per-class independent Rng streams and hands
 * out scripted events. Owned by whoever runs the clock (the simulator
 * or a test harness); the control plane and executors borrow it.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig config);

    const FaultConfig &config() const { return config_; }

    // --- server crashes -------------------------------------------------
    bool server_crashes_enabled() const
    {
        return config_.server_mtbf_s > 0.0;
    }
    /** Exponential time-to-failure of one server. */
    Time server_crash_delay();
    Time server_repair_s() const { return config_.server_repair_s; }

    // --- single-GPU faults ----------------------------------------------
    bool gpu_faults_enabled() const { return config_.gpu_mtbf_s > 0.0; }
    /** Time until the next GPU fault anywhere in the cluster. */
    Time gpu_fault_delay(GpuCount total_gpus);
    /** Which GPU the next fault hits. */
    GpuCount gpu_fault_target(GpuCount total_gpus);
    Time gpu_repair_s() const { return config_.gpu_repair_s; }

    // --- unreliable RPC delivery ----------------------------------------
    /** Whether rate-based loss is on (scripted drops fire regardless). */
    bool rpc_drops_enabled() const { return config_.rpc_drop_prob > 0.0; }
    /** Was this delivery attempt lost? No draw when the rate is 0. */
    bool rpc_attempt_lost();
    /** Was a loss the ack (command applied) rather than the request? */
    bool rpc_loss_was_ack();
    /** Extra delivery latency (0 unless the delay class fires). */
    Time rpc_delay();
    /** Bounded exponential backoff before retry @p attempt (1-based). */
    Time rpc_backoff(int attempt) const;

    // --- stragglers -----------------------------------------------------
    bool stragglers_enabled() const
    {
        return config_.straggler_prob > 0.0;
    }
    /** Does this (re)launch come up straggling? */
    bool straggler_starts();
    double straggler_slowdown() const
    {
        return config_.straggler_slowdown;
    }
    Time straggler_duration_s() const
    {
        return config_.straggler_duration_s;
    }

    // --- checkpoint-write failures --------------------------------------
    /**
     * Does the checkpoint @p job writes at @p now fail? Consumes at
     * most one armed scripted kCkptFail entry; otherwise draws the
     * rate (no draw when the rate is 0).
     */
    bool checkpoint_write_fails(JobId job, Time now);

    // --- scripted faults ------------------------------------------------
    /**
     * Cluster-level scripted events (server crashes, GPU faults,
     * stragglers) for the caller's event queue. RPC drops and
     * checkpoint failures are not queueable: they arm and fire when
     * the matching command/checkpoint happens.
     */
    const std::vector<FaultEvent> &queueable_script_events() const
    {
        return queueable_;
    }

    /**
     * Forced delivery losses armed for a command to @p job issued at
     * @p now: consumes every armed kRpcDrop whose time has come and
     * returns the total forced-loss count (magnitude, default 1 each).
     */
    int take_scripted_rpc_drops(JobId job, Time now);

    // --- scheduler crashes ----------------------------------------------
    bool sched_crashes_enabled() const
    {
        return config_.sched_crash_prob > 0.0 || !armed_sched_.empty();
    }
    /**
     * Does the scheduler die at this round commit? Rate-based only;
     * scripted crashes are consumed by the simulator through
     * sched_crash_events() and its journaled cursor. No draw when the
     * rate is 0.
     */
    bool sched_crash_fires();
    /**
     * Scripted scheduler crashes, time-sorted. The caller owns the
     * consumption cursor (it must survive recovery, so it lives in the
     * round-commit journal records, not here).
     */
    const std::vector<FaultEvent> &sched_crash_events() const
    {
        return armed_sched_;
    }

    /**
     * Scripted arrival storms, time-sorted. A storm multiplies the
     * submission rate by its magnitude (default 2) over
     * [time, time + duration_s). Consumed by submission front ends
     * (ef::serve streams); never queued as simulator events.
     */
    const std::vector<FaultEvent> &arrival_storm_events() const
    {
        return storms_;
    }

    /**
     * The arrival-rate multiplier in effect at @p now: the product of
     * the magnitudes of every storm window covering @p now (overlapping
     * storms compound), or 1 when none does.
     */
    double arrival_rate_multiplier(Time now) const;

    /**
     * FNV-1a fingerprint of the injector's mutable state: every
     * per-class RNG cursor plus the armed scripted-event backlogs.
     * Folded into the simulator's determinism state hash — two runs
     * agree only if their fault streams advanced in lockstep.
     */
    std::uint64_t state_fingerprint() const;

    /**
     * Mutable injector state for crash-recovery snapshots: the five
     * hashed class streams (in fingerprint order) plus the sched-crash
     * stream, and the consumed armed-event backlogs. queueable_ and
     * storms_ are immutable after construction and rebuild from the
     * config, so they are not captured.
     */
    struct State
    {
        struct Stream
        {
            std::string engine;
            std::uint64_t draws = 0;
            std::uint64_t forks = 0;
        };
        std::vector<Stream> streams;
        std::vector<FaultEvent> armed_rpc;
        std::vector<FaultEvent> armed_ckpt;
    };
    State capture_state() const;
    /** Restore a capture_state() snapshot taken with the same config. */
    void restore_state(const State &state);

  private:
    // ef-audit: transient(all: construction-time constant; restore_state() requires the same config)
    FaultConfig config_;
    Rng server_rng_;
    Rng gpu_rng_;
    Rng rpc_rng_;
    Rng straggler_rng_;
    Rng ckpt_rng_;
    /** Meta stream: excluded from state_fingerprint() by design. */
    // ef-audit: transient(hash: meta stream consumed before the run, pinned by sched_crash_cursor_ instead)
    Rng sched_rng_;
    // ef-audit: transient(codec: scripted events, re-parsed from the fault script at construction)
    std::vector<FaultEvent> queueable_;
    std::vector<FaultEvent> armed_rpc_;
    std::vector<FaultEvent> armed_ckpt_;
    // ef-audit: transient(codec: scripted storms, re-parsed from the fault script at construction)
    std::vector<FaultEvent> storms_;
    // ef-audit: transient(all: scripted crash points, re-parsed at construction; consumption is pinned by sched_crash_cursor_)
    std::vector<FaultEvent> armed_sched_;
};

/**
 * Parse a scripted fault trace. CSV columns: time,type,target and
 * optionally duration,magnitude. Types: server-crash, gpu-fault,
 * straggler, rpc-drop, ckpt-fail, arrival-storm. Malformed rows abort
 * with the offending line number.
 */
std::vector<FaultEvent> parse_fault_script(const std::string &text);

/** Load and parse a scripted fault trace file. */
std::vector<FaultEvent> load_fault_script(const std::string &path);

}  // namespace ef

#endif  // EF_FAULT_FAULT_H_

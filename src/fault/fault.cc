#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <fstream>  // ef-lint: allow(file-io: read-only script input, not durable state)
#include <sstream>

#include "common/check.h"
#include "common/csv.h"
#include "common/hash.h"
#include "obs/metrics.h"

namespace ef {
namespace {

/** Independent per-class stream seeds derived from the master seed. */
std::uint64_t
class_seed(std::uint64_t master, std::uint64_t klass)
{
    return master ^ (0x9e3779b97f4a7c15ULL * (klass + 1));
}

}  // namespace

std::string
fault_type_name(FaultType type)
{
    switch (type) {
      case FaultType::kServerCrash: return "server-crash";
      case FaultType::kGpuFault: return "gpu-fault";
      case FaultType::kStraggler: return "straggler";
      case FaultType::kRpcDrop: return "rpc-drop";
      case FaultType::kCkptFail: return "ckpt-fail";
      case FaultType::kArrivalStorm: return "arrival-storm";
      case FaultType::kSchedCrash: return "sched-crash";
    }
    return "?";
}

FaultType
fault_type_from_name(const std::string &name, const std::string &context)
{
    if (name == "server-crash")
        return FaultType::kServerCrash;
    if (name == "gpu-fault")
        return FaultType::kGpuFault;
    if (name == "straggler")
        return FaultType::kStraggler;
    if (name == "rpc-drop")
        return FaultType::kRpcDrop;
    if (name == "ckpt-fail")
        return FaultType::kCkptFail;
    if (name == "arrival-storm")
        return FaultType::kArrivalStorm;
    if (name == "sched-crash")
        return FaultType::kSchedCrash;
    EF_FATAL_IF(true, context << ": unknown fault type '" << name << "'");
    return FaultType::kServerCrash;
}

bool
FaultConfig::any() const
{
    return server_mtbf_s > 0.0 || gpu_mtbf_s > 0.0 ||
           rpc_drop_prob > 0.0 || rpc_delay_prob > 0.0 ||
           straggler_prob > 0.0 || ckpt_failure_prob > 0.0 ||
           sched_crash_prob > 0.0 || !script.empty();
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)),
      // The server stream keeps its legacy FailureConfig seed when one
      // is given, so pre-existing failure runs replay byte-identically.
      server_rng_(config_.server_seed != 0
                      ? config_.server_seed
                      : class_seed(config_.seed, 0)),
      gpu_rng_(class_seed(config_.seed, 1)),
      rpc_rng_(class_seed(config_.seed, 2)),
      straggler_rng_(class_seed(config_.seed, 3)),
      ckpt_rng_(class_seed(config_.seed, 4)),
      sched_rng_(class_seed(config_.seed, 5))
{
    EF_FATAL_IF(config_.rpc_max_retries < 0,
                "rpc_max_retries must be non-negative");
    EF_FATAL_IF(config_.straggler_slowdown < 1.0,
                "straggler_slowdown must be >= 1");
    for (const FaultEvent &ev : config_.script) {
        EF_FATAL_IF(ev.time < 0.0, "scripted fault at negative time "
                                       << ev.time);
        switch (ev.type) {
          case FaultType::kServerCrash:
          case FaultType::kGpuFault:
          case FaultType::kStraggler:
            queueable_.push_back(ev);
            break;
          case FaultType::kRpcDrop:
            armed_rpc_.push_back(ev);
            break;
          case FaultType::kCkptFail:
            armed_ckpt_.push_back(ev);
            break;
          case FaultType::kArrivalStorm:
            storms_.push_back(ev);
            break;
          case FaultType::kSchedCrash:
            armed_sched_.push_back(ev);
            break;
        }
    }
    auto by_time = [](const FaultEvent &a, const FaultEvent &b) {
        return a.time < b.time;
    };
    std::stable_sort(queueable_.begin(), queueable_.end(), by_time);
    std::stable_sort(armed_rpc_.begin(), armed_rpc_.end(), by_time);
    std::stable_sort(armed_ckpt_.begin(), armed_ckpt_.end(), by_time);
    std::stable_sort(storms_.begin(), storms_.end(), by_time);
    std::stable_sort(armed_sched_.begin(), armed_sched_.end(), by_time);
}

double
FaultInjector::arrival_rate_multiplier(Time now) const
{
    double multiplier = 1.0;
    for (const FaultEvent &storm : storms_) {
        if (storm.time > now)
            break;  // time-sorted
        const Time end = storm.time + storm.duration_s;
        if (now < end)
            multiplier *= storm.magnitude > 0.0 ? storm.magnitude : 2.0;
    }
    return multiplier;
}

Time
FaultInjector::server_crash_delay()
{
    EF_CHECK(server_crashes_enabled());
    obs::count("fault.server_crash_draws");
    return server_rng_.exponential(1.0 / config_.server_mtbf_s);
}

Time
FaultInjector::gpu_fault_delay(GpuCount total_gpus)
{
    EF_CHECK(gpu_faults_enabled() && total_gpus > 0);
    obs::count("fault.gpu_fault_draws");
    // Each GPU fails at rate 1/mtbf; the cluster-wide next fault is
    // the minimum of the per-GPU exponentials.
    return gpu_rng_.exponential(static_cast<double>(total_gpus) /
                                config_.gpu_mtbf_s);
}

GpuCount
FaultInjector::gpu_fault_target(GpuCount total_gpus)
{
    return static_cast<GpuCount>(
        gpu_rng_.uniform_int(0, total_gpus - 1));
}

bool
FaultInjector::rpc_attempt_lost()
{
    if (config_.rpc_drop_prob <= 0.0)
        return false;
    bool lost = rpc_rng_.flip(config_.rpc_drop_prob);
    if (lost)
        obs::count("fault.rpc_losses");
    return lost;
}

bool
FaultInjector::rpc_loss_was_ack()
{
    if (config_.rpc_ack_loss_fraction <= 0.0)
        return false;
    if (config_.rpc_ack_loss_fraction >= 1.0)
        return true;
    return rpc_rng_.flip(config_.rpc_ack_loss_fraction);
}

Time
FaultInjector::rpc_delay()
{
    if (config_.rpc_delay_prob <= 0.0)
        return 0.0;
    if (!rpc_rng_.flip(config_.rpc_delay_prob))
        return 0.0;
    return rpc_rng_.exponential(1.0 / config_.rpc_delay_mean_s);
}

Time
FaultInjector::rpc_backoff(int attempt) const
{
    EF_CHECK(attempt >= 1);
    Time backoff = config_.rpc_backoff_base_s *
                   std::pow(2.0, static_cast<double>(attempt - 1));
    return std::min(backoff, config_.rpc_backoff_cap_s);
}

bool
FaultInjector::straggler_starts()
{
    if (config_.straggler_prob <= 0.0)
        return false;
    bool starts = straggler_rng_.flip(config_.straggler_prob);
    if (starts)
        obs::count("fault.stragglers");
    return starts;
}

bool
FaultInjector::checkpoint_write_fails(JobId job, Time now)
{
    for (auto it = armed_ckpt_.begin(); it != armed_ckpt_.end(); ++it) {
        if (it->time > now)
            break;  // armed entries are time-sorted
        if (it->target < 0 || it->target == job) {
            armed_ckpt_.erase(it);
            obs::count("fault.ckpt_failures");
            return true;
        }
    }
    if (config_.ckpt_failure_prob <= 0.0)
        return false;
    bool fails = ckpt_rng_.flip(config_.ckpt_failure_prob);
    if (fails)
        obs::count("fault.ckpt_failures");
    return fails;
}

int
FaultInjector::take_scripted_rpc_drops(JobId job, Time now)
{
    int forced = 0;
    for (auto it = armed_rpc_.begin(); it != armed_rpc_.end();) {
        if (it->time > now)
            break;  // armed entries are time-sorted
        if (it->target < 0 || it->target == job) {
            forced += std::max(
                1, static_cast<int>(std::lround(it->magnitude)));
            it = armed_rpc_.erase(it);
        } else {
            ++it;
        }
    }
    return forced;
}

bool
FaultInjector::sched_crash_fires()
{
    if (config_.sched_crash_prob <= 0.0)
        return false;
    bool fires = sched_rng_.flip(config_.sched_crash_prob);
    if (fires)
        obs::count("fault.sched_crashes");
    return fires;
}

FaultInjector::State
FaultInjector::capture_state() const
{
    State state;
    for (const Rng *rng : {&server_rng_, &gpu_rng_, &rpc_rng_,
                           &straggler_rng_, &ckpt_rng_, &sched_rng_}) {
        State::Stream stream;
        stream.engine = rng->engine_state();
        stream.draws = rng->draws();
        stream.forks = rng->forks();
        state.streams.push_back(std::move(stream));
    }
    state.armed_rpc = armed_rpc_;
    state.armed_ckpt = armed_ckpt_;
    return state;
}

void
FaultInjector::restore_state(const State &state)
{
    Rng *rngs[] = {&server_rng_, &gpu_rng_, &rpc_rng_, &straggler_rng_,
                   &ckpt_rng_, &sched_rng_};
    EF_CHECK_MSG(state.streams.size() == 6,
                 "fault snapshot has " << state.streams.size()
                                       << " streams, expected 6");
    for (std::size_t i = 0; i < 6; ++i)
        rngs[i]->restore(state.streams[i].engine, state.streams[i].draws,
                         state.streams[i].forks);
    armed_rpc_ = state.armed_rpc;
    armed_ckpt_ = state.armed_ckpt;
}

std::uint64_t
FaultInjector::state_fingerprint() const
{
    Fnv1a h;
    for (const Rng *rng : {&server_rng_, &gpu_rng_, &rpc_rng_,
                           &straggler_rng_, &ckpt_rng_}) {
        h.u64(rng->seed());
        h.u64(rng->draws());
        h.u64(rng->forks());
    }
    h.u64(queueable_.size());
    h.u64(armed_rpc_.size());
    h.u64(armed_ckpt_.size());
    h.u64(storms_.size());
    return h.digest();
}

std::vector<FaultEvent>
parse_fault_script(const std::string &text)
{
    CsvTable table = parse_csv(text);
    EF_FATAL_IF(table.column_index("time") < 0 ||
                    table.column_index("type") < 0 ||
                    table.column_index("target") < 0,
                "fault script needs columns time,type,target");
    bool has_duration = table.column_index("duration") >= 0;
    bool has_magnitude = table.column_index("magnitude") >= 0;
    std::vector<FaultEvent> script;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        // Header is line 1, so data row r lives on line r + 2.
        std::ostringstream where;
        where << "fault script line " << r + 2;
        const std::string context = where.str();
        EF_FATAL_IF(table.rows[r].size() != table.header.size(),
                    context << ": expected " << table.header.size()
                            << " fields, got " << table.rows[r].size());
        FaultEvent ev;
        ev.time = csv_to_double(table.cell(r, "time"),
                                context + ", column 'time'");
        EF_FATAL_IF(ev.time < 0.0, context << ": negative time");
        ev.type = fault_type_from_name(table.cell(r, "type"), context);
        ev.target = csv_to_int(table.cell(r, "target"),
                               context + ", column 'target'");
        if (has_duration) {
            ev.duration_s = csv_to_double(
                table.cell(r, "duration"), context + ", column 'duration'");
            EF_FATAL_IF(ev.duration_s < 0.0,
                        context << ": negative duration");
        }
        if (has_magnitude) {
            ev.magnitude = csv_to_double(
                table.cell(r, "magnitude"),
                context + ", column 'magnitude'");
            EF_FATAL_IF(ev.magnitude < 0.0,
                        context << ": negative magnitude");
        }
        script.push_back(ev);
    }
    return script;
}

std::vector<FaultEvent>
load_fault_script(const std::string &path)
{
    // ef-lint: allow(file-io: read-only script input, not durable state)
    std::ifstream in(path);
    EF_FATAL_IF(!in, "cannot open fault script: " << path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_fault_script(buffer.str());
}

}  // namespace ef

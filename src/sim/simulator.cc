#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "cluster/fragmentation.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/state_codec.h"
#include "serve/verdict.h"

namespace ef {
namespace {

constexpr double kIterEpsilon = 1e-6;

// Histogram bucket edges for the run-level obs metrics. Chosen once
// here so every run's dump is comparable.
const std::vector<double> kQueueDepthEdges = {0,  1,  2,   4,  8,
                                              16, 32, 64, 128, 256};
const std::vector<double> kFragmentationEdges = {0.0, 0.05, 0.1, 0.2,
                                                 0.4, 0.6,  0.8};
const std::vector<double> kSpanExcessEdges = {0, 1, 2, 4, 8, 16, 32};
const std::vector<double> kReplanIntervalEdges = {
    1.0, 10.0, 60.0, 300.0, 600.0, 1800.0, 3600.0, 7200.0};
const std::vector<double> kResizeEdges = {0, 1, 2, 4, 8, 16, 32, 64};
const std::vector<double> kEfficiencyEdges = {0.1, 0.25, 0.5, 0.75,
                                              0.9, 1.0};
const std::vector<double> kDecisionLatencyEdges = {
    0.001, 0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0,
    20.0,  30.0, 60.0, 120.0, 300.0};
const std::vector<double> kReplayEdges = {0,  1,  2,   4,   8,   16,
                                          32, 64, 128, 256, 512, 1024};

/** ids payload of an alloc-change event, from concrete GPU ids. */
std::vector<std::int64_t>
trace_ids(const std::vector<GpuCount> &gpus)
{
    return std::vector<std::int64_t>(gpus.begin(), gpus.end());
}

}  // namespace

/** Runtime record of one job. */
struct Simulator::JobRt
{
    // ef-audit: transient(hash: submission-time constant, journaled (codec) and pinned by the job id)
    JobSpec spec;
    // ef-audit: transient(hash: submission-time constant, journaled (codec) and pinned by the job id)
    ScalingCurve curve;
    bool arrived = false;
    JobState state = JobState::kWaiting;

    double executed = 0.0;          ///< iterations completed
    Time last_update = 0.0;         ///< progress accounted up to here
    Time progress_resume = 0.0;     ///< paused (overhead) until here
    double attained_gpu_seconds = 0.0;

    GpuCount gpus = 0;              ///< currently held GPUs
    double current_tpt = 0.0;       ///< iterations/sec on the placement
    // ef-audit: transient(hash: drawn once per job from the journaled Rng cursor, so it is pinned by (seed, draws))
    double noise_factor = 1.0;      ///< executor-vs-profile mismatch
    double checkpoint_iters = 0.0;  ///< progress safe from failures

    double straggler_factor = 1.0;  ///< >1 while a worker straggles
    Time straggler_until = -kTimeInfinity;

    // ef-audit: transient(hash: derived report row, filled in at retirement from hashed progress state)
    JobOutcome outcome;

    double remaining() const
    {
        return std::max(0.0, static_cast<double>(spec.iterations) -
                                 executed);
    }
    bool active() const
    {
        return arrived && (state == JobState::kWaiting ||
                           state == JobState::kRunning);
    }
};

/** Queue entry; min-heap by (time, seq). */
struct Simulator::Event
{
    enum Kind {
        kArrival,
        kCompletion,
        kTick,
        kServiceRound,
        kServerDown,
        kServerUp,
        kGpuDown,
        kGpuUp,
        kStragglerStart,
        kStragglerEnd,
    };
    Time time = 0.0;
    std::uint64_t seq = 0;
    Kind kind = kArrival;
    /** Job id, or server index / GPU id for failure events. */
    JobId job = kInvalidJob;
    Time dur = 0.0;           ///< repair / straggle window (fault events)
    double mag = 0.0;         ///< straggler slowdown factor
    /** Scripted faults never reschedule the rate-based stream. */
    bool from_script = false;
};

bool
Simulator::event_after(const Event &a, const Event &b)
{
    if (a.time != b.time)
        return a.time > b.time;
    return a.seq > b.seq;
}

Simulator::Simulator(const Trace &trace, Scheduler *scheduler,
                     SimConfig config)
    : trace_(trace),
      scheduler_(scheduler),
      config_(config),
      topology_(trace.topology),
      perf_(&topology_),
      placement_(&topology_),
      overhead_(config.overhead),
      events_(event_after)
{
    EF_CHECK(scheduler_ != nullptr);
    scheduler_->bind(this);
    if (config_.planner_shards > 0) {
        scheduler_->set_planner_concurrency(config_.planner_shards,
                                            config_.planner_threads);
    }

    result_.scheduler_name = scheduler_->name();
    result_.trace_name = trace_.name;
    result_.total_gpus = topology_.total_gpus();

    for (const JobSpec &spec : trace_.jobs) {
        EF_FATAL_IF(jobs_.count(spec.id) > 0,
                    "duplicate job id " << spec.id << " in trace");
        auto job = std::make_unique<JobRt>();
        job->spec = spec;
        job->curve = curve_for(spec);
        job->outcome.spec = spec;
        if (config_.noise.throughput_error > 0.0) {
            // Deterministic per-job factor in [1 - e, 1 + e].
            Rng noise_rng(0x9e3779b9u ^
                          static_cast<std::uint64_t>(spec.id) * 2654435761u);
            job->noise_factor = 1.0 + noise_rng.uniform_real(
                                          -config_.noise.throughput_error,
                                          config_.noise.throughput_error);
        }
        jobs_.emplace(spec.id, std::move(job));
        submit_order_.push_back(spec.id);
    }
    FaultConfig effective = config_.faults;
    if (config_.failures.enabled) {
        EF_FATAL_IF(config_.failures.server_mtbf_s <= 0.0,
                    "failure MTBF must be positive");
        EF_FATAL_IF(effective.server_mtbf_s > 0.0,
                    "server crashes configured through both "
                    "FailureConfig and FaultConfig; pick one");
        // The legacy failure model becomes one producer of server-crash
        // fault events, keeping its own seed so the draw sequence (and
        // therefore the whole run) replays byte-identically.
        effective.server_mtbf_s = config_.failures.server_mtbf_s;
        effective.server_repair_s = config_.failures.repair_s;
        if (effective.server_seed == 0)
            effective.server_seed = config_.failures.seed;
    }
    if (effective.any())
        fault_ = std::make_unique<FaultInjector>(std::move(effective));
    if (config_.service.enabled) {
        EF_FATAL_IF(config_.service.queue_watermark < 1,
                    "service mode needs queue_watermark >= 1");
        service_governor_ = std::make_unique<serve::ReplanGovernor>(
            config_.service.governor);
    }
    // A zero budget stays null on purpose: such a run must be
    // byte-identical to a defrag-disabled one (DESIGN.md §14).
    if (config_.defrag.enabled &&
        config_.defrag.budget_units_per_round > 0.0) {
        defrag_ = std::make_unique<defrag::Defragmenter>(
            config_.defrag, &topology_, &perf_);
    }
}

Simulator::~Simulator() = default;

Simulator::JobRt &
Simulator::rt(JobId id)
{
    auto it = jobs_.find(id);
    EF_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
    return *it->second;
}

const Simulator::JobRt &
Simulator::rt(JobId id) const
{
    auto it = jobs_.find(id);
    EF_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
    return *it->second;
}

GpuCount
Simulator::total_gpus() const
{
    // Schedulers see the capacity that is actually up (§4.4).
    return placement_.available_gpus();
}

std::vector<JobId>
Simulator::active_jobs() const
{
    std::vector<JobId> active;
    for (JobId id : submit_order_) {
        if (rt(id).active())
            active.push_back(id);
    }
    return active;
}

const JobSpec &
Simulator::spec(JobId job) const
{
    return rt(job).spec;
}

const ScalingCurve &
Simulator::curve(JobId job) const
{
    return rt(job).curve;
}

ScalingCurve
Simulator::curve_for(const JobSpec &spec) const
{
    std::vector<double> table = perf_.compact_pow2_throughputs(
        spec.model, spec.global_batch, topology_.total_gpus());
    return ScalingCurve::from_pow2_table(std::move(table));
}

double
Simulator::remaining_iterations(JobId job) const
{
    return rt(job).remaining();
}

GpuCount
Simulator::current_gpus(JobId job) const
{
    return rt(job).gpus;
}

double
Simulator::attained_gpu_seconds(JobId job) const
{
    return rt(job).attained_gpu_seconds;
}

void
Simulator::advance_progress(Time to)
{
    EF_CHECK(to >= now_);
    for (auto &[id, job_ptr] : jobs_) {
        JobRt &job = *job_ptr;
        Time t0 = job.last_update;
        if (to <= t0) {
            continue;
        }
        if (job.gpus > 0) {
            job.attained_gpu_seconds +=
                static_cast<double>(job.gpus) * (to - t0);
            job.outcome.gpu_seconds = job.attained_gpu_seconds;
        }
        if (job.state == JobState::kRunning && job.gpus > 0) {
            Time start = std::max(t0, job.progress_resume);
            if (to > start) {
                job.executed += job.current_tpt * (to - start);
                job.executed = std::min(
                    job.executed, static_cast<double>(job.spec.iterations));
                // Periodic auto-checkpointing: progress older than one
                // checkpoint interval is safe from node failures.
                double interval_iters =
                    job.current_tpt *
                    config_.failures.checkpoint_interval_s;
                if (job.executed - job.checkpoint_iters >
                    interval_iters) {
                    job.checkpoint_iters = job.executed - interval_iters;
                }
            }
        }
        job.last_update = to;
    }
}

void
Simulator::charge_pause(JobRt &job, Time seconds)
{
    if (seconds <= 0.0)
        return;
    job.progress_resume =
        std::max(job.progress_resume, now_ + seconds);
}

void
Simulator::refresh_throughput(JobRt &job)
{
    if (job.gpus <= 0 || job.state != JobState::kRunning) {
        job.current_tpt = 0.0;
        return;
    }
    PlacementShape shape =
        perf_.shape_of(placement_.gpus_of(job.spec.id));
    job.current_tpt =
        perf_.throughput(job.spec.model, job.spec.global_batch, shape) *
        job.noise_factor;
    // A straggling worker gates the whole data-parallel group.
    if (now_ < job.straggler_until)
        job.current_tpt /= job.straggler_factor;
    EF_CHECK_MSG(job.current_tpt > 0.0,
                 "job " << job.spec.id << " placed on an infeasible "
                        << job.gpus << "-GPU configuration");
    schedule_completion(job);
}

void
Simulator::schedule_completion(JobRt &job)
{
    if (job.state != JobState::kRunning || job.current_tpt <= 0.0)
        return;
    Time start = std::max(now_, job.progress_resume);
    Time done = start + job.remaining() / job.current_tpt;
    events_.push(Event{done, next_seq_++, Event::kCompletion,
                       job.spec.id});
}

bool
Simulator::deliver_resize(JobId id, Time *penalty)
{
    if (fault_ == nullptr)
        return true;
    // The simulator's control path is synchronous, so delivery
    // collapses to: how many attempts were lost, and did we give up?
    // (Ack-vs-request loss only matters for the asynchronous
    // ExecutorFleet, which models duplicate suppression explicitly.)
    int forced = fault_->take_scripted_rpc_drops(id, now_);
    int attempt = 0;
    for (;;) {
        bool lost = forced > 0 || fault_->rpc_attempt_lost();
        if (forced > 0)
            --forced;
        if (!lost)
            break;
        ++attempt;
        if (attempt > fault_->config().rpc_max_retries) {
            ++result_.rpc_gave_up;
            obs::emit({now_, obs::EventKind::kRpcGiveUp, id, attempt});
            obs::count("sim.rpc.gave_up");
            EF_INFO("command for job "
                    << id << " lost after "
                    << fault_->config().rpc_max_retries
                    << " retries; allocation unchanged");
            return false;
        }
        ++result_.rpc_retries;
        obs::emit({now_, obs::EventKind::kRpcRetry, id, attempt});
        obs::count("sim.rpc.retries");
        *penalty += fault_->rpc_backoff(attempt);
    }
    *penalty += fault_->rpc_delay();
    return true;
}

void
Simulator::apply_resize(JobRt &job, GpuCount desired)
{
    const JobId id = job.spec.id;
    const GpuCount old = job.gpus;
    if (desired == old)
        return;

    // Unreliable control plane: the resize command can be lost. A
    // given-up command leaves the previous allocation in force until
    // a later replan reconciles; retries charge backoff latency to
    // the job below.
    Time rpc_penalty = 0.0;
    if (!deliver_resize(id, &rpc_penalty))
        return;

    if (desired == 0) {
        placement_.release(id);
        job.gpus = 0;
        job.current_tpt = 0.0;
        job.state = JobState::kWaiting;
        ++job.outcome.scaling_events;
        result_.allocation_log.push_back(
            AllocationEvent{now_, id, {}});
        if (obs::tracing()) {
            obs::emit({now_, obs::EventKind::kScale, id, old, 0});
            obs::emit({now_, obs::EventKind::kAllocChange, id, old});
        }
        return;
    }

    PlacementResult res;
    if (old == 0) {
        res = placement_.place(id, desired,
                               scheduler_->placement_strategy(),
                               scheduler_->allow_migration());
    } else {
        res = placement_.resize(id, desired,
                                scheduler_->placement_strategy(),
                                scheduler_->allow_migration());
    }
    if (!res.ok) {
        ++result_.placement_failures;
        obs::emit({now_, obs::EventKind::kPlacementFail, id, desired});
        EF_DEBUG("placement failed for job " << id << " (" << desired
                                             << " GPUs)");
        return;  // keep the previous allocation
    }

    // Defragmentation relocations pause their victims too.
    for (const Migration &m : res.migrations) {
        if (m.job == id)
            continue;
        JobRt &other = rt(m.job);
        ++other.outcome.migrations;
        charge_pause(other, overhead_.migration_seconds(
                                other.spec.model, other.gpus));
        if (other.state == JobState::kRunning)
            refresh_throughput(other);
        result_.allocation_log.push_back(
            AllocationEvent{now_, m.job, m.to});
        if (obs::tracing()) {
            obs::TraceEvent moved{now_, obs::EventKind::kAllocChange,
                                  m.job, other.gpus};
            moved.ids = trace_ids(m.to);
            obs::emit(moved);
            obs::TraceEvent mig{now_, obs::EventKind::kMigration,
                                m.job, other.gpus};
            mig.ids = trace_ids(m.to);
            obs::emit(mig);
        }
        obs::count("sim.migrations");
    }

    job.gpus = desired;
    job.state = JobState::kRunning;
    ++job.outcome.scaling_events;
    // Scaling checkpoints state — unless the checkpoint write itself
    // fails, in which case the previous checkpoint stays the restore
    // point and progress since then remains at risk.
    bool ckpt_ok = true;
    if (fault_ != nullptr && fault_->checkpoint_write_fails(id, now_)) {
        ++result_.ckpt_failures;
        ckpt_ok = false;
    } else {
        job.checkpoint_iters = job.executed;
    }
    result_.allocation_log.push_back(
        AllocationEvent{now_, id, placement_.gpus_of(id)});
    if (obs::tracing()) {
        obs::emit({now_, obs::EventKind::kScale, id, old, desired});
        obs::emit({now_, obs::EventKind::kCheckpoint, id,
                   ckpt_ok ? 1 : 0});
        obs::TraceEvent alloc{now_, obs::EventKind::kAllocChange, id,
                              old};
        alloc.ids = trace_ids(placement_.gpus_of(id));
        obs::emit(alloc);
    }
    obs::count("sim.scalings");
    if (is_unbounded(job.outcome.first_run_time))
        job.outcome.first_run_time = now_;
    charge_pause(job, overhead_.scaling_seconds(job.spec.model, old,
                                                desired) +
                          rpc_penalty);
    if (fault_ != nullptr && fault_->straggler_starts()) {
        // The rebuilt worker group came up with a straggler.
        job.straggler_factor = fault_->straggler_slowdown();
        job.straggler_until = now_ + fault_->straggler_duration_s();
        ++result_.stragglers_observed;
        if (obs::tracing()) {
            obs::TraceEvent straggle{
                now_, obs::EventKind::kStragglerStart, id};
            straggle.x = job.straggler_factor;
            obs::emit(straggle);
        }
        obs::count("sim.stragglers");
        events_.push(Event{job.straggler_until, next_seq_++,
                           Event::kStragglerEnd, id});
    }
    refresh_throughput(job);
}

void
Simulator::apply_decision(const SchedulerDecision &decision)
{
    GpuCount desired_total = 0;
    for (const auto &[id, g] : decision.gpus) {
        EF_CHECK_MSG(g >= 0, "negative allocation for job " << id);
        desired_total += g;
    }
    EF_CHECK_MSG(desired_total <= topology_.total_gpus(),
                 scheduler_->name() << " requested " << desired_total
                                    << " GPUs on a "
                                    << topology_.total_gpus()
                                    << "-GPU cluster");

    // Shrinks and suspensions first to free capacity, then growths
    // (largest first so compact placements are found while space is
    // contiguous).
    std::vector<JobId> grows;
    for (JobId id : active_jobs()) {
        JobRt &job = rt(id);
        GpuCount desired = decision.of(id);
        if (desired < job.gpus)
            apply_resize(job, desired);
        else if (desired > job.gpus)
            grows.push_back(id);
    }
    std::stable_sort(grows.begin(), grows.end(),
                     [&decision](JobId a, JobId b) {
                         return decision.of(a) > decision.of(b);
                     });
    for (JobId id : grows)
        apply_resize(rt(id), decision.of(id));
}

void
Simulator::record_timelines()
{
    result_.used_gpus.record(now_, placement_.used_gpus());
    record_fragmentation();
    if (!config_.record_efficiency)
        return;
    double ce = 0.0;
    for (const auto &[id, job_ptr] : jobs_) {
        const JobRt &job = *job_ptr;
        if (job.state != JobState::kRunning || job.gpus <= 0)
            continue;
        GpuCount base = job.curve.min_workers();
        double per_gpu_base =
            job.curve.throughput(base) / static_cast<double>(base);
        // Eq. 8: each of the job's GPUs contributes its per-GPU
        // throughput relative to the 1-GPU rate; summed over the job
        // that is simply T_actual(g) / T(1).
        ce += job.current_tpt / per_gpu_base;
    }
    const double efficiency =
        ce / static_cast<double>(topology_.total_gpus());
    result_.cluster_efficiency.record(now_, efficiency);
    if (obs::metrics() != nullptr) {
        obs::gauge_set("sim.cluster_efficiency_last", efficiency);
        obs::observe("sim.cluster_efficiency", kEfficiencyEdges,
                     efficiency);
        obs::gauge_set("sim.used_gpus_last",
                       static_cast<double>(placement_.used_gpus()));
    }
}

bool
Simulator::any_nonterminal_jobs() const
{
    for (const auto &[id, job] : jobs_) {
        if (job->active())
            return true;
    }
    return false;
}

void
Simulator::arm_tick()
{
    Time interval = scheduler_->reschedule_interval();
    if (interval <= 0.0 || tick_armed_)
        return;
    if (!any_nonterminal_jobs())
        return;
    events_.push(Event{now_ + interval, next_seq_++, Event::kTick,
                       kInvalidJob});
    tick_armed_ = true;
}

void
Simulator::schedule_next_failure(int server)
{
    if (fault_ == nullptr || !fault_->server_crashes_enabled())
        return;
    Time delay = fault_->server_crash_delay();
    events_.push(Event{now_ + delay, next_seq_++, Event::kServerDown,
                       static_cast<JobId>(server)});
}

void
Simulator::schedule_next_gpu_fault()
{
    if (fault_ == nullptr || !fault_->gpu_faults_enabled())
        return;
    Time delay = fault_->gpu_fault_delay(topology_.total_gpus());
    GpuCount target = fault_->gpu_fault_target(topology_.total_gpus());
    events_.push(Event{now_ + delay, next_seq_++, Event::kGpuDown,
                       static_cast<JobId>(target),
                       fault_->gpu_repair_s()});
}

void
Simulator::queue_scripted_faults()
{
    if (fault_ == nullptr)
        return;
    for (const FaultEvent &ev : fault_->queueable_script_events()) {
        Event event;
        event.time = ev.time;
        event.seq = next_seq_++;
        event.job = static_cast<JobId>(ev.target);
        event.from_script = true;
        switch (ev.type) {
          case FaultType::kServerCrash:
            EF_FATAL_IF(ev.target < 0 ||
                            ev.target >= topology_.num_servers(),
                        "scripted server-crash target " << ev.target
                            << " out of range");
            event.kind = Event::kServerDown;
            event.dur = ev.duration_s > 0.0 ? ev.duration_s
                                            : fault_->server_repair_s();
            break;
          case FaultType::kGpuFault:
            EF_FATAL_IF(ev.target < 0 ||
                            ev.target >= topology_.total_gpus(),
                        "scripted gpu-fault target " << ev.target
                            << " out of range");
            event.kind = Event::kGpuDown;
            event.dur = ev.duration_s > 0.0 ? ev.duration_s
                                            : fault_->gpu_repair_s();
            break;
          case FaultType::kStraggler:
            EF_FATAL_IF(jobs_.count(static_cast<JobId>(ev.target)) == 0,
                        "scripted straggler targets unknown job "
                            << ev.target);
            event.kind = Event::kStragglerStart;
            event.dur = ev.duration_s > 0.0
                            ? ev.duration_s
                            : fault_->straggler_duration_s();
            event.mag = ev.magnitude > 1.0
                            ? ev.magnitude
                            : fault_->straggler_slowdown();
            break;
          default:
            continue;  // rpc-drop / ckpt-fail arm inside the injector
        }
        events_.push(event);
    }
}

void
Simulator::evict_job(JobId id)
{
    JobRt &job = rt(id);
    const GpuCount old = job.gpus;
    const double rolled_back =
        std::max(0.0, job.executed - job.checkpoint_iters);
    placement_.release(id);
    job.gpus = 0;
    job.current_tpt = 0.0;
    job.state = JobState::kWaiting;
    job.executed = std::min(job.executed, job.checkpoint_iters);
    ++job.outcome.failures_suffered;
    result_.allocation_log.push_back(AllocationEvent{now_, id, {}});
    if (obs::tracing()) {
        obs::TraceEvent evict{now_, obs::EventKind::kJobEvict, id,
                              old};
        evict.x = rolled_back;
        obs::emit(evict);
        obs::emit({now_, obs::EventKind::kAllocChange, id, old});
    }
    obs::count("sim.evictions");
}

void
Simulator::handle_server_down(const Event &event)
{
    const int server = static_cast<int>(event.job);
    // The rate-based chain reschedules on repair (handle_server_up),
    // preserving the legacy FailureConfig draw sequence exactly.
    if (!placement_.server_available(server))
        return;  // already down (stale event)
    // Evict every job with a worker on the failed server: it loses its
    // GPUs and rolls back to its last checkpoint.
    std::vector<JobId> victims;
    for (JobId id : placement_.placed_jobs()) {
        for (GpuCount g : placement_.gpus_of(id)) {
            if (topology_.server_of(g) == server) {
                victims.push_back(id);
                break;
            }
        }
    }
    for (JobId id : victims)
        evict_job(id);
    placement_.set_server_available(server, false);
    view_dirty_ = true;  // capacity shrank; victims lost their GPUs
    ++fault_epoch_;
    if (durable_ != nullptr) {
        recover::Encoder body;
        body.f64(now_);
        body.u8(static_cast<std::uint8_t>(FaultType::kServerCrash));
        body.i64(server);
        journal_append(recover::RecordKind::kFault, body);
    }
    obs::emit({now_, obs::EventKind::kServerDown, kInvalidJob, server,
               static_cast<std::int64_t>(victims.size())});
    obs::count("sim.faults.server_down");
    EF_INFO("server " << server << " failed at "
                      << format_double(now_ / kHour, 2) << " h ("
                      << victims.size() << " jobs evicted)");
    Time repair =
        event.dur > 0.0 ? event.dur : fault_->server_repair_s();
    events_.push(Event{now_ + repair, next_seq_++, Event::kServerUp,
                       static_cast<JobId>(server)});
    if (any_nonterminal_jobs())
        request_replan();
}

void
Simulator::handle_gpu_down(const Event &event)
{
    const GpuCount gpu = static_cast<GpuCount>(event.job);
    if (!event.from_script)
        schedule_next_gpu_fault();
    const int server = topology_.server_of(gpu);
    if (!placement_.server_available(server))
        return;  // the whole server is already down; outage dominates
    if (!placement_.gpu_available(gpu))
        return;  // already down (stale event)
    // Finer-grained than a server crash: only the placement using this
    // one GPU is evicted; co-located jobs on other GPUs keep running.
    const JobId victim = placement_.owner_of(gpu);
    if (victim != kInvalidJob)
        evict_job(victim);
    placement_.set_gpu_available(gpu, false);
    ++result_.gpu_faults;
    ++fault_epoch_;
    view_dirty_ = true;
    if (durable_ != nullptr) {
        recover::Encoder body;
        body.f64(now_);
        body.u8(static_cast<std::uint8_t>(FaultType::kGpuFault));
        body.i64(gpu);
        journal_append(recover::RecordKind::kFault, body);
    }
    obs::emit({now_, obs::EventKind::kGpuDown, kInvalidJob, gpu,
               victim != kInvalidJob ? 1 : 0});
    obs::count("sim.faults.gpu_down");
    EF_INFO("GPU " << gpu << " failed at "
                   << format_double(now_ / kHour, 2) << " h"
                   << (victim != kInvalidJob ? " (1 job evicted)"
                                             : ""));
    Time repair = event.dur > 0.0 ? event.dur : fault_->gpu_repair_s();
    events_.push(Event{now_ + repair, next_seq_++, Event::kGpuUp,
                       static_cast<JobId>(gpu)});
    if (any_nonterminal_jobs())
        request_replan();
}

void
Simulator::handle_gpu_up(GpuCount gpu)
{
    if (placement_.gpu_available(gpu))
        return;  // stale event
    placement_.set_gpu_available(gpu, true);
    view_dirty_ = true;  // capacity grew
    obs::emit({now_, obs::EventKind::kGpuUp, kInvalidJob, gpu});
    if (any_nonterminal_jobs())
        request_replan();
}

void
Simulator::handle_straggler_start(const Event &event)
{
    JobRt &job = rt(event.job);
    if (!job.active())
        return;  // finished or dropped before the fault fired
    job.straggler_factor = std::max(1.0, event.mag);
    job.straggler_until = now_ + event.dur;
    ++result_.stragglers_observed;
    if (obs::tracing()) {
        obs::TraceEvent straggle{
            now_, obs::EventKind::kStragglerStart, event.job};
        straggle.x = job.straggler_factor;
        obs::emit(straggle);
    }
    obs::count("sim.stragglers");
    events_.push(Event{job.straggler_until, next_seq_++,
                       Event::kStragglerEnd, event.job});
    // Stragglers change throughput, not capacity: no replan, but the
    // job's completion must be re-predicted at the slowed rate.
    if (job.state == JobState::kRunning && job.gpus > 0)
        refresh_throughput(job);
}

void
Simulator::handle_straggler_end(JobId id)
{
    JobRt &job = rt(id);
    if (job.straggler_factor <= 1.0 || now_ < job.straggler_until)
        return;  // stale event (a newer window superseded this one)
    job.straggler_factor = 1.0;
    job.straggler_until = -kTimeInfinity;
    obs::emit({now_, obs::EventKind::kStragglerEnd, id});
    if (job.state == JobState::kRunning && job.gpus > 0)
        refresh_throughput(job);
}

void
Simulator::handle_server_up(int server)
{
    if (placement_.server_available(server))
        return;
    placement_.set_server_available(server, true);
    view_dirty_ = true;  // capacity grew
    obs::emit({now_, obs::EventKind::kServerUp, kInvalidJob, server});
    schedule_next_failure(server);
    if (any_nonterminal_jobs())
        request_replan();
}

std::uint64_t
Simulator::state_hash() const
{
    Fnv1a h;
    // Event clock.
    h.f64(now_);
    h.u64(next_seq_);
    h.u64(fault_epoch_);
    // Job queue, in the (deterministic) submission order.
    for (JobId id : submit_order_) {
        const JobRt &job = rt(id);
        h.i64(id);
        h.u64(static_cast<std::uint64_t>(job.state));
        h.byte(job.arrived ? 1 : 0);
        h.f64(job.executed);
        h.f64(job.attained_gpu_seconds);
        h.f64(job.last_update);
        h.f64(job.progress_resume);
        h.f64(job.checkpoint_iters);
        h.f64(job.current_tpt);
        h.f64(job.straggler_factor);
        h.f64(job.straggler_until);
        h.i64(job.gpus);
    }
    // Concrete allocations and per-GPU health: which job owns which
    // GPU id, not just the counts — placement choices are part of the
    // determinism contract (they feed topology-dependent throughput).
    const GpuCount total = topology_.total_gpus();
    for (GpuCount gpu = 0; gpu < total; ++gpu) {
        h.i64(placement_.owner_of(gpu));
        h.byte(placement_.gpu_available(gpu) ? 1 : 0);
    }
    for (int server = 0; server < topology_.num_servers(); ++server)
        h.byte(placement_.server_available(server) ? 1 : 0);
    // Service mode: queued-but-undecided submissions and the token
    // bucket are determinism-relevant state the job fields don't see.
    if (service_governor_ != nullptr) {
        h.u64(service_governor_->fingerprint());
        h.u64(service_queue_.size());
        for (JobId id : service_queue_)
            h.i64(id);
    }
    // RNG cursors: a fault stream that advanced differently is a
    // divergence even before it changes any allocation.
    if (fault_ != nullptr)
        h.u64(fault_->state_fingerprint());
    // Background defrag: SA cursor, governor bucket, budget ledger and
    // accepted-move log (null — and absent from the digest — when
    // disabled or budget-zero, keeping those runs byte-identical).
    if (defrag_ != nullptr)
        h.u64(defrag_->fingerprint());
    return h.digest();
}

void
Simulator::audit_state(bool terminal)
{
    Fnv1a h;
    h.u64(result_.state_hash);
    h.u64(state_hash());
    result_.state_hash = h.digest();
    ++result_.state_hash_samples;
    if (durable_ != nullptr || replaying())
        commit_round(terminal);
}

std::uint64_t
Simulator::config_fingerprint() const
{
    // The shape a snapshot is only valid against. Deliberately absent:
    // planner_shards/threads (decisions are bit-identical across shard
    // settings, so recovery may change them) and the fault *rates*
    // (the injector's RNG cursors are in the snapshot body).
    Fnv1a h;
    h.str(trace_.name);
    h.u64(trace_.jobs.size());
    for (const JobSpec &job : trace_.jobs) {
        // Trace *content*, not just its shape: two presets that differ
        // only in generator seed must not share a fingerprint.
        h.i64(job.id);
        h.f64(job.submit_time);
        h.i64(job.iterations);
        h.f64(job.deadline);
        h.i64(job.requested_gpus);
    }
    h.i64(topology_.total_gpus());
    h.i64(topology_.num_servers());
    h.str(result_.scheduler_name);
    h.byte(config_.service.enabled ? 1 : 0);
    h.byte(fault_ != nullptr ? 1 : 0);
    h.byte(defrag_ != nullptr ? 1 : 0);
    h.f64(config_.max_time);
    return h.digest();
}

void
Simulator::encode_state(recover::Encoder *enc) const
{
    enc->u64(config_fingerprint());
    // Clocks and replan bookkeeping.
    enc->f64(now_);
    enc->u64(next_seq_);
    enc->u64(fault_epoch_);
    enc->boolean(tick_armed_);
    enc->boolean(replan_pending_);
    enc->boolean(view_dirty_);
    enc->f64(last_decision_time_);
    enc->u64(sched_crash_cursor_);
    // Event queue, drained in pop order (deterministic bytes; restore
    // re-heapifies, so any order would round-trip the same state).
    {
        auto copy = events_;
        enc->u64(copy.size());
        while (!copy.empty()) {
            const Event &e = copy.top();
            enc->f64(e.time);
            enc->u64(e.seq);
            enc->u8(static_cast<std::uint8_t>(e.kind));
            enc->i64(e.job);
            enc->f64(e.dur);
            enc->f64(e.mag);
            enc->boolean(e.from_script);
            copy.pop();
        }
    }
    // Jobs, in submission order. The spec is stored (not rebuilt from
    // the trace) because service mode mutates it in place on degrade.
    enc->u64(submit_order_.size());
    for (JobId id : submit_order_) {
        const JobRt &job = rt(id);
        serve::encode_job_spec(enc, job.spec);
        serve::encode_curve(enc, job.curve);
        enc->boolean(job.arrived);
        enc->u8(static_cast<std::uint8_t>(job.state));
        enc->f64(job.executed);
        enc->f64(job.last_update);
        enc->f64(job.progress_resume);
        enc->f64(job.attained_gpu_seconds);
        enc->i64(job.gpus);
        enc->f64(job.current_tpt);
        enc->f64(job.noise_factor);
        enc->f64(job.checkpoint_iters);
        enc->f64(job.straggler_factor);
        enc->f64(job.straggler_until);
        enc->boolean(job.outcome.admitted);
        enc->boolean(job.outcome.finished);
        enc->f64(job.outcome.finish_time);
        enc->f64(job.outcome.first_run_time);
        enc->f64(job.outcome.gpu_seconds);
        enc->i64(job.outcome.scaling_events);
        enc->i64(job.outcome.migrations);
        enc->i64(job.outcome.failures_suffered);
        enc->boolean(job.outcome.demoted);
    }
    // Concrete placement and hardware health.
    const GpuCount total = topology_.total_gpus();
    enc->u64(static_cast<std::uint64_t>(total));
    for (GpuCount gpu = 0; gpu < total; ++gpu) {
        enc->i64(placement_.owner_of(gpu));
        enc->boolean(!placement_.gpu_available(gpu));
    }
    enc->u64(static_cast<std::uint64_t>(topology_.num_servers()));
    for (int server = 0; server < topology_.num_servers(); ++server)
        enc->boolean(!placement_.server_available(server));
    // Service mode.
    if (service_governor_ != nullptr) {
        enc->boolean(true);
        enc->f64(service_governor_->tokens_raw());
        enc->f64(service_governor_->last_refill());
    } else {
        enc->boolean(false);
    }
    enc->u64(service_queue_.size());
    for (JobId id : service_queue_)
        enc->i64(id);
    // Fault-injector RNG cursors and armed scripted events.
    if (fault_ != nullptr) {
        enc->boolean(true);
        serve::encode_fault_state(enc, fault_->capture_state());
    } else {
        enc->boolean(false);
    }
    // Background defrag: SA stream, governor bucket, budget ledger,
    // accepted-move log.
    if (defrag_ != nullptr) {
        enc->boolean(true);
        defrag_->encode_state(enc);
    } else {
        enc->boolean(false);
    }
    // Scheduler-internal cross-round state (policy-owned blob).
    std::string blob;
    scheduler_->encode_recovery_state(&blob);
    enc->str(blob);
    // Result counters and timelines accumulated so far.
    enc->u64(result_.allocation_log.size());
    for (const AllocationEvent &ev : result_.allocation_log) {
        enc->f64(ev.time);
        enc->i64(ev.job);
        enc->u64(ev.gpus.size());
        for (GpuCount g : ev.gpus)
            enc->i64(g);
    }
    serve::encode_step_series(enc, result_.used_gpus);
    serve::encode_step_series(enc, result_.cluster_efficiency);
    serve::encode_step_series(enc, result_.submitted_jobs);
    serve::encode_step_series(enc, result_.admitted_jobs);
    serve::encode_step_series(enc, result_.buddy_fragmentation);
    serve::encode_step_series(enc, result_.span_excess);
    enc->f64(result_.makespan);
    enc->i64(result_.placement_failures);
    enc->i64(result_.replans_attempted);
    enc->i64(result_.replans_coalesced);
    enc->i64(result_.replans_elided);
    enc->i64(result_.rpc_retries);
    enc->i64(result_.rpc_gave_up);
    enc->i64(result_.stragglers_observed);
    enc->i64(result_.gpu_faults);
    enc->i64(result_.ckpt_failures);
    enc->i64(result_.slo_demotions);
    enc->i64(result_.shed_queue_full);
    enc->i64(result_.service_rounds);
    enc->i64(result_.service_rounds_forced);
    enc->i64(result_.service_degraded);
    enc->u64(result_.max_service_queue_depth);
    enc->i64(result_.defrag_rounds);
    enc->i64(result_.defrag_moves);
    enc->f64(result_.defrag_budget_spent);
    enc->u64(result_.state_hash);
    enc->u64(result_.state_hash_samples);
}

recover::Status
Simulator::decode_state(recover::Decoder *dec)
{
    using recover::ErrorCode;
    using recover::Status;
    const Status corrupt = Status::error(
        ErrorCode::kBadRecord, "snapshot payload is malformed");

    std::uint64_t fingerprint = 0;
    if (!dec->u64(&fingerprint))
        return corrupt;
    if (fingerprint != config_fingerprint()) {
        return Status::error(
            ErrorCode::kStateMismatch,
            "snapshot was taken with a different trace, scheduler, or "
            "configuration");
    }
    dec->f64(&now_);
    dec->u64(&next_seq_);
    dec->u64(&fault_epoch_);
    dec->boolean(&tick_armed_);
    dec->boolean(&replan_pending_);
    dec->boolean(&view_dirty_);
    dec->f64(&last_decision_time_);
    dec->u64(&sched_crash_cursor_);
    std::uint64_t n = 0;
    if (!dec->count(&n, 42))  // event wire size: 8*5 + 1 + 1
        return corrupt;
    events_ = decltype(events_)(event_after);
    for (std::uint64_t i = 0; i < n; ++i) {
        Event e;
        std::uint8_t kind = 0;
        std::int64_t job = 0;
        dec->f64(&e.time);
        dec->u64(&e.seq);
        dec->u8(&kind);
        dec->i64(&job);
        dec->f64(&e.dur);
        dec->f64(&e.mag);
        dec->boolean(&e.from_script);
        if (!dec->ok() || kind > Event::kStragglerEnd)
            return corrupt;
        e.kind = static_cast<Event::Kind>(kind);
        e.job = static_cast<JobId>(job);
        events_.push(e);
    }
    if (!dec->count(&n, 64) || n != submit_order_.size())
        return corrupt;
    for (JobId id : submit_order_) {
        JobRt &job = rt(id);
        JobSpec spec;
        if (!serve::decode_job_spec(dec, &spec) || spec.id != id)
            return corrupt;
        ScalingCurve curve;
        if (!serve::decode_curve(dec, &curve) || curve.empty())
            return corrupt;
        std::uint8_t state = 0;
        dec->boolean(&job.arrived);
        dec->u8(&state);
        dec->f64(&job.executed);
        dec->f64(&job.last_update);
        dec->f64(&job.progress_resume);
        dec->f64(&job.attained_gpu_seconds);
        std::int64_t gpus = 0;
        dec->i64(&gpus);
        dec->f64(&job.current_tpt);
        dec->f64(&job.noise_factor);
        dec->f64(&job.checkpoint_iters);
        dec->f64(&job.straggler_factor);
        dec->f64(&job.straggler_until);
        dec->boolean(&job.outcome.admitted);
        dec->boolean(&job.outcome.finished);
        dec->f64(&job.outcome.finish_time);
        dec->f64(&job.outcome.first_run_time);
        dec->f64(&job.outcome.gpu_seconds);
        std::int64_t scaling_events = 0, migrations = 0, failures = 0;
        dec->i64(&scaling_events);
        dec->i64(&migrations);
        dec->i64(&failures);
        dec->boolean(&job.outcome.demoted);
        if (!dec->ok() ||
            state > static_cast<std::uint8_t>(JobState::kFinished))
            return corrupt;
        job.spec = spec;
        job.curve = curve;
        job.outcome.spec = spec;
        job.state = static_cast<JobState>(state);
        job.gpus = static_cast<GpuCount>(gpus);
        job.outcome.scaling_events = static_cast<int>(scaling_events);
        job.outcome.migrations = static_cast<int>(migrations);
        job.outcome.failures_suffered = static_cast<int>(failures);
    }
    const GpuCount total = topology_.total_gpus();
    if (!dec->count(&n, 9) ||
        n != static_cast<std::uint64_t>(total))
        return corrupt;
    std::vector<JobId> owner(static_cast<std::size_t>(total));
    std::vector<bool> gpu_down(static_cast<std::size_t>(total));
    for (GpuCount gpu = 0; gpu < total; ++gpu) {
        std::int64_t job = 0;
        bool down = false;
        dec->i64(&job);
        dec->boolean(&down);
        owner[static_cast<std::size_t>(gpu)] =
            static_cast<JobId>(job);
        gpu_down[static_cast<std::size_t>(gpu)] = down;
    }
    if (!dec->count(&n, 1) ||
        n != static_cast<std::uint64_t>(topology_.num_servers()))
        return corrupt;
    std::vector<bool> server_down(
        static_cast<std::size_t>(topology_.num_servers()));
    for (std::uint64_t i = 0; i < n; ++i) {
        bool down = false;
        dec->boolean(&down);
        server_down[static_cast<std::size_t>(i)] = down;
    }
    for (JobId id : owner) {
        if (id != kInvalidJob && jobs_.count(id) == 0)
            return corrupt;
    }
    if (!dec->ok())
        return corrupt;
    placement_.restore(owner, gpu_down, server_down);
    bool has_governor = false;
    if (!dec->boolean(&has_governor) ||
        has_governor != (service_governor_ != nullptr))
        return Status::error(ErrorCode::kStateMismatch,
                             "snapshot service mode differs from the "
                             "running configuration");
    if (has_governor) {
        double tokens = 0.0;
        Time last_refill = 0.0;
        dec->f64(&tokens);
        dec->f64(&last_refill);
        if (!dec->ok())
            return corrupt;
        service_governor_->restore(tokens, last_refill);
    }
    if (!dec->count(&n, 8))
        return corrupt;
    service_queue_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::int64_t id = 0;
        if (!dec->i64(&id) ||
            jobs_.count(static_cast<JobId>(id)) == 0)
            return corrupt;
        service_queue_.push_back(static_cast<JobId>(id));
    }
    bool has_faults = false;
    if (!dec->boolean(&has_faults) ||
        has_faults != (fault_ != nullptr))
        return Status::error(ErrorCode::kStateMismatch,
                             "snapshot fault injection differs from "
                             "the running configuration");
    if (has_faults) {
        FaultInjector::State state;
        if (!serve::decode_fault_state(dec, &state) ||
            state.streams.size() != 6)
            return corrupt;
        fault_->restore_state(state);
    }
    bool has_defrag = false;
    if (!dec->boolean(&has_defrag) ||
        has_defrag != (defrag_ != nullptr))
        return Status::error(ErrorCode::kStateMismatch,
                             "snapshot defrag mode differs from the "
                             "running configuration");
    if (has_defrag && !defrag_->decode_state(dec))
        return corrupt;
    std::string blob;
    if (!dec->str(&blob))
        return corrupt;
    if (!scheduler_->decode_recovery_state(blob)) {
        return Status::error(ErrorCode::kStateMismatch,
                             "scheduler rejected its recovery state");
    }
    if (!dec->count(&n, 24))
        return corrupt;
    result_.allocation_log.clear();
    result_.allocation_log.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        AllocationEvent ev;
        std::int64_t job = 0;
        dec->f64(&ev.time);
        dec->i64(&job);
        ev.job = static_cast<JobId>(job);
        std::uint64_t m = 0;
        if (!dec->count(&m, 8))
            return corrupt;
        ev.gpus.resize(static_cast<std::size_t>(m));
        for (GpuCount &g : ev.gpus) {
            std::int64_t raw = 0;
            dec->i64(&raw);
            g = static_cast<GpuCount>(raw);
        }
        if (!dec->ok())
            return corrupt;
        result_.allocation_log.push_back(std::move(ev));
    }
    if (!serve::decode_step_series(dec, &result_.used_gpus) ||
        !serve::decode_step_series(dec, &result_.cluster_efficiency) ||
        !serve::decode_step_series(dec, &result_.submitted_jobs) ||
        !serve::decode_step_series(dec, &result_.admitted_jobs) ||
        !serve::decode_step_series(dec, &result_.buddy_fragmentation) ||
        !serve::decode_step_series(dec, &result_.span_excess))
        return corrupt;
    dec->f64(&result_.makespan);
    std::int64_t counters[14] = {};
    for (std::int64_t &c : counters)
        dec->i64(&c);
    std::uint64_t max_depth = 0;
    dec->u64(&max_depth);
    std::int64_t defrag_rounds = 0, defrag_moves = 0;
    double defrag_budget_spent = 0.0;
    dec->i64(&defrag_rounds);
    dec->i64(&defrag_moves);
    dec->f64(&defrag_budget_spent);
    dec->u64(&result_.state_hash);
    dec->u64(&result_.state_hash_samples);
    if (!dec->ok() || !dec->empty())
        return corrupt;
    result_.defrag_rounds = static_cast<int>(defrag_rounds);
    result_.defrag_moves = static_cast<int>(defrag_moves);
    result_.defrag_budget_spent = defrag_budget_spent;
    result_.placement_failures = static_cast<int>(counters[0]);
    result_.replans_attempted = static_cast<int>(counters[1]);
    result_.replans_coalesced = static_cast<int>(counters[2]);
    result_.replans_elided = static_cast<int>(counters[3]);
    result_.rpc_retries = static_cast<int>(counters[4]);
    result_.rpc_gave_up = static_cast<int>(counters[5]);
    result_.stragglers_observed = static_cast<int>(counters[6]);
    result_.gpu_faults = static_cast<int>(counters[7]);
    result_.ckpt_failures = static_cast<int>(counters[8]);
    result_.slo_demotions = static_cast<int>(counters[9]);
    result_.shed_queue_full = static_cast<int>(counters[10]);
    result_.service_rounds = static_cast<int>(counters[11]);
    result_.service_rounds_forced = static_cast<int>(counters[12]);
    result_.service_degraded = static_cast<int>(counters[13]);
    result_.max_service_queue_depth =
        static_cast<std::size_t>(max_depth);
    return Status{};
}

recover::Status
Simulator::recover_state(const std::string &snapshot,
                         const recover::JournalContents &tail)
{
    using recover::ErrorCode;
    using recover::RecordKind;
    using recover::Status;

    recover::Decoder dec(snapshot);
    Status st = decode_state(&dec);
    if (!st.ok())
        return st;

    // Collect the round commits the re-execution must reproduce. Delta
    // records (submissions, verdicts, plan commits, faults) are the
    // audit trail; re-execution regenerates their effects from the
    // snapshot, so only the commit hashes are needed for verification.
    replay_.clear();
    replay_journal_records_ = tail.records.size();
    recovered_journal_bytes_ = tail.valid_bytes;
    for (std::size_t i = 0; i < tail.records.size(); ++i) {
        const recover::JournalRecord &rec = tail.records[i];
        if (rec.kind != RecordKind::kRoundCommit)
            continue;
        recover::Decoder body(rec.body);
        ReplayCommit rc;
        body.u64(&rc.round);
        body.f64(&rc.time);
        body.u64(&rc.hash);
        body.u64(&rc.crash_cursor);
        body.boolean(&rc.terminal);
        if (!body.ok() || !body.empty()) {
            return Status::error(ErrorCode::kBadRecord,
                                 "malformed round-commit record",
                                 static_cast<std::int64_t>(i));
        }
        const std::uint64_t expected =
            result_.state_hash_samples + replay_.size() + 1;
        if (rc.round != expected) {
            return Status::error(
                ErrorCode::kBadRecord,
                "round-commit sequence is not contiguous with the "
                "snapshot",
                static_cast<std::int64_t>(i));
        }
        replay_.push_back(rc);
    }
    replay_next_ = 0;
    if (!replay_.empty()) {
        // The last durable commit is authoritative for the scripted
        // crash cursor: it was written *after* that round's crash
        // check, so the crash that interrupted the run (if scripted)
        // is already consumed and cannot re-fire.
        sched_crash_cursor_ = replay_.back().crash_cursor;
    }
    recovered_ = true;
    obs::emit({now_, obs::EventKind::kRecoveryBegin, kInvalidJob,
               static_cast<std::int64_t>(replay_journal_records_),
               static_cast<std::int64_t>(replay_.size())});
    obs::count("recover.journal_records", replay_journal_records_);
    if (replay_.empty())
        finish_recovery();  // nothing to re-execute; resume directly
    return Status{};
}

void
Simulator::finish_recovery()
{
    // Re-anchor the log at the recovered state. The journal is
    // reopened for *append* (keeping the replayed records) and the
    // fresh snapshot deferred to the next event-loop boundary: the
    // replay exhausts inside commit_round, mid-flush_replan, where a
    // snapshot would capture a state the uninterrupted run never
    // holds at a boundary (same argument as the cadence deferral).
    // Until that snapshot lands, old snapshot + full journal is still
    // a complete recovery image, so a crash here loses nothing.
    durable_ = std::make_unique<recover::DurableLog>();
    recover::Status st =
        durable_->open_existing(config_.durability.journal_dir,
                                recovered_journal_bytes_);
    EF_FATAL_IF(!st.ok(),
                "durability: reopening the journal failed: "
                    << st.to_string());
    snapshot_pending_ = true;
    obs::emit({now_, obs::EventKind::kRecoveryEnd, kInvalidJob,
               static_cast<std::int64_t>(replay_next_)});
    // Deterministic replay cost: journal records re-applied. (A
    // wall-clock replay_ms would break byte-identical obs dumps.)
    obs::observe("recover.replay_cost_units", kReplayEdges,
                 static_cast<double>(replay_journal_records_));
}

void
Simulator::journal_append(recover::RecordKind kind,
                          const recover::Encoder &body)
{
    if (durable_ == nullptr || replaying())
        return;
    recover::Status st = durable_->append(kind, body.data());
    EF_FATAL_IF(!st.ok(),
                "durability: journal append failed: " << st.to_string());
}

void
Simulator::commit_round(bool terminal)
{
    const std::uint64_t round = result_.state_hash_samples;
    if (replaying()) {
        // Re-executing a journaled round: verify instead of write.
        const ReplayCommit &expect = replay_[replay_next_];
        EF_FATAL_IF(
            expect.round != round || expect.hash != result_.state_hash,
            "recovery divergence at round "
                << round << ": journal has hash "
                << expect.hash << " for round " << expect.round
                << ", re-execution produced " << result_.state_hash);
        sched_crash_cursor_ = expect.crash_cursor;
        ++replay_next_;
        obs::count("recover.replay_rounds");
        if (!replaying())
            finish_recovery();
        return;
    }
    if (durable_ == nullptr)
        return;

    // Crash decision BEFORE the commit record: the persisted cursor
    // must already exclude a crash that fires at this round, or
    // recovery would re-fire it forever.
    bool will_crash = false;
    if (fault_ != nullptr) {
        const std::vector<FaultEvent> &script =
            fault_->sched_crash_events();
        if (sched_crash_cursor_ < script.size()) {
            const FaultEvent &ev = script[sched_crash_cursor_];
            if (now_ >= ev.time &&
                (ev.target < 0 ||
                 round >= static_cast<std::uint64_t>(ev.target))) {
                ++sched_crash_cursor_;
                will_crash = true;
                obs::count("fault.sched_crashes");
            }
        }
        if (fault_->sched_crash_fires())
            will_crash = true;
    }

    recover::Encoder body;
    body.u64(round);
    body.f64(now_);
    body.u64(result_.state_hash);
    body.u64(sched_crash_cursor_);
    body.boolean(terminal);
    journal_append(recover::RecordKind::kRoundCommit, body);
    recover::Status st = durable_->commit();
    EF_FATAL_IF(!st.ok(),
                "durability: round commit failed: " << st.to_string());
    obs::count("recover.journal_records");

    if (!terminal && !will_crash &&
        round - snapshot_round_ >= config_.durability.snapshot_every) {
        // Deferred to the event-loop boundary: the commit fires from
        // inside flush_replan, before arm_tick() re-arms the tick, so
        // snapshotting here would capture a state the uninterrupted
        // run never passes through.
        snapshot_pending_ = true;
    }
    if (will_crash) {
        crashed_ = true;
        obs::count("fault.sched_crashes");
        EF_INFO("scheduler crash injected at round "
                << round << " (t=" << format_double(now_, 3) << " s)");
    }
}

recover::Status
Simulator::write_snapshot_now()
{
    EF_CHECK_MSG(durable_ != nullptr && durable_->is_open(),
                 "durability is not prepared");
    recover::Encoder enc;
    encode_state(&enc);
    recover::Status st = durable_->write_snapshot(enc.data());
    if (!st.ok())
        return st;
    snapshot_round_ = result_.state_hash_samples;
    obs::count("recover.snapshots");
    obs::count("recover.snapshot_bytes", enc.size());
    obs::gauge_set("recover.snapshot_bytes_last",
                   static_cast<double>(enc.size()));
    return st;
}

recover::Status
Simulator::prepare_durability()
{
    using recover::Status;
    if (durability_ready_)
        return Status{};
    const DurabilityConfig &cfg = config_.durability;
    EF_CHECK_MSG(!cfg.journal_dir.empty(),
                 "prepare_durability needs a journal_dir");
    EF_FATAL_IF(cfg.snapshot_every < 1,
                "durability.snapshot_every must be >= 1");
    if (cfg.recover) {
        std::string snapshot;
        recover::JournalContents contents;
        Status st = recover::DurableLog::load(cfg.journal_dir,
                                              &snapshot, &contents);
        if (!st.ok())
            return st;
        if (contents.tail.code != recover::ErrorCode::kOk) {
            EF_INFO("journal tail discarded during recovery: "
                    << contents.tail.to_string());
        }
        st = recover_state(snapshot, contents);
        if (!st.ok())
            return st;
    } else {
        durable_ = std::make_unique<recover::DurableLog>();
        Status st = durable_->open(cfg.journal_dir);
        if (!st.ok()) {
            durable_.reset();
            return st;
        }
    }
    durability_ready_ = true;
    return Status{};
}

void
Simulator::request_replan()
{
    ++result_.replans_attempted;
    if (replan_pending_) {
        ++result_.replans_coalesced;
        obs::count("sim.replans.coalesced");
        return;
    }
    replan_pending_ = true;
    if (!config_.coalesce_replans)
        flush_replan();
}

void
Simulator::flush_replan()
{
    EF_CHECK(replan_pending_);
    replan_pending_ = false;
    const Time since_last = now_ - last_decision_time_;
    if (config_.elide_replans && !view_dirty_ &&
        now_ == last_decision_time_) {
        // No arrival/completion/failure touched scheduler-visible
        // state since a decision was already made at this very
        // timestamp (the request came from a colliding tick). A
        // deterministic policy would return the same decision, and
        // re-applying a decision is a no-op — skip the call.
        ++result_.replans_elided;
        if (obs::tracing()) {
            obs::emit({now_, obs::EventKind::kReplanBegin, kInvalidJob,
                       static_cast<std::int64_t>(
                           active_jobs().size())});
            obs::emit({now_, obs::EventKind::kReplanEnd, kInvalidJob,
                       /*executed=*/0, /*resizes=*/0});
        }
        obs::count("sim.replans.elided");
        audit_state();
        arm_tick();
        return;
    }
    if (obs::tracing()) {
        obs::emit({now_, obs::EventKind::kReplanBegin, kInvalidJob,
                   static_cast<std::int64_t>(active_jobs().size())});
    }
    const std::size_t log_before = result_.allocation_log.size();
    SchedulerDecision decision = scheduler_->allocate();
    view_dirty_ = false;
    last_decision_time_ = now_;
    if (durable_ != nullptr) {
        recover::Encoder body;
        body.f64(now_);
        body.u64(decision.gpus.size());
        for (const auto &[id, g] : decision.gpus) {
            body.i64(id);
            body.i64(g);
        }
        journal_append(recover::RecordKind::kPlanCommit, body);
    }
    apply_decision(decision);
    const std::size_t resizes =
        result_.allocation_log.size() - log_before;
    if (obs::tracing()) {
        obs::emit({now_, obs::EventKind::kReplanEnd, kInvalidJob,
                   /*executed=*/1,
                   static_cast<std::int64_t>(resizes)});
    }
    if (obs::metrics() != nullptr) {
        obs::count("sim.replans.executed");
        obs::observe("sim.replan_resizes", kResizeEdges,
                     static_cast<double>(resizes));
        if (since_last >= 0.0 && !is_unbounded(since_last)) {
            obs::observe("sim.replan_interval_s", kReplanIntervalEdges,
                         since_last);
        }
        std::int64_t waiting = 0;
        for (const auto &[id, job] : jobs_) {
            if (job->active() && job->state == JobState::kWaiting)
                ++waiting;
        }
        obs::observe("sim.queue_depth", kQueueDepthEdges,
                     static_cast<double>(waiting));
        obs::gauge_set("sim.queue_depth_last",
                       static_cast<double>(waiting));
        // Fragmentation: share of idle capacity outside the largest
        // contiguous per-server free block — high values mean a
        // compact placement cannot be found without migrations.
        GpuCount idle = placement_.idle_gpus();
        GpuCount largest_free = 0;
        for (int server = 0; server < topology_.num_servers();
             ++server) {
            largest_free = std::max(largest_free,
                                    placement_.free_in_server(server));
        }
        double fragmentation =
            idle > 0 ? 1.0 - static_cast<double>(largest_free) /
                                 static_cast<double>(idle)
                     : 0.0;
        obs::observe("sim.fragmentation", kFragmentationEdges,
                     fragmentation);
        obs::gauge_set("sim.fragmentation_last", fragmentation);
    }
    // Failure-aware policies report SLO jobs whose guarantee a fault
    // broke; each is demoted to best-effort exactly once.
    for (JobId id : scheduler_->take_demotions()) {
        JobRt &job = rt(id);
        if (job.outcome.demoted)
            continue;
        job.outcome.demoted = true;
        ++result_.slo_demotions;
        obs::emit({now_, obs::EventKind::kJobDemote, id});
        obs::count("sim.demotions");
        EF_INFO("job " << id << " demoted to best-effort at "
                       << format_double(now_ / kHour, 2) << " h");
    }
    // Background defrag runs after the decision is applied, so the
    // round hash (audit_state below) covers any committed moves and a
    // journal replay re-executes them deterministically.
    maybe_defrag();
    record_timelines();
    audit_state();
    arm_tick();
}

void
Simulator::maybe_defrag()
{
    if (defrag_ == nullptr || !defrag_->try_begin_round(now_))
        return;
    // Eligible movers: running jobs currently holding GPUs. jobs_ is
    // ordered, so the list ascends by id as the planner requires.
    std::vector<defrag::DefragJob> eligible;
    for (const auto &[id, job] : jobs_) {
        if (job->state != JobState::kRunning || job->gpus <= 0 ||
            !placement_.is_placed(id))
            continue;
        defrag::DefragJob dj;
        dj.id = id;
        dj.model = job->spec.model;
        dj.global_batch = job->spec.global_batch;
        eligible.push_back(dj);
    }
    ++result_.defrag_rounds;
    const defrag::DefragPlan plan =
        defrag_->plan_round(placement_, eligible);
    if (!plan.moves.empty()) {
        // Audit trail: the accepted batch, journaled before it takes
        // effect (replay regenerates it by re-running the SA round).
        if (durable_ != nullptr) {
            recover::Encoder body;
            body.f64(now_);
            body.u64(plan.moves.size());
            for (const Migration &m : plan.moves) {
                body.i64(m.job);
                body.u64(m.to.size());
                for (GpuCount g : m.to)
                    body.i64(g);
            }
            journal_append(recover::RecordKind::kDefrag, body);
        }
        placement_.apply_moves(plan.moves);
        for (const Migration &m : plan.moves) {
            JobRt &moved = rt(m.job);
            ++moved.outcome.migrations;
            charge_pause(moved, overhead_.migration_seconds(
                                    moved.spec.model, moved.gpus));
            if (moved.state == JobState::kRunning)
                refresh_throughput(moved);
            result_.allocation_log.push_back(
                AllocationEvent{now_, m.job, m.to});
            if (obs::tracing()) {
                obs::TraceEvent alloc{now_,
                                      obs::EventKind::kAllocChange,
                                      m.job, moved.gpus};
                alloc.ids = trace_ids(m.to);
                obs::emit(alloc);
                obs::TraceEvent mig{now_, obs::EventKind::kMigration,
                                    m.job, moved.gpus};
                mig.ids = trace_ids(m.to);
                obs::emit(mig);
            }
            obs::count("sim.migrations");
        }
        result_.defrag_moves += static_cast<int>(plan.moves.size());
        result_.defrag_budget_spent += plan.cost_units;
    }
    if (obs::tracing()) {
        obs::TraceEvent round{now_, obs::EventKind::kDefragRound,
                              kInvalidJob,
                              static_cast<std::int64_t>(
                                  plan.moves.size()),
                              static_cast<std::int64_t>(plan.steps)};
        round.x = plan.objective_before - plan.objective_after;
        obs::emit(round);
    }
    if (obs::metrics() != nullptr) {
        obs::count("sim.defrag.rounds");
        obs::gauge_set("sim.defrag.budget_spent_total",
                       defrag_->budget_spent_units());
        obs::gauge_set("sim.defrag.moves_total",
                       static_cast<double>(defrag_->moves_committed()));
    }
}

void
Simulator::record_fragmentation()
{
    const FragmentationStats stats = fragmentation_stats(placement_);
    result_.buddy_fragmentation.record(now_,
                                       stats.buddy_external_frag);
    result_.span_excess.record(
        now_, static_cast<double>(stats.total_span_excess));
    if (obs::metrics() != nullptr) {
        obs::gauge_set("sim.buddy_fragmentation_last",
                       stats.buddy_external_frag);
        obs::observe("sim.buddy_fragmentation", kFragmentationEdges,
                     stats.buddy_external_frag);
        obs::gauge_set("sim.span_excess_last",
                       static_cast<double>(stats.total_span_excess));
        obs::observe("sim.span_excess", kSpanExcessEdges,
                     static_cast<double>(stats.total_span_excess));
    }
}

void
Simulator::apply_admission(JobId id, bool admitted)
{
    if (durable_ != nullptr) {
        recover::Encoder body;
        body.i64(id);
        body.f64(now_);
        body.boolean(admitted);
        journal_append(recover::RecordKind::kVerdict, body);
    }
    JobRt &job = rt(id);
    job.arrived = true;
    job.outcome.admitted = admitted;
    if (!admitted) {
        job.state = JobState::kDropped;
        obs::emit({now_, obs::EventKind::kJobReject, id});
        obs::count("sim.jobs.rejected");
        EF_DEBUG("job " << id << " dropped at submission");
    } else {
        job.state = JobState::kWaiting;
        obs::emit({now_, obs::EventKind::kJobAdmit, id});
        obs::count("sim.jobs.admitted");
    }

    std::size_t submitted = 0, accepted = 0;
    for (const auto &[jid, j] : jobs_) {
        if (j->arrived) {
            ++submitted;
            accepted += j->outcome.admitted ? 1 : 0;
        }
    }
    result_.submitted_jobs.record(now_, static_cast<double>(submitted));
    result_.admitted_jobs.record(now_, static_cast<double>(accepted));
}

void
Simulator::handle_arrival(JobId id)
{
    if (durable_ != nullptr) {
        recover::Encoder body;
        body.i64(id);
        body.f64(now_);
        journal_append(recover::RecordKind::kSubmission, body);
    }
    if (config_.service.enabled) {
        handle_service_arrival(id);
        return;
    }
    JobRt &job = rt(id);
    obs::emit({now_, obs::EventKind::kJobSubmit, id,
               job.spec.requested_gpus});
    obs::count("sim.jobs.submitted");
    bool ok = scheduler_->admit(job.spec);
    apply_admission(id, ok);
    if (ok) {
        view_dirty_ = true;  // the active-job set grew
        request_replan();
    }
}

void
Simulator::handle_service_arrival(JobId id)
{
    JobRt &job = rt(id);
    obs::emit({now_, obs::EventKind::kJobSubmit, id,
               job.spec.requested_gpus});
    obs::count("sim.jobs.submitted");
    if (service_queue_.size() >= config_.service.queue_watermark) {
        // Backpressure: the queue is at its watermark, so the verdict
        // is synchronous — no scheduler involvement, O(1) per arrival.
        ++result_.shed_queue_full;
        obs::count("sim.service.shed_queue_full");
        obs::emit({now_, obs::EventKind::kServeShed, id,
                   static_cast<std::int64_t>(
                       serve::ShedVerdict::kShedQueueFull),
                   static_cast<std::int64_t>(service_queue_.size())});
        obs::observe("sim.service.decision_latency_s",
                     kDecisionLatencyEdges, 0.0);
        apply_admission(id, false);
        return;
    }
    service_queue_.push_back(id);
    result_.max_service_queue_depth = std::max(
        result_.max_service_queue_depth, service_queue_.size());
    obs::gauge_set("sim.service.queue_depth",
                   static_cast<double>(service_queue_.size()));
    if (service_queue_.size() == 1)
        arm_service_round();
}

void
Simulator::arm_service_round()
{
    if (service_queue_.empty())
        return;
    // The round runs when the governor has a token — or at the oldest
    // submission's starvation horizon, whichever comes first.
    const Time horizon_due =
        rt(service_queue_.front()).spec.submit_time +
        config_.service.governor.starvation_horizon_s;
    const Time due = std::max(
        now_, std::min(service_governor_->next_eligible(now_),
                       horizon_due));
    events_.push(Event{due, next_seq_++, Event::kServiceRound});
}

void
Simulator::handle_service_round()
{
    if (service_queue_.empty())
        return;  // stale event (an earlier round drained the queue)
    const bool token = service_governor_->try_acquire(now_);
    ++result_.service_rounds;
    if (!token)
        ++result_.service_rounds_forced;
    const std::size_t batch = service_queue_.size();
    bool any_admitted = false;
    while (!service_queue_.empty()) {
        const JobId id = service_queue_.front();
        service_queue_.pop_front();
        JobRt &job = rt(id);
        bool ok = scheduler_->admit(job.spec);
        if (!ok && config_.service.degrade_infeasible &&
            !job.spec.is_best_effort()) {
            // Deadline-infeasible at current load: keep the work,
            // drop the guarantee. Best-effort admission never fails.
            job.spec.kind = JobKind::kBestEffort;
            job.spec.deadline = kTimeInfinity;
            job.outcome.spec = job.spec;
            ++result_.service_degraded;
            obs::count("sim.service.degraded");
            ok = scheduler_->admit(job.spec);
            EF_CHECK(ok);
        }
        obs::observe("sim.service.decision_latency_s",
                     kDecisionLatencyEdges,
                     now_ - job.spec.submit_time);
        if (!ok) {
            obs::emit({now_, obs::EventKind::kServeShed, id,
                       static_cast<std::int64_t>(
                           serve::ShedVerdict::kShedInfeasible),
                       static_cast<std::int64_t>(batch)});
        }
        apply_admission(id, ok);
        any_admitted = any_admitted || ok;
    }
    obs::count("sim.service.rounds");
    obs::gauge_set("sim.service.queue_depth", 0.0);
    obs::emit({now_, obs::EventKind::kServeRound, kInvalidJob,
               static_cast<std::int64_t>(batch), token ? 0 : 1});
    if (any_admitted) {
        // One replan for the whole batch: the coalescing machinery
        // sees a single request no matter how many jobs were queued.
        view_dirty_ = true;
        request_replan();
    }
}

void
Simulator::handle_completion_check(JobId id)
{
    JobRt &job = rt(id);
    if (job.state != JobState::kRunning)
        return;  // stale event
    if (job.remaining() > kIterEpsilon)
        return;  // stale event: the job was slowed after scheduling

    const GpuCount held = job.gpus;
    job.executed = static_cast<double>(job.spec.iterations);
    job.state = JobState::kFinished;
    job.outcome.finished = true;
    job.outcome.finish_time = now_;
    placement_.release(id);
    job.gpus = 0;
    job.current_tpt = 0.0;
    if (obs::tracing()) {
        obs::emit({now_, obs::EventKind::kAllocChange, id, held});
        obs::emit({now_, obs::EventKind::kJobFinish, id, held});
    }
    obs::count("sim.jobs.finished");
    view_dirty_ = true;  // the active-job set shrank, GPUs freed
    request_replan();
}

void
Simulator::handle_tick()
{
    // A tick by itself changes nothing the scheduler observes; the
    // replan it requests is elidable if it lands on a timestamp where
    // a decision was already made (view_dirty_ stays false).
    tick_armed_ = false;
    if (any_nonterminal_jobs())
        request_replan();
}

bool
Simulator::work_pending() const
{
    for (const auto &[id, job] : jobs_) {
        if (!job->arrived || job->active())
            return true;
    }
    return false;
}

RunResult
Simulator::run()
{
    if (!config_.durability.journal_dir.empty() &&
        !durability_ready_) {
        recover::Status st = prepare_durability();
        EF_FATAL_IF(!st.ok(), "durability: " << st.to_string());
    }
    if (!recovered_) {
        for (JobId id : submit_order_) {
            events_.push(Event{rt(id).spec.submit_time, next_seq_++,
                               Event::kArrival, id});
        }
        if (fault_ != nullptr) {
            if (fault_->server_crashes_enabled()) {
                for (int server = 0;
                     server < topology_.num_servers(); ++server) {
                    schedule_next_failure(server);
                }
            }
            schedule_next_gpu_fault();
            queue_scripted_faults();
        }
        if (durable_ != nullptr) {
            // Base snapshot of the seeded initial state: recovery
            // always has something to load, even before round 1.
            recover::Status st = write_snapshot_now();
            EF_FATAL_IF(!st.ok(), "durability: initial snapshot "
                                  "failed: "
                                      << st.to_string());
        }
    }

    while (true) {
        // Coalescing: a pending replan is flushed only once every
        // event at the current timestamp has been handled (flushing
        // may enqueue new events, so re-read the top afterwards).
        if (replan_pending_ &&
            (events_.empty() || events_.top().time > now_)) {
            flush_replan();
            if (crashed_)
                break;  // injected scheduler crash at a round commit
        }
        if (snapshot_pending_) {
            // Cadence snapshot, taken at a clean inter-event boundary
            // so the captured state matches what the uninterrupted
            // run holds at this point.
            snapshot_pending_ = false;
            recover::Status st = write_snapshot_now();
            EF_FATAL_IF(!st.ok(),
                        "durability: cadence snapshot failed: "
                            << st.to_string());
        }
        if (events_.empty())
            break;
        Event event = events_.top();
        events_.pop();
        if ((event.kind == Event::kServerDown ||
             event.kind == Event::kServerUp ||
             event.kind == Event::kGpuDown ||
             event.kind == Event::kGpuUp ||
             event.kind == Event::kStragglerStart ||
             event.kind == Event::kStragglerEnd) &&
            !work_pending()) {
            continue;  // drain the fault stream once all jobs ended
        }
        if (event.time > config_.max_time) {
            EF_WARN("simulation hit max_time with "
                    << (any_nonterminal_jobs() ? "unfinished" : "no")
                    << " jobs");
            break;
        }
        advance_progress(event.time);
        now_ = event.time;
        switch (event.kind) {
          case Event::kArrival:
            handle_arrival(event.job);
            break;
          case Event::kCompletion:
            handle_completion_check(event.job);
            break;
          case Event::kTick:
            handle_tick();
            break;
          case Event::kServerDown:
            handle_server_down(event);
            break;
          case Event::kServerUp:
            handle_server_up(static_cast<int>(event.job));
            break;
          case Event::kGpuDown:
            handle_gpu_down(event);
            break;
          case Event::kGpuUp:
            handle_gpu_up(static_cast<GpuCount>(event.job));
            break;
          case Event::kStragglerStart:
            handle_straggler_start(event);
            break;
          case Event::kStragglerEnd:
            handle_straggler_end(event.job);
            break;
          case Event::kServiceRound:
            handle_service_round();
            break;
        }
    }

    result_.jobs.clear();
    for (JobId id : submit_order_) {
        JobRt &job = rt(id);
        job.outcome.gpu_seconds = job.attained_gpu_seconds;
        result_.jobs.push_back(job.outcome);
        if (job.outcome.finished) {
            result_.makespan =
                std::max(result_.makespan, job.outcome.finish_time);
        }
    }
    result_.replan_failures = scheduler_->replan_failures();
    // Final digest over the terminal state. An injected crash dies at
    // its commit point instead — that commit is already durable, and
    // the recovered run takes the terminal sample itself.
    if (!crashed_)
        audit_state(/*terminal=*/true);
    if (snapshot_pending_ && !crashed_ && durable_ != nullptr) {
        // Replay exhausted at the terminal round: the end of the run
        // is itself a clean boundary, so the deferred post-recovery
        // snapshot lands here.
        snapshot_pending_ = false;
        recover::Status st = write_snapshot_now();
        EF_FATAL_IF(!st.ok(), "durability: terminal snapshot failed: "
                                  << st.to_string());
    }
    EF_FATAL_IF(!crashed_ && replaying(),
                "recovery divergence: journal holds "
                    << replay_.size() - replay_next_
                    << " round commits the re-execution never "
                       "reached");
    return result_;
}

}  // namespace ef

#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"
#include "common/table.h"

namespace ef {
namespace {

constexpr double kIterEpsilon = 1e-6;

}  // namespace

/** Runtime record of one job. */
struct Simulator::JobRt
{
    JobSpec spec;
    ScalingCurve curve;
    bool arrived = false;
    JobState state = JobState::kWaiting;

    double executed = 0.0;          ///< iterations completed
    Time last_update = 0.0;         ///< progress accounted up to here
    Time progress_resume = 0.0;     ///< paused (overhead) until here
    double attained_gpu_seconds = 0.0;

    GpuCount gpus = 0;              ///< currently held GPUs
    double current_tpt = 0.0;       ///< iterations/sec on the placement
    double noise_factor = 1.0;      ///< executor-vs-profile mismatch
    double checkpoint_iters = 0.0;  ///< progress safe from failures

    JobOutcome outcome;

    double remaining() const
    {
        return std::max(0.0, static_cast<double>(spec.iterations) -
                                 executed);
    }
    bool active() const
    {
        return arrived && (state == JobState::kWaiting ||
                           state == JobState::kRunning);
    }
};

/** Queue entry; min-heap by (time, seq). */
struct Simulator::Event
{
    enum Kind { kArrival, kCompletion, kTick, kServerDown, kServerUp };
    Time time = 0.0;
    std::uint64_t seq = 0;
    Kind kind = kArrival;
    JobId job = kInvalidJob;  ///< server index for failure events
};

bool
Simulator::event_after(const Event &a, const Event &b)
{
    if (a.time != b.time)
        return a.time > b.time;
    return a.seq > b.seq;
}

Simulator::Simulator(const Trace &trace, Scheduler *scheduler,
                     SimConfig config)
    : trace_(trace),
      scheduler_(scheduler),
      config_(config),
      topology_(trace.topology),
      perf_(&topology_),
      placement_(&topology_),
      overhead_(config.overhead),
      events_(event_after)
{
    EF_CHECK(scheduler_ != nullptr);
    scheduler_->bind(this);

    result_.scheduler_name = scheduler_->name();
    result_.trace_name = trace_.name;
    result_.total_gpus = topology_.total_gpus();

    for (const JobSpec &spec : trace_.jobs) {
        EF_FATAL_IF(jobs_.count(spec.id) > 0,
                    "duplicate job id " << spec.id << " in trace");
        auto job = std::make_unique<JobRt>();
        job->spec = spec;
        job->curve = curve_for(spec);
        job->outcome.spec = spec;
        if (config_.noise.throughput_error > 0.0) {
            // Deterministic per-job factor in [1 - e, 1 + e].
            Rng noise_rng(0x9e3779b9u ^
                          static_cast<std::uint64_t>(spec.id) * 2654435761u);
            job->noise_factor = 1.0 + noise_rng.uniform_real(
                                          -config_.noise.throughput_error,
                                          config_.noise.throughput_error);
        }
        jobs_.emplace(spec.id, std::move(job));
        submit_order_.push_back(spec.id);
    }
    if (config_.failures.enabled) {
        EF_FATAL_IF(config_.failures.server_mtbf_s <= 0.0,
                    "failure MTBF must be positive");
        failure_rng_ = std::make_unique<Rng>(config_.failures.seed);
    }
}

Simulator::~Simulator() = default;

Simulator::JobRt &
Simulator::rt(JobId id)
{
    auto it = jobs_.find(id);
    EF_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
    return *it->second;
}

const Simulator::JobRt &
Simulator::rt(JobId id) const
{
    auto it = jobs_.find(id);
    EF_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
    return *it->second;
}

GpuCount
Simulator::total_gpus() const
{
    // Schedulers see the capacity that is actually up (§4.4).
    return placement_.available_gpus();
}

std::vector<JobId>
Simulator::active_jobs() const
{
    std::vector<JobId> active;
    for (JobId id : submit_order_) {
        if (rt(id).active())
            active.push_back(id);
    }
    return active;
}

const JobSpec &
Simulator::spec(JobId job) const
{
    return rt(job).spec;
}

const ScalingCurve &
Simulator::curve(JobId job) const
{
    return rt(job).curve;
}

ScalingCurve
Simulator::curve_for(const JobSpec &spec) const
{
    std::vector<double> table = perf_.compact_pow2_throughputs(
        spec.model, spec.global_batch, topology_.total_gpus());
    return ScalingCurve::from_pow2_table(std::move(table));
}

double
Simulator::remaining_iterations(JobId job) const
{
    return rt(job).remaining();
}

GpuCount
Simulator::current_gpus(JobId job) const
{
    return rt(job).gpus;
}

double
Simulator::attained_gpu_seconds(JobId job) const
{
    return rt(job).attained_gpu_seconds;
}

void
Simulator::advance_progress(Time to)
{
    EF_CHECK(to >= now_);
    for (auto &[id, job_ptr] : jobs_) {
        JobRt &job = *job_ptr;
        Time t0 = job.last_update;
        if (to <= t0) {
            continue;
        }
        if (job.gpus > 0) {
            job.attained_gpu_seconds +=
                static_cast<double>(job.gpus) * (to - t0);
            job.outcome.gpu_seconds = job.attained_gpu_seconds;
        }
        if (job.state == JobState::kRunning && job.gpus > 0) {
            Time start = std::max(t0, job.progress_resume);
            if (to > start) {
                job.executed += job.current_tpt * (to - start);
                job.executed = std::min(
                    job.executed, static_cast<double>(job.spec.iterations));
                // Periodic auto-checkpointing: progress older than one
                // checkpoint interval is safe from node failures.
                double interval_iters =
                    job.current_tpt *
                    config_.failures.checkpoint_interval_s;
                if (job.executed - job.checkpoint_iters >
                    interval_iters) {
                    job.checkpoint_iters = job.executed - interval_iters;
                }
            }
        }
        job.last_update = to;
    }
}

void
Simulator::charge_pause(JobRt &job, Time seconds)
{
    if (seconds <= 0.0)
        return;
    job.progress_resume =
        std::max(job.progress_resume, now_ + seconds);
}

void
Simulator::refresh_throughput(JobRt &job)
{
    if (job.gpus <= 0 || job.state != JobState::kRunning) {
        job.current_tpt = 0.0;
        return;
    }
    PlacementShape shape =
        perf_.shape_of(placement_.gpus_of(job.spec.id));
    job.current_tpt =
        perf_.throughput(job.spec.model, job.spec.global_batch, shape) *
        job.noise_factor;
    EF_CHECK_MSG(job.current_tpt > 0.0,
                 "job " << job.spec.id << " placed on an infeasible "
                        << job.gpus << "-GPU configuration");
    schedule_completion(job);
}

void
Simulator::schedule_completion(JobRt &job)
{
    if (job.state != JobState::kRunning || job.current_tpt <= 0.0)
        return;
    Time start = std::max(now_, job.progress_resume);
    Time done = start + job.remaining() / job.current_tpt;
    events_.push(Event{done, next_seq_++, Event::kCompletion,
                       job.spec.id});
}

void
Simulator::apply_resize(JobRt &job, GpuCount desired)
{
    const JobId id = job.spec.id;
    const GpuCount old = job.gpus;
    if (desired == old)
        return;

    if (desired == 0) {
        placement_.release(id);
        job.gpus = 0;
        job.current_tpt = 0.0;
        job.state = JobState::kWaiting;
        ++job.outcome.scaling_events;
        result_.allocation_log.push_back(
            AllocationEvent{now_, id, {}});
        return;
    }

    PlacementResult res;
    if (old == 0) {
        res = placement_.place(id, desired,
                               scheduler_->placement_strategy(),
                               scheduler_->allow_migration());
    } else {
        res = placement_.resize(id, desired,
                                scheduler_->placement_strategy(),
                                scheduler_->allow_migration());
    }
    if (!res.ok) {
        ++result_.placement_failures;
        EF_DEBUG("placement failed for job " << id << " (" << desired
                                             << " GPUs)");
        return;  // keep the previous allocation
    }

    // Defragmentation relocations pause their victims too.
    for (const Migration &m : res.migrations) {
        if (m.job == id)
            continue;
        JobRt &other = rt(m.job);
        ++other.outcome.migrations;
        charge_pause(other, overhead_.migration_seconds(
                                other.spec.model, other.gpus));
        if (other.state == JobState::kRunning)
            refresh_throughput(other);
        result_.allocation_log.push_back(
            AllocationEvent{now_, m.job, m.to});
    }

    job.gpus = desired;
    job.state = JobState::kRunning;
    ++job.outcome.scaling_events;
    job.checkpoint_iters = job.executed;  // scaling checkpoints state
    result_.allocation_log.push_back(
        AllocationEvent{now_, id, placement_.gpus_of(id)});
    if (job.outcome.first_run_time == kTimeInfinity)
        job.outcome.first_run_time = now_;
    charge_pause(job, overhead_.scaling_seconds(job.spec.model, old,
                                                desired));
    refresh_throughput(job);
}

void
Simulator::apply_decision(const SchedulerDecision &decision)
{
    GpuCount desired_total = 0;
    for (const auto &[id, g] : decision.gpus) {
        EF_CHECK_MSG(g >= 0, "negative allocation for job " << id);
        desired_total += g;
    }
    EF_CHECK_MSG(desired_total <= topology_.total_gpus(),
                 scheduler_->name() << " requested " << desired_total
                                    << " GPUs on a "
                                    << topology_.total_gpus()
                                    << "-GPU cluster");

    // Shrinks and suspensions first to free capacity, then growths
    // (largest first so compact placements are found while space is
    // contiguous).
    std::vector<JobId> grows;
    for (JobId id : active_jobs()) {
        JobRt &job = rt(id);
        GpuCount desired = decision.of(id);
        if (desired < job.gpus)
            apply_resize(job, desired);
        else if (desired > job.gpus)
            grows.push_back(id);
    }
    std::stable_sort(grows.begin(), grows.end(),
                     [&decision](JobId a, JobId b) {
                         return decision.of(a) > decision.of(b);
                     });
    for (JobId id : grows)
        apply_resize(rt(id), decision.of(id));
}

void
Simulator::record_timelines()
{
    result_.used_gpus.record(now_, placement_.used_gpus());
    if (!config_.record_efficiency)
        return;
    double ce = 0.0;
    for (const auto &[id, job_ptr] : jobs_) {
        const JobRt &job = *job_ptr;
        if (job.state != JobState::kRunning || job.gpus <= 0)
            continue;
        GpuCount base = job.curve.min_workers();
        double per_gpu_base =
            job.curve.throughput(base) / static_cast<double>(base);
        // Eq. 8: each of the job's GPUs contributes its per-GPU
        // throughput relative to the 1-GPU rate; summed over the job
        // that is simply T_actual(g) / T(1).
        ce += job.current_tpt / per_gpu_base;
    }
    result_.cluster_efficiency.record(
        now_, ce / static_cast<double>(topology_.total_gpus()));
}

bool
Simulator::any_nonterminal_jobs() const
{
    for (const auto &[id, job] : jobs_) {
        if (job->active())
            return true;
    }
    return false;
}

void
Simulator::arm_tick()
{
    Time interval = scheduler_->reschedule_interval();
    if (interval <= 0.0 || tick_armed_)
        return;
    if (!any_nonterminal_jobs())
        return;
    events_.push(Event{now_ + interval, next_seq_++, Event::kTick,
                       kInvalidJob});
    tick_armed_ = true;
}

void
Simulator::schedule_next_failure(int server)
{
    if (!config_.failures.enabled)
        return;
    Time delay =
        failure_rng_->exponential(1.0 / config_.failures.server_mtbf_s);
    events_.push(Event{now_ + delay, next_seq_++, Event::kServerDown,
                       static_cast<JobId>(server)});
}

void
Simulator::handle_server_down(int server)
{
    if (!placement_.server_available(server))
        return;  // already down (stale event)
    // Evict every job with a worker on the failed server: it loses its
    // GPUs and rolls back to its last checkpoint.
    std::vector<JobId> victims;
    for (JobId id : placement_.placed_jobs()) {
        for (GpuCount g : placement_.gpus_of(id)) {
            if (topology_.server_of(g) == server) {
                victims.push_back(id);
                break;
            }
        }
    }
    for (JobId id : victims) {
        JobRt &job = rt(id);
        placement_.release(id);
        job.gpus = 0;
        job.current_tpt = 0.0;
        job.state = JobState::kWaiting;
        job.executed = std::min(job.executed, job.checkpoint_iters);
        ++job.outcome.failures_suffered;
        result_.allocation_log.push_back(
            AllocationEvent{now_, id, {}});
    }
    placement_.set_server_available(server, false);
    view_dirty_ = true;  // capacity shrank; victims lost their GPUs
    EF_INFO("server " << server << " failed at "
                      << format_double(now_ / kHour, 2) << " h ("
                      << victims.size() << " jobs evicted)");
    events_.push(Event{now_ + config_.failures.repair_s, next_seq_++,
                       Event::kServerUp, static_cast<JobId>(server)});
    if (any_nonterminal_jobs())
        request_replan();
}

void
Simulator::handle_server_up(int server)
{
    if (placement_.server_available(server))
        return;
    placement_.set_server_available(server, true);
    view_dirty_ = true;  // capacity grew
    schedule_next_failure(server);
    if (any_nonterminal_jobs())
        request_replan();
}

void
Simulator::request_replan()
{
    ++result_.replans_attempted;
    if (replan_pending_) {
        ++result_.replans_coalesced;
        return;
    }
    replan_pending_ = true;
    if (!config_.coalesce_replans)
        flush_replan();
}

void
Simulator::flush_replan()
{
    EF_CHECK(replan_pending_);
    replan_pending_ = false;
    if (config_.elide_replans && !view_dirty_ &&
        now_ == last_decision_time_) {
        // No arrival/completion/failure touched scheduler-visible
        // state since a decision was already made at this very
        // timestamp (the request came from a colliding tick). A
        // deterministic policy would return the same decision, and
        // re-applying a decision is a no-op — skip the call.
        ++result_.replans_elided;
        arm_tick();
        return;
    }
    SchedulerDecision decision = scheduler_->allocate();
    view_dirty_ = false;
    last_decision_time_ = now_;
    apply_decision(decision);
    record_timelines();
    arm_tick();
}

void
Simulator::handle_arrival(JobId id)
{
    JobRt &job = rt(id);
    bool ok = scheduler_->admit(job.spec);
    job.arrived = true;
    job.outcome.admitted = ok;
    if (!ok) {
        job.state = JobState::kDropped;
        EF_DEBUG("job " << id << " dropped at submission");
    } else {
        job.state = JobState::kWaiting;
    }

    std::size_t submitted = 0, admitted = 0;
    for (const auto &[jid, j] : jobs_) {
        if (j->arrived) {
            ++submitted;
            admitted += j->outcome.admitted ? 1 : 0;
        }
    }
    result_.submitted_jobs.record(now_, static_cast<double>(submitted));
    result_.admitted_jobs.record(now_, static_cast<double>(admitted));

    if (ok) {
        view_dirty_ = true;  // the active-job set grew
        request_replan();
    }
}

void
Simulator::handle_completion_check(JobId id)
{
    JobRt &job = rt(id);
    if (job.state != JobState::kRunning)
        return;  // stale event
    if (job.remaining() > kIterEpsilon)
        return;  // stale event: the job was slowed after scheduling

    job.executed = static_cast<double>(job.spec.iterations);
    job.state = JobState::kFinished;
    job.outcome.finished = true;
    job.outcome.finish_time = now_;
    placement_.release(id);
    job.gpus = 0;
    job.current_tpt = 0.0;
    view_dirty_ = true;  // the active-job set shrank, GPUs freed
    request_replan();
}

void
Simulator::handle_tick()
{
    // A tick by itself changes nothing the scheduler observes; the
    // replan it requests is elidable if it lands on a timestamp where
    // a decision was already made (view_dirty_ stays false).
    tick_armed_ = false;
    if (any_nonterminal_jobs())
        request_replan();
}

bool
Simulator::work_pending() const
{
    for (const auto &[id, job] : jobs_) {
        if (!job->arrived || job->active())
            return true;
    }
    return false;
}

RunResult
Simulator::run()
{
    for (JobId id : submit_order_) {
        events_.push(Event{rt(id).spec.submit_time, next_seq_++,
                           Event::kArrival, id});
    }
    if (config_.failures.enabled) {
        for (int server = 0; server < topology_.num_servers(); ++server)
            schedule_next_failure(server);
    }

    while (true) {
        // Coalescing: a pending replan is flushed only once every
        // event at the current timestamp has been handled (flushing
        // may enqueue new events, so re-read the top afterwards).
        if (replan_pending_ &&
            (events_.empty() || events_.top().time > now_)) {
            flush_replan();
        }
        if (events_.empty())
            break;
        Event event = events_.top();
        events_.pop();
        if ((event.kind == Event::kServerDown ||
             event.kind == Event::kServerUp) &&
            !work_pending()) {
            continue;  // drain the failure stream once all jobs ended
        }
        if (event.time > config_.max_time) {
            EF_WARN("simulation hit max_time with "
                    << (any_nonterminal_jobs() ? "unfinished" : "no")
                    << " jobs");
            break;
        }
        advance_progress(event.time);
        now_ = event.time;
        switch (event.kind) {
          case Event::kArrival:
            handle_arrival(event.job);
            break;
          case Event::kCompletion:
            handle_completion_check(event.job);
            break;
          case Event::kTick:
            handle_tick();
            break;
          case Event::kServerDown:
            handle_server_down(static_cast<int>(event.job));
            break;
          case Event::kServerUp:
            handle_server_up(static_cast<int>(event.job));
            break;
        }
    }

    result_.jobs.clear();
    for (JobId id : submit_order_) {
        JobRt &job = rt(id);
        job.outcome.gpu_seconds = job.attained_gpu_seconds;
        result_.jobs.push_back(job.outcome);
        if (job.outcome.finished) {
            result_.makespan =
                std::max(result_.makespan, job.outcome.finish_time);
        }
    }
    result_.replan_failures = scheduler_->replan_failures();
    return result_;
}

}  // namespace ef

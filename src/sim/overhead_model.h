/**
 * @file
 * Scaling and migration overhead model (paper §5 "Elastic scaling" and
 * §6.6, Fig. 12b).
 *
 * The prototype scales jobs by checkpointing parameters and restarting
 * on the new GPU set; the measured cost is dominated by PyTorch's
 * checkpoint/restore (roughly proportional to model size) plus a
 * per-worker restart component. The paper notes the overheads of
 * scaling up, scaling down, and migrating are similar, so one formula
 * covers all three. The simulator charges this as a pause during which
 * the job occupies its GPUs but makes no progress — the same fidelity
 * trick the paper's own simulator uses ("we have also measured the job
 * scaling overhead and incorporated it into the simulator").
 */
#ifndef EF_SIM_OVERHEAD_MODEL_H_
#define EF_SIM_OVERHEAD_MODEL_H_

#include "common/types.h"
#include "workload/model_zoo.h"

namespace ef {

/** Cost constants (defaults approximate Fig. 12b magnitudes). */
struct OverheadConfig
{
    bool enabled = true;
    /** Fixed coordination cost per scaling event (seconds). */
    double base_s = 3.0;
    /** Checkpoint + restore seconds per GB of model state. */
    double per_gb_s = 12.0;
    /** Process-group / NCCL re-setup seconds per participating GPU. */
    double per_gpu_s = 0.4;
};

/** See file comment. */
class OverheadModel
{
  public:
    OverheadModel() = default;
    explicit OverheadModel(OverheadConfig config) : config_(config) {}

    const OverheadConfig &config() const { return config_; }

    /**
     * Pause incurred when a job moves from @p from to @p to GPUs
     * (either may be 0 for suspend/resume). Zero when nothing changes
     * or the model is disabled.
     */
    Time scaling_seconds(DnnModel model, GpuCount from, GpuCount to) const;

    /** Pause incurred by relocating a job across GPUs at equal size. */
    Time migration_seconds(DnnModel model, GpuCount gpus) const;

  private:
    OverheadConfig config_;
};

}  // namespace ef

#endif  // EF_SIM_OVERHEAD_MODEL_H_

#include "sim/metrics.h"

#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace ef {

double
RunResult::deadline_ratio() const
{
    std::size_t slo = submitted(JobKind::kSlo);
    if (slo == 0)
        return 1.0;
    return static_cast<double>(deadlines_met()) /
           static_cast<double>(slo);
}

double
RunResult::deadline_ratio_of(JobKind kind) const
{
    std::size_t total = 0, met = 0;
    for (const JobOutcome &job : jobs) {
        if (job.spec.kind != kind)
            continue;
        ++total;
        met += job.met_deadline() ? 1 : 0;
    }
    if (total == 0)
        return 1.0;
    return static_cast<double>(met) / static_cast<double>(total);
}

std::size_t
RunResult::deadlines_met() const
{
    std::size_t met = 0;
    for (const JobOutcome &job : jobs) {
        if (job.spec.kind == JobKind::kSlo && job.met_deadline())
            ++met;
    }
    return met;
}

std::size_t
RunResult::submitted(JobKind kind) const
{
    std::size_t n = 0;
    for (const JobOutcome &job : jobs)
        n += job.spec.kind == kind ? 1 : 0;
    return n;
}

std::size_t
RunResult::admitted_count() const
{
    std::size_t n = 0;
    for (const JobOutcome &job : jobs)
        n += job.admitted ? 1 : 0;
    return n;
}

std::size_t
RunResult::dropped_count() const
{
    return jobs.size() - admitted_count();
}

std::size_t
RunResult::finished_count() const
{
    std::size_t n = 0;
    for (const JobOutcome &job : jobs)
        n += job.finished ? 1 : 0;
    return n;
}

double
RunResult::average_jct(JobKind kind) const
{
    SampleStats stats;
    for (const JobOutcome &job : jobs) {
        if (job.spec.kind == kind && job.finished)
            stats.add(job.jct());
    }
    return stats.empty() ? 0.0 : stats.mean();
}

double
RunResult::average_cluster_efficiency(Time horizon) const
{
    EF_CHECK(horizon > 0.0);
    return cluster_efficiency.time_average(0.0, horizon);
}

double
RunResult::total_gpu_seconds() const
{
    double total = 0.0;
    for (const JobOutcome &job : jobs)
        total += job.gpu_seconds;
    return total;
}

namespace {

double
series_average(const StepSeries &series, Time horizon)
{
    if (series.empty() || horizon <= 0.0)
        return 0.0;
    return series.time_average(0.0, horizon);
}

double
series_final(const StepSeries &series)
{
    if (series.empty())
        return 0.0;
    return series.values().back();
}

}  // namespace

double
average_fragmentation(const RunResult &result)
{
    return series_average(result.buddy_fragmentation, result.makespan);
}

double
final_fragmentation(const RunResult &result)
{
    return series_final(result.buddy_fragmentation);
}

double
average_span_excess(const RunResult &result)
{
    return series_average(result.span_excess, result.makespan);
}

double
final_span_excess(const RunResult &result)
{
    return series_final(result.span_excess);
}

std::string
summarize(const RunResult &result)
{
    std::ostringstream out;
    out << result.scheduler_name << " on " << result.trace_name << ": "
        << result.deadlines_met() << "/" << result.submitted(JobKind::kSlo)
        << " deadlines met (" << format_percent(result.deadline_ratio())
        << "), " << result.dropped_count() << " dropped, makespan "
        << format_double(result.makespan / kHour, 1) << " h";
    return out.str();
}

}  // namespace ef

/**
 * @file
 * Experiment metrics (paper §6.1): deadline satisfactory ratio (the
 * headline metric), cluster efficiency (Eq. 8), JCT statistics for
 * best-effort jobs, makespan, and the timelines behind Figs. 7 and 10.
 */
#ifndef EF_SIM_METRICS_H_
#define EF_SIM_METRICS_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "workload/job.h"

namespace ef {

/** Everything that happened to one submitted job. */
struct JobOutcome
{
    JobSpec spec;
    bool admitted = false;   ///< false = dropped at submission
    bool finished = false;
    Time finish_time = kTimeInfinity;
    Time first_run_time = kTimeInfinity;
    double gpu_seconds = 0.0;  ///< attained service
    int scaling_events = 0;    ///< allocation size changes
    int migrations = 0;        ///< defragmentation relocations
    int failures_suffered = 0; ///< node/GPU-failure evictions (§4.4)
    /** SLO became unmeetable after a fault; runs on as best-effort. */
    bool demoted = false;

    /** Did the job complete by its deadline? (Dropped jobs did not.) */
    bool met_deadline() const
    {
        return finished && finish_time <= spec.deadline;
    }

    /** Completion time from submission (finished jobs only). */
    Time jct() const { return finish_time - spec.submit_time; }
};

/** One placement change, for replay/validation (§6.1 fidelity). */
struct AllocationEvent
{
    Time time = 0.0;
    JobId job = kInvalidJob;
    std::vector<GpuCount> gpus;  ///< empty = suspended/released
};

/** Full result of simulating one (trace, scheduler) pair. */
struct RunResult
{
    std::string scheduler_name;
    std::string trace_name;
    GpuCount total_gpus = 0;

    std::vector<JobOutcome> jobs;

    /** Every placement change, in time order (replay input). */
    std::vector<AllocationEvent> allocation_log;

    StepSeries used_gpus;           ///< allocated GPUs over time (Fig. 7a)
    StepSeries cluster_efficiency;  ///< Eq. 8 over time (Fig. 10)
    StepSeries submitted_jobs;      ///< cumulative submissions (Fig. 7b)
    StepSeries admitted_jobs;       ///< cumulative admissions (Fig. 7b)
    /** Buddy external fragmentation sampled at every replan (§3.2). */
    StepSeries buddy_fragmentation;
    /** Total cross-server span excess over placed jobs, same cadence. */
    StepSeries span_excess;

    Time makespan = 0.0;  ///< last completion time
    int replan_failures = 0;
    int placement_failures = 0;

    /** Replan requests raised by events (the naive invocation count). */
    int replans_attempted = 0;
    /** Requests merged into an already-pending same-timestamp replan. */
    int replans_coalesced = 0;
    /** Scheduler calls skipped because the view was provably unchanged
     *  since the last decision at the same timestamp. */
    int replans_elided = 0;

    // --- fault injection (all 0 on a healthy run) -----------------------
    /** Control-plane delivery attempts repeated after a loss. */
    int rpc_retries = 0;
    /** Commands abandoned after rpc_max_retries lost attempts. */
    int rpc_gave_up = 0;
    /** Straggler episodes (worker groups launched/turned slow). */
    int stragglers_observed = 0;
    /** Single-GPU faults injected (server-level crashes not counted). */
    int gpu_faults = 0;
    /** Checkpoint writes that failed (previous checkpoint survived). */
    int ckpt_failures = 0;
    /** SLO jobs demoted to best-effort after a fault (each once). */
    int slo_demotions = 0;

    // --- service mode (all 0 unless SimConfig::service.enabled) ---------
    /** Submissions shed synchronously at the queue watermark. */
    int shed_queue_full = 0;
    /** Planning rounds that drained the service queue. */
    int service_rounds = 0;
    /** Rounds forced by the starvation horizon (no governor token). */
    int service_rounds_forced = 0;
    /** Deadline-infeasible submissions accepted as best-effort. */
    int service_degraded = 0;
    /** Peak service-queue depth (never exceeds the watermark). */
    std::size_t max_service_queue_depth = 0;

    // --- background defrag (all 0 unless SimConfig::defrag enabled) -----
    /** Governor-funded SA rounds planned (including empty ones). */
    int defrag_rounds = 0;
    /** Relocations committed by defrag rounds. */
    int defrag_moves = 0;
    /** Migration-cost budget units spent across all rounds. */
    double defrag_budget_spent = 0.0;

    // --- determinism audit ----------------------------------------------
    /**
     * Chained FNV-1a digest of Simulator::state_hash() sampled at
     * every replan and once after the run. A pure function of (trace,
     * scheduler, config): any cross-run difference means a hidden
     * nondeterminism source. Compare via run_trace --state-hash.
     */
    std::uint64_t state_hash = 0;
    /** Samples folded into state_hash (= replans run + elided + 1). */
    std::uint64_t state_hash_samples = 0;

    /** Jobs that met their deadline / all submitted SLO jobs. */
    double deadline_ratio() const;

    /** Same ratio restricted to one job kind (soft-deadline stats). */
    double deadline_ratio_of(JobKind kind) const;

    /** Number of SLO jobs that met their deadline. */
    std::size_t deadlines_met() const;

    std::size_t submitted(JobKind kind) const;
    std::size_t admitted_count() const;
    std::size_t dropped_count() const;
    std::size_t finished_count() const;

    /** Mean JCT over *finished* jobs of a kind (seconds). */
    double average_jct(JobKind kind) const;

    /** Time-averaged cluster efficiency over [0, horizon]. */
    double average_cluster_efficiency(Time horizon) const;

    /** Total GPU-seconds consumed by all jobs. */
    double total_gpu_seconds() const;
};

/** Time-averaged buddy external fragmentation over [0, makespan]. */
double average_fragmentation(const RunResult &result);
/** Buddy external fragmentation at the end of the run. */
double final_fragmentation(const RunResult &result);
/** Time-averaged total cross-server span excess over [0, makespan]. */
double average_span_excess(const RunResult &result);
/** Total cross-server span excess at the end of the run. */
double final_span_excess(const RunResult &result);

/** One-line human-readable summary for logs and benches. */
std::string summarize(const RunResult &result);

}  // namespace ef

#endif  // EF_SIM_METRICS_H_

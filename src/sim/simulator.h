/**
 * @file
 * Event-driven cluster simulator (paper §6.1 "Simulator").
 *
 * The simulator advances continuous time between job-level events
 * (arrival, completion, periodic scheduler ticks). Between events,
 * every running job makes fluid progress at the throughput the
 * performance model predicts for its *actual* placement, so
 * topology-induced slowdowns (Fig. 2b) hit schedulers that fragment.
 * Allocation changes pause the affected job for the modelled scaling /
 * migration overhead (Fig. 12b), exactly as the paper's simulator
 * "assigns the overhead to each job on each scheduling event".
 *
 * The simulator implements ClusterView, so schedulers observe job
 * progress and attained service through the same interface the real
 * platform's monitor module provides (Fig. 1).
 */
#ifndef EF_SIM_SIMULATOR_H_
#define EF_SIM_SIMULATOR_H_

#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "cluster/placement.h"
#include "common/rng.h"
#include "defrag/defrag.h"
#include "fault/fault.h"
#include "recover/log.h"
#include "sched/scheduler.h"
#include "serve/governor.h"
#include "sim/metrics.h"
#include "sim/overhead_model.h"
#include "workload/perf_model.h"
#include "workload/trace.h"

namespace ef {

/**
 * Random server failures (§4.4 "Node failures"). Legacy knob: it is
 * mapped onto the FaultInjector's server-crash class (with this seed,
 * so existing runs replay byte-identically). New code should prefer
 * SimConfig::faults; configuring server crashes through both at once
 * is an error.
 */
struct FailureConfig
{
    bool enabled = false;
    /** Mean time between failures of one server (seconds). */
    Time server_mtbf_s = 30.0 * kDay;
    /** Time a failed server stays down. */
    Time repair_s = 2.0 * kHour;
    /**
     * Jobs auto-checkpoint this often; a failure rolls a victim back
     * to its last checkpoint (in addition to losing its GPUs). Applies
     * to every fault class that evicts jobs, not only this one.
     */
    Time checkpoint_interval_s = 1800.0;
    std::uint64_t seed = 1;
};

/**
 * Per-job deterministic throughput misestimation: the executor runs
 * each job at nominal throughput x (1 +/- noise), while schedulers
 * still see the nominal curve — models profiling error.
 */
struct NoiseConfig
{
    double throughput_error = 0.0;  ///< e.g. 0.02 = up to +/-2%
};

/**
 * Streaming service-mode arrival path (the simulator counterpart of
 * ef::serve). Instead of one admission verdict per arrival event,
 * arrivals enter a bounded queue: beyond the watermark they are shed
 * synchronously (JobState::kDropped, counted in
 * RunResult::shed_queue_full), and queued submissions are batched into
 * one scheduler round per governor token — forced without a token once
 * the oldest submission has waited governor.starvation_horizon_s, so
 * no submission waits past the horizon. The batched round exercises
 * the existing replan coalescing/elision machinery.
 */
struct ServiceModeConfig
{
    bool enabled = false;
    /** Arrivals beyond this many pending are shed synchronously. */
    std::size_t queue_watermark = 64;
    serve::GovernorConfig governor;
    /** Accept admission-rejected SLO arrivals as best-effort jobs
     *  (deadline dropped) instead of rejecting them outright. */
    bool degrade_infeasible = false;
};

/**
 * Crash-consistent control plane (DESIGN.md §12): snapshot + write-
 * ahead journal under a directory, with deterministic recovery. A run
 * with an empty journal_dir is byte-identical to one predating this
 * knob; a recovered run's decisions and RunResult::state_hash are
 * bit-identical to an uninterrupted one.
 */
struct DurabilityConfig
{
    /** Directory holding snapshot.bin + journal.bin; empty = off. */
    std::string journal_dir;
    /** Round commits between snapshots (each truncates the journal). */
    std::uint64_t snapshot_every = 16;
    /** Resume from the directory instead of starting fresh. */
    bool recover = false;
};

/** Simulator knobs. */
struct SimConfig
{
    /** Hard stop (guards schedulers that never finish a job). */
    Time max_time = 400.0 * kDay;
    OverheadConfig overhead;
    FailureConfig failures;
    /** Fault injection (GPU faults, RPC loss, stragglers, checkpoint
     *  failures, scripted traces). All-zero rates = fully disabled:
     *  the run is then byte-identical to one without this member. */
    FaultConfig faults;
    NoiseConfig noise;
    /** Record cluster-efficiency samples (Fig. 10). */
    bool record_efficiency = true;
    /**
     * Merge all replan requests raised at one timestamp into a single
     * scheduler invocation (a completion burst or simultaneous
     * arrivals trigger one plan, not one per event).
     */
    bool coalesce_replans = true;
    /**
     * Skip a scheduler invocation when nothing it can observe changed
     * since the last decision at this same timestamp. Exact for
     * deterministic policies: the elided call would have returned the
     * identical decision, and re-applying a decision is a no-op.
     */
    bool elide_replans = true;
    /** Streaming admission front end; disabled = classic per-arrival
     *  admission, byte-identical to runs predating this knob. */
    ServiceModeConfig service;
    /**
     * Shard-parallel planning (DESIGN.md §10): forwarded to the
     * scheduler via Scheduler::set_planner_concurrency. shards <= 0
     * keeps the classic single-threaded planner. Decisions — and
     * RunResult::state_hash — are bit-identical for any setting.
     */
    int planner_shards = 0;
    /** Shard-phase worker threads (including the caller); <= 1 runs
     *  shards inline. Only read when planner_shards is positive. */
    int planner_threads = 1;
    /** Crash consistency (snapshot + journal); off by default. */
    DurabilityConfig durability;
    /**
     * Background defragmentation (DESIGN.md §14): governor-gated SA
     * repacking rounds bounded by a migration-cost budget. Disabled —
     * or enabled with a zero budget — is byte-identical to runs
     * predating this knob.
     */
    defrag::DefragConfig defrag;
};

/** Lifecycle of a job inside the simulator. */
enum class JobState {
    kDropped,    ///< rejected at submission
    kWaiting,    ///< admitted, not yet (or currently not) running
    kRunning,    ///< holds GPUs and makes progress (or is paused)
    kFinished,   ///< termination condition reached
};

/** See file comment. */
class Simulator : public ClusterView
{
  public:
    Simulator(const Trace &trace, Scheduler *scheduler,
              SimConfig config = {});
    ~Simulator() override;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Run to completion and return the metrics. */
    RunResult run();

    /**
     * Open — or, with DurabilityConfig::recover, load and replay — the
     * durable log named in SimConfig::durability. Optional: run()
     * calls it implicitly (and aborts on failure); calling it first
     * lets a driver surface unreadable/corrupt snapshot or journal
     * input as a typed error instead.
     */
    recover::Status prepare_durability();

    /**
     * run() ended early because an injected scheduler crash
     * (FaultType::kSchedCrash) fired at a round commit. The journal
     * directory then holds everything needed to resume: a fresh
     * Simulator with durability.recover set continues bit-identically.
     */
    bool crashed() const { return crashed_; }

    /**
     * Write a snapshot of the current state immediately (the cadence
     * snapshot machinery, callable by benchmarks and tests).
     */
    recover::Status write_snapshot_now();

    /**
     * Determinism auditor: FNV-1a hash of all determinism-relevant
     * state — event clock, job queue (state, progress, attained
     * service, pause windows), concrete GPU allocations and
     * availability, and the fault injector's RNG cursors. Sampled and
     * chained into RunResult::state_hash at every replan; two runs of
     * the same (trace, scheduler, config) must produce identical
     * digests, otherwise a hidden nondeterminism source crept in.
     * Scheduler-internal state is not hashed directly: every decision
     * it makes lands in the allocations, which are.
     */
    std::uint64_t state_hash() const;

    // --- ClusterView ----------------------------------------------------
    GpuCount total_gpus() const override;
    Time now() const override { return now_; }
    std::vector<JobId> active_jobs() const override;
    const JobSpec &spec(JobId job) const override;
    const ScalingCurve &curve(JobId job) const override;
    ScalingCurve curve_for(const JobSpec &spec) const override;
    double remaining_iterations(JobId job) const override;
    GpuCount current_gpus(JobId job) const override;
    double attained_gpu_seconds(JobId job) const override;
    std::uint64_t fault_epoch() const override { return fault_epoch_; }

  private:
    struct JobRt;
    struct Event;
    static bool event_after(const Event &a, const Event &b);

    void handle_arrival(JobId id);
    /** Service mode: enqueue (or shed) an arrival without planning. */
    void handle_service_arrival(JobId id);
    /** Service mode: drain the queue in one batched admission round. */
    void handle_service_round();
    /** Schedule the round for the current queue head (empty -> none). */
    void arm_service_round();
    /** Admission verdict bookkeeping shared by both arrival paths. */
    void apply_admission(JobId id, bool admitted);
    void handle_completion_check(JobId id);
    void handle_tick();
    void handle_server_down(const Event &event);
    void handle_server_up(int server);
    void handle_gpu_down(const Event &event);
    void handle_gpu_up(GpuCount gpu);
    void handle_straggler_start(const Event &event);
    void handle_straggler_end(JobId id);
    void schedule_next_failure(int server);
    void schedule_next_gpu_fault();
    void queue_scripted_faults();
    /** Evict one placed job (fault path): release, roll back to its
     *  last checkpoint, count the failure. */
    void evict_job(JobId id);
    /**
     * Unreliable delivery of the resize command for @p job: charges
     * retry backoff into @p penalty and returns false when every
     * attempt was lost (the command must not be applied).
     */
    bool deliver_resize(JobId id, Time *penalty);

    /**
     * Note that the current event wants the scheduler re-run. The
     * actual invocation happens in flush_replan(): immediately when
     * coalescing is off, otherwise once the event loop has drained
     * every event at the current timestamp.
     */
    void request_replan();
    /** Run the scheduler (unless elidable) and apply its decision. */
    void flush_replan();
    /** Fold state_hash() into the chained RunResult digest and commit
     *  the round to the durable log (terminal = the run's final
     *  sample). */
    void audit_state(bool terminal = false);
    void apply_decision(const SchedulerDecision &decision);
    /** Governor-gated background defrag round (DESIGN.md §14). */
    void maybe_defrag();
    /** Sample fragmentation gauges/series (always on, defrag or not). */
    void record_fragmentation();
    void apply_resize(JobRt &job, GpuCount desired);
    void charge_pause(JobRt &job, Time seconds);
    void refresh_throughput(JobRt &job);
    void schedule_completion(JobRt &job);
    void advance_progress(Time to);
    void record_timelines();
    bool any_nonterminal_jobs() const;
    bool work_pending() const;
    void arm_tick();

    // --- durability (DESIGN.md §12) -------------------------------------
    /** One expected round commit parsed from the journal tail. */
    struct ReplayCommit
    {
        std::uint64_t round = 0;
        Time time = 0.0;
        std::uint64_t hash = 0;
        std::uint64_t crash_cursor = 0;
        bool terminal = false;
    };
    /** Digest of the (trace, scheduler, config) shape a snapshot is
     *  only valid against. */
    std::uint64_t config_fingerprint() const;
    void encode_state(recover::Encoder *enc) const;
    recover::Status decode_state(recover::Decoder *dec);
    recover::Status recover_state(const std::string &snapshot,
                                  const recover::JournalContents &tail);
    /** Round boundary: crash check, commit record, fsync, snapshot
     *  cadence — or, while replaying, hash verification instead. */
    void commit_round(bool terminal);
    /** Replay verified: re-anchor the log at the recovered state. */
    void finish_recovery();
    void journal_append(recover::RecordKind kind,
                        const recover::Encoder &body);
    /** Re-executing journaled rounds (journaling suppressed). */
    bool replaying() const { return replay_next_ < replay_.size(); }

    JobRt &rt(JobId id);
    const JobRt &rt(JobId id) const;

    // ef-audit: transient(all: append-only observability output, never read back)
    Trace trace_;
    // ef-audit: transient(hash: borrowed policy object; its choices are pinned by the decisions they produce)
    Scheduler *scheduler_;
    // ef-audit: transient(all: construction-time constant; recovery re-derives it from the run setup)
    SimConfig config_;

    Topology topology_;
    // ef-audit: transient(all: pure function of config_, no mutable state)
    PerfModel perf_;
    PlacementManager placement_;
    // ef-audit: transient(all: pure function of config_, no mutable state)
    OverheadModel overhead_;

    Time now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    // ef-audit: transient(hash: pending futures, not history — journaled verbatim (codec) and pinned by (now_, next_seq_) plus the committed state that scheduled them)
    std::priority_queue<Event, std::vector<Event>,
                        bool (*)(const Event &, const Event &)> events_;

    // ef-audit: covered(hash, encode: every JobRt is hashed and journaled via the rt() loop over submit_order_)
    std::map<JobId, std::unique_ptr<JobRt>> jobs_;
    std::vector<JobId> submit_order_;

    // ef-audit: transient(hash: re-armed deterministically from events_ at the next boundary)
    bool tick_armed_ = false;
    /** A replan request is waiting for the current timestamp to drain. */
    // ef-audit: transient(hash: drains within the current timestamp, never live at a round commit)
    bool replan_pending_ = false;
    /** Scheduler-visible state changed since the last decision. */
    // ef-audit: transient(hash: recomputed from the event stream; a recovered run re-dirties on the first post-replay event)
    bool view_dirty_ = true;
    // ef-audit: transient(hash: cadence memo, derived from the committed decision history)
    Time last_decision_time_ = -kTimeInfinity;
    /** Null unless service mode is enabled. */
    std::unique_ptr<serve::ReplanGovernor> service_governor_;
    /** Arrivals awaiting their batched admission round (FIFO). */
    std::deque<JobId> service_queue_;

    /** Null unless some fault class is enabled. */
    std::unique_ptr<FaultInjector> fault_;
    /** Null unless defrag is enabled with a positive budget (a zero
     *  budget must be byte-identical to defrag disabled). */
    std::unique_ptr<defrag::Defragmenter> defrag_;
    /** Capacity-affecting fault events so far (ClusterView). */
    std::uint64_t fault_epoch_ = 0;

    /** Null unless durability is configured; write side only (null
     *  while replaying a journal tail — recovery loads read-only). */
    // ef-audit: transient(all: the log handle IS the persistence mechanism, not state inside it)
    std::unique_ptr<recover::DurableLog> durable_;
    // ef-audit: transient(all: write-side plumbing flag, rebuilt by bind_durability())
    bool durability_ready_ = false;
    /** State was restored from a snapshot (skip run() seeding). */
    // ef-audit: transient(all: recovery-session flag, true only on the recovering side)
    bool recovered_ = false;
    /** Round commits awaiting re-execution verification. */
    // ef-audit: transient(all: recovery-session scratch, loaded FROM the journal)
    std::vector<ReplayCommit> replay_;
    // ef-audit: transient(all: recovery-session cursor into replay_)
    std::size_t replay_next_ = 0;
    /** Journal records read at recovery (for obs accounting). */
    // ef-audit: transient(all: recovery-session accounting, reported then dropped)
    std::uint64_t replay_journal_records_ = 0;
    /** Valid journal bytes at recovery: where post-replay appends
     *  resume, so the pre-crash tail stays recoverable until the next
     *  snapshot subsumes it. */
    // ef-audit: transient(all: recovery-session offset, derived from the journal scan itself)
    std::uint64_t recovered_journal_bytes_ = 0;
    /** Scripted kSchedCrash events consumed so far. Persisted in every
     *  round-commit record *after* the crash check, so recovery never
     *  re-fires a crash that already happened. */
    // ef-audit: transient(hash: journaled (codec) but excluded from the digest — both sides of a crash boundary must agree on the pre-crash history)
    std::uint64_t sched_crash_cursor_ = 0;
    /** Round of the last snapshot (cadence base). */
    // ef-audit: transient(all: snapshot cadence memo; a recovered run restarts its cadence at the recovery point)
    std::uint64_t snapshot_round_ = 0;
    /** A cadence snapshot is due at the next event-loop boundary. */
    // ef-audit: transient(all: drains at the next boundary, never live at a commit point)
    bool snapshot_pending_ = false;
    // ef-audit: transient(all: the crashed side never persists again; the recovering side starts false)
    bool crashed_ = false;

    // ef-audit: transient(hash: derived output summary, recomputed by finish())
    RunResult result_;
};

}  // namespace ef

#endif  // EF_SIM_SIMULATOR_H_

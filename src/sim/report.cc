#include "sim/report.h"

#include <fstream>  // ef-lint: allow(file-io: end-of-run report artifacts, not durable state)
#include <sstream>

#include "common/check.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/table.h"

namespace ef {

std::string
jobs_report_csv(const RunResult &result)
{
    std::vector<std::string> header = {
        "id",          "name",        "user",
        "kind",        "model",       "global_batch",
        "iterations",  "submit_time", "deadline",
        "admitted",    "finished",    "finish_time",
        "met_deadline", "first_run",  "gpu_seconds",
        "scalings",    "migrations",  "failures",
    };
    std::vector<std::vector<std::string>> rows;
    for (const JobOutcome &job : result.jobs) {
        const JobSpec &spec = job.spec;
        rows.push_back({
            std::to_string(spec.id),
            spec.name,
            spec.user,
            job_kind_name(spec.kind),
            model_name(spec.model),
            std::to_string(spec.global_batch),
            std::to_string(spec.iterations),
            format_double(spec.submit_time, 3),
            is_unbounded(spec.deadline)
                ? "inf"
                : format_double(spec.deadline, 3),
            job.admitted ? "1" : "0",
            job.finished ? "1" : "0",
            job.finished ? format_double(job.finish_time, 3) : "inf",
            job.met_deadline() ? "1" : "0",
            is_unbounded(job.first_run_time)
                ? "inf"
                : format_double(job.first_run_time, 3),
            format_double(job.gpu_seconds, 1),
            std::to_string(job.scaling_events),
            std::to_string(job.migrations),
            std::to_string(job.failures_suffered),
        });
    }
    return to_csv(header, rows);
}

std::string
allocation_report_csv(const RunResult &result)
{
    std::vector<std::string> header = {"time", "job", "gpus",
                                       "gpu_ids"};
    std::vector<std::vector<std::string>> rows;
    for (const AllocationEvent &event : result.allocation_log) {
        std::string ids;
        for (std::size_t i = 0; i < event.gpus.size(); ++i) {
            if (i)
                ids += " ";
            ids += std::to_string(event.gpus[i]);
        }
        rows.push_back({format_double(event.time, 3),
                        std::to_string(event.job),
                        std::to_string(event.gpus.size()), ids});
    }
    return to_csv(header, rows);
}

std::string
summary_report(const RunResult &result)
{
    std::ostringstream out;
    out << "scheduler=" << result.scheduler_name << "\n"
        << "trace=" << result.trace_name << "\n"
        << "total_gpus=" << result.total_gpus << "\n"
        << "jobs=" << result.jobs.size() << "\n"
        << "admitted=" << result.admitted_count() << "\n"
        << "dropped=" << result.dropped_count() << "\n"
        << "finished=" << result.finished_count() << "\n"
        << "deadlines_met=" << result.deadlines_met() << "\n"
        << "deadline_ratio="
        << format_double(result.deadline_ratio(), 6) << "\n"
        << "soft_deadline_ratio="
        << format_double(
               result.deadline_ratio_of(JobKind::kSoftDeadline), 6)
        << "\n"
        << "avg_best_effort_jct_s="
        << format_double(result.average_jct(JobKind::kBestEffort), 1)
        << "\n"
        << "makespan_s=" << format_double(result.makespan, 1) << "\n"
        << "gpu_seconds="
        << format_double(result.total_gpu_seconds(), 1) << "\n"
        << "replan_failures=" << result.replan_failures << "\n"
        << "placement_failures=" << result.placement_failures << "\n"
        << "avg_buddy_fragmentation="
        << format_double(average_fragmentation(result), 6) << "\n"
        << "final_buddy_fragmentation="
        << format_double(final_fragmentation(result), 6) << "\n"
        << "avg_span_excess="
        << format_double(average_span_excess(result), 6) << "\n"
        << "final_span_excess="
        << format_double(final_span_excess(result), 6) << "\n"
        << "defrag_rounds=" << result.defrag_rounds << "\n"
        << "defrag_moves=" << result.defrag_moves << "\n"
        << "defrag_budget_spent="
        << format_double(result.defrag_budget_spent, 3) << "\n";
    return out.str();
}

std::string
jobs_report_json(const RunResult &result)
{
    JsonWriter w;
    w.begin_array();
    for (const JobOutcome &job : result.jobs) {
        const JobSpec &spec = job.spec;
        w.begin_object();
        w.kv("id", spec.id);
        w.kv("name", spec.name);
        w.kv("user", spec.user);
        w.kv("kind", job_kind_name(spec.kind));
        w.kv("model", model_name(spec.model));
        w.kv("global_batch", spec.global_batch);
        w.kv("iterations", spec.iterations);
        w.kv("submit_time", spec.submit_time);
        if (is_unbounded(spec.deadline))
            w.key("deadline").null();
        else
            w.kv("deadline", spec.deadline);
        w.kv("admitted", job.admitted);
        w.kv("finished", job.finished);
        if (job.finished)
            w.kv("finish_time", job.finish_time);
        else
            w.key("finish_time").null();
        w.kv("met_deadline", job.met_deadline());
        if (is_unbounded(job.first_run_time))
            w.key("first_run").null();
        else
            w.kv("first_run", job.first_run_time);
        w.kv("gpu_seconds", job.gpu_seconds);
        w.kv("scalings", job.scaling_events);
        w.kv("migrations", job.migrations);
        w.kv("failures", job.failures_suffered);
        w.end_object();
    }
    w.end_array();
    return w.str();
}

std::string
summary_report_json(const RunResult &result)
{
    JsonWriter w;
    w.begin_object();
    w.kv("scheduler", result.scheduler_name);
    w.kv("trace", result.trace_name);
    w.kv("total_gpus", result.total_gpus);
    w.kv("jobs", static_cast<std::uint64_t>(result.jobs.size()));
    w.kv("admitted",
         static_cast<std::int64_t>(result.admitted_count()));
    w.kv("dropped", static_cast<std::int64_t>(result.dropped_count()));
    w.kv("finished",
         static_cast<std::int64_t>(result.finished_count()));
    w.kv("deadlines_met",
         static_cast<std::int64_t>(result.deadlines_met()));
    w.kv("deadline_ratio", result.deadline_ratio());
    w.kv("soft_deadline_ratio",
         result.deadline_ratio_of(JobKind::kSoftDeadline));
    w.kv("avg_best_effort_jct_s",
         result.average_jct(JobKind::kBestEffort));
    w.kv("makespan_s", result.makespan);
    w.kv("gpu_seconds", result.total_gpu_seconds());
    w.kv("replan_failures", result.replan_failures);
    w.kv("placement_failures", result.placement_failures);
    // Fragmentation (§3.2), reported whether or not defrag is on.
    w.kv("avg_buddy_fragmentation", average_fragmentation(result));
    w.kv("final_buddy_fragmentation", final_fragmentation(result));
    w.kv("avg_span_excess", average_span_excess(result));
    w.kv("final_span_excess", final_span_excess(result));
    w.kv("defrag_rounds", result.defrag_rounds);
    w.kv("defrag_moves", result.defrag_moves);
    w.kv("defrag_budget_spent", result.defrag_budget_spent);
    w.end_object();
    return w.str();
}

std::string
save_run_report(const std::string &prefix, const RunResult &result)
{
    auto write = [](const std::string &path, const std::string &text) {
        // ef-lint: allow(file-io: end-of-run report artifacts, not durable state)
        std::ofstream out(path);
        EF_FATAL_IF(!out, "cannot write report file: " << path);
        out << text;
    };
    write(prefix + ".jobs.csv", jobs_report_csv(result));
    write(prefix + ".alloc.csv", allocation_report_csv(result));
    write(prefix + ".jobs.json", jobs_report_json(result));
    write(prefix + ".summary.json", summary_report_json(result));
    std::string summary = summary_report(result);
    write(prefix + ".summary", summary);
    return summary;
}

}  // namespace ef

#include "sim/overhead_model.h"

#include <algorithm>

namespace ef {

Time
OverheadModel::scaling_seconds(DnnModel model, GpuCount from,
                               GpuCount to) const
{
    if (!config_.enabled || from == to)
        return 0.0;
    const ModelProfile &profile = model_profile(model);
    GpuCount workers = std::max({from, to, GpuCount(1)});
    return config_.base_s + config_.per_gb_s * profile.checkpoint_gb +
           config_.per_gpu_s * static_cast<double>(workers);
}

Time
OverheadModel::migration_seconds(DnnModel model, GpuCount gpus) const
{
    if (!config_.enabled)
        return 0.0;
    const ModelProfile &profile = model_profile(model);
    return config_.base_s + config_.per_gb_s * profile.checkpoint_gb +
           config_.per_gpu_s * static_cast<double>(std::max(gpus, 1));
}

}  // namespace ef

/**
 * @file
 * Run-report export: persist a RunResult as machine-readable artifacts
 * (a per-job CSV and a summary in key=value form) so external tooling
 * can plot the figures the benches print. The format is stable and
 * round-trips through the common CSV reader.
 */
#ifndef EF_SIM_REPORT_H_
#define EF_SIM_REPORT_H_

#include <string>

#include "sim/metrics.h"

namespace ef {

/** Per-job CSV: one row per submitted job. */
std::string jobs_report_csv(const RunResult &result);

/** Allocation timeline CSV: one row per placement change. */
std::string allocation_report_csv(const RunResult &result);

/** Headline metrics as "key=value" lines (grep-friendly). */
std::string summary_report(const RunResult &result);

/** Per-job report as a JSON array (same fields as the CSV). */
std::string jobs_report_json(const RunResult &result);

/** Headline metrics as a JSON object (same fields as the summary). */
std::string summary_report_json(const RunResult &result);

/**
 * Write <prefix>.jobs.csv, <prefix>.alloc.csv, and <prefix>.summary
 * (overwriting). Returns the summary text.
 */
std::string save_run_report(const std::string &prefix,
                            const RunResult &result);

}  // namespace ef

#endif  // EF_SIM_REPORT_H_

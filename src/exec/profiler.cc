#include "exec/profiler.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace ef {

std::vector<double>
ProfileReport::pow2_table() const
{
    EF_CHECK(!entries.empty());
    GpuCount max_workers = entries.back().workers;
    std::vector<double> table(
        static_cast<std::size_t>(log2_exact(max_workers)) + 1, 0.0);
    for (const ProfileEntry &entry : entries) {
        table[static_cast<std::size_t>(log2_exact(entry.workers))] =
            entry.throughput;
    }
    return table;
}

Profiler::Profiler(const PerfModel *perf, ProfilerConfig config)
    : perf_(perf), config_(config)
{
    EF_CHECK(perf_ != nullptr);
}

ProfileReport
Profiler::profile(DnnModel model, int global_batch,
                  GpuCount max_workers) const
{
    ProfileReport report;
    report.model = model;
    report.global_batch = global_batch;

    GpuCount lo = perf_->min_workers(model, global_batch);
    GpuCount hi = perf_->max_workers(model, global_batch, max_workers);
    double previous_tpt = 0.0;
    for (GpuCount g = lo; g <= hi; g *= 2) {
        double tpt = perf_->compact_throughput(model, global_batch, g);
        EF_CHECK(tpt > 0.0);
        ProfileEntry entry;
        entry.workers = g;
        entry.throughput = tpt;
        entry.cost_seconds =
            config_.setup_seconds +
            static_cast<double>(config_.iterations_per_config) / tpt;
        report.entries.push_back(entry);
        report.total_seconds += entry.cost_seconds;
        // Stop early when adding GPUs no longer helps (paper §6.6).
        if (tpt <= previous_tpt)
            break;
        previous_tpt = tpt;
    }
    return report;
}

Time
Profiler::total_cost_for_model(DnnModel model, GpuCount max_workers) const
{
    Time total = 0.0;
    for (int batch : model_profile(model).batch_sizes)
        total += profile(model, batch, max_workers).total_seconds;
    return total;
}

}  // namespace ef

#include "exec/executor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fault/fault.h"

namespace ef {

JobExecution::JobExecution(JobSpec spec, const PerfModel *perf,
                           const OverheadModel *overhead)
    : spec_(std::move(spec)), perf_(perf), overhead_(overhead)
{
    EF_CHECK(perf_ != nullptr && overhead_ != nullptr);
    EF_FATAL_IF(spec_.iterations <= 0,
                "job " << spec_.id << " has no work");
    cursor_ = spec_.submit_time;
    ready_at_ = spec_.submit_time;
}

void
JobExecution::scale(Time now, const std::vector<GpuCount> &gpus)
{
    advance(now);
    cursor_ = std::max(cursor_, now);

    GpuCount old_workers = worker_count();
    GpuCount new_workers = static_cast<GpuCount>(gpus.size());
    if (new_workers == old_workers && !workers_.empty()) {
        bool same = true;
        for (GpuCount w = 0; w < new_workers; ++w) {
            if (workers_[static_cast<std::size_t>(w)].gpu !=
                gpus[static_cast<std::size_t>(w)]) {
                same = false;
                break;
            }
        }
        if (same)
            return;  // nothing to do
    }

    // Checkpoint the parameters (partial iteration is lost), rebuild
    // the worker group, and restore after the scaling overhead. A
    // failed checkpoint write falls back to the previous successful
    // checkpoint: iterations since then are redone.
    ++checkpoints_;
    if (fault_ != nullptr &&
        fault_->checkpoint_write_fails(spec_.id, now)) {
        ++ckpt_failures_;
        iterations_ = std::min(iterations_, ckpt_iterations_);
    } else {
        ckpt_iterations_ = iterations_;
    }
    Time pause = overhead_->scaling_seconds(spec_.model, old_workers,
                                            new_workers);
    ready_at_ = std::max(ready_at_, now + pause);

    workers_.clear();
    iteration_seconds_ = 0.0;
    slowdown_ = 1.0;  // a re-launch replaces any straggling worker
    if (new_workers == 0)
        return;

    // Local batch: ceil(global / workers), so the global batch is
    // preserved (the last worker may run a partial share).
    int local = (spec_.global_batch + new_workers - 1) / new_workers;
    const ModelProfile &profile = model_profile(spec_.model);
    EF_FATAL_IF(local > profile.max_local_batch,
                "job " << spec_.id << ": local batch " << local
                       << " exceeds " << profile.name << " memory limit "
                       << profile.max_local_batch);
    int remaining_batch = spec_.global_batch;
    for (GpuCount w = 0; w < new_workers; ++w) {
        Worker worker;
        worker.gpu = gpus[static_cast<std::size_t>(w)];
        worker.local_batch = std::min(local, remaining_batch);
        remaining_batch -= worker.local_batch;
        workers_.push_back(worker);
    }

    PlacementShape shape = perf_->shape_of(gpus);
    iteration_seconds_ = perf_->iteration_seconds(
        spec_.model, spec_.global_batch, shape);
    EF_CHECK(iteration_seconds_ > 0.0);
}

void
JobExecution::set_slowdown(double factor)
{
    EF_CHECK(factor >= 1.0);
    slowdown_ = factor;
}

void
JobExecution::advance(Time now)
{
    if (workers_.empty() || iteration_seconds_ <= 0.0 || finished()) {
        cursor_ = std::max(cursor_, now);
        return;
    }
    const double step_s = iteration_seconds_ * slowdown_;
    Time start = std::max(cursor_, ready_at_);
    if (now <= start) {
        return;
    }
    // Guard the cast: with a far-future `now` the raw step count can
    // exceed what int64 holds, so saturate at the remaining work.
    std::int64_t remaining_steps = spec_.iterations - iterations_;
    std::int64_t steps;
    if ((now - start) >=
        static_cast<double>(remaining_steps) * step_s) {
        steps = remaining_steps;
    } else {
        steps = static_cast<std::int64_t>(
            std::floor((now - start) / step_s));
        steps = std::min(steps, remaining_steps);
    }
    if (steps <= 0) {
        return;
    }
    iterations_ += steps;
    cursor_ = start + static_cast<double>(steps) * step_s;
    for (Worker &worker : workers_) {
        worker.samples_processed +=
            steps * static_cast<std::int64_t>(worker.local_batch);
    }
}

Time
JobExecution::finish_time_estimate() const
{
    if (finished())
        return cursor_;
    if (workers_.empty() || iteration_seconds_ <= 0.0)
        return kTimeInfinity;
    Time start = std::max(cursor_, ready_at_);
    return start + static_cast<double>(spec_.iterations - iterations_) *
                       iteration_seconds_ * slowdown_;
}

}  // namespace ef

/**
 * @file
 * Elastic training executor model (paper §5, "Elastic scaling").
 *
 * Substitutes for the paper's PyTorch-DDP-based executor: a job runs
 * as a group of workers, each holding a model replica and a local
 * batch (global batch / workers); scaling checkpoints the parameters,
 * re-launches the worker group on the new GPU set, adjusts the local
 * batch to preserve the global batch, and resumes from the last
 * completed iteration. Progress is iteration-granular — a partially
 * executed iteration is lost on scaling, exactly like a
 * checkpoint/restore in the real system.
 *
 * The event simulator models progress as a fluid; integration tests
 * replay the same allocation timeline through this executor and check
 * the two agree within the paper's reported simulator fidelity (3%).
 */
#ifndef EF_EXEC_EXECUTOR_H_
#define EF_EXEC_EXECUTOR_H_

#include <vector>

#include "sim/overhead_model.h"
#include "workload/job.h"
#include "workload/perf_model.h"

namespace ef {

class FaultInjector;

/** One data-parallel worker of a running job. */
struct Worker
{
    GpuCount gpu = -1;        ///< concrete GPU id
    int local_batch = 0;      ///< samples per iteration on this worker
    std::int64_t samples_processed = 0;
};

/** Iteration-granular execution state of one job. */
class JobExecution
{
  public:
    JobExecution(JobSpec spec, const PerfModel *perf,
                 const OverheadModel *overhead);

    const JobSpec &spec() const { return spec_; }

    /** Borrow a fault injector (may be null): checkpoint writes taken
     *  during scale() can then fail, rolling progress back to the last
     *  checkpoint that succeeded. */
    void set_fault_injector(FaultInjector *fault) { fault_ = fault; }

    /**
     * (Re)assign the job to a concrete GPU set at time @p now
     * (empty = suspend). Progress is first advanced to @p now, then a
     * checkpoint/restore is charged: the job resumes iterating only
     * after the scaling overhead elapses. Aborts if the implied local
     * batch overflows GPU memory.
     */
    void scale(Time now, const std::vector<GpuCount> &gpus);

    /** Advance wall-clock time, executing whole iterations. */
    void advance(Time now);

    std::int64_t completed_iterations() const { return iterations_; }
    bool finished() const { return iterations_ >= spec_.iterations; }

    /** Time the current iteration count was reached (finish time once
     *  finished()). */
    Time last_progress_time() const { return cursor_; }

    const std::vector<Worker> &workers() const { return workers_; }
    GpuCount worker_count() const
    {
        return static_cast<GpuCount>(workers_.size());
    }

    /** Seconds per iteration on the current placement (0 if idle). */
    double iteration_seconds() const { return iteration_seconds_; }

    /**
     * Mark the current worker group straggling: iterations take
     * @p factor (>= 1) times longer until the next (re)launch, which
     * replaces the slow worker and resets the factor to 1.
     */
    void set_slowdown(double factor);
    double slowdown() const { return slowdown_; }

    int checkpoints_taken() const { return checkpoints_; }
    int checkpoint_failures() const { return ckpt_failures_; }
    /** Iterations captured by the last successful checkpoint. */
    std::int64_t checkpoint_iterations() const { return ckpt_iterations_; }

    /** Predicted completion time at the current rate (infinity when
     *  suspended). */
    Time finish_time_estimate() const;

  private:
    JobSpec spec_;
    const PerfModel *perf_;
    const OverheadModel *overhead_;
    FaultInjector *fault_ = nullptr;  ///< borrowed, may be null

    std::vector<Worker> workers_;
    double iteration_seconds_ = 0.0;
    double slowdown_ = 1.0;   ///< straggler factor, 1 = healthy

    std::int64_t iterations_ = 0;
    Time cursor_ = 0.0;       ///< progress accounted up to here
    Time ready_at_ = 0.0;     ///< restore completes here; idle before
    int checkpoints_ = 0;
    int ckpt_failures_ = 0;
    std::int64_t ckpt_iterations_ = 0;
};

}  // namespace ef

#endif  // EF_EXEC_EXECUTOR_H_

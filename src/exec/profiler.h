/**
 * @file
 * Pre-run throughput profiling (paper §5 "Throughput profiling" and
 * §6.6, Fig. 12a).
 *
 * Before scheduling a new model, ElasticFlow profiles its throughput
 * at increasing GPU counts (and would do so for each batch size).
 * The procedure mirrors the paper's: start at the smallest worker
 * count whose local batch fits in GPU memory, run a fixed number of
 * iterations per configuration, and stop as soon as adding GPUs no
 * longer increases throughput. The report carries both the measured
 * curve (what the scheduler consumes) and the wall-clock cost of
 * obtaining it (what Fig. 12a reports).
 */
#ifndef EF_EXEC_PROFILER_H_
#define EF_EXEC_PROFILER_H_

#include <vector>

#include "workload/perf_model.h"

namespace ef {

/** Profiling knobs. */
struct ProfilerConfig
{
    /** Iterations measured per (model, batch, GPU count) config. */
    int iterations_per_config = 50;
    /** Fixed setup cost per config (launch, warmup), seconds. */
    double setup_seconds = 20.0;
};

/** One profiled configuration. */
struct ProfileEntry
{
    GpuCount workers = 0;
    double throughput = 0.0;  ///< iterations/sec
    Time cost_seconds = 0.0;  ///< wall-clock spent measuring it
};

/** Result of profiling one (model, batch). */
struct ProfileReport
{
    DnnModel model = DnnModel::kResNet50;
    int global_batch = 0;
    std::vector<ProfileEntry> entries;
    Time total_seconds = 0.0;

    /**
     * Power-of-two throughput table (zeros below the first profiled
     * count), suitable for ScalingCurve::from_pow2_table.
     */
    std::vector<double> pow2_table() const;
};

/** See file comment. */
class Profiler
{
  public:
    explicit Profiler(const PerfModel *perf, ProfilerConfig config = {});

    /** Profile one (model, batch) up to @p max_workers GPUs. */
    ProfileReport profile(DnnModel model, int global_batch,
                          GpuCount max_workers) const;

    /** Total profiling cost across all Table 1 batch sizes (Fig. 12a). */
    Time total_cost_for_model(DnnModel model, GpuCount max_workers) const;

  private:
    const PerfModel *perf_;
    ProfilerConfig config_;
};

}  // namespace ef

#endif  // EF_EXEC_PROFILER_H_

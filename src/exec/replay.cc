#include "exec/replay.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace ef {

ReplayReport
replay_and_compare(const Trace &trace, const RunResult &result,
                   const OverheadConfig &overhead_config)
{
    Topology topology(trace.topology);
    PerfModel perf(&topology);
    OverheadModel overhead(overhead_config);
    // RPC latency zero: the fluid simulator applies decisions
    // instantly, so the comparison isolates the fluid-vs-iteration
    // approximation itself.
    ExecutorFleet fleet(&perf, &overhead, 0.0);

    std::map<JobId, const JobOutcome *> outcomes;
    for (const JobOutcome &job : result.jobs) {
        outcomes.emplace(job.spec.id, &job);
        if (job.admitted)
            fleet.register_job(job.spec);
    }

    // Feed the allocation log in order.
    for (const AllocationEvent &event : result.allocation_log) {
        if (!fleet.knows(event.job))
            continue;  // already shut down
        if (event.gpus.empty()) {
            fleet.issue(CommandType::kSuspend, event.job, {},
                        event.time);
        } else {
            fleet.issue(CommandType::kScale, event.job, event.gpus,
                        event.time);
        }
    }
    fleet.advance(1e18);

    ReplayReport report;
    double error_sum = 0.0;
    for (const JobOutcome &job : result.jobs) {
        if (!job.admitted || !job.finished || job.failures_suffered > 0)
            continue;
        if (!fleet.knows(job.spec.id))
            continue;
        const JobExecution &exec = fleet.execution(job.spec.id);
        if (!exec.finished())
            continue;  // replay could not finish it (shouldn't happen)
        ReplayJobResult r;
        r.job = job.spec.id;
        r.sim_finish = job.finish_time;
        r.replay_finish = exec.last_progress_time();
        double span =
            std::max(job.finish_time - job.spec.submit_time, 1e-9);
        r.relative_error =
            std::fabs(r.replay_finish - r.sim_finish) / span;
        error_sum += r.relative_error;
        report.max_relative_error =
            std::max(report.max_relative_error, r.relative_error);
        report.jobs.push_back(r);
    }
    report.compared = report.jobs.size();
    report.mean_relative_error =
        report.compared > 0
            ? error_sum / static_cast<double>(report.compared)
            : 0.0;
    return report;
}

}  // namespace ef
